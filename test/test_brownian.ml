(* Tests for the Brownian reward-accumulation substrate. *)

module Brownian = Mrm_brownian.Brownian
module Stats = Mrm_util.Stats
module Rng = Mrm_util.Rng

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

let params = { Brownian.drift = 1.5; variance = 0.8 }

let test_validate () =
  Brownian.validate params;
  Alcotest.check_raises "negative variance"
    (Invalid_argument "Brownian.validate: variance must be finite and >= 0")
    (fun () -> Brownian.validate { Brownian.drift = 0.; variance = -1. });
  Alcotest.check_raises "nan drift"
    (Invalid_argument "Brownian.validate: drift must be finite") (fun () ->
      Brownian.validate { Brownian.drift = Float.nan; variance = 1. })

let test_density_is_normal () =
  (* Matches the explicit formula below Definition 1 of the paper. *)
  let t = 0.7 and y = 2.3 in
  let expected =
    1.
    /. sqrt (2. *. Float.pi *. t *. params.variance)
    *. exp
         (-.((y -. (params.drift *. t)) ** 2.)
          /. (2. *. t *. params.variance))
  in
  check_close "density formula" expected (Brownian.density params ~t y)

let test_density_mass () =
  (* Trapezoid integral over a wide window. *)
  let t = 1.3 in
  let n = 8000 and lo = -15. and hi = 20. in
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref 0. in
  for k = 0 to n do
    let w = if k = 0 || k = n then 0.5 else 1. in
    acc :=
      !acc +. (w *. Brownian.density params ~t (lo +. (float_of_int k *. h)))
  done;
  check_close ~tol:1e-9 "density mass" 1. (!acc *. h)

let test_cdf () =
  let t = 2. in
  (* Median at the mean. *)
  check_close "median" 0.5 (Brownian.cdf params ~t (params.drift *. t));
  (* Degenerate variance: a step at r t. *)
  let deterministic = { Brownian.drift = 2.; variance = 0. } in
  check_close "step below" 0. (Brownian.cdf deterministic ~t 3.9);
  check_close "step above" 1. (Brownian.cdf deterministic ~t 4.0)

let test_laplace_transform () =
  (* f*(t,v) = exp(-v r t + v^2/2 sigma^2 t) -- eq. below Definition 1. *)
  let t = 0.9 and v = 1.7 in
  check_close "transform"
    (exp
       ((-.v *. params.drift *. t) +. (v *. v /. 2. *. params.variance *. t)))
    (Brownian.laplace_transform params ~t v);
  (* v = 0 always gives 1 (total mass). *)
  check_close "transform at 0" 1. (Brownian.laplace_transform params ~t 0.)

let test_transform_taylor () =
  (* Eq. (1) of the paper: f*(D, v) = 1 - (v r - v^2/2 s^2) D + o(D). *)
  let v = 0.8 in
  let delta = 1e-6 in
  let linearized =
    1. -. (((v *. params.drift) -. (v *. v /. 2. *. params.variance)) *. delta)
  in
  check_close ~tol:1e-9 "first-order Taylor" linearized
    (Brownian.laplace_transform params ~t:delta v)

let test_raw_moments_closed_form () =
  let t = 1.7 in
  let mu = params.drift *. t and var = params.variance *. t in
  check_close "m0" 1. (Brownian.raw_moment params ~t 0);
  check_close "m1" mu (Brownian.raw_moment params ~t 1);
  check_close "m2" ((mu *. mu) +. var) (Brownian.raw_moment params ~t 2);
  check_close "m3"
    ((mu ** 3.) +. (3. *. mu *. var))
    (Brownian.raw_moment params ~t 3);
  check_close "m4"
    ((mu ** 4.) +. (6. *. mu *. mu *. var) +. (3. *. var *. var))
    (Brownian.raw_moment params ~t 4)

let test_moment_matches_transform_derivative () =
  (* m1 = -d/dv f*(t,v) at v=0, via central difference. *)
  let t = 0.6 in
  let h = 1e-6 in
  let derivative =
    (Brownian.laplace_transform params ~t h
    -. Brownian.laplace_transform params ~t (-.h))
    /. (2. *. h)
  in
  check_close ~tol:1e-8 "transform derivative"
    (Brownian.raw_moment params ~t 1)
    (-.derivative)

let test_sample_increment_stats () =
  let rng = Rng.create ~seed:101L () in
  let dt = 0.25 in
  let xs =
    Array.init 100_000 (fun _ -> Brownian.sample_increment params rng ~dt)
  in
  check_close ~tol:0.01 "increment mean" (params.drift *. dt) (Stats.mean xs);
  check_close ~tol:0.01 "increment var" (params.variance *. dt)
    (Stats.variance xs)

let test_sample_path_shape () =
  let rng = Rng.create ~seed:7L () in
  let path = Brownian.sample_path params rng ~t_max:2. ~steps:50 in
  Alcotest.(check int) "length" 51 (List.length path);
  (match path with
  | (t0, x0) :: _ ->
      check_close "starts at t=0" 0. t0;
      check_close "starts at x=0" 0. x0
  | [] -> Alcotest.fail "empty path");
  let t_last, _ = List.nth path 50 in
  check_close "ends at t_max" 2. t_last

let test_sample_path_increments_add_up () =
  (* Mean/variance of X(1) across many discretized paths match r and
     sigma^2: increments are independent and stationary. *)
  let rng = Rng.create ~seed:3L () in
  let finals =
    Array.init 20_000 (fun _ ->
        let path = Brownian.sample_path params rng ~t_max:1. ~steps:8 in
        snd (List.nth path 8))
  in
  check_close ~tol:0.03 "final variance" params.variance
    (Stats.variance finals);
  check_close ~tol:0.03 "final mean" params.drift (Stats.mean finals)

let test_degenerate_variance_sampling () =
  let rng = Rng.create () in
  let deterministic = { Brownian.drift = 3.; variance = 0. } in
  check_close "deterministic increment" 1.5
    (Brownian.sample_increment deterministic rng ~dt:0.5)

let () =
  Alcotest.run "mrm_brownian"
    [
      ( "brownian",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "density formula" `Quick test_density_is_normal;
          Alcotest.test_case "density mass" `Quick test_density_mass;
          Alcotest.test_case "cdf" `Quick test_cdf;
          Alcotest.test_case "laplace transform" `Quick test_laplace_transform;
          Alcotest.test_case "transform Taylor (eq. 1)" `Quick
            test_transform_taylor;
          Alcotest.test_case "raw moments" `Quick test_raw_moments_closed_form;
          Alcotest.test_case "moment = transform derivative" `Quick
            test_moment_matches_transform_derivative;
          Alcotest.test_case "increment statistics" `Slow
            test_sample_increment_stats;
          Alcotest.test_case "path shape" `Quick test_sample_path_shape;
          Alcotest.test_case "increments add up" `Slow
            test_sample_path_increments_add_up;
          Alcotest.test_case "degenerate variance" `Quick
            test_degenerate_variance_sampling;
        ] );
    ]
