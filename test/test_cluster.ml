(* Tests for the distributed serving tier (lib/cluster): consistent-hash
   ring placement (determinism, balance, minimal remapping, failover
   order), the shedding admission layer (cap semantics under
   concurrency), the replica health state machine (passive mark-down,
   consecutive-probe readmission), the load generator's key
   distribution, and the router itself end to end — two in-process
   Server.start replicas behind Router.start, with a cache hit routed
   to the owning replica and a drained backend failed over mid-session
   without a wrong answer. *)

module Ring = Mrm_cluster.Ring
module Shed = Mrm_cluster.Shed
module Replica = Mrm_cluster.Replica
module Router = Mrm_cluster.Router
module Loadgen = Mrm_cluster.Loadgen
module Server = Mrm_server.Server
module Client = Mrm_server.Client
module Protocol = Mrm_server.Protocol
module Json = Mrm_util.Json
module Rng = Mrm_util.Rng

(* ------------------------------------------------------------------ *)
(* Ring *)

let key i = Printf.sprintf "key-%d" i

let test_ring_deterministic () =
  let a = Ring.create ~vnodes:32 [ "r1"; "r2"; "r3" ] in
  let b = Ring.create ~vnodes:32 [ "r3"; "r1"; "r2"; "r1" ] in
  (* member order and duplicates don't matter *)
  Alcotest.(check (list string))
    "members" [ "r1"; "r2"; "r3" ] (Ring.members b);
  for i = 0 to 199 do
    Alcotest.(check string)
      (Printf.sprintf "owner of %s" (key i))
      (Ring.owner a (key i))
      (Ring.owner b (key i))
  done

let test_ring_balance () =
  let members = [ "r1"; "r2"; "r3" ] in
  let ring = Ring.create ~vnodes:64 members in
  let counts = Hashtbl.create 3 in
  let n = 3000 in
  for i = 0 to n - 1 do
    let owner = Ring.owner ring (key i) in
    Hashtbl.replace counts owner
      (1 + Option.value (Hashtbl.find_opt counts owner) ~default:0)
  done;
  List.iter
    (fun m ->
      let share =
        float_of_int (Option.value (Hashtbl.find_opt counts m) ~default:0)
        /. float_of_int n
      in
      if share < 0.10 then
        Alcotest.failf "member %s owns only %.1f%% of keys" m (100. *. share))
    members

let test_ring_minimal_remapping () =
  let before = Ring.create ~vnodes:64 [ "r1"; "r2"; "r3" ] in
  let after = Ring.create ~vnodes:64 [ "r1"; "r3" ] in
  for i = 0 to 999 do
    let owner = Ring.owner before (key i) in
    if owner <> "r2" then
      (* keys not owned by the removed member must not move *)
      Alcotest.(check string)
        (Printf.sprintf "%s stays on %s" (key i) owner)
        owner
        (Ring.owner after (key i))
  done

let test_ring_successors () =
  let ring = Ring.create ~vnodes:16 [ "r1"; "r2"; "r3"; "r4" ] in
  for i = 0 to 49 do
    let prefs = Ring.successors ring (key i) in
    Alcotest.(check int) "all members listed" 4 (List.length prefs);
    Alcotest.(check (list string))
      "distinct, complete"
      [ "r1"; "r2"; "r3"; "r4" ]
      (List.sort String.compare prefs);
    Alcotest.(check string)
      "owner first" (Ring.owner ring (key i)) (List.hd prefs)
  done;
  (* route skips members reported down, in preference order *)
  let prefs = Ring.successors ring "k" in
  let downed = List.hd prefs in
  Alcotest.(check (option string))
    "route skips the downed owner"
    (Some (List.nth prefs 1))
    (Ring.route ring ~down:(fun m -> m = downed) "k");
  Alcotest.(check (option string))
    "route with everything down" None
    (Ring.route ring ~down:(fun _ -> true) "k")

let test_ring_invalid () =
  (match Ring.create [] with
  | (_ : Ring.t) -> Alcotest.fail "empty member list must raise"
  | exception Invalid_argument _ -> ());
  match Ring.create ~vnodes:0 [ "r1" ] with
  | (_ : Ring.t) -> Alcotest.fail "vnodes < 1 must raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Shed *)

let test_shed_cap () =
  let shed = Shed.create ~limit:2 in
  Alcotest.(check bool) "admit 1" true (Shed.try_admit shed "r1");
  Alcotest.(check bool) "admit 2" true (Shed.try_admit shed "r1");
  Alcotest.(check bool) "admit 3 shed" false (Shed.try_admit shed "r1");
  (* caps are per replica *)
  Alcotest.(check bool) "other replica unaffected" true
    (Shed.try_admit shed "r2");
  Shed.release shed "r1";
  Alcotest.(check bool) "slot freed" true (Shed.try_admit shed "r1");
  Alcotest.(check int) "inflight" 2 (Shed.inflight shed "r1");
  Alcotest.(check int) "peak" 2 (Shed.peak shed);
  (* unbalanced releases never go negative *)
  Shed.release shed "r3";
  Alcotest.(check int) "unknown release ignored" 0 (Shed.inflight shed "r3");
  match Shed.create ~limit:0 with
  | (_ : Shed.t) -> Alcotest.fail "limit < 1 must raise"
  | exception Invalid_argument _ -> ()

let test_shed_concurrent () =
  let limit = 4 in
  let shed = Shed.create ~limit in
  let inflight = Atomic.make 0 in
  let violated = Atomic.make false in
  let admitted = Atomic.make 0 in
  let worker () =
    for _ = 1 to 2000 do
      if Shed.try_admit shed "r" then begin
        Atomic.incr admitted;
        if Atomic.fetch_and_add inflight 1 >= limit then
          Atomic.set violated true;
        ignore (Atomic.fetch_and_add inflight (-1));
        Shed.release shed "r"
      end
    done
  in
  let threads = List.init 8 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  Alcotest.(check bool) "cap never exceeded" false (Atomic.get violated);
  Alcotest.(check bool) "some admissions went through" true
    (Atomic.get admitted > 0);
  Alcotest.(check int) "all slots returned" 0 (Shed.inflight shed "r");
  Alcotest.(check bool)
    (Printf.sprintf "peak %d within limit" (Shed.peak shed))
    true
    (Shed.peak shed <= limit)

(* ------------------------------------------------------------------ *)
(* Replica health state machine (no I/O: record_probe only) *)

let test_replica_state_machine () =
  let r = Replica.create ~name:"r1" (`Unix "/nonexistent.sock") in
  Alcotest.(check bool) "starts up" true (Replica.healthy r);
  (* passive failure detection *)
  Alcotest.(check bool) "mark_down transitions" true (Replica.mark_down r);
  Alcotest.(check bool) "idempotent" false (Replica.mark_down r);
  Alcotest.(check bool) "down" false (Replica.healthy r);
  (* one healthy probe is not enough at readmit_after:2 *)
  Alcotest.(check bool) "still down after 1 ok" true
    (Replica.record_probe r ~ok:true ~readmit_after:2 = `Still_down);
  (* a failure resets the consecutive-ok counter *)
  Alcotest.(check bool) "failed probe resets" true
    (Replica.record_probe r ~ok:false ~readmit_after:2 = `Still_down);
  Alcotest.(check bool) "ok 1/2" true
    (Replica.record_probe r ~ok:true ~readmit_after:2 = `Still_down);
  Alcotest.(check bool) "ok 2/2 readmits" true
    (Replica.record_probe r ~ok:true ~readmit_after:2 = `Readmitted);
  Alcotest.(check bool) "up again" true (Replica.healthy r);
  Alcotest.(check bool) "probe failure downs an up replica" true
    (Replica.record_probe r ~ok:false ~readmit_after:2 = `Went_down);
  (* a probe against a dead endpoint fails and stays down *)
  Alcotest.(check bool) "dead endpoint probe" true
    (Replica.probe r ~timeout:0.2 ~readmit_after:2 = `Still_down)

(* ------------------------------------------------------------------ *)
(* Loadgen key distribution *)

let test_loadgen_sampler () =
  (match Loadgen.key_weights ~keys:0 ~skew:1. with
  | (_ : float array) -> Alcotest.fail "keys < 1 must raise"
  | exception Invalid_argument _ -> ());
  let w = Loadgen.key_weights ~keys:5 ~skew:1. in
  Alcotest.(check int) "one weight per key" 5 (Array.length w);
  Alcotest.(check bool) "head heavier than tail" true (w.(0) > w.(4));
  let draw seed =
    let sampler = Loadgen.key_sampler ~keys:20 ~skew:1.2 (Rng.create ~seed ()) in
    List.init 500 (fun _ -> sampler ())
  in
  let a = draw 7L and b = draw 7L in
  Alcotest.(check (list int)) "deterministic for a seed" a b;
  List.iter
    (fun k ->
      if k < 0 || k >= 20 then Alcotest.failf "sample %d out of range" k)
    a;
  (* skewed sampling must actually prefer the head of the key space *)
  let head = List.length (List.filter (fun k -> k < 5) a) in
  Alcotest.(check bool)
    (Printf.sprintf "head keys dominate (%d/500)" head)
    true
    (head > 250)

let test_loadgen_percentile_nearest_rank () =
  (* Nearest-rank: index ceil(q*n) - 1, clamped. Pinned on the sample
     counts where the old interpolating version misbehaved: tiny arrays
     (p99 indexing past the end / aliasing p95) and exactly 100. *)
  let p sorted q = Loadgen.percentile sorted q in
  (* n = 1: every percentile is the only sample *)
  let one = [| 42. |] in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "n=1, q=%g" q)
        42. (p one q))
    [ 0.; 0.5; 0.95; 0.99; 1. ];
  (* n = 3: p50 -> rank 2 (the median), p95/p99 -> rank 3 (the max),
     never an out-of-bounds index and never p95 = p50 aliasing *)
  let three = [| 10.; 20.; 30. |] in
  Alcotest.(check (float 0.)) "n=3 p0" 10. (p three 0.);
  Alcotest.(check (float 0.)) "n=3 p50" 20. (p three 0.5);
  Alcotest.(check (float 0.)) "n=3 p95" 30. (p three 0.95);
  Alcotest.(check (float 0.)) "n=3 p99" 30. (p three 0.99);
  Alcotest.(check (float 0.)) "n=3 p100" 30. (p three 1.);
  (* n = 100: p95 -> rank 95, p99 -> rank 99 — distinct observed
     samples, not interpolations, and p99 <> max *)
  let hundred = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.)) "n=100 p50" 50. (p hundred 0.5);
  Alcotest.(check (float 0.)) "n=100 p95" 95. (p hundred 0.95);
  Alcotest.(check (float 0.)) "n=100 p99" 99. (p hundred 0.99);
  Alcotest.(check (float 0.)) "n=100 p100" 100. (p hundred 1.);
  (* out-of-range q is clamped, the empty sample is nan *)
  Alcotest.(check (float 0.)) "q > 1 clamped" 100. (p hundred 1.5);
  Alcotest.(check (float 0.)) "q < 0 clamped" 1. (p hundred (-0.5));
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (p [||] 0.5))

let test_loadgen_distinct_digests () =
  let cfg = Loadgen.default_config (`Unix "/unused.sock") in
  let digest_of k =
    match
      Protocol.parse_request ~now:0. ~default_id:"d" (Loadgen.job_line cfg k)
    with
    | Ok req -> req.Protocol.digest
    | Error e -> Alcotest.failf "job_line %d: %s" k e
  in
  let digests = List.init 12 digest_of in
  Alcotest.(check int) "12 keys, 12 digests" 12
    (List.length (List.sort_uniq String.compare digests))

(* ------------------------------------------------------------------ *)
(* Router end to end (in-process) *)

let with_input_lines lines f =
  let path = Filename.temp_file "mrm2_cluster_in" ".jsonl" in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic))

let tcp_of_sockaddr = function
  | Unix.ADDR_INET (_, port) -> `Tcp ("127.0.0.1", port)
  | Unix.ADDR_UNIX path -> `Unix path

let job_line ?(id = "j") ?(t = 0.5) () =
  Printf.sprintf
    {|{"id":%S,"model":"onoff","size":4,"t":%g,"order":2,"eps":1e-7}|} id t

let start_replica () =
  Server.start (Server.default_config (`Tcp ("127.0.0.1", 0)))

let test_router_end_to_end () =
  let b1 = start_replica () in
  let b2 = start_replica () in
  let stop_replica h =
    Server.drain h;
    Server.wait h
  in
  let router =
    Router.start
      {
        (Router.default_config ~listen:(`Tcp ("127.0.0.1", 0))
           ~backends:
             [
               ("b1", tcp_of_sockaddr (Server.listen_address b1));
               ("b2", tcp_of_sockaddr (Server.listen_address b2));
             ])
        with
        (* long interval: this test exercises PASSIVE failure detection
           on the forward path, not the prober *)
        Router.probe_interval = 60.;
        io_timeout = 5.;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Router.drain router;
      Router.wait router;
      stop_replica b2)
    (fun () ->
      let endpoint = tcp_of_sockaddr (Router.listen_address router) in
      let call lines =
        let responses = ref [] in
        let summary =
          with_input_lines lines (fun ic ->
              Client.call endpoint ~input:ic ~on_response:(fun l ->
                  responses := l :: !responses))
        in
        (summary, List.rev !responses)
      in
      let lines =
        List.init 8 (fun i ->
            job_line
              ~id:(Printf.sprintf "j%d" i)
              ~t:(0.3 +. (0.1 *. float_of_int i))
              ())
      in
      (* fresh solves through the router: all ok, none cached *)
      let summary, first = call lines in
      Alcotest.(check int) "all answered" 8 summary.Client.sent;
      Alcotest.(check int) "no errors" 0 summary.Client.errors;
      Alcotest.(check int) "no cache hits yet" 0 summary.Client.cache_hits;
      (* repeat: every response must come from some replica's cache —
         consistent hashing sent each digest back to its owner *)
      let summary2, second = call lines in
      Alcotest.(check int) "repeat answered" 8 summary2.Client.sent;
      Alcotest.(check int) "all cache hits" 8 summary2.Client.cache_hits;
      List.iter2
        (fun a b ->
          let strip line =
            match Json.parse_exn line with
            | Json.Obj fields ->
                Json.to_string
                  (Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields))
            | other -> Json.to_string other
          in
          Alcotest.(check string) "cache hit bit-for-bit" (strip a) (strip b))
        first second;
      (* kill b1 (drain + full stop), then replay: the router must fail
         over mid-session and still answer every request correctly *)
      stop_replica b1;
      let summary3, third = call lines in
      Alcotest.(check int) "answered after backend loss" 8
        summary3.Client.sent;
      Alcotest.(check int) "no errors after backend loss" 0
        summary3.Client.errors;
      List.iter2
        (fun a b ->
          let points line =
            Option.map Json.to_string (Json.member "points" (Json.parse_exn line))
          in
          Alcotest.(check (option string))
            "failover answer bit-for-bit" (points a) (points b))
        first third;
      (* the stats control request reflects the mark-down *)
      let _, stats = call [ {|{"cluster":"stats","id":"s"}|} ] in
      match stats with
      | [ line ] -> (
          let json = Json.parse_exn line in
          Alcotest.(check (option string))
            "stats ok" (Some "ok")
            (Protocol.response_status json);
          match Option.bind (Json.member "replicas" json) Json.to_list with
          | Some replicas ->
              let healthy name =
                List.exists
                  (fun r ->
                    Option.bind (Json.member "name" r) Json.to_str
                      = Some name
                    && Option.bind (Json.member "healthy" r) Json.to_bool
                       = Some true)
                  replicas
              in
              Alcotest.(check int) "two replicas listed" 2
                (List.length replicas);
              Alcotest.(check bool) "b1 marked down" false (healthy "b1");
              Alcotest.(check bool) "b2 still up" true (healthy "b2")
          | None -> Alcotest.fail "stats response lacks replicas")
      | other ->
          Alcotest.failf "expected 1 stats response, got %d"
            (List.length other))

let test_router_all_down_srv006 () =
  (* a router whose only backend never existed: SRV006, not a hang *)
  let router =
    Router.start
      {
        (Router.default_config ~listen:(`Tcp ("127.0.0.1", 0))
           ~backends:[ ("ghost", `Tcp ("127.0.0.1", 1)) ])
        with
        Router.probe_interval = 60.;
        io_timeout = 2.;
        max_attempts = 2;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Router.drain router;
      Router.wait router)
    (fun () ->
      let endpoint = tcp_of_sockaddr (Router.listen_address router) in
      let responses = ref [] in
      let summary =
        with_input_lines
          [ job_line ~id:"doomed" () ]
          (fun ic ->
            Client.call endpoint ~input:ic ~on_response:(fun l ->
                responses := l :: !responses))
      in
      Alcotest.(check int) "answered" 1 summary.Client.sent;
      Alcotest.(check int) "as a service error" 1 summary.Client.srv_errors;
      match !responses with
      | [ line ] ->
          let json = Json.parse_exn line in
          Alcotest.(check (option string))
            "SRV006" (Some "SRV006")
            (Option.bind (Json.member "code" json) Json.to_str);
          Alcotest.(check (option string))
            "requester id kept" (Some "doomed")
            (Option.bind (Json.member "id" json) Json.to_str)
      | other ->
          Alcotest.failf "expected 1 response, got %d" (List.length other))

let test_router_invalid_config () =
  List.iter
    (fun cfg ->
      match Router.start cfg with
      | (_ : Router.handle) ->
          Alcotest.fail "invalid router config must raise"
      | exception Invalid_argument _ -> ())
    [
      Router.default_config ~listen:(`Tcp ("127.0.0.1", 0)) ~backends:[];
      {
        (Router.default_config ~listen:(`Tcp ("127.0.0.1", 0))
           ~backends:
             [ ("dup", `Unix "/a.sock"); ("dup", `Unix "/b.sock") ])
        with
        Router.vnodes = 8;
      };
      {
        (Router.default_config ~listen:(`Tcp ("127.0.0.1", 0))
           ~backends:[ ("b", `Unix "/a.sock") ])
        with
        Router.max_attempts = 0;
      };
    ]

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          Alcotest.test_case "deterministic placement" `Quick
            test_ring_deterministic;
          Alcotest.test_case "balance" `Quick test_ring_balance;
          Alcotest.test_case "minimal remapping" `Quick
            test_ring_minimal_remapping;
          Alcotest.test_case "successors = failover order" `Quick
            test_ring_successors;
          Alcotest.test_case "invalid arguments" `Quick test_ring_invalid;
        ] );
      ( "shed",
        [
          Alcotest.test_case "per-replica cap" `Quick test_shed_cap;
          Alcotest.test_case "concurrent admissions" `Quick
            test_shed_concurrent;
        ] );
      ( "replica",
        [
          Alcotest.test_case "health state machine" `Quick
            test_replica_state_machine;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "key sampler" `Quick test_loadgen_sampler;
          Alcotest.test_case "nearest-rank percentile" `Quick
            test_loadgen_percentile_nearest_rank;
          Alcotest.test_case "distinct job digests" `Quick
            test_loadgen_distinct_digests;
        ] );
      ( "router",
        [
          Alcotest.test_case "shard, cache, fail over" `Quick
            test_router_end_to_end;
          Alcotest.test_case "all backends down -> SRV006" `Quick
            test_router_all_down_srv006;
          Alcotest.test_case "invalid config" `Quick
            test_router_invalid_config;
        ] );
    ]
