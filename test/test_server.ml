(* Tests for the solver service: the LRU result cache (promotion,
   entry/weight eviction, statistics), the bounded request queue
   (backpressure, close semantics, blocking pop), the wire protocol
   (deadline_s parsing, SRV error rendering, cached flag), and the
   server itself end to end — in-process Server.start / Client.call /
   Server.drain on TCP and Unix-domain endpoints, including the
   cache-hit bit-for-bit guarantee and concurrent clients. *)

module Lru_cache = Mrm_server.Lru_cache
module Rqueue = Mrm_server.Rqueue
module Protocol = Mrm_server.Protocol
module Server = Mrm_server.Server
module Client = Mrm_server.Client
module Batch = Mrm_batch.Batch
module Json = Mrm_util.Json
module Diagnostics = Mrm_check.Diagnostics

(* ------------------------------------------------------------------ *)
(* LRU cache *)

let test_lru_promotion () =
  let evicted = ref [] in
  let cache =
    Lru_cache.create ~max_entries:2
      ~on_evict:(fun k -> evicted := k :: !evicted)
      ~weight:(fun _ -> 1) ()
  in
  Lru_cache.add cache "a" 1;
  Lru_cache.add cache "b" 2;
  (* promote "a": the next eviction must take "b" *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru_cache.find_opt cache "a");
  Lru_cache.add cache "c" 3;
  Alcotest.(check (list string)) "b evicted" [ "b" ] !evicted;
  Alcotest.(check bool) "a survives" true (Lru_cache.mem cache "a");
  Alcotest.(check bool) "c present" true (Lru_cache.mem cache "c");
  Alcotest.(check (option int)) "miss b" None (Lru_cache.find_opt cache "b");
  let stats = Lru_cache.stats cache in
  Alcotest.(check int) "hits" 1 stats.Lru_cache.hits;
  Alcotest.(check int) "misses" 1 stats.Lru_cache.misses;
  Alcotest.(check int) "evictions" 1 stats.Lru_cache.evictions

let test_lru_weight_eviction () =
  let cache =
    Lru_cache.create ~max_entries:100 ~max_weight:10
      ~weight:String.length ()
  in
  Lru_cache.add cache "a" "xxxx";
  (* 4 *)
  Lru_cache.add cache "b" "yyyy";
  (* 8 *)
  Alcotest.(check int) "weight before" 8 (Lru_cache.total_weight cache);
  Lru_cache.add cache "c" "zzzz";
  (* 12 > 10: evict LRU "a" *)
  Alcotest.(check int) "weight after" 8 (Lru_cache.total_weight cache);
  Alcotest.(check bool) "a evicted by weight" false (Lru_cache.mem cache "a");
  (* a value heavier than the whole cache is never stored *)
  Lru_cache.add cache "huge" (String.make 11 'h');
  Alcotest.(check bool) "oversized never stored" false
    (Lru_cache.mem cache "huge");
  Alcotest.(check int) "length" 2 (Lru_cache.length cache)

let test_lru_replace_and_clear () =
  let cache = Lru_cache.create ~max_entries:2 ~weight:(fun _ -> 1) () in
  Lru_cache.add cache "a" 1;
  Lru_cache.add cache "b" 2;
  (* replacing promotes: "a" becomes MRU, so adding "c" evicts "b" *)
  Lru_cache.add cache "a" 10;
  Alcotest.(check int) "replace keeps length" 2 (Lru_cache.length cache);
  Lru_cache.add cache "c" 3;
  Alcotest.(check (option int))
    "replaced value" (Some 10)
    (Lru_cache.find_opt cache "a");
  Alcotest.(check bool) "b evicted after replace-promote" false
    (Lru_cache.mem cache "b");
  Lru_cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Lru_cache.length cache);
  Alcotest.(check int) "cleared weight" 0 (Lru_cache.total_weight cache)

let test_lru_invalid_caps () =
  List.iter
    (fun f ->
      match f () with
      | (_ : int Lru_cache.t) ->
          Alcotest.fail "cap < 1 must raise Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Lru_cache.create ~max_entries:0 ~weight:(fun _ -> 1) ());
      (fun () -> Lru_cache.create ~max_weight:0 ~weight:(fun _ -> 1) ());
    ]

(* The cache is shared by every connection-handler thread of the
   server: hammer one instance from several threads with overlapping
   deterministic key sets and check that the mutex keeps the caps and
   the statistics exact — no lost hit counts, no double evictions, no
   excursion above the entry or weight cap at any observable moment. *)
let test_lru_concurrent () =
  let max_entries = 32 and max_weight = 64 in
  let evict_calls = Atomic.make 0 in
  let cache =
    Lru_cache.create ~max_entries ~max_weight
      ~on_evict:(fun _ -> Atomic.incr evict_calls)
      ~weight:(fun _ -> 2) ()
  in
  let violation = Atomic.make false in
  let observe () =
    if
      Lru_cache.length cache > max_entries
      || Lru_cache.total_weight cache > max_weight
    then Atomic.set violation true
  in
  let threads = 4 and ops = 2000 in
  let hits = Array.make threads 0 in
  let misses = Array.make threads 0 in
  let worker t () =
    for i = 0 to ops - 1 do
      (* overlapping key ranges so threads contend on the same entries *)
      let k = Printf.sprintf "k%d" ((i * (t + 1)) mod 48) in
      if i mod 2 = 0 then Lru_cache.add cache k i
      else begin
        match Lru_cache.find_opt cache k with
        | Some _ -> hits.(t) <- hits.(t) + 1
        | None -> misses.(t) <- misses.(t) + 1
      end;
      if i mod 64 = 0 then observe ()
    done
  in
  let sampler_stop = Atomic.make false in
  let sampler =
    Thread.create
      (fun () ->
        while not (Atomic.get sampler_stop) do
          observe ();
          Thread.yield ()
        done)
      ()
  in
  let workers = List.init threads (fun t -> Thread.create (worker t) ()) in
  List.iter Thread.join workers;
  Atomic.set sampler_stop true;
  Thread.join sampler;
  Alcotest.(check bool) "caps never exceeded" false (Atomic.get violation);
  let stats = Lru_cache.stats cache in
  let total array = Array.fold_left ( + ) 0 array in
  Alcotest.(check int) "every hit counted once" (total hits)
    stats.Lru_cache.hits;
  Alcotest.(check int) "every miss counted once" (total misses)
    stats.Lru_cache.misses;
  Alcotest.(check int) "no double (or lost) evictions"
    (Atomic.get evict_calls) stats.Lru_cache.evictions;
  Alcotest.(check bool) "entry cap holds at rest" true
    (Lru_cache.length cache <= max_entries);
  Alcotest.(check bool) "weight cap holds at rest" true
    (Lru_cache.total_weight cache <= max_weight)

(* ------------------------------------------------------------------ *)
(* Bounded request queue *)

let test_rqueue_fifo_and_full () =
  let q = Rqueue.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Rqueue.capacity q);
  Alcotest.(check bool) "push 1" true (Rqueue.push q 1 = `Ok);
  Alcotest.(check bool) "push 2" true (Rqueue.push q 2 = `Ok);
  Alcotest.(check bool) "push 3 full" true (Rqueue.push q 3 = `Full);
  Alcotest.(check int) "length" 2 (Rqueue.length q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Rqueue.pop q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Rqueue.pop q)

let test_rqueue_close_semantics () =
  let q = Rqueue.create ~capacity:1 in
  Alcotest.(check bool) "push" true (Rqueue.push q 7 = `Ok);
  Rqueue.close q;
  Rqueue.close q;
  (* idempotent *)
  Alcotest.(check bool) "closed" true (Rqueue.closed q);
  (* Closed wins over Full *)
  Alcotest.(check bool) "push after close" true (Rqueue.push q 8 = `Closed);
  (* already-accepted work is still delivered, then None *)
  Alcotest.(check (option int)) "drain accepted" (Some 7) (Rqueue.pop q);
  Alcotest.(check (option int)) "drained" None (Rqueue.pop q)

let test_rqueue_blocking_pop () =
  let q = Rqueue.create ~capacity:4 in
  let got = ref None in
  let consumer = Thread.create (fun () -> got := Rqueue.pop q) () in
  Thread.delay 0.05;
  Alcotest.(check (option int)) "consumer still blocked" None !got;
  Alcotest.(check bool) "push wakes" true (Rqueue.push q 42 = `Ok);
  Thread.join consumer;
  Alcotest.(check (option int)) "woken with value" (Some 42) !got;
  (* close wakes a blocked consumer with None *)
  let got2 = ref (Some 0) in
  let consumer2 = Thread.create (fun () -> got2 := Rqueue.pop q) () in
  Thread.delay 0.05;
  Rqueue.close q;
  Thread.join consumer2;
  Alcotest.(check (option int)) "close wakes with None" None !got2

let test_rqueue_invalid_capacity () =
  match Rqueue.create ~capacity:0 with
  | (_ : int Rqueue.t) ->
      Alcotest.fail "capacity < 1 must raise Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Wire protocol *)

let job_line ?(id = "j1") ?(t = 1.) ?extra () =
  Printf.sprintf
    "{\"id\":\"%s\",\"model\":\"onoff\",\"sigma2\":1,\"size\":4,\"t\":%g,\"order\":2%s}"
    id t
    (match extra with None -> "" | Some e -> "," ^ e)

let test_protocol_deadline_parsing () =
  let now = 1000. in
  (* no deadline *)
  (match Protocol.parse_request ~now ~default_id:"d" (job_line ()) with
  | Ok req ->
      Alcotest.(check (option (float 0.))) "no deadline" None
        req.Protocol.expires;
      Alcotest.(check string) "digest is the cache key"
        (Batch.digest req.Protocol.job)
        req.Protocol.digest
  | Error e -> Alcotest.failf "plain job rejected: %s" e);
  (* deadline_s anchored at [now] *)
  (match
     Protocol.parse_request ~now ~default_id:"d"
       (job_line ~extra:"\"deadline_s\":2.5" ())
   with
  | Ok req ->
      Alcotest.(check (option (float 1e-9))) "expires = now + s"
        (Some 1002.5) req.Protocol.expires
  | Error e -> Alcotest.failf "deadline job rejected: %s" e);
  (* bad deadlines are SRV001 material *)
  List.iter
    (fun bad ->
      match
        Protocol.parse_request ~now ~default_id:"d"
          (job_line ~extra:(Printf.sprintf "\"deadline_s\":%s" bad) ())
      with
      | Ok _ -> Alcotest.failf "deadline_s %s must be rejected" bad
      | Error e ->
          if not (String.length e > 0) then Alcotest.fail "empty error")
    [ "0"; "-1"; "\"soon\"" ];
  (* model builders raise on out-of-domain specs (negative variance);
     the service boundary must answer SRV001, not lose the handler
     thread to the exception *)
  match
    Protocol.parse_request ~now ~default_id:"d"
      "{\"id\":\"bad\",\"model\":\"onoff\",\"sigma2\":-5,\"size\":8,\"t\":0.5}"
  with
  | Ok _ -> Alcotest.fail "negative variance must be rejected"
  | Error e ->
      if not (String.length e > 0) then Alcotest.fail "empty error"
  | exception Invalid_argument msg ->
      Alcotest.failf "builder exception escaped parse_request: %s" msg

let test_protocol_responses () =
  let job =
    match
      Protocol.parse_request ~now:0. ~default_id:"d" (job_line ~id:"r1" ())
    with
    | Ok req -> req.Protocol.job
    | Error e -> Alcotest.failf "job: %s" e
  in
  let outcome = (Batch.run [| job |]).(0) in
  let fresh = Json.parse_exn (Protocol.response_of_outcome ~cached:false outcome) in
  let hit = Json.parse_exn (Protocol.response_of_outcome ~cached:true outcome) in
  Alcotest.(check (option string)) "status ok" (Some "ok")
    (Protocol.response_status fresh);
  Alcotest.(check bool) "fresh not cached" false
    (Protocol.response_cached fresh);
  Alcotest.(check bool) "hit cached" true (Protocol.response_cached hit);
  (* the cached flag is the only difference *)
  let strip_cached = function
    | Json.Obj fields ->
        Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields)
    | other -> other
  in
  Alcotest.(check string) "hit is the stored outcome bit for bit"
    (Json.to_string (strip_cached fresh))
    (Json.to_string (strip_cached hit))

let test_protocol_error_response () =
  let diagnostics =
    [ Diagnostics.error ~code:"MRM004" "initial distribution does not sum to 1" ]
  in
  let line =
    Protocol.error_response ~id:"bad-1" ~code:"SRV005" ~diagnostics
      "model failed validation"
  in
  let json = Json.parse_exn line in
  Alcotest.(check (option string)) "status" (Some "error")
    (Protocol.response_status json);
  Alcotest.(check (option string)) "code" (Some "SRV005")
    (Option.bind (Json.member "code" json) Json.to_str);
  Alcotest.(check (option string)) "id" (Some "bad-1")
    (Option.bind (Json.member "id" json) Json.to_str);
  Alcotest.(check bool) "diagnostics embedded" true
    (Json.member "diagnostics" json <> None);
  (* every SRV code the server can emit is registered *)
  Alcotest.(check (list string)) "error table"
    [ "SRV001"; "SRV002"; "SRV003"; "SRV004"; "SRV005"; "SRV006" ]
    (List.map fst Protocol.error_table)

let test_protocol_validate_clean_model () =
  match Protocol.parse_request ~now:0. ~default_id:"d" (job_line ()) with
  | Error e -> Alcotest.failf "job: %s" e
  | Ok req ->
      Alcotest.(check (list string)) "built-in model validates" []
        (Diagnostics.codes (Protocol.validate req.Protocol.job))

(* ------------------------------------------------------------------ *)
(* Server end to end (in-process) *)

let with_input_lines lines f =
  let path = Filename.temp_file "mrm2_server_in" ".jsonl" in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic))

let with_server config f =
  let handle = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.drain handle;
      Server.wait handle)
    (fun () -> f handle)

let tcp_endpoint handle =
  match Server.listen_address handle with
  | Unix.ADDR_INET (_, port) -> `Tcp ("127.0.0.1", port)
  | Unix.ADDR_UNIX path -> `Unix path

let test_server_cache_and_deadline_tcp () =
  let config = Server.default_config (`Tcp ("127.0.0.1", 0)) in
  with_server config @@ fun handle ->
  let responses = ref [] in
  let summary =
    with_input_lines
      [
        job_line ~id:"first" ();
        job_line ~id:"again" ();
        (* same digest, new id *)
        job_line ~id:"late" ~extra:"\"deadline_s\":1e-9" ();
      ]
      (fun ic ->
        Client.call (tcp_endpoint handle) ~input:ic ~on_response:(fun l ->
            responses := l :: !responses))
  in
  let responses = List.rev_map Json.parse_exn !responses in
  Alcotest.(check int) "sent" 3 summary.Client.sent;
  Alcotest.(check int) "one cache hit" 1 summary.Client.cache_hits;
  Alcotest.(check int) "deadline rejected" 1 summary.Client.errors;
  match responses with
  | [ fresh; hit; late ] ->
      Alcotest.(check (option string)) "fresh ok" (Some "ok")
        (Protocol.response_status fresh);
      Alcotest.(check bool) "fresh not cached" false
        (Protocol.response_cached fresh);
      Alcotest.(check bool) "repeat served from cache" true
        (Protocol.response_cached hit);
      (* bit-for-bit: identical except the requester's id and the flag *)
      let strip json =
        match json with
        | Json.Obj fields ->
            Json.Obj
              (List.filter (fun (k, _) -> k <> "id" && k <> "cached") fields)
        | other -> other
      in
      Alcotest.(check string) "cache hit bit-for-bit"
        (Json.to_string (strip fresh))
        (Json.to_string (strip hit));
      Alcotest.(check (option string)) "hit keeps requester id"
        (Some "again")
        (Option.bind (Json.member "id" hit) Json.to_str);
      Alcotest.(check (option string)) "expired deadline -> SRV003"
        (Some "SRV003")
        (Option.bind (Json.member "code" late) Json.to_str)
  | other -> Alcotest.failf "expected 3 responses, got %d" (List.length other)

let test_server_malformed_line_keeps_connection () =
  let config = Server.default_config (`Tcp ("127.0.0.1", 0)) in
  with_server config @@ fun handle ->
  let responses = ref [] in
  let summary =
    with_input_lines
      [ "this is not json"; job_line ~id:"after-garbage" () ]
      (fun ic ->
        Client.call (tcp_endpoint handle) ~input:ic ~on_response:(fun l ->
            responses := l :: !responses))
  in
  Alcotest.(check int) "both answered" 2 summary.Client.sent;
  Alcotest.(check int) "one error" 1 summary.Client.errors;
  match List.rev_map Json.parse_exn !responses with
  | [ bad; good ] ->
      Alcotest.(check (option string)) "SRV001" (Some "SRV001")
        (Option.bind (Json.member "code" bad) Json.to_str);
      Alcotest.(check (option string)) "connection survives" (Some "ok")
        (Protocol.response_status good)
  | _ -> Alcotest.fail "expected 2 responses"

let test_server_unix_socket_lifecycle () =
  let path = Filename.temp_file "mrm2_serve" ".sock" in
  Sys.remove path;
  let config = Server.default_config (`Unix path) in
  let handle = Server.start config in
  Alcotest.(check bool) "socket bound" true (Sys.file_exists path);
  let summary =
    with_input_lines
      [ job_line ~id:"u1" () ]
      (fun ic ->
        Client.call (`Unix path) ~input:ic ~on_response:(fun _ -> ()))
  in
  Alcotest.(check int) "answered over unix socket" 1 summary.Client.sent;
  Alcotest.(check int) "no errors" 0 summary.Client.errors;
  Server.drain handle;
  Server.drain handle;
  (* idempotent *)
  Server.wait handle;
  Alcotest.(check bool) "socket path unlinked on drain" false
    (Sys.file_exists path)

let test_server_concurrent_clients () =
  let config =
    { (Server.default_config (`Tcp ("127.0.0.1", 0))) with
      Server.workers = 2 }
  in
  with_server config @@ fun handle ->
  let endpoint = tcp_endpoint handle in
  let lines i =
    [ job_line ~id:(Printf.sprintf "c%d-a" i) ~t:(0.5 +. float_of_int i) ();
      job_line ~id:(Printf.sprintf "c%d-b" i) ~t:(1.5 +. float_of_int i) () ]
  in
  let run i =
    let responses = ref [] in
    let summary =
      with_input_lines (lines i) (fun ic ->
          Client.call endpoint ~input:ic ~on_response:(fun l ->
              responses := l :: !responses))
    in
    (summary, List.rev !responses)
  in
  let results = Array.make 2 None in
  let threads =
    List.init 2 (fun i ->
        Thread.create (fun () -> results.(i) <- Some (run i)) ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i result ->
      match result with
      | None -> Alcotest.failf "client %d never finished" i
      | Some (summary, responses) ->
          Alcotest.(check int)
            (Printf.sprintf "client %d: complete JSONL" i)
            2 summary.Client.sent;
          Alcotest.(check int)
            (Printf.sprintf "client %d: no errors" i)
            0 summary.Client.errors;
          List.iteri
            (fun j line ->
              let json = Json.parse_exn line in
              Alcotest.(check (option string))
                (Printf.sprintf "client %d response %d well-formed" i j)
                (Some "ok")
                (Protocol.response_status json);
              Alcotest.(check (option string))
                (Printf.sprintf "client %d response %d in order" i j)
                (Some
                   (Printf.sprintf "c%d-%s" i (if j = 0 then "a" else "b")))
                (Option.bind (Json.member "id" json) Json.to_str))
            responses)
    results

(* ------------------------------------------------------------------ *)
(* Stale Unix socket handling (Server.bind_endpoint rules) *)

let test_stale_socket_unlinked () =
  let path = Filename.temp_file "mrm2_stale" ".sock" in
  Sys.remove path;
  (* leave a socket file behind with no listener, as a crash would *)
  let orphan = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind orphan (Unix.ADDR_UNIX path);
  Unix.close orphan;
  Alcotest.(check bool) "stale file on disk" true (Sys.file_exists path);
  let config = Server.default_config (`Unix path) in
  let handle = Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Server.drain handle;
      Server.wait handle)
    (fun () ->
      let summary =
        with_input_lines
          [ job_line ~id:"after-stale" () ]
          (fun ic ->
            Client.call (`Unix path) ~input:ic ~on_response:(fun _ -> ()))
      in
      Alcotest.(check int) "server answers over reclaimed path" 1
        summary.Client.sent;
      Alcotest.(check int) "no errors" 0 summary.Client.errors)

let test_live_socket_refused () =
  let path = Filename.temp_file "mrm2_live" ".sock" in
  Sys.remove path;
  let first = Server.start (Server.default_config (`Unix path)) in
  Fun.protect
    ~finally:(fun () ->
      Server.drain first;
      Server.wait first)
    (fun () ->
      (* a second server must NOT clobber the live listener *)
      match Server.start (Server.default_config (`Unix path)) with
      | (_ : Server.handle) ->
          Alcotest.fail "second bind over a live listener must raise"
      | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
          (* and the first server must still be serving *)
          let summary =
            with_input_lines
              [ job_line ~id:"still-alive" () ]
              (fun ic ->
                Client.call (`Unix path) ~input:ic ~on_response:(fun _ -> ()))
          in
          Alcotest.(check int) "original listener intact" 1
            summary.Client.sent)

let test_non_socket_path_refused () =
  let path = Filename.temp_file "mrm2_notasock" ".txt" in
  (* a regular file: never unlink someone's data *)
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      match Server.start (Server.default_config (`Unix path)) with
      | (_ : Server.handle) ->
          Alcotest.fail "binding over a regular file must raise"
      | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
          Alcotest.(check bool) "file untouched" true (Sys.file_exists path))

(* ------------------------------------------------------------------ *)
(* Client retry/backoff *)

let test_client_retries_exhausted () =
  let t0 = Unix.gettimeofday () in
  match
    with_input_lines
      [ job_line ~id:"nobody-home" () ]
      (fun ic ->
        Client.call ~retries:2 (`Tcp ("127.0.0.1", 1)) ~input:ic
          ~on_response:(fun _ -> ()))
  with
  | (_ : Client.summary) -> Alcotest.fail "unreachable endpoint must raise"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* two backoff sleeps happened: >= 0.5 * (0.05 + 0.1) *)
      Alcotest.(check bool) "backoff waited" true
        (Unix.gettimeofday () -. t0 >= 0.07)

let test_client_retry_until_server_appears () =
  let path = Filename.temp_file "mrm2_lateserve" ".sock" in
  Sys.remove path;
  let handle_cell = ref None in
  let starter =
    Thread.create
      (fun () ->
        Thread.delay 0.15;
        handle_cell := Some (Server.start (Server.default_config (`Unix path))))
      ()
  in
  let summary =
    Fun.protect
      ~finally:(fun () ->
        Thread.join starter;
        match !handle_cell with
        | Some handle ->
            Server.drain handle;
            Server.wait handle
        | None -> ())
      (fun () ->
        with_input_lines
          [ job_line ~id:"patient" () ]
          (fun ic ->
            (* the socket does not exist yet: ENOENT, retried with
               backoff until the server comes up *)
            Client.call ~retries:8 (`Unix path) ~input:ic
              ~on_response:(fun _ -> ())))
  in
  Alcotest.(check int) "answered once the server appeared" 1
    summary.Client.sent;
  Alcotest.(check int) "no errors" 0 summary.Client.errors;
  Alcotest.(check bool) "at least one retry recorded" true
    (summary.Client.retries >= 1)

(* ------------------------------------------------------------------ *)
(* Shared wire helper (EINTR-retrying line I/O)                         *)

module Wire = Mrm_server.Wire

(* Run [f] while an interval timer delivers SIGALRM every few
   milliseconds to a no-op handler. OCaml installs handlers without
   SA_RESTART, so any blocking read/write in [f] keeps getting
   interrupted with EINTR — exactly what the systhreads tick signal
   does in production. *)
let with_signal_storm f =
  let previous = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let stop () =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.; it_value = 0. });
    Sys.set_signal Sys.sigalrm previous
  in
  ignore
    (Unix.setitimer Unix.ITIMER_REAL
       { Unix.it_interval = 0.005; it_value = 0.005 });
  Fun.protect ~finally:stop f

let test_wire_read_survives_eintr () =
  (* Regression: a blocked read must ride out EINTR instead of treating
     it as a disconnect (the old channel-based server/client I/O
     surfaced it as Sys_error and dropped the connection). The writer
     delays long enough for dozens of SIGALRMs to interrupt the read. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Wire.of_fd a in
  Fun.protect
    ~finally:(fun () ->
      Wire.close reader;
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      with_signal_storm (fun () ->
          let writer =
            Thread.create
              (fun () ->
                Thread.delay 0.15;
                let payload = Bytes.of_string "delayed response\n" in
                let len = Bytes.length payload in
                let rec push off =
                  if off < len then
                    match Unix.single_write b payload off (len - off) with
                    | n -> push (off + n)
                    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                        push off
                in
                push 0)
              ()
          in
          let line = Wire.read_line reader in
          Thread.join writer;
          Alcotest.(check string)
            "line received through the storm" "delayed response" line))

let test_wire_write_survives_eintr () =
  (* Symmetric regression for the send side: pump enough data through a
     socketpair that writes block on the kernel buffer while the drainer
     is deliberately slow and signals keep firing. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let writer = Wire.of_fd a in
  let reader = Wire.of_fd b in
  Fun.protect
    ~finally:(fun () ->
      Wire.close writer;
      Wire.close reader)
    (fun () ->
      with_signal_storm (fun () ->
          let big = String.make 400_000 'x' in
          let lines = 4 in
          let got = ref 0 in
          let drainer =
            Thread.create
              (fun () ->
                for _ = 1 to lines do
                  Thread.delay 0.02;
                  if Wire.read_line reader = big then incr got
                done)
              ()
          in
          for _ = 1 to lines do
            Wire.write_line writer big
          done;
          Thread.join drainer;
          Alcotest.(check int) "all payloads crossed intact" lines !got))

let test_wire_residue_and_close () =
  (* Two lines arriving in one read are split via the residue buffer;
     EOF surfaces as Closed. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Wire.of_fd a in
  let payload = Bytes.of_string "first\nsecond\n" in
  ignore (Unix.write b payload 0 (Bytes.length payload));
  Unix.close b;
  Fun.protect
    ~finally:(fun () -> Wire.close conn)
    (fun () ->
      Alcotest.(check string) "first" "first" (Wire.read_line conn);
      Alcotest.(check string) "second" "second" (Wire.read_line conn);
      match Wire.read_line conn with
      | (_ : string) -> Alcotest.fail "EOF must raise Closed"
      | exception Wire.Closed -> ())

let test_wire_rcvtimeo_is_timeout () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.setsockopt_float a Unix.SO_RCVTIMEO 0.05;
  let conn = Wire.of_fd a in
  Fun.protect
    ~finally:(fun () ->
      Wire.close conn;
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      match Wire.read_line conn with
      | (_ : string) -> Alcotest.fail "deadline must raise Timeout"
      | exception Wire.Timeout -> ())

let test_session_survives_eintr () =
  (* End to end: a whole client session against a live server completes
     under the signal storm — no spurious Disconnected. *)
  with_server (Server.default_config (`Tcp ("127.0.0.1", 0))) (fun handle ->
      let endpoint = tcp_endpoint handle in
      with_signal_storm (fun () ->
          let jobs = List.init 5 (fun k -> job_line ~id:(string_of_int k) ()) in
          let summary =
            with_input_lines jobs (fun ic ->
                Client.call endpoint ~input:ic ~on_response:(fun _ -> ()))
          in
          Alcotest.(check int) "all answered" 5 summary.Client.sent;
          Alcotest.(check int) "no errors" 0 summary.Client.errors))

let () =
  Alcotest.run "server"
    [
      ( "lru-cache",
        [
          Alcotest.test_case "promotion + stats" `Quick test_lru_promotion;
          Alcotest.test_case "weight eviction" `Quick
            test_lru_weight_eviction;
          Alcotest.test_case "replace + clear" `Quick
            test_lru_replace_and_clear;
          Alcotest.test_case "invalid caps" `Quick test_lru_invalid_caps;
          Alcotest.test_case "concurrent hit/insert/evict" `Quick
            test_lru_concurrent;
        ] );
      ( "rqueue",
        [
          Alcotest.test_case "fifo + backpressure" `Quick
            test_rqueue_fifo_and_full;
          Alcotest.test_case "close semantics" `Quick
            test_rqueue_close_semantics;
          Alcotest.test_case "blocking pop" `Quick test_rqueue_blocking_pop;
          Alcotest.test_case "invalid capacity" `Quick
            test_rqueue_invalid_capacity;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "deadline_s parsing" `Quick
            test_protocol_deadline_parsing;
          Alcotest.test_case "cached flag" `Quick test_protocol_responses;
          Alcotest.test_case "error responses" `Quick
            test_protocol_error_response;
          Alcotest.test_case "validate clean model" `Quick
            test_protocol_validate_clean_model;
        ] );
      ( "server",
        [
          Alcotest.test_case "cache hit + deadline over TCP" `Quick
            test_server_cache_and_deadline_tcp;
          Alcotest.test_case "malformed line keeps connection" `Quick
            test_server_malformed_line_keeps_connection;
          Alcotest.test_case "unix socket lifecycle" `Quick
            test_server_unix_socket_lifecycle;
          Alcotest.test_case "concurrent clients" `Quick
            test_server_concurrent_clients;
          Alcotest.test_case "stale socket reclaimed" `Quick
            test_stale_socket_unlinked;
          Alcotest.test_case "live socket refused" `Quick
            test_live_socket_refused;
          Alcotest.test_case "non-socket path refused" `Quick
            test_non_socket_path_refused;
        ] );
      ( "client",
        [
          Alcotest.test_case "retries exhausted" `Quick
            test_client_retries_exhausted;
          Alcotest.test_case "retry until server appears" `Quick
            test_client_retry_until_server_appears;
        ] );
      ( "wire",
        [
          Alcotest.test_case "read survives EINTR" `Quick
            test_wire_read_survives_eintr;
          Alcotest.test_case "write survives EINTR" `Quick
            test_wire_write_survives_eintr;
          Alcotest.test_case "residue buffer + Closed" `Quick
            test_wire_residue_and_close;
          Alcotest.test_case "SO_RCVTIMEO -> Timeout" `Quick
            test_wire_rcvtimeo_is_timeout;
          Alcotest.test_case "session survives EINTR" `Quick
            test_session_survives_eintr;
        ] );
    ]
