(* Tests for mrm_obs: metrics cells, trace sinks, the JSONL schema, and
   the guarantee that instrumentation never changes solver numerics. *)

module Trace = Mrm_obs.Trace
module Metrics = Mrm_obs.Metrics
module Json = Mrm_util.Json
module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Generator = Mrm_ctmc.Generator
module Pool = Mrm_engine.Pool

let generator2 = Generator.of_triplets ~states:2 [ (0, 1, 2.); (1, 0, 3.) ]

let model2 =
  Model.make ~generator:generator2 ~rates:[| 2.0; -1.0 |]
    ~variances:[| 0.5; 1.5 |] ~initial:[| 0.7; 0.3 |]

(* Every test leaves the global sink at Null so suites can run in any
   order (and so stderr stays clean under MRM2_TRACE=stderr runs). *)
let with_sink sink f =
  Trace.set_sink sink;
  Fun.protect ~finally:(fun () -> Trace.set_sink Trace.Null) f

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let test_metrics_counters () =
  Metrics.reset ();
  let c = Metrics.counter "test.alpha" in
  let c' = Metrics.counter "test.alpha" in
  Metrics.incr c;
  Metrics.incr ~by:4 c';
  Alcotest.(check int) "same cell by name" 5 (Metrics.count c);
  Metrics.incr ~by:0 c;
  Alcotest.(check int) "by:0 is a no-op" 5 (Metrics.count c);
  match Metrics.incr ~by:(-1) c with
  | () -> Alcotest.fail "negative increment accepted"
  | exception Invalid_argument _ -> ()

let test_metrics_gauges () =
  Metrics.reset ();
  let g = Metrics.gauge "test.gauge" in
  Alcotest.(check bool) "unset reads nan" true
    (Float.is_nan (Metrics.gauge_value g));
  Metrics.set g 2.5;
  Alcotest.(check (float 0.)) "set" 2.5 (Metrics.gauge_value g);
  Metrics.observe_max g 1.0;
  Alcotest.(check (float 0.)) "max keeps larger" 2.5 (Metrics.gauge_value g);
  Metrics.observe_max g 7.0;
  Alcotest.(check (float 0.)) "max takes larger" 7.0 (Metrics.gauge_value g);
  let h = Metrics.gauge "test.gauge.fresh" in
  Metrics.observe_max h 3.0;
  Alcotest.(check (float 0.)) "max seeds unset gauge" 3.0
    (Metrics.gauge_value h)

let test_metrics_snapshot_and_reset () =
  Metrics.reset ();
  let c = Metrics.counter "test.snap.counter" in
  let g = Metrics.gauge "test.snap.gauge" in
  let unset = Metrics.gauge "test.snap.unset" in
  Metrics.incr ~by:3 c;
  Metrics.set g 1.5;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter in snapshot" 3
    (List.assoc "test.snap.counter" snap.Metrics.counters);
  Alcotest.(check (float 0.)) "gauge in snapshot" 1.5
    (List.assoc "test.snap.gauge" snap.Metrics.gauges);
  Alcotest.(check bool) "unset gauge omitted" false
    (List.mem_assoc "test.snap.unset" snap.Metrics.gauges);
  let names = List.map fst snap.Metrics.counters in
  Alcotest.(check (list string)) "counters sorted" (List.sort compare names)
    names;
  (* reset zeroes but keeps the registered cells (and live handles). *)
  Metrics.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.count c);
  Alcotest.(check bool) "gauge unset again" true
    (Float.is_nan (Metrics.gauge_value g));
  Metrics.incr c;
  Alcotest.(check int) "old handle still valid" 1
    (Metrics.count (Metrics.counter "test.snap.counter"));
  ignore unset

let test_metrics_json () =
  Metrics.reset ();
  Metrics.incr ~by:2 (Metrics.counter "test.json.counter");
  Metrics.set (Metrics.gauge "test.json.gauge") 4.5;
  let json = Metrics.to_json () in
  let counter =
    Option.bind (Json.member "counters" json) (fun c ->
        Option.bind (Json.member "test.json.counter" c) Json.to_int)
  in
  let gauge =
    Option.bind (Json.member "gauges" json) (fun g ->
        Option.bind (Json.member "test.json.gauge" g) Json.to_float)
  in
  Alcotest.(check (option int)) "counter exported" (Some 2) counter;
  Alcotest.(check (option (float 0.))) "gauge exported" (Some 4.5) gauge

let test_metrics_domain_safe () =
  (* Concurrent increments from pool workers must not lose updates. On
     4.14 the pool is sequential and this degenerates to a smoke test. *)
  Metrics.reset ();
  let c = Metrics.counter "test.pool.counter" in
  let n = 1000 in
  Pool.with_pool ~jobs:4 (fun pool ->
      Pool.run pool n (fun _ -> Metrics.incr c));
  Alcotest.(check int) "no lost increments" n (Metrics.count c)

let test_solver_metrics_recorded () =
  Metrics.reset ();
  let r = Randomization.moments model2 ~t:0.7 ~order:2 in
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "one solve" 1
    (List.assoc "randomization.solves" snap.Metrics.counters);
  Alcotest.(check int) "iterations = G" r.Randomization.diagnostics.iterations
    (List.assoc "randomization.iterations" snap.Metrics.counters);
  Alcotest.(check (float 0.)) "truncation gauge = G"
    (float_of_int r.Randomization.diagnostics.iterations)
    (List.assoc "randomization.truncation_point" snap.Metrics.gauges)

(* ------------------------------------------------------------------ *)
(* Trace                                                                *)

let test_sink_of_spec () =
  let check spec expected =
    Alcotest.(check bool)
      (Printf.sprintf "spec %S" spec)
      true
      (Trace.sink_of_spec spec = expected)
  in
  check "" Trace.Null;
  check "0" Trace.Null;
  check "off" Trace.Null;
  check "null" Trace.Null;
  check "stderr" Trace.Stderr;
  check "1" Trace.Stderr;
  check "/tmp/some/trace.jsonl" (Trace.Jsonl "/tmp/some/trace.jsonl")

let test_trace_disabled_is_transparent () =
  Trace.set_sink Trace.Null;
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  (* with_span must pass values and exceptions through unchanged. *)
  Alcotest.(check int) "value through" 42
    (Trace.with_span "test.null" (fun () -> 42));
  match
    Trace.with_span "test.raise" (fun () -> failwith "boom")
  with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure msg -> Alcotest.(check string) "exn through" "boom" msg

let read_jsonl path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (Json.parse_exn line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let str_member key json = Option.bind (Json.member key json) Json.to_str
let num_member key json = Option.bind (Json.member key json) Json.to_float

let test_trace_jsonl_roundtrip () =
  let path = Filename.temp_file "mrm2_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  with_sink (Trace.Jsonl path) (fun () ->
      let result =
        Trace.with_span "outer" ~attrs:[ ("order", Trace.Int 3) ] (fun () ->
            Trace.event "tick" ~attrs:[ ("k", Trace.Float 0.5) ];
            let inner =
              Trace.with_span "inner" (fun () ->
                  Trace.add_attr "note" (Trace.Str "deep");
                  7)
            in
            Trace.add_attr "flag" (Trace.Bool true);
            inner + 1)
      in
      Alcotest.(check int) "span result" 8 result;
      Trace.flush ());
  (* set_sink Null (inside with_sink) closed the file; parse it back. *)
  let records = read_jsonl path in
  Alcotest.(check int) "three records" 3 (List.length records);
  let find_span name =
    List.find
      (fun r ->
        str_member "type" r = Some "span" && str_member "name" r = Some name)
      records
  in
  let outer = find_span "outer" and inner = find_span "inner" in
  let event =
    List.find (fun r -> str_member "type" r = Some "event") records
  in
  Alcotest.(check (option string)) "event name" (Some "tick")
    (str_member "name" event);
  (* Hierarchy: inner.parent = outer.id, outer.parent = null. *)
  let id json = Option.bind (Json.member "id" json) Json.to_int in
  Alcotest.(check bool) "inner linked to outer" true
    (Option.bind (Json.member "parent" inner) Json.to_int = id outer);
  Alcotest.(check bool) "outer is a root" true
    (Json.member "parent" outer = Some Json.Null);
  (* Timestamps: elapsed = end - start >= 0, and the event lies inside
     the outer span (clock is clamped monotone). *)
  List.iter
    (fun span ->
      match
        (num_member "start" span, num_member "end" span,
         num_member "elapsed" span)
      with
      | Some s, Some e, Some d ->
          Alcotest.(check bool) "span times ordered" true
            (s <= e && d >= 0. && abs_float (d -. (e -. s)) <= 1e-9)
      | _ -> Alcotest.fail "span missing timestamps")
    [ outer; inner ];
  (* Attributes survive the round trip with their types. *)
  let attr key json = Option.bind (Json.member "attrs" json) (Json.member key) in
  Alcotest.(check bool) "outer order attr" true
    (Option.bind (attr "order" outer) Json.to_int = Some 3);
  Alcotest.(check bool) "outer flag attr" true
    (Option.bind (attr "flag" outer) Json.to_bool = Some true);
  Alcotest.(check (option string)) "inner note attr" (Some "deep")
    (Option.bind (attr "note" inner) Json.to_str);
  Alcotest.(check bool) "event float attr" true
    (Option.bind (attr "k" event) Json.to_float = Some 0.5)

let test_traced_solver_emits_span () =
  let path = Filename.temp_file "mrm2_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let r =
    with_sink (Trace.Jsonl path) (fun () ->
        let r = Randomization.moments model2 ~t:0.7 ~order:2 in
        Trace.flush ();
        r)
  in
  let records = read_jsonl path in
  let solve =
    List.find
      (fun j -> str_member "name" j = Some "randomization.moments")
      records
  in
  let attr key = Option.bind (Json.member "attrs" solve) (Json.member key) in
  Alcotest.(check bool) "G attribute matches diagnostics" true
    (Option.bind (attr "G") Json.to_int
    = Some r.Randomization.diagnostics.iterations);
  Alcotest.(check bool) "t attribute" true
    (Option.bind (attr "t") Json.to_float = Some 0.7);
  Alcotest.(check bool) "has elapsed" true
    (match num_member "elapsed" solve with Some d -> d >= 0. | None -> false);
  (* The per-phase children are present and linked to the solve span. *)
  let id = Option.bind (Json.member "id" solve) Json.to_int in
  List.iter
    (fun phase ->
      let child =
        List.find_opt (fun j -> str_member "name" j = Some phase) records
      in
      match child with
      | None -> Alcotest.failf "missing phase span %s" phase
      | Some c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s parented to solve" phase)
            true
            (Option.bind (Json.member "parent" c) Json.to_int = id))
    [ "randomization.setup"; "randomization.sweep"; "randomization.finalize" ]

let test_tracing_does_not_change_numerics () =
  let solve () = Randomization.moments model2 ~t:1.3 ~order:4 in
  Trace.set_sink Trace.Null;
  let plain = solve () in
  let path = Filename.temp_file "mrm2_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let traced = with_sink (Trace.Jsonl path) solve in
  Array.iteri
    (fun n row ->
      Array.iteri
        (fun i v ->
          if
            Int64.bits_of_float v
            <> Int64.bits_of_float traced.Randomization.moments.(n).(i)
          then
            Alcotest.failf "moment (%d,%d) changed under tracing" n i)
        row)
    plain.Randomization.moments;
  Alcotest.(check int) "same iteration count"
    plain.Randomization.diagnostics.iterations
    traced.Randomization.diagnostics.iterations

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mrm_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "gauges" `Quick test_metrics_gauges;
          Alcotest.test_case "snapshot and reset" `Quick
            test_metrics_snapshot_and_reset;
          Alcotest.test_case "json export" `Quick test_metrics_json;
          Alcotest.test_case "domain-safe increments" `Quick
            test_metrics_domain_safe;
          Alcotest.test_case "solver instrumentation" `Quick
            test_solver_metrics_recorded;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sink spec parsing" `Quick test_sink_of_spec;
          Alcotest.test_case "disabled sink is transparent" `Quick
            test_trace_disabled_is_transparent;
          Alcotest.test_case "jsonl round trip" `Quick
            test_trace_jsonl_roundtrip;
          Alcotest.test_case "solver span schema" `Quick
            test_traced_solver_emits_span;
          Alcotest.test_case "numerics unchanged" `Quick
            test_tracing_does_not_change_numerics;
        ] );
    ]
