(* Tests for the source-level analyzer (Mrm_analysis): one fixture per
   SRC rule linted under synthetic paths that pin the hot-path /
   library / parallel-host classification, the inline-suppression
   scanner (including multi-line standalone comments), the baseline
   format and its allowance accounting, the GitHub workflow-command
   rendering, and a self-check that lints the repository's own sources
   modulo the checked-in baseline — the in-process twin of
   `dune build @lint-src`. *)

module Lint = Mrm_analysis.Lint
module Suppress = Mrm_analysis.Suppress
module Baseline = Mrm_analysis.Baseline
module Diagnostics = Mrm_check.Diagnostics

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture name = read_file (Filename.concat "fixtures/src" name)
let codes findings = List.map (fun (f : Lint.finding) -> f.Lint.code) findings

let lint_fixture ~path name = Lint.lint_source ~path (fixture name)

(* ------------------------------------------------------------------ *)
(* One fixture per rule                                                 *)

let test_src001_float_eq () =
  match lint_fixture ~path:"lib/util/fake.ml" "src_float_eq.ml" with
  | [ f ] ->
      Alcotest.(check string) "code" "SRC001" f.Lint.code;
      Alcotest.(check int) "line" 2 f.Lint.line;
      Alcotest.(check bool) "warning severity" true
        (f.Lint.severity = Diagnostics.Warning)
  | fs -> Alcotest.failf "expected exactly one SRC001, got %d" (List.length fs)

let test_src002_poly_compare () =
  Alcotest.(check (list string))
    "hot path flags" [ "SRC002" ]
    (codes (lint_fixture ~path:"lib/linalg/fake.ml" "src_poly_compare.ml"));
  Alcotest.(check (list string))
    "cold path is silent" []
    (codes (lint_fixture ~path:"lib/util/fake.ml" "src_poly_compare.ml"));
  (* a comparison whose operand is visibly immediate is fine even in a
     hot-path module *)
  Alcotest.(check (list string))
    "known-int comparison is fine" []
    (codes (Lint.lint_source ~path:"lib/core/fake.ml" "let f a = a = 1\n"))

let test_src003_unsafe () =
  let findings = lint_fixture ~path:"lib/util/fake.ml" "src_unsafe.ml" in
  Alcotest.(check (list string))
    "both sites" [ "SRC003"; "SRC003" ] (codes findings);
  List.iter
    (fun (f : Lint.finding) ->
      Alcotest.(check bool) "error severity" true
        (f.Lint.severity = Diagnostics.Error))
    findings

let test_src004_swallow () =
  match lint_fixture ~path:"lib/util/fake.ml" "src_swallow.ml" with
  | [ f ] ->
      Alcotest.(check string) "code" "SRC004" f.Lint.code;
      (* only the catch-all on line 3 fires, not the specific handler *)
      Alcotest.(check int) "line" 3 f.Lint.line
  | fs -> Alcotest.failf "expected exactly one SRC004, got %d" (List.length fs)

let test_src005_parallel_write () =
  (match lint_fixture ~path:"lib/engine/fake.ml" "src_race.ml" with
  | [ f ] ->
      Alcotest.(check string) "code" "SRC005" f.Lint.code;
      (* the [:=] accumulator races; the [out.(i) <-] store indexed by
         the job-bound name follows the range-disjoint convention *)
      Alcotest.(check int) "line" 4 f.Lint.line
  | fs -> Alcotest.failf "expected exactly one SRC005, got %d" (List.length fs));
  Alcotest.(check (list string))
    "outside parallel hosts the rule is off" []
    (codes (lint_fixture ~path:"lib/util/fake.ml" "src_race.ml"))

let test_src006_print () =
  Alcotest.(check (list string))
    "library code flags" [ "SRC006" ]
    (codes (lint_fixture ~path:"lib/models/fake.ml" "src_print.ml"));
  Alcotest.(check (list string))
    "executables may print" []
    (codes (lint_fixture ~path:"bin/fake.ml" "src_print.ml"))

let test_src090_syntax_error () =
  match lint_fixture ~path:"lib/util/fake.ml" "src_syntax_error.ml" with
  | [ f ] ->
      Alcotest.(check string) "code" "SRC090" f.Lint.code;
      Alcotest.(check bool) "error severity" true
        (f.Lint.severity = Diagnostics.Error)
  | fs -> Alcotest.failf "expected exactly one SRC090, got %d" (List.length fs)

let test_rule_table_registry () =
  let registered = List.map (fun (c, _, _) -> c) Lint.rule_table in
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " registered") true
        (List.mem code registered))
    [ "SRC001"; "SRC002"; "SRC003"; "SRC004"; "SRC005"; "SRC006";
      "SRC010"; "SRC011"; "SRC012"; "SRC013"; "SRC014"; "SRC090" ];
  Alcotest.(check int) "codes unique"
    (List.length registered)
    (List.length (List.sort_uniq compare registered))

(* ------------------------------------------------------------------ *)
(* SRC010–SRC014: one defective/clean fixture pair per rule             *)

(* Each defective fixture must produce exactly its own rule (at the
   pinned lines) and its clean twin must be silent — same path, so any
   difference comes from the code, not the classification. *)
let check_pair ~code ~lines defective clean =
  let got = lint_fixture ~path:("lib/util/" ^ defective) defective in
  Alcotest.(check (list string))
    (defective ^ " codes")
    (List.map (fun _ -> code) lines)
    (codes got);
  Alcotest.(check (list int))
    (defective ^ " lines") lines
    (List.map (fun (f : Lint.finding) -> f.Lint.line) got);
  Alcotest.(check (list string))
    (clean ^ " is silent") []
    (codes (lint_fixture ~path:("lib/util/" ^ clean) clean))

let test_src010_lock_leak () =
  check_pair ~code:"SRC010" ~lines:[ 7 ] "src_lock_leak.ml"
    "src_lock_leak_ok.ml"

let test_src011_block_under_lock () =
  check_pair ~code:"SRC011" ~lines:[ 6 ] "src_block_under_lock.ml"
    "src_block_under_lock_ok.ml"

let test_src012_lock_order () =
  check_pair ~code:"SRC012" ~lines:[ 8 ] "src_lock_order.ml"
    "src_lock_order_ok.ml"

let test_src013_shared_state () =
  check_pair ~code:"SRC013" ~lines:[ 7 ] "src_shared_state.ml"
    "src_shared_state_ok.ml"

let test_src014_condition () =
  check_pair ~code:"SRC014" ~lines:[ 10; 14 ] "src_cond.ml" "src_cond_ok.ml"

let test_src01x_severities () =
  let severity code =
    let _, s, _ = List.find (fun (c, _, _) -> c = code) Lint.rule_table in
    s
  in
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " is an error") true
        (severity code = Diagnostics.Error))
    [ "SRC010"; "SRC012"; "SRC013" ];
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " is a warning") true
        (severity code = Diagnostics.Warning))
    [ "SRC011"; "SRC014" ]

(* ------------------------------------------------------------------ *)
(* Cfg round-trip: node/edge counts survive Pprintast pretty-printing   *)

let cfg_fixture_names =
  [ "src_lock_leak.ml"; "src_lock_leak_ok.ml"; "src_block_under_lock.ml";
    "src_block_under_lock_ok.ml"; "src_lock_order.ml"; "src_lock_order_ok.ml";
    "src_shared_state.ml"; "src_shared_state_ok.ml"; "src_cond.ml";
    "src_cond_ok.ml"; "src_race.ml" ]

let cfg_counts name contents =
  let str = Parse.implementation (Lexing.from_string contents) in
  let _, cfgs = Mrm_analysis.Cfg.build ~file:name str in
  Mrm_analysis.Cfg.counts cfgs

let cfg_round_trip_property =
  (* The CFG is a function of program structure, not of layout: pretty
     printing with Pprintast and re-parsing must preserve the total
     node and edge counts. QCheck2 draws fixtures so failures shrink
     to a single named file. *)
  QCheck2.Test.make ~count:50 ~name:"Cfg counts stable under Pprintast"
    (QCheck2.Gen.oneofl cfg_fixture_names)
    (fun name ->
      let contents = fixture name in
      let printed =
        Pprintast.string_of_structure
          (Parse.implementation (Lexing.from_string contents))
      in
      cfg_counts name contents = cfg_counts name printed)

(* ------------------------------------------------------------------ *)
(* Suppressions                                                         *)

let test_suppressed_fixture () =
  Alcotest.(check (list string))
    "all findings waived inline" []
    (codes (lint_fixture ~path:"lib/util/fake.ml" "src_suppressed.ml"))

let test_suppress_scan () =
  let text =
    "let a = 1 (* mrm:ignore SRC001 — trailing reason *)\n\
     (* mrm:ignore SRC003 SRC004 *)\n\
     let b = 2\n\
     (* mrm:ignore SRC001 — a standalone comment\n\
    \   spanning three lines\n\
    \   before it closes *)\n\
     let c = 3\n"
  in
  match Suppress.scan text with
  | [ s1; s2; s3 ] ->
      Alcotest.(check int) "s1 line" 1 s1.Suppress.line;
      Alcotest.(check bool) "s1 trailing" false s1.Suppress.standalone;
      Alcotest.(check (list string)) "s1 codes" [ "SRC001" ] s1.Suppress.codes;
      Alcotest.(check (option string))
        "s1 reason" (Some "trailing reason") s1.Suppress.reason;
      Alcotest.(check bool) "s1 covers own line" true
        (Suppress.covers s1 ~code:"SRC001" ~line:1);
      Alcotest.(check bool) "s1 does not cover next line" false
        (Suppress.covers s1 ~code:"SRC001" ~line:2);
      Alcotest.(check (list string))
        "s2 codes" [ "SRC003"; "SRC004" ] s2.Suppress.codes;
      Alcotest.(check bool) "s2 covers next line" true
        (Suppress.covers s2 ~code:"SRC004" ~line:3);
      Alcotest.(check bool) "s2 is code-specific" false
        (Suppress.covers s2 ~code:"SRC001" ~line:3);
      Alcotest.(check int) "s3 opens on line 4" 4 s3.Suppress.line;
      Alcotest.(check int) "s3 closes on line 6" 6 s3.Suppress.end_line;
      Alcotest.(check bool) "s3 covers the line after it closes" true
        (Suppress.covers s3 ~code:"SRC001" ~line:7);
      Alcotest.(check bool) "s3 does not cover past that" false
        (Suppress.covers s3 ~code:"SRC001" ~line:8)
  | ss -> Alcotest.failf "expected 3 suppressions, got %d" (List.length ss)

let test_suppress_mli () =
  (* suppressions are a raw-text scan, so they apply to interface
     files exactly as to implementations *)
  Alcotest.(check (list string))
    "unsuppressed .mli finding" [ "SRC090" ]
    (codes
       (Lint.lint_source ~path:"lib/util/fake.mli"
          "val 3 : int\nval ok : int\n"));
  Alcotest.(check (list string))
    "suppressed .mli finding" []
    (codes
       (Lint.lint_source ~path:"lib/util/fake.mli"
          "val 3 : int (* mrm:ignore SRC090 -- fixture *)\nval ok : int\n"))

let test_suppress_last_line () =
  (* the scanner must not require a trailing newline: a trailing
     suppression on the very last line, and a standalone one whose
     covered code line is the unterminated last line *)
  Alcotest.(check (list string))
    "trailing comment on last line, no newline" []
    (codes
       (Lint.lint_source ~path:"lib/util/fake.ml"
          "let f x = x = 1.0 (* mrm:ignore SRC001 -- fixture *)"));
  Alcotest.(check (list string))
    "standalone comment covering the last line, no newline" []
    (codes
       (Lint.lint_source ~path:"lib/util/fake.ml"
          "(* mrm:ignore SRC001 -- fixture *)\nlet f x = x = 1.0"));
  Alcotest.(check (list string))
    "without the suppression the finding is live" [ "SRC001" ]
    (codes (Lint.lint_source ~path:"lib/util/fake.ml" "let f x = x = 1.0"))

let test_suppress_blank_line_gap () =
  (* a standalone suppression stays attached to the next definition
     across blank lines *)
  match
    Suppress.scan "(* mrm:ignore SRC001 -- fixture *)\n\n\nlet f x = x = 1.0\n"
  with
  | [ s ] ->
      Alcotest.(check int) "target skips blanks" 4 s.Suppress.target;
      Alcotest.(check bool) "covers the definition" true
        (Suppress.covers s ~code:"SRC001" ~line:4)
  | ss -> Alcotest.failf "expected 1 suppression, got %d" (List.length ss)

(* ------------------------------------------------------------------ *)
(* Baseline                                                             *)

let test_baseline_round_trip () =
  let entries =
    [
      { Baseline.code = "SRC001"; file = "lib/a.ml"; count = 3 };
      { Baseline.code = "SRC002"; file = "lib/b.ml"; count = 1 };
    ]
  in
  (match Baseline.parse (Baseline.to_string entries) with
  | Ok parsed ->
      Alcotest.(check int) "entries" 2 (List.length parsed);
      Alcotest.(check bool) "round-trips" true (parsed = entries)
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e);
  (match Baseline.parse "# comment\n\nSRC001 lib/a.ml 2\n" with
  | Ok [ e ] ->
      Alcotest.(check string) "code" "SRC001" e.Baseline.code;
      Alcotest.(check int) "count" 2 e.Baseline.count
  | Ok es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Baseline.parse "SRC001 lib/a.ml not-a-number\n" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error _ -> ()

let test_baseline_apply () =
  let findings =
    Lint.lint_source ~path:"lib/util/fake.ml"
      "let f x = x = 1.0\nlet g x = x = 2.0\n"
  in
  Alcotest.(check (list string))
    "two findings to waive" [ "SRC001"; "SRC001" ] (codes findings);
  (* an allowance of 1 waives the first finding and leaves the second
     fresh; an unused allowance elsewhere is reported stale *)
  let baseline =
    [
      { Baseline.code = "SRC001"; file = "lib/util/fake.ml"; count = 1 };
      { Baseline.code = "SRC006"; file = "lib/gone.ml"; count = 2 };
    ]
  in
  let applied = Baseline.apply baseline findings in
  Alcotest.(check int) "waived" 1 (List.length applied.Baseline.waived);
  Alcotest.(check int) "fresh" 1 (List.length applied.Baseline.fresh);
  (match applied.Baseline.fresh with
  | [ f ] -> Alcotest.(check int) "the second finding is fresh" 2 f.Lint.line
  | _ -> Alcotest.fail "unexpected fresh set");
  (match applied.Baseline.stale with
  | [ e ] -> Alcotest.(check string) "stale file" "lib/gone.ml" e.Baseline.file
  | es -> Alcotest.failf "expected 1 stale entry, got %d" (List.length es));
  (* the exact baseline of the findings waives everything *)
  let exact = Baseline.apply (Baseline.of_findings findings) findings in
  Alcotest.(check int) "exact waives all" 0 (List.length exact.Baseline.fresh);
  Alcotest.(check int) "exact has no slack" 0 (List.length exact.Baseline.stale)

(* ------------------------------------------------------------------ *)
(* GitHub rendering                                                     *)

let test_github_rendering () =
  let d =
    Diagnostics.with_location ~file:"lib/a.ml" ~line:3 ~col:7
      (Diagnostics.warning ~code:"SRC001" "float equality")
  in
  Alcotest.(check string) "warning with location"
    "::warning file=lib/a.ml,line=3,col=7,title=SRC001::SRC001: float equality"
    (Diagnostics.to_github d);
  Alcotest.(check string) "escaping"
    "::error file=a%2Cb.ml,title=X1::X1: 50%25%0Adone"
    (Diagnostics.to_github
       (Diagnostics.with_location ~file:"a,b.ml"
          (Diagnostics.error ~code:"X1" "50%\ndone")))

(* ------------------------------------------------------------------ *)
(* Self-check: the repository lints clean modulo its own baseline       *)

let find_repo_root () =
  (* topmost ancestor that looks like the checkout (walking up from
     _build/default/test this passes through _build and lands on the
     real source root) *)
  let rec up acc dir =
    let candidate =
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lint/src_baseline.txt")
      && Sys.is_directory (Filename.concat dir "lib")
    in
    let acc = if candidate then Some dir else acc in
    let parent = Filename.dirname dir in
    if String.equal parent dir then acc else up acc parent
  in
  up None (Sys.getcwd ())

let test_repo_self_check () =
  match find_repo_root () with
  | None -> print_endline "self-check skipped: repository root not found"
  | Some root ->
      let cwd = Sys.getcwd () in
      Fun.protect
        ~finally:(fun () -> Sys.chdir cwd)
        (fun () ->
          Sys.chdir root;
          let findings = Lint.lint_paths [ "lib"; "bin"; "bench"; "test" ] in
          match Baseline.load "lint/src_baseline.txt" with
          | Error e -> Alcotest.failf "baseline unreadable: %s" e
          | Ok baseline ->
              let applied = Baseline.apply baseline findings in
              List.iter
                (fun (f : Lint.finding) ->
                  Alcotest.failf "fresh finding: %s %s:%d %s" f.Lint.code
                    f.Lint.file f.Lint.line f.Lint.message)
                applied.Baseline.fresh)

let test_concurrency_self_check () =
  (* the threaded subsystems must be clean under the SRC01x rules
     outright — no baseline allowance, no suppressions expected *)
  match find_repo_root () with
  | None -> print_endline "self-check skipped: repository root not found"
  | Some root ->
      let cwd = Sys.getcwd () in
      Fun.protect
        ~finally:(fun () -> Sys.chdir cwd)
        (fun () ->
          Sys.chdir root;
          let findings = Lint.lint_paths [ "lib/server"; "lib/engine" ] in
          let concurrency =
            List.filter
              (fun (f : Lint.finding) ->
                List.mem f.Lint.code
                  [ "SRC010"; "SRC011"; "SRC012"; "SRC013"; "SRC014" ])
              findings
          in
          List.iter
            (fun (f : Lint.finding) ->
              Alcotest.failf "concurrency finding: %s %s:%d %s" f.Lint.code
                f.Lint.file f.Lint.line f.Lint.message)
            concurrency)

let () =
  Alcotest.run "srclint"
    [
      ( "rules",
        [
          Alcotest.test_case "SRC001 float equality" `Quick
            test_src001_float_eq;
          Alcotest.test_case "SRC002 polymorphic comparison" `Quick
            test_src002_poly_compare;
          Alcotest.test_case "SRC003 unsafe" `Quick test_src003_unsafe;
          Alcotest.test_case "SRC004 catch-all" `Quick test_src004_swallow;
          Alcotest.test_case "SRC005 parallel write" `Quick
            test_src005_parallel_write;
          Alcotest.test_case "SRC006 print" `Quick test_src006_print;
          Alcotest.test_case "SRC090 syntax error" `Quick
            test_src090_syntax_error;
          Alcotest.test_case "rule table registry" `Quick
            test_rule_table_registry;
        ] );
      ( "concurrency rules",
        [
          Alcotest.test_case "SRC010 lock leak" `Quick test_src010_lock_leak;
          Alcotest.test_case "SRC011 blocking under lock" `Quick
            test_src011_block_under_lock;
          Alcotest.test_case "SRC012 lock-order cycle" `Quick
            test_src012_lock_order;
          Alcotest.test_case "SRC013 unguarded shared state" `Quick
            test_src013_shared_state;
          Alcotest.test_case "SRC014 condition discipline" `Quick
            test_src014_condition;
          Alcotest.test_case "SRC01x severities" `Quick test_src01x_severities;
          QCheck_alcotest.to_alcotest cfg_round_trip_property;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "suppressed fixture is clean" `Quick
            test_suppressed_fixture;
          Alcotest.test_case "scan and coverage" `Quick test_suppress_scan;
          Alcotest.test_case "mli files" `Quick test_suppress_mli;
          Alcotest.test_case "last line without newline" `Quick
            test_suppress_last_line;
          Alcotest.test_case "blank-line gap after standalone" `Quick
            test_suppress_blank_line_gap;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round trip" `Quick test_baseline_round_trip;
          Alcotest.test_case "allowance accounting" `Quick test_baseline_apply;
        ] );
      ( "output",
        [ Alcotest.test_case "github commands" `Quick test_github_rendering ] );
      ( "self-check",
        [
          Alcotest.test_case "repo modulo baseline" `Quick test_repo_self_check;
          Alcotest.test_case "threaded subsystems pass SRC01x" `Quick
            test_concurrency_self_check;
        ] );
    ]
