(* Standalone validator for the @obs-smoke alias: given a JSONL trace
   produced by `mrm2 moments --trace=FILE`, check that every line parses
   with Mrm_util.Json, that the schema fields are present and sane, and
   that the randomization solve span carries its truncation point. Exits
   non-zero with a diagnostic on the first violation. *)

module Json = Mrm_util.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let str_member key json = Option.bind (Json.member key json) Json.to_str
let num_member key json = Option.bind (Json.member key json) Json.to_float

let check_record lineno json =
  match str_member "type" json with
  | Some "span" ->
      let name = str_member "name" json in
      if name = None then fail "line %d: span without a name" lineno;
      (match (num_member "start" json, num_member "end" json,
              num_member "elapsed" json) with
      | Some s, Some e, Some d ->
          if not (s >= 0. && e >= s && d >= 0.) then
            fail "line %d: span %s has inconsistent timestamps" lineno
              (Option.value name ~default:"?")
      | _ -> fail "line %d: span missing timestamps" lineno);
      if Json.member "attrs" json = None then
        fail "line %d: span missing attrs" lineno
  | Some "event" ->
      if str_member "name" json = None then
        fail "line %d: event without a name" lineno;
      if num_member "time" json = None then
        fail "line %d: event without a time" lineno
  | Some other -> fail "line %d: unknown record type %S" lineno other
  | None -> fail "line %d: record without a type" lineno

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ -> fail "usage: check_trace TRACE.jsonl"
  in
  let ic =
    try open_in path with Sys_error msg -> fail "cannot open trace: %s" msg
  in
  let records = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match Json.parse line with
       | Ok json ->
           check_record !lineno json;
           records := json :: !records
       | Error msg -> fail "line %d: invalid JSON: %s" !lineno msg
     done
   with End_of_file -> close_in ic);
  let records = List.rev !records in
  if records = [] then fail "trace is empty";
  (* The traced solve must have produced a randomization.moments span
     with its truncation point G and the per-phase children. *)
  let solve =
    match
      List.find_opt
        (fun j -> str_member "name" j = Some "randomization.moments")
        records
    with
    | Some span -> span
    | None -> fail "no randomization.moments span in trace"
  in
  let attr key = Option.bind (Json.member "attrs" solve) (Json.member key) in
  (match Option.bind (attr "G") Json.to_int with
  | Some g when g >= 1 -> ()
  | Some g -> fail "solve span has implausible G = %d" g
  | None -> fail "solve span has no G attribute");
  if attr "t" = None then fail "solve span has no t attribute";
  List.iter
    (fun phase ->
      if
        not
          (List.exists (fun j -> str_member "name" j = Some phase) records)
      then fail "missing phase span %s" phase)
    [ "randomization.setup"; "randomization.sweep"; "randomization.finalize" ];
  Printf.printf "trace ok: %d records\n" (List.length records)
