(* End-to-end smoke driver behind the @route-smoke dune alias (not an
   alcotest binary): spawns two real `mrm2 serve` replicas and an
   `mrm2 route` front-end on temporary Unix sockets and checks the
   distributed serving contract from outside —
   - a scripted `mrm2 call` through the router answers every distinct
     job, and a repeat of the same stream comes back 100% cached
     (consistent hashing returned every digest to its owning replica);
   - a small `mrm2 loadgen` bench runs through the router and emits a
     well-formed benchmark record;
   - SIGTERM kills one replica in the middle of a lockstep request
     stream and every accepted request still receives a bit-for-bit
     correct response (failover, zero wrong answers), with the router's
     stats reporting the mark-down and at least one failover;
   - the killed replica, the surviving replica and the router all
     drain to exit 0, and the router's metrics report carries the
     cluster.* counters.

   The router's probe interval is set high on purpose: the kill must be
   detected passively, on the forward path, not papered over by a
   lucky probe. Usage: route_smoke MRM2_EXE. *)

module Json = Mrm_util.Json

let fail fmt =
  Printf.ksprintf (fun m -> prerr_endline ("route_smoke: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lines_of_file path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")

let contains ~sub s =
  let n = String.length sub in
  let rec at i =
    i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
  in
  at 0

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let spawn exe argv ~stdout ~stderr =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let out =
    Unix.openfile stdout [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let err =
    Unix.openfile stderr [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let pid = Unix.create_process exe argv devnull out err in
  Unix.close devnull;
  Unix.close out;
  Unix.close err;
  pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, Unix.WSIGNALED s -> fail "process killed by signal %d" s
  | _, Unix.WSTOPPED s -> fail "process stopped by signal %d" s

let job ~id ~t =
  Printf.sprintf
    "{\"id\":\"%s\",\"model\":\"onoff\",\"sigma2\":1,\"size\":16,\"t\":%g,\"order\":3}"
    id t

let await_ready ~what ~pid ~err_file =
  let deadline = Unix.gettimeofday () +. 15. in
  let rec poll () =
    if Unix.gettimeofday () > deadline then
      fail "%s not ready after 15s; stderr:\n%s" what (read_file err_file)
    else if contains ~sub:"listening on" (read_file err_file) then ()
    else begin
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _, _ ->
          fail "%s exited before becoming ready; stderr:\n%s" what
            (read_file err_file));
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()

let () =
  if Array.length Sys.argv < 2 then fail "usage: route_smoke MRM2_EXE";
  let mrm2 = Sys.argv.(1) in
  let tmp suffix = Filename.temp_file "mrm2_route" suffix in
  let sock name =
    let path = tmp ("." ^ name ^ ".sock") in
    Sys.remove path;
    path
  in
  let r1_sock = sock "r1" and r2_sock = sock "r2" in
  let router_sock = sock "router" in

  (* -------------------------------------------------------------- *)
  (* two replicas + the router, all real processes *)
  let r1_err = tmp ".r1.err" in
  let r1 =
    spawn mrm2
      [| mrm2; "serve"; "--socket"; r1_sock |]
      ~stdout:(tmp ".r1.out") ~stderr:r1_err
  in
  let r2_err = tmp ".r2.err" in
  let r2 =
    spawn mrm2
      [| mrm2; "serve"; "--socket"; r2_sock |]
      ~stdout:(tmp ".r2.out") ~stderr:r2_err
  in
  await_ready ~what:"replica r1" ~pid:r1 ~err_file:r1_err;
  await_ready ~what:"replica r2" ~pid:r2 ~err_file:r2_err;
  let router_err = tmp ".router.err" in
  let router =
    spawn mrm2
      [|
        mrm2; "route"; "--socket"; router_sock; "--backend"; r1_sock;
        "--backend"; r2_sock; "--probe-interval"; "30"; "--io-timeout";
        "20"; "--metrics";
      |]
      ~stdout:(tmp ".router.out") ~stderr:router_err
  in
  await_ready ~what:"router" ~pid:router ~err_file:router_err;

  (* -------------------------------------------------------------- *)
  (* distinct jobs through the router; then the same stream again,
     which must be answered entirely from the sharded caches *)
  let ids = List.init 12 (fun i -> Printf.sprintf "j%d" i) in
  let job_of_id id =
    let i = int_of_string (String.sub id 1 (String.length id - 1)) in
    job ~id ~t:(0.3 +. (0.1 *. float_of_int i))
  in
  let jobs_file = tmp ".jobs.jsonl" in
  write_file jobs_file (String.concat "\n" (List.map job_of_id ids @ [ "" ]));
  let run_call label =
    let out = tmp ("." ^ label ^ ".out") and err = tmp ("." ^ label ^ ".err") in
    let pid =
      spawn mrm2
        [| mrm2; "call"; "--socket"; router_sock; jobs_file |]
        ~stdout:out ~stderr:err
    in
    (match wait_exit pid with
    | 0 -> ()
    | code ->
        fail "mrm2 call (%s) exited %d; stderr:\n%s" label code
          (read_file err));
    let lines = lines_of_file out in
    if List.length lines <> List.length ids then
      fail "%s: expected %d responses, got %d" label (List.length ids)
        (List.length lines);
    List.map
      (fun line ->
        match Json.parse line with
        | Error e -> fail "%s: malformed response (%s): %s" label e line
        | Ok json -> (
            match Option.bind (Json.member "status" json) Json.to_str with
            | Some "ok" -> (line, json)
            | _ -> fail "%s: bad response %s" label line))
      lines
  in
  let first = run_call "fresh" in
  let cached json =
    Option.bind (Json.member "cached" json) Json.to_bool
    |> Option.value ~default:false
  in
  List.iter
    (fun (line, json) ->
      if cached json then fail "fresh solve reported cached: %s" line)
    first;
  let second = run_call "repeat" in
  List.iter
    (fun (line, json) ->
      if not (cached json) then
        fail "repeat job not served from the sharded cache: %s" line)
    second;
  let strip json =
    match json with
    | Json.Obj fields ->
        Json.to_string
          (Json.Obj (List.filter (fun (k, _) -> k <> "cached") fields))
    | other -> Json.to_string other
  in
  List.iter2
    (fun (l1, j1) (_, j2) ->
      if strip j1 <> strip j2 then
        fail "cache hit differs from the fresh solve: %s" l1)
    first second;

  (* baseline: id -> points, for the bit-for-bit check under failover *)
  let points json =
    match Json.member "points" json with
    | Some p -> Json.to_string p
    | None -> fail "ok response without points"
  in
  let baseline = List.map (fun (_, json) -> points json) first in

  (* -------------------------------------------------------------- *)
  (* a small closed-loop bench through the router *)
  let bench_out = tmp ".bench.out" and bench_err = tmp ".bench.err" in
  let bench =
    spawn mrm2
      [|
        mrm2; "loadgen"; "--socket"; router_sock; "--requests"; "120";
        "--workers"; "4"; "--keys"; "12"; "--skew"; "1"; "--size"; "8";
      |]
      ~stdout:bench_out ~stderr:bench_err
  in
  (match wait_exit bench with
  | 0 -> ()
  | code ->
      fail "mrm2 loadgen exited %d; stderr:\n%s" code (read_file bench_err));
  (match lines_of_file bench_out with
  | [ line ] -> (
      match Json.parse line with
      | Error e -> fail "loadgen record is not JSON (%s): %s" e line
      | Ok json ->
          let num name =
            match Option.bind (Json.member name json) Json.to_float with
            | Some v -> v
            | None -> fail "loadgen record lacks %s: %s" name line
          in
          if num "ok" < 120. then fail "loadgen dropped answers: %s" line;
          if num "dropped" > 0. then fail "loadgen dropped requests: %s" line;
          ignore (num "throughput_rps");
          ignore (num "cache_hit_rate");
          ignore (num "shed_rate");
          (match Json.member "latency_ms" json with
          | Some (Json.Obj _) -> ()
          | _ -> fail "loadgen record lacks latency_ms: %s" line);
          (match Json.member "router" json with
          | Some (Json.Obj _) -> ()
          | _ -> fail "loadgen record lacks the router stats: %s" line))
  | other -> fail "expected 1 loadgen record, got %d lines" (List.length other));

  (* -------------------------------------------------------------- *)
  (* kill replica r1 in the middle of a lockstep stream: every request
     must still be answered, bit-for-bit equal to the baseline *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX router_sock);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let rounds = 4 in
  let killed = ref false in
  for round = 0 to rounds - 1 do
    List.iteri
      (fun i id ->
        let n = (round * List.length ids) + i in
        if n = 6 then begin
          Unix.kill r1 Sys.sigterm;
          killed := true
        end;
        output_string oc (job_of_id id ^ "\n");
        flush oc;
        match input_line ic with
        | exception End_of_file ->
            fail "router dropped request %d (%s) after the kill" n id
        | line -> (
            match Json.parse line with
            | Error e -> fail "request %d: malformed response (%s)" n e
            | Ok json -> (
                (match
                   Option.bind (Json.member "status" json) Json.to_str
                 with
                | Some "ok" -> ()
                | _ -> fail "request %d (%s): wrong answer: %s" n id line);
                let expected = List.nth baseline i in
                if points json <> expected then
                  fail "request %d (%s): points differ from baseline" n id)))
      ids
  done;
  Unix.close fd;
  if not !killed then fail "kill point never reached";
  (match wait_exit r1 with
  | 0 -> ()
  | code ->
      fail "killed replica exited %d (graceful drain expected); stderr:\n%s"
        code (read_file r1_err));

  (* -------------------------------------------------------------- *)
  (* the router's stats must reflect the passive mark-down *)
  let stats_file = tmp ".stats.jsonl" in
  write_file stats_file "{\"cluster\":\"stats\",\"id\":\"s\"}\n";
  let stats_out = tmp ".stats.out" in
  let stats_pid =
    spawn mrm2
      [| mrm2; "call"; "--socket"; router_sock; stats_file |]
      ~stdout:stats_out ~stderr:(tmp ".stats.err")
  in
  (match wait_exit stats_pid with
  | 0 -> ()
  | code -> fail "stats request exited %d" code);
  (match lines_of_file stats_out with
  | [ line ] -> (
      match Json.parse line with
      | Error e -> fail "stats response not JSON (%s): %s" e line
      | Ok json ->
          let counter name =
            match
              Option.bind (Json.member "cluster" json) (Json.member name)
              |> Fun.flip Option.bind Json.to_float
            with
            | Some v -> v
            | None -> fail "stats lack %s: %s" name line
          in
          if counter "cluster.marked_down" < 1. then
            fail "kill not detected: %s" line;
          if counter "cluster.failovers" < 1. then
            fail "no failover recorded: %s" line;
          if counter "cluster.unavailable" > 0. then
            fail "requests were failed as unavailable: %s" line)
  | other -> fail "expected 1 stats line, got %d" (List.length other));

  (* -------------------------------------------------------------- *)
  (* graceful drain of the router and the surviving replica *)
  Unix.kill router Sys.sigterm;
  (match wait_exit router with
  | 0 -> ()
  | code ->
      fail "router exited %d after SIGTERM; stderr:\n%s" code
        (read_file router_err));
  if Sys.file_exists router_sock then
    fail "router socket path not unlinked on drain";
  Unix.kill r2 Sys.sigterm;
  (match wait_exit r2 with
  | 0 -> ()
  | code -> fail "surviving replica exited %d after SIGTERM" code);

  (* the router's exit metrics report carries the cluster counters *)
  let report = read_file router_err in
  List.iter
    (fun metric ->
      if not (contains ~sub:metric report) then
        fail "router metrics report is missing %s; stderr:\n%s" metric report)
    [
      "cluster.connections";
      "cluster.requests";
      "cluster.forwarded";
      "cluster.failovers";
      "cluster.marked_down";
      "cluster.replicas_up";
    ];
  if not (contains ~sub:"drained" report) then
    fail "router did not report a graceful drain; stderr:\n%s" report;
  print_endline "route_smoke: all checks passed"
