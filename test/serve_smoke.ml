(* End-to-end smoke driver behind the @serve-smoke dune alias (not an
   alcotest binary): spawns a real `mrm2 serve` process on a temporary
   Unix-domain socket and checks the service contract from outside —
   a scripted `mrm2 call` session whose duplicate job is served from
   the cache, two concurrent clients each receiving complete
   well-formed JSONL, SIGTERM during an in-flight solve still
   completing that solve before a clean exit 0, and the exit metrics
   report carrying the server.* counters.

   Usage: serve_smoke MRM2_EXE. Exits non-zero with a message on the
   first violated check. *)

module Json = Mrm_util.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("serve_smoke: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lines_of_file path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")

let contains ~sub s =
  let n = String.length sub in
  let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
  at 0

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

(* spawn [argv] with stdout/stderr captured into files; return the pid *)
let spawn exe argv ~stdout ~stderr =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let out = Unix.openfile stdout [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let err = Unix.openfile stderr [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let pid = Unix.create_process exe argv devnull out err in
  Unix.close devnull;
  Unix.close out;
  Unix.close err;
  pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, Unix.WSIGNALED s -> fail "process killed by signal %d" s
  | _, Unix.WSTOPPED s -> fail "process stopped by signal %d" s

let job ~id ~size ~t =
  Printf.sprintf
    "{\"id\":\"%s\",\"model\":\"onoff\",\"sigma2\":1,\"size\":%d,\"t\":%g,\"order\":3}"
    id size t

let () =
  if Array.length Sys.argv < 2 then fail "usage: serve_smoke MRM2_EXE";
  let mrm2 = Sys.argv.(1) in
  let tmp suffix = Filename.temp_file "mrm2_smoke" suffix in
  let socket = tmp ".sock" in
  Sys.remove socket;
  let serve_out = tmp ".serve.out" and serve_err = tmp ".serve.err" in

  (* -------------------------------------------------------------- *)
  (* start the service and wait for readiness *)
  let server =
    spawn mrm2
      [| mrm2; "serve"; "--socket"; socket; "--metrics" |]
      ~stdout:serve_out ~stderr:serve_err
  in
  let deadline = Unix.gettimeofday () +. 15. in
  let rec await_ready () =
    if Unix.gettimeofday () > deadline then
      fail "server not ready after 15s; stderr:\n%s" (read_file serve_err)
    else if contains ~sub:"listening on" (read_file serve_err) then ()
    else begin
      (match Unix.waitpid [ Unix.WNOHANG ] server with
      | 0, _ -> ()
      | _, _ ->
          fail "server exited before becoming ready; stderr:\n%s"
            (read_file serve_err));
      Unix.sleepf 0.05;
      await_ready ()
    end
  in
  await_ready ();

  (* -------------------------------------------------------------- *)
  (* scripted mrm2 call session: the duplicate job is a cache hit *)
  let session_jobs = tmp ".jobs.jsonl" in
  write_file session_jobs
    (String.concat "\n"
       [ job ~id:"fresh" ~size:64 ~t:1.; job ~id:"repeat" ~size:64 ~t:1.; "" ]);
  let call_out = tmp ".call.out" and call_err = tmp ".call.err" in
  let client =
    spawn mrm2
      [| mrm2; "call"; "--socket"; socket; session_jobs |]
      ~stdout:call_out ~stderr:call_err
  in
  (match wait_exit client with
  | 0 -> ()
  | code -> fail "mrm2 call exited %d; stderr:\n%s" code (read_file call_err));
  (match lines_of_file call_out with
  | [ fresh; repeat ] ->
      let check_ok label line =
        match Json.parse line with
        | Error e -> fail "%s response is not JSON (%s): %s" label e line
        | Ok json -> (
            match Option.bind (Json.member "status" json) Json.to_str with
            | Some "ok" -> json
            | other ->
                fail "%s response status %s: %s" label
                  (Option.value other ~default:"missing")
                  line)
      in
      let fresh_json = check_ok "fresh" fresh in
      let repeat_json = check_ok "repeat" repeat in
      let cached json =
        Option.bind (Json.member "cached" json) Json.to_bool
        |> Option.value ~default:false
      in
      if cached fresh_json then fail "first solve must not be cached";
      if not (cached repeat_json) then
        fail "duplicate job must be served from the cache: %s" repeat;
      (* the cached outcome is the stored solve bit for bit: identical
         JSON except the requester's id and the cached flag *)
      let strip json =
        match json with
        | Json.Obj fields ->
            Json.to_string
              (Json.Obj
                 (List.filter (fun (k, _) -> k <> "id" && k <> "cached") fields))
        | other -> Json.to_string other
      in
      if strip fresh_json <> strip repeat_json then
        fail "cache hit differs from the fresh solve:\n%s\n%s" fresh repeat
  | other -> fail "expected 2 responses, got %d" (List.length other));
  (match read_file call_err with
  | err when contains ~sub:"1 cached" err -> ()
  | err -> fail "client summary should report 1 cached response, got: %s" err);

  (* -------------------------------------------------------------- *)
  (* two concurrent clients: both sessions complete, well-formed JSONL *)
  let spawn_client i =
    let jobs = tmp (Printf.sprintf ".c%d.jsonl" i) in
    write_file jobs
      (String.concat "\n"
         [
           job ~id:(Printf.sprintf "c%d-a" i) ~size:64 ~t:(0.5 +. float_of_int i);
           job ~id:(Printf.sprintf "c%d-b" i) ~size:64 ~t:(1.5 +. float_of_int i);
           "";
         ]);
    let out = tmp (Printf.sprintf ".c%d.out" i) in
    let pid =
      spawn mrm2
        [| mrm2; "call"; "--socket"; socket; jobs |]
        ~stdout:out ~stderr:(tmp (Printf.sprintf ".c%d.err" i))
    in
    (pid, out, i)
  in
  let clients = List.map spawn_client [ 0; 1 ] in
  List.iter
    (fun (pid, out, i) ->
      (match wait_exit pid with
      | 0 -> ()
      | code -> fail "concurrent client %d exited %d" i code);
      let lines = lines_of_file out in
      if List.length lines <> 2 then
        fail "concurrent client %d: expected 2 responses, got %d" i
          (List.length lines);
      List.iter
        (fun line ->
          match Json.parse line with
          | Error e ->
              fail "concurrent client %d: malformed response (%s): %s" i e line
          | Ok json -> (
              match Option.bind (Json.member "status" json) Json.to_str with
              | Some "ok" -> ()
              | _ -> fail "concurrent client %d: bad response %s" i line))
        lines)
    clients;

  (* -------------------------------------------------------------- *)
  (* graceful drain: SIGTERM lands while a solve is in flight; the
     response must still arrive complete, then the server exits 0 *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc (job ~id:"inflight" ~size:2000 ~t:1. ^ "\n");
  flush oc;
  Unix.sleepf 0.1;
  (* the ~2000-state solve takes several hundred ms: the signal lands
     mid-solve *)
  Unix.kill server Sys.sigterm;
  (match input_line ic with
  | line -> (
      match Json.parse line with
      | Error e -> fail "in-flight response truncated by drain (%s): %s" e line
      | Ok json -> (
          match Option.bind (Json.member "status" json) Json.to_str with
          | Some "ok" -> ()
          | _ -> fail "in-flight solve failed during drain: %s" line))
  | exception End_of_file ->
      fail "drain dropped the in-flight request before answering");
  (* after the response the drained server closes the connection *)
  (match input_line ic with
  | line -> fail "unexpected extra line after drain: %s" line
  | exception End_of_file -> ());
  Unix.close fd;
  (match wait_exit server with
  | 0 -> ()
  | code ->
      fail "server exited %d after SIGTERM; stderr:\n%s" code
        (read_file serve_err));
  if Sys.file_exists socket then fail "socket path not unlinked on drain";

  (* -------------------------------------------------------------- *)
  (* the exit metrics report carries the service counters *)
  let report = read_file serve_err in
  List.iter
    (fun metric ->
      if not (contains ~sub:metric report) then
        fail "metrics report is missing %s; stderr:\n%s" metric report)
    [
      "server.connections";
      "server.requests";
      "server.cache_hits";
      "server.cache_misses";
      "server.drains";
      "server.queue_peak";
    ];
  if not (contains ~sub:"drained" report) then
    fail "server did not report a graceful drain; stderr:\n%s" report;
  print_endline "serve_smoke: all checks passed"
