(* @fig8-smoke: a small-scale replica of the fig8 parallel leg that CI
   can afford. Solves a scaled ON-OFF model (the paper's Table-2
   family) sequentially and on a 2-domain pool, then asserts

   - bit-for-bit parity: every moment vector of the parallel solve is
     exactly the sequential one (the fused pinned sweep must not change
     a single bit) — always checked;
   - speedup > 1.0: best-of-3 parallel wall clock beats best-of-3
     sequential — only when the host can actually run 2 domains in
     parallel (recommended_jobs >= 2 and a domains backend); on a
     single-core box or the OCaml-4 sequential backend the timing
     assertion is skipped, loudly.

   Exit 0 on success, 1 on any violated assertion. Runs under both
   plain and MRM2_RACECHECK=1 via the dune alias. *)

module Pool = Mrm_engine.Pool
module Randomization = Mrm_core.Randomization
module Model = Mrm_core.Model
module Onoff = Mrm_models.Onoff

let jobs = 2
let sources = 4_000
let t = 0.004
let order = 3

let best_of n f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed < !best then best := elapsed;
    result := Some r
  done;
  (Option.get !result, !best)

let () =
  let model = Onoff.model (Onoff.scaled_table2 ~sources) in
  Printf.printf "fig8-smoke: %d states, t = %g, order = %d, jobs = %d\n%!"
    (Model.dim model) t order jobs;
  let solve ?pool () = Randomization.moments ~eps:1e-9 ?pool model ~t ~order in
  let seq, seq_seconds = best_of 3 (fun () -> solve ()) in
  let par, par_seconds =
    Pool.with_pool ~jobs (fun pool ->
        best_of 3 (fun () -> solve ~pool ()))
  in
  let failures = ref 0 in
  let fail fmt =
    incr failures;
    Printf.ksprintf (fun s -> Printf.printf "FAIL: %s\n%!" s) fmt
  in
  (* Parity: bit for bit, every order, every state. *)
  if
    seq.Randomization.diagnostics.iterations
    <> par.Randomization.diagnostics.iterations
  then
    fail "iteration counts differ: %d (seq) vs %d (par)"
      seq.Randomization.diagnostics.iterations
      par.Randomization.diagnostics.iterations;
  Array.iteri
    (fun n seq_vec ->
      Array.iteri
        (fun i v ->
          let pv = par.Randomization.moments.(n).(i) in
          if (not (v = pv)) && not (Float.is_nan v && Float.is_nan pv) then
            fail "moments.(%d).(%d): %.17g (seq) <> %.17g (par)" n i v pv)
        seq_vec)
    seq.Randomization.moments;
  if !failures = 0 then
    Printf.printf "parity: parallel solve is bit-for-bit sequential\n%!";
  (* Timing: only meaningful where 2 domains can actually run at once. *)
  let speedup = seq_seconds /. Float.max par_seconds 1e-9 in
  Printf.printf "timing: best-of-3 %.3fs sequential, %.3fs parallel \
                 (speedup %.2fx)\n%!"
    seq_seconds par_seconds speedup;
  if Pool.parallelism_available && Pool.recommended_jobs () >= jobs then begin
    if not (speedup > 1.0) then
      fail "expected speedup > 1.0 on %d available cores, got %.2fx"
        (Pool.recommended_jobs ()) speedup
  end
  else
    Printf.printf
      "timing assertion SKIPPED: %s (recommended_jobs = %d) — parity above \
       still binds\n%!"
      (if Pool.parallelism_available then "single-core host"
       else "sequential backend (no domains)")
      (Pool.recommended_jobs ());
  if !failures > 0 then exit 1
