(* End-to-end smoke driver behind the @stationary-smoke dune alias (not
   an alcotest binary): the MMBM stationary solver exercised from
   outside through both front ends.

   1. `mrm2 stationary` on the committed fixture (JSON output): exit 0,
      phase marginal summing to 1, validation cross-check clean.
   2. The same model through a real `mrm2 serve` process as the
      "stationary" job kind of `mrm2 call`: the repeated job must be a
      cache hit, bit-for-bit identical to the fresh solve apart from
      the requester's id and the cached flag.
   3. An unknown job kind over the same connection: a structured error
      response carrying the MRM069 message, not a dead connection.
   4. The server's exit metrics report must carry the mmbm.* counters
      alongside the server.* ones.

   Usage: stationary_smoke MRM2_EXE. Exits non-zero with a message on
   the first violated check. *)

module Json = Mrm_util.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("stationary_smoke: " ^ m);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lines_of_file path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")

let contains ~sub s =
  let n = String.length sub in
  let rec at i =
    i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
  in
  at 0

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let spawn exe argv ~stdout ~stderr =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let out =
    Unix.openfile stdout [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let err =
    Unix.openfile stderr [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let pid = Unix.create_process exe argv devnull out err in
  Unix.close devnull;
  Unix.close out;
  Unix.close err;
  pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, Unix.WSIGNALED s -> fail "process killed by signal %d" s
  | _, Unix.WSTOPPED s -> fail "process stopped by signal %d" s

let fixture = Filename.concat "fixtures" "stationary_fluid.mrm"

let stationary_job ~id =
  Printf.sprintf "{\"id\":\"%s\",\"file\":\"%s\",\"kind\":\"stationary\"}" id
    fixture

let () =
  if Array.length Sys.argv < 2 then fail "usage: stationary_smoke MRM2_EXE";
  let mrm2 = Sys.argv.(1) in
  let tmp suffix = Filename.temp_file "mrm2_stat_smoke" suffix in

  (* -------------------------------------------------------------- *)
  (* 1. the CLI front end on the fixture *)
  let cli_out = tmp ".cli.out" and cli_err = tmp ".cli.err" in
  let cli =
    spawn mrm2
      [|
        mrm2; "stationary"; "--file"; fixture; "--validate"; "--format";
        "json";
      |]
      ~stdout:cli_out ~stderr:cli_err
  in
  (match wait_exit cli with
  | 0 -> ()
  | code ->
      fail "mrm2 stationary exited %d; stderr:\n%s" code (read_file cli_err));
  let cli_json =
    match Json.parse (String.trim (read_file cli_out)) with
    | Ok json -> json
    | Error e -> fail "mrm2 stationary output is not JSON (%s)" e
  in
  let marginal_mass =
    match Option.bind (Json.member "marginal" cli_json) Json.to_list with
    | None -> fail "mrm2 stationary output lacks a marginal"
    | Some items ->
        List.fold_left ( +. ) 0. (List.filter_map Json.to_float items)
  in
  if abs_float (marginal_mass -. 1.) > 1e-9 then
    fail "CLI marginal mass %.12g (expected 1)" marginal_mass;

  (* -------------------------------------------------------------- *)
  (* 2. the same model through serve + call as a "stationary" job *)
  let socket = tmp ".sock" in
  Sys.remove socket;
  let serve_out = tmp ".serve.out" and serve_err = tmp ".serve.err" in
  let server =
    spawn mrm2
      [| mrm2; "serve"; "--socket"; socket; "--metrics" |]
      ~stdout:serve_out ~stderr:serve_err
  in
  let deadline = Unix.gettimeofday () +. 15. in
  let rec await_ready () =
    if Unix.gettimeofday () > deadline then
      fail "server not ready after 15s; stderr:\n%s" (read_file serve_err)
    else if contains ~sub:"listening on" (read_file serve_err) then ()
    else begin
      (match Unix.waitpid [ Unix.WNOHANG ] server with
      | 0, _ -> ()
      | _, _ ->
          fail "server exited before becoming ready; stderr:\n%s"
            (read_file serve_err));
      Unix.sleepf 0.05;
      await_ready ()
    end
  in
  await_ready ();
  let session_jobs = tmp ".jobs.jsonl" in
  write_file session_jobs
    (String.concat "\n"
       [ stationary_job ~id:"fresh"; stationary_job ~id:"repeat"; "" ]);
  let call_out = tmp ".call.out" and call_err = tmp ".call.err" in
  let client =
    spawn mrm2
      [| mrm2; "call"; "--socket"; socket; session_jobs |]
      ~stdout:call_out ~stderr:call_err
  in
  (match wait_exit client with
  | 0 -> ()
  | code -> fail "mrm2 call exited %d; stderr:\n%s" code (read_file call_err));
  (match lines_of_file call_out with
  | [ fresh; repeat ] ->
      let check_ok label line =
        match Json.parse line with
        | Error e -> fail "%s response is not JSON (%s): %s" label e line
        | Ok json -> (
            match Option.bind (Json.member "status" json) Json.to_str with
            | Some "ok" -> json
            | other ->
                fail "%s response status %s: %s" label
                  (Option.value other ~default:"missing")
                  line)
      in
      let fresh_json = check_ok "fresh" fresh in
      let repeat_json = check_ok "repeat" repeat in
      (* the stationary payload must be present and normalized *)
      let stat =
        match Json.member "stationary" fresh_json with
        | Some s -> s
        | None -> fail "stationary response lacks the stationary object: %s" fresh
      in
      let mass =
        match Option.bind (Json.member "marginal" stat) Json.to_list with
        | None -> fail "wire stationary object lacks a marginal"
        | Some items ->
            List.fold_left ( +. ) 0. (List.filter_map Json.to_float items)
      in
      if abs_float (mass -. 1.) > 1e-9 then
        fail "wire marginal mass %.12g (expected 1)" mass;
      let cached json =
        Option.bind (Json.member "cached" json) Json.to_bool
        |> Option.value ~default:false
      in
      if cached fresh_json then fail "first stationary solve must not be cached";
      if not (cached repeat_json) then
        fail "repeated stationary job must be served from the cache: %s" repeat;
      (* bit-for-bit: identical JSON apart from the requester's id and
         the cached flag *)
      let strip json =
        match json with
        | Json.Obj fields ->
            Json.to_string
              (Json.Obj
                 (List.filter
                    (fun (k, _) -> k <> "id" && k <> "cached")
                    fields))
        | other -> Json.to_string other
      in
      if strip fresh_json <> strip repeat_json then
        fail "stationary cache hit differs from the fresh solve:\n%s\n%s"
          fresh repeat
  | other -> fail "expected 2 responses, got %d" (List.length other));

  (* -------------------------------------------------------------- *)
  (* 3. an unknown kind is a structured error response, not a hangup *)
  let bad_jobs = tmp ".bad.jsonl" in
  write_file bad_jobs
    (Printf.sprintf
       "{\"id\":\"bad\",\"file\":\"%s\",\"kind\":\"spectral\"}\n" fixture);
  let bad_out = tmp ".bad.out" and bad_err = tmp ".bad.err" in
  let bad_client =
    spawn mrm2
      [| mrm2; "call"; "--socket"; socket; bad_jobs |]
      ~stdout:bad_out ~stderr:bad_err
  in
  let bad_code = wait_exit bad_client in
  if bad_code = 0 then fail "unknown kind should make mrm2 call exit non-zero";
  (match lines_of_file bad_out with
  | [ line ] ->
      (match Json.parse line with
      | Error e -> fail "unknown-kind response is not JSON (%s): %s" e line
      | Ok json -> (
          match Option.bind (Json.member "status" json) Json.to_str with
          | Some "error" ->
              if not (contains ~sub:"MRM069" line) then
                fail "unknown-kind error does not carry MRM069: %s" line;
              if not (contains ~sub:"spectral" line) then
                fail "unknown-kind error does not name the offender: %s" line
          | _ -> fail "unknown kind should produce an error response: %s" line))
  | other ->
      fail "expected 1 response to the unknown-kind job, got %d"
        (List.length other));

  (* -------------------------------------------------------------- *)
  (* 4. drain and check the metrics report *)
  Unix.kill server Sys.sigterm;
  (match wait_exit server with
  | 0 -> ()
  | code ->
      fail "server exited %d after SIGTERM; stderr:\n%s" code
        (read_file serve_err));
  let report = read_file serve_err in
  List.iter
    (fun metric ->
      if not (contains ~sub:metric report) then
        fail "metrics report is missing %s; stderr:\n%s" metric report)
    [ "server.requests"; "server.cache_hits"; "mmbm.solves"; "mmbm.cr_iterations" ];
  print_endline "stationary_smoke: all checks passed"
