(* Tests for the parallel execution engine: pool scheduling semantics
   (coverage, exceptions, re-entrancy, shutdown), nnz-balanced
   partitions, partitioned kernels against their sequential
   counterparts, the solver's ?pool argument (parallel must equal
   sequential bit for bit), and the batch front-end with its
   dedup/memoization and the mrm2 batch JSONL round trip. *)

module Pool = Mrm_engine.Pool
module Partition = Mrm_engine.Partition
module Kernel = Mrm_engine.Kernel
module Batch = Mrm_batch.Batch
module Json = Mrm_util.Json
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec
module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Generator = Mrm_ctmc.Generator
module Onoff = Mrm_models.Onoff

let job_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                       *)

let test_pool_covers_all_tasks () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check int) "jobs" jobs (Pool.jobs pool);
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              Pool.run pool n (fun i -> hits.(i) <- hits.(i) + 1);
              if n > 0 then
                Alcotest.(check (array int))
                  (Printf.sprintf "each of %d tasks ran once on %d jobs" n
                     jobs)
                  (Array.make n 1) (Array.sub hits 0 n))
            (* n = 0, n = 1, n < jobs, n = jobs, n >> jobs *)
            [ 0; 1; jobs - 1; jobs; 97 ]))
    job_counts

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let ran = Array.make 8 false in
      let raised =
        try
          Pool.run pool 8 (fun i ->
              ran.(i) <- true;
              if i = 3 then failwith "task 3 exploded");
          false
        with Failure msg ->
          Alcotest.(check string) "message" "task 3 exploded" msg;
          true
      in
      Alcotest.(check bool) "exception re-raised" true raised;
      (* Every task still ran (no abandonment mid-batch)... *)
      Alcotest.(check (array bool)) "all tasks ran" (Array.make 8 true) ran;
      (* ...and the pool survives for the next batch. *)
      let total = Atomic.make 0 in
      Pool.run pool 10 (fun i -> ignore (Atomic.fetch_and_add total (i + 1)));
      Alcotest.(check int) "pool survives" 55 (Atomic.get total))

let test_pool_reentrant_run () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let hits = Atomic.make 0 in
      (* body calls run on the same pool: must degrade to sequential
         instead of deadlocking. *)
      Pool.run pool 4 (fun _ ->
          Pool.run pool 5 (fun _ -> ignore (Atomic.fetch_and_add hits 1)));
      Alcotest.(check int) "nested tasks all ran" 20 (Atomic.get hits))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* A pool keeps working after shutdown, in-caller. *)
  let sum = ref 0 in
  Pool.run pool 5 (fun i -> sum := !sum + i);
  Alcotest.(check int) "run after shutdown" 10 !sum

let test_parallel_for_chunks () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun chunk ->
              let n = 23 in
              let hits = Array.make n 0 in
              Pool.parallel_for pool ?chunk ~n (fun i ->
                  hits.(i) <- hits.(i) + 1);
              Alcotest.(check (array int))
                (Printf.sprintf "chunk %s on %d jobs"
                   (match chunk with
                   | None -> "default"
                   | Some c -> string_of_int c)
                   jobs)
                (Array.make n 1) hits)
            [ None; Some 1; Some 4; Some 100 ]))
    job_counts

let test_map_array () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let input = Array.init 17 (fun i -> i) in
      let out = Pool.map_array pool (fun x -> (x * x, string_of_int x)) input in
      Alcotest.(check int) "length" 17 (Array.length out);
      Array.iteri
        (fun i (sq, s) ->
          Alcotest.(check int) "square" (i * i) sq;
          Alcotest.(check string) "order preserved" (string_of_int i) s)
        out;
      Alcotest.(check int) "empty input" 0
        (Array.length (Pool.map_array pool (fun x -> x) [||])))

(* ------------------------------------------------------------------ *)
(* Partitions                                                           *)

let check_partition_covers name partition ~rows =
  let ranges = Partition.ranges partition in
  let expected = ref 0 in
  Array.iter
    (fun (lo, hi) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: contiguous at %d" name lo)
        true
        (lo = !expected && hi >= lo);
      expected := hi)
    ranges;
  Alcotest.(check int) (name ^ ": covers every row") rows !expected

let test_partition_uniform () =
  check_partition_covers "10/3" (Partition.uniform ~parts:3 ~rows:10) ~rows:10;
  check_partition_covers "3/10 (more parts than rows)"
    (Partition.uniform ~parts:10 ~rows:3)
    ~rows:3;
  check_partition_covers "0 rows" (Partition.uniform ~parts:4 ~rows:0) ~rows:0

let test_partition_by_nnz () =
  (* Skewed matrix: row 0 holds almost all entries; nnz balancing must
     not hand the remaining rows to the same range. *)
  let n = 64 in
  let triplets = ref [] in
  for j = 0 to n - 1 do
    triplets := (0, j, 1.) :: !triplets
  done;
  for i = 1 to n - 1 do
    triplets := (i, i, 1.) :: !triplets
  done;
  let m = Sparse.of_triplets ~rows:n ~cols:n !triplets in
  let partition = Partition.by_nnz ~parts:4 m in
  check_partition_covers "skewed" partition ~rows:n;
  let offsets = Sparse.row_offsets m in
  let heaviest =
    Array.fold_left
      (fun acc (lo, hi) -> max acc (offsets.(hi) - offsets.(lo)))
      0
      (Partition.ranges partition)
  in
  (* A perfect split carries nnz/4 + slack for one indivisible row. *)
  Alcotest.(check bool)
    (Printf.sprintf "nnz balanced (heaviest range %d of %d)" heaviest
       (Sparse.nnz m))
    true
    (heaviest <= (Sparse.nnz m / 4) + n)

let prop_partition_covers_random =
  QCheck2.Test.make ~count:100 ~name:"partitions cover any matrix"
    QCheck2.Gen.(
      tup3 (int_range 1 30) (int_range 1 8) (int_range 0 40))
    (fun (rows, parts, extra) ->
      let triplets =
        List.init extra (fun k -> (k mod rows, (k * 7) mod rows, 1.))
      in
      let m = Sparse.of_triplets ~rows ~cols:rows triplets in
      let partition = Partition.by_nnz ~parts m in
      let ranges = Partition.ranges partition in
      let covered = ref 0 in
      Array.for_all
        (fun (lo, hi) ->
          let ok = lo = !covered && hi >= lo in
          covered := hi;
          ok)
        ranges
      && !covered = rows)

(* ------------------------------------------------------------------ *)
(* Kernels vs their sequential counterparts                             *)

let prop_kernel_matches_sequential =
  QCheck2.Test.make ~count:60
    ~name:"Kernel mv/dot/sum = Sparse.mv/Vec (jobs x parts x chunk)"
    QCheck2.Gen.(
      let* n = int_range 1 24 in
      let* entries = list_repeat (3 * n) (float_range (-2.) 2.) in
      let* x = list_repeat n (float_range (-1.) 1.) in
      let* jobs = oneofl job_counts in
      let* parts = int_range 1 7 in
      let* chunk = oneofl [ None; Some 1; Some 3 ] in
      return (n, entries, Array.of_list x, jobs, parts, chunk))
    (fun (n, entries, x, jobs, parts, chunk) ->
      let triplets =
        List.mapi (fun k v -> (k mod n, (k * 5 + 1) mod n, v)) entries
      in
      let m = Sparse.of_triplets ~rows:n ~cols:n triplets in
      Pool.with_pool ~jobs (fun pool ->
          let partition = Partition.by_nnz ~parts m in
          let expected = Sparse.mv m x in
          let got = Array.make n Float.nan in
          Kernel.mv_into pool partition m x got;
          let y = Array.init n (fun i -> float_of_int i /. 7.) in
          let y' = Array.copy y in
          Kernel.axpy pool partition ~alpha:1.5 ~x ~y;
          Vec.axpy ~alpha:1.5 ~x ~y:y';
          (* Row-sliced kernels are bit-identical; chunked reductions
             reorder the summation, so those get a tolerance — but must
             be deterministic across runs for a fixed chunk. *)
          let close a b = abs_float (a -. b) <= 1e-12 *. (1. +. abs_float b) in
          expected = got && y = y'
          && close (Kernel.dot pool ?chunk x expected) (Vec.dot x expected)
          && close (Kernel.sum pool ?chunk x) (Vec.sum x)
          && Kernel.dot pool ?chunk x expected = Kernel.dot pool ?chunk x expected
          && Kernel.sum pool ?chunk x = Kernel.sum pool ?chunk x))

(* ------------------------------------------------------------------ *)
(* Solver: ?pool must not change a single bit                           *)

let check_results_identical name (a : Randomization.result)
    (b : Randomization.result) =
  Alcotest.(check int)
    (name ^ ": iterations")
    a.diagnostics.iterations b.diagnostics.iterations;
  Array.iteri
    (fun n va ->
      Array.iteri
        (fun i v ->
          if v <> b.moments.(n).(i) then
            Alcotest.failf "%s: moments.(%d).(%d): %.17g <> %.17g" name n i v
              b.moments.(n).(i))
        va)
    a.moments

let test_solver_parallel_equals_sequential_table1 () =
  let model = Onoff.model (Onoff.table1 ~sigma2:10.) in
  let sequential = Randomization.moments model ~t:2. ~order:3 in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let parallel = Randomization.moments ~pool model ~t:2. ~order:3 in
          check_results_identical
            (Printf.sprintf "table1 jobs=%d" jobs)
            sequential parallel))
    job_counts

let test_solver_parallel_equals_sequential_large () =
  (* ~2k-state ON-OFF model: big enough for several nnz ranges per
     domain, small enough for CI. *)
  let model = Onoff.model (Onoff.scaled_table2 ~sources:2_000) in
  let sequential = Randomization.moments model ~t:0.005 ~order:3 in
  Pool.with_pool ~jobs:4 (fun pool ->
      let parallel = Randomization.moments ~pool model ~t:0.005 ~order:3 in
      check_results_identical "scaled table2" sequential parallel)

let test_moments_at_times_with_pool () =
  let model = Onoff.model (Onoff.table1 ~sigma2:1.) in
  let times = [| 0.; 0.5; 1.; 2. |] in
  let sequential = Randomization.moments_at_times model ~times ~order:3 in
  Pool.with_pool ~jobs:2 (fun pool ->
      let parallel =
        Randomization.moments_at_times ~pool model ~times ~order:3
      in
      Array.iteri
        (fun k r ->
          check_results_identical
            (Printf.sprintf "t=%g" times.(k))
            r parallel.(k))
        sequential)

let prop_solver_pool_invariant =
  (* Random models x jobs: the parallel sweep reproduces the sequential
     one exactly, for single times and for shared multi-time sweeps. *)
  QCheck2.Test.make ~count:25 ~name:"random models: ?pool is a no-op on values"
    QCheck2.Gen.(
      let* n = int_range 2 8 in
      let* cycle = list_repeat n (float_range 0.2 3.) in
      let* rates = list_repeat n (float_range (-2.) 2.) in
      let* variances = list_repeat n (float_range 0. 2.) in
      let* jobs = oneofl [ 2; 4 ] in
      return (n, cycle, rates, variances, jobs))
    (fun (n, cycle, rates, variances, jobs) ->
      let triplets =
        List.mapi (fun i r -> (i, (i + 1) mod n, r)) cycle
      in
      let generator = Generator.of_triplets ~states:n triplets in
      let initial = Array.init n (fun i -> if i = 0 then 1. else 0.) in
      let model =
        Model.make ~generator ~rates:(Array.of_list rates)
          ~variances:(Array.of_list variances) ~initial
      in
      let times = [| 0.3; 1.1 |] in
      let seq_one = Randomization.moments model ~t:1.1 ~order:3 in
      let seq_many = Randomization.moments_at_times model ~times ~order:3 in
      Pool.with_pool ~jobs (fun pool ->
          let par_one = Randomization.moments ~pool model ~t:1.1 ~order:3 in
          let par_many =
            Randomization.moments_at_times ~pool model ~times ~order:3
          in
          seq_one.moments = par_one.moments
          && Array.for_all2
               (fun (a : Randomization.result) (b : Randomization.result) ->
                 a.moments = b.moments)
               seq_many par_many))

let test_moment_series_projection () =
  (* The satellite rewrite: moment_series is a projection of
     moments_at_times, and stays within eps of pointwise solves. *)
  let model = Onoff.model (Onoff.table1 ~sigma2:10.) in
  let times = [| 0.; 0.25; 1.; 2. |] in
  let series = Randomization.moment_series ~validate:true model ~times ~order:3 in
  let swept = Randomization.moments_at_times model ~times ~order:3 in
  Array.iteri
    (fun k (t, values) ->
      Alcotest.(check (float 0.)) "time echoed" times.(k) t;
      Array.iteri
        (fun n v ->
          let expected =
            Vec.dot (model : Model.t).Model.initial swept.(k).moments.(n)
          in
          Alcotest.(check (float 0.))
            (Printf.sprintf "series = projected sweep (t=%g, n=%d)" t n)
            expected v;
          let pointwise =
            Vec.dot
              (model : Model.t).Model.initial
              (Randomization.moments model ~t ~order:3).moments.(n)
          in
          if
            abs_float (v -. pointwise) > 1e-8 *. (1. +. abs_float pointwise)
          then
            Alcotest.failf "series vs pointwise at t=%g, n=%d: %g vs %g" t n v
              pointwise)
        values)
    series

(* ------------------------------------------------------------------ *)
(* Batch front-end                                                      *)

let small_job ?(id = "a") ?(eps = 1e-9) ?(order = 3) ?(meth = Batch.Randomization)
    () =
  {
    Batch.id;
    model = Onoff.model (Onoff.table1 ~sigma2:1.);
    times = [| 1. |];
    order;
    eps;
    meth;
    kind = Batch.Moments;
  }

let test_batch_dedup () =
  let jobs =
    [| small_job ~id:"first" (); small_job ~id:"second" ();
       small_job ~id:"third" ~eps:1e-6 () |]
  in
  let outcomes = Batch.run jobs in
  Alcotest.(check int) "outcome per job" 3 (Array.length outcomes);
  Alcotest.(check (option string)) "first is representative" None
    outcomes.(0).duplicate_of;
  Alcotest.(check (option string)) "second reuses first" (Some "first")
    outcomes.(1).duplicate_of;
  Alcotest.(check (option string)) "different eps solves fresh" None
    outcomes.(2).duplicate_of;
  Alcotest.(check string) "equal digests" outcomes.(0).digest
    outcomes.(1).digest;
  Alcotest.(check bool) "eps changes the digest" true
    (outcomes.(0).digest <> outcomes.(2).digest);
  match (outcomes.(0).result, outcomes.(1).result) with
  | Ok (Batch.Points a), Ok (Batch.Points b) ->
      Alcotest.(check bool) "shared values" true
        (a.(0).Batch.values = b.(0).Batch.values)
  | _ -> Alcotest.fail "batch jobs failed"

let test_batch_matches_direct_solver () =
  List.iter
    (fun jobs_opt ->
      let run jobs_array =
        match jobs_opt with
        | None -> Batch.run jobs_array
        | Some jobs -> Pool.with_pool ~jobs (fun pool -> Batch.run ~pool jobs_array)
      in
      let outcomes = run [| small_job () |] in
      match outcomes.(0).result with
      | Error e -> Alcotest.failf "batch failed: %s" e
      | Ok (Batch.Density _) -> Alcotest.fail "moments job returned a density"
      | Ok (Batch.Points points) ->
          let model = Onoff.model (Onoff.table1 ~sigma2:1.) in
          let direct = Randomization.moments model ~t:1. ~order:3 in
          let expected =
            Array.init 4 (fun n ->
                Vec.dot (model : Model.t).Model.initial direct.moments.(n))
          in
          Alcotest.(check bool)
            (Printf.sprintf "values match direct solve (%s)"
               (match jobs_opt with
               | None -> "sequential"
               | Some j -> Printf.sprintf "pool of %d" j))
            true
            (points.(0).Batch.values = expected);
          Alcotest.(check (option int)) "iterations recorded"
            (Some direct.diagnostics.iterations)
            points.(0).Batch.iterations)
    [ None; Some 2 ]

let test_batch_error_isolation () =
  (* An invalid job must fail alone, not poison the batch. *)
  let bad = { (small_job ~id:"bad" ()) with order = -1 } in
  let outcomes = Batch.run [| small_job ~id:"good" (); bad |] in
  (match outcomes.(0).result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "good job failed: %s" e);
  match outcomes.(1).result with
  | Ok _ -> Alcotest.fail "order = -1 should fail"
  | Error message ->
      Alcotest.(check bool)
        (Printf.sprintf "message mentions the cause: %s" message)
        true
        (String.length message > 0)

let test_batch_job_of_json () =
  let parse line =
    Batch.job_of_json ~default_id:"fallback" (Json.parse_exn line)
  in
  (match
     parse
       {|{"id":"j1","model":"onoff","sigma2":1,"size":8,"times":[0.5,1],"order":2,"method":"ode"}|}
   with
  | Error e -> Alcotest.failf "valid spec rejected: %s" e
  | Ok job ->
      Alcotest.(check string) "id" "j1" job.Batch.id;
      Alcotest.(check int) "order" 2 job.Batch.order;
      Alcotest.(check bool) "method" true (job.Batch.meth = Batch.Ode);
      Alcotest.(check int) "times" 2 (Array.length job.Batch.times);
      Alcotest.(check int) "model built" 9 (Model.dim job.Batch.model));
  (match parse {|{"model":"repair","t":1}|} with
  | Error e -> Alcotest.failf "defaults rejected: %s" e
  | Ok job ->
      Alcotest.(check string) "default id" "fallback" job.Batch.id;
      Alcotest.(check int) "default order" 3 job.Batch.order);
  let expect_error name line =
    match parse line with
    | Ok _ -> Alcotest.failf "%s: should be rejected" name
    | Error _ -> ()
  in
  expect_error "no model source" {|{"t":1}|};
  expect_error "no times" {|{"model":"onoff"}|};
  expect_error "both model sources" {|{"model":"onoff","file":"x.mrm","t":1}|};
  expect_error "both time forms" {|{"model":"onoff","t":1,"times":[1]}|};
  expect_error "bad method" {|{"model":"onoff","t":1,"method":"lattice"}|};
  expect_error "negative order" {|{"model":"onoff","t":1,"order":-2}|};
  expect_error "not an object" {|[1,2]|};
  (* kind selection *)
  (match parse {|{"model":"onoff","kind":"stationary","drain":2.5,"regularize":0.001}|} with
  | Error e -> Alcotest.failf "stationary kind rejected: %s" e
  | Ok job -> (
      Alcotest.(check int) "stationary needs no times" 0
        (Array.length job.Batch.times);
      match job.Batch.kind with
      | Batch.Stationary { drain; regularize } ->
          Alcotest.(check (float 0.)) "drain" 2.5 drain;
          Alcotest.(check (float 0.)) "regularize" 0.001 regularize
      | Batch.Moments -> Alcotest.fail "kind should be stationary"));
  (match parse {|{"model":"onoff","t":1,"kind":"moments"}|} with
  | Error e -> Alcotest.failf "explicit moments kind rejected: %s" e
  | Ok job ->
      Alcotest.(check bool) "kind moments" true (job.Batch.kind = Batch.Moments));
  (* an unknown kind is a structured diagnostic naming the offender and
     the supported set, not a generic parse failure *)
  (match parse {|{"model":"onoff","t":1,"kind":"spectral"}|} with
  | Ok _ -> Alcotest.fail "unknown kind should be rejected"
  | Error message ->
      let contains sub =
        let n = String.length sub in
        let rec at i =
          i + n <= String.length message
          && (String.sub message i n = sub || at (i + 1))
        in
        at 0
      in
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Printf.sprintf "unknown-kind message mentions %S (got: %s)" sub
               message)
            true (contains sub))
        [ "MRM069"; "\"spectral\""; "moments"; "stationary" ]);
  expect_error "bad regularize" {|{"model":"onoff","kind":"stationary","regularize":-1}|};
  expect_error "stationary kind not a string" {|{"model":"onoff","t":1,"kind":7}|}

let test_batch_outcome_json_round_trip () =
  let outcomes = Batch.run [| small_job ~id:"rt" () |] in
  let json = Json.parse_exn (Json.to_string (Batch.outcome_to_json outcomes.(0))) in
  let str key = Option.bind (Json.member key json) Json.to_str in
  Alcotest.(check (option string)) "id" (Some "rt") (str "id");
  Alcotest.(check (option string)) "status" (Some "ok") (str "status");
  match Option.bind (Json.member "points" json) Json.to_list with
  | Some [ point ] ->
      let moments =
        Option.bind (Json.member "moments" point) Json.to_list
        |> Option.value ~default:[]
      in
      Alcotest.(check int) "order+1 moments" 4 (List.length moments);
      Alcotest.(check (option (float 0.))) "t echoed" (Some 1.)
        (Option.bind (Json.member "t" point) Json.to_float)
  | _ -> Alcotest.fail "expected exactly one point"

(* ------------------------------------------------------------------ *)
(* mrm2 batch CLI on the committed fixture                              *)

let mrm2 = Filename.concat (Filename.concat ".." "bin") "mrm2.exe"

let test_batch_cli_fixture () =
  let out = Filename.temp_file "mrm2_batch" ".out" in
  let command =
    Printf.sprintf "MRM2_JOBS=2 %s batch fixtures/batch_jobs.jsonl > %s 2>/dev/null"
      mrm2 out
  in
  let status = Sys.command command in
  let lines =
    let ic = open_in out in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | line -> loop (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        loop [])
  in
  Sys.remove out;
  Alcotest.(check int) "exit code" 0 status;
  Alcotest.(check int) "one JSONL line per job" 4 (List.length lines);
  let parsed = List.map Json.parse_exn lines in
  List.iter
    (fun json ->
      Alcotest.(check (option string)) "status ok" (Some "ok")
        (Option.bind (Json.member "status" json) Json.to_str))
    parsed;
  (* The duplicate spec line must reference the representative... *)
  let dup = List.nth parsed 1 in
  Alcotest.(check (option string)) "dedup over the wire" (Some "small")
    (Option.bind (Json.member "duplicate_of" dup) Json.to_str);
  (* ...and agree with the library solving the same model directly
     (which is also what `mrm2 moments --model onoff --sigma2 1 --size 8`
     prints — asserted end-to-end by the @batch-smoke dune alias). *)
  let model =
    Onoff.model
      { (Onoff.table1 ~sigma2:1.) with sources = 8; capacity = 8. }
  in
  let direct = Randomization.moments model ~t:1. ~order:3 in
  let expected =
    Array.to_list
      (Array.init 4 (fun n ->
           Vec.dot (model : Model.t).Model.initial direct.moments.(n)))
  in
  let first_moments =
    Option.bind (Json.member "points" (List.hd parsed)) Json.to_list
    |> Option.value ~default:[] |> List.hd |> Json.member "moments"
    |> Fun.flip Option.bind Json.to_list
    |> Option.value ~default:[]
    |> List.filter_map Json.to_float
  in
  List.iteri
    (fun n expected_value ->
      let got = List.nth first_moments n in
      if abs_float (got -. expected_value) > 1e-9 *. (1. +. abs_float expected_value)
      then
        Alcotest.failf "CLI moment %d: %.17g vs library %.17g" n got
          expected_value)
    expected

(* Moments and stationary jobs ride the same JSONL stream: the mixed
   fixture has a moments job, two identical stationary jobs (dedup must
   work across the new kind) and a stationary job loaded from a model
   file. *)
let test_batch_cli_mixed_kinds () =
  let out = Filename.temp_file "mrm2_mixed" ".out" in
  let command =
    Printf.sprintf
      "%s batch --jobs 1 fixtures/batch_mixed_kinds.jsonl > %s 2>/dev/null"
      mrm2 out
  in
  let status = Sys.command command in
  let lines =
    let ic = open_in out in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | line -> loop (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        loop [])
  in
  Sys.remove out;
  Alcotest.(check int) "exit code" 0 status;
  Alcotest.(check int) "one line per job" 4 (List.length lines);
  let parsed = List.map Json.parse_exn lines in
  List.iter
    (fun json ->
      Alcotest.(check (option string)) "status ok" (Some "ok")
        (Option.bind (Json.member "status" json) Json.to_str))
    parsed;
  let nth = List.nth parsed in
  (* the moments job keeps the points shape *)
  Alcotest.(check bool) "moments job has points" true
    (Json.member "points" (nth 0) <> None);
  Alcotest.(check bool) "moments job has no stationary" true
    (Json.member "stationary" (nth 0) = None);
  (* both stationary jobs carry a stationary object, and the duplicate
     references the representative *)
  Alcotest.(check (option string)) "stationary dedup over the wire"
    (Some "stat")
    (Option.bind (Json.member "duplicate_of" (nth 2)) Json.to_str);
  let stationary_of json =
    match Json.member "stationary" json with
    | Some s -> s
    | None -> Alcotest.fail "stationary job lacks a stationary object"
  in
  let marginal json =
    Option.bind (Json.member "marginal" (stationary_of json)) Json.to_list
    |> Option.value ~default:[] |> List.filter_map Json.to_float
  in
  let mass = List.fold_left ( +. ) 0. (marginal (nth 1)) in
  if abs_float (mass -. 1.) > 1e-9 then
    Alcotest.failf "stationary marginal mass %.12g" mass;
  (* the wire result agrees with the library solving the same model *)
  let model =
    Onoff.model { (Onoff.table1 ~sigma2:1.) with sources = 8; capacity = 8. }
  in
  let direct = Mrm_mmbm.Mmbm.solve ~drain:5. ~regularize:0.001 model in
  let wire_rate =
    Option.bind
      (Json.member "reward_rate" (stationary_of (nth 1)))
      Json.to_float
    |> Option.value ~default:nan
  in
  if
    abs_float (wire_rate -. direct.Mrm_mmbm.Mmbm.reward_rate)
    > 1e-12 *. (1. +. abs_float wire_rate)
  then
    Alcotest.failf "CLI reward rate %.17g vs library %.17g" wire_rate
      direct.Mrm_mmbm.Mmbm.reward_rate;
  (* the file-loaded stationary job solved too (its model needs neither
     drain nor regularization) *)
  let file_mass = List.fold_left ( +. ) 0. (marginal (nth 3)) in
  if abs_float (file_mass -. 1.) > 1e-9 then
    Alcotest.failf "file-model marginal mass %.12g" file_mass

(* An unknown kind must fail the whole batch up front with the
   structured MRM069 message naming the offender and the supported
   set — same shape as any other spec error. *)
let test_batch_cli_unknown_kind () =
  let err = Filename.temp_file "mrm2_kind" ".err" in
  let command =
    Printf.sprintf
      "printf '{\"model\":\"onoff\",\"t\":1,\"kind\":\"spectral\"}\\n' \
       | %s batch --jobs 1 - > /dev/null 2> %s"
      mrm2 err
  in
  let status = Sys.command command in
  let err_text =
    let ic = open_in err in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove err;
  Alcotest.(check int) "exit code" 1 status;
  let contains sub =
    let n = String.length sub in
    let rec at i =
      i + n <= String.length err_text
      && (String.sub err_text i n = sub || at (i + 1))
    in
    at 0
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "stderr mentions %S (got: %s)" sub err_text)
        true (contains sub))
    [ "MRM069"; "\"spectral\""; "moments"; "stationary" ]

(* Default ids and diagnostics must be numbered by the *original* input
   line: blank (and whitespace-only) lines advance the counter without
   producing a job, so "job-N" always points back at line N of the
   file the user can open. *)
let test_batch_blank_line_ids () =
  let out = Filename.temp_file "mrm2_blank" ".out" in
  let command =
    Printf.sprintf "%s batch --jobs 1 fixtures/batch_blank_lines.jsonl > %s 2>/dev/null"
      mrm2 out
  in
  let status = Sys.command command in
  let ids =
    let ic = open_in out in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | line ->
              let id =
                Option.bind (Json.member "id" (Json.parse_exn line))
                  Json.to_str
                |> Option.value ~default:"?"
              in
              loop (id :: acc)
          | exception End_of_file -> List.rev acc
        in
        loop [])
  in
  Sys.remove out;
  Alcotest.(check int) "exit code" 0 status;
  (* fixture: jobs on lines 1, 3, 6; lines 2, 4 empty, line 5 spaces *)
  Alcotest.(check (list string))
    "ids numbered by original line" [ "job-1"; "job-3"; "named" ] ids

let test_batch_blank_line_error_lineno () =
  let err = Filename.temp_file "mrm2_blank" ".err" in
  let command =
    Printf.sprintf
      "printf '{\"model\":\"onoff\",\"sigma2\":1,\"size\":4,\"t\":1}\\n\\n\\nnot json\\n' \
       | %s batch --jobs 1 - > /dev/null 2> %s"
      mrm2 err
  in
  let status = Sys.command command in
  let err_text =
    let ic = open_in err in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove err;
  Alcotest.(check int) "exit code" 1 status;
  let contains sub s =
    let n = String.length sub in
    let rec at i =
      i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
    in
    at 0
  in
  if not (contains "line 4 (job-4)" err_text) then
    Alcotest.failf
      "bad line after blanks must be reported as line 4 (job-4), got: %s"
      err_text

(* The structural digest must survive a Model_io save -> parse round
   trip: the writer prints floats with %.17g, so a job rebuilt from the
   serialized model dedups against the original (this is also what
   makes the server's cache key stable across clients that ship the
   same model file). *)
let test_batch_digest_model_io_round_trip () =
  let module Model_io = Mrm_core.Model_io in
  List.iter
    (fun sigma2 ->
      let model =
        Onoff.model { (Onoff.table1 ~sigma2) with sources = 6; capacity = 6. }
      in
      let job =
        {
          Batch.id = "orig";
          model;
          times = [| 0.25; 1.0 |];
          order = 3;
          eps = 1e-9;
          meth = Batch.Randomization;
          kind = Batch.Moments;
        }
      in
      let reparsed = (Model_io.parse_string (Model_io.to_string model)).Model_io.model in
      let job' = { job with Batch.id = "reparsed"; model = reparsed } in
      Alcotest.(check string)
        (Printf.sprintf "digest stable across Model_io round trip (sigma2=%g)"
           sigma2)
        (Batch.digest job) (Batch.digest job');
      (* same stability for the stationary kind: the cache key must not
         depend on which client serialized the model... *)
      let stat k = { k with Batch.kind = Batch.Stationary { drain = 2.5; regularize = 1e-3 } } in
      Alcotest.(check string)
        (Printf.sprintf "stationary digest stable across round trip (sigma2=%g)"
           sigma2)
        (Batch.digest (stat job)) (Batch.digest (stat job'));
      (* ...while different kinds (and different stationary parameters)
         must never collide *)
      Alcotest.(check bool) "kind discriminates the digest" true
        (Batch.digest job <> Batch.digest (stat job));
      let stat' k =
        { k with Batch.kind = Batch.Stationary { drain = 2.5; regularize = 0. } }
      in
      Alcotest.(check bool) "stationary params discriminate" true
        (Batch.digest (stat job) <> Batch.digest (stat' job)))
    [ 1.; 10.; 0.3 ]

(* ------------------------------------------------------------------ *)
(* Dynamic race checker                                                 *)

module Racecheck = Mrm_engine.Racecheck

(* run [f] with the checker forced on/off, restoring the environment
   setting afterwards *)
let with_racecheck flag f =
  Racecheck.set_enabled (Some flag);
  Fun.protect ~finally:(fun () -> Racecheck.set_enabled None) f

let race_code = function
  | Racecheck.Race d -> d.Mrm_check.Diagnostics.code
  | e -> raise e

let expect_race name expected_code f =
  match f () with
  | () -> Alcotest.failf "%s: expected %s, nothing raised" name expected_code
  | exception e ->
      Alcotest.(check string) (name ^ ": code") expected_code (race_code e)

let test_racecheck_overlap_rejected () =
  with_racecheck true (fun () ->
      Pool.with_pool ~jobs:2 (fun pool ->
          let n = 8 in
          let x = Array.init n float_of_int in
          let y = Array.make n 0. in
          (* jobs 0 and 1 both write row 2 *)
          let overlapping =
            Partition.of_ranges ~rows:n [| (0, 3); (2, 5); (5, n) |]
          in
          expect_race "overlap" "RACE001" (fun () ->
              Kernel.copy_into pool overlapping x y);
          (* the diagnostic names both offending jobs *)
          (match
             try
               Kernel.copy_into pool overlapping x y;
               None
             with Racecheck.Race d -> Some d
           with
          | Some d ->
              let ctx = d.Mrm_check.Diagnostics.context in
              Alcotest.(check (option string))
                "job_a" (Some "0") (List.assoc_opt "job_a" ctx);
              Alcotest.(check (option string))
                "job_b" (Some "1") (List.assoc_opt "job_b" ctx)
          | None -> Alcotest.fail "overlap not detected");
          expect_race "gap" "RACE002" (fun () ->
              Kernel.copy_into pool
                (Partition.of_ranges ~rows:n [| (0, 3); (5, n) |])
                x y);
          expect_race "out of bounds" "RACE003" (fun () ->
              Kernel.copy_into pool
                (Partition.of_ranges ~rows:n [| (0, 3); (3, n + 1) |])
                x y);
          (* empty ranges are legal; a valid tiling passes and computes *)
          Kernel.copy_into pool
            (Partition.of_ranges ~rows:n [| (0, 3); (3, 3); (3, n) |])
            x y;
          Alcotest.(check bool) "copy happened" true (x = y)))

let test_racecheck_disabled_is_silent () =
  with_racecheck false (fun () ->
      Pool.with_pool ~jobs:1 (fun pool ->
          (* jobs = 1: the overlapping ranges run sequentially, so the
             unchecked sweep is still well-defined — it must not raise *)
          let n = 6 in
          let x = Array.init n float_of_int in
          let y = Array.make n 0. in
          Kernel.copy_into pool
            (Partition.of_ranges ~rows:n [| (0, 4); (2, n) |])
            x y;
          Alcotest.(check bool) "unchecked sweep ran" true (x = y)))

let test_racecheck_reduce_checked () =
  with_racecheck true (fun () ->
      Pool.with_pool ~jobs:2 (fun pool ->
          let x = Array.init 31 (fun i -> float_of_int i /. 3.) in
          (* chunked reductions build their own ranges; they must pass
             the checker and still match the sequential sum *)
          let got = Kernel.sum pool ~chunk:4 x in
          let expected = Vec.sum x in
          Alcotest.(check bool) "sum close" true
            (abs_float (got -. expected) <= 1e-12 *. (1. +. abs_float expected))))

let test_racecheck_solve_bit_for_bit () =
  (* Section 7 ON-OFF example: an instrumented parallel solve is
     bit-for-bit identical to the unchecked one *)
  let model = Onoff.model (Onoff.table1 ~sigma2:10.) in
  let unchecked =
    with_racecheck false (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            Randomization.moments ~pool model ~t:2. ~order:3))
  in
  let checked =
    with_racecheck true (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            Randomization.moments ~pool model ~t:2. ~order:3))
  in
  check_results_identical "racecheck on vs off" unchecked checked

(* ------------------------------------------------------------------ *)
(* Persistent pinned chunks: Pool.run_pinned and Kernel.sweep           *)

let test_run_pinned_semantics () =
  Pool.with_pool ~jobs:2 (fun pool ->
      (* Shapes the barrier protocol cannot serve are refused (the
         caller falls back), never deadlocked on. *)
      Alcotest.(check bool)
        "parties > jobs refused" false
        (Pool.run_pinned pool ~parties:3 ~rounds:2 (fun ~round:_ _ -> ()));
      Alcotest.(check bool)
        "rounds = 0 refused" false
        (Pool.run_pinned pool ~parties:2 ~rounds:0 (fun ~round:_ _ -> ()));
      let seq = Atomic.make 0 in
      let stamp = Array.make_matrix 3 2 (-1) in
      let accepted =
        Pool.run_pinned pool ~parties:2 ~rounds:3 (fun ~round k ->
            stamp.(round).(k) <- Atomic.fetch_and_add seq 1)
      in
      (* The sequential backend (OCaml 4) always declines; when the
         domains backend accepts, every (round, party) pair ran exactly
         once and the barrier totally orders rounds. *)
      if accepted then begin
        Alcotest.(check int) "6 executions" 6 (Atomic.get seq);
        Array.iteri
          (fun r per_round ->
            Array.iteri
              (fun k s ->
                if s < 0 then Alcotest.failf "round %d party %d never ran" r k)
              per_round)
          stamp;
        for r = 0 to 1 do
          let last = max stamp.(r).(0) stamp.(r).(1) in
          let first = min stamp.(r + 1).(0) stamp.(r + 1).(1) in
          Alcotest.(check bool)
            (Printf.sprintf "round %d completes before round %d" r (r + 1))
            true (last < first)
        done
      end)

let test_run_pinned_single_job () =
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check bool)
        "1-job pool declines pinned mode" false
        (Pool.run_pinned pool ~parties:1 ~rounds:2 (fun ~round:_ _ -> ())))

let diagonal_matrix rows =
  Sparse.of_triplets ~rows ~cols:rows
    (List.init rows (fun i -> (i, i, 1. +. float_of_int i)))

let check_sweep_coverage name pool partition ~rows ~rounds =
  let hits = Array.make_matrix rounds rows 0 in
  Kernel.sweep pool partition ~rounds (fun ~round ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(round).(i) <- hits.(round).(i) + 1
      done);
  Array.iteri
    (fun r per_round ->
      Alcotest.(check (array int))
        (Printf.sprintf "%s: every row once in round %d" name r)
        (Array.make rows 1) per_round)
    hits

let test_sweep_coverage () =
  let rows = 10 and rounds = 4 in
  let m = diagonal_matrix rows in
  check_sweep_coverage "no pool" None
    (Partition.pinned ~jobs:1 m)
    ~rows ~rounds;
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check_sweep_coverage
            (Printf.sprintf "jobs=%d pinned" jobs)
            (Some pool)
            (Partition.pinned ~jobs m)
            ~rows ~rounds;
          (* parts > jobs: run_pinned declines, in-caller fallback *)
          check_sweep_coverage
            (Printf.sprintf "jobs=%d fallback" jobs)
            (Some pool)
            (Partition.pinned ~jobs:(jobs + 3) m)
            ~rows ~rounds))
    job_counts;
  (* more parties than rows: the surplus pinned ranges are empty
     (coincident by_nnz boundaries) but their parties still meet every
     barrier — coverage and termination must hold. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let small = diagonal_matrix 2 in
      check_sweep_coverage "4 parties, 2 rows" (Some pool)
        (Partition.pinned ~jobs:4 small)
        ~rows:2 ~rounds:5)

let test_sweep_exception_propagates () =
  let m = diagonal_matrix 8 in
  Pool.with_pool ~jobs:2 (fun pool ->
      let partition = Partition.pinned ~jobs:2 m in
      let raised =
        try
          Kernel.sweep (Some pool) partition ~rounds:3
            (fun ~round ~lo ~hi:_ ->
              if round = 1 && lo = 0 then failwith "sweep body exploded");
          false
        with Failure msg -> msg = "sweep body exploded"
      in
      Alcotest.(check bool) "exception re-raised" true raised;
      (* the pool survives: plain batches and further pinned sweeps *)
      let total = Atomic.make 0 in
      Pool.run pool 10 (fun i -> ignore (Atomic.fetch_and_add total (i + 1)));
      Alcotest.(check int) "pool survives run" 55 (Atomic.get total);
      let count = Atomic.make 0 in
      Kernel.sweep (Some pool) partition ~rounds:2
        (fun ~round:_ ~lo:_ ~hi:_ -> ignore (Atomic.fetch_and_add count 1));
      Alcotest.(check int) "pool survives sweep" 4 (Atomic.get count))

let test_sweep_racecheck () =
  with_racecheck true (fun () ->
      Pool.with_pool ~jobs:2 (fun pool ->
          let n = 6 in
          expect_race "sweep overlap" "RACE001" (fun () ->
              Kernel.sweep (Some pool)
                (Partition.of_ranges ~rows:n [| (0, 4); (2, n) |])
                ~rounds:2
                (fun ~round:_ ~lo:_ ~hi:_ -> ()))))

(* The tentpole parity property: the fused multi-vector product behind
   the sweep — structure detection included — is bit-for-bit equal to
   three independent [Sparse.mv_into_range] calls, over random
   matrices (general CSR and birth-death band), random partition
   granularities (parts > rows yields empty ranges from coincident
   by_nnz boundaries). *)
let prop_mv_fused_matches_mv_into_range =
  QCheck2.Test.make ~count:150
    ~name:"Kernel.mv_fused over any partition = 3x mv_into_range (bitwise)"
    QCheck2.Gen.(
      let* n = int_range 1 24 in
      let* banded = bool in
      let* entries = list_repeat (3 * n) (float_range (-2.) 2.) in
      let* parts = int_range 1 40 in
      let* xs_flat = list_repeat (3 * n) (float_range (-1.) 1.) in
      return (n, banded, entries, parts, Array.of_list xs_flat))
    (fun (n, banded, entries, parts, xs_flat) ->
      let triplets =
        List.mapi
          (fun k v ->
            if banded then begin
              let i = k mod n in
              let j = max 0 (min (n - 1) (i + (k mod 3) - 1)) in
              (i, j, v)
            end
            else (k mod n, ((k * 5) + 1) mod n, v))
          entries
      in
      let m = Sparse.of_triplets ~rows:n ~cols:n triplets in
      let structure = Kernel.detect m in
      (if banded && not (Kernel.structure_kind structure = "tridiagonal")
       then Alcotest.fail "banded matrix not detected as tridiagonal");
      let xs = Array.init 3 (fun s -> Array.sub xs_flat (s * n) n) in
      let got = Array.init 3 (fun _ -> Array.make n Float.nan) in
      let expected = Array.init 3 (fun _ -> Array.make n Float.nan) in
      let partition = Partition.pinned ~jobs:parts m in
      Array.iter
        (fun (lo, hi) ->
          Kernel.mv_fused structure xs got ~lo ~hi;
          for s = 0 to 2 do
            Sparse.mv_into_range m xs.(s) expected.(s) ~lo ~hi
          done)
        (Partition.ranges partition);
      got = expected)

(* ------------------------------------------------------------------ *)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "all tasks run once" `Quick
            test_pool_covers_all_tasks;
          Alcotest.test_case "invalid jobs" `Quick test_pool_invalid_jobs;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "re-entrant run" `Quick test_pool_reentrant_run;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "parallel_for chunking" `Quick
            test_parallel_for_chunks;
          Alcotest.test_case "map_array" `Quick test_map_array;
        ] );
      ( "partition",
        [
          Alcotest.test_case "uniform" `Quick test_partition_uniform;
          Alcotest.test_case "nnz balancing" `Quick test_partition_by_nnz;
          to_alcotest prop_partition_covers_random;
        ] );
      ("kernel", [ to_alcotest prop_kernel_matches_sequential ]);
      ( "sweep",
        [
          Alcotest.test_case "run_pinned semantics" `Quick
            test_run_pinned_semantics;
          Alcotest.test_case "run_pinned on 1 job" `Quick
            test_run_pinned_single_job;
          Alcotest.test_case "coverage (pinned + fallback)" `Quick
            test_sweep_coverage;
          Alcotest.test_case "exception propagation" `Quick
            test_sweep_exception_propagates;
          Alcotest.test_case "racecheck coverage" `Quick test_sweep_racecheck;
          to_alcotest prop_mv_fused_matches_mv_into_range;
        ] );
      ( "racecheck",
        [
          Alcotest.test_case "overlap/gap/bounds rejected" `Quick
            test_racecheck_overlap_rejected;
          Alcotest.test_case "disabled is silent" `Quick
            test_racecheck_disabled_is_silent;
          Alcotest.test_case "reductions pass the checker" `Quick
            test_racecheck_reduce_checked;
          Alcotest.test_case "checked solve is bit-for-bit" `Quick
            test_racecheck_solve_bit_for_bit;
        ] );
      ( "solver",
        [
          Alcotest.test_case "table-1 parallel = sequential" `Quick
            test_solver_parallel_equals_sequential_table1;
          Alcotest.test_case "2k-state parallel = sequential" `Slow
            test_solver_parallel_equals_sequential_large;
          Alcotest.test_case "moments_at_times with pool" `Quick
            test_moments_at_times_with_pool;
          to_alcotest prop_solver_pool_invariant;
          Alcotest.test_case "moment_series projection" `Quick
            test_moment_series_projection;
        ] );
      ( "batch",
        [
          Alcotest.test_case "dedup + memoization" `Quick test_batch_dedup;
          Alcotest.test_case "matches direct solver" `Quick
            test_batch_matches_direct_solver;
          Alcotest.test_case "error isolation" `Quick
            test_batch_error_isolation;
          Alcotest.test_case "job_of_json" `Quick test_batch_job_of_json;
          Alcotest.test_case "outcome JSON round trip" `Quick
            test_batch_outcome_json_round_trip;
          Alcotest.test_case "CLI fixture" `Quick test_batch_cli_fixture;
          Alcotest.test_case "CLI mixed kinds" `Quick
            test_batch_cli_mixed_kinds;
          Alcotest.test_case "CLI unknown kind" `Quick
            test_batch_cli_unknown_kind;
          Alcotest.test_case "CLI blank-line ids" `Quick
            test_batch_blank_line_ids;
          Alcotest.test_case "CLI blank-line error lineno" `Quick
            test_batch_blank_line_error_lineno;
          Alcotest.test_case "digest stable across Model_io" `Quick
            test_batch_digest_model_io_round_trip;
        ] );
    ]
