(* Tests for mrm_core: the model type, the randomization solver
   (Theorems 3-4), the ODE/transform/simulation comparators, the PDE
   density solver, moment-based CDF bounds and steady-state analysis. *)

module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module First_order = Mrm_core.First_order
module Moments_ode = Mrm_core.Moments_ode
module Transform_moments = Mrm_core.Transform_moments
module Simulate = Mrm_core.Simulate
module Pde = Mrm_core.Pde
module Moment_bounds = Mrm_core.Moment_bounds
module Steady = Mrm_core.Steady
module Brownian = Mrm_brownian.Brownian
module Generator = Mrm_ctmc.Generator
module Vec = Mrm_linalg.Vec
module Rng = Mrm_util.Rng

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

(* Shared fixtures. *)
let generator2 = Generator.of_triplets ~states:2 [ (0, 1, 2.); (1, 0, 3.) ]

let model2 =
  Model.make ~generator:generator2 ~rates:[| 2.0; -1.0 |]
    ~variances:[| 0.5; 1.5 |] ~initial:[| 0.7; 0.3 |]

let generator3 =
  Generator.of_triplets ~states:3
    [ (0, 1, 1.0); (1, 2, 2.0); (2, 0, 1.5); (1, 0, 0.5) ]

let model3 =
  Model.make ~generator:generator3 ~rates:[| 4.0; 2.0; 0.5 |]
    ~variances:[| 0.3; 1.0; 0.1 |] ~initial:[| 1.; 0.; 0. |]

let unconditional model vectors order =
  Vec.dot (model : Model.t).Model.initial vectors.(order)

(* ------------------------------------------------------------------ *)
(* Model                                                                *)

let test_model_validation () =
  (match
     Model.make ~generator:generator2 ~rates:[| 1. |] ~variances:[| 0.; 0. |]
       ~initial:[| 1.; 0. |]
   with
  | _ -> Alcotest.fail "rate dimension"
  | exception Invalid_argument _ -> ());
  (match
     Model.make ~generator:generator2 ~rates:[| 1.; 1. |]
       ~variances:[| -1.; 0. |] ~initial:[| 1.; 0. |]
   with
  | _ -> Alcotest.fail "negative variance"
  | exception Invalid_argument _ -> ());
  (match
     Model.make ~generator:generator2 ~rates:[| 1.; 1. |]
       ~variances:[| 0.; 0. |] ~initial:[| 0.9; 0.3 |]
   with
  | _ -> Alcotest.fail "initial mass"
  | exception Invalid_argument _ -> ());
  match
    Model.make ~generator:generator2
      ~rates:[| Float.infinity; 1. |]
      ~variances:[| 0.; 0. |] ~initial:[| 1.; 0. |]
  with
  | _ -> Alcotest.fail "infinite rate"
  | exception Invalid_argument _ -> ()

let test_model_accessors () =
  Alcotest.(check int) "dim" 2 (Model.dim model2);
  Alcotest.(check bool) "second order" false (Model.is_first_order model2);
  check_close "min rate" (-1.) (Model.min_rate model2);
  check_close "max rate" 2. (Model.max_rate model2);
  check_close "max std" (sqrt 1.5) (Model.max_std_dev model2);
  let bp = Model.brownian_of_state model2 1 in
  check_close "state brownian drift" (-1.) bp.Brownian.drift;
  check_close "state brownian var" 1.5 bp.Brownian.variance

let test_model_first_order_constructor () =
  let m =
    Model.first_order ~generator:generator2 ~rates:[| 1.; 2. |]
      ~initial:[| 1.; 0. |]
  in
  Alcotest.(check bool) "first order" true (Model.is_first_order m)

let test_model_with_variances () =
  let m = Model.with_variances model2 [| 0.; 0. |] in
  Alcotest.(check bool) "now first order" true (Model.is_first_order m);
  (* Original untouched. *)
  Alcotest.(check bool) "original unchanged" false
    (Model.is_first_order model2)

let test_model_defensive_copies () =
  let rates = [| 1.; 1. |] in
  let m =
    Model.make ~generator:generator2 ~rates ~variances:[| 0.; 0. |]
      ~initial:[| 1.; 0. |]
  in
  rates.(0) <- 99.;
  check_close "rates copied" 1. (m : Model.t).Model.rates.(0)

(* ------------------------------------------------------------------ *)
(* Randomization                                                        *)

let test_rand_single_state_closed_form () =
  (* One state, no transitions: B(t) is a drifted Brownian motion. *)
  let g = Generator.of_triplets ~states:1 [] in
  let m =
    Model.make ~generator:g ~rates:[| 1.2 |] ~variances:[| 0.7 |]
      ~initial:[| 1. |]
  in
  let t = 1.4 in
  let r = Randomization.moments m ~t ~order:5 in
  let bp = { Brownian.drift = 1.2; variance = 0.7 } in
  for n = 0 to 5 do
    check_close ~tol:1e-12
      (Printf.sprintf "moment %d" n)
      (Brownian.raw_moment bp ~t n)
      r.moments.(n).(0)
  done

let test_rand_uniform_rewards_reduce_to_brownian () =
  (* Equal (r, sigma^2) in every state: the modulation is invisible and
     B(t) is exactly Brownian, but the solver still runs the full
     recursion. *)
  let r = 1.5 and s2 = 0.8 and t = 0.7 in
  let m =
    Model.make ~generator:generator2 ~rates:[| r; r |] ~variances:[| s2; s2 |]
      ~initial:[| 1.; 0. |]
  in
  let result = Randomization.moments m ~t ~order:4 in
  let bp = { Brownian.drift = r; variance = s2 } in
  for n = 0 to 4 do
    check_close ~tol:1e-9
      (Printf.sprintf "brownian reduction %d" n)
      (Brownian.raw_moment bp ~t n)
      result.moments.(n).(0);
    (* Both initial states give the same answer. *)
    check_close ~tol:1e-12 "states agree" result.moments.(n).(0)
      result.moments.(n).(1)
  done

let test_rand_time_zero () =
  let r = Randomization.moments model2 ~t:0. ~order:3 in
  check_close "m0" 1. r.moments.(0).(0);
  check_close "m1" 0. r.moments.(1).(0);
  check_close "m3" 0. r.moments.(3).(1)

let test_rand_order_zero () =
  let r = Randomization.moments model2 ~t:1.3 ~order:0 in
  check_close "V0 state 0" 1. r.moments.(0).(0);
  check_close "V0 state 1" 1. r.moments.(0).(1)

let test_rand_negative_rates_shift () =
  (* Moments of -B equal (-1)^n times moments of B: run the mirrored model
     and compare; exercises the r-shift transform. *)
  let mirrored =
    Model.make ~generator:generator2 ~rates:[| -2.0; 1.0 |]
      ~variances:[| 0.5; 1.5 |] ~initial:[| 0.7; 0.3 |]
  in
  let t = 0.8 in
  let original = Randomization.moments model2 ~t ~order:4 in
  let negated = Randomization.moments mirrored ~t ~order:4 in
  Alcotest.(check bool) "shift applied" true
    (negated.diagnostics.shift < 0.);
  for n = 0 to 4 do
    let sign = if n mod 2 = 0 then 1. else -1. in
    for i = 0 to 1 do
      check_close ~tol:1e-9
        (Printf.sprintf "mirror n=%d state=%d" n i)
        (sign *. original.moments.(n).(i))
        negated.moments.(n).(i)
    done
  done

let test_rand_all_zero_rewards () =
  let m =
    Model.make ~generator:generator2 ~rates:[| 0.; 0. |]
      ~variances:[| 0.; 0. |] ~initial:[| 1.; 0. |]
  in
  let r = Randomization.moments m ~t:2. ~order:3 in
  check_close "m0" 1. r.moments.(0).(0);
  check_close "m1" 0. r.moments.(1).(0);
  check_close "m2" 0. r.moments.(2).(1)

let test_rand_constant_negative_drift () =
  (* All rates equal and negative, zero variance: B(t) = r t exactly
     (the shifted model has d = 0). *)
  let m =
    Model.make ~generator:generator2 ~rates:[| -3.; -3. |]
      ~variances:[| 0.; 0. |] ~initial:[| 1.; 0. |]
  in
  let t = 1.1 in
  let r = Randomization.moments m ~t ~order:3 in
  check_close "m1" (-3.3) r.moments.(1).(0);
  check_close "m2" (3.3 *. 3.3) r.moments.(2).(0);
  check_close "m3" (-.(3.3 ** 3.)) r.moments.(3).(0)

let test_rand_error_bound_honored () =
  (* A loose-eps run deviates from a tight-eps reference by no more than
     the guaranteed bound. *)
  let t = 0.9 and order = 3 in
  let reference = Randomization.moments ~eps:1e-13 model2 ~t ~order in
  let loose = Randomization.moments ~eps:1e-4 model2 ~t ~order in
  let bound = exp loose.diagnostics.log_error_bound in
  Alcotest.(check bool) "bound <= eps" true (bound <= 1e-4);
  (* The shifted model's moments differ from the unshifted by the binomial
     map, which can only scale the error by O(1) here; compare directly on
     the final moments with head-room. *)
  for i = 0 to 1 do
    let diff =
      abs_float (reference.moments.(order).(i) -. loose.moments.(order).(i))
    in
    if diff > 10. *. bound +. 1e-12 then
      Alcotest.failf "error %g exceeds bound %g (state %d)" diff bound i
  done

let test_rand_eps_controls_iterations () =
  let t = 0.9 in
  let loose = Randomization.moments ~eps:1e-3 model2 ~t ~order:2 in
  let tight = Randomization.moments ~eps:1e-12 model2 ~t ~order:2 in
  Alcotest.(check bool) "tighter eps, more iterations" true
    (tight.diagnostics.iterations > loose.diagnostics.iterations);
  (* But the results agree to the loose tolerance. *)
  check_close ~tol:1e-3 "loose close to tight"
    (unconditional model2 tight.moments 2)
    (unconditional model2 loose.moments 2)

let test_rand_diagnostics_substochastic () =
  (* d is chosen so R' and S' are substochastic: max r'_i <= 1,
     max s'_i <= 1 (the DESIGN.md correction to the paper's d). *)
  let r = Randomization.moments model2 ~t:1. ~order:2 in
  let { Randomization.q; d; shift; _ } = r.diagnostics in
  let max_shifted_rate =
    Array.fold_left Float.max neg_infinity
      (Array.map (fun x -> x -. shift) (model2 : Model.t).Model.rates)
  in
  let max_variance =
    Array.fold_left Float.max 0. (model2 : Model.t).Model.variances
  in
  Alcotest.(check bool) "R' substochastic" true
    (max_shifted_rate /. (q *. d) <= 1. +. 1e-12);
  Alcotest.(check bool) "S' substochastic" true
    (max_variance /. (q *. d *. d) <= 1. +. 1e-12)

let test_rand_mean_vs_transient_integral () =
  (* E B(t) = int_0^t p(u) r du, via Simpson on uniformization transients
     (an oracle independent of the moment recursion). *)
  let t = 1.7 in
  let simpson = First_order.expected_reward_integral model2 ~t ~steps:200 in
  check_close ~tol:1e-8 "mean = rate integral"
    simpson
    (Randomization.mean model2 ~t)

let test_rand_mean_independent_of_variance () =
  (* The paper's Figure-3 observation. *)
  let t = 1.2 in
  let m_a = Randomization.mean model2 ~t in
  let m_b =
    Randomization.mean (Model.with_variances model2 [| 7.; 0.2 |]) ~t
  in
  check_close ~tol:1e-10 "mean unaffected by S" m_a m_b

let test_rand_variance_increases_with_s () =
  (* Adding Brownian variance adds exactly int_0^t E[sigma^2_{Z(u)}] du to
     the variance; in particular it increases it. *)
  let t = 1.2 in
  let low = Randomization.variance model2 ~t in
  let high =
    Randomization.variance (Model.with_variances model2 [| 2.5; 3.5 |]) ~t
  in
  Alcotest.(check bool) "variance grows" true (high > low)

let test_rand_variance_decomposition () =
  (* Var_2nd(t) - Var_1st(t) = int_0^t sum_i p_i(u) sigma_i^2 du: check
     against Simpson on the transient probabilities. *)
  let t = 0.9 in
  let second = Randomization.variance model2 ~t in
  let first =
    Randomization.variance (Model.with_variances model2 [| 0.; 0. |]) ~t
  in
  (* Reuse the rate-integral oracle with sigma^2 as "rates". *)
  let sigma_model =
    Model.make ~generator:generator2 ~rates:(model2 : Model.t).Model.variances
      ~variances:[| 0.; 0. |] ~initial:(model2 : Model.t).Model.initial
  in
  let brownian_contribution =
    First_order.expected_reward_integral sigma_model ~t ~steps:400
  in
  check_close ~tol:1e-7 "variance decomposition"
    (first +. brownian_contribution)
    second

let test_rand_moment_series () =
  let times = [| 0.; 0.5; 1. |] in
  let series = Randomization.moment_series model2 ~times ~order:2 in
  Alcotest.(check int) "rows" 3 (Array.length series);
  let t1, ms = series.(2) in
  check_close "time" 1. t1;
  check_close ~tol:1e-10 "matches single call"
    (Randomization.moment model2 ~t:1. ~order:2)
    ms.(2);
  check_close "m0 row" 1. ms.(0)

let test_rand_central_moment () =
  let t = 0.8 in
  let mean = Randomization.mean model2 ~t in
  let c2 = Randomization.central_moment model2 ~t ~order:2 in
  check_close ~tol:1e-10 "central 2 = variance"
    (Randomization.variance model2 ~t)
    c2;
  check_close ~tol:1e-10 "central 1 = 0" 0.
    (Randomization.central_moment model2 ~t ~order:1);
  ignore mean

let test_rand_invalid_arguments () =
  (match Randomization.moments model2 ~t:(-1.) ~order:2 with
  | _ -> Alcotest.fail "negative t"
  | exception Invalid_argument _ -> ());
  (* Regression: NaN and infinite horizons used to slip past the `t < 0.`
     guard (IEEE comparisons with NaN are false) and poison the Poisson
     truncation search downstream. They must be rejected up front. *)
  List.iter
    (fun t ->
      (match Randomization.moments model2 ~t ~order:2 with
      | _ -> Alcotest.failf "t = %g accepted" t
      | exception Invalid_argument _ -> ());
      match Randomization.moments_at_times model2 ~times:[| 1.0; t |] ~order:2 with
      | _ -> Alcotest.failf "times containing %g accepted" t
      | exception Invalid_argument _ -> ())
    [ Float.nan; Float.infinity ];
  (match Randomization.moments model2 ~t:1. ~order:(-1) with
  | _ -> Alcotest.fail "negative order"
  | exception Invalid_argument _ -> ());
  match Randomization.moments ~eps:0. model2 ~t:1. ~order:1 with
  | _ -> Alcotest.fail "zero eps"
  | exception Invalid_argument _ -> ()

let test_rand_truncation_point_degenerate () =
  (* Regression: lambda = 0 used to take log 0 = -inf through the tail
     search and return a poisoned truncation point. A zero uniformization
     rate means the Poisson mixture is concentrated at N = 0, so order
     terms suffice exactly. *)
  Alcotest.(check int) "lambda = 0, order 3" 3
    (Randomization.truncation_point ~d:1. ~lambda:0. ~order:3 ~eps:1e-9);
  Alcotest.(check int) "lambda = 0, order 0" 1
    (Randomization.truncation_point ~d:1. ~lambda:0. ~order:0 ~eps:1e-9);
  (match Randomization.truncation_point ~d:1. ~lambda:Float.nan ~order:2 ~eps:1e-9 with
  | _ -> Alcotest.fail "nan lambda accepted"
  | exception Invalid_argument _ -> ());
  (match Randomization.truncation_point ~d:1. ~lambda:(-1.) ~order:2 ~eps:1e-9 with
  | _ -> Alcotest.fail "negative lambda accepted"
  | exception Invalid_argument _ -> ());
  (* Sanity on a regular call: G grows with lambda and stays modest. *)
  let g = Randomization.truncation_point ~d:1. ~lambda:10. ~order:2 ~eps:1e-9 in
  Alcotest.(check bool) "regular G sensible" true (g > 10 && g < 100)

let test_rand_higher_order_moments_positive () =
  (* Non-negative rates + nonneg support start: all raw moments of the
     shifted process are positive; with positive drift everywhere the raw
     moments must increase with t. *)
  let m =
    Model.make ~generator:generator3 ~rates:[| 4.; 2.; 0.5 |]
      ~variances:[| 0.1; 0.2; 0.3 |] ~initial:[| 1.; 0.; 0. |]
  in
  let a = Randomization.moments m ~t:0.5 ~order:6 in
  let b = Randomization.moments m ~t:1.0 ~order:6 in
  for n = 1 to 6 do
    Alcotest.(check bool)
      (Printf.sprintf "moment %d grows" n)
      true
      (unconditional m b.moments n > unconditional m a.moments n
      && unconditional m a.moments n > 0.)
  done

(* ------------------------------------------------------------------ *)
(* First_order                                                          *)

let first_order_model =
  Model.first_order ~generator:generator2 ~rates:[| 2.; -1. |]
    ~initial:[| 0.7; 0.3 |]

let test_first_order_rejects_second_order () =
  match First_order.moments model2 ~t:1. ~order:2 with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_first_order_matches_general_solver () =
  let t = 1.3 in
  let dedicated = First_order.moments first_order_model ~t ~order:3 in
  let general =
    Randomization.moments
      (Model.with_variances model2 [| 0.; 0. |])
      ~t ~order:3
  in
  for n = 0 to 3 do
    check_close ~tol:1e-12
      (Printf.sprintf "n=%d" n)
      general.moments.(n).(0)
      dedicated.moments.(n).(0)
  done

let test_first_order_two_state_mean_closed_form () =
  (* For a 2-state chain the mean reward has the closed form
     rho t + (r(pi_0) - rho) (1 - e^{-(a+b)t})/(a+b) starting from
     state 0. *)
  let a = 2. and b = 3. in
  let r0 = 2. and r1 = -1. in
  let m =
    Model.first_order ~generator:generator2 ~rates:[| r0; r1 |]
      ~initial:[| 1.; 0. |]
  in
  let rho = ((b *. r0) +. (a *. r1)) /. (a +. b) in
  let t = 1.1 in
  let expected =
    (rho *. t) +. ((r0 -. rho) *. (1. -. exp (-.(a +. b) *. t)) /. (a +. b))
  in
  check_close ~tol:1e-10 "closed-form mean" expected
    (First_order.mean m ~t)

(* ------------------------------------------------------------------ *)
(* Moments_ode                                                          *)

let test_ode_matches_randomization () =
  let t = 0.8 in
  let reference = Randomization.moments model2 ~t ~order:3 in
  let heun = Moments_ode.moments model2 ~t ~order:3 in
  let rk4 = Moments_ode.moments ~method_:Mrm_ode.Ode.Rk4 model2 ~t ~order:3 in
  let adaptive = Moments_ode.moments_adaptive ~tol:1e-12 model2 ~t ~order:3 in
  for n = 0 to 3 do
    for i = 0 to 1 do
      (* Heun at the default ~100 steps: O(h^2) ~ 1e-4 relative. *)
      check_close ~tol:1e-4
        (Printf.sprintf "heun n=%d i=%d" n i)
        reference.moments.(n).(i)
        heun.(n).(i);
      check_close ~tol:1e-8
        (Printf.sprintf "rk4 n=%d i=%d" n i)
        reference.moments.(n).(i)
        rk4.(n).(i);
      check_close ~tol:1e-9
        (Printf.sprintf "rkf45 n=%d i=%d" n i)
        reference.moments.(n).(i)
        adaptive.(n).(i)
    done
  done

let test_ode_time_zero () =
  let m = Moments_ode.moments model2 ~t:0. ~order:2 in
  check_close "V0" 1. m.(0).(0);
  check_close "V1" 0. m.(1).(0)

let test_ode_default_steps_scale_with_q () =
  let steps_small = Moments_ode.default_steps model2 ~t:1. in
  let steps_large = Moments_ode.default_steps model2 ~t:100. in
  Alcotest.(check bool) "steps grow with horizon" true
    (steps_large > steps_small)

let test_ode_moment_convenience () =
  let t = 0.7 in
  check_close ~tol:1e-5 "moment wrapper"
    (Randomization.moment model2 ~t ~order:2)
    (Moments_ode.moment model2 ~t ~order:2)

(* ------------------------------------------------------------------ *)
(* Transform_moments                                                    *)

let test_stehfest_coefficients_properties () =
  List.iter
    (fun stages ->
      let zeta = Transform_moments.stehfest_coefficients stages in
      let total = Array.fold_left ( +. ) 0. zeta in
      (* Coefficients sum to 0 (consistency for F(s) = const). *)
      check_close ~tol:1e-6
        (Printf.sprintf "sum zero M=%d" stages)
        0. total;
      (* Inverting F(s) = 1/s at any t gives 1: sum_k zeta_k / k = 1. *)
      let weighted =
        Array.mapi (fun i z -> z /. float_of_int (i + 1)) zeta
      in
      check_close ~tol:1e-6
        (Printf.sprintf "inverts 1/s M=%d" stages)
        1.
        (Array.fold_left ( +. ) 0. weighted))
    [ 6; 10; 12; 14 ]

let test_stehfest_inverts_polynomial_transform () =
  (* F(s) = 1/s^2 -> f(t) = t; check via the coefficient identity
     sum zeta_k ln2/t * (t / (k ln2))^2 = t. *)
  let stages = 12 in
  let zeta = Transform_moments.stehfest_coefficients stages in
  let t = 2.5 in
  let log2 = log 2. in
  let acc = ref 0. in
  Array.iteri
    (fun i z ->
      let s = float_of_int (i + 1) *. log2 /. t in
      acc := !acc +. (z *. log2 /. t /. (s *. s)))
    zeta;
  check_close ~tol:1e-6 "inverts 1/s^2" t !acc

let test_stehfest_invalid () =
  (match Transform_moments.stehfest_coefficients 7 with
  | _ -> Alcotest.fail "odd stages"
  | exception Invalid_argument _ -> ());
  match Transform_moments.stehfest_coefficients 0 with
  | _ -> Alcotest.fail "zero stages"
  | exception Invalid_argument _ -> ()

let test_transform_matches_randomization () =
  let t = 0.8 in
  let reference = Randomization.moments model2 ~t ~order:3 in
  let transform = Transform_moments.moments model2 ~t ~order:3 in
  for n = 0 to 3 do
    for i = 0 to 1 do
      check_close ~tol:2e-4
        (Printf.sprintf "gaver n=%d i=%d" n i)
        reference.moments.(n).(i)
        transform.(n).(i)
    done
  done

let test_transform_invalid () =
  match Transform_moments.moments model2 ~t:0. ~order:1 with
  | _ -> Alcotest.fail "t = 0 rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Simulate                                                             *)

let test_simulate_moments_cover_analytic () =
  let t = 0.8 in
  let rng = Rng.create ~seed:77L () in
  let estimates =
    Simulate.estimate_moments ~confidence:0.999 model2 rng ~t ~max_order:3
      ~replicas:60_000
  in
  let reference = Randomization.moments model2 ~t ~order:3 in
  Array.iter
    (fun e ->
      let truth = unconditional model2 reference.moments e.Simulate.order in
      if not (e.Simulate.ci_low <= truth && truth <= e.Simulate.ci_high) then
        Alcotest.failf "moment %d CI [%g, %g] misses %g" e.Simulate.order
          e.ci_low e.ci_high truth)
    estimates

let test_simulate_deterministic_with_seed () =
  let t = 0.5 in
  let a = Simulate.sample model2 (Rng.create ~seed:5L ()) ~t ~replicas:100 in
  let b = Simulate.sample model2 (Rng.create ~seed:5L ()) ~t ~replicas:100 in
  Alcotest.(check bool) "same seed, same samples" true (a = b)

let test_simulate_first_order_single_state () =
  (* Deterministic accumulation: every sample equals r t exactly. *)
  let g = Generator.of_triplets ~states:1 [] in
  let m =
    Model.make ~generator:g ~rates:[| 2.5 |] ~variances:[| 0. |]
      ~initial:[| 1. |]
  in
  let rng = Rng.create () in
  let xs = Simulate.sample m rng ~t:2. ~replicas:50 in
  Array.iter (fun x -> check_close "deterministic sample" 5. x) xs

let test_simulate_joint_path_structure () =
  let rng = Rng.create ~seed:9L () in
  let path = Simulate.joint_path model2 rng ~t_max:1. ~grid:40 in
  Alcotest.(check int) "points" 41 (Array.length path);
  check_close "starts at 0" 0. path.(0).Simulate.time;
  check_close "reward starts at 0" 0. path.(0).Simulate.reward;
  Array.iteri
    (fun k p ->
      if k > 0 then begin
        let prev = path.(k - 1) in
        Alcotest.(check bool) "time increases" true
          (p.Simulate.time > prev.Simulate.time);
        Alcotest.(check bool) "valid state" true
          (p.Simulate.state >= 0 && p.Simulate.state < 2)
      end)
    path

let test_simulate_absorbing_state () =
  (* Absorbing chain: after absorption the reward accumulates at the
     absorbing state's rate. With zero variances B(t) is piecewise
     linear and bounded by max-rate * t. *)
  let g = Generator.of_triplets ~states:2 [ (0, 1, 5.) ] in
  let m =
    Model.make ~generator:g ~rates:[| 1.; 3. |] ~variances:[| 0.; 0. |]
      ~initial:[| 1.; 0. |]
  in
  let rng = Rng.create ~seed:21L () in
  let xs = Simulate.sample m rng ~t:4. ~replicas:500 in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "within range" true (x >= 4. && x <= 12.))
    xs;
  (* Mean matches the randomization solver. *)
  let mean = Mrm_util.Stats.mean xs in
  let truth = Randomization.mean m ~t:4. in
  Alcotest.(check bool) "absorbing mean close" true
    (abs_float (mean -. truth) < 0.15)

let test_simulate_empirical_cdf () =
  let rng = Rng.create ~seed:4L () in
  let below = Simulate.empirical_cdf model2 rng ~t:0.5 ~replicas:2_000 (-100.) in
  let above = Simulate.empirical_cdf model2 rng ~t:0.5 ~replicas:2_000 100. in
  check_close "cdf far left" 0. below;
  check_close "cdf far right" 1. above

(* ------------------------------------------------------------------ *)
(* Pde                                                                  *)

let test_pde_mass_conserved () =
  let solution = Pde.solve model3 ~t:1.0 ~cells:400 in
  check_close ~tol:1e-6 "mass" 1. (Pde.raw_moment model3 solution 0)

let test_pde_moments_match_randomization () =
  let t = 1.0 in
  let solution = Pde.solve model3 ~t ~cells:1200 in
  let reference = Randomization.moments model3 ~t ~order:2 in
  check_close ~tol:5e-3 "pde mean"
    (unconditional model3 reference.moments 1)
    (Pde.raw_moment model3 solution 1);
  check_close ~tol:5e-2 "pde second moment"
    (unconditional model3 reference.moments 2)
    (Pde.raw_moment model3 solution 2)

let test_pde_cdf_monotone () =
  let solution = Pde.solve model3 ~t:0.8 ~cells:300 in
  let previous = ref (-0.001) in
  for k = 0 to 20 do
    let x = -2. +. (0.4 *. float_of_int k) in
    let c = Pde.cdf model3 solution x in
    Alcotest.(check bool) "monotone" true (c >= !previous -. 1e-9);
    previous := c
  done;
  check_close ~tol:1e-5 "cdf right end" 1.
    (Pde.cdf model3 solution 1e6)

let test_pde_matches_brownian_single_state () =
  (* Single state: the PDE is pure advection-diffusion; compare with the
     exact normal CDF. *)
  let g = Generator.of_triplets ~states:1 [] in
  let m =
    Model.make ~generator:g ~rates:[| 1. |] ~variances:[| 0.5 |]
      ~initial:[| 1. |]
  in
  let t = 1.0 in
  let solution = Pde.solve m ~t ~cells:1500 in
  let bp = { Brownian.drift = 1.; variance = 0.5 } in
  List.iter
    (fun x ->
      check_close ~tol:5e-3
        (Printf.sprintf "normal cdf at %g" x)
        (Brownian.cdf bp ~t x)
        (Pde.cdf m solution x))
    [ 0.; 0.5; 1.; 1.5; 2. ]

let test_pde_invalid () =
  match Pde.solve model3 ~t:0. with
  | _ -> Alcotest.fail "t = 0 rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Moment_bounds                                                        *)

let test_bounds_bracket_exponential () =
  (* Exponential(1): m_k = k!. *)
  let moments = Array.init 10 (fun k -> Mrm_util.Special.factorial k) in
  let b = Moment_bounds.prepare moments in
  List.iter
    (fun x ->
      let { Moment_bounds.lower; upper; _ } = Moment_bounds.cdf_bounds b x in
      let truth = 1. -. exp (-.x) in
      Alcotest.(check bool)
        (Printf.sprintf "bracket at %g" x)
        true
        (lower <= truth +. 1e-9 && truth <= upper +. 1e-9);
      Alcotest.(check bool) "ordered" true (lower <= upper))
    [ 0.2; 0.5; 1.; 2.; 3.; 5. ]

let test_bounds_bracket_uniform () =
  (* Uniform(0,1): m_k = 1/(k+1). *)
  let moments = Array.init 12 (fun k -> 1. /. float_of_int (k + 1)) in
  let b = Moment_bounds.prepare moments in
  List.iter
    (fun x ->
      let { Moment_bounds.lower; upper; _ } = Moment_bounds.cdf_bounds b x in
      Alcotest.(check bool)
        (Printf.sprintf "bracket at %g" x)
        true
        (lower <= x +. 1e-9 && x <= upper +. 1e-9))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_bounds_two_point_distribution () =
  (* Mass 0.3 at 1 and 0.7 at 3. The moment sequence of a 2-atom measure
     has an exactly singular 3x3 Hankel matrix, so the evaluator must
     detect the degeneracy, fall back to one interior node, and still
     bracket the true CDF. *)
  let m k =
    (0.3 *. (1. ** float_of_int k)) +. (0.7 *. (3. ** float_of_int k))
  in
  let moments = Array.init 6 (fun k -> m k) in
  let b = Moment_bounds.prepare moments in
  Alcotest.(check int) "degeneracy reduces nodes" 1
    (Moment_bounds.quadrature_size b);
  let truth x = if x < 1. then 0. else if x < 3. then 0.3 else 1. in
  List.iter
    (fun x ->
      let { Moment_bounds.lower; upper; _ } = Moment_bounds.cdf_bounds b x in
      Alcotest.(check bool)
        (Printf.sprintf "bracket at %g" x)
        true
        (lower <= truth x +. 1e-9 && truth x <= upper +. 1e-9))
    [ 0.5; 1.5; 2.; 2.5; 3.5 ]

let test_bounds_tighten_with_more_moments () =
  let gap count =
    let moments = Array.init count (fun k -> Mrm_util.Special.factorial k) in
    let b = Moment_bounds.prepare moments in
    let { Moment_bounds.lower; upper; _ } = Moment_bounds.cdf_bounds b 1. in
    upper -. lower
  in
  Alcotest.(check bool) "more moments, tighter bounds" true
    (gap 12 < gap 6)

let test_bounds_gauss_quadrature_exactness () =
  (* The n-point Gauss rule reproduces the first 2n moments. *)
  let moments = Array.init 8 (fun k -> Mrm_util.Special.factorial k) in
  let b = Moment_bounds.prepare moments in
  let nodes, weights = Moment_bounds.gauss_quadrature b in
  let n = Moment_bounds.quadrature_size b in
  for k = 0 to (2 * n) - 1 do
    let integral = ref 0. in
    Array.iteri
      (fun i node -> integral := !integral +. (weights.(i) *. (node ** float_of_int k)))
      nodes;
    check_close ~tol:1e-7
      (Printf.sprintf "moment %d reproduced" k)
      moments.(k) !integral
  done

let test_bounds_normal_distribution () =
  (* Standard normal (two-sided support): m_{2k} = (2k-1)!!, odd = 0. *)
  let moments =
    Array.init 11 (fun k ->
        if k mod 2 = 1 then 0.
        else begin
          let rec double_factorial n =
            if n <= 1 then 1. else float_of_int n *. double_factorial (n - 2)
          in
          double_factorial (k - 1)
        end)
  in
  let b = Moment_bounds.prepare moments in
  let mid = Moment_bounds.cdf_bounds b 0. in
  Alcotest.(check bool) "median in bounds" true
    (mid.Moment_bounds.lower <= 0.5 && 0.5 <= mid.Moment_bounds.upper);
  let right = Moment_bounds.cdf_bounds b 1.5 in
  let truth = Mrm_util.Special.normal_cdf ~mu:0. ~sigma:1. 1.5 in
  Alcotest.(check bool) "Phi(1.5) in bounds" true
    (right.Moment_bounds.lower <= truth && truth <= right.Moment_bounds.upper)

let test_bounds_invalid_inputs () =
  (match Moment_bounds.prepare [| 1.; 0.5 |] with
  | _ -> Alcotest.fail "too few moments"
  | exception Invalid_argument _ -> ());
  (match Moment_bounds.prepare [| -1.; 0.; 1. |] with
  | _ -> Alcotest.fail "negative mass"
  | exception Invalid_argument _ -> ());
  match Moment_bounds.prepare [| 1.; Float.nan; 1. |] with
  | _ -> Alcotest.fail "nan moment"
  | exception Invalid_argument _ -> ()

let test_bounds_grid () =
  let moments = Array.init 8 (fun k -> Mrm_util.Special.factorial k) in
  let b = Moment_bounds.prepare moments in
  let grid = Moment_bounds.cdf_bounds_grid b [| 0.5; 1.; 2. |] in
  Alcotest.(check int) "grid size" 3 (Array.length grid);
  check_close "points preserved" 1. grid.(1).Moment_bounds.point

(* ------------------------------------------------------------------ *)
(* Steady                                                               *)

let test_steady_reward_rate () =
  (* pi = (0.6, 0.4), r = (2, -1): rho = 0.8. *)
  check_close ~tol:1e-12 "rho" 0.8 (Steady.reward_rate model2)

let test_steady_mean_line () =
  let line = Steady.mean_line model2 ~times:[| 0.; 1.; 2.5 |] in
  check_close "line at 0" 0. (snd line.(0));
  check_close ~tol:1e-12 "line at 2.5" 2. (snd line.(2))

let test_steady_variance_rate_positive () =
  Alcotest.(check bool) "positive" true (Steady.variance_rate model2 > 0.)

let test_steady_variance_rate_matches_long_run () =
  (* Var B(t) / t converges to the variance rate. *)
  let rate = Steady.variance_rate model2 in
  let t = 200. in
  let v = Randomization.variance model2 ~t in
  check_close ~tol:0.02 "CLT variance constant" rate (v /. t)

let test_steady_variance_rate_brownian_only () =
  (* Constant rates: modulation contributes nothing; the rate is
     pi . sigma^2 exactly. *)
  let m =
    Model.make ~generator:generator2 ~rates:[| 1.; 1. |]
      ~variances:[| 2.; 0.5 |] ~initial:[| 1.; 0. |]
  in
  check_close ~tol:1e-10 "pure Brownian rate"
    ((0.6 *. 2.) +. (0.4 *. 0.5))
    (Steady.variance_rate m)

let test_steady_transient_mean_approaches_line () =
  (* d/dt E B(t) -> rho: compare increments at large t. *)
  let rho = Steady.reward_rate model2 in
  let m1 = Randomization.mean model2 ~t:50. in
  let m2 = Randomization.mean model2 ~t:51. in
  check_close ~tol:1e-8 "slope" rho (m2 -. m1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mrm_core"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "accessors" `Quick test_model_accessors;
          Alcotest.test_case "first-order constructor" `Quick
            test_model_first_order_constructor;
          Alcotest.test_case "with_variances" `Quick test_model_with_variances;
          Alcotest.test_case "defensive copies" `Quick
            test_model_defensive_copies;
        ] );
      ( "randomization",
        [
          Alcotest.test_case "single state closed form" `Quick
            test_rand_single_state_closed_form;
          Alcotest.test_case "uniform rewards = Brownian" `Quick
            test_rand_uniform_rewards_reduce_to_brownian;
          Alcotest.test_case "t = 0" `Quick test_rand_time_zero;
          Alcotest.test_case "order 0" `Quick test_rand_order_zero;
          Alcotest.test_case "negative rates (shift)" `Quick
            test_rand_negative_rates_shift;
          Alcotest.test_case "all-zero rewards" `Quick
            test_rand_all_zero_rewards;
          Alcotest.test_case "constant negative drift" `Quick
            test_rand_constant_negative_drift;
          Alcotest.test_case "error bound honored" `Quick
            test_rand_error_bound_honored;
          Alcotest.test_case "eps controls iterations" `Quick
            test_rand_eps_controls_iterations;
          Alcotest.test_case "substochastic scaling" `Quick
            test_rand_diagnostics_substochastic;
          Alcotest.test_case "mean = transient rate integral" `Quick
            test_rand_mean_vs_transient_integral;
          Alcotest.test_case "mean independent of S (Fig 3)" `Quick
            test_rand_mean_independent_of_variance;
          Alcotest.test_case "variance grows with S (Fig 4)" `Quick
            test_rand_variance_increases_with_s;
          Alcotest.test_case "variance decomposition" `Quick
            test_rand_variance_decomposition;
          Alcotest.test_case "moment series" `Quick test_rand_moment_series;
          Alcotest.test_case "central moments" `Quick test_rand_central_moment;
          Alcotest.test_case "invalid arguments" `Quick
            test_rand_invalid_arguments;
          Alcotest.test_case "degenerate truncation point" `Quick
            test_rand_truncation_point_degenerate;
          Alcotest.test_case "high orders monotone in t" `Quick
            test_rand_higher_order_moments_positive;
        ] );
      ( "first_order",
        [
          Alcotest.test_case "rejects second-order model" `Quick
            test_first_order_rejects_second_order;
          Alcotest.test_case "matches general solver" `Quick
            test_first_order_matches_general_solver;
          Alcotest.test_case "two-state closed-form mean" `Quick
            test_first_order_two_state_mean_closed_form;
        ] );
      ( "moments_ode",
        [
          Alcotest.test_case "matches randomization" `Quick
            test_ode_matches_randomization;
          Alcotest.test_case "t = 0" `Quick test_ode_time_zero;
          Alcotest.test_case "default steps" `Quick
            test_ode_default_steps_scale_with_q;
          Alcotest.test_case "moment wrapper" `Quick
            test_ode_moment_convenience;
        ] );
      ( "transform_moments",
        [
          Alcotest.test_case "Stehfest coefficient identities" `Quick
            test_stehfest_coefficients_properties;
          Alcotest.test_case "inverts 1/s^2" `Quick
            test_stehfest_inverts_polynomial_transform;
          Alcotest.test_case "invalid stages" `Quick test_stehfest_invalid;
          Alcotest.test_case "matches randomization" `Quick
            test_transform_matches_randomization;
          Alcotest.test_case "invalid time" `Quick test_transform_invalid;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "CIs cover analytic moments" `Slow
            test_simulate_moments_cover_analytic;
          Alcotest.test_case "seed determinism" `Quick
            test_simulate_deterministic_with_seed;
          Alcotest.test_case "deterministic single state" `Quick
            test_simulate_first_order_single_state;
          Alcotest.test_case "joint path structure" `Quick
            test_simulate_joint_path_structure;
          Alcotest.test_case "absorbing state" `Quick
            test_simulate_absorbing_state;
          Alcotest.test_case "empirical cdf extremes" `Quick
            test_simulate_empirical_cdf;
        ] );
      ( "pde",
        [
          Alcotest.test_case "mass conserved" `Quick test_pde_mass_conserved;
          Alcotest.test_case "moments match randomization" `Slow
            test_pde_moments_match_randomization;
          Alcotest.test_case "cdf monotone" `Quick test_pde_cdf_monotone;
          Alcotest.test_case "single state = normal" `Slow
            test_pde_matches_brownian_single_state;
          Alcotest.test_case "invalid time" `Quick test_pde_invalid;
        ] );
      ( "moment_bounds",
        [
          Alcotest.test_case "bracket exponential" `Quick
            test_bounds_bracket_exponential;
          Alcotest.test_case "bracket uniform" `Quick
            test_bounds_bracket_uniform;
          Alcotest.test_case "two-point exact" `Quick
            test_bounds_two_point_distribution;
          Alcotest.test_case "tighten with more moments" `Quick
            test_bounds_tighten_with_more_moments;
          Alcotest.test_case "Gauss rule exactness" `Quick
            test_bounds_gauss_quadrature_exactness;
          Alcotest.test_case "normal distribution" `Quick
            test_bounds_normal_distribution;
          Alcotest.test_case "invalid inputs" `Quick
            test_bounds_invalid_inputs;
          Alcotest.test_case "grid evaluation" `Quick test_bounds_grid;
        ] );
      ( "steady",
        [
          Alcotest.test_case "reward rate" `Quick test_steady_reward_rate;
          Alcotest.test_case "mean line" `Quick test_steady_mean_line;
          Alcotest.test_case "variance rate positive" `Quick
            test_steady_variance_rate_positive;
          Alcotest.test_case "variance rate = long-run Var/t" `Quick
            test_steady_variance_rate_matches_long_run;
          Alcotest.test_case "pure Brownian variance rate" `Quick
            test_steady_variance_rate_brownian_only;
          Alcotest.test_case "transient mean slope -> rho" `Quick
            test_steady_transient_mean_approaches_line;
        ] );
    ]
