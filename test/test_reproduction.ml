(* Regression pins for the paper-reproduction numbers recorded in
   EXPERIMENTS.md: if a solver change shifts any of these, the recorded
   reproduction claims are stale and must be re-measured. *)

module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Onoff = Mrm_models.Onoff
module Vec = Mrm_linalg.Vec

let check_close ?(tol = 1e-9) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

let small ~sigma2 = Onoff.model (Onoff.table1 ~sigma2)

let unconditional model vectors order =
  Vec.dot (model : Model.t).Model.initial vectors.(order)

(* Figure 3 / EXPERIMENTS.md: the transient mean at selected times. *)
let test_fig3_values () =
  let m = small ~sigma2:10. in
  List.iter
    (fun (t, expected) ->
      check_close ~tol:1e-6 (Printf.sprintf "m1(%g)" t) expected
        (Randomization.mean m ~t))
    [ (0.5, 11.0428785957); (1.0, 20.2431114149); (2.0, 38.5306106157) ]

(* The closed-form stationary rate of the Table-1 model. *)
let test_stationary_rate () =
  check_close ~tol:1e-10 "rho" (32. -. (32. *. 3. /. 7.))
    (Mrm_core.Steady.reward_rate (small ~sigma2:0.))

(* Figure 4 values at t = 2 for the three variances. *)
let test_fig4_values () =
  List.iter
    (fun (sigma2, m2_expected, m3_expected) ->
      let m = small ~sigma2 in
      let r = Randomization.moments m ~t:2. ~order:3 in
      check_close ~tol:1e-5
        (Printf.sprintf "m2 sigma2=%g" sigma2)
        m2_expected
        (unconditional m r.Randomization.moments 2);
      check_close ~tol:1e-5
        (Printf.sprintf "m3 sigma2=%g" sigma2)
        m3_expected
        (unconditional m r.Randomization.moments 3))
    [
      (0., 1488.5663, 57660.145); (1., 1514.0357, 60592.323);
      (10., 1743.2602, 86981.928);
    ]

(* Strict moment ordering in sigma^2 at every Figure-4 grid point. *)
let test_fig4_ordering () =
  let ts = Array.init 8 (fun k -> 0.25 *. float_of_int (k + 1)) in
  Array.iter
    (fun t ->
      let value sigma2 order =
        let m = small ~sigma2 in
        let r = Randomization.moments m ~t ~order in
        unconditional m r.Randomization.moments order
      in
      List.iter
        (fun order ->
          let v0 = value 0. order and v1 = value 1. order in
          let v10 = value 10. order in
          if not (v0 < v1 && v1 < v10) then
            Alcotest.failf "ordering broken at t=%g order=%d" t order)
        [ 2; 3 ])
    ts

(* Table 2 (scaled N = 1000 for test speed): q = N max(alpha, beta), the
   mean scales linearly in N, and G stays within a few percent of qt for
   the paper's parameters. *)
let test_table2_scaling () =
  let p = Onoff.scaled_table2 ~sources:1000 in
  let m = Onoff.model p in
  let t = 0.05 in
  let r = Randomization.moments ~eps:1e-9 m ~t ~order:3 in
  check_close ~tol:1e-12 "q" 4000.
    (Mrm_ctmc.Generator.uniformization_rate (m : Model.t).Model.generator);
  (* Linear-in-N mean: N=1000 is 1/200 of the paper's 200,000, whose m1
     at t=0.05 is 9330.35 (EXPERIMENTS.md). *)
  check_close ~tol:1e-4 "mean scales with N" (9330.35 /. 200.)
    (unconditional m r.Randomization.moments 1);
  let g = r.Randomization.diagnostics.iterations in
  let qt = 4000. *. t in
  Alcotest.(check bool)
    (Printf.sprintf "G = %d within [qt, qt + 15 sqrt qt + 60]" g)
    true
    (float_of_int g >= qt
    && float_of_int g <= qt +. (15. *. sqrt qt) +. 60.)

(* The headline cost claim: second-order vs first-order randomization on
   the same model differ only by the S' diagonal multiply. We pin the
   structural fact: identical G and identical q/d for sigma^2 in {0, 10}
   at matched scales... d differs (depends on sigma), so pin G ratio ~1. *)
let test_cost_parity () =
  let t = 2. in
  let r0 = Randomization.moments (small ~sigma2:0.) ~t ~order:3 in
  let r10 = Randomization.moments (small ~sigma2:10.) ~t ~order:3 in
  let g0 = r0.Randomization.diagnostics.iterations in
  let g10 = r10.Randomization.diagnostics.iterations in
  Alcotest.(check bool)
    (Printf.sprintf "G within 10%%: %d vs %d" g0 g10)
    true
    (abs (g10 - g0) * 10 <= max g0 g10)

(* Figures 5-7 regression: envelope widths at the mean recorded in
   EXPERIMENTS.md. *)
let test_bounds_envelope_widths () =
  List.iter
    (fun (sigma2, lower_expected, upper_expected) ->
      let m = small ~sigma2 in
      let t = 0.5 in
      let r = Randomization.moments m ~t ~order:23 in
      let moments =
        Array.init 24 (fun n -> unconditional m r.Randomization.moments n)
      in
      let b = Mrm_core.Moment_bounds.prepare moments in
      let at_mean = Mrm_core.Moment_bounds.cdf_bounds b moments.(1) in
      check_close ~tol:1e-3
        (Printf.sprintf "lower sigma2=%g" sigma2)
        lower_expected at_mean.Mrm_core.Moment_bounds.lower;
      check_close ~tol:1e-3
        (Printf.sprintf "upper sigma2=%g" sigma2)
        upper_expected at_mean.Mrm_core.Moment_bounds.upper)
    [
      (0., 0.266458, 0.721964); (1., 0.308046, 0.674525);
      (10., 0.30455, 0.689107);
    ]

let () =
  Alcotest.run "reproduction"
    [
      ( "pins",
        [
          Alcotest.test_case "Figure 3 means" `Quick test_fig3_values;
          Alcotest.test_case "stationary rate" `Quick test_stationary_rate;
          Alcotest.test_case "Figure 4 moments" `Quick test_fig4_values;
          Alcotest.test_case "Figure 4 ordering" `Quick test_fig4_ordering;
          Alcotest.test_case "Table 2 scaling" `Quick test_table2_scaling;
          Alcotest.test_case "cost parity" `Quick test_cost_parity;
          Alcotest.test_case "Figures 5-7 envelopes" `Quick
            test_bounds_envelope_widths;
        ] );
    ]
