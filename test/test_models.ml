(* Tests for the model zoo: the paper's ON-OFF multiplexer (Section 7),
   the machine-repair model and the fault-tolerant multiprocessor. *)

module Onoff = Mrm_models.Onoff
module Machine_repair = Mrm_models.Machine_repair
module Multiprocessor = Mrm_models.Multiprocessor
module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Generator = Mrm_ctmc.Generator
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

(* ------------------------------------------------------------------ *)
(* Onoff (Section 7)                                                    *)

let test_onoff_table1_parameters () =
  let p = Onoff.table1 ~sigma2:10. in
  check_close "C" 32. p.Onoff.capacity;
  Alcotest.(check int) "N" 32 p.Onoff.sources;
  check_close "alpha" 4. p.Onoff.on_to_off;
  check_close "beta" 3. p.Onoff.off_to_on;
  check_close "r" 1. p.Onoff.peak_rate;
  check_close "sigma2" 10. p.Onoff.rate_variance

let test_onoff_generator_structure () =
  (* Figure 2: birth rate (N-i) beta, death rate i alpha, tridiagonal. *)
  let p = Onoff.table1 ~sigma2:1. in
  let q = Generator.matrix (Onoff.generator p) in
  Alcotest.(check int) "states" 33 (Sparse.rows q);
  check_close "birth from 0" (32. *. 3.) (Sparse.get q 0 1);
  check_close "death from 5" (5. *. 4.) (Sparse.get q 5 4);
  check_close "no long-range jump" 0. (Sparse.get q 0 2);
  (* Mean nnz per row ~ 3 (the paper's sparsity argument). *)
  Alcotest.(check bool) "tridiagonal sparsity" true
    (Sparse.mean_nnz_per_row q <= 3.)

let test_onoff_uniformization_rate () =
  (* q = N max(alpha, beta); the paper reports q = 800,000 for Table 2. *)
  let p = Onoff.table1 ~sigma2:0. in
  check_close "q closed form"
    (Onoff.uniformization_rate p)
    (Generator.uniformization_rate (Onoff.generator p));
  check_close "table 2 rate" 800_000. (Onoff.uniformization_rate Onoff.table2)

let test_onoff_rewards () =
  (* r_i = C - i r, sigma_i^2 = i sigma^2 (Figure 2 annotations). *)
  let m = Onoff.model (Onoff.table1 ~sigma2:10.) in
  check_close "r_0" 32. (m : Model.t).Model.rates.(0);
  check_close "r_10" 22. (m : Model.t).Model.rates.(10);
  check_close "r_32" 0. (m : Model.t).Model.rates.(32);
  check_close "s_0" 0. (m : Model.t).Model.variances.(0);
  check_close "s_7" 70. (m : Model.t).Model.variances.(7)

let test_onoff_initial_all_off () =
  let m = Onoff.model (Onoff.table1 ~sigma2:0.) in
  check_close "starts in state 0" 1. (m : Model.t).Model.initial.(0);
  check_close "not elsewhere" 0. (m : Model.t).Model.initial.(5)

let test_onoff_stationary_binomial () =
  let p = Onoff.table1 ~sigma2:0. in
  let pi = Onoff.stationary p in
  check_close ~tol:1e-12 "mass" 1. (Vec.sum pi);
  (* Mean actives = N beta/(alpha+beta) = 32 * 3/7. *)
  let mean = ref 0. in
  Array.iteri (fun i w -> mean := !mean +. (float_of_int i *. w)) pi;
  check_close ~tol:1e-10 "mean actives" (32. *. 3. /. 7.) !mean;
  (* Matches GTH on the generator. *)
  let gth = Mrm_ctmc.Stationary.gth (Onoff.generator p) in
  Alcotest.(check bool) "product form = GTH" true
    (Vec.approx_equal ~tol:1e-9 pi gth)

let test_onoff_mean_formula () =
  (* With all sources OFF at 0, the expected number of ON sources is
     N p (1 - e^{-(a+b)t}) with p = beta/(alpha+beta), so
     E B(t) = C t - N r p (t - (1 - e^{-(a+b)t})/(a+b)). *)
  let p = Onoff.table1 ~sigma2:1. in
  let m = Onoff.model p in
  let t = 0.9 in
  let a = 4. and b = 3. in
  let prob_on = b /. (a +. b) in
  let expected =
    (32. *. t)
    -. (32. *. 1. *. prob_on *. (t -. ((1. -. exp (-.(a +. b) *. t)) /. (a +. b))))
  in
  check_close ~tol:1e-9 "mean closed form" expected
    (Randomization.mean m ~t)

let test_onoff_scaled_table2 () =
  let p = Onoff.scaled_table2 ~sources:100 in
  Alcotest.(check int) "sources" 100 p.Onoff.sources;
  check_close "capacity follows" 100. p.Onoff.capacity;
  check_close "variance kept" 10. p.Onoff.rate_variance

let test_onoff_invalid () =
  (match Onoff.model { (Onoff.table1 ~sigma2:1.) with Onoff.sources = 0 } with
  | _ -> Alcotest.fail "sources 0"
  | exception Invalid_argument _ -> ());
  match
    Onoff.model { (Onoff.table1 ~sigma2:1.) with Onoff.rate_variance = -1. }
  with
  | _ -> Alcotest.fail "negative variance"
  | exception Invalid_argument _ -> ()

let test_onoff_custom_initial () =
  let p = { (Onoff.table1 ~sigma2:1.) with Onoff.sources = 2 } in
  let pi = [| 0.5; 0.25; 0.25 |] in
  let m = Onoff.model ~initial:pi p in
  check_close "custom initial" 0.25 (m : Model.t).Model.initial.(2)

(* ------------------------------------------------------------------ *)
(* Machine repair                                                       *)

let test_repair_generator () =
  let p =
    { Machine_repair.default with Machine_repair.machines = 4; repairmen = 2 }
  in
  let q = Generator.matrix (Machine_repair.generator p) in
  (* Failures: (M - i) lambda; repairs: min(i, k) mu. *)
  check_close "failure from 0"
    (4. *. p.Machine_repair.failure)
    (Sparse.get q 0 1);
  check_close "repair capped"
    (2. *. p.Machine_repair.repair)
    (Sparse.get q 3 2);
  check_close "single repairman rate"
    (1. *. p.Machine_repair.repair)
    (Sparse.get q 1 0)

let test_repair_rewards_decrease () =
  let m = Machine_repair.model Machine_repair.default in
  let rates = (m : Model.t).Model.rates in
  for i = 1 to Array.length rates - 1 do
    Alcotest.(check bool) "throughput decreases" true
      (rates.(i) < rates.(i - 1))
  done;
  check_close "all failed = 0" 0. rates.(Array.length rates - 1)

let test_repair_stationary_is_distribution () =
  let pi = Machine_repair.stationary Machine_repair.default in
  check_close ~tol:1e-12 "mass" 1. (Vec.sum pi);
  Array.iter (fun w -> Alcotest.(check bool) "nonneg" true (w >= 0.)) pi

let test_repair_mean_bounded_by_capacity () =
  let p = Machine_repair.default in
  let m = Machine_repair.model p in
  let t = 3. in
  let mean = Randomization.mean m ~t in
  let cap =
    float_of_int p.Machine_repair.machines *. p.Machine_repair.throughput *. t
  in
  Alcotest.(check bool) "0 < mean < capacity" true (mean > 0. && mean < cap)

(* ------------------------------------------------------------------ *)
(* Multiprocessor                                                       *)

let test_multi_state_layout () =
  let p = { Multiprocessor.default with Multiprocessor.processors = 4 } in
  Alcotest.(check int) "count" 9 (Multiprocessor.state_count p);
  Alcotest.(check int) "up 0" 0 (Multiprocessor.up_index p 0);
  Alcotest.(check int) "up 4" 4 (Multiprocessor.up_index p 4);
  Alcotest.(check int) "down 1" 5 (Multiprocessor.down_index p 1);
  Alcotest.(check int) "down 4" 8 (Multiprocessor.down_index p 4);
  (match Multiprocessor.up_index p 5 with
  | _ -> Alcotest.fail "up range"
  | exception Invalid_argument _ -> ());
  match Multiprocessor.down_index p 0 with
  | _ -> Alcotest.fail "down range"
  | exception Invalid_argument _ -> ()

let test_multi_generator_transitions () =
  let p = { Multiprocessor.default with Multiprocessor.processors = 3 } in
  let q = Generator.matrix (Multiprocessor.generator p) in
  let up = Multiprocessor.up_index p and down = Multiprocessor.down_index p in
  let lambda = p.Multiprocessor.failure and c = p.Multiprocessor.coverage in
  check_close "covered failure"
    (3. *. lambda *. c)
    (Sparse.get q (up 3) (up 2));
  check_close "uncovered failure"
    (3. *. lambda *. (1. -. c))
    (Sparse.get q (up 3) (down 3));
  check_close "reboot" p.Multiprocessor.reboot (Sparse.get q (down 3) (up 2));
  check_close "repair" p.Multiprocessor.repair (Sparse.get q (up 0) (up 1));
  (* Down states do not fail further. *)
  check_close "down inert" 0. (Sparse.get q (down 3) (down 2))

let test_multi_rewards () =
  let p = { Multiprocessor.default with Multiprocessor.processors = 3 } in
  let m = Multiprocessor.model p in
  let rates = (m : Model.t).Model.rates in
  check_close "up 3 rate" 3. rates.(Multiprocessor.up_index p 3);
  check_close "down rate" 0. rates.(Multiprocessor.down_index p 2);
  check_close "variance scales" 6.
    (m : Model.t).Model.variances.(Multiprocessor.up_index p 3)

let test_multi_not_birth_death () =
  (* The multiprocessor chain has rows with more than 3 transitions'
     worth of structure (up_i has failure, uncovered failure, repair). *)
  let p = Multiprocessor.default in
  let q = Generator.matrix (Multiprocessor.generator p) in
  let row_entries = Array.make (Sparse.rows q) 0 in
  Sparse.iter q (fun i _ _ -> row_entries.(i) <- row_entries.(i) + 1);
  Alcotest.(check bool) "some row has 4+ entries" true
    (Array.exists (fun n -> n >= 4) row_entries)

let test_multi_perfect_coverage_never_down () =
  let p =
    { Multiprocessor.default with Multiprocessor.coverage = 1.; processors = 3 }
  in
  let m = Multiprocessor.model p in
  let t = 2. in
  (* With coverage 1 the down states are unreachable: transient mass on
     them stays 0. *)
  let probs =
    Mrm_ctmc.Transient.probabilities (m : Model.t).Model.generator
      ~initial:(m : Model.t).Model.initial ~t
  in
  for i = 1 to 3 do
    check_close
      (Printf.sprintf "down %d unreachable" i)
      0.
      probs.(Multiprocessor.down_index p i)
  done

let test_multi_coverage_improves_reward () =
  let t = 5. in
  let good =
    Multiprocessor.model
      { Multiprocessor.default with Multiprocessor.coverage = 0.99 }
  in
  let bad =
    Multiprocessor.model
      { Multiprocessor.default with Multiprocessor.coverage = 0.5 }
  in
  Alcotest.(check bool) "better coverage, more reward" true
    (Randomization.mean good ~t > Randomization.mean bad ~t)

let test_multi_invalid () =
  match
    Multiprocessor.model
      { Multiprocessor.default with Multiprocessor.coverage = 1.5 }
  with
  | _ -> Alcotest.fail "coverage range"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mrm_models"
    [
      ( "onoff",
        [
          Alcotest.test_case "table 1 parameters" `Quick
            test_onoff_table1_parameters;
          Alcotest.test_case "generator structure (Fig 2)" `Quick
            test_onoff_generator_structure;
          Alcotest.test_case "uniformization rate" `Quick
            test_onoff_uniformization_rate;
          Alcotest.test_case "reward annotations" `Quick test_onoff_rewards;
          Alcotest.test_case "all-OFF initial state" `Quick
            test_onoff_initial_all_off;
          Alcotest.test_case "stationary binomial" `Quick
            test_onoff_stationary_binomial;
          Alcotest.test_case "mean closed form" `Quick test_onoff_mean_formula;
          Alcotest.test_case "scaled table 2" `Quick test_onoff_scaled_table2;
          Alcotest.test_case "invalid parameters" `Quick test_onoff_invalid;
          Alcotest.test_case "custom initial" `Quick test_onoff_custom_initial;
        ] );
      ( "machine_repair",
        [
          Alcotest.test_case "generator rates" `Quick test_repair_generator;
          Alcotest.test_case "rewards decrease" `Quick
            test_repair_rewards_decrease;
          Alcotest.test_case "stationary distribution" `Quick
            test_repair_stationary_is_distribution;
          Alcotest.test_case "mean bounded by capacity" `Quick
            test_repair_mean_bounded_by_capacity;
        ] );
      ( "multiprocessor",
        [
          Alcotest.test_case "state layout" `Quick test_multi_state_layout;
          Alcotest.test_case "generator transitions" `Quick
            test_multi_generator_transitions;
          Alcotest.test_case "rewards" `Quick test_multi_rewards;
          Alcotest.test_case "not birth-death" `Quick
            test_multi_not_birth_death;
          Alcotest.test_case "perfect coverage" `Quick
            test_multi_perfect_coverage_never_down;
          Alcotest.test_case "coverage improves reward" `Quick
            test_multi_coverage_improves_reward;
          Alcotest.test_case "invalid parameters" `Quick test_multi_invalid;
        ] );
    ]
