(* Tests for the second wave of analysis features: shared-sweep
   randomization, quantile bounds, joint (final-state) moments and reward
   covariance, inhomogeneous models, quadrature and SVG/CSV rendering. *)

module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Joint_moments = Mrm_core.Joint_moments
module Moment_bounds = Mrm_core.Moment_bounds
module Inhomogeneous = Mrm_core.Inhomogeneous
module Generator = Mrm_ctmc.Generator
module Transient = Mrm_ctmc.Transient
module Dense = Mrm_linalg.Dense
module Vec = Mrm_linalg.Vec
module Quadrature = Mrm_util.Quadrature
module Svg_plot = Mrm_util.Svg_plot
module Special = Mrm_util.Special

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

let generator2 = Generator.of_triplets ~states:2 [ (0, 1, 2.); (1, 0, 3.) ]

let model2 =
  Model.make ~generator:generator2 ~rates:[| 2.0; -1.0 |]
    ~variances:[| 0.5; 1.5 |] ~initial:[| 0.7; 0.3 |]

(* ------------------------------------------------------------------ *)
(* Shared-sweep randomization                                           *)

let test_shared_sweep_matches_pointwise () =
  let times = [| 0.0; 0.3; 0.9; 2.0 |] in
  let shared = Randomization.moments_at_times model2 ~times ~order:3 in
  Array.iteri
    (fun k t ->
      let independent = Randomization.moments model2 ~t ~order:3 in
      for n = 0 to 3 do
        for i = 0 to 1 do
          check_close ~tol:1e-10
            (Printf.sprintf "t=%g n=%d i=%d" t n i)
            independent.Randomization.moments.(n).(i)
            shared.(k).Randomization.moments.(n).(i)
        done
      done)
    times

let test_shared_sweep_diagnostics_per_time () =
  let times = [| 0.2; 2.0 |] in
  let shared = Randomization.moments_at_times model2 ~times ~order:2 in
  Alcotest.(check bool) "later time, more iterations" true
    (shared.(1).Randomization.diagnostics.iterations
    > shared.(0).Randomization.diagnostics.iterations)

let test_shared_sweep_degenerate_inputs () =
  (* All-zero horizon falls back to pointwise closed forms. *)
  let shared = Randomization.moments_at_times model2 ~times:[| 0. |] ~order:2 in
  check_close "m0" 1. shared.(0).Randomization.moments.(0).(0);
  check_close "m2" 0. shared.(0).Randomization.moments.(2).(1);
  (* Empty time array is fine. *)
  Alcotest.(check int) "empty times" 0
    (Array.length (Randomization.moments_at_times model2 ~times:[||] ~order:1))

(* ------------------------------------------------------------------ *)
(* Quantile bounds                                                      *)

let test_quantile_bounds_exponential () =
  let moments = Array.init 12 (fun k -> Special.factorial k) in
  let b = Moment_bounds.prepare moments in
  List.iter
    (fun p ->
      let lo, hi = Moment_bounds.quantile_bounds b p in
      let truth = -.log (1. -. p) in
      Alcotest.(check bool)
        (Printf.sprintf "quantile %g bracketed" p)
        true
        (lo <= truth +. 1e-6 && truth <= hi +. 1e-6);
      Alcotest.(check bool) "ordered" true (lo <= hi))
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let test_quantile_bounds_monotone_in_p () =
  let moments = Array.init 10 (fun k -> 1. /. float_of_int (k + 1)) in
  let b = Moment_bounds.prepare moments in
  let lo1, _ = Moment_bounds.quantile_bounds b 0.2 in
  let lo2, _ = Moment_bounds.quantile_bounds b 0.8 in
  Alcotest.(check bool) "monotone" true (lo2 >= lo1)

let test_quantile_bounds_invalid () =
  let moments = Array.init 8 (fun k -> Special.factorial k) in
  let b = Moment_bounds.prepare moments in
  match Moment_bounds.quantile_bounds b 0. with
  | _ -> Alcotest.fail "p = 0 rejected"
  | exception Invalid_argument _ -> ()

let test_quantile_bounds_extreme_p_clamped () =
  (* Regression: for p below any representable probability mass the
     bisection predicate is true (resp. false) on the whole bracket, and
     the old code silently converged to an uncertified bracket endpoint.
     The clamp now reports the honest answer: an unbounded side. *)
  let moments = Array.init 12 (fun k -> Special.factorial k) in
  let b = Moment_bounds.prepare moments in
  let lo, hi = Moment_bounds.quantile_bounds b 1e-300 in
  Alcotest.(check bool) "tiny p: lower bound unbounded" true
    (lo = neg_infinity);
  Alcotest.(check bool) "tiny p: upper bound ordered" true (hi >= lo);
  (* Ordinary p is unaffected by the clamp. *)
  let lo, hi = Moment_bounds.quantile_bounds b 0.5 in
  Alcotest.(check bool) "median finite" true
    (Float.is_finite lo && Float.is_finite hi && lo <= hi)

let test_radau_quadrature_at_gauss_node () =
  (* Regression: shifting the Jacobi matrix to a point that is an exact
     Gauss node makes a Thomas pivot exactly zero. The old code masked it
     with a 1e-300 floor, producing a ~1e300 garbage node; the solver now
     detects the breakdown and perturbs the shift by a relative epsilon,
     so every returned node is finite. *)
  let check_at moments point =
    let b = Moment_bounds.prepare moments in
    let nodes, weights = Moment_bounds.radau_quadrature b point in
    Alcotest.(check bool)
      (Printf.sprintf "nodes finite at %g" point)
      true
      (Array.for_all Float.is_finite nodes);
    let mass = Array.fold_left ( +. ) 0. weights in
    check_close ~tol:1e-8 "weights sum to m0" moments.(0) mass;
    Alcotest.(check bool) "weights nonnegative" true
      (Array.for_all (fun w -> w >= -1e-12) weights);
    (* cdf_bounds goes through the same shifted rule; it must stay a
       valid bound pair at the node itself. *)
    let bound = Moment_bounds.cdf_bounds b point in
    Alcotest.(check bool) "cdf bounds ordered" true
      (bound.Moment_bounds.lower <= bound.Moment_bounds.upper +. 1e-12
      && bound.Moment_bounds.lower >= -1e-12
      && bound.Moment_bounds.upper <= 1. +. 1e-12)
  in
  (* Two-point symmetric distribution at +-1: the order-1 Gauss rule has
     its node at the mean, 0 — evaluate exactly there. *)
  check_at [| 1.; 0.; 1. |] 0.;
  (* Standard normal moments, again at the mean. *)
  check_at [| 1.; 0.; 1.; 0.; 3.; 0.; 15. |] 0.;
  (* Exponential moments at one of the computed Gauss nodes. *)
  let b = Moment_bounds.prepare (Array.init 10 (fun k -> Special.factorial k)) in
  let gauss_nodes, _ = Moment_bounds.gauss_quadrature b in
  check_at (Array.init 10 (fun k -> Special.factorial k)) gauss_nodes.(0)

(* ------------------------------------------------------------------ *)
(* Joint moments and covariance                                         *)

let test_joint_row_sums_recover_v () =
  let t = 0.9 in
  let mats = Joint_moments.matrices model2 ~t ~order:3 in
  let reference = Randomization.moments model2 ~t ~order:3 in
  for n = 0 to 3 do
    for i = 0 to 1 do
      let row_sum = Dense.get mats.(n) i 0 +. Dense.get mats.(n) i 1 in
      check_close ~tol:1e-9
        (Printf.sprintf "row sum n=%d i=%d" n i)
        reference.Randomization.moments.(n).(i)
        row_sum
    done
  done

let test_joint_order0_is_transient_matrix () =
  let t = 0.7 in
  let mats = Joint_moments.matrices model2 ~t ~order:0 in
  let from0 = Transient.probabilities generator2 ~initial:[| 1.; 0. |] ~t in
  let from1 = Transient.probabilities generator2 ~initial:[| 0.; 1. |] ~t in
  check_close ~tol:1e-10 "p00" from0.(0) (Dense.get mats.(0) 0 0);
  check_close ~tol:1e-10 "p01" from0.(1) (Dense.get mats.(0) 0 1);
  check_close ~tol:1e-10 "p10" from1.(0) (Dense.get mats.(0) 1 0);
  check_close ~tol:1e-10 "p11" from1.(1) (Dense.get mats.(0) 1 1)

let test_joint_time_zero () =
  let mats = Joint_moments.matrices model2 ~t:0. ~order:2 in
  check_close "identity" 1. (Dense.get mats.(0) 0 0);
  check_close "no reward" 0. (Dense.get mats.(1) 0 0);
  check_close "off-diagonal" 0. (Dense.get mats.(0) 0 1)

let test_joint_no_transitions () =
  let g = Generator.of_triplets ~states:2 [] in
  let m =
    Model.make ~generator:g ~rates:[| 1.; 2. |] ~variances:[| 0.5; 0. |]
      ~initial:[| 0.5; 0.5 |]
  in
  let mats = Joint_moments.matrices m ~t:2. ~order:2 in
  (* Z never moves: off-diagonals 0, diagonals hold Brownian moments. *)
  check_close "diag m1 state 0" 2. (Dense.get mats.(1) 0 0);
  check_close "diag m1 state 1" 4. (Dense.get mats.(1) 1 1);
  check_close "offdiag" 0. (Dense.get mats.(1) 0 1);
  check_close "diag m2 state 0" (4. +. 1.) (Dense.get mats.(2) 0 0)

let test_joint_decomposition_sums_to_moment () =
  let t = 1.1 in
  let per_state = Joint_moments.reward_with_final_state model2 ~t ~order:2 in
  check_close ~tol:1e-9 "decomposition total"
    (Randomization.moment model2 ~t ~order:2)
    (Vec.sum per_state)

let test_covariance_at_equal_times_is_variance () =
  let t = 0.8 in
  check_close ~tol:1e-10 "cov(t,t) = var"
    (Randomization.variance model2 ~t)
    (Joint_moments.covariance model2 ~t1:t ~t2:t)

let test_covariance_symmetric_in_arguments () =
  check_close ~tol:1e-10 "symmetry"
    (Joint_moments.covariance model2 ~t1:0.5 ~t2:1.2)
    (Joint_moments.covariance model2 ~t1:1.2 ~t2:0.5)

let test_covariance_vs_brownian_closed_form () =
  (* Uniform rewards: B is Brownian, so Cov(B(s), B(t)) = sigma^2 min(s,t). *)
  let m =
    Model.make ~generator:generator2 ~rates:[| 1.; 1. |]
      ~variances:[| 0.8; 0.8 |] ~initial:[| 1.; 0. |]
  in
  check_close ~tol:1e-8 "Brownian covariance" (0.8 *. 0.5)
    (Joint_moments.covariance m ~t1:0.5 ~t2:1.7)

let test_correlation_range_and_decay () =
  let c_near = Joint_moments.correlation model2 ~t1:1.0 ~t2:1.1 in
  let c_far = Joint_moments.correlation model2 ~t1:1.0 ~t2:40.0 in
  Alcotest.(check bool) "in (0,1]" true (c_near > 0. && c_near <= 1. +. 1e-9);
  Alcotest.(check bool) "decays with lag" true (c_far < c_near)

(* ------------------------------------------------------------------ *)
(* Inhomogeneous models                                                 *)

let test_inhomogeneous_matches_homogeneous () =
  let wrapped = Inhomogeneous.of_homogeneous model2 in
  let t = 0.9 in
  let inhom = Inhomogeneous.moments ~tol:1e-11 wrapped ~t ~order:3 in
  let reference = Randomization.moments model2 ~t ~order:3 in
  for n = 0 to 3 do
    for i = 0 to 1 do
      check_close ~tol:1e-7
        (Printf.sprintf "n=%d i=%d" n i)
        reference.Randomization.moments.(n).(i)
        inhom.(n).(i)
    done
  done

let test_inhomogeneous_time_scaled_rates () =
  (* Single state, rate r(t) = 2t, no variance: B(t) = t^2 exactly. *)
  let g = Generator.of_triplets ~states:1 [] in
  let m =
    Inhomogeneous.make ~states:1
      ~generator:(fun _ -> g)
      ~rates:(fun u -> [| 2. *. u |])
      ~variances:(fun _ -> [| 0. |])
      ~initial:[| 1. |]
  in
  check_close ~tol:1e-8 "quadratic mean" 2.25 (Inhomogeneous.mean m ~t:1.5);
  (* Second moment of a deterministic quantity is its square. *)
  check_close ~tol:1e-7 "m2 = mean^2" (2.25 ** 2.)
    (Inhomogeneous.moment m ~t:1.5 ~order:2)

let test_inhomogeneous_time_scaled_variance () =
  (* Single state, r = 0, sigma^2(u) = 3u: Var B(t) = int 3u du = 1.5 t^2. *)
  let g = Generator.of_triplets ~states:1 [] in
  let m =
    Inhomogeneous.make ~states:1
      ~generator:(fun _ -> g)
      ~rates:(fun _ -> [| 0. |])
      ~variances:(fun u -> [| 3. *. u |])
      ~initial:[| 1. |]
  in
  check_close ~tol:1e-7 "accumulated variance" (1.5 *. 4.)
    (Inhomogeneous.moment m ~t:2. ~order:2)

let test_inhomogeneous_switching_generator () =
  (* Generator switches from "fast to state 1" to "fast to state 0" at
     t = 1; compare the mean against a two-segment homogeneous
     computation via the Markov property at the switch point. *)
  let g_a = Generator.of_triplets ~states:2 [ (0, 1, 5.); (1, 0, 0.1) ] in
  let g_b = Generator.of_triplets ~states:2 [ (0, 1, 0.1); (1, 0, 5.) ] in
  let rates = [| 1.; 0. |] in
  let m =
    Inhomogeneous.make ~states:2
      ~generator:(fun u -> if u < 1. then g_a else g_b)
      ~rates:(fun _ -> rates)
      ~variances:(fun _ -> [| 0.; 0. |])
      ~initial:[| 1.; 0. |]
  in
  let t = 2. in
  let inhom = Inhomogeneous.mean ~tol:1e-12 ~breakpoints:[| 1. |] m ~t in
  (* Segment 1: homogeneous g_a over [0,1]. *)
  let m_a =
    Model.first_order ~generator:g_a ~rates ~initial:[| 1.; 0. |]
  in
  let mean_1 = Randomization.mean m_a ~t:1. in
  let p_at_1 = Transient.probabilities g_a ~initial:[| 1.; 0. |] ~t:1. in
  (* Segment 2: homogeneous g_b over [1,2] from the reached distribution. *)
  let m_b = Model.first_order ~generator:g_b ~rates ~initial:p_at_1 in
  let mean_2 = Randomization.mean m_b ~t:1. in
  check_close ~tol:1e-6 "two-segment composition" (mean_1 +. mean_2) inhom

let test_inhomogeneous_validation () =
  let g = Generator.of_triplets ~states:2 [ (0, 1, 1.); (1, 0, 1.) ] in
  (match
     Inhomogeneous.make ~states:2
       ~generator:(fun _ -> g)
       ~rates:(fun _ -> [| 1. |])
       ~variances:(fun _ -> [| 0.; 0. |])
       ~initial:[| 1.; 0. |]
   with
  | _ -> Alcotest.fail "rates dimension"
  | exception Invalid_argument _ -> ());
  match
    Inhomogeneous.make ~states:2
      ~generator:(fun _ -> g)
      ~rates:(fun _ -> [| 1.; 1. |])
      ~variances:(fun _ -> [| -1.; 0. |])
      ~initial:[| 1.; 0. |]
  with
  | _ -> Alcotest.fail "negative variance"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Quadrature                                                           *)

let test_quadrature_polynomial_exactness () =
  let f x = (3. *. x *. x) -. (2. *. x) +. 1. in
  (* Integral over [0, 2] = 8 - 4 + 2 = 6. *)
  check_close ~tol:1e-12 "simpson cubic-exact" 6.
    (Quadrature.simpson ~f ~a:0. ~b:2. ~n:4);
  check_close ~tol:1e-12 "gauss-legendre" 6.
    (Quadrature.gauss_legendre ~f ~a:0. ~b:2. ~n:1);
  check_close ~tol:1e-3 "trapezoid approx" 6.
    (Quadrature.trapezoid ~f ~a:0. ~b:2. ~n:100);
  check_close ~tol:1e-3 "midpoint approx" 6.
    (Quadrature.midpoint ~f ~a:0. ~b:2. ~n:100)

let test_quadrature_gauss_high_degree () =
  (* 5-point Gauss: exact for degree 9 per panel. *)
  let f x = x ** 9. in
  check_close ~tol:1e-11 "degree 9" 0.1
    (Quadrature.gauss_legendre ~f ~a:0. ~b:1. ~n:1)

let test_quadrature_transcendental () =
  let f = sin in
  let expected = 1. -. cos 1. in
  check_close ~tol:1e-10 "simpson sin" expected
    (Quadrature.simpson ~f ~a:0. ~b:1. ~n:100);
  check_close ~tol:1e-12 "adaptive sin" expected
    (Quadrature.adaptive_simpson ~f ~a:0. ~b:1. ~tol:1e-13 ())

let test_quadrature_adaptive_peak () =
  (* A narrow Gaussian: fixed rules need many points, adaptive locates
     it. *)
  let f x = exp (-.((x -. 0.7) ** 2.) /. 2e-2) in
  let expected = sqrt (Float.pi *. 2e-2) in
  check_close ~tol:1e-8 "adaptive peak" expected
    (Quadrature.adaptive_simpson ~f ~a:0. ~b:10. ~tol:1e-12 ())

let test_quadrature_midpoint_endpoint_safe () =
  (* 1/sqrt(x) on (0, 1]: integrable singularity at 0. *)
  let f x = 1. /. sqrt x in
  let value = Quadrature.midpoint ~f ~a:0. ~b:1. ~n:100_000 in
  check_close ~tol:2e-2 "singular endpoint" 2. value

let test_quadrature_invalid () =
  (match Quadrature.simpson ~f:sin ~a:0. ~b:1. ~n:0 with
  | _ -> Alcotest.fail "n = 0"
  | exception Invalid_argument _ -> ());
  match Quadrature.trapezoid ~f:sin ~a:1. ~b:0. ~n:10 with
  | _ -> Alcotest.fail "reversed interval"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* SVG / CSV rendering                                                  *)

let sample_series =
  [
    {
      Svg_plot.label = "linear";
      points = [ (0., 0.); (1., 1.); (2., 2.) ];
      style = `Line;
    };
    {
      Svg_plot.label = "flat";
      points = [ (0., 1.); (2., 1.) ];
      style = `Dashed;
    };
  ]

let test_svg_well_formed () =
  let svg =
    Svg_plot.render ~title:"demo" ~x_label:"t" ~y_label:"y" sample_series
  in
  Alcotest.(check bool) "starts with <svg" true
    (String.length svg > 4 && String.sub svg 0 4 = "<svg");
  Alcotest.(check bool) "closes" true
    (String.length svg >= 7
    && String.sub svg (String.length svg - 7) 6 = "</svg>");
  (* One polyline per line-style series. *)
  let count needle =
    let rec go from acc =
      match String.index_from_opt svg from needle.[0] with
      | None -> acc
      | Some i ->
          if
            i + String.length needle <= String.length svg
            && String.sub svg i (String.length needle) = needle
          then go (i + 1) (acc + 1)
          else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "polylines" 2 (count "<polyline");
  Alcotest.(check bool) "legend labels present" true
    (count "linear" >= 1 && count "flat" >= 1)

let test_svg_point_style () =
  let svg =
    Svg_plot.render ~title:"pts" ~x_label:"x" ~y_label:"y"
      [
        {
          Svg_plot.label = "dots";
          points = [ (0., 0.); (1., 4.) ];
          style = `Points;
        };
      ]
  in
  Alcotest.(check bool) "has circles" true
    (String.length svg > 0
    &&
    let rec find i =
      i + 7 <= String.length svg
      && (String.sub svg i 7 = "<circle" || find (i + 1))
    in
    find 0)

let test_svg_empty_rejected () =
  match Svg_plot.render ~title:"" ~x_label:"" ~y_label:"" [] with
  | _ -> Alcotest.fail "empty series"
  | exception Invalid_argument _ -> ()

let test_svg_degenerate_range () =
  (* Single point: ranges must widen, not divide by zero. *)
  let svg =
    Svg_plot.render ~title:"one" ~x_label:"x" ~y_label:"y"
      [ { Svg_plot.label = "p"; points = [ (1., 1.) ]; style = `Points } ]
  in
  Alcotest.(check bool) "rendered" true (String.length svg > 100)

let test_csv_format () =
  let out = Svg_plot.csv ~header:[ "a"; "b" ] [ [ 1.; 2.5 ]; [ 3.; 4. ] ] in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "rows" 3 (List.length lines);
  Alcotest.(check string) "header" "a,b" (List.hd lines);
  Alcotest.(check string) "row" "1,2.5" (List.nth lines 1)

let test_svg_write_file () =
  let path = Filename.temp_file "mrm2_test" ".svg" in
  Svg_plot.write_file ~path "<svg></svg>";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "round trip" "<svg></svg>" line

(* ------------------------------------------------------------------ *)
(* Model_io                                                             *)

module Model_io = Mrm_core.Model_io

let sample_model_text =
  "states 3\n\
   # comment line\n\
   transition 0 1 2.5\n\
   transition 1 0 1.0\n\
   transition 1 2 0.5\n\
   transition 2 0 3.0\n\
   reward 0 4.0 0.3\n\
   reward 1 2.0 1.0\n\
   reward 2 0.5 0.1\n\
   initial 0 1.0\n\
   impulse 0 1 0.4\n"

let test_model_io_parse () =
  let { Model_io.model; impulses } = Model_io.parse_string sample_model_text in
  Alcotest.(check int) "states" 3 (Model.dim model);
  check_close "rate" 4. (model : Model.t).Model.rates.(0);
  check_close "variance" 1. (model : Model.t).Model.variances.(1);
  check_close "initial" 1. (model : Model.t).Model.initial.(0);
  Alcotest.(check int) "impulses" 1 (List.length impulses);
  (* The parsed model is solvable. *)
  Alcotest.(check bool) "usable" true (Randomization.mean model ~t:1. > 0.)

let test_model_io_roundtrip () =
  let { Model_io.model; impulses } = Model_io.parse_string sample_model_text in
  let text = Model_io.to_string ~impulses model in
  let reparsed = Model_io.parse_string text in
  let m2 = reparsed.Model_io.model in
  Alcotest.(check bool) "rates preserved" true
    (Vec.approx_equal ~tol:0.
       (model : Model.t).Model.rates
       (m2 : Model.t).Model.rates);
  Alcotest.(check bool) "variances preserved" true
    (Vec.approx_equal ~tol:0.
       (model : Model.t).Model.variances
       (m2 : Model.t).Model.variances);
  check_close ~tol:1e-14 "same mean"
    (Randomization.mean model ~t:0.8)
    (Randomization.mean m2 ~t:0.8);
  Alcotest.(check int) "impulses preserved" 1
    (List.length reparsed.Model_io.impulses)

let test_model_io_file_roundtrip () =
  let { Model_io.model; _ } = Model_io.parse_string sample_model_text in
  let path = Filename.temp_file "mrm2_model" ".mrm" in
  Model_io.save ~path model;
  let loaded = Model_io.load path in
  Sys.remove path;
  Alcotest.(check int) "states" 3 (Model.dim loaded.Model_io.model)

let test_model_io_errors () =
  let expect_failure label text =
    match Model_io.parse_string text with
    | _ -> Alcotest.failf "%s: expected failure" label
    | exception Failure _ -> ()
  in
  expect_failure "missing states" "transition 0 1 2.0\n";
  expect_failure "bad number" "states 2\ntransition 0 1 abc\n";
  expect_failure "unknown directive" "states 2\nfrobnicate 1\n";
  expect_failure "state out of range" "states 2\ntransition 0 5 1.\n";
  expect_failure "duplicate reward"
    "states 2\ntransition 0 1 1.\ntransition 1 0 1.\nreward 0 1. 0.\nreward 0 2. 0.\ninitial 0 1.\n";
  expect_failure "bad initial mass"
    "states 2\ntransition 0 1 1.\ntransition 1 0 1.\ninitial 0 0.5\n";
  expect_failure "negative variance"
    "states 2\ntransition 0 1 1.\ntransition 1 0 1.\nreward 0 1. -1.\ninitial 0 1.\n"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "shared_sweep",
        [
          Alcotest.test_case "matches pointwise" `Quick
            test_shared_sweep_matches_pointwise;
          Alcotest.test_case "per-time diagnostics" `Quick
            test_shared_sweep_diagnostics_per_time;
          Alcotest.test_case "degenerate inputs" `Quick
            test_shared_sweep_degenerate_inputs;
        ] );
      ( "quantile_bounds",
        [
          Alcotest.test_case "exponential bracketed" `Quick
            test_quantile_bounds_exponential;
          Alcotest.test_case "monotone in p" `Quick
            test_quantile_bounds_monotone_in_p;
          Alcotest.test_case "invalid p" `Quick test_quantile_bounds_invalid;
          Alcotest.test_case "extreme p clamped to certainty" `Quick
            test_quantile_bounds_extreme_p_clamped;
          Alcotest.test_case "Radau rule at exact Gauss node" `Quick
            test_radau_quadrature_at_gauss_node;
        ] );
      ( "joint_moments",
        [
          Alcotest.test_case "row sums recover V" `Quick
            test_joint_row_sums_recover_v;
          Alcotest.test_case "order 0 = transient matrix" `Quick
            test_joint_order0_is_transient_matrix;
          Alcotest.test_case "t = 0" `Quick test_joint_time_zero;
          Alcotest.test_case "no transitions" `Quick
            test_joint_no_transitions;
          Alcotest.test_case "decomposition sums" `Quick
            test_joint_decomposition_sums_to_moment;
          Alcotest.test_case "cov(t,t) = variance" `Quick
            test_covariance_at_equal_times_is_variance;
          Alcotest.test_case "covariance symmetric" `Quick
            test_covariance_symmetric_in_arguments;
          Alcotest.test_case "Brownian closed form" `Quick
            test_covariance_vs_brownian_closed_form;
          Alcotest.test_case "correlation decay" `Quick
            test_correlation_range_and_decay;
        ] );
      ( "inhomogeneous",
        [
          Alcotest.test_case "homogeneous wrap" `Quick
            test_inhomogeneous_matches_homogeneous;
          Alcotest.test_case "time-scaled rates" `Quick
            test_inhomogeneous_time_scaled_rates;
          Alcotest.test_case "time-scaled variance" `Quick
            test_inhomogeneous_time_scaled_variance;
          Alcotest.test_case "switching generator" `Quick
            test_inhomogeneous_switching_generator;
          Alcotest.test_case "validation" `Quick
            test_inhomogeneous_validation;
        ] );
      ( "quadrature",
        [
          Alcotest.test_case "polynomial exactness" `Quick
            test_quadrature_polynomial_exactness;
          Alcotest.test_case "Gauss degree 9" `Quick
            test_quadrature_gauss_high_degree;
          Alcotest.test_case "transcendental" `Quick
            test_quadrature_transcendental;
          Alcotest.test_case "adaptive narrow peak" `Quick
            test_quadrature_adaptive_peak;
          Alcotest.test_case "midpoint endpoint-safe" `Quick
            test_quadrature_midpoint_endpoint_safe;
          Alcotest.test_case "invalid input" `Quick test_quadrature_invalid;
        ] );
      ( "model_io",
        [
          Alcotest.test_case "parse" `Quick test_model_io_parse;
          Alcotest.test_case "round trip" `Quick test_model_io_roundtrip;
          Alcotest.test_case "file round trip" `Quick
            test_model_io_file_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_model_io_errors;
        ] );
      ( "svg_csv",
        [
          Alcotest.test_case "well-formed svg" `Quick test_svg_well_formed;
          Alcotest.test_case "point style" `Quick test_svg_point_style;
          Alcotest.test_case "empty rejected" `Quick test_svg_empty_rejected;
          Alcotest.test_case "degenerate range" `Quick
            test_svg_degenerate_range;
          Alcotest.test_case "csv format" `Quick test_csv_format;
          Alcotest.test_case "file round trip" `Quick test_svg_write_file;
        ] );
    ]
