(* Tests for the CTMC substrate: Poisson weights, generators, transient
   solutions (uniformization) and stationary distributions. *)

module Poisson = Mrm_ctmc.Poisson
module Generator = Mrm_ctmc.Generator
module Transient = Mrm_ctmc.Transient
module Stationary = Mrm_ctmc.Stationary
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

(* ------------------------------------------------------------------ *)
(* Poisson                                                              *)

let test_pmf_small () =
  check_close "pois(3;0)" (exp (-3.)) (Poisson.pmf ~lambda:3. 0);
  check_close "pois(3;2)" (exp (-3.) *. 4.5) (Poisson.pmf ~lambda:3. 2)

let test_pmf_sums_to_one () =
  List.iter
    (fun lambda ->
      let acc = ref 0. in
      for k = 0 to 400 do
        acc := !acc +. Poisson.pmf ~lambda k
      done;
      check_close ~tol:1e-12 (Printf.sprintf "mass lambda=%g" lambda) 1. !acc)
    [ 0.1; 1.; 10.; 100. ]

let test_log_tail_consistency () =
  (* tail(m) - tail(m+1) = pmf(m). *)
  let lambda = 7.3 in
  List.iter
    (fun m ->
      let diff =
        exp (Poisson.log_tail ~lambda m) -. exp (Poisson.log_tail ~lambda (m + 1))
      in
      check_close ~tol:1e-11
        (Printf.sprintf "tail diff at %d" m)
        (Poisson.pmf ~lambda m) diff)
    [ 1; 5; 8; 15 ]

let test_log_tail_edges () =
  check_close "tail at 0" 0. (Poisson.log_tail ~lambda:5. 0);
  check_close "tail negative m" 0. (Poisson.log_tail ~lambda:5. (-3));
  Alcotest.(check bool) "lambda 0" true
    (Poisson.log_tail ~lambda:0. 1 = neg_infinity)

let test_log_tail_deep () =
  (* Deep tail stays finite and decreasing where linear arithmetic has
     long underflowed: lambda = 40000 (the paper's large example). *)
  let lambda = 40_000. in
  let t1 = Poisson.log_tail ~lambda 41_000 in
  let t2 = Poisson.log_tail ~lambda 42_000 in
  let t3 = Poisson.log_tail ~lambda 44_000 in
  Alcotest.(check bool) "finite" true (Float.is_finite t1);
  Alcotest.(check bool) "decreasing 1" true (t2 < t1);
  Alcotest.(check bool) "decreasing 2" true (t3 < t2);
  (* Chernoff bound: log P(X >= m) <= -lambda h(m/lambda),
     h(x) = x log x - x + 1; the true tail is within a few nats. *)
  let m = 44_000. in
  let x = m /. lambda in
  let chernoff = -.lambda *. ((x *. log x) -. x +. 1.) in
  Alcotest.(check bool) "below Chernoff" true (t3 <= chernoff);
  Alcotest.(check bool) "near Chernoff" true (t3 > chernoff -. 10.)

let test_tail_quantile () =
  let lambda = 25. in
  let log_eps = log 1e-12 in
  let m = Poisson.tail_quantile ~lambda ~log_eps in
  Alcotest.(check bool) "tail below eps" true
    (Poisson.log_tail ~lambda m < log_eps);
  Alcotest.(check bool) "tail above eps one earlier" true
    (Poisson.log_tail ~lambda (m - 1) >= log_eps)

let test_weights_window () =
  List.iter
    (fun lambda ->
      let w = Poisson.weights_window ~lambda ~eps:1e-10 in
      Alcotest.(check bool)
        (Printf.sprintf "mass covered lambda=%g" lambda)
        true
        (w.Poisson.mass > 1. -. 1e-10);
      Alcotest.(check int) "array size"
        (w.Poisson.right - w.Poisson.left + 1)
        (Array.length w.Poisson.weights);
      (* Window brackets the mode. *)
      let mode = int_of_float lambda in
      Alcotest.(check bool) "left <= mode" true (w.Poisson.left <= mode);
      Alcotest.(check bool) "right >= mode" true (w.Poisson.right >= mode))
    [ 0.5; 4.; 120.; 3000. ];
  let degenerate = Poisson.weights_window ~lambda:0. ~eps:1e-10 in
  check_close "lambda 0 weight" 1. degenerate.Poisson.weights.(0)

(* ------------------------------------------------------------------ *)
(* Generator                                                            *)

let two_state = Generator.of_triplets ~states:2 [ (0, 1, 2.); (1, 0, 3.) ]

let test_generator_validation () =
  Alcotest.check_raises "positive diagonal"
    (Invalid_argument
       "Generator.of_sparse: positive diagonal 1 at state 0") (fun () ->
      ignore
        (Generator.of_sparse
           (Sparse.of_triplets ~rows:1 ~cols:1 [ (0, 0, 1.) ])));
  (* Row sums must vanish. *)
  (match
     Generator.of_sparse
       (Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, -1.); (0, 1, 2.) ])
   with
  | _ -> Alcotest.fail "expected row-sum rejection"
  | exception Invalid_argument _ -> ());
  (* Non-square rejected. *)
  match Generator.of_sparse (Sparse.of_triplets ~rows:2 ~cols:3 []) with
  | _ -> Alcotest.fail "expected square rejection"
  | exception Invalid_argument _ -> ()

(* Failure messages must name the offending index and value, so the
   static-analysis layer (and humans) can act on them directly. *)
let test_generator_diagnostic_messages () =
  Alcotest.check_raises "negative off-diagonal names (i, j) and value"
    (Invalid_argument
       "Generator.of_sparse: negative off-diagonal -0.5 at (0,1)") (fun () ->
      ignore
        (Generator.of_sparse
           (Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 1, -0.5) ])));
  Alcotest.check_raises "row sum names row and value"
    (Invalid_argument "Generator.of_sparse: row 1 sums to 2 (not 0)")
    (fun () ->
      ignore
        (Generator.of_sparse
           (Sparse.of_triplets ~rows:2 ~cols:2 [ (1, 0, 2.) ])));
  Alcotest.check_raises "of_triplets negative rate names (i, j) and value"
    (Invalid_argument "Generator.of_triplets: negative rate -3 at (1, 0)")
    (fun () ->
      ignore (Generator.of_triplets ~states:2 [ (0, 1, 1.); (1, 0, -3.) ]));
  Alcotest.check_raises "of_triplets out-of-range names the pair"
    (Invalid_argument
       "Generator.of_triplets: transition (0, 5) out of [0, 2)") (fun () ->
      ignore (Generator.of_triplets ~states:2 [ (0, 5, 1.) ]));
  Alcotest.check_raises "birth_death negative rate names the state"
    (Invalid_argument
       "Generator.birth_death: negative death rate -1 at state 2") (fun () ->
      ignore
        (Generator.birth_death ~states:3
           ~birth:(fun _ -> 1.)
           ~death:(fun i -> if i = 2 then -1. else 1.)))

let test_generator_of_triplets_diagonal () =
  let q = Generator.matrix two_state in
  check_close "diag 0" (-2.) (Sparse.get q 0 0);
  check_close "diag 1" (-3.) (Sparse.get q 1 1);
  check_close "uniformization rate" 3. (Generator.uniformization_rate two_state)

let test_generator_ignores_supplied_diagonal () =
  let g =
    Generator.of_triplets ~states:2 [ (0, 0, -99.); (0, 1, 1.); (1, 0, 1.) ]
  in
  check_close "diagonal recomputed" (-1.) (Sparse.get (Generator.matrix g) 0 0)

let test_uniformized_stochastic () =
  let q = Generator.uniformization_rate two_state in
  let p = Generator.uniformized two_state ~rate:q in
  let sums = Sparse.row_sums p in
  Array.iteri (fun i s -> check_close (Printf.sprintf "row %d" i) 1. s) sums;
  (* Entries non-negative. *)
  Sparse.iter p (fun i j v ->
      if v < 0. then Alcotest.failf "negative P'(%d,%d) = %g" i j v);
  Alcotest.check_raises "rate too small"
    (Invalid_argument
       "Generator.uniformized: rate 1 below uniformization rate 3")
    (fun () -> ignore (Generator.uniformized two_state ~rate:1.))

let test_birth_death_structure () =
  let g =
    Generator.birth_death ~states:4
      ~birth:(fun i -> float_of_int (3 - i))
      ~death:(fun i -> 2. *. float_of_int i)
  in
  let q = Generator.matrix g in
  check_close "birth 0" 3. (Sparse.get q 0 1);
  check_close "death 2" 4. (Sparse.get q 2 1);
  check_close "no jump 0->2" 0. (Sparse.get q 0 2);
  check_close "diag 1" (-.(2. +. 2.)) (Sparse.get q 1 1)

let test_exit_rates_and_jumps () =
  let exits = Generator.exit_rates two_state in
  check_close "exit 0" 2. exits.(0);
  let jumps = Generator.embedded_jump_distribution two_state 0 in
  Alcotest.(check int) "one target" 1 (Array.length jumps);
  let target, p = jumps.(0) in
  Alcotest.(check int) "target" 1 target;
  check_close "prob" 1. p;
  (* Absorbing state. *)
  let absorbing = Generator.of_triplets ~states:2 [ (0, 1, 1.) ] in
  Alcotest.(check int) "absorbing has no jumps" 0
    (Array.length (Generator.embedded_jump_distribution absorbing 1))

(* ------------------------------------------------------------------ *)
(* Transient                                                            *)

let test_transient_two_state_closed_form () =
  (* p_00(t) = pi_0 + (1 - pi_0) e^{-(a+b) t} with a = 2, b = 3,
     pi_0 = b/(a+b) = 0.6 for the chain 0 ->(2) 1, 1 ->(3) 0. *)
  let a = 2. and b = 3. in
  List.iter
    (fun t ->
      let p = Transient.probabilities two_state ~initial:[| 1.; 0. |] ~t in
      let expected = (b /. (a +. b)) +. ((a /. (a +. b)) *. exp (-.(a +. b) *. t)) in
      check_close ~tol:1e-11 (Printf.sprintf "p00(%g)" t) expected p.(0);
      check_close ~tol:1e-11 "mass" 1. (Vec.sum p))
    [ 0.; 0.1; 0.5; 1.; 5. ]

let test_transient_initial_validation () =
  (match Transient.probabilities two_state ~initial:[| 0.5; 0.4 |] ~t:1. with
  | _ -> Alcotest.fail "expected sub-1 mass rejection"
  | exception Invalid_argument _ -> ());
  (match Transient.probabilities two_state ~initial:[| 1.5; -0.5 |] ~t:1. with
  | _ -> Alcotest.fail "expected negative rejection"
  | exception Invalid_argument _ -> ());
  match Transient.probabilities two_state ~initial:[| 1. |] ~t:1. with
  | _ -> Alcotest.fail "expected dimension rejection"
  | exception Invalid_argument _ -> ()

let test_transient_t_zero () =
  let p = Transient.probabilities two_state ~initial:[| 0.3; 0.7 |] ~t:0. in
  check_close "p0" 0.3 p.(0);
  check_close "p1" 0.7 p.(1)

let test_expected_reward_rate () =
  let rates = [| 10.; 0. |] in
  let value =
    Transient.expected_reward_rate two_state ~initial:[| 1.; 0. |] ~rates
      ~t:1000.
  in
  (* At stationarity: 0.6 * 10. *)
  check_close ~tol:1e-9 "stationary rate" 6. value

(* ------------------------------------------------------------------ *)
(* Stationary                                                           *)

let test_gth_two_state () =
  let pi = Stationary.gth two_state in
  check_close "pi0" 0.6 pi.(0);
  check_close "pi1" 0.4 pi.(1)

let test_gth_matches_power_iteration () =
  let g =
    Generator.of_triplets ~states:4
      [
        (0, 1, 1.); (1, 2, 2.); (2, 3, 1.5); (3, 0, 0.7); (2, 0, 0.3);
        (1, 0, 0.4);
      ]
  in
  let pi_gth = Stationary.gth g in
  let pi_power = Stationary.power_iteration ~eps:1e-14 g in
  Alcotest.(check bool) "gth = power" true
    (Vec.approx_equal ~tol:1e-8 pi_gth pi_power);
  (* pi Q = 0. *)
  let residual = Sparse.vm pi_gth (Generator.matrix g) in
  Alcotest.(check bool) "pi Q = 0" true (Vec.norm_inf residual < 1e-12)

let test_gth_reducible_rejected () =
  let g = Generator.of_triplets ~states:2 [ (0, 1, 1.) ] in
  match Stationary.gth g with
  | _ -> Alcotest.fail "expected reducible rejection"
  | exception Invalid_argument _ -> ()

let test_birth_death_closed_form () =
  (* Matches GTH on an asymmetric birth-death chain. *)
  let states = 6 in
  let birth i = 1.5 +. (0.3 *. float_of_int i) in
  let death i = 0.8 *. float_of_int i in
  let closed = Stationary.birth_death ~states ~birth ~death in
  let gth = Stationary.gth (Generator.birth_death ~states ~birth ~death) in
  Alcotest.(check bool) "closed form = GTH" true
    (Vec.approx_equal ~tol:1e-10 closed gth)

let test_gth_two_timescale_beats_lu () =
  (* Ill-conditioned two-timescale chain: climbing is 8 orders of
     magnitude slower than falling, so the stationary mass spans ~56
     orders of magnitude. The log-space product form is exact ground
     truth; subtraction-free GTH must stay componentwise accurate while
     the naive LU solve loses essentially all relative accuracy on the
     rare states. *)
  let states = 8 in
  let birth _ = 1e-4 and death _ = 1e4 in
  let exact = Stationary.birth_death ~states ~birth ~death in
  let g = Generator.birth_death ~states ~birth ~death in
  let pi_gth = Stationary.gth g in
  let pi_lu = Stationary.lu g in
  let rel_err pi =
    let worst = ref 0. in
    Array.iteri
      (fun i x ->
        worst := Float.max !worst (abs_float (x -. exact.(i)) /. exact.(i)))
      pi;
    !worst
  in
  let err_gth = rel_err pi_gth and err_lu = rel_err pi_lu in
  if err_gth > 1e-12 then
    Alcotest.failf "GTH lost componentwise accuracy: %g" err_gth;
  if err_lu < 1e-2 then
    Alcotest.failf "expected naive LU to lose digits, error only %g" err_lu;
  (* on a well-conditioned chain the two agree *)
  let easy =
    Generator.birth_death ~states:5
      ~birth:(fun i -> 1.5 +. (0.3 *. float_of_int i))
      ~death:(fun i -> 0.8 *. float_of_int i)
  in
  Alcotest.(check bool) "lu = gth when benign" true
    (Vec.approx_equal ~tol:1e-10 (Stationary.lu easy) (Stationary.gth easy))

let test_birth_death_binomial () =
  (* Independent ON-OFF sources: pi is Binomial(n, beta/(alpha+beta)). *)
  let n = 10 and alpha = 4. and beta = 3. in
  let pi =
    Stationary.birth_death ~states:(n + 1)
      ~birth:(fun i -> float_of_int (n - i) *. beta)
      ~death:(fun i -> float_of_int i *. alpha)
  in
  let p = beta /. (alpha +. beta) in
  for i = 0 to n do
    let expected =
      Mrm_util.Special.binomial n i
      *. (p ** float_of_int i)
      *. ((1. -. p) ** float_of_int (n - i))
    in
    check_close ~tol:1e-11 (Printf.sprintf "pi(%d)" i) expected pi.(i)
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mrm_ctmc"
    [
      ( "poisson",
        [
          Alcotest.test_case "pmf small" `Quick test_pmf_small;
          Alcotest.test_case "pmf mass" `Quick test_pmf_sums_to_one;
          Alcotest.test_case "tail consistency" `Quick
            test_log_tail_consistency;
          Alcotest.test_case "tail edges" `Quick test_log_tail_edges;
          Alcotest.test_case "deep tail (lambda 4e4)" `Quick
            test_log_tail_deep;
          Alcotest.test_case "tail quantile" `Quick test_tail_quantile;
          Alcotest.test_case "weights window" `Quick test_weights_window;
        ] );
      ( "generator",
        [
          Alcotest.test_case "validation" `Quick test_generator_validation;
          Alcotest.test_case "diagnostic messages" `Quick
            test_generator_diagnostic_messages;
          Alcotest.test_case "diagonal from triplets" `Quick
            test_generator_of_triplets_diagonal;
          Alcotest.test_case "supplied diagonal ignored" `Quick
            test_generator_ignores_supplied_diagonal;
          Alcotest.test_case "uniformized stochastic" `Quick
            test_uniformized_stochastic;
          Alcotest.test_case "birth-death structure" `Quick
            test_birth_death_structure;
          Alcotest.test_case "exit rates and jumps" `Quick
            test_exit_rates_and_jumps;
        ] );
      ( "transient",
        [
          Alcotest.test_case "two-state closed form" `Quick
            test_transient_two_state_closed_form;
          Alcotest.test_case "initial validation" `Quick
            test_transient_initial_validation;
          Alcotest.test_case "t = 0" `Quick test_transient_t_zero;
          Alcotest.test_case "expected reward rate" `Quick
            test_expected_reward_rate;
        ] );
      ( "stationary",
        [
          Alcotest.test_case "GTH two-state" `Quick test_gth_two_state;
          Alcotest.test_case "GTH = power iteration" `Quick
            test_gth_matches_power_iteration;
          Alcotest.test_case "reducible rejected" `Quick
            test_gth_reducible_rejected;
          Alcotest.test_case "two-timescale: GTH beats naive LU" `Quick
            test_gth_two_timescale_beats_lu;
          Alcotest.test_case "birth-death closed form" `Quick
            test_birth_death_closed_form;
          Alcotest.test_case "binomial product form" `Quick
            test_birth_death_binomial;
        ] );
    ]
