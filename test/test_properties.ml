(* Property-based tests (qcheck): cross-method agreement and structural
   invariants on randomly generated second-order MRMs. *)

module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Moments_ode = Mrm_core.Moments_ode
module Moment_bounds = Mrm_core.Moment_bounds
module Generator = Mrm_ctmc.Generator
module Stationary = Mrm_ctmc.Stationary
module Poisson = Mrm_ctmc.Poisson
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec
module Special = Mrm_util.Special

(* ------------------------------------------------------------------ *)
(* Generators for random models                                         *)

(* A random irreducible-ish CTMC generator: a guaranteed cycle plus random
   extra transitions, so GTH and stationary analyses are well defined. *)
let random_generator_gen =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let* cycle_rates = list_repeat n (float_range 0.2 3.) in
    let* extra =
      list_repeat (n * n)
        (oneof [ return 0.; float_range 0.1 2. ])
    in
    let triplets = ref [] in
    List.iteri
      (fun i r -> triplets := (i, (i + 1) mod n, r) :: !triplets)
      cycle_rates;
    List.iteri
      (fun k r ->
        let i = k / n and j = k mod n in
        if i <> j && r > 0. then triplets := (i, j, r) :: !triplets)
      extra;
    return (Generator.of_triplets ~states:n !triplets))

let random_model_gen =
  QCheck2.Gen.(
    let* g = random_generator_gen in
    let n = Generator.dim g in
    let* rates = list_repeat n (float_range (-3.) 3.) in
    let* variances = list_repeat n (float_range 0. 2.) in
    let* start = int_range 0 (n - 1) in
    let initial = Array.init n (fun i -> if i = start then 1. else 0.) in
    return
      (Model.make ~generator:g ~rates:(Array.of_list rates)
         ~variances:(Array.of_list variances) ~initial))

let model_print m =
  Format.asprintf "%a (rates %a, variances %a)" Model.pp m Vec.pp
    (m : Model.t).Model.rates Vec.pp (m : Model.t).Model.variances

let count = 60

(* ------------------------------------------------------------------ *)

let prop_randomization_matches_ode =
  QCheck2.Test.make ~count ~name:"randomization = adaptive ODE (orders 1-3)"
    ~print:model_print random_model_gen (fun m ->
      let t = 0.7 in
      let a = Randomization.moments m ~t ~order:3 in
      let b = Moments_ode.moments_adaptive ~tol:1e-11 m ~t ~order:3 in
      let ok = ref true in
      for n = 1 to 3 do
        for i = 0 to Model.dim m - 1 do
          let x = a.Randomization.moments.(n).(i) and y = b.(n).(i) in
          let scale = 1. +. Float.max (abs_float x) (abs_float y) in
          if abs_float (x -. y) > 1e-6 *. scale then ok := false
        done
      done;
      !ok)

let prop_variance_nonnegative =
  QCheck2.Test.make ~count ~name:"Var B(t) >= 0" ~print:model_print
    random_model_gen (fun m ->
      Randomization.variance m ~t:0.9 >= -1e-9)

let prop_cauchy_schwarz_m1_m3 =
  (* For any real random variable, E[B^2]^2 <= E[B] E[B^3] fails in
     general, but Cauchy-Schwarz gives E[B^2]^2 <= E[B^1 B^3]... instead
     test the always-valid Jensen pair: E[B^2] >= (E[B])^2 and
     E[B^4] >= (E[B^2])^2. *)
  QCheck2.Test.make ~count ~name:"Jensen: m2 >= m1^2 and m4 >= m2^2"
    ~print:model_print random_model_gen (fun m ->
      let t = 0.8 in
      let r = Randomization.moments m ~t ~order:4 in
      let pi = (m : Model.t).Model.initial in
      let raw n = Vec.dot pi r.Randomization.moments.(n) in
      let tolerance = 1e-9 *. (1. +. abs_float (raw 4)) in
      raw 2 +. tolerance >= raw 1 ** 2.
      && raw 4 +. tolerance >= raw 2 ** 2.)

let prop_mean_ignores_variances =
  QCheck2.Test.make ~count ~name:"mean independent of S (Figure 3)"
    ~print:model_print random_model_gen (fun m ->
      let t = 1.1 in
      let zeroed = Model.with_variances m (Array.make (Model.dim m) 0.) in
      let a = Randomization.mean m ~t and b = Randomization.mean zeroed ~t in
      abs_float (a -. b) <= 1e-9 *. (1. +. abs_float a))

let prop_variance_monotone_in_s =
  QCheck2.Test.make ~count ~name:"variance monotone in S (Figure 4)"
    ~print:model_print random_model_gen (fun m ->
      let t = 1.1 in
      let inflated =
        Model.with_variances m
          (Array.map (fun v -> v +. 1.) (m : Model.t).Model.variances)
      in
      Randomization.variance inflated ~t
      >= Randomization.variance m ~t -. 1e-9)

let prop_error_bound_honored =
  QCheck2.Test.make ~count:30 ~name:"Theorem 4 error bound (corrected index)"
    ~print:model_print random_model_gen (fun m ->
      let t = 0.6 and order = 2 in
      let tight = Randomization.moments ~eps:1e-13 m ~t ~order in
      let loose = Randomization.moments ~eps:1e-5 m ~t ~order in
      let bound = exp loose.Randomization.diagnostics.log_error_bound in
      let ok = ref (bound <= 1e-5 +. 1e-15) in
      (* The bound applies to the shifted model's highest moment; the
         binomial unshift mixes orders, so allow a modest constant. *)
      for i = 0 to Model.dim m - 1 do
        let diff =
          abs_float
            (tight.Randomization.moments.(order).(i)
            -. loose.Randomization.moments.(order).(i))
        in
        let slack =
          10. *. bound *. (1. +. (abs_float t *. 4.) ** float_of_int order)
        in
        if diff > slack +. 1e-12 then ok := false
      done;
      !ok)

let prop_moment_series_consistent =
  QCheck2.Test.make ~count:20 ~name:"moment_series = pointwise calls"
    ~print:model_print random_model_gen (fun m ->
      let times = [| 0.3; 0.9 |] in
      let series = Randomization.moment_series m ~times ~order:2 in
      Array.for_all
        (fun (t, ms) ->
          let direct = Randomization.moment m ~t ~order:2 in
          abs_float (ms.(2) -. direct) <= 1e-10 *. (1. +. abs_float direct))
        series)

(* ------------------------------------------------------------------ *)

let prop_poisson_window_mass =
  QCheck2.Test.make ~count ~name:"Poisson window captures 1 - eps"
    ~print:string_of_float
    QCheck2.Gen.(float_range 0.01 5000.)
    (fun lambda ->
      let w = Poisson.weights_window ~lambda ~eps:1e-8 in
      w.Poisson.mass > 1. -. 1e-8 && w.Poisson.mass <= 1. +. 1e-12)

let prop_poisson_tail_monotone =
  QCheck2.Test.make ~count ~name:"Poisson tail decreasing in m"
    ~print:string_of_float
    QCheck2.Gen.(float_range 0.5 500.)
    (fun lambda ->
      let ms = [ 1; 3; 10; 30; 100; 300 ] in
      let tails = List.map (fun m -> Poisson.log_tail ~lambda m) ms in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a >= b && decreasing rest
        | _ -> true
      in
      decreasing tails)

(* Truncation point of the randomization solver: G must be nondecreasing
   in lambda for fixed (d, order, eps) — more expected jumps can only need
   more terms. Monotonicity in the moment order additionally requires the
   corrected tail prefactor d*lambda*(order+1) to be >= 1: below that the
   d^n n! lambda^n correction itself shrinks with n and G may legitimately
   drop by a term (e.g. d=0.01, lambda=10, eps=1e-6: G(1)=28 > G(2)=27). *)
let prop_truncation_point_monotone =
  QCheck2.Test.make ~count ~name:"truncation point monotone in order/lambda"
    ~print:(fun (d, lambda, eps, order) ->
      Printf.sprintf "d=%g lambda=%g eps=%g order=%d" d lambda eps order)
    QCheck2.Gen.(
      let* d = float_range 0.05 4. in
      let* lambda = float_range 0.1 300. in
      let* eps = oneofl [ 1e-12; 1e-9; 1e-6; 1e-3 ] in
      let* order = int_range 0 6 in
      return (d, lambda, eps, order))
    (fun (d, lambda, eps, order) ->
      let g o = Randomization.truncation_point ~d ~lambda ~order:o ~eps in
      let lambda_ok =
        g order <= Randomization.truncation_point ~d ~lambda:(2. *. lambda) ~order ~eps
      in
      let order_ok =
        (* Only claimed on the validated domain (see comment above). *)
        d *. lambda *. float_of_int (order + 1) < 1.
        || g order <= g (order + 1)
      in
      let floor_ok = g order >= max 1 order in
      lambda_ok && order_ok && floor_ok)

let prop_stationary_solves_pi_q =
  QCheck2.Test.make ~count ~name:"GTH: pi Q = 0, pi >= 0, sum pi = 1"
    ~print:(fun g -> Printf.sprintf "generator dim %d" (Generator.dim g))
    random_generator_gen (fun g ->
      let pi = Stationary.gth g in
      let residual = Sparse.vm pi (Generator.matrix g) in
      Vec.norm_inf residual < 1e-10
      && Array.for_all (fun w -> w >= 0.) pi
      && abs_float (Vec.sum pi -. 1.) < 1e-10)

let prop_uniformized_rows_stochastic =
  QCheck2.Test.make ~count ~name:"uniformized rows sum to 1"
    ~print:(fun g -> Printf.sprintf "generator dim %d" (Generator.dim g))
    random_generator_gen (fun g ->
      let q = Generator.uniformization_rate g in
      let p = Generator.uniformized g ~rate:(q +. 1.) in
      Array.for_all
        (fun s -> abs_float (s -. 1.) < 1e-12)
        (Sparse.row_sums p))

let prop_transient_is_distribution =
  QCheck2.Test.make ~count ~name:"transient probabilities form a distribution"
    ~print:(fun g -> Printf.sprintf "generator dim %d" (Generator.dim g))
    random_generator_gen (fun g ->
      let n = Generator.dim g in
      let initial = Array.init n (fun i -> if i = 0 then 1. else 0.) in
      let p = Mrm_ctmc.Transient.probabilities g ~initial ~t:0.8 in
      Array.for_all (fun x -> x >= -1e-12) p
      && abs_float (Vec.sum p -. 1.) < 1e-9)

(* ------------------------------------------------------------------ *)

let prop_bounds_bracket_mixtures =
  (* Two-component normal-mixture moments are available in closed form;
     the CMS bounds must bracket the true CDF everywhere. *)
  let gen =
    QCheck2.Gen.(
      let* w = float_range 0.1 0.9 in
      let* mu1 = float_range (-2.) 0. in
      let* mu2 = float_range 0.5 3. in
      let* s1 = float_range 0.3 1.5 in
      let* s2 = float_range 0.3 1.5 in
      return (w, mu1, mu2, s1, s2))
  in
  QCheck2.Test.make ~count:40 ~name:"CMS bounds bracket normal mixtures"
    ~print:(fun (w, mu1, mu2, s1, s2) ->
      Printf.sprintf "w=%g mu=(%g,%g) s=(%g,%g)" w mu1 mu2 s1 s2)
    gen
    (fun (w, mu1, mu2, s1, s2) ->
      let normal_raw mu sigma n =
        Mrm_brownian.Brownian.raw_moment
          { Mrm_brownian.Brownian.drift = mu; variance = sigma *. sigma }
          ~t:1. n
      in
      let moments =
        Array.init 9 (fun n ->
            (w *. normal_raw mu1 s1 n) +. ((1. -. w) *. normal_raw mu2 s2 n))
      in
      let b = Moment_bounds.prepare moments in
      let cdf x =
        (w *. Special.normal_cdf ~mu:mu1 ~sigma:s1 x)
        +. ((1. -. w) *. Special.normal_cdf ~mu:mu2 ~sigma:s2 x)
      in
      List.for_all
        (fun x ->
          let { Moment_bounds.lower; upper; _ } =
            Moment_bounds.cdf_bounds b x
          in
          let truth = cdf x in
          lower <= truth +. 1e-7 && truth <= upper +. 1e-7)
        [ -2.; -1.; 0.; 0.5; 1.; 2.; 3. ])

let prop_gauss_rule_reproduces_moments =
  QCheck2.Test.make ~count:40 ~name:"Gauss rule reproduces 2n moments"
    ~print:model_print random_model_gen (fun m ->
      let t = 0.8 in
      let order = 8 in
      let r = Randomization.moments m ~t ~order in
      let pi = (m : Model.t).Model.initial in
      let moments =
        Array.init (order + 1) (fun n -> Vec.dot pi r.Randomization.moments.(n))
      in
      match Moment_bounds.prepare moments with
      | exception Invalid_argument _ ->
          (* Nearly-degenerate distribution (e.g. all variances ~ 0 on a
             slow chain): acceptable to refuse. *)
          true
      | b ->
          let nodes, weights = Moment_bounds.gauss_quadrature b in
          let n = Moment_bounds.quadrature_size b in
          let ok = ref true in
          for k = 0 to (2 * n) - 1 do
            let integral = ref 0. in
            Array.iteri
              (fun i node ->
                integral := !integral +. (weights.(i) *. (node ** float_of_int k)))
              nodes;
            let scale = 1. +. abs_float moments.(k) in
            if abs_float (!integral -. moments.(k)) > 1e-5 *. scale then
              ok := false
          done;
          !ok)

let prop_simulation_mean_close =
  QCheck2.Test.make ~count:10 ~name:"simulation mean within 5 sigma"
    ~print:model_print random_model_gen (fun m ->
      let t = 0.6 in
      let rng = Mrm_util.Rng.create ~seed:99L () in
      let replicas = 20_000 in
      let xs = Mrm_core.Simulate.sample m rng ~t ~replicas in
      let sample_mean = Mrm_util.Stats.mean xs in
      let sample_sd =
        sqrt (Mrm_util.Stats.variance xs /. float_of_int replicas)
      in
      let truth = Randomization.mean m ~t in
      abs_float (sample_mean -. truth) <= (5. *. sample_sd) +. 1e-9)

(* ------------------------------------------------------------------ *)

let prop_eigen_transpose_invariant =
  (* A and A^T have the same spectrum: a strong consistency check on the
     QR iteration (completely different Hessenberg forms). *)
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 7 in
      let* entries = list_repeat (n * n) (float_range (-1.) 1.) in
      return (n, entries))
  in
  QCheck2.Test.make ~count:40 ~name:"eigenvalues of A = eigenvalues of A^T"
    ~print:(fun (n, _) -> Printf.sprintf "%dx%d" n n)
    gen
    (fun (n, entries) ->
      let entries = Array.of_list entries in
      let a =
        Mrm_linalg.Dense.init ~rows:n ~cols:n (fun i j ->
            entries.((i * n) + j))
      in
      let sort e =
        let e = Array.copy e in
        Array.sort
          (fun x y ->
            compare (x.Complex.re, x.Complex.im) (y.Complex.re, y.Complex.im))
          e;
        e
      in
      let ea = sort (Mrm_linalg.Eigen.eigenvalues a) in
      let eat = sort (Mrm_linalg.Eigen.eigenvalues (Mrm_linalg.Dense.transpose a)) in
      let ok = ref true in
      Array.iteri
        (fun k z ->
          let d = Complex.norm (Complex.sub z eat.(k)) in
          if d > 1e-6 *. (1. +. Complex.norm z) then ok := false)
        ea;
      !ok)

let prop_fluid_cdf_valid =
  (* Random stable second-order fluid queues: F(0) = 0, monotone CDF,
     total mass 1, positive mean consistent with the ccdf integral. *)
  let gen =
    QCheck2.Gen.(
      let* g = random_generator_gen in
      let n = Generator.dim g in
      let* raw_rates = list_repeat n (float_range (-3.) 3.) in
      let* variances = list_repeat n (float_range 0.2 2.) in
      return (g, Array.of_list raw_rates, Array.of_list variances))
  in
  QCheck2.Test.make ~count:30 ~name:"fluid stationary CDF is a CDF"
    ~print:(fun (g, _, _) -> Printf.sprintf "dim %d" (Generator.dim g))
    gen
    (fun (g, raw_rates, variances) ->
      (* Force stability by shifting rates to a negative mean drift. *)
      let pi = Stationary.gth g in
      let drift = Vec.dot pi raw_rates in
      let rates = Array.map (fun r -> r -. drift -. 0.5) raw_rates in
      match Mrm_fluid.Fluid.make ~generator:g ~rates ~variances with
      | exception Invalid_argument _ -> true (* e.g. all rates negative *)
      | queue -> begin
          match Mrm_fluid.Fluid.stationary queue with
          | exception Failure _ -> false
          | s ->
              let ok = ref true in
              if Mrm_fluid.Fluid.cdf s 0. > 1e-6 then ok := false;
              let previous = ref (-1e-9) in
              for k = 0 to 30 do
                let c = Mrm_fluid.Fluid.cdf s (0.5 *. float_of_int k) in
                if c < !previous -. 1e-7 then ok := false;
                previous := c
              done;
              if abs_float (Mrm_fluid.Fluid.cdf s 400. -. 1.) > 1e-3 then
                ok := false;
              if Mrm_fluid.Fluid.mean_level s <= 0. then ok := false;
              !ok
        end)

let prop_completion_duality =
  (* First-order positive-rate models: E T_x from the dual matches the
     level-crossing identity d/dx E T_x = E[1/r at the crossing] ... use
     the simpler consistency E T_x is increasing and superadditive-ish;
     plus the strong check via the dual of the dual being the original. *)
  let gen =
    QCheck2.Gen.(
      let* g = random_generator_gen in
      let n = Generator.dim g in
      let* rates = list_repeat n (float_range 0.3 3.) in
      let* start = int_range 0 (n - 1) in
      return (g, Array.of_list rates, start))
  in
  QCheck2.Test.make ~count:30 ~name:"completion-time dual is an involution"
    ~print:(fun (g, _, _) -> Printf.sprintf "dim %d" (Generator.dim g))
    gen
    (fun (g, rates, start) ->
      let n = Generator.dim g in
      let initial = Array.init n (fun i -> if i = start then 1. else 0.) in
      let model = Model.first_order ~generator:g ~rates ~initial in
      let dual = Mrm_core.Completion_time.dual_model model in
      let double_dual = Mrm_core.Completion_time.dual_model dual in
      (* Rates recover exactly; generators agree entrywise. *)
      let ok = ref true in
      for i = 0 to n - 1 do
        if
          abs_float
            ((double_dual : Model.t).Model.rates.(i) -. rates.(i))
          > 1e-12 *. (1. +. rates.(i))
        then ok := false
      done;
      Sparse.iter (Generator.matrix g) (fun i j v ->
          let v' =
            Sparse.get
              (Generator.matrix (double_dual : Model.t).Model.generator)
              i j
          in
          if abs_float (v -. v') > 1e-9 *. (1. +. abs_float v) then
            ok := false);
      (* Mean completion time is increasing in the level. *)
      let m1 = Mrm_core.Completion_time.mean model ~x:0.5 in
      let m2 = Mrm_core.Completion_time.mean model ~x:1.5 in
      if not (m2 > m1 && m1 > 0.) then ok := false;
      !ok)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "cross-method",
        [
          to_alcotest prop_randomization_matches_ode;
          to_alcotest prop_variance_nonnegative;
          to_alcotest prop_cauchy_schwarz_m1_m3;
          to_alcotest prop_mean_ignores_variances;
          to_alcotest prop_variance_monotone_in_s;
          to_alcotest prop_error_bound_honored;
          to_alcotest prop_moment_series_consistent;
          to_alcotest prop_truncation_point_monotone;
        ] );
      ( "ctmc",
        [
          to_alcotest prop_poisson_window_mass;
          to_alcotest prop_poisson_tail_monotone;
          to_alcotest prop_stationary_solves_pi_q;
          to_alcotest prop_uniformized_rows_stochastic;
          to_alcotest prop_transient_is_distribution;
        ] );
      ( "bounds-and-simulation",
        [
          to_alcotest prop_bounds_bracket_mixtures;
          to_alcotest prop_gauss_rule_reproduces_moments;
          to_alcotest prop_simulation_mean_close;
        ] );
      ( "spectral",
        [
          to_alcotest prop_eigen_transpose_invariant;
          to_alcotest prop_fluid_cdf_valid;
          to_alcotest prop_completion_duality;
        ] );
    ]
