(* Tests for the ODE steppers: exactness, convergence orders, adaptivity. *)

module Ode = Mrm_ode.Ode
module Vec = Mrm_linalg.Vec

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

(* dy/dt = lambda y, y(0) = 1, solution e^{lambda t}. *)
let exponential_rhs lambda : Ode.rhs =
 fun ~t:_ ~y -> Array.map (fun v -> lambda *. v) y

(* dy/dt = (cos t, -sin t) for y = (sin t, cos t). *)
let circular_rhs : Ode.rhs = fun ~t:_ ~y -> [| y.(1); -.y.(0) |]

let solve method_ ~steps =
  (Ode.integrate method_ (exponential_rhs (-1.)) ~t0:0. ~t1:1. ~steps [| 1. |]).(0)

let test_euler_converges_first_order () =
  let e1 = abs_float (solve Ode.Euler ~steps:100 -. exp (-1.)) in
  let e2 = abs_float (solve Ode.Euler ~steps:200 -. exp (-1.)) in
  let ratio = e1 /. e2 in
  if ratio < 1.8 || ratio > 2.2 then
    Alcotest.failf "Euler order ratio %.3f (expected ~2)" ratio

let test_heun_converges_second_order () =
  let e1 = abs_float (solve Ode.Heun ~steps:100 -. exp (-1.)) in
  let e2 = abs_float (solve Ode.Heun ~steps:200 -. exp (-1.)) in
  let ratio = e1 /. e2 in
  if ratio < 3.6 || ratio > 4.4 then
    Alcotest.failf "Heun order ratio %.3f (expected ~4)" ratio

let test_rk4_converges_fourth_order () =
  let e1 = abs_float (solve Ode.Rk4 ~steps:25 -. exp (-1.)) in
  let e2 = abs_float (solve Ode.Rk4 ~steps:50 -. exp (-1.)) in
  let ratio = e1 /. e2 in
  if ratio < 13. || ratio > 19. then
    Alcotest.failf "RK4 order ratio %.3f (expected ~16)" ratio

let test_rk4_accuracy () =
  check_close ~tol:1e-10 "rk4 exp" (exp (-1.)) (solve Ode.Rk4 ~steps:100)

let test_oscillator () =
  let y =
    Ode.integrate Ode.Rk4 circular_rhs ~t0:0. ~t1:(2. *. Float.pi) ~steps:2000
      [| 0.; 1. |]
  in
  check_close ~tol:1e-9 "sin(2pi)" 0. y.(0);
  check_close ~tol:1e-9 "cos(2pi)" 1. y.(1)

let test_trajectory () =
  let trajectory =
    Ode.trajectory Ode.Heun (exponential_rhs 1.) ~t0:0. ~t1:1. ~steps:10
      [| 1. |]
  in
  Alcotest.(check int) "points" 11 (Array.length trajectory);
  let t0, y0 = trajectory.(0) in
  check_close "initial time" 0. t0;
  check_close "initial value" 1. y0.(0);
  let t_end, y_end = trajectory.(10) in
  check_close "final time" 1. t_end;
  (* Heun at 10 steps: O(h^2) error ~ 1e-2 relative. *)
  check_close ~tol:5e-3 "final value" (exp 1.) y_end.(0)

let test_time_dependent_rhs () =
  (* dy/dt = 2t  =>  y(1) = y(0) + 1. *)
  let rhs : Ode.rhs = fun ~t ~y:_ -> [| 2. *. t |] in
  let y = Ode.integrate Ode.Heun rhs ~t0:0. ~t1:1. ~steps:50 [| 0.5 |] in
  (* Heun is exact for linear-in-t integrands of degree <= 2. *)
  check_close ~tol:1e-12 "quadratic exact" 1.5 y.(0)

let test_rkf45_accuracy () =
  let y =
    Ode.rkf45 (exponential_rhs (-2.)) ~t0:0. ~t1:3. ~tol:1e-11 [| 1. |]
  in
  check_close ~tol:1e-8 "rkf45 exp" (exp (-6.)) y.(0)

let test_rkf45_stiffish () =
  (* Stiff-ish decay: the controller should still deliver the answer. *)
  let y =
    Ode.rkf45 (exponential_rhs (-200.)) ~t0:0. ~t1:1. ~tol:1e-9 [| 1. |]
  in
  check_close ~tol:1e-7 "stiff decay" 0. y.(0)

let test_rkf45_zero_interval () =
  let y = Ode.rkf45 circular_rhs ~t0:1. ~t1:1. ~tol:1e-9 [| 0.25; 0.5 |] in
  check_close "y0" 0.25 y.(0);
  check_close "y1" 0.5 y.(1)

let test_invalid_arguments () =
  (match
     Ode.integrate Ode.Euler circular_rhs ~t0:0. ~t1:1. ~steps:0 [| 0.; 1. |]
   with
  | _ -> Alcotest.fail "expected steps rejection"
  | exception Invalid_argument _ -> ());
  (match
     Ode.integrate Ode.Euler circular_rhs ~t0:1. ~t1:0. ~steps:5 [| 0.; 1. |]
   with
  | _ -> Alcotest.fail "expected interval rejection"
  | exception Invalid_argument _ -> ());
  match Ode.rkf45 circular_rhs ~t0:0. ~t1:1. ~tol:0. [| 0.; 1. |] with
  | _ -> Alcotest.fail "expected tol rejection"
  | exception Invalid_argument _ -> ()

let test_input_not_mutated () =
  let y0 = [| 1.; 2. |] in
  ignore (Ode.integrate Ode.Rk4 circular_rhs ~t0:0. ~t1:1. ~steps:10 y0);
  check_close "y0 intact" 1. y0.(0);
  ignore (Ode.rkf45 circular_rhs ~t0:0. ~t1:1. ~tol:1e-9 y0);
  check_close "y0 intact after rkf45" 2. y0.(1)

let test_linear_system_vs_uniformization () =
  (* dp/dt = p Q for a CTMC: RK4 on the transposed system matches the
     uniformization transient solver. *)
  let g =
    Mrm_ctmc.Generator.of_triplets ~states:3
      [ (0, 1, 1.2); (1, 2, 0.8); (2, 0, 2.); (1, 0, 0.5) ]
  in
  let qt =
    Mrm_linalg.Sparse.transpose (Mrm_ctmc.Generator.matrix g)
  in
  let rhs : Ode.rhs = fun ~t:_ ~y -> Mrm_linalg.Sparse.mv qt y in
  let t = 0.9 in
  let via_ode =
    Ode.integrate Ode.Rk4 rhs ~t0:0. ~t1:t ~steps:400 [| 1.; 0.; 0. |]
  in
  let via_uniformization =
    Mrm_ctmc.Transient.probabilities g ~initial:[| 1.; 0.; 0. |] ~t
  in
  Alcotest.(check bool) "ODE = uniformization" true
    (Vec.approx_equal ~tol:1e-9 via_ode via_uniformization)

let () =
  Alcotest.run "mrm_ode"
    [
      ( "ode",
        [
          Alcotest.test_case "Euler first order" `Quick
            test_euler_converges_first_order;
          Alcotest.test_case "Heun second order" `Quick
            test_heun_converges_second_order;
          Alcotest.test_case "RK4 fourth order" `Quick
            test_rk4_converges_fourth_order;
          Alcotest.test_case "RK4 accuracy" `Quick test_rk4_accuracy;
          Alcotest.test_case "oscillator" `Quick test_oscillator;
          Alcotest.test_case "trajectory" `Quick test_trajectory;
          Alcotest.test_case "time-dependent RHS" `Quick
            test_time_dependent_rhs;
          Alcotest.test_case "RKF45 accuracy" `Quick test_rkf45_accuracy;
          Alcotest.test_case "RKF45 stiff-ish" `Quick test_rkf45_stiffish;
          Alcotest.test_case "RKF45 zero interval" `Quick
            test_rkf45_zero_interval;
          Alcotest.test_case "invalid arguments" `Quick
            test_invalid_arguments;
          Alcotest.test_case "input not mutated" `Quick
            test_input_not_mutated;
          Alcotest.test_case "CTMC system vs uniformization" `Quick
            test_linear_system_vs_uniformization;
        ] );
    ]
