(* Tests for the extension modules: impulse rewards, the Gil-Pelaez
   transform-domain distribution, the dense matrix exponential and CTMC
   absorption analysis. *)

module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Impulse = Mrm_core.Impulse
module Transform_distribution = Mrm_core.Transform_distribution
module Pde = Mrm_core.Pde
module Generator = Mrm_ctmc.Generator
module Absorption = Mrm_ctmc.Absorption
module Dense = Mrm_linalg.Dense
module Expm = Mrm_linalg.Expm
module Vec = Mrm_linalg.Vec
module Rng = Mrm_util.Rng
module Stats = Mrm_util.Stats
module Special = Mrm_util.Special

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

(* ------------------------------------------------------------------ *)
(* Impulse rewards                                                      *)

let symmetric_two_state lam =
  Generator.of_triplets ~states:2 [ (0, 1, lam); (1, 0, lam) ]

let test_impulse_poisson_oracle () =
  (* Two states with equal rates: jumps form a Poisson(lam t) process.
     Pure impulse rho on every transition: B(t) = rho N(t), so the raw
     moments are rho^n times the Poisson (Touchard) moments. *)
  let lam = 2.0 and rho = 0.7 and t = 1.3 in
  let base =
    Model.make ~generator:(symmetric_two_state lam) ~rates:[| 0.; 0. |]
      ~variances:[| 0.; 0. |] ~initial:[| 1.; 0. |]
  in
  let model = Impulse.make base [ (0, 1, rho); (1, 0, rho) ] in
  let r = Impulse.moments model ~t ~order:3 in
  let lt = lam *. t in
  let poisson_moments =
    [| 1.; lt; lt +. (lt ** 2.); lt +. (3. *. (lt ** 2.)) +. (lt ** 3.) |]
  in
  for n = 0 to 3 do
    check_close ~tol:1e-10
      (Printf.sprintf "Poisson moment %d" n)
      ((rho ** float_of_int n) *. poisson_moments.(n))
      r.Randomization.moments.(n).(0)
  done

let mixed_impulse_model () =
  let generator =
    Generator.of_triplets ~states:3
      [ (0, 1, 1.0); (1, 2, 2.0); (2, 0, 1.5); (1, 0, 0.5) ]
  in
  let base =
    Model.make ~generator
      ~rates:[| 2.0; -0.5; 1.0 |]
      ~variances:[| 0.3; 1.0; 0.1 |]
      ~initial:[| 1.; 0.; 0. |]
  in
  Impulse.make base [ (0, 1, 0.4); (1, 2, 1.2); (2, 0, 0.9) ]

let test_impulse_matches_ode () =
  let model = mixed_impulse_model () in
  let t = 0.9 in
  let rand = Impulse.moments model ~t ~order:3 in
  let ode =
    Impulse.moments_ode ~method_:Mrm_ode.Ode.Rk4 ~steps:3000 model ~t ~order:3
  in
  for n = 0 to 3 do
    for i = 0 to 2 do
      check_close ~tol:1e-7
        (Printf.sprintf "n=%d i=%d" n i)
        ode.(n).(i)
        rand.Randomization.moments.(n).(i)
    done
  done

let test_impulse_matches_simulation () =
  let model = mixed_impulse_model () in
  let t = 0.9 in
  let rand = Impulse.moments model ~t ~order:2 in
  let rng = Rng.create ~seed:55L () in
  let xs = Impulse.sample model rng ~t ~replicas:100_000 in
  let sample_mean = Stats.mean xs in
  let se = sqrt (Stats.variance xs /. 100_000.) in
  let truth = rand.Randomization.moments.(1).(0) in
  if abs_float (sample_mean -. truth) > 5. *. se then
    Alcotest.failf "simulated mean %g vs %g (se %g)" sample_mean truth se

let test_impulse_mean_linearity () =
  (* E B(t) = rate part + sum_ij rho_ij * E[number of i->j transitions];
     with zero impulses the solver must agree with the pure-rate one. *)
  let model = mixed_impulse_model () in
  let base = (model : Impulse.t).Impulse.base in
  let t = 1.1 in
  let with_impulses = Impulse.mean model ~t in
  let rate_only = Randomization.mean base ~t in
  Alcotest.(check bool) "impulses add reward" true
    (with_impulses > rate_only);
  (* Zero-impulse wrapper degenerates exactly. *)
  let trivial = Impulse.make base [] in
  check_close ~tol:1e-12 "no impulses = base" rate_only
    (Impulse.mean trivial ~t)

let test_impulse_jump_count_via_unit_impulses () =
  (* Unit impulses on every transition and zero rates count jumps: the
     mean must equal int_0^t sum_i p_i(u) |q_ii| du. *)
  let generator =
    Generator.of_triplets ~states:3
      [ (0, 1, 1.0); (1, 2, 2.0); (2, 0, 1.5); (1, 0, 0.5) ]
  in
  let n = 3 in
  let base =
    Model.make ~generator ~rates:(Array.make n 0.)
      ~variances:(Array.make n 0.)
      ~initial:[| 1.; 0.; 0. |]
  in
  let all_transitions = [ (0, 1, 1.); (1, 2, 1.); (2, 0, 1.); (1, 0, 1.) ] in
  let model = Impulse.make base all_transitions in
  let t = 1.4 in
  let mean_jumps = Impulse.mean model ~t in
  (* Oracle: expected jumps = integral of total exit rate. *)
  let exit_model =
    Model.make ~generator ~rates:(Generator.exit_rates generator)
      ~variances:(Array.make n 0.)
      ~initial:[| 1.; 0.; 0. |]
  in
  let expected =
    Mrm_core.First_order.expected_reward_integral exit_model ~t ~steps:400
  in
  check_close ~tol:1e-7 "jump count" expected mean_jumps

let test_impulse_validation () =
  let base =
    Model.make ~generator:(symmetric_two_state 1.) ~rates:[| 0.; 0. |]
      ~variances:[| 0.; 0. |] ~initial:[| 1.; 0. |]
  in
  (match Impulse.make base [ (0, 0, 1.) ] with
  | _ -> Alcotest.fail "diagonal impulse"
  | exception Invalid_argument _ -> ());
  (match Impulse.make base [ (0, 1, -1.) ] with
  | _ -> Alcotest.fail "negative impulse"
  | exception Invalid_argument _ -> ());
  (match Impulse.make base [ (0, 1, 1.); (0, 1, 2.) ] with
  | _ -> Alcotest.fail "duplicate impulse"
  | exception Invalid_argument _ -> ());
  (* Impulse on a non-transition. *)
  let chain = Generator.of_triplets ~states:3 [ (0, 1, 1.); (1, 2, 1.); (2, 0, 1.) ] in
  let base3 =
    Model.make ~generator:chain ~rates:[| 0.; 0.; 0. |]
      ~variances:[| 0.; 0.; 0. |] ~initial:[| 1.; 0.; 0. |]
  in
  match Impulse.make base3 [ (0, 2, 1.) ] with
  | _ -> Alcotest.fail "impulse off support"
  | exception Invalid_argument _ -> ()

let test_impulse_error_bound_conservative () =
  (* Loose-eps impulse run stays within its (generalized, conservative)
     bound of a tight-eps run. *)
  let model = mixed_impulse_model () in
  let t = 0.8 and order = 2 in
  let tight = Impulse.moments ~eps:1e-13 model ~t ~order in
  let loose = Impulse.moments ~eps:1e-5 model ~t ~order in
  let bound = exp loose.Randomization.diagnostics.log_error_bound in
  Alcotest.(check bool) "bound below eps" true (bound <= 1e-5 +. 1e-15);
  for i = 0 to 2 do
    let diff =
      abs_float
        (tight.Randomization.moments.(order).(i)
        -. loose.Randomization.moments.(order).(i))
    in
    if diff > (10. *. bound) +. 1e-12 then
      Alcotest.failf "state %d: error %g > bound %g" i diff bound
  done

let test_impulse_variance () =
  let model = mixed_impulse_model () in
  Alcotest.(check bool) "variance positive" true
    (Impulse.variance model ~t:1. > 0.)

(* ------------------------------------------------------------------ *)
(* Transform-domain distribution (Gil-Pelaez)                           *)

let test_gilpelaez_single_state_normal () =
  let g = Generator.of_triplets ~states:1 [] in
  let m =
    Model.make ~generator:g ~rates:[| 1.0 |] ~variances:[| 0.5 |]
      ~initial:[| 1. |]
  in
  let t = 1.0 in
  List.iter
    (fun x ->
      check_close ~tol:1e-4
        (Printf.sprintf "normal cdf at %g" x)
        (Special.normal_cdf ~mu:1.0 ~sigma:(sqrt 0.5) x)
        (Transform_distribution.cdf m ~t x))
    [ 0.; 0.5; 1.; 2. ]

let test_gilpelaez_characteristic_function_properties () =
  let g =
    Generator.of_triplets ~states:2 [ (0, 1, 2.); (1, 0, 3.) ]
  in
  let m =
    Model.make ~generator:g ~rates:[| 2.; -1. |] ~variances:[| 0.5; 1.5 |]
      ~initial:[| 0.7; 0.3 |]
  in
  let t = 0.8 in
  (* phi(0) = 1. *)
  let phi0 = Transform_distribution.characteristic_function m ~t ~omega:0. in
  check_close "phi(0) re" 1. phi0.Complex.re;
  check_close "phi(0) im" 0. phi0.Complex.im;
  (* |phi| <= 1 everywhere. *)
  List.iter
    (fun omega ->
      let phi = Transform_distribution.characteristic_function m ~t ~omega in
      Alcotest.(check bool)
        (Printf.sprintf "|phi(%g)| <= 1" omega)
        true
        (Complex.norm phi <= 1. +. 1e-9))
    [ 0.3; 1.; 3.; 10. ];
  (* Derivative at 0 gives the mean: phi'(0) = i m1. *)
  let h = 1e-4 in
  let phi_plus = Transform_distribution.characteristic_function m ~t ~omega:h in
  let phi_minus =
    Transform_distribution.characteristic_function m ~t ~omega:(-.h)
  in
  let derivative_im = (phi_plus.Complex.im -. phi_minus.Complex.im) /. (2. *. h) in
  check_close ~tol:1e-6 "phi'(0) = i mean"
    (Randomization.mean m ~t)
    derivative_im

let test_gilpelaez_matches_pde_and_simulation () =
  let g =
    Generator.of_triplets ~states:3
      [ (0, 1, 1.0); (1, 2, 2.0); (2, 0, 1.5); (1, 0, 0.5) ]
  in
  let m =
    Model.make ~generator:g ~rates:[| 4.0; 2.0; 0.5 |]
      ~variances:[| 0.3; 1.0; 0.1 |]
      ~initial:[| 1.; 0.; 0. |]
  in
  let t = 1.5 in
  let points = [| 2.; 4.; 4.6; 6.; 7. |] in
  let values, grid = Transform_distribution.cdf_grid m ~t points in
  Alcotest.(check bool) "grid used enough frequencies" true
    (grid.Transform_distribution.count > 20);
  let rng = Rng.create ~seed:12L () in
  let xs = Mrm_core.Simulate.sample m rng ~t ~replicas:100_000 in
  Array.iteri
    (fun k x ->
      let empirical = Stats.empirical_cdf xs x in
      check_close ~tol:0.01
        (Printf.sprintf "vs simulation at %g" x)
        empirical values.(k))
    points;
  (* Monotone over the evaluation points. *)
  for k = 1 to Array.length values - 1 do
    Alcotest.(check bool) "monotone" true (values.(k) >= values.(k - 1) -. 1e-6)
  done

let test_gilpelaez_invalid () =
  let g = Generator.of_triplets ~states:1 [] in
  let m =
    Model.make ~generator:g ~rates:[| 1. |] ~variances:[| 1. |]
      ~initial:[| 1. |]
  in
  match Transform_distribution.cdf m ~t:0. 0.5 with
  | _ -> Alcotest.fail "t = 0 rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Matrix exponential                                                   *)

let test_expm_zero_and_diagonal () =
  let z = Dense.zeros ~rows:3 ~cols:3 in
  Alcotest.(check bool) "e^0 = I" true
    (Dense.approx_equal ~tol:1e-14 (Dense.identity 3) (Expm.expm z));
  let d = Dense.diagonal [| 1.; -2.; 0.5 |] in
  let e = Expm.expm d in
  check_close ~tol:1e-13 "diag 0" (exp 1.) (Dense.get e 0 0);
  check_close ~tol:1e-13 "diag 1" (exp (-2.)) (Dense.get e 1 1);
  check_close ~tol:1e-13 "diag 2" (exp 0.5) (Dense.get e 2 2);
  check_close "offdiag" 0. (Dense.get e 0 1)

let test_expm_nilpotent () =
  (* N = [[0,1],[0,0]]: e^N = I + N exactly. *)
  let n = Dense.of_arrays [| [| 0.; 1. |]; [| 0.; 0. |] |] in
  let e = Expm.expm n in
  check_close "11" 1. (Dense.get e 0 0);
  check_close "12" 1. (Dense.get e 0 1);
  check_close "21" 0. (Dense.get e 1 0);
  check_close "22" 1. (Dense.get e 1 1)

let test_expm_rotation () =
  (* A = [[0,-a],[a,0]]: e^A = rotation by a. *)
  let a = 0.7 in
  let m = Dense.of_arrays [| [| 0.; -.a |]; [| a; 0. |] |] in
  let e = Expm.expm m in
  check_close ~tol:1e-13 "cos" (cos a) (Dense.get e 0 0);
  check_close ~tol:1e-13 "-sin" (-.sin a) (Dense.get e 0 1)

let test_expm_large_norm_scaling () =
  (* Scaling path: e^(A) for ||A|| >> theta13, checked against
     (e^(A/k))^k consistency via a diagonal case. *)
  let d = Dense.diagonal [| 30.; -40. |] in
  let e = Expm.expm d in
  check_close ~tol:1e-9 "large diag 0" (exp 30.) (Dense.get e 0 0);
  check_close ~tol:1e-9 "large diag 1" (exp (-40.)) (Dense.get e 1 1)

let test_expm_vs_uniformization () =
  (* p(t) = pi e^(Qt) matches the uniformization transient solver. *)
  let g =
    Generator.of_triplets ~states:4
      [ (0, 1, 1.); (1, 2, 2.); (2, 3, 1.5); (3, 0, 0.7); (2, 0, 0.3) ]
  in
  let t = 0.9 in
  let qt =
    Dense.init ~rows:4 ~cols:4 (fun i j ->
        t *. Mrm_linalg.Sparse.get (Generator.matrix g) i j)
  in
  let e = Expm.expm qt in
  let initial = [| 1.; 0.; 0.; 0. |] in
  let via_expm = Dense.vm initial e in
  let via_uniformization =
    Mrm_ctmc.Transient.probabilities g ~initial ~t
  in
  Alcotest.(check bool) "expm = uniformization" true
    (Vec.approx_equal ~tol:1e-10 via_expm via_uniformization)

let test_expm_action () =
  let d = Dense.diagonal [| 1.; 2. |] in
  let v = Expm.expm_action d [| 1.; 1. |] in
  check_close ~tol:1e-13 "action 0" (exp 1.) v.(0);
  check_close ~tol:1e-13 "action 1" (exp 2.) v.(1)

let test_expm_invalid () =
  match Expm.expm (Dense.zeros ~rows:2 ~cols:3) with
  | _ -> Alcotest.fail "non-square"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Absorption                                                           *)

let test_absorption_two_state () =
  (* 0 -> 1 at rate lam, 1 absorbing: expected time 1/lam. *)
  let lam = 2.5 in
  let g = Generator.of_triplets ~states:2 [ (0, 1, lam) ] in
  let a = Absorption.analyze g ~targets:[ 1 ] in
  check_close "p from 0" 1. a.Absorption.hit_probability.(0);
  check_close ~tol:1e-12 "time from 0" (1. /. lam) a.Absorption.expected_time.(0);
  check_close "time on target" 0. a.Absorption.expected_time.(1)

let test_absorption_birth_death_mtta () =
  (* Pure birth chain 0 -> 1 -> 2 with rates b0, b1: MTTA from 0 is
     1/b0 + 1/b1. *)
  let b0 = 1.5 and b1 = 0.5 in
  let g = Generator.of_triplets ~states:3 [ (0, 1, b0); (1, 2, b1) ] in
  let mtta =
    Absorption.mean_time_to_absorption g ~initial:[| 1.; 0.; 0. |]
      ~targets:[ 2 ]
  in
  check_close ~tol:1e-12 "MTTA" ((1. /. b0) +. (1. /. b1)) mtta

let test_absorption_competing_risks () =
  (* From 0: to 1 at rate a, to 2 at rate b; both absorbing. Hitting
     probability of {1} is a/(a+b). *)
  let a = 2. and b = 3. in
  let g = Generator.of_triplets ~states:3 [ (0, 1, a); (0, 2, b) ] in
  let result = Absorption.analyze g ~targets:[ 1 ] in
  check_close ~tol:1e-12 "split probability" (a /. (a +. b))
    result.Absorption.hit_probability.(0);
  (* Absorption in 1 is not certain, so the conditional expected time is
     reported as infinity by convention. *)
  Alcotest.(check bool) "time infinite" true
    (result.Absorption.expected_time.(0) = infinity)

let test_absorption_cyclic_chain () =
  (* Irreducible chain, any state reaches any target: finite times. *)
  let g =
    Generator.of_triplets ~states:3
      [ (0, 1, 1.); (1, 2, 1.); (2, 0, 1.); (1, 0, 0.5) ]
  in
  let result = Absorption.analyze g ~targets:[ 2 ] in
  Array.iteri
    (fun i p ->
      check_close (Printf.sprintf "prob %d" i) 1. p;
      Alcotest.(check bool) "finite time" true
        (Float.is_finite result.Absorption.expected_time.(i)))
    result.Absorption.hit_probability

let test_absorption_unreachable_component () =
  (* Two disconnected components: from the far component the target has
     probability 0 and infinite hitting time; the near component solves
     normally. *)
  let g =
    Generator.of_triplets ~states:4
      [ (0, 1, 1.); (1, 0, 1.); (2, 3, 1.); (3, 2, 1.) ]
  in
  let result = Absorption.analyze g ~targets:[ 0 ] in
  check_close "reachable prob" 1. result.Absorption.hit_probability.(1);
  check_close ~tol:1e-12 "reachable time" 1.
    result.Absorption.expected_time.(1);
  check_close "unreachable prob" 0. result.Absorption.hit_probability.(2);
  Alcotest.(check bool) "unreachable time" true
    (result.Absorption.expected_time.(3) = infinity)

let test_absorption_validation () =
  let g = Generator.of_triplets ~states:2 [ (0, 1, 1.) ] in
  (match Absorption.analyze g ~targets:[] with
  | _ -> Alcotest.fail "empty targets"
  | exception Invalid_argument _ -> ());
  match Absorption.analyze g ~targets:[ 5 ] with
  | _ -> Alcotest.fail "range"
  | exception Invalid_argument _ -> ()

let test_absorption_multiprocessor_mttf () =
  (* Mean time until the multiprocessor first drops below 1 working
     processor, starting from full: finite and positive, decreasing when
     the failure rate grows. *)
  let module Mp = Mrm_models.Multiprocessor in
  let mttf failure =
    let p = { Mp.default with Mp.processors = 3; failure } in
    let model = Mp.model p in
    Absorption.mean_time_to_absorption
      (model : Model.t).Model.generator
      ~initial:(model : Model.t).Model.initial
      ~targets:[ Mp.up_index p 0 ]
  in
  let slow = mttf 0.1 and fast = mttf 0.5 in
  Alcotest.(check bool) "finite" true (Float.is_finite slow && slow > 0.);
  Alcotest.(check bool) "monotone in failure rate" true (fast < slow)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "extensions"
    [
      ( "impulse",
        [
          Alcotest.test_case "Poisson jump oracle" `Quick
            test_impulse_poisson_oracle;
          Alcotest.test_case "matches extended ODE" `Quick
            test_impulse_matches_ode;
          Alcotest.test_case "matches simulation" `Slow
            test_impulse_matches_simulation;
          Alcotest.test_case "mean behaviour" `Quick
            test_impulse_mean_linearity;
          Alcotest.test_case "unit impulses count jumps" `Quick
            test_impulse_jump_count_via_unit_impulses;
          Alcotest.test_case "validation" `Quick test_impulse_validation;
          Alcotest.test_case "error bound (generalized)" `Quick
            test_impulse_error_bound_conservative;
          Alcotest.test_case "variance" `Quick test_impulse_variance;
        ] );
      ( "transform_distribution",
        [
          Alcotest.test_case "single state = normal" `Quick
            test_gilpelaez_single_state_normal;
          Alcotest.test_case "characteristic function properties" `Quick
            test_gilpelaez_characteristic_function_properties;
          Alcotest.test_case "matches simulation" `Slow
            test_gilpelaez_matches_pde_and_simulation;
          Alcotest.test_case "invalid time" `Quick test_gilpelaez_invalid;
        ] );
      ( "expm",
        [
          Alcotest.test_case "zero and diagonal" `Quick
            test_expm_zero_and_diagonal;
          Alcotest.test_case "nilpotent" `Quick test_expm_nilpotent;
          Alcotest.test_case "rotation" `Quick test_expm_rotation;
          Alcotest.test_case "large norm (scaling path)" `Quick
            test_expm_large_norm_scaling;
          Alcotest.test_case "matches uniformization" `Quick
            test_expm_vs_uniformization;
          Alcotest.test_case "expm_action" `Quick test_expm_action;
          Alcotest.test_case "invalid input" `Quick test_expm_invalid;
        ] );
      ( "absorption",
        [
          Alcotest.test_case "two-state" `Quick test_absorption_two_state;
          Alcotest.test_case "pure-birth MTTA" `Quick
            test_absorption_birth_death_mtta;
          Alcotest.test_case "competing risks" `Quick
            test_absorption_competing_risks;
          Alcotest.test_case "cyclic chain" `Quick
            test_absorption_cyclic_chain;
          Alcotest.test_case "unreachable component" `Quick
            test_absorption_unreachable_component;
          Alcotest.test_case "validation" `Quick test_absorption_validation;
          Alcotest.test_case "multiprocessor MTTF" `Quick
            test_absorption_multiprocessor_mttf;
        ] );
    ]
