(* Cross-validation suite for the MMBM stationary solver (lib/mmbm):
   closed forms, the independent spectral fluid solver, the CTMC
   zero-variance limit, long-horizon randomization on the Section-7
   models, and QCheck2 mass/nonnegativity properties. *)

module Dense = Mrm_linalg.Dense
module Vec = Mrm_linalg.Vec
module Generator = Mrm_ctmc.Generator
module Stationary = Mrm_ctmc.Stationary
module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Fluid = Mrm_fluid.Fluid
module Mmbm = Mrm_mmbm.Mmbm
module Quadrature = Mrm_util.Quadrature
module Diagnostics = Mrm_check.Diagnostics

let check_close ?(tol = 1e-10) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

let two_state ~q01 ~q10 ~rates ~variances =
  let generator =
    Generator.of_triplets ~states:2 [ (0, 1, q01); (1, 0, q10) ]
  in
  Model.make ~generator ~rates ~variances ~initial:[| 1.; 0. |]

(* ------------------------------------------------------------------ *)
(* Closed forms                                                         *)

let test_exponential_closed_form () =
  (* One Brownian state with drift r < 0, variance s: the regulated
     level is Exp(theta) with theta = 2|r|/s. *)
  let generator = Generator.of_triplets ~states:1 [] in
  let model =
    Model.make ~generator ~rates:[| -2. |] ~variances:[| 4. |]
      ~initial:[| 1. |]
  in
  let r = Mmbm.solve ~validate:true model in
  let theta = 1. in
  check_close "nu" theta r.Mmbm.nu.(0);
  check_close "H" (-.theta) (Dense.get r.Mmbm.h 0 0);
  check_close "marginal" 1. r.Mmbm.marginal.(0);
  check_close "mean level" (1. /. theta) r.Mmbm.mean_level;
  check_close "reward rate" (-2.) r.Mmbm.reward_rate;
  check_close "residual" 0. ~tol:1e-13 r.Mmbm.residual;
  List.iter
    (fun x ->
      check_close
        (Printf.sprintf "density(%g)" x)
        (theta *. exp (-.theta *. x))
        (Mmbm.density r x).(0);
      check_close
        (Printf.sprintf "cdf(%g)" x)
        (1. -. exp (-.theta *. x))
        (Mmbm.cdf r x).(0))
    [ 0.; 0.1; 1.; 3.7 ];
  if r.Mmbm.warnings <> [] then Alcotest.fail "unexpected warnings"

let test_matches_spectral_fluid_solver () =
  (* Independent oracle: the spectral (eigendecomposition) stationary
     solver of lib/fluid on a 2-state queue. *)
  let rates = [| 1.; -3. |] and variances = [| 1.; 2. |] in
  let model = two_state ~q01:1. ~q10:2. ~rates ~variances in
  let r = Mmbm.solve ~validate:true model in
  let fq =
    Fluid.make ~generator:model.Model.generator ~rates ~variances
  in
  let fs = Fluid.stationary fq in
  let pi = Fluid.background_distribution fs in
  check_close "marginal 0" pi.(0) r.Mmbm.marginal.(0);
  check_close "marginal 1" pi.(1) r.Mmbm.marginal.(1);
  check_close "mean level" ~tol:1e-9 (Fluid.mean_level fs) r.Mmbm.mean_level;
  List.iter
    (fun x ->
      let c = Mmbm.cdf r x in
      check_close
        (Printf.sprintf "joint cdf 0 at %g" x)
        (Fluid.joint_cdf fs ~state:0 x)
        ~tol:1e-9 c.(0);
      check_close
        (Printf.sprintf "joint cdf 1 at %g" x)
        (Fluid.joint_cdf fs ~state:1 x)
        ~tol:1e-9 c.(1))
    [ 0.; 0.25; 1.; 2.5; 8. ];
  if Mmbm.total_density r 0.5 <= 0. then Alcotest.fail "density must be > 0"

let test_zero_variance_limit_matches_ctmc () =
  (* As all variances -> 0 with every drift negative the level collapses
     onto the boundary: the phase marginal must match GTH on the
     modulating chain and the mean level must vanish. *)
  let generator =
    Generator.of_triplets ~states:3
      [ (0, 1, 0.7); (1, 2, 1.3); (2, 0, 2.1); (1, 0, 0.4) ]
  in
  let model =
    Model.make ~generator
      ~rates:[| -1.; -2.; -0.5 |]
      ~variances:[| 1e-6; 1e-6; 1e-6 |]
      ~initial:[| 1.; 0.; 0. |]
  in
  let r = Mmbm.solve model in
  let pi = Stationary.gth generator in
  Array.iteri
    (fun i p ->
      check_close (Printf.sprintf "pi %d" i) p ~tol:1e-8 r.Mmbm.marginal.(i))
    pi;
  if r.Mmbm.mean_level > 1e-6 then
    Alcotest.failf "mean level should vanish, got %g" r.Mmbm.mean_level;
  (* The marginal is variance-independent (it is pi exactly): solving
     the same chain with O(1) variances must give the same marginal. *)
  let fat =
    Model.make ~generator
      ~rates:[| -1.; -2.; -0.5 |]
      ~variances:[| 1.; 2.; 0.5 |]
      ~initial:[| 1.; 0.; 0. |]
  in
  let rf = Mmbm.solve fat in
  Array.iteri
    (fun i p ->
      check_close
        (Printf.sprintf "fat pi %d" i)
        p ~tol:1e-10 rf.Mmbm.marginal.(i))
    pi

(* ------------------------------------------------------------------ *)
(* Long-horizon randomization on the Section-7 models                   *)

(* Stationary reward rate from the transient solver: E[B(t)] = r* t + c
   + O(e^{-gap t}), so a difference quotient between two long horizons
   isolates r* to far below the 1e-8 acceptance threshold. *)
let randomization_rate model ~t1 ~t2 =
  let results =
    Randomization.moments_at_times ~eps:1e-13 model ~times:[| t1; t2 |]
      ~order:1
  in
  let mean (r : Randomization.result) =
    Vec.dot model.Model.initial r.Randomization.moments.(1)
  in
  (mean results.(1) -. mean results.(0)) /. (t2 -. t1)

let stationary_vs_randomization ~name ~drain ~regularize model =
  let r = Mmbm.solve ~drain ~regularize ~validate:true model in
  let expected = randomization_rate model ~t1:25. ~t2:50. in
  let err =
    abs_float (r.Mmbm.reward_rate -. expected) /. abs_float expected
  in
  if err > 1e-8 then
    Alcotest.failf "%s: stationary %.12g vs randomization %.12g (rel %g)"
      name r.Mmbm.reward_rate expected err;
  (* the --validate cross-check must agree too *)
  List.iter
    (fun (d : Diagnostics.t) ->
      if d.Diagnostics.code = "MRM068" then
        Alcotest.failf "%s: validation flagged: %s" name d.Diagnostics.message)
    r.Mmbm.warnings

let test_onoff_reward_rate () =
  let model =
    Mrm_models.Onoff.model
      { (Mrm_models.Onoff.table1 ~sigma2:1.) with sources = 8; capacity = 8. }
  in
  let pi = Stationary.gth model.Model.generator in
  let rstar = Vec.dot pi model.Model.rates in
  (* the floor only conditions the shift: the phase marginal (and so
     the reward rate) is variance-independent, so a generous floor
     costs no accuracy on what this test compares *)
  stationary_vs_randomization ~name:"onoff" ~drain:(rstar +. 2.)
    ~regularize:1e-3 model

let test_machine_repair_reward_rate () =
  let model =
    Mrm_models.Machine_repair.(model { default with machines = 6 })
  in
  let pi = Stationary.gth model.Model.generator in
  let rstar = Vec.dot pi model.Model.rates in
  stationary_vs_randomization ~name:"repair" ~drain:(rstar +. 1.5)
    ~regularize:1e-3 model

(* ------------------------------------------------------------------ *)
(* Structured failures                                                  *)

let code_of_error f =
  match f () with
  | (_ : Mmbm.result) -> Alcotest.fail "expected Mmbm.Error"
  | exception Mmbm.Error d -> d.Diagnostics.code

let test_structured_errors () =
  let onoff =
    Mrm_models.Onoff.model
      { (Mrm_models.Onoff.table1 ~sigma2:1.) with sources = 4; capacity = 4. }
  in
  (* state 0 of the ON-OFF model has zero variance *)
  Alcotest.(check string)
    "zero variance" "MRM062"
    (code_of_error (fun () -> Mmbm.solve ~drain:10. onoff));
  (* positive mean drift without a drain *)
  Alcotest.(check string)
    "positive drift" "MRM063"
    (code_of_error (fun () -> Mmbm.solve ~regularize:1e-6 onoff));
  (* exactly zero mean drift: null recurrent *)
  let balanced =
    two_state ~q01:1. ~q10:1. ~rates:[| 1.; -1. |] ~variances:[| 1.; 1. |]
  in
  Alcotest.(check string)
    "null recurrent" "MRM064"
    (code_of_error (fun () -> Mmbm.solve balanced));
  (* CR starved of iterations *)
  let stable =
    two_state ~q01:1. ~q10:2. ~rates:[| 1.; -3. |] ~variances:[| 1.; 1. |]
  in
  Alcotest.(check string)
    "iteration cap" "MRM065"
    (code_of_error (fun () -> Mmbm.solve ~max_iterations:1 stable));
  (* the regularization warning rides along on success *)
  let r = Mmbm.solve ~drain:10. ~regularize:1e-6 onoff in
  (match r.Mmbm.warnings with
  | [ d ] when d.Diagnostics.code = "MRM067" -> ()
  | _ -> Alcotest.fail "expected exactly the MRM067 warning");
  if r.Mmbm.regularized <> 1 then
    Alcotest.failf "expected 1 floored state, got %d" r.Mmbm.regularized

let test_partition () =
  let onoff =
    Mrm_models.Onoff.model
      { (Mrm_models.Onoff.table1 ~sigma2:1.) with sources = 4; capacity = 4. }
  in
  let p = Mmbm.partition onoff in
  Alcotest.(check (list int)) "zero variance" [ 0 ] p.Mmbm.zero_variance;
  Alcotest.(check (list int)) "zero drift" [ 4 ] p.Mmbm.zero;
  Alcotest.(check (list int)) "positive" [ 0; 1; 2; 3 ] p.Mmbm.positive;
  if p.Mmbm.mean_drift <= 0. then Alcotest.fail "undrained drift must be > 0";
  let pd = Mmbm.partition ~drain:10. onoff in
  Alcotest.(check (list int)) "drained positive" [] pd.Mmbm.positive;
  if pd.Mmbm.mean_drift >= 0. then Alcotest.fail "drained drift must be < 0"

(* ------------------------------------------------------------------ *)
(* QCheck2: mass and nonnegativity on random stable models              *)

let random_model_gen =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let* qrates = array_repeat (n * (n - 1)) (float_range 0.1 2.) in
    let* rates = array_repeat n (float_range (-3.) 3.) in
    let* variances = array_repeat n (float_range 0.5 2.) in
    let triplets = ref [] and k = ref 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          triplets := (i, j, qrates.(!k)) :: !triplets;
          incr k
        end
      done
    done;
    let generator = Generator.of_triplets ~states:n !triplets in
    (* shift the drifts so the stationary mean drift is exactly -0.5 *)
    let pi = Stationary.gth generator in
    let shift = Vec.dot pi rates +. 0.5 in
    let rates = Array.map (fun r -> r -. shift) rates in
    let initial = Array.init n (fun i -> if i = 0 then 1. else 0.) in
    return (Model.make ~generator ~rates ~variances ~initial))

let model_print (m : Model.t) =
  Printf.sprintf "n=%d rates=[%s] variances=[%s]" (Model.dim m)
    (String.concat ";"
       (Array.to_list (Array.map string_of_float m.Model.rates)))
    (String.concat ";"
       (Array.to_list (Array.map string_of_float m.Model.variances)))

let density_mass_property =
  QCheck2.Test.make ~count:25
    ~name:"stationary density: nonnegative, integrates to 1" ~print:model_print
    random_model_gen (fun model ->
      let r = Mmbm.solve ~validate:true model in
      (* marginal is a distribution *)
      check_close "marginal mass" 1. (Vec.sum r.Mmbm.marginal);
      Array.iter
        (fun m ->
          if m < -1e-12 then Alcotest.failf "negative marginal %g" m)
        r.Mmbm.marginal;
      (* the density is nonnegative wherever we look *)
      List.iter
        (fun x ->
          Array.iter
            (fun p ->
              if p < -1e-10 then Alcotest.failf "negative density %g at %g" p x)
            (Mmbm.density r x))
        [ 0.; 0.1; 0.5; 1.; 2.; 5.; 10.; 25. ];
      (* and integrates (quadrature) to 1. The decay rate of e^{Hx}
         depends on the draw, so pick the upper bound from the model's
         own cdf: double until the analytic tail mass is negligible,
         then the quadrature checks density/cdf consistency. *)
      let cdf_mass x = Vec.sum (Mmbm.cdf r x) in
      let rec bound b =
        if b > 1e7 then QCheck2.Test.fail_reportf "cdf mass never reaches 1"
        else if 1. -. cdf_mass b > 1e-10 then bound (2. *. b)
        else b
      in
      let b = bound 120. in
      let per_panel = 32 in
      let panels = 16 in
      let integral =
        (* composite quadrature: one high-order panel per dyadic slice
           so the mass near 0 is resolved even when b is large *)
        let acc = ref 0. in
        let lo = ref 0. in
        for k = 1 to panels do
          let hi = if k = panels then b else b *. float_of_int k /. float_of_int panels in
          acc :=
            !acc
            +. Quadrature.gauss_legendre ~f:(Mmbm.total_density r) ~a:!lo
                 ~b:hi ~n:per_panel;
          lo := hi
        done;
        !acc
      in
      if abs_float (integral -. 1.) > 1e-6 then
        QCheck2.Test.fail_reportf "density mass %.12g (expected 1, b=%g)"
          integral b;
      true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mmbm"
    [
      ( "closed forms",
        [
          Alcotest.test_case "exponential (1 state)" `Quick
            test_exponential_closed_form;
          Alcotest.test_case "spectral fluid solver (2 states)" `Quick
            test_matches_spectral_fluid_solver;
          Alcotest.test_case "zero-variance CTMC limit" `Quick
            test_zero_variance_limit_matches_ctmc;
        ] );
      ( "section 7 models",
        [
          Alcotest.test_case "ON-OFF reward rate vs randomization" `Quick
            test_onoff_reward_rate;
          Alcotest.test_case "machine repair reward rate vs randomization"
            `Quick test_machine_repair_reward_rate;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "structured MRM06x errors" `Quick
            test_structured_errors;
          Alcotest.test_case "drift partition" `Quick test_partition;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest density_mass_property ] );
    ]
