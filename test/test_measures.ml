(* Tests for the performability-measure modules: phase-type
   distributions, occupation time / interval availability, completion
   time (reward-clock duality), and the first-order fluid queue. *)

module Model = Mrm_core.Model
module Randomization = Mrm_core.Randomization
module Occupation = Mrm_core.Occupation
module Completion_time = Mrm_core.Completion_time
module Moment_bounds = Mrm_core.Moment_bounds
module Phase_type = Mrm_ctmc.Phase_type
module Generator = Mrm_ctmc.Generator
module Transient = Mrm_ctmc.Transient
module Absorption = Mrm_ctmc.Absorption
module First_order_fluid = Mrm_fluid.First_order_fluid
module Fluid = Mrm_fluid.Fluid
module Dense = Mrm_linalg.Dense
module Vec = Mrm_linalg.Vec
module Rng = Mrm_util.Rng
module Stats = Mrm_util.Stats

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

(* ------------------------------------------------------------------ *)
(* Phase-type                                                           *)

let erlang3 rate =
  let t_matrix =
    Dense.of_arrays
      [|
        [| -.rate; rate; 0. |];
        [| 0.; -.rate; rate |];
        [| 0.; 0.; -.rate |];
      |]
  in
  Phase_type.make ~alpha:[| 1.; 0.; 0. |] ~t_matrix

let test_ph_exponential () =
  let d =
    Phase_type.make ~alpha:[| 1. |]
      ~t_matrix:(Dense.of_arrays [| [| -2.5 |] |])
  in
  check_close "mean" 0.4 (Phase_type.mean d);
  check_close ~tol:1e-12 "variance" 0.16 (Phase_type.variance d);
  check_close ~tol:1e-12 "cdf" (1. -. exp (-2.5)) (Phase_type.cdf d 1.);
  check_close ~tol:1e-12 "pdf" (2.5 *. exp (-2.5)) (Phase_type.pdf d 1.)

let test_ph_erlang_closed_form () =
  let rate = 2. in
  let d = erlang3 rate in
  check_close ~tol:1e-12 "mean" 1.5 (Phase_type.mean d);
  check_close ~tol:1e-12 "variance" 0.75 (Phase_type.variance d);
  (* Erlang-3 cdf at x: 1 - e^{-rx}(1 + rx + (rx)^2/2). *)
  let x = 1.5 in
  let rx = rate *. x in
  check_close ~tol:1e-10 "cdf"
    (1. -. (exp (-.rx) *. (1. +. rx +. (rx *. rx /. 2.))))
    (Phase_type.cdf d x);
  (* Moments: E X^n = n! / rate^n * C(n+2, 2)-ish — use the recursion
     against the gamma moments E X^n = (n+2)!/2! / rate^n. *)
  check_close ~tol:1e-10 "m3"
    (Mrm_util.Special.factorial 5 /. 2. /. (rate ** 3.))
    (Phase_type.raw_moment d 3)

let test_ph_pdf_integrates_to_cdf () =
  let d = erlang3 1.3 in
  let x = 2.1 in
  let integral =
    Mrm_util.Quadrature.simpson ~f:(Phase_type.pdf d) ~a:0. ~b:x ~n:400
  in
  check_close ~tol:1e-8 "pdf integral" (Phase_type.cdf d x) integral

let test_ph_sampling_moments () =
  let d = erlang3 2. in
  let rng = Rng.create ~seed:5L () in
  let samples = Array.init 100_000 (fun _ -> Phase_type.sample d rng) in
  check_close ~tol:0.01 "sample mean" 1.5 (Stats.mean samples);
  check_close ~tol:0.02 "sample variance" 0.75 (Stats.variance samples)

let test_ph_atom_at_zero () =
  (* Deficient alpha: P(X = 0) = 0.3. *)
  let d =
    Phase_type.make ~alpha:[| 0.7 |]
      ~t_matrix:(Dense.of_arrays [| [| -1. |] |])
  in
  check_close ~tol:1e-12 "cdf(0) = atom" 0.3 (Phase_type.cdf d 0.);
  check_close ~tol:1e-12 "mean scales" 0.7 (Phase_type.mean d);
  let rng = Rng.create ~seed:6L () in
  let zeros = ref 0 in
  for _ = 1 to 20_000 do
    if Phase_type.sample d rng = 0. then incr zeros
  done;
  check_close ~tol:0.02 "sampled atom" 0.3 (float_of_int !zeros /. 20_000.)

let test_ph_of_absorbing_chain () =
  (* Hitting time of state 2 in 0 -> 1 -> 2: Erlang-like sum of two
     exponentials; mean matches Absorption.analyze. *)
  let g = Generator.of_triplets ~states:3 [ (0, 1, 1.5); (1, 2, 0.5) ] in
  let initial = [| 1.; 0.; 0. |] in
  let d = Phase_type.of_absorbing_chain g ~initial ~targets:[ 2 ] in
  Alcotest.(check int) "phases" 2 (Phase_type.phases d);
  check_close ~tol:1e-12 "mean = MTTA"
    (Absorption.mean_time_to_absorption g ~initial ~targets:[ 2 ])
    (Phase_type.mean d);
  (* Hypoexponential variance: 1/a^2 + 1/b^2. *)
  check_close ~tol:1e-12 "variance"
    ((1. /. (1.5 ** 2.)) +. (1. /. (0.5 ** 2.)))
    (Phase_type.variance d)

let test_ph_validation () =
  (match
     Phase_type.make ~alpha:[| 1. |]
       ~t_matrix:(Dense.of_arrays [| [| 1. |] |])
   with
  | _ -> Alcotest.fail "positive diagonal"
  | exception Invalid_argument _ -> ());
  (match
     Phase_type.make ~alpha:[| 0.5; 0.7 |]
       ~t_matrix:
         (Dense.of_arrays [| [| -1.; 0. |]; [| 0.; -1. |] |])
   with
  | _ -> Alcotest.fail "alpha mass"
  | exception Invalid_argument _ -> ());
  (* Singular T: no absorption. *)
  match
    Phase_type.make ~alpha:[| 1.; 0. |]
      ~t_matrix:(Dense.of_arrays [| [| -1.; 1. |]; [| 1.; -1. |] |])
  with
  | _ -> Alcotest.fail "no absorption"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Occupation / interval availability                                   *)

let two_state = Generator.of_triplets ~states:2 [ (0, 1, 2.); (1, 0, 3.) ]

let test_occupation_expected_time () =
  (* E time in state 0 = int_0^t p_0(u) du with the closed form of the
     2-state chain. *)
  let t = 1.3 in
  let a = 2. and b = 3. in
  let expected =
    (b /. (a +. b) *. t)
    +. (a /. (a +. b) *. (1. -. exp (-.(a +. b) *. t)) /. (a +. b))
  in
  check_close ~tol:1e-9 "occupation mean" expected
    (Occupation.expected_time_in two_state ~initial:[| 1.; 0. |]
       ~states:[ 0 ] ~t)

let test_occupation_complement () =
  (* Time in S plus time in complement = t. *)
  let t = 0.9 in
  let in_0 =
    Occupation.expected_time_in two_state ~initial:[| 1.; 0. |] ~states:[ 0 ]
      ~t
  in
  let in_1 =
    Occupation.expected_time_in two_state ~initial:[| 1.; 0. |] ~states:[ 1 ]
      ~t
  in
  check_close ~tol:1e-10 "partition" t (in_0 +. in_1)

let test_availability_moments_in_unit_range () =
  let moments =
    Occupation.interval_availability_moments two_state
      ~initial:[| 1.; 0. |] ~states:[ 0 ] ~t:2. ~order:4
  in
  check_close "m0" 1. moments.(0);
  for n = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "moment %d in (0,1)" n)
      true
      (moments.(n) > 0. && moments.(n) <= 1.);
    (* A(t) in [0,1] forces decreasing raw moments. *)
    if n > 1 then
      Alcotest.(check bool) "decreasing" true (moments.(n) <= moments.(n - 1))
  done

let test_availability_bounds_bracket_simulation () =
  let t = 2. in
  let initial = [| 1.; 0. |] in
  let points = [| 0.4; 0.55; 0.7 |] in
  let bounds =
    Occupation.availability_bounds two_state ~initial ~states:[ 0 ] ~t points
  in
  let model = Occupation.occupation_model two_state ~initial ~states:[ 0 ] in
  let rng = Rng.create ~seed:8L () in
  let samples = Mrm_core.Simulate.sample model rng ~t ~replicas:50_000 in
  Array.iteri
    (fun k x ->
      let empirical = Stats.empirical_cdf samples (x *. t) in
      let b = bounds.(k) in
      Alcotest.(check bool)
        (Printf.sprintf "bracket at %g" x)
        true
        (b.Moment_bounds.lower <= empirical +. 0.01
        && empirical -. 0.01 <= b.Moment_bounds.upper))
    points

let test_occupation_validation () =
  (match
     Occupation.occupation_model two_state ~initial:[| 1.; 0. |]
       ~states:[ 0; 0 ]
   with
  | _ -> Alcotest.fail "duplicate"
  | exception Invalid_argument _ -> ());
  match
    Occupation.occupation_model two_state ~initial:[| 1.; 0. |] ~states:[ 7 ]
  with
  | _ -> Alcotest.fail "range"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Completion time                                                      *)

let completion_model =
  Model.first_order ~generator:two_state ~rates:[| 2.; 0.5 |]
    ~initial:[| 1.; 0. |]

let test_completion_deterministic_single_state () =
  let g = Generator.of_triplets ~states:1 [] in
  let m = Model.first_order ~generator:g ~rates:[| 2. |] ~initial:[| 1. |] in
  let moments = Completion_time.moments m ~x:3. ~order:3 in
  check_close "m1" 1.5 moments.(1);
  check_close "m2" 2.25 moments.(2);
  check_close "m3" 3.375 moments.(3)

let test_completion_mean_vs_simulation () =
  (* Simulate hitting times directly on the primal process. *)
  let x = 1.5 in
  let analytic = Completion_time.mean completion_model ~x in
  let rng = Rng.create ~seed:15L () in
  let replicas = 40_000 in
  let exit_rates = Generator.exit_rates two_state in
  let sample_hit () =
    let rec go state clock reward =
      let rate = completion_model.Model.rates.(state) in
      let sojourn = Rng.exponential rng ~rate:exit_rates.(state) in
      if reward +. (rate *. sojourn) >= x then
        clock +. ((x -. reward) /. rate)
      else
        go (1 - state) (clock +. sojourn) (reward +. (rate *. sojourn))
    in
    go 0 0. 0.
  in
  let xs = Array.init replicas (fun _ -> sample_hit ()) in
  let se = sqrt (Stats.variance xs /. float_of_int replicas) in
  if abs_float (Stats.mean xs -. analytic) > 5. *. se then
    Alcotest.failf "completion mean %g vs simulated %g" analytic
      (Stats.mean xs)

let test_completion_duality_identity () =
  (* P(T_x <= t) = P(B(t) >= x). *)
  let x = 1.5 and t = 1.2 in
  let via_dual = Completion_time.cdf completion_model ~x ~t in
  let rng = Rng.create ~seed:16L () in
  let xs = Mrm_core.Simulate.sample completion_model rng ~t ~replicas:100_000 in
  let direct =
    Array.fold_left (fun acc v -> if v >= x then acc +. 1. else acc) 0. xs
    /. 100_000.
  in
  check_close ~tol:0.01 "duality" direct via_dual

let test_completion_requires_positive_rates () =
  let bad =
    Model.first_order ~generator:two_state ~rates:[| 2.; 0. |]
      ~initial:[| 1.; 0. |]
  in
  (match Completion_time.dual_model bad with
  | _ -> Alcotest.fail "zero rate"
  | exception Invalid_argument _ -> ());
  let second_order =
    Model.make ~generator:two_state ~rates:[| 2.; 1. |]
      ~variances:[| 1.; 0. |] ~initial:[| 1.; 0. |]
  in
  match Completion_time.dual_model second_order with
  | _ -> Alcotest.fail "second order"
  | exception Invalid_argument _ -> ()

let test_completion_dual_structure () =
  let dual = Completion_time.dual_model completion_model in
  (* Dual rates are reciprocals. *)
  check_close "dual rate 0" 0.5 (dual : Model.t).Model.rates.(0);
  check_close "dual rate 1" 2. (dual : Model.t).Model.rates.(1);
  (* Dual generator rows scaled by 1/r_i. *)
  let q = Generator.matrix (dual : Model.t).Model.generator in
  check_close "dual q01" 1. (Mrm_linalg.Sparse.get q 0 1);
  check_close "dual q10" 6. (Mrm_linalg.Sparse.get q 1 0)

(* ------------------------------------------------------------------ *)
(* First-order fluid                                                    *)

let ams_queue () =
  (* Single ON-OFF source, unit capacity: OFF drift -1, ON drift +1. *)
  let g = Generator.of_triplets ~states:2 [ (0, 1, 0.5); (1, 0, 1.0) ] in
  First_order_fluid.make ~generator:g ~rates:[| -1.; 1. |]

let test_fofluid_ams_closed_form () =
  let s = First_order_fluid.stationary (ams_queue ()) in
  (* Utilization rho = P(ON) * peak / capacity = 2/3; the classical
     single-source results: P(X > 0) = rho, decay eta = alpha/(p-c) -
     beta/c = 0.5, mean = rho/eta. *)
  (* ~1e-9 accuracy: the eigenvector inverse iteration nudges the
     eigenvalue off its exact location to keep the pencil solvable. *)
  check_close ~tol:1e-7 "decay" 0.5 (First_order_fluid.decay_rate s);
  check_close ~tol:1e-7 "P(X>0)" (2. /. 3.) (First_order_fluid.ccdf s 0.);
  check_close ~tol:1e-7 "atom" (1. /. 3.) (First_order_fluid.atom_at_zero s);
  check_close ~tol:1e-7 "mean" (4. /. 3.) (First_order_fluid.mean_level s);
  check_close ~tol:1e-7 "exponential ccdf"
    (2. /. 3. *. exp (-0.5))
    (First_order_fluid.ccdf s 1.)

let test_fofluid_up_state_boundary () =
  let s = First_order_fluid.stationary (ams_queue ()) in
  (* F_ON(0) = 0 (an up state cannot sit at an empty buffer). *)
  check_close ~tol:1e-10 "F_on(0)" 0.
    (First_order_fluid.joint_cdf s ~state:1 0.)

let test_fofluid_sigma_limit_of_second_order () =
  (* The second-order queue converges to the first-order one as
     sigma^2 -> 0. *)
  let g = Generator.of_triplets ~states:2 [ (0, 1, 0.5); (1, 0, 1.0) ] in
  let first = First_order_fluid.stationary (ams_queue ()) in
  let gap sigma2 =
    let q =
      Fluid.make ~generator:g ~rates:[| -1.; 1. |]
        ~variances:[| sigma2; sigma2 |]
    in
    let s = Fluid.stationary q in
    abs_float (Fluid.ccdf s 1. -. First_order_fluid.ccdf first 1.)
  in
  let coarse = gap 0.1 and fine = gap 0.001 in
  Alcotest.(check bool) "converging" true (fine < coarse /. 10.);
  Alcotest.(check bool) "close at 1e-3" true (fine < 1e-3)

let test_fofluid_validation () =
  let g = Generator.of_triplets ~states:2 [ (0, 1, 0.5); (1, 0, 1.0) ] in
  (match First_order_fluid.make ~generator:g ~rates:[| 0.; 1. |] with
  | _ -> Alcotest.fail "zero rate"
  | exception Invalid_argument _ -> ());
  match First_order_fluid.make ~generator:g ~rates:[| 1.; 1. |] with
  | _ -> Alcotest.fail "unstable"
  | exception Invalid_argument _ -> ()

let test_fofluid_three_state () =
  (* Two independent-ish sources folded into a 3-state chain; checks the
     multi-up-state boundary bookkeeping. *)
  let g =
    Generator.of_triplets ~states:3
      [ (0, 1, 1.); (1, 0, 2.); (1, 2, 0.5); (2, 1, 2.) ]
  in
  let q = First_order_fluid.make ~generator:g ~rates:[| -2.; 0.5; 3. |] in
  let s = First_order_fluid.stationary q in
  check_close ~tol:1e-8 "F(inf) mass" 1. (First_order_fluid.cdf s 500.);
  (* Up-state boundaries vanish. *)
  check_close ~tol:1e-9 "F_1(0)" 0. (First_order_fluid.joint_cdf s ~state:1 0.);
  check_close ~tol:1e-9 "F_2(0)" 0. (First_order_fluid.joint_cdf s ~state:2 0.);
  Alcotest.(check bool) "atom positive" true
    (First_order_fluid.atom_at_zero s > 0.);
  (* Mean consistent with the ccdf integral. *)
  let integral =
    Mrm_util.Quadrature.simpson
      ~f:(First_order_fluid.ccdf s)
      ~a:0. ~b:200. ~n:4000
  in
  check_close ~tol:1e-6 "mean = integral" integral
    (First_order_fluid.mean_level s)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "measures"
    [
      ( "phase_type",
        [
          Alcotest.test_case "exponential" `Quick test_ph_exponential;
          Alcotest.test_case "Erlang closed form" `Quick
            test_ph_erlang_closed_form;
          Alcotest.test_case "pdf integrates to cdf" `Quick
            test_ph_pdf_integrates_to_cdf;
          Alcotest.test_case "sampling moments" `Slow
            test_ph_sampling_moments;
          Alcotest.test_case "atom at zero" `Quick test_ph_atom_at_zero;
          Alcotest.test_case "of absorbing chain" `Quick
            test_ph_of_absorbing_chain;
          Alcotest.test_case "validation" `Quick test_ph_validation;
        ] );
      ( "occupation",
        [
          Alcotest.test_case "expected time closed form" `Quick
            test_occupation_expected_time;
          Alcotest.test_case "complement partition" `Quick
            test_occupation_complement;
          Alcotest.test_case "availability moments" `Quick
            test_availability_moments_in_unit_range;
          Alcotest.test_case "availability bounds" `Slow
            test_availability_bounds_bracket_simulation;
          Alcotest.test_case "validation" `Quick test_occupation_validation;
        ] );
      ( "completion_time",
        [
          Alcotest.test_case "deterministic" `Quick
            test_completion_deterministic_single_state;
          Alcotest.test_case "mean vs simulation" `Slow
            test_completion_mean_vs_simulation;
          Alcotest.test_case "duality identity" `Slow
            test_completion_duality_identity;
          Alcotest.test_case "positive rates required" `Quick
            test_completion_requires_positive_rates;
          Alcotest.test_case "dual structure" `Quick
            test_completion_dual_structure;
        ] );
      ( "first_order_fluid",
        [
          Alcotest.test_case "AMS closed form" `Quick
            test_fofluid_ams_closed_form;
          Alcotest.test_case "up-state boundary" `Quick
            test_fofluid_up_state_boundary;
          Alcotest.test_case "sigma->0 limit" `Quick
            test_fofluid_sigma_limit_of_second_order;
          Alcotest.test_case "validation" `Quick test_fofluid_validation;
          Alcotest.test_case "three-state" `Quick test_fofluid_three_state;
        ] );
    ]
