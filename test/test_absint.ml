(* Tests for the abstract-interpretation pass (Mrm_analysis.Absint +
   Numdom): domain unit tests, the SRC020-SRC024 fixture pairs under
   synthetic paths, the write-range proof over the repository's own
   kernels, Callgraph resolution, the rule-registry/README agreement,
   and the QCheck2 cross-check of statically proven kernel shapes
   against the dynamic race checker. *)

module Lint = Mrm_analysis.Lint
module Absint = Mrm_analysis.Absint
module N = Mrm_analysis.Numdom
module Callgraph = Mrm_analysis.Callgraph
module Cfg = Mrm_analysis.Cfg
module Diagnostics = Mrm_check.Diagnostics
module Pool = Mrm_engine.Pool
module Partition = Mrm_engine.Partition
module Kernel = Mrm_engine.Kernel
module Racecheck = Mrm_engine.Racecheck

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture name = read_file (Filename.concat "fixtures/src" name)
let codes findings = List.map (fun (f : Lint.finding) -> f.Lint.code) findings
let lint_fixture ~path name = Lint.lint_source ~path (fixture name)

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Numdom: symbolic linear entailment and the interval lattices         *)

let test_lin_entailment () =
  let lo = N.lin_sym 0 and hi = N.lin_sym 1 in
  (* the assumption set of a range site: hi - lo >= 0 and lo >= 0 *)
  let assume = [ N.lin_sub hi lo; lo ] in
  Alcotest.(check bool) "hi - lo >= 0" true
    (N.lin_nonneg ~assume (N.lin_sub hi lo));
  Alcotest.(check bool) "hi >= 0 uses both assumptions" true
    (N.lin_nonneg ~assume hi);
  Alcotest.(check bool) "hi - lo - 1 is not provable" false
    (N.lin_nonneg ~assume (N.lin_add_const (-1) (N.lin_sub hi lo)));
  Alcotest.(check bool) "constant 3 >= 0" true
    (N.lin_nonneg ~assume:[] (N.lin_const 3));
  Alcotest.(check bool) "constant -1 < 0" false
    (N.lin_nonneg ~assume:[] (N.lin_const (-1)));
  Alcotest.(check (option int)) "lo + (hi - lo) collapses to hi"
    (N.lin_is_const (N.lin_sub (N.lin_add lo (N.lin_sub hi lo)) hi))
    (Some 0)

let test_iv_range_proof () =
  let lo = N.lin_sym 0 and hi = N.lin_sym 1 in
  let assume = [ N.lin_sub hi lo; lo ] in
  let ob_lo = N.Lin lo and ob_hi = N.Lin (N.lin_add_const (-1) hi) in
  let inside = N.iv_range ob_lo ob_hi in
  Alcotest.(check bool) "[lo, hi-1] within the obligation" true
    (N.iv_subset ~assume inside ~lo:ob_lo ~hi:ob_hi);
  let off_by_one = N.iv_range (N.Lin lo) (N.Lin hi) in
  Alcotest.(check bool) "[lo, hi] is rejected" false
    (N.iv_subset ~assume off_by_one ~lo:ob_lo ~hi:ob_hi)

let test_iv_lattice () =
  let c a b = N.iv_range (N.Lin (N.lin_const a)) (N.Lin (N.lin_const b)) in
  let s iv = N.iv_to_string ~names:(fun _ -> "?") iv in
  Alcotest.(check string) "add" (s (c 11 22)) (s (N.iv_add (c 1 2) (c 10 20)));
  Alcotest.(check string) "sub" (s (c (-19) (-8)))
    (s (N.iv_sub (c 1 2) (c 10 20)));
  Alcotest.(check string) "join" (s (c 0 5)) (s (N.iv_join (c 0 1) (c 4 5)));
  Alcotest.(check bool) "widening opens the moving bound" true
    ((N.iv_widen ~old:(c 0 1) (c 0 2)).N.ihi = N.Pinf);
  Alcotest.(check bool) "widening keeps the stable bound" true
    ((N.iv_widen ~old:(c 0 1) (c 0 2)).N.ilo = N.Lin (N.lin_const 0));
  Alcotest.(check bool) "contains zero" true (N.iv_contains_zero (c (-1) 1));
  Alcotest.(check bool) "positive excludes zero" false
    (N.iv_contains_zero (c 1 5));
  Alcotest.(check string) "meet upper" (s (c 0 3))
    (s (N.iv_meet_upper (c 0 9) (N.Lin (N.lin_const 3))))

let test_fv_lattice () =
  Alcotest.(check bool) "0.5 - 0.5 may be zero" true
    (N.fv_may_zero (N.fv_sub (N.fv_const 0.5) (N.fv_const 0.5)));
  Alcotest.(check bool) "constant 1 cannot" false
    (N.fv_may_zero (N.fv_const 1.));
  let j = N.fv_join (N.fv_const 1.) (N.fv_const 2.) in
  Alcotest.(check bool) "join keeps provably-nonzero" false (N.fv_may_zero j);
  Alcotest.(check bool) "join spans both points" true
    (j.N.flo <= 1. && j.N.fhi >= 2.);
  Alcotest.(check bool) "wire float may be NaN" true N.fv_nan.N.fnan;
  Alcotest.(check bool) "NaN propagates through add" true
    (N.fv_add N.fv_nan (N.fv_const 1.)).N.fnan;
  Alcotest.(check bool) "sqrt of a negative may be NaN" true
    (N.fv_sqrt (N.fv_const (-1.))).N.fnan;
  Alcotest.(check bool) "sqrt of a positive is clean" false
    (N.fv_sqrt (N.fv_const 4.)).N.fnan;
  Alcotest.(check bool) "[-1, 1] may be nonpositive" true
    (N.fv_may_nonpos (N.fv_range (-1.) 1.));
  Alcotest.(check bool) "nonzero [0, 1] is not" false
    (N.fv_may_nonpos { (N.fv_range 0. 1.) with N.nz = true });
  let w = N.fv_widen ~old:(N.fv_const 0.) (N.fv_range 0. 1.) in
  Alcotest.(check bool) "float widening opens the moving bound" true
    ((not (Float.is_finite w.N.fhi)) && w.N.fhi > 0.);
  Alcotest.(check bool) "float widening keeps the stable bound" true
    (w.N.flo >= 0.)

(* ------------------------------------------------------------------ *)
(* Callgraph: resolution conventions, shadowing, blocking frontier      *)

let test_callgraph_resolve_name () =
  Alcotest.(check string) "last components" "Pool.run"
    (Callgraph.last_components 2 "Mrm_engine.Pool.run");
  let table =
    [ ("Pool.run", 1); ("A.helper", 2); ("B.helper", 3); ("Mrm_x.Deep.fn", 4) ]
  in
  let find k = List.assoc_opt k table in
  let r = Callgraph.resolve_name find in
  Alcotest.(check (option int)) "qualified matches by last two" (Some 1)
    (r ~current_module:"A" "Mrm_engine.Pool.run");
  Alcotest.(check (option int)) "qualified falls back to verbatim" (Some 4)
    (r ~current_module:"A" "Mrm_x.Deep.fn");
  Alcotest.(check (option int)) "unqualified in own module" (Some 2)
    (r ~current_module:"A" "helper");
  Alcotest.(check (option int)) "shadowing: same bare name, other module"
    (Some 3)
    (r ~current_module:"B" "helper");
  Alcotest.(check (option int)) "unqualified never crosses modules" None
    (r ~current_module:"C" "helper")

let parse_impl name src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf name;
  Parse.implementation lexbuf

let test_callgraph_over_cfgs () =
  let _, ga =
    Cfg.build ~file:"lib/util/aa.ml"
      (parse_impl "aa.ml" "let helper x = x + 1\nlet caller y = helper y\n")
  in
  let _, gb =
    Cfg.build ~file:"lib/util/bb.ml"
      (parse_impl "bb.ml" "let helper x = x * 2\n")
  in
  let t = Callgraph.build (ga @ gb) in
  let name m c =
    match Callgraph.resolve t ~current_module:m c with
    | Some cfg -> cfg.Cfg.name
    | None -> "<unresolved>"
  in
  Alcotest.(check string) "own module wins" "Aa.helper" (name "Aa" "helper");
  Alcotest.(check string) "shadowed twin stays local" "Bb.helper"
    (name "Bb" "helper");
  Alcotest.(check string) "qualified crosses modules" "Bb.helper"
    (name "Aa" "Bb.helper");
  Alcotest.(check string) "externals stay unresolved" "<unresolved>"
    (name "Aa" "List.map")

let test_blocking_frontier () =
  Alcotest.(check bool) "Unix.read blocks" true
    (Callgraph.is_blocking "Unix.read");
  Alcotest.(check bool) "fully qualified prefix blocks" true
    (Callgraph.is_blocking "Stdlib.Unix.read");
  Alcotest.(check bool) "Db.query does not" false
    (Callgraph.is_blocking "Db.query");
  Alcotest.(check bool) "--blocking extends the frontier" true
    (Callgraph.is_blocking
       ~frontier:("Db.query" :: Callgraph.default_blocking)
       "Db.query")

(* ------------------------------------------------------------------ *)
(* SRC020-SRC024: one defective/clean fixture pair per rule             *)

let check_pair ~path ~code ~lines defective clean =
  let got = lint_fixture ~path defective in
  Alcotest.(check (list string))
    (defective ^ " codes")
    (List.map (fun _ -> code) lines)
    (codes got);
  Alcotest.(check (list int))
    (defective ^ " lines") lines
    (List.map (fun (f : Lint.finding) -> f.Lint.line) got);
  Alcotest.(check (list string))
    (clean ^ " is silent") []
    (codes (lint_fixture ~path clean))

let test_src020_range_write () =
  check_pair ~path:"lib/util/fake.ml" ~code:"SRC020" ~lines:[ 5 ]
    "src_absint_range.ml" "src_absint_range_ok.ml"

let test_src021_division () =
  check_pair ~path:"lib/util/fake.ml" ~code:"SRC021" ~lines:[ 5 ]
    "src_absint_div.ml" "src_absint_div_ok.ml"

let test_src022_bounds () =
  check_pair ~path:"lib/linalg/fake.ml" ~code:"SRC022" ~lines:[ 6; 7 ]
    "src_absint_bounds.ml" "src_absint_bounds_ok.ml";
  (* the bounds rule is hot-path-only: the same defective source is
     silent under a cold classification *)
  Alcotest.(check (list string))
    "cold path is silent" []
    (codes (lint_fixture ~path:"lib/util/fake.ml" "src_absint_bounds.ml"))

let test_src023_nan_compare () =
  check_pair ~path:"lib/util/fake.ml" ~code:"SRC023" ~lines:[ 5 ]
    "src_absint_nan.ml" "src_absint_nan_ok.ml"

let test_src024_probability () =
  check_pair ~path:"lib/util/fake.ml" ~code:"SRC024" ~lines:[ 4 ]
    "src_absint_prob.ml" "src_absint_prob_ok.ml"

let test_src02x_severities () =
  let severity code =
    let _, s, _ = List.find (fun (c, _, _) -> c = code) Lint.rule_table in
    s
  in
  Alcotest.(check bool) "SRC020 is an error" true
    (severity "SRC020" = Diagnostics.Error);
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " is a warning") true
        (severity code = Diagnostics.Warning))
    [ "SRC021"; "SRC022"; "SRC023"; "SRC024" ]

let test_fuel_exhaustion () =
  let parsed =
    [ Lint.parse_source ~path:"lib/util/fake.ml" (fixture "src_absint_div.ml") ]
  in
  let findings, stats = Lint.absint ~fuel:5 parsed in
  Alcotest.(check (list string))
    "exhaustion aborts without findings" [] (codes findings);
  Alcotest.(check bool) "exhaustion is counted" true
    (stats.Absint.st_fuel_exhausted >= 1);
  let findings, stats = Lint.absint parsed in
  Alcotest.(check int) "default fuel suffices" 0
    stats.Absint.st_fuel_exhausted;
  Alcotest.(check (list string)) "and the finding lands" [ "SRC021" ]
    (codes findings)

(* ------------------------------------------------------------------ *)
(* Registry agreement: rule_docs, README, fixtures                      *)

let test_rule_docs_registry () =
  let table = List.map (fun (c, _, _) -> c) Lint.rule_table in
  let docs = List.map (fun (c, _, _) -> c) Lint.rule_docs in
  Alcotest.(check (list string)) "rule_docs covers rule_table exactly"
    (List.sort compare table) (List.sort compare docs);
  List.iter
    (fun (code, doc, example) ->
      Alcotest.(check bool) (code ^ " has a real paragraph") true
        (String.length doc > 80);
      Alcotest.(check bool) (code ^ " has an example") true
        (String.length example > 0))
    Lint.rule_docs

let absint_fixture_of = function
  | "SRC020" -> Some "src_absint_range.ml"
  | "SRC021" -> Some "src_absint_div.ml"
  | "SRC022" -> Some "src_absint_bounds.ml"
  | "SRC023" -> Some "src_absint_nan.ml"
  | "SRC024" -> Some "src_absint_prob.ml"
  | _ -> None

let test_examples_live_in_fixtures () =
  List.iter
    (fun (code, _, example) ->
      match absint_fixture_of code with
      | None -> ()
      | Some name ->
          Alcotest.(check bool)
            (code ^ " example is a verbatim fixture line")
            true
            (contains_sub ~sub:example (fixture name)))
    Lint.rule_docs

let find_repo_root () =
  let rec up acc dir =
    let candidate =
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lint/src_baseline.txt")
      && Sys.is_directory (Filename.concat dir "lib")
    in
    let acc = if candidate then Some dir else acc in
    let parent = Filename.dirname dir in
    if String.equal parent dir then acc else up acc parent
  in
  up None (Sys.getcwd ())

let test_readme_table_agrees () =
  match find_repo_root () with
  | None -> print_endline "README check skipped: repository root not found"
  | Some root ->
      let readme = read_file (Filename.concat root "README.md") in
      let rows =
        String.split_on_char '\n' readme
        |> List.filter_map (fun line ->
               match String.split_on_char '|' line with
               | _ :: code :: severity :: _
                 when contains_sub ~sub:"SRC" code ->
                   Some (String.trim code, String.trim severity)
               | _ -> None)
      in
      Alcotest.(check bool) "README documents a rule table" true
        (List.length rows > 0);
      let registry =
        List.map
          (fun (c, s, _) -> (c, Diagnostics.severity_label s))
          Lint.rule_table
      in
      List.iter
        (fun (code, sev) ->
          match List.assoc_opt code registry with
          | None -> Alcotest.failf "README documents unknown rule %s" code
          | Some expected ->
              Alcotest.(check string) (code ^ " severity agrees") expected sev)
        rows;
      List.iter
        (fun (code, _) ->
          Alcotest.(check bool) (code ^ " appears in README") true
            (List.mem_assoc code rows))
        registry

(* ------------------------------------------------------------------ *)
(* The proof obligation over the repository's own kernels               *)

let test_repo_kernels_proven () =
  match find_repo_root () with
  | None -> print_endline "kernel proof skipped: repository root not found"
  | Some root ->
      let cwd = Sys.getcwd () in
      Fun.protect
        ~finally:(fun () -> Sys.chdir cwd)
        (fun () ->
          Sys.chdir root;
          let parsed = Lint.parse_files (Lint.discover [ "lib" ]) in
          let findings, stats = Lint.absint parsed in
          Alcotest.(check (list string))
            "no SRC020 across lib" []
            (codes
               (List.filter (fun (f : Lint.finding) -> f.code = "SRC020")
                  findings));
          let sites_in file =
            List.filter
              (fun (s : Absint.kernel_site) ->
                Filename.basename s.Absint.ks_file = file)
              stats.Absint.st_sites
          in
          let all_proven what sites =
            List.iter
              (fun (s : Absint.kernel_site) ->
                if s.Absint.ks_status <> Absint.Proven then
                  Alcotest.failf "%s %s:%d (%s) not proven" what
                    s.Absint.ks_file s.Absint.ks_line s.Absint.ks_runner)
              sites
          in
          let rand = sites_in "randomization.ml" in
          let kern = sites_in "kernel.ml" in
          all_proven "randomization" rand;
          all_proven "kernel" kern;
          (* the paper-scale fused sweep plus the eight engine kernels *)
          Alcotest.(check int) "randomization.ml sites" 1 (List.length rand);
          Alcotest.(check int) "kernel.ml sites" 8 (List.length kern);
          let by status =
            List.length
              (List.filter
                 (fun (s : Absint.kernel_site) -> s.Absint.ks_status = status)
                 stats.Absint.st_sites)
          in
          Alcotest.(check bool) "at least the 11 known sites proven" true
            (by Absint.Proven >= 11);
          Alcotest.(check int) "no flagged site in lib" 0 (by Absint.Flagged);
          Alcotest.(check int) "no unknown site in lib" 0 (by Absint.Unknown);
          (* record the proofs next to the dynamic checker's counters *)
          let m = Mrm_obs.Metrics.counter "racecheck.statically_proven" in
          let before = Mrm_obs.Metrics.count m in
          Racecheck.note_statically_proven ~count:(by Absint.Proven) ();
          Alcotest.(check int) "statically_proven counter"
            (before + by Absint.Proven)
            (Mrm_obs.Metrics.count m))

(* ------------------------------------------------------------------ *)
(* Cross-check: proven kernel shapes vs the dynamic race checker        *)

(* The kernel bodies the pass proves all write [lo, hi) slices of a
   partition; under MRM2_RACECHECK=1 the same convention is validated
   dynamically. Run the proven runner shapes over randomized
   partitions with the checker armed: no Race may fire and the results
   must be complete. *)
let prop_proven_shapes_race_clean =
  QCheck2.Test.make ~count:30
    ~name:"proven kernel shapes run clean under the race checker"
    ~print:(fun (rows, parts) -> Printf.sprintf "rows=%d parts=%d" rows parts)
    QCheck2.Gen.(
      let* rows = int_range 0 300 in
      let* parts = int_range 1 8 in
      return (rows, parts))
    (fun (rows, parts) ->
      Racecheck.set_enabled (Some true);
      Fun.protect
        ~finally:(fun () -> Racecheck.set_enabled None)
        (fun () ->
          Pool.with_pool ~jobs:2 (fun pool ->
              let part = Partition.uniform ~parts ~rows in
              let filled = Array.make rows (-1.) in
              Kernel.for_ranges pool part (fun lo hi ->
                  for i = lo to hi - 1 do
                    filled.(i) <- float_of_int i
                  done);
              let acc = Array.make rows 0. in
              Kernel.sweep (Some pool) part ~rounds:2
                (fun ~round:_ ~lo ~hi ->
                  for i = lo to hi - 1 do
                    acc.(i) <- acc.(i) +. 1.
                  done);
              Array.for_all (fun v -> v >= 0.) filled
              && Array.for_all (fun v -> v > 1.5 && v < 2.5) acc)))

let test_racecheck_trips_on_overlap () =
  Racecheck.set_enabled (Some true);
  Fun.protect
    ~finally:(fun () -> Racecheck.set_enabled None)
    (fun () ->
      let part = Partition.of_ranges ~rows:10 [| (0, 6); (4, 10) |] in
      Pool.with_pool ~jobs:2 (fun pool ->
          match Kernel.for_ranges pool part (fun _ _ -> ()) with
          | () -> Alcotest.fail "overlapping partition not detected"
          | exception Racecheck.Race _ -> ()))

let () =
  Alcotest.run "absint"
    [
      ( "numdom",
        [
          Alcotest.test_case "linear entailment" `Quick test_lin_entailment;
          Alcotest.test_case "range proof" `Quick test_iv_range_proof;
          Alcotest.test_case "integer lattice" `Quick test_iv_lattice;
          Alcotest.test_case "float lattice" `Quick test_fv_lattice;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "resolve_name conventions" `Quick
            test_callgraph_resolve_name;
          Alcotest.test_case "resolution over graphs" `Quick
            test_callgraph_over_cfgs;
          Alcotest.test_case "blocking frontier" `Quick test_blocking_frontier;
        ] );
      ( "rules",
        [
          Alcotest.test_case "SRC020 kernel write range" `Quick
            test_src020_range_write;
          Alcotest.test_case "SRC021 division" `Quick test_src021_division;
          Alcotest.test_case "SRC022 bounds" `Quick test_src022_bounds;
          Alcotest.test_case "SRC023 NaN compare" `Quick test_src023_nan_compare;
          Alcotest.test_case "SRC024 probability" `Quick test_src024_probability;
          Alcotest.test_case "SRC02x severities" `Quick test_src02x_severities;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
        ] );
      ( "registry",
        [
          Alcotest.test_case "rule_docs matches rule_table" `Quick
            test_rule_docs_registry;
          Alcotest.test_case "examples live in fixtures" `Quick
            test_examples_live_in_fixtures;
          Alcotest.test_case "README table agrees" `Quick
            test_readme_table_agrees;
        ] );
      ( "kernel-proofs",
        [
          Alcotest.test_case "repository kernels proven" `Quick
            test_repo_kernels_proven;
          QCheck_alcotest.to_alcotest prop_proven_shapes_race_clean;
          Alcotest.test_case "checker trips on overlap" `Quick
            test_racecheck_trips_on_overlap;
        ] );
    ]
