(* Tests for the static verification layer (mrm_check): structured
   diagnostics, Tarjan SCC, the model checks themselves, the solvers'
   ?validate wiring, the log-space unshift satellite, and the mrm2 lint
   CLI on the committed fixtures. *)

module Check = Mrm_check.Check
module Diagnostics = Mrm_check.Diagnostics
module Scc = Mrm_check.Scc
module Model = Mrm_core.Model
module Model_io = Mrm_core.Model_io
module Randomization = Mrm_core.Randomization
module Moments_ode = Mrm_core.Moments_ode
module Onoff = Mrm_models.Onoff
module Generator = Mrm_ctmc.Generator
module Sparse = Mrm_linalg.Sparse
module Special = Mrm_util.Special

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

let codes report = Diagnostics.codes report
let has code report = List.mem code (codes report)

let expect_code name code report =
  if not (has code report) then
    Alcotest.failf "%s: expected %s in [%s]" name code
      (String.concat "; " (codes report))

let expect_clean name report =
  if report <> [] then
    Alcotest.failf "%s: expected no findings, got [%s]" name
      (String.concat "; " (codes report))

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                          *)

let test_diagnostics_severity_order () =
  let report =
    [
      Diagnostics.info ~code:"MRM032" "note";
      Diagnostics.error ~code:"MRM004" "bad";
      Diagnostics.warning ~code:"MRM030" "meh";
    ]
  in
  (match Diagnostics.by_severity report with
  | [ a; b; c ] ->
      Alcotest.(check string) "error first" "MRM004" a.Diagnostics.code;
      Alcotest.(check string) "warning second" "MRM030" b.Diagnostics.code;
      Alcotest.(check string) "info last" "MRM032" c.Diagnostics.code
  | _ -> Alcotest.fail "expected three diagnostics");
  Alcotest.(check bool) "has_errors" true (Diagnostics.has_errors report);
  Alcotest.(check int) "warning count" 1
    (Diagnostics.count Diagnostics.Warning report)

let test_diagnostics_renderings () =
  let d =
    Diagnostics.error ~code:"MRM004"
      ~context:[ ("row", "2"); ("sum", "0.5") ]
      "row 2 sums to 0.5"
  in
  Alcotest.(check string)
    "sexp"
    "(diagnostic (severity error) (code MRM004) (message \"row 2 sums to \
     0.5\") (context (row 2) (sum 0.5)))"
    (Diagnostics.to_sexp d);
  Alcotest.(check string)
    "json"
    "{\"severity\":\"error\",\"code\":\"MRM004\",\"message\":\"row 2 sums \
     to 0.5\",\"context\":{\"row\":\"2\",\"sum\":\"0.5\"}}"
    (Diagnostics.to_json d);
  Alcotest.(check string)
    "human" "error MRM004: row 2 sums to 0.5 [row=2 sum=0.5]"
    (Format.asprintf "%a" Diagnostics.pp d)

let test_diagnostics_codes_dedup () =
  let report =
    [
      Diagnostics.error ~code:"MRM002" "a";
      Diagnostics.error ~code:"MRM002" "b";
      Diagnostics.error ~code:"MRM011" "c";
    ]
  in
  Alcotest.(check (list string)) "dedup" [ "MRM002"; "MRM011" ] (codes report)

(* ------------------------------------------------------------------ *)
(* Scc                                                                  *)

let sparse_of triplets ~n = Sparse.of_triplets ~rows:n ~cols:n triplets

let test_scc_cycle () =
  let m = sparse_of ~n:3 [ (0, 1, 1.); (1, 2, 1.); (2, 0, 1.) ] in
  let c = Scc.of_sparse m in
  Alcotest.(check int) "one component" 1 c.Scc.count;
  Alcotest.(check (list int)) "no absorbing" [] (Scc.absorbing_states m)

let test_scc_one_way_chain () =
  (* 0 -> 1 -> 2: three singleton components, ids in reverse topological
     order (the sink gets the smallest id). *)
  let m = sparse_of ~n:3 [ (0, 1, 1.); (1, 2, 1.) ] in
  let c = Scc.of_sparse m in
  Alcotest.(check int) "three components" 3 c.Scc.count;
  Alcotest.(check bool) "sink before source" true
    (c.Scc.component.(2) < c.Scc.component.(1)
    && c.Scc.component.(1) < c.Scc.component.(0));
  Alcotest.(check (list int)) "absorbing sink" [ 2 ] (Scc.absorbing_states m);
  Alcotest.(check (list int))
    "only the sink class is closed"
    [ c.Scc.component.(2) ]
    (Scc.closed_components m c);
  let from0 = Scc.reachable m ~from:[ 0 ] in
  Alcotest.(check bool) "all reachable from 0" true
    (Array.for_all Fun.id from0);
  let from2 = Scc.reachable m ~from:[ 2 ] in
  Alcotest.(check (list bool))
    "only 2 from 2" [ false; false; true ]
    (Array.to_list from2)

let test_scc_large_chain_no_stack_overflow () =
  (* The paper's Table-2 shape: a long birth-death chain. A recursive
     Tarjan would blow the stack here; the iterative one must not. *)
  let n = 100_000 in
  let g =
    Generator.birth_death ~states:n ~birth:(fun _ -> 1.) ~death:(fun _ -> 2.)
  in
  let c = Scc.of_sparse (Generator.matrix g) in
  Alcotest.(check int) "irreducible" 1 c.Scc.count

(* ------------------------------------------------------------------ *)
(* Check: happy path                                                    *)

let valid_model ?(sigma2 = 1.) () = Onoff.model (Onoff.table1 ~sigma2)

let test_check_valid_model_clean () =
  let report = Check.check (Model.check_data (valid_model ())) in
  expect_clean "table 1 model" report

let test_check_valid_fixture_roundtrip () =
  (* The committed lint fixture must stay clean. *)
  let { Model_io.model; _ } = Model_io.load "fixtures/valid_onoff.mrm" in
  expect_clean "valid_onoff.mrm" (Check.check (Model.check_data model))

(* ------------------------------------------------------------------ *)
(* Check: each diagnostic code triggers                                 *)

let base_data () =
  Check.of_triplets ~states:2
    ~transitions:[ (0, 1, 1.); (1, 0, 2.) ]
    ~rates:[| 1.; -1. |] ~variances:[| 0.5; 1. |] ~initial:[| 1.; 0. |]

let test_check_generator_codes () =
  let nan_entry =
    Check.data
      ~q_matrix:(sparse_of ~n:2 [ (0, 1, Float.nan); (1, 0, 1.); (1, 1, -1.) ])
      ~rates:[| 0.; 0. |] ~variances:[| 0.; 0. |] ~initial:[| 1.; 0. |]
  in
  expect_code "nan entry" "MRM001" (Check.check_generator nan_entry);
  let negative = { (base_data ()) with Check.states = 2 } in
  let negative =
    {
      negative with
      Check.q_matrix = sparse_of ~n:2 [ (0, 0, 0.5); (0, 1, -0.5); (1, 0, 1.); (1, 1, -1.) ];
    }
  in
  let report = Check.check_generator negative in
  expect_code "negative off-diagonal" "MRM002" report;
  expect_code "positive diagonal" "MRM003" report;
  let bad_row_sum =
    Check.data
      ~q_matrix:(sparse_of ~n:2 [ (0, 0, -1.); (0, 1, 2.); (1, 0, 1.); (1, 1, -1.) ])
      ~rates:[| 0.; 0. |] ~variances:[| 0.; 0. |] ~initial:[| 1.; 0. |]
  in
  let report = Check.check_generator bad_row_sum in
  expect_code "row sum" "MRM004" report;
  (* The diagnostic names the offending row. *)
  let mrm004 =
    List.find (fun d -> d.Diagnostics.code = "MRM004") report
  in
  Alcotest.(check (option string))
    "row index in context" (Some "0")
    (List.assoc_opt "row" mrm004.Diagnostics.context)

let test_check_reward_codes () =
  let data = { (base_data ()) with Check.rates = [| Float.nan; 0. |] } in
  expect_code "nan drift" "MRM010" (Check.check_rewards data);
  let data = { (base_data ()) with Check.variances = [| -0.25; 0. |] } in
  expect_code "negative variance" "MRM011" (Check.check_rewards data);
  let data =
    { (base_data ()) with Check.variances = [| Float.infinity; 0. |] }
  in
  expect_code "infinite variance" "MRM012" (Check.check_rewards data)

let test_check_initial_codes () =
  let data = { (base_data ()) with Check.initial = [| 1.5; -0.5 |] } in
  let report = Check.check_initial data in
  expect_code "entry outside [0,1]" "MRM020" report;
  let data = { (base_data ()) with Check.initial = [| 0.25; 0.25 |] } in
  expect_code "mass" "MRM021" (Check.check_initial data)

let test_check_dimension_code () =
  let data = { (base_data ()) with Check.rates = [| 1. |] } in
  let report = Check.check data in
  expect_code "rate length" "MRM005" report;
  Alcotest.(check bool) "errors" true (Diagnostics.has_errors report)

let test_check_structure_codes () =
  (* State 2 feeds into the chain but nothing reaches it. *)
  let unreachable =
    Check.of_triplets ~states:3
      ~transitions:[ (0, 1, 1.); (1, 0, 1.); (2, 0, 1.) ]
      ~rates:[| 0.; 0.; 0. |] ~variances:[| 0.; 0.; 0. |]
      ~initial:[| 1.; 0.; 0. |]
  in
  let report = Check.check_structure unreachable in
  expect_code "unreachable" "MRM030" report;
  expect_code "reducible" "MRM032" report;
  (* Absorbing state: 1 has no way out. *)
  let absorbing =
    Check.of_triplets ~states:2
      ~transitions:[ (0, 1, 1.) ]
      ~rates:[| 0.; 0. |] ~variances:[| 0.; 0. |] ~initial:[| 1.; 0. |]
  in
  expect_code "absorbing" "MRM031" (Check.check_structure absorbing)

let test_check_uniformization_codes () =
  let data = base_data () in
  (* Chain rate is 2; force q = 1 so Q' gets a negative diagonal and
     super-stochastic rows. *)
  let config = { Check.default_config with Check.q = Some 1. } in
  expect_code "q too small" "MRM040" (Check.check_uniformization ~config data);
  (* Force d far below the solver's minimal choice: R' and S' blow
     through 1. *)
  let config = { Check.default_config with Check.d = Some 1e-6 } in
  let report = Check.check_uniformization ~config data in
  expect_code "R' super-stochastic" "MRM042" report;
  expect_code "S' super-stochastic" "MRM043" report;
  (* The solver's own choice passes. *)
  expect_clean "solver defaults" (Check.check_uniformization data)

let test_check_conditioning_codes () =
  let data = base_data () in
  let config = { Check.default_config with Check.t = -1. } in
  expect_code "negative t" "MRM060" (Check.check_conditioning ~config data);
  let config = { Check.default_config with Check.eps = 1e-20 } in
  expect_code "eps too small" "MRM061" (Check.check_conditioning ~config data);
  let config = { Check.default_config with Check.t = 1e9 } in
  expect_code "qt explosion" "MRM050" (Check.check_conditioning ~config data);
  (* base_data has a negative drift: the shift note fires. *)
  expect_code "shift note" "MRM052" (Check.check_conditioning data);
  let spread =
    { (base_data ()) with Check.rates = [| 1e-6; 1e6 |] }
  in
  expect_code "scale spread" "MRM051" (Check.check_conditioning spread);
  (* Paper-scale model on a single domain: the row-parallel engine
     pointer fires, and requesting jobs > 1 silences it. *)
  let n = 10_000 in
  let paper_scale =
    Check.of_triplets ~states:n
      ~transitions:[ (0, 1, 1.); (1, 0, 1.) ]
      ~rates:(Array.make n 1.) ~variances:(Array.make n 0.)
      ~initial:(Array.init n (fun i -> if i = 0 then 1. else 0.))
  in
  expect_code "paper scale sequential" "MRM053"
    (Check.check_conditioning paper_scale);
  let config = { Check.default_config with Check.jobs = 4 } in
  let report = Check.check_conditioning ~config paper_scale in
  if has "MRM053" report then
    Alcotest.failf "paper scale with jobs = 4: MRM053 should not fire [%s]"
      (String.concat "; " (codes report))

(* ------------------------------------------------------------------ *)
(* validate_exn and the solver ?validate flag                           *)

let test_validate_exn () =
  Check.validate_exn (Model.check_data (valid_model ()));
  let broken = { (base_data ()) with Check.variances = [| -1.; 0. |] } in
  (match Check.validate_exn broken with
  | () -> Alcotest.fail "expected Check.Failed"
  | exception Check.Failed report ->
      expect_code "failed payload" "MRM011" report);
  (* The registered printer lists the codes. *)
  (match Check.validate_exn broken with
  | () -> ()
  | exception e ->
      let text = Printexc.to_string e in
      Alcotest.(check bool)
        (Printf.sprintf "printer mentions code: %s" text)
        true
        (String.length text >= 6
        && String.index_opt text 'M' <> None
        &&
        let rec contains i =
          if i + 6 > String.length text then false
          else if String.sub text i 6 = "MRM011" then true
          else contains (i + 1)
        in
        contains 0))

let test_solver_validate_flag () =
  let m = valid_model () in
  let plain = Randomization.moments m ~t:0.5 ~order:2 in
  let validated = Randomization.moments ~validate:true m ~t:0.5 ~order:2 in
  Array.iteri
    (fun n row ->
      Array.iteri
        (fun i v ->
          check_close
            (Printf.sprintf "validated = plain (%d, %d)" n i)
            v
            validated.Randomization.moments.(n).(i))
        row)
    plain.Randomization.moments;
  (* Post-construction mutation is exactly what ?validate catches: the
     arrays inside the (private) model record are still mutable. *)
  let mutated = valid_model () in
  (mutated : Model.t).Model.variances.(3) <- -5.;
  (match Randomization.moments ~validate:true mutated ~t:0.5 ~order:2 with
  | _ -> Alcotest.fail "randomization: expected Check.Failed"
  | exception Check.Failed report -> expect_code "codes" "MRM011" report);
  (match Moments_ode.moments ~validate:true mutated ~t:0.5 ~order:2 with
  | _ -> Alcotest.fail "ode: expected Check.Failed"
  | exception Check.Failed report -> expect_code "codes" "MRM011" report);
  match
    Randomization.moments_at_times ~validate:true mutated
      ~times:[| 0.1; 0.5 |] ~order:2
  with
  | _ -> Alcotest.fail "moments_at_times: expected Check.Failed"
  | exception Check.Failed _ -> ()

(* ------------------------------------------------------------------ *)
(* Property tests: random birth-death models pass; mutants trigger      *)

let onoff_params_gen =
  QCheck2.Gen.(
    let* sources = int_range 2 20 in
    let* alpha = float_range 0.5 5. in
    let* beta = float_range 0.5 5. in
    let* sigma2 = float_range 0. 10. in
    return
      {
        Onoff.capacity = float_of_int sources;
        sources;
        on_to_off = alpha;
        off_to_on = beta;
        peak_rate = 1.;
        rate_variance = sigma2;
      })

let params_print p =
  Printf.sprintf "N=%d alpha=%g beta=%g sigma2=%g" p.Onoff.sources
    p.Onoff.on_to_off p.Onoff.off_to_on p.Onoff.rate_variance

let prop_random_birth_death_clean =
  QCheck2.Test.make ~count:60 ~name:"random ON-OFF models pass all checks"
    ~print:params_print onoff_params_gen (fun p ->
      let report = Check.check (Model.check_data (Onoff.model p)) in
      report = [])

let prop_mutated_row_sum_flagged =
  QCheck2.Test.make ~count:40 ~name:"broken row sum triggers MRM004"
    ~print:params_print onoff_params_gen (fun p ->
      let data = Model.check_data (Onoff.model p) in
      (* Perturb one diagonal entry: the row no longer sums to 0. *)
      let n = data.Check.states in
      let row = n / 2 in
      let q_matrix =
        Sparse.map_values Fun.id data.Check.q_matrix |> fun m ->
        Sparse.add m (Sparse.of_triplets ~rows:n ~cols:n [ (row, row, 0.5) ])
      in
      let report = Check.check { data with Check.q_matrix } in
      has "MRM004" report && Diagnostics.has_errors report)

let prop_mutated_variance_flagged =
  QCheck2.Test.make ~count:40 ~name:"negative variance triggers MRM011"
    ~print:params_print onoff_params_gen (fun p ->
      let data = Model.check_data (Onoff.model p) in
      let variances = Array.copy data.Check.variances in
      variances.(Array.length variances - 1) <- -1e-3;
      has "MRM011" (Check.check { data with Check.variances }))

let prop_disconnected_state_flagged =
  QCheck2.Test.make ~count:40 ~name:"disconnected state triggers MRM030"
    ~print:params_print onoff_params_gen (fun p ->
      (* Append a fresh state with no incoming transition. *)
      let m = Onoff.model p in
      let g = Generator.matrix (m : Model.t).Model.generator in
      let n = Sparse.rows g in
      let grown = ref [] in
      Sparse.iter g (fun i j v -> grown := (i, j, v) :: !grown);
      grown := (n, 0, 1.) :: (n, n, -1.) :: !grown;
      let q_matrix =
        Sparse.of_triplets ~rows:(n + 1) ~cols:(n + 1) !grown
      in
      let extend a x = Array.append a [| x |] in
      let data =
        Check.data ~q_matrix
          ~rates:(extend (m : Model.t).Model.rates 0.)
          ~variances:(extend (m : Model.t).Model.variances 0.)
          ~initial:(extend (m : Model.t).Model.initial 0.)
      in
      let report = Check.check data in
      has "MRM030" report && not (Diagnostics.has_errors report))

(* ------------------------------------------------------------------ *)
(* Satellite: log-space unshift                                         *)

let test_unshift_matches_direct_low_order () =
  (* Direct binomial-expansion reference at low order, where nothing can
     overflow: the log-space path must agree to near machine precision. *)
  let order = 8 and n_states = 3 in
  let shifted =
    Array.init (order + 1) (fun n ->
        Array.init n_states (fun i ->
            ((0.3 *. float_of_int n) +. 1.) *. (float_of_int i +. 0.7)))
  in
  let shift = -1.7 and t = 0.9 in
  let direct =
    let c = shift *. t in
    Array.init (order + 1) (fun n ->
        Array.init n_states (fun i ->
            let acc = ref 0. in
            for j = 0 to n do
              acc :=
                !acc
                +. Special.binomial n j
                   *. (c ** float_of_int j)
                   *. shifted.(n - j).(i)
            done;
            !acc))
  in
  let via_log = Randomization.unshift_moments ~shift ~t shifted in
  for n = 0 to order do
    for i = 0 to n_states - 1 do
      check_close ~tol:1e-12
        (Printf.sprintf "order %d state %d" n i)
        direct.(n).(i) via_log.(n).(i)
    done
  done

let test_unshift_high_order_finite () =
  (* Order 40 with a large shift: the naive binomial * c^j path overflows
     intermediates; the log-space coefficients stay finite whenever the
     result is representable. *)
  let order = 40 and n_states = 2 in
  let shifted =
    Array.init (order + 1) (fun n ->
        Array.init n_states (fun _ -> 1. /. Special.factorial (min n 100)))
  in
  let out = Randomization.unshift_moments ~shift:(-100.) ~t:1. shifted in
  Array.iteri
    (fun n row ->
      Array.iter
        (fun v ->
          if Float.is_nan v then
            Alcotest.failf "NaN at order %d (coefficients overflowed)" n)
        row)
    out

let test_unshift_end_to_end_negative_rates () =
  (* A negative-rate model exercises the shift path inside the solver;
     cross-check randomization against the adaptive ODE comparator. *)
  let g = Generator.of_triplets ~states:2 [ (0, 1, 2.); (1, 0, 3.) ] in
  let m =
    Model.make ~generator:g ~rates:[| -4.; 2. |] ~variances:[| 0.5; 1. |]
      ~initial:[| 1.; 0. |]
  in
  let t = 0.8 in
  let a = Randomization.moments m ~t ~order:4 in
  let b = Moments_ode.moments_adaptive ~tol:1e-11 m ~t ~order:4 in
  for n = 0 to 4 do
    for i = 0 to 1 do
      check_close ~tol:1e-7
        (Printf.sprintf "E[B^%d | Z=%d]" n i)
        b.(n).(i)
        a.Randomization.moments.(n).(i)
    done
  done

(* ------------------------------------------------------------------ *)
(* Model_io structured errors                                           *)

let test_model_io_error_positions () =
  (match Model_io.parse_raw "states 2\ntransition 0 1 abc\n" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e ->
      Alcotest.(check (option int)) "line" (Some 2) e.Model_io.line;
      Alcotest.(check (option string))
        "field" (Some "transition") e.Model_io.field);
  (match Model_io.parse_raw "states 2\nreward 0 1. 0.\ninitial 5 1.\n" with
  | Ok _ -> Alcotest.fail "expected range error"
  | Error e ->
      Alcotest.(check (option int)) "range line" (Some 3) e.Model_io.line;
      Alcotest.(check (option string))
        "range field" (Some "initial") e.Model_io.field);
  (* Raw parsing keeps semantically broken content for the linter. *)
  (match Model_io.parse_raw "states 2\ntransition 0 1 -5.\ninitial 0 0.2\n" with
  | Ok raw ->
      Alcotest.(check int) "states" 2 raw.Model_io.declared_states;
      Alcotest.(check bool) "negative rate preserved" true
        (List.mem (0, 1, -5.) raw.Model_io.raw_transitions)
  | Error e -> Alcotest.failf "raw parse: %s" (Model_io.error_message e));
  (* The Failure path keeps the line-numbered prefix. *)
  match Model_io.parse_string "states 2\ntransition 0 1 abc\n" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure message ->
      Alcotest.(check bool)
        (Printf.sprintf "message has position: %s" message)
        true
        (String.length message > 0
        && message = "Model_io: line 2, transition: bad number \"abc\"")

(* ------------------------------------------------------------------ *)
(* mrm2 lint CLI on the committed fixtures                              *)

let mrm2 = Filename.concat (Filename.concat ".." "bin") "mrm2.exe"

let run_lint ?(flags = "") fixture =
  let out = Filename.temp_file "mrm2_lint" ".out" in
  let command =
    Printf.sprintf "%s lint %s fixtures/%s > %s 2>&1" mrm2 flags fixture out
  in
  let status = Sys.command command in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove out;
  (status, text)

let contains text needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length text then false
    else if String.sub text i n = needle then true
    else go (i + 1)
  in
  go 0

let expect_lint name fixture ~flags ~status ~code =
  let actual_status, text = run_lint ~flags fixture in
  Alcotest.(check int) (name ^ " exit") status actual_status;
  match code with
  | None -> ()
  | Some c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %s in: %s" name c text)
        true (contains text c)

let test_lint_cli () =
  expect_lint "valid" "valid_onoff.mrm" ~flags:"" ~status:0 ~code:None;
  expect_lint "broken rate" "broken_rate.mrm" ~flags:"" ~status:1
    ~code:(Some "MRM002");
  expect_lint "broken variance" "broken_variance.mrm" ~flags:"" ~status:1
    ~code:(Some "MRM011");
  expect_lint "broken initial" "broken_initial.mrm" ~flags:"" ~status:1
    ~code:(Some "MRM021");
  expect_lint "broken syntax" "broken_syntax.mrm" ~flags:"" ~status:1
    ~code:(Some "MRM090");
  expect_lint "unreachable warns" "warn_unreachable.mrm" ~flags:"" ~status:0
    ~code:(Some "MRM030");
  expect_lint "unreachable strict" "warn_unreachable.mrm" ~flags:"--strict"
    ~status:1 ~code:(Some "MRM030");
  expect_lint "json rendering" "broken_rate.mrm" ~flags:"--format json"
    ~status:1 ~code:(Some "\"code\":\"MRM002\"")

(* ------------------------------------------------------------------ *)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "check"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "severity order" `Quick
            test_diagnostics_severity_order;
          Alcotest.test_case "renderings" `Quick test_diagnostics_renderings;
          Alcotest.test_case "codes dedup" `Quick test_diagnostics_codes_dedup;
        ] );
      ( "scc",
        [
          Alcotest.test_case "cycle" `Quick test_scc_cycle;
          Alcotest.test_case "one-way chain" `Quick test_scc_one_way_chain;
          Alcotest.test_case "10^5-state chain (iterative)" `Quick
            test_scc_large_chain_no_stack_overflow;
        ] );
      ( "check",
        [
          Alcotest.test_case "valid model clean" `Quick
            test_check_valid_model_clean;
          Alcotest.test_case "valid fixture clean" `Quick
            test_check_valid_fixture_roundtrip;
          Alcotest.test_case "generator codes" `Quick
            test_check_generator_codes;
          Alcotest.test_case "reward codes" `Quick test_check_reward_codes;
          Alcotest.test_case "initial codes" `Quick test_check_initial_codes;
          Alcotest.test_case "dimension code" `Quick test_check_dimension_code;
          Alcotest.test_case "structure codes" `Quick
            test_check_structure_codes;
          Alcotest.test_case "uniformization codes" `Quick
            test_check_uniformization_codes;
          Alcotest.test_case "conditioning codes" `Quick
            test_check_conditioning_codes;
        ] );
      ( "validate",
        [
          Alcotest.test_case "validate_exn" `Quick test_validate_exn;
          Alcotest.test_case "solver ?validate flag" `Quick
            test_solver_validate_flag;
        ] );
      ( "properties",
        [
          to_alcotest prop_random_birth_death_clean;
          to_alcotest prop_mutated_row_sum_flagged;
          to_alcotest prop_mutated_variance_flagged;
          to_alcotest prop_disconnected_state_flagged;
        ] );
      ( "unshift",
        [
          Alcotest.test_case "matches direct formula" `Quick
            test_unshift_matches_direct_low_order;
          Alcotest.test_case "high order stays finite" `Quick
            test_unshift_high_order_finite;
          Alcotest.test_case "negative rates end-to-end" `Quick
            test_unshift_end_to_end_negative_rates;
        ] );
      ( "model_io",
        [
          Alcotest.test_case "error positions" `Quick
            test_model_io_error_positions;
        ] );
      ( "lint_cli",
        [ Alcotest.test_case "fixtures" `Quick test_lint_cli ] );
    ]
