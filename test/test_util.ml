(* Tests for mrm_util: special functions, log-space arithmetic, RNG,
   statistics and table rendering. *)

module Special = Mrm_util.Special
module Logspace = Mrm_util.Logspace
module Rng = Mrm_util.Rng
module Stats = Mrm_util.Stats
module Table = Mrm_util.Table

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

(* ------------------------------------------------------------------ *)

let test_log_gamma_integers () =
  (* Gamma(n) = (n-1)! *)
  check_close "lgamma 1" 0. (Special.log_gamma 1.);
  check_close "lgamma 2" 0. (Special.log_gamma 2.);
  check_close "lgamma 5" (log 24.) (Special.log_gamma 5.);
  check_close "lgamma 11" (log 3628800.) (Special.log_gamma 11.)

let test_log_gamma_half () =
  (* Gamma(1/2) = sqrt(pi); Gamma(3/2) = sqrt(pi)/2. *)
  check_close "lgamma 0.5" (0.5 *. log Float.pi) (Special.log_gamma 0.5);
  check_close "lgamma 1.5"
    (log (sqrt Float.pi /. 2.))
    (Special.log_gamma 1.5)

let test_log_gamma_large () =
  (* Stirling cross-check at x = 1000.5 (reference from the recurrence
     Gamma(x+1) = x Gamma(x) applied down from a Lanczos value). *)
  let x = 171.5 in
  let direct = Special.log_gamma x in
  let via_recurrence = Special.log_gamma (x -. 1.) +. log (x -. 1.) in
  check_close ~tol:1e-13 "lgamma recurrence" via_recurrence direct

let test_log_gamma_invalid () =
  Alcotest.check_raises "lgamma 0" (Invalid_argument
    "Special.log_gamma: requires x > 0") (fun () ->
      ignore (Special.log_gamma 0.))

let test_log_factorial () =
  check_close "log 0!" 0. (Special.log_factorial 0);
  check_close "log 5!" (log 120.) (Special.log_factorial 5);
  check_close "log 170!" (Special.log_gamma 171.) (Special.log_factorial 170);
  (* Above the table boundary the lgamma path takes over continuously. *)
  check_close ~tol:1e-12 "log 171!"
    (Special.log_factorial 170 +. log 171.)
    (Special.log_factorial 171)

let test_factorial () =
  check_close "0!" 1. (Special.factorial 0);
  check_close "10!" 3628800. (Special.factorial 10);
  Alcotest.(check bool) "171! overflows" true (Special.factorial 171 = infinity)

let test_binomial () =
  check_close "C(5,2)" 10. (Special.binomial 5 2);
  check_close "C(10,0)" 1. (Special.binomial 10 0);
  check_close "C(10,10)" 1. (Special.binomial 10 10);
  check_close "C(5,7) = 0" 0. (Special.binomial 5 7);
  check_close "C(5,-1) = 0" 0. (Special.binomial 5 (-1));
  (* Pascal's rule at a size beyond the factorial table. *)
  let n = 200 and k = 77 in
  check_close ~tol:1e-10 "Pascal 200"
    (Special.binomial (n - 1) (k - 1) +. Special.binomial (n - 1) k)
    (Special.binomial n k)

let test_erf_reference_values () =
  (* Abramowitz & Stegun table values. *)
  check_close ~tol:1e-13 "erf 0" 0. (Special.erf 0.);
  check_close ~tol:1e-12 "erf 0.5" 0.5204998778130465 (Special.erf 0.5);
  check_close ~tol:1e-12 "erf 1" 0.8427007929497149 (Special.erf 1.);
  check_close ~tol:1e-12 "erf 2" 0.9953222650189527 (Special.erf 2.);
  check_close ~tol:1e-12 "erf -1" (-0.8427007929497149) (Special.erf (-1.))

let test_erfc_tail () =
  (* erfc stays accurate (relatively) deep into the tail. *)
  let reference = 1.5374597944280349e-12 (* erfc(5) *) in
  let got = Special.erfc 5. in
  if abs_float (got -. reference) /. reference > 1e-10 then
    Alcotest.failf "erfc 5: got %.17g" got;
  check_close ~tol:1e-12 "erfc(-x) = 2 - erfc(x)"
    (2. -. Special.erfc 1.5)
    (Special.erfc (-1.5))

let test_erf_erfc_complement () =
  List.iter
    (fun x ->
      check_close ~tol:1e-13
        (Printf.sprintf "erf+erfc at %g" x)
        1.
        (Special.erf x +. Special.erfc x))
    [ 0.1; 0.9; 1.9; 2.1; 3.5; 7. ]

let test_normal_cdf () =
  check_close ~tol:1e-12 "Phi(0)" 0.5 (Special.normal_cdf ~mu:0. ~sigma:1. 0.);
  check_close ~tol:1e-10 "Phi(1.96)" 0.9750021048517795
    (Special.normal_cdf ~mu:0. ~sigma:1. 1.96);
  (* Location-scale property. *)
  check_close ~tol:1e-13 "cdf shift"
    (Special.normal_cdf ~mu:0. ~sigma:1. 1.2)
    (Special.normal_cdf ~mu:3. ~sigma:2. (3. +. 2.4))

let test_normal_pdf () =
  check_close ~tol:1e-13 "pdf peak"
    (1. /. sqrt (2. *. Float.pi))
    (Special.normal_pdf ~mu:0. ~sigma:1. 0.);
  (* Integrates to ~1 (trapezoid on [-8, 8]). *)
  let n = 4000 in
  let h = 16. /. float_of_int n in
  let acc = ref 0. in
  for k = 0 to n do
    let x = -8. +. (float_of_int k *. h) in
    let w = if k = 0 || k = n then 0.5 else 1. in
    acc := !acc +. (w *. Special.normal_pdf ~mu:0. ~sigma:1. x)
  done;
  check_close ~tol:1e-10 "pdf mass" 1. (!acc *. h)

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Special.normal_quantile p in
      check_close ~tol:1e-9
        (Printf.sprintf "quantile roundtrip %g" p)
        p
        (Special.normal_cdf ~mu:0. ~sigma:1. x))
    [ 1e-6; 0.01; 0.25; 0.5; 0.8413; 0.99; 1. -. 1e-6 ]

let test_normal_quantile_extreme_tails () =
  (* Regression: the Halley correction used to evaluate exp(x^2/2)
     directly, which overflows for |x| beyond ~38 and turned the whole
     refinement into NaN for p in the denormal range. The step is now
     taken in log space, so even p = 1e-320 yields the correct finite
     quantile in both tails. *)
  List.iter
    (fun p ->
      let lo = Special.normal_quantile p in
      if not (Float.is_finite lo) then
        Alcotest.failf "quantile at p=%g not finite: %g" p lo;
      Alcotest.(check bool) (Printf.sprintf "left tail at %g" p) true (lo < 0.);
      (* For p down to ~1e-308 the cdf still resolves, so round-trip; in
         the denormal range just pin the known magnitude. *)
      if p >= 1e-300 then
        check_close ~tol:1e-9
          (Printf.sprintf "roundtrip %g" p)
          p
          (Special.normal_cdf ~mu:0. ~sigma:1. lo);
      (* The mirrored upper tail exists as a double only down to
         p ~ 1e-16 (1 - 1e-20 rounds to 1); probe what is representable. *)
      if 1. -. p < 1. then
        Alcotest.(check bool)
          (Printf.sprintf "right tail at 1-%g" p)
          true
          (Special.normal_quantile (1. -. p) > 0.))
    [ 1e-10; 1e-16; 1e-20; 1e-100; 1e-300; 1e-320 ];
  (* x ~ -38.27 at p = 1e-320: the pre-fix code returned NaN here. *)
  let x = Special.normal_quantile 1e-320 in
  (* mrm:ignore SRC023 — a NaN regression would fail this check, which
     is exactly what the assertion is for *)
  Alcotest.(check bool) "deep tail magnitude" true (x < -38. && x > -39.);
  (* The largest p below 1: refinement must stay finite, not overflow. *)
  let top = Special.normal_quantile (Float.pred 1.0) in
  Alcotest.(check bool) "p -> 1- finite" true
    (Float.is_finite top && top > 8.)

let test_normal_quantile_invalid () =
  List.iter
    (fun p ->
      match Special.normal_quantile p with
      | _ -> Alcotest.failf "quantile %g should raise" p
      | exception Invalid_argument _ -> ())
    [ 0.; 1.; -0.5; 1.5 ]

let test_log_poisson_pmf () =
  (* Small lambda: direct formula. *)
  check_close ~tol:1e-13 "pois(2;3)"
    (log (exp (-2.) *. 8. /. 6.))
    (Special.log_poisson_pmf ~lambda:2. 3);
  (* Large lambda: the mode weight is ~ 1/sqrt(2 pi lambda). *)
  let lambda = 1e6 in
  let mode = Special.log_poisson_pmf ~lambda 1_000_000 in
  let stirling = -0.5 *. log (2. *. Float.pi *. lambda) in
  check_close ~tol:1e-6 "pois mode 1e6" stirling mode;
  check_close "pois(0;0)" 0. (Special.log_poisson_pmf ~lambda:0. 0);
  Alcotest.(check bool) "pois(0;1) = -inf" true
    (Special.log_poisson_pmf ~lambda:0. 1 = neg_infinity)

(* ------------------------------------------------------------------ *)

let test_log_add () =
  check_close "log_add basic"
    (log (3. +. 5.))
    (Logspace.log_add (log 3.) (log 5.));
  check_close "log_add zero" (log 7.) (Logspace.log_add neg_infinity (log 7.));
  (* Huge magnitude difference: larger argument dominates. *)
  check_close "log_add dominant" 1000. (Logspace.log_add 1000. (-1000.))

let test_log_sub () =
  check_close "log_sub basic"
    (log (5. -. 3.))
    (Logspace.log_sub (log 5.) (log 3.));
  Alcotest.(check bool) "log_sub equal" true
    (Logspace.log_sub (log 5.) (log 5.) = neg_infinity);
  Alcotest.check_raises "log_sub order"
    (Invalid_argument "Logspace.log_sub: requires la >= lb") (fun () ->
      ignore (Logspace.log_sub (log 3.) (log 5.)))

let test_log_sum_exp () =
  Alcotest.(check bool) "lse empty" true
    (Logspace.log_sum_exp [||] = neg_infinity);
  check_close "lse 3 terms"
    (log 6.)
    (Logspace.log_sum_exp [| log 1.; log 2.; log 3. |]);
  (* Stability: values around -2000 would underflow linearly. *)
  check_close ~tol:1e-12 "lse deep"
    (-2000. +. log 3.)
    (Logspace.log_sum_exp [| -2000.; -2000.; -2000. |])

(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7L () and b = Rng.create ~seed:7L () in
  for _ = 1 to 100 do
    check_close "stream equality" (Rng.uniform a) (Rng.uniform b)
  done

let test_rng_streams_differ () =
  let a = Rng.create ~seed:7L () in
  let b = Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 100 do
    if Rng.uniform a = Rng.uniform b then incr matches
  done;
  Alcotest.(check bool) "split stream diverges" true (!matches < 5)

let test_rng_uniform_range () =
  let rng = Rng.create () in
  for _ = 1 to 10_000 do
    let u = Rng.uniform rng in
    if not (u >= 0. && u < 1.) then Alcotest.failf "uniform out of range %g" u
  done

let test_rng_uniform_moments () =
  let rng = Rng.create ~seed:3L () in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Rng.uniform rng) in
  check_close ~tol:5e-3 "uniform mean" 0.5 (Stats.mean xs);
  check_close ~tol:5e-3 "uniform var" (1. /. 12.) (Stats.variance xs)

let test_rng_normal_moments () =
  let rng = Rng.create ~seed:11L () in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Rng.normal rng) in
  check_close ~tol:0.02 "normal mean" 0. (Stats.mean xs);
  check_close ~tol:0.02 "normal var" 1. (Stats.variance xs);
  check_close ~tol:0.05 "normal kurtosis" 3.
    (Stats.central_moment 4 xs /. (Stats.variance xs ** 2.))

let test_rng_exponential () =
  let rng = Rng.create ~seed:13L () in
  let rate = 2.5 in
  let xs = Array.init 200_000 (fun _ -> Rng.exponential rng ~rate) in
  check_close ~tol:0.01 "exp mean" (1. /. rate) (Stats.mean xs);
  Alcotest.check_raises "exp bad rate"
    (Invalid_argument "Rng.exponential: requires rate > 0") (fun () ->
      ignore (Rng.exponential rng ~rate:0.))

let test_rng_categorical () =
  let rng = Rng.create ~seed:17L () in
  let weights = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.categorical rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight category never drawn" 0 counts.(1);
  check_close ~tol:0.02 "category 2 frequency" 0.75
    (float_of_int counts.(2) /. float_of_int n);
  Alcotest.check_raises "categorical empty"
    (Invalid_argument "Rng.categorical: weights must have a positive sum")
    (fun () -> ignore (Rng.categorical rng [| 0.; 0. |]))

let test_rng_gaussian_degenerate () =
  let rng = Rng.create () in
  check_close "sigma 0 gaussian" 4.2 (Rng.gaussian rng ~mu:4.2 ~sigma:0.)

(* ------------------------------------------------------------------ *)

let test_stats_summary () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let s = Stats.summarize xs in
  check_close "mean" 2.5 s.Stats.mean;
  check_close "var" (5. /. 3.) s.Stats.variance;
  check_close "min" 1. s.Stats.min;
  check_close "max" 4. s.Stats.max;
  Alcotest.(check int) "count" 4 s.Stats.count

let test_stats_moments () =
  let xs = [| 1.; 2.; 3. |] in
  check_close "raw 1" 2. (Stats.raw_moment 1 xs);
  check_close "raw 2" (14. /. 3.) (Stats.raw_moment 2 xs);
  check_close "central 2" (2. /. 3.) (Stats.central_moment 2 xs);
  check_close "central 3" 0. (Stats.central_moment 3 xs)

let test_stats_quantile () =
  let xs = [| 5.; 1.; 3. |] in
  check_close "q0" 1. (Stats.quantile 0. xs);
  check_close "q50" 3. (Stats.quantile 0.5 xs);
  check_close "q100" 5. (Stats.quantile 1. xs);
  check_close "q25" 2. (Stats.quantile 0.25 xs);
  (* Input not mutated. *)
  Alcotest.(check (float 0.)) "input preserved" 5. xs.(0)

let test_stats_empty () =
  Alcotest.check_raises "mean empty"
    (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean [||]))

let test_stats_ci_coverage () =
  (* CI for the mean of a known distribution covers the truth most of the
     time (deterministic seed, so this is a regression test). *)
  let rng = Rng.create ~seed:23L () in
  let trials = 200 and n = 400 in
  let covered = ref 0 in
  for _ = 1 to trials do
    let xs = Array.init n (fun _ -> Rng.normal rng) in
    let lo, hi = Stats.mean_confidence_interval ~confidence:0.95 xs in
    (* mrm:ignore SRC023 — a NaN interval counts as uncovered and the
       180/200 coverage check below fails, which is the right outcome *)
    if lo <= 0. && 0. <= hi then incr covered
  done;
  if !covered < 180 then
    Alcotest.failf "CI coverage too low: %d/200" !covered

let test_stats_cdf () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_close "ecdf mid" 0.5 (Stats.empirical_cdf xs 2.);
  check_close "ecdf below" 0. (Stats.empirical_cdf xs 0.);
  check_close "ecdf above" 1. (Stats.empirical_cdf xs 9.)

(* ------------------------------------------------------------------ *)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* Header first, separator second. *)
  (match lines with
  | header :: separator :: _ ->
      Alcotest.(check bool) "has header" true
        (String.length header >= 4 && header.[0] = 'a');
      Alcotest.(check bool) "separator dashes" true
        (String.for_all (fun c -> c = '-') separator)
  | _ -> Alcotest.fail "unexpected shape")

let test_table_series () =
  let s =
    Table.render_series ~title:"demo" ~x_label:"t" ~columns:[ "y" ]
      [ (0., [ 1. ]); (0.5, [ 2.25 ]) ]
  in
  Alcotest.(check bool) "title present" true
    (String.length s > 8 && String.sub s 0 8 = "== demo ")

let test_float_cell () =
  Alcotest.(check string) "integer" "42" (Table.float_cell 42.);
  Alcotest.(check string) "fraction" "3.14159" (Table.float_cell 3.14159)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Json: the hand-rolled tree behind mrm2 batch and the BENCH records   *)

module Json = Mrm_util.Json

let test_json_parse_basics () =
  let open Json in
  let cases =
    [
      ("null", Null);
      ("true", Bool true);
      ("false", Bool false);
      ("42", Num 42.);
      ("-3.25e2", Num (-325.));
      ({|"hi"|}, Str "hi");
      ("[]", List []);
      ("[1,2,3]", List [ Num 1.; Num 2.; Num 3. ]);
      ("{}", Obj []);
      ( {| {"a": 1, "b": [true, null]} |},
        Obj [ ("a", Num 1.); ("b", List [ Bool true; Null ]) ] );
    ]
  in
  List.iter
    (fun (text, expected) ->
      match parse text with
      | Ok v ->
          if v <> expected then Alcotest.failf "parse %s: wrong tree" text
      | Error e -> Alcotest.failf "parse %s: %s" text e)
    cases

let test_json_parse_strings () =
  let open Json in
  (match parse {|"a\"b\\c\n\tAé"|} with
  | Ok (Str s) ->
      Alcotest.(check string) "escapes + unicode" "a\"b\\c\n\tA\xc3\xa9" s
  | _ -> Alcotest.fail "string escapes");
  (* Surrogate pair: U+1D11E (musical G clef) in UTF-8. *)
  match parse {|"𝄞"|} with
  | Ok (Str s) ->
      Alcotest.(check string) "surrogate pair" "\xf0\x9d\x84\x9e" s
  | _ -> Alcotest.fail "surrogate pair"

let test_json_parse_errors () =
  List.iter
    (fun text ->
      match Json.parse text with
      | Ok _ -> Alcotest.failf "%S should not parse" text
      | Error message ->
          Alcotest.(check bool)
            (Printf.sprintf "%S error carries an offset: %s" text message)
            true
            (String.length message > 0))
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated";
      "{\"a\" 1}"; "+5"; "[1] trailing";
    ]

let test_json_round_trip () =
  let open Json in
  let doc =
    Obj
      [
        ("name", Str "fig8");
        ("times", List [ Num 0.01; Num 0.1; Num (1. /. 3.) ]);
        ("eps", Num 1e-9);
        ("exact", Num 12345678901234.);
        ("flags", Obj [ ("full", Bool false); ("note", Null) ]);
      ]
  in
  let text = to_string doc in
  (match parse text with
  | Ok v ->
      if v <> doc then
        Alcotest.failf "round trip changed the tree: %s" text
  | Error e -> Alcotest.failf "round trip re-parse: %s" e);
  (* Non-finite numbers have no JSON representation; they render null. *)
  Alcotest.(check string) "nan -> null" "null" (to_string (Num Float.nan));
  Alcotest.(check string)
    "inf -> null" "[null,1]"
    (to_string (List [ Num infinity; Num 1. ]))

let test_json_accessors () =
  let open Json in
  let doc =
    parse_exn {|{"order": 3, "t": 0.5, "id": "x", "times": [1, 2]}|}
  in
  Alcotest.(check (option int)) "to_int" (Some 3)
    (Option.bind (member "order" doc) to_int);
  Alcotest.(check (option int)) "to_int rejects fractions" None
    (Option.bind (member "t" doc) to_int);
  Alcotest.(check (option string)) "to_str" (Some "x")
    (Option.bind (member "id" doc) to_str);
  Alcotest.(check (option int)) "to_list" (Some 2)
    (Option.map List.length (Option.bind (member "times" doc) to_list));
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (member "absent" doc) to_int);
  Alcotest.check_raises "parse_exn propagates"
    (Failure "Json: offset 0: unexpected end of input") (fun () ->
      ignore (parse_exn ""))

let () =
  Alcotest.run "mrm_util"
    [
      ( "special",
        [
          Alcotest.test_case "log_gamma integers" `Quick
            test_log_gamma_integers;
          Alcotest.test_case "log_gamma half-integers" `Quick
            test_log_gamma_half;
          Alcotest.test_case "log_gamma recurrence" `Quick
            test_log_gamma_large;
          Alcotest.test_case "log_gamma invalid" `Quick
            test_log_gamma_invalid;
          Alcotest.test_case "log_factorial" `Quick test_log_factorial;
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "erf reference values" `Quick
            test_erf_reference_values;
          Alcotest.test_case "erfc tail accuracy" `Quick test_erfc_tail;
          Alcotest.test_case "erf/erfc complement" `Quick
            test_erf_erfc_complement;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "normal pdf" `Quick test_normal_pdf;
          Alcotest.test_case "normal quantile roundtrip" `Quick
            test_normal_quantile_roundtrip;
          Alcotest.test_case "normal quantile extreme tails" `Quick
            test_normal_quantile_extreme_tails;
          Alcotest.test_case "normal quantile domain" `Quick
            test_normal_quantile_invalid;
          Alcotest.test_case "log poisson pmf" `Quick test_log_poisson_pmf;
        ] );
      ( "logspace",
        [
          Alcotest.test_case "log_add" `Quick test_log_add;
          Alcotest.test_case "log_sub" `Quick test_log_sub;
          Alcotest.test_case "log_sum_exp" `Quick test_log_sum_exp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick
            test_rng_streams_differ;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform moments" `Slow test_rng_uniform_moments;
          Alcotest.test_case "normal moments" `Slow test_rng_normal_moments;
          Alcotest.test_case "exponential" `Slow test_rng_exponential;
          Alcotest.test_case "categorical" `Slow test_rng_categorical;
          Alcotest.test_case "gaussian sigma=0" `Quick
            test_rng_gaussian_degenerate;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "empty input" `Quick test_stats_empty;
          Alcotest.test_case "CI coverage" `Slow test_stats_ci_coverage;
          Alcotest.test_case "empirical cdf" `Quick test_stats_cdf;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "series" `Quick test_table_series;
          Alcotest.test_case "float cell" `Quick test_float_cell;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "string escapes" `Quick test_json_parse_strings;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
    ]
