(* Tests for the general eigensolver and the second-order fluid queue
   (the bounded comparator of the paper's Section 4). *)

module Dense = Mrm_linalg.Dense
module Eigen = Mrm_linalg.Eigen
module Lu = Mrm_linalg.Lu
module Tridiag = Mrm_linalg.Tridiag
module Fluid = Mrm_fluid.Fluid
module Generator = Mrm_ctmc.Generator
module Rng = Mrm_util.Rng
module Stats = Mrm_util.Stats

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

let sorted_eigenvalues m =
  let e = Eigen.eigenvalues m in
  Array.sort
    (fun a b ->
      compare (a.Complex.re, a.Complex.im) (b.Complex.re, b.Complex.im))
    e;
  e

(* ------------------------------------------------------------------ *)
(* Eigen                                                                *)

let test_eigen_diagonal () =
  let e = sorted_eigenvalues (Dense.diagonal [| 3.; 1.; 2. |]) in
  check_close "l1" 1. e.(0).Complex.re;
  check_close "l2" 2. e.(1).Complex.re;
  check_close "l3" 3. e.(2).Complex.re;
  Array.iter (fun z -> check_close "real" 0. z.Complex.im) e

let test_eigen_rotation () =
  (* [[0,-1],[1,0]]: eigenvalues +-i. *)
  let e = sorted_eigenvalues (Dense.of_arrays [| [| 0.; -1. |]; [| 1.; 0. |] |]) in
  check_close "re" 0. e.(0).Complex.re;
  check_close "im-" (-1.) e.(0).Complex.im;
  check_close "im+" 1. e.(1).Complex.im

let test_eigen_companion_roots () =
  (* Companion matrix of (z-1)(z-2)(z-3)(z+4). *)
  let companion =
    Dense.of_arrays
      [|
        [| 2.; 13.; -38.; 24. |];
        [| 1.; 0.; 0.; 0. |];
        [| 0.; 1.; 0.; 0. |];
        [| 0.; 0.; 1.; 0. |];
      |]
  in
  let e = sorted_eigenvalues companion in
  let expected = [| -4.; 1.; 2.; 3. |] in
  Array.iteri
    (fun k z ->
      check_close ~tol:1e-10 (Printf.sprintf "root %d" k) expected.(k)
        z.Complex.re;
      check_close ~tol:1e-10 "imag" 0. z.Complex.im)
    e

let test_eigen_trace_det_identities () =
  let rng = Rng.create ~seed:41L () in
  for trial = 1 to 10 do
    let n = 2 + Mrm_util.Rng.int_below rng 9 in
    let m =
      Dense.init ~rows:n ~cols:n (fun _ _ -> Rng.uniform rng -. 0.5)
    in
    let e = Eigen.eigenvalues m in
    let sum = Array.fold_left Complex.add Complex.zero e in
    let product = Array.fold_left Complex.mul Complex.one e in
    check_close ~tol:1e-9
      (Printf.sprintf "trace trial %d" trial)
      (Dense.trace m) sum.Complex.re;
    check_close ~tol:1e-9 "trace imag" 0. sum.Complex.im;
    check_close ~tol:1e-7
      (Printf.sprintf "det trial %d" trial)
      (Lu.det (Lu.factorize m))
      product.Complex.re
  done

let test_eigen_matches_symmetric_solver () =
  (* Symmetric tridiagonal: the general solver must agree with QL. *)
  let n = 8 in
  let diag = Array.init n (fun i -> float_of_int (i + 1) /. 2.) in
  let offdiag = Array.make (n - 1) 0.7 in
  let reference = Tridiag.eigenvalues ~diag ~offdiag in
  let dense =
    Dense.init ~rows:n ~cols:n (fun i j ->
        if i = j then diag.(i)
        else if abs (i - j) = 1 then 0.7
        else 0.)
  in
  let general = sorted_eigenvalues dense in
  Array.iteri
    (fun k z ->
      check_close ~tol:1e-10
        (Printf.sprintf "eig %d" k)
        reference.(k) z.Complex.re)
    general

let test_eigen_hessenberg_similarity () =
  let rng = Rng.create ~seed:43L () in
  let n = 7 in
  let m = Dense.init ~rows:n ~cols:n (fun _ _ -> Rng.uniform rng -. 0.5) in
  let h = Eigen.hessenberg m in
  (* Same trace, and actually Hessenberg. *)
  check_close ~tol:1e-10 "trace preserved" (Dense.trace m) (Dense.trace h);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i > j + 1 then
        check_close ~tol:1e-13
          (Printf.sprintf "zero at (%d,%d)" i j)
          0. (Dense.get h i j)
    done
  done

let test_eigen_generator_spectrum () =
  (* A CTMC generator: one zero eigenvalue, the rest with Re < 0. *)
  let g =
    Generator.of_triplets ~states:4
      [ (0, 1, 1.); (1, 2, 2.); (2, 3, 1.5); (3, 0, 0.7); (2, 0, 0.3) ]
  in
  let e =
    Eigen.eigenvalues (Mrm_linalg.Sparse.to_dense (Generator.matrix g))
  in
  let near_zero = ref 0 in
  Array.iter
    (fun z ->
      if Complex.norm z < 1e-9 then incr near_zero
      else if z.Complex.re >= 1e-9 then
        Alcotest.failf "generator eigenvalue with positive real part %g"
          z.Complex.re)
    e;
  Alcotest.(check int) "one zero eigenvalue" 1 !near_zero

let test_eigen_invalid () =
  match Eigen.eigenvalues (Dense.zeros ~rows:2 ~cols:3) with
  | _ -> Alcotest.fail "non-square"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Fluid                                                                *)

let test_fluid_rbm_closed_form () =
  (* Single state: reflected Brownian motion, stationary distribution
     exponential with rate 2|r|/sigma^2. *)
  let g = Generator.of_triplets ~states:1 [] in
  let q = Fluid.make ~generator:g ~rates:[| -1. |] ~variances:[| 2. |] in
  let s = Fluid.stationary q in
  List.iter
    (fun x ->
      check_close ~tol:1e-8
        (Printf.sprintf "ccdf %g" x)
        (exp (-.x))
        (Fluid.ccdf s x))
    [ 0.; 0.25; 1.; 3. ];
  check_close ~tol:1e-8 "mean level" 1. (Fluid.mean_level s);
  check_close ~tol:1e-8 "decay rate" 1. (Fluid.decay_rate s)

let two_state_queue () =
  let g = Generator.of_triplets ~states:2 [ (0, 1, 1.); (1, 0, 2.) ] in
  Fluid.make ~generator:g ~rates:[| 1.5; -6. |] ~variances:[| 0.5; 1. |]

let test_fluid_two_state_properties () =
  let s = Fluid.stationary (two_state_queue ()) in
  check_close ~tol:1e-10 "drift" (-1.) (Fluid.mean_drift s);
  (* CDF properties. *)
  check_close "cdf at -1" 0. (Fluid.cdf s (-1.));
  check_close ~tol:1e-6 "cdf at infinity" 1. (Fluid.cdf s 200.);
  let previous = ref (-0.001) in
  for k = 0 to 40 do
    let c = Fluid.cdf s (0.2 *. float_of_int k) in
    Alcotest.(check bool) "monotone" true (c >= !previous -. 1e-9);
    previous := c
  done;
  (* Reflecting boundary: no atom at 0 when all sigma > 0. *)
  check_close ~tol:1e-8 "F(0) = 0" 0. (Fluid.cdf s 0.);
  (* Joint pieces sum to the marginal and approach pi. *)
  let pi = Fluid.background_distribution s in
  check_close ~tol:1e-6 "joint at infinity" pi.(0)
    (Fluid.joint_cdf s ~state:0 500.);
  Alcotest.(check bool) "positive mean level" true (Fluid.mean_level s > 0.);
  Alcotest.(check bool) "positive decay rate" true (Fluid.decay_rate s > 0.)

let test_fluid_matches_simulation () =
  let q = two_state_queue () in
  let s = Fluid.stationary q in
  let rng = Rng.create ~seed:71L () in
  let samples =
    Fluid.simulate_level q rng ~horizon:4000. ~dt:0.002 ~burn_in:100.
  in
  (* Euler-Maruyama carries O(sqrt dt) boundary bias; 5% tolerance. *)
  check_close ~tol:0.05 "mean level vs simulation" (Fluid.mean_level s)
    (Stats.mean samples);
  List.iter
    (fun x ->
      let empirical =
        Array.fold_left
          (fun acc v -> if v > x then acc +. 1. else acc)
          0. samples
        /. float_of_int (Array.length samples)
      in
      check_close ~tol:0.03
        (Printf.sprintf "ccdf vs simulation at %g" x)
        (Fluid.ccdf s x) empirical)
    [ 0.5; 1.; 2. ]

let test_fluid_mean_consistent_with_cdf () =
  (* E X = int ccdf dx numerically. *)
  let s = Fluid.stationary (two_state_queue ()) in
  let integral =
    Mrm_util.Quadrature.simpson ~f:(Fluid.ccdf s) ~a:0. ~b:100. ~n:4000
  in
  check_close ~tol:1e-6 "mean = integral of ccdf" integral
    (Fluid.mean_level s)

let test_fluid_decay_dominates_tail () =
  let s = Fluid.stationary (two_state_queue ()) in
  let eta = Fluid.decay_rate s in
  (* log ccdf slope approaches -eta. *)
  let slope =
    (log (Fluid.ccdf s 30.) -. log (Fluid.ccdf s 25.)) /. 5.
  in
  check_close ~tol:1e-4 "tail slope" (-.eta) slope

let test_fluid_heavier_load_bigger_buffer () =
  let g = Generator.of_triplets ~states:2 [ (0, 1, 1.); (1, 0, 2.) ] in
  let light =
    Fluid.make ~generator:g ~rates:[| 1.0; -6. |] ~variances:[| 0.5; 1. |]
  in
  let heavy =
    Fluid.make ~generator:g ~rates:[| 2.0; -6. |] ~variances:[| 0.5; 1. |]
  in
  Alcotest.(check bool) "heavier load, larger mean level" true
    (Fluid.mean_level (Fluid.stationary heavy)
    > Fluid.mean_level (Fluid.stationary light))

let test_fluid_more_variance_bigger_buffer () =
  let g = Generator.of_triplets ~states:2 [ (0, 1, 1.); (1, 0, 2.) ] in
  let calm =
    Fluid.make ~generator:g ~rates:[| 1.5; -6. |] ~variances:[| 0.2; 0.2 |]
  in
  let noisy =
    Fluid.make ~generator:g ~rates:[| 1.5; -6. |] ~variances:[| 2.; 2. |]
  in
  Alcotest.(check bool) "more variance, larger mean level" true
    (Fluid.mean_level (Fluid.stationary noisy)
    > Fluid.mean_level (Fluid.stationary calm))

let test_fluid_validation () =
  let g = Generator.of_triplets ~states:2 [ (0, 1, 1.); (1, 0, 2.) ] in
  (* Unstable drift rejected. *)
  (match Fluid.make ~generator:g ~rates:[| 3.; -1. |] ~variances:[| 1.; 1. |] with
  | _ -> Alcotest.fail "unstable accepted"
  | exception Invalid_argument _ -> ());
  (* Zero variance rejected (spectral method needs S nonsingular). *)
  (match Fluid.make ~generator:g ~rates:[| 1.; -6. |] ~variances:[| 0.; 1. |] with
  | _ -> Alcotest.fail "zero variance accepted"
  | exception Invalid_argument _ -> ());
  match Fluid.make ~generator:g ~rates:[| 1. |] ~variances:[| 1.; 1. |] with
  | _ -> Alcotest.fail "dimension accepted"
  | exception Invalid_argument _ -> ()

let test_fluid_three_state () =
  (* Larger chain with complex eigenvalue pairs in the pencil. *)
  let g =
    Generator.of_triplets ~states:3
      [ (0, 1, 2.); (1, 2, 1.); (2, 0, 3.); (0, 2, 0.5); (2, 1, 0.4) ]
  in
  let q =
    Fluid.make ~generator:g
      ~rates:[| 2.; -1.; -4. |]
      ~variances:[| 1.; 0.6; 1.5 |]
  in
  let s = Fluid.stationary q in
  Alcotest.(check bool) "stable drift" true (Fluid.mean_drift s < 0.);
  check_close ~tol:1e-7 "boundary" 0. (Fluid.cdf s 0.);
  check_close ~tol:1e-5 "mass" 1. (Fluid.cdf s 300.);
  (* Simulation cross-check on the mean. *)
  let rng = Rng.create ~seed:77L () in
  let samples =
    Fluid.simulate_level q rng ~horizon:3000. ~dt:0.002 ~burn_in:100.
  in
  check_close ~tol:0.08 "3-state mean vs simulation" (Fluid.mean_level s)
    (Stats.mean samples)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fluid"
    [
      ( "eigen",
        [
          Alcotest.test_case "diagonal" `Quick test_eigen_diagonal;
          Alcotest.test_case "rotation (complex pair)" `Quick
            test_eigen_rotation;
          Alcotest.test_case "companion roots" `Quick
            test_eigen_companion_roots;
          Alcotest.test_case "trace/det identities" `Quick
            test_eigen_trace_det_identities;
          Alcotest.test_case "matches symmetric solver" `Quick
            test_eigen_matches_symmetric_solver;
          Alcotest.test_case "Hessenberg similarity" `Quick
            test_eigen_hessenberg_similarity;
          Alcotest.test_case "generator spectrum" `Quick
            test_eigen_generator_spectrum;
          Alcotest.test_case "invalid input" `Quick test_eigen_invalid;
        ] );
      ( "fluid",
        [
          Alcotest.test_case "RBM closed form" `Quick
            test_fluid_rbm_closed_form;
          Alcotest.test_case "two-state properties" `Quick
            test_fluid_two_state_properties;
          Alcotest.test_case "matches simulation" `Slow
            test_fluid_matches_simulation;
          Alcotest.test_case "mean = integral of ccdf" `Quick
            test_fluid_mean_consistent_with_cdf;
          Alcotest.test_case "tail decay rate" `Quick
            test_fluid_decay_dominates_tail;
          Alcotest.test_case "load monotonicity" `Quick
            test_fluid_heavier_load_bigger_buffer;
          Alcotest.test_case "variance monotonicity" `Quick
            test_fluid_more_variance_bigger_buffer;
          Alcotest.test_case "validation" `Quick test_fluid_validation;
          Alcotest.test_case "three-state chain" `Slow
            test_fluid_three_state;
        ] );
    ]
