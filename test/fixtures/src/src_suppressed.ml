(* Suppression fixture: both findings below are waived inline, one by a
   trailing comment, one by a multi-line standalone comment. *)
let is_zero x = x = 0. (* mrm:ignore SRC001 — sentinel *)

(* mrm:ignore SRC001 — a standalone comment that spans several lines
   must cover the line of code immediately after it closes *)
let is_unit x = x = 1.0
