(* SRC011 seed: a Unix read blocks while [m] is held. *)

let m = Mutex.create ()

let poll fd buf =
  Mutex.protect m (fun () -> Unix.read fd buf 0 1)
