(* SRC014 clean pair: while-loop re-check around the wait, signal
   under the same mutex as the predicate write. *)

let m = Mutex.create ()
let c = Condition.create ()
let ready = ref false

let await_ready () =
  Mutex.protect m (fun () ->
      while not !ready do
        Condition.wait c m
      done)

let notify () =
  Mutex.protect m (fun () ->
      ready := true;
      Condition.signal c)
