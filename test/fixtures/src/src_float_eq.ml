(* SRC001 fixture: exact float equality where a tolerance is meant. *)
let is_unit x = x = 1.0
