(* Defective: a wire float is compared before any NaN validation; a
   NaN silently takes the else branch. *)
let accept line threshold =
  let ratio = float_of_string line in
  if ratio < threshold then 1 else 0
