(* SRC004 fixture: a catch-all handler that swallows every exception,
   next to a specific handler that is fine. *)
let bad f = try f () with _ -> 0
let good f = try f () with Not_found -> 0
