(* Clean twin: the wire float is validated before the comparison. *)
let accept line threshold =
  let ratio = float_of_string line in
  if Float.is_nan ratio then 0
  else if ratio < threshold then 1 else 0
