(* Defective: a probability-named binding escapes [0, 1] and is used
   as a mixture weight with no clamp in sight. *)
let blend a b =
  let weight = 1.2 in
  (weight *. a) +. ((1. -. weight) *. b)
