(* SRC013 seed: a handler thread bumps a module-level ref with no
   Atomic and no lock held. *)

let total = ref 0

let start () =
  Thread.create (fun () -> total := !total + 1) ()
