(* Clean twin: both accesses stay inside the table. *)
let pick () =
  let xs = Array.make 3 0. in
  (* mrm:ignore SRC003 — in-bounds by the length fact above *)
  let third = Array.unsafe_get xs 2 in
  xs.(0) +. third
