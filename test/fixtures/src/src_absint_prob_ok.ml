(* Clean twin: the mixture weight stays inside [0, 1]. *)
let blend a b =
  let weight = 0.7 in
  (weight *. a) +. ((1. -. weight) *. b)
