(* Clean twin: the body stays inside the job's own [lo, hi) slice. *)
let clear pool part (acc : float array) =
  Kernel.for_ranges pool part (fun lo hi ->
      for i = lo to hi - 1 do acc.(i) <- 0. done)
