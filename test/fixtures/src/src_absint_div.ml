(* Defective: count is exactly zero on the path where no sample
   arrived, and the division runs unguarded. *)
let average total =
  let count = 0.5 -. 0.5 in
  let mean = total /. count in
  mean
