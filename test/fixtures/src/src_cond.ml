(* SRC014 seed, twice: the wait has no re-check loop (a spurious
   wakeup falls through), and the signal runs without the mutex (a
   waiter can miss it between its check and its wait). *)

let m = Mutex.create ()
let c = Condition.create ()
let ready = ref false

let await_ready () =
  Mutex.protect m (fun () -> if not !ready then Condition.wait c m)

let notify () =
  ready := true;
  Condition.signal c
