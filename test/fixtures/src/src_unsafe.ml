(* SRC003 fixture: unchecked access and unsound casts. *)
let head a = Array.unsafe_get a 0
let cast x = Obj.magic x
