(* SRC090 fixture: does not parse. *)
let let in = (((
