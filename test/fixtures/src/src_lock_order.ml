(* SRC012 seed: [a] then [b] in one function, [b] then [a] in the
   other — two threads running them concurrently can deadlock. *)

let a = Mutex.create ()
let b = Mutex.create ()

let forward f =
  Mutex.protect a (fun () -> Mutex.protect b f)

let backward f =
  Mutex.protect b (fun () -> Mutex.protect a f)
