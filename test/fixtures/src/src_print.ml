(* SRC006 fixture: direct console output from (what is linted as)
   library code. *)
let shout () = print_endline "loud"
