(* SRC010 seed: the failwith path leaves [m] locked. *)

let m = Mutex.create ()
let count = ref 0

let bump () =
  Mutex.lock m;
  incr count;
  if !count > 10 then failwith "overflow";
  Mutex.unlock m
