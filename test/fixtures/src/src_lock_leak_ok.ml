(* SRC010 clean pair: Mutex.protect releases on the failwith path too. *)

let m = Mutex.create ()
let count = ref 0

let bump () =
  Mutex.protect m (fun () ->
      incr count;
      if !count > 10 then failwith "overflow")
