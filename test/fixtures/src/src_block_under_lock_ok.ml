(* SRC011 clean pair: the blocking read happens outside the critical
   section; the lock only guards the bookkeeping. *)

let m = Mutex.create ()
let bytes_in = ref 0

let poll fd buf =
  let n = Unix.read fd buf 0 1 in
  Mutex.protect m (fun () -> bytes_in := !bytes_in + n);
  n
