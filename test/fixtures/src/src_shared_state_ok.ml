(* SRC013 clean pair: the shared counters go through Atomic or are
   written with the lock held. *)

let total = Atomic.make 0
let m = Mutex.create ()
let peak = ref 0

let start n =
  Thread.create
    (fun () ->
      Atomic.incr total;
      Mutex.protect m (fun () -> if n > !peak then peak := n))
    ()
