(* Defective: the table has three slots; both reads ask for a fourth.
   The checked read traps at runtime, the unsafe one corrupts. *)
let pick () =
  let xs = Array.make 3 0. in
  (* mrm:ignore SRC003 — this fixture exercises the interval rule *)
  let third = Array.unsafe_get xs 3 in
  xs.(3) +. third
