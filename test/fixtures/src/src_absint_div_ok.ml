(* Clean twin: the possibly-zero denominator is guarded. *)
let average total =
  let count = 0.5 -. 0.5 in
  if count > 0. then total /. count else 0.
