(* SRC012 clean pair: both paths take [a] before [b]. *)

let a = Mutex.create ()
let b = Mutex.create ()

let forward f =
  Mutex.protect a (fun () -> Mutex.protect b f)

let also_forward f =
  Mutex.protect a (fun () -> Mutex.protect b f)
