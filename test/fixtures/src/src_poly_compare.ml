(* SRC002 fixture: polymorphic comparison on operands of unknown type —
   a finding only when linted under a hot-path module path. *)
let same a b = a = b
