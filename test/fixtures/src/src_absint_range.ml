(* Defective: the kernel body writes acc.(hi) — one slot past the
   job's [lo, hi) slice, racing the next range's first write. *)
let clear pool part (acc : float array) =
  Kernel.for_ranges pool part (fun lo hi ->
      for i = lo to hi do acc.(i) <- 0. done)
