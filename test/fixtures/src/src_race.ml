(* SRC005 fixture: writes from a parallel job. The accumulator update
   races; the element store indexed by the job-bound [i] follows the
   range-disjoint convention and is fine. *)
let bad pool total = Pool.run pool 4 (fun i -> total := !total + i)
let good pool out = Pool.run pool 4 (fun i -> out.(i) <- float_of_int i)
