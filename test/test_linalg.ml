(* Tests for mrm_linalg: vectors, dense matrices, LU, CSR sparse,
   complex solves and the tridiagonal eigensolver. *)

module Vec = Mrm_linalg.Vec
module Dense = Mrm_linalg.Dense
module Lu = Mrm_linalg.Lu
module Sparse = Mrm_linalg.Sparse
module Cmatrix = Mrm_linalg.Cmatrix
module Tridiag = Mrm_linalg.Tridiag

let check_close ?(tol = 1e-12) name expected actual =
  let scale = 1. +. Float.max (abs_float expected) (abs_float actual) in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

let check_vec ?(tol = 1e-12) name expected actual =
  if not (Vec.approx_equal ~tol expected actual) then
    Alcotest.failf "%s: expected %s, got %s" name
      (Format.asprintf "%a" Vec.pp expected)
      (Format.asprintf "%a" Vec.pp actual)

(* ------------------------------------------------------------------ *)

let test_vec_arithmetic () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  check_vec "add" [| 5.; 7.; 9. |] (Vec.add a b);
  check_vec "sub" [| -3.; -3.; -3. |] (Vec.sub a b);
  check_vec "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  check_close "dot" 32. (Vec.dot a b);
  check_close "norm1" 6. (Vec.norm1 a);
  check_close "norm_inf" 6. (Vec.norm_inf b);
  check_close "norm2" (sqrt 14.) (Vec.norm2 a);
  check_close "sum" 6. (Vec.sum a)

let test_vec_axpy () =
  let x = [| 1.; 2. |] and y = [| 10.; 20. |] in
  Vec.axpy ~alpha:3. ~x ~y;
  check_vec "axpy" [| 13.; 26. |] y;
  check_vec "x untouched" [| 1.; 2. |] x

let test_vec_dimension_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_vec_max_abs_diff () =
  check_close "max_abs_diff" 2. (Vec.max_abs_diff [| 1.; 5. |] [| 2.; 3. |])

(* ------------------------------------------------------------------ *)

let test_dense_construction () =
  let m = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_close "get" 3. (Dense.get m 1 0);
  Alcotest.(check int) "rows" 2 (Dense.rows m);
  Alcotest.check_raises "ragged"
    (Invalid_argument "Dense.of_arrays: ragged rows") (fun () ->
      ignore (Dense.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

let test_dense_mul () =
  let a = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Dense.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Dense.mul a b in
  check_close "c00" 19. (Dense.get c 0 0);
  check_close "c01" 22. (Dense.get c 0 1);
  check_close "c10" 43. (Dense.get c 1 0);
  check_close "c11" 50. (Dense.get c 1 1)

let test_dense_identity_neutral () =
  let a = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check bool) "I*A = A" true
    (Dense.approx_equal (Dense.mul (Dense.identity 2) a) a)

let test_dense_mv_vm () =
  let a = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_vec "mv" [| 5.; 11. |] (Dense.mv a [| 1.; 2. |]);
  check_vec "vm" [| 7.; 10. |] (Dense.vm [| 1.; 2. |] a);
  check_vec "vm = mv transpose"
    (Dense.mv (Dense.transpose a) [| 1.; 2. |])
    (Dense.vm [| 1.; 2. |] a)

let test_dense_trace_norm () =
  let a = Dense.of_arrays [| [| 1.; -2. |]; [| 3.; 4. |] |] in
  check_close "trace" 5. (Dense.trace a);
  check_close "norm_inf" 7. (Dense.norm_inf a)

(* ------------------------------------------------------------------ *)

let test_lu_solve_known () =
  let a =
    Dense.of_arrays
      [| [| 2.; 1.; 1. |]; [| 4.; -6.; 0. |]; [| -2.; 7.; 2. |] |]
  in
  let x_true = [| 1.; -2.; 3. |] in
  let b = Dense.mv a x_true in
  check_vec ~tol:1e-12 "lu solve" x_true (Lu.solve_system a b)

let test_lu_pivoting_required () =
  (* Zero top-left pivot: fails without partial pivoting. *)
  let a = Dense.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_vec "permutation solve" [| 2.; 1. |] (Lu.solve_system a [| 1.; 2. |])

let test_lu_det () =
  let a = Dense.of_arrays [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  check_close "det diag" 6. (Lu.det (Lu.factorize a));
  let swap = Dense.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_close "det swap" (-1.) (Lu.det (Lu.factorize swap))

let test_lu_inverse () =
  let a = Dense.of_arrays [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Lu.inverse (Lu.factorize a) in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Dense.approx_equal ~tol:1e-12 (Dense.mul a inv) (Dense.identity 2))

let test_lu_singular () =
  let a = Dense.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  match Lu.factorize a with
  | _ -> Alcotest.fail "expected Singular"
  | exception Lu.Singular _ -> ()

let test_lu_random_roundtrip () =
  (* Random diagonally-dominant systems solve to high accuracy. *)
  let rng = Mrm_util.Rng.create ~seed:5L () in
  for trial = 1 to 20 do
    let n = 1 + Mrm_util.Rng.int_below rng 15 in
    let a =
      Dense.init ~rows:n ~cols:n (fun i j ->
          let v = Mrm_util.Rng.uniform rng -. 0.5 in
          if i = j then v +. float_of_int n else v)
    in
    let x_true = Array.init n (fun _ -> Mrm_util.Rng.uniform rng) in
    let x = Lu.solve_system a (Dense.mv a x_true) in
    if not (Vec.approx_equal ~tol:1e-10 x_true x) then
      Alcotest.failf "roundtrip failed on trial %d (n=%d)" trial n
  done

let test_lu_solve_matrix () =
  let a = Dense.of_arrays [| [| 2.; 0. |]; [| 0.; 4. |] |] in
  let b = Dense.of_arrays [| [| 2.; 4. |]; [| 8.; 12. |] |] in
  let x = Lu.solve_matrix (Lu.factorize a) b in
  check_close "x00" 1. (Dense.get x 0 0);
  check_close "x11" 3. (Dense.get x 1 1)

(* ------------------------------------------------------------------ *)

let test_sparse_of_triplets () =
  let m = Sparse.of_triplets ~rows:3 ~cols:3 [ (0, 1, 2.); (2, 0, -1.) ] in
  Alcotest.(check int) "nnz" 2 (Sparse.nnz m);
  check_close "get present" 2. (Sparse.get m 0 1);
  check_close "get absent" 0. (Sparse.get m 1 1)

let test_sparse_duplicates_summed () =
  let m = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.); (0, 0, 2.) ] in
  check_close "summed" 3. (Sparse.get m 0 0);
  Alcotest.(check int) "merged" 1 (Sparse.nnz m)

let test_sparse_zero_dropped () =
  let m = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 0.); (1, 1, 5.) ] in
  Alcotest.(check int) "zeros dropped" 1 (Sparse.nnz m)

let test_sparse_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Sparse.of_triplets: (2,0) out of 2x2") (fun () ->
      ignore (Sparse.of_triplets ~rows:2 ~cols:2 [ (2, 0, 1.) ]))

let test_sparse_dense_roundtrip () =
  let d =
    Dense.of_arrays
      [| [| 0.; 1.; 0. |]; [| 2.; 0.; 3. |]; [| 0.; 0.; 4. |] |]
  in
  Alcotest.(check bool) "roundtrip" true
    (Dense.approx_equal d (Sparse.to_dense (Sparse.of_dense d)))

let test_sparse_mv_matches_dense () =
  let rng = Mrm_util.Rng.create ~seed:19L () in
  for _ = 1 to 20 do
    let rows = 1 + Mrm_util.Rng.int_below rng 10 in
    let cols = 1 + Mrm_util.Rng.int_below rng 10 in
    let d =
      Dense.init ~rows ~cols (fun _ _ ->
          if Mrm_util.Rng.uniform rng < 0.4 then Mrm_util.Rng.uniform rng -. 0.5
          else 0.)
    in
    let s = Sparse.of_dense d in
    let x = Array.init cols (fun _ -> Mrm_util.Rng.uniform rng) in
    let y = Array.init rows (fun _ -> Mrm_util.Rng.uniform rng) in
    check_vec ~tol:1e-13 "spmv" (Dense.mv d x) (Sparse.mv s x);
    check_vec ~tol:1e-13 "spvm" (Dense.vm y d) (Sparse.vm y s)
  done

let test_sparse_mv_into () =
  let s = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 2.); (1, 0, 1.) ] in
  let y = Array.make 2 99. in
  Sparse.mv_into s [| 3.; 4. |] y;
  check_vec "mv_into" [| 6.; 3. |] y;
  let x = Array.make 2 1. in
  Alcotest.check_raises "aliasing rejected"
    (Invalid_argument "Sparse.mv_into: x and y must be distinct") (fun () ->
      Sparse.mv_into s x x)

let test_sparse_add_scale () =
  let a = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.); (0, 1, 2.) ] in
  let b = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, -1.); (1, 1, 4.) ] in
  let c = Sparse.add a b in
  (* 1 + (-1) = 0 must vanish from the structure. *)
  Alcotest.(check int) "cancellation drops entry" 2 (Sparse.nnz c);
  check_close "kept" 2. (Sparse.get c 0 1);
  let s = Sparse.scale 2. a in
  check_close "scale" 4. (Sparse.get s 0 1);
  Alcotest.(check int) "scale by zero empties" 0
    (Sparse.nnz (Sparse.scale 0. a))

let test_sparse_add_scaled_identity () =
  let a = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 1, 3.) ] in
  let b = Sparse.add_scaled_identity 5. a in
  check_close "diag added" 5. (Sparse.get b 0 0);
  check_close "offdiag kept" 3. (Sparse.get b 0 1)

let test_sparse_transpose_row_sums () =
  let a = Sparse.of_triplets ~rows:2 ~cols:3 [ (0, 2, 7.); (1, 0, 1.) ] in
  let at = Sparse.transpose a in
  Alcotest.(check int) "transposed rows" 3 (Sparse.rows at);
  check_close "transposed entry" 7. (Sparse.get at 2 0);
  check_vec "row sums" [| 7.; 1. |] (Sparse.row_sums a);
  check_close "mean nnz" 1. (Sparse.mean_nnz_per_row a)

let test_sparse_identity_diagonal () =
  let i3 = Sparse.identity 3 in
  check_vec "identity mv" [| 1.; 2.; 3. |] (Sparse.mv i3 [| 1.; 2.; 3. |]);
  let d = Sparse.diagonal [| 1.; 0.; 3. |] in
  Alcotest.(check int) "diagonal drops zero" 2 (Sparse.nnz d)

let test_sparse_map_values () =
  let a = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, -2.); (1, 1, 3.) ] in
  let b = Sparse.map_values (fun v -> Float.max 0. v) a in
  Alcotest.(check int) "clamped entry dropped" 1 (Sparse.nnz b);
  check_close "kept value" 3. (Sparse.get b 1 1)

(* ------------------------------------------------------------------ *)

let test_cmatrix_solve_real_system () =
  (* A complex solve on a real system agrees with the real LU. *)
  let a = Dense.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 5.; 10. |] in
  let x_real = Lu.solve_system a b in
  let x_complex =
    Cmatrix.solve (Cmatrix.of_real a)
      (Array.map (fun v -> { Complex.re = v; im = 0. }) b)
  in
  Array.iteri
    (fun i xc ->
      check_close "re" x_real.(i) xc.Complex.re;
      check_close "im" 0. xc.Complex.im)
    x_complex

let test_cmatrix_complex_system () =
  (* (i) * x = 1  =>  x = -i. *)
  let a = Cmatrix.init ~rows:1 ~cols:1 (fun _ _ -> Complex.i) in
  let x = Cmatrix.solve a [| Complex.one |] in
  check_close "re" 0. x.(0).Complex.re;
  check_close "im" (-1.) x.(0).Complex.im

let test_cmatrix_mv () =
  let a = Cmatrix.identity 2 in
  let x = [| Complex.one; Complex.i |] in
  let y = Cmatrix.mv a x in
  check_close "mv id re" 1. y.(0).Complex.re;
  check_close "mv id im" 1. y.(1).Complex.im

let test_cmatrix_singular () =
  let a = Cmatrix.zeros ~rows:2 ~cols:2 in
  match Cmatrix.solve a [| Complex.one; Complex.one |] with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ()

let test_cmatrix_add_sub_scale () =
  let a = Cmatrix.identity 2 in
  let b = Cmatrix.scale { Complex.re = 2.; im = 0. } a in
  let c = Cmatrix.sub (Cmatrix.add a b) a in
  check_close "scaled entry" 2. (Cmatrix.get c 0 0).Complex.re;
  check_close "off entry" 0. (Cmatrix.get c 0 1).Complex.re

(* ------------------------------------------------------------------ *)

let test_tridiag_known_eigenvalues () =
  (* The (2,-1) tridiagonal of size n has eigenvalues
     2 - 2 cos (k pi / (n+1)). *)
  let n = 12 in
  let eig =
    Tridiag.eigenvalues ~diag:(Array.make n 2.)
      ~offdiag:(Array.make (n - 1) (-1.))
  in
  for k = 1 to n do
    let expected =
      2. -. (2. *. cos (float_of_int k *. Float.pi /. float_of_int (n + 1)))
    in
    check_close ~tol:1e-10
      (Printf.sprintf "eigenvalue %d" k)
      expected
      eig.(k - 1)
  done

let test_tridiag_diagonal_matrix () =
  let eig = Tridiag.eigen ~diag:[| 3.; 1.; 2. |] ~offdiag:[| 0.; 0. |] in
  check_vec "sorted eigenvalues" [| 1.; 2.; 3. |] eig.Tridiag.eigenvalues

let test_tridiag_first_components () =
  (* 2x2 symmetric [[0,1],[1,0]]: eigenvectors (1, +-1)/sqrt 2, so both
     squared first components are 1/2. *)
  let eig = Tridiag.eigen ~diag:[| 0.; 0. |] ~offdiag:[| 1. |] in
  check_close "lambda-" (-1.) eig.Tridiag.eigenvalues.(0);
  check_close "lambda+" 1. eig.Tridiag.eigenvalues.(1);
  Array.iter
    (fun c -> check_close ~tol:1e-12 "weight" 0.5 (c *. c))
    eig.Tridiag.first_components

let test_tridiag_weights_sum () =
  (* Sum of squared first components is 1 (orthonormal eigenbasis). *)
  let rng = Mrm_util.Rng.create ~seed:31L () in
  for _ = 1 to 10 do
    let n = 2 + Mrm_util.Rng.int_below rng 10 in
    let diag = Array.init n (fun _ -> Mrm_util.Rng.uniform rng) in
    let offdiag =
      Array.init (n - 1) (fun _ -> 0.1 +. Mrm_util.Rng.uniform rng)
    in
    let eig = Tridiag.eigen ~diag ~offdiag in
    let total =
      Array.fold_left
        (fun acc c -> acc +. (c *. c))
        0. eig.Tridiag.first_components
    in
    check_close ~tol:1e-10 "weights sum to 1" 1. total
  done

let test_tridiag_size_one () =
  let eig = Tridiag.eigen ~diag:[| 42. |] ~offdiag:[||] in
  check_close "single eigenvalue" 42. eig.Tridiag.eigenvalues.(0);
  check_close "single component" 1. eig.Tridiag.first_components.(0)

let test_tridiag_invalid () =
  Alcotest.check_raises "offdiag length"
    (Invalid_argument "Tridiag.eigen: offdiag must have length n-1")
    (fun () -> ignore (Tridiag.eigen ~diag:[| 1.; 2. |] ~offdiag:[||]))

(* ------------------------------------------------------------------ *)
(* Fused multi-vector products and the tridiagonal fast path: every
   variant must be bit-for-bit equal to independent [mv_into_range]
   calls — the solver's parallel sweep relies on it. *)

(* Random square CSR matrix as a triplet list; duplicate positions are
   fine ([of_triplets] merges them). *)
let gen_square_matrix =
  QCheck2.Gen.(
    let* n = int_range 1 20 in
    let* entries = list_size (int_range 0 (3 * n)) (float_range (-2.) 2.) in
    let* seed = int_range 1 1000 in
    let triplets =
      List.mapi
        (fun k v -> ((k * seed) mod n, ((k * 7) + seed) mod n, v))
        entries
    in
    return (n, triplets))

let gen_vectors n count =
  QCheck2.Gen.(
    list_repeat (count * n) (float_range (-1.) 1.)
    |> map (fun xs ->
           let a = Array.of_list xs in
           Array.init count (fun k -> Array.sub a (k * n) n)))

(* Reference: [count] independent single-vector products over the same
   range, outputs left untouched outside it. *)
let reference_multi m xs ~lo ~hi =
  Array.map
    (fun x ->
      let y = Array.make (Sparse.rows m) 0.123456789 in
      Sparse.mv_into_range m x y ~lo ~hi;
      y)
    xs

let prop_mv_multi_bitwise =
  QCheck2.Test.make ~count:200
    ~name:"mv{2,3,multi}_into_range = independent mv_into_range (bitwise)"
    QCheck2.Gen.(
      let* n, triplets = gen_square_matrix in
      let* count = int_range 0 5 in
      let* xs = gen_vectors n count in
      let* a = int_range 0 n in
      let* b = int_range 0 n in
      return (n, triplets, xs, min a b, max a b))
    (fun (n, triplets, xs, lo, hi) ->
      let m = Sparse.of_triplets ~rows:n ~cols:n triplets in
      let count = Array.length xs in
      let expected = reference_multi m xs ~lo ~hi in
      let ys = Array.init count (fun _ -> Array.make n 0.123456789) in
      Sparse.mv_multi_into_range m xs ys ~lo ~hi;
      let via_multi = expected = ys in
      let via_pair =
        count <> 2
        || begin
             let ys = Array.init 2 (fun _ -> Array.make n 0.123456789) in
             Sparse.mv2_into_range m xs.(0) xs.(1) ys.(0) ys.(1) ~lo ~hi;
             expected = ys
           end
      in
      let via_triple =
        count <> 3
        || begin
             let ys = Array.init 3 (fun _ -> Array.make n 0.123456789) in
             Sparse.mv3_into_range m xs.(0) xs.(1) xs.(2) ys.(0) ys.(1)
               ys.(2) ~lo ~hi;
             expected = ys
           end
      in
      via_multi && via_pair && via_triple)

(* Random birth-death generator-shaped matrix: entries only on the
   three central diagonals, any of them possibly zero (dropped by
   [of_triplets], i.e. genuinely absent). *)
let gen_birth_death =
  QCheck2.Gen.(
    let* n = int_range 1 20 in
    let* diag = list_repeat n (oneof [ return 0.; float_range (-3.) 3. ]) in
    let* lower =
      list_repeat (max 0 (n - 1)) (oneof [ return 0.; float_range 0.1 2. ])
    in
    let* upper =
      list_repeat (max 0 (n - 1)) (oneof [ return 0.; float_range 0.1 2. ])
    in
    let triplets =
      List.concat
        [
          List.mapi (fun i v -> (i, i, v)) diag;
          List.mapi (fun i v -> (i + 1, i, v)) lower;
          List.mapi (fun i v -> (i, i + 1, v)) upper;
        ]
    in
    return (n, triplets))

let prop_tridiag_bitwise =
  QCheck2.Test.make ~count:200
    ~name:"tridiag fast path = CSR mv_into_range (bitwise)"
    QCheck2.Gen.(
      let* n, triplets = gen_birth_death in
      let* count = int_range 0 4 in
      let* xs = gen_vectors n count in
      let* a = int_range 0 n in
      let* b = int_range 0 n in
      return (n, triplets, xs, min a b, max a b))
    (fun (n, triplets, xs, lo, hi) ->
      let m = Sparse.of_triplets ~rows:n ~cols:n triplets in
      match Sparse.as_tridiagonal m with
      | None -> false (* every generated matrix is tridiagonal *)
      | Some td ->
          Sparse.tridiag_dim td = n
          &&
          let count = Array.length xs in
          let expected = reference_multi m xs ~lo ~hi in
          let ys = Array.init count (fun _ -> Array.make n 0.123456789) in
          Sparse.tridiag_mv_multi_into_range td xs ys ~lo ~hi;
          let multi_ok = expected = ys in
          let single_ok =
            count < 1
            || begin
                 let y = Array.make n 0.123456789 in
                 Sparse.tridiag_mv_into_range td xs.(0) y ~lo ~hi;
                 expected.(0) = y
               end
          in
          multi_ok && single_ok)

let test_as_tridiagonal_rejects () =
  let check name m expected =
    Alcotest.(check bool)
      name expected
      (Option.is_some (Sparse.as_tridiagonal m))
  in
  check "off-band entry"
    (Sparse.of_triplets ~rows:3 ~cols:3 [ (0, 2, 1.); (1, 1, 2.) ])
    false;
  check "non-square"
    (Sparse.of_triplets ~rows:2 ~cols:3 [ (0, 0, 1.) ])
    false;
  check "diagonal only"
    (Sparse.of_triplets ~rows:3 ~cols:3 [ (0, 0, 1.); (2, 2, 5.) ])
    true;
  check "empty matrix" (Sparse.of_triplets ~rows:4 ~cols:4 []) true;
  check "full band"
    (Sparse.of_triplets ~rows:3 ~cols:3
       [ (0, 0, 1.); (0, 1, 2.); (1, 0, 3.); (1, 1, 4.); (1, 2, 5.);
         (2, 1, 6.); (2, 2, 7.) ])
    true

let test_mv_multi_rejects_aliasing () =
  let m = Sparse.identity 3 in
  let x = [| 1.; 2.; 3. |] and x2 = [| 4.; 5.; 6. |] in
  let y = Array.make 3 0. in
  Alcotest.check_raises "output aliases input"
    (Invalid_argument
       "Sparse.mv_multi_into_range: inputs and outputs must be distinct")
    (fun () -> Sparse.mv_multi_into_range m [| x |] [| x |] ~lo:0 ~hi:3);
  Alcotest.check_raises "outputs alias each other"
    (Invalid_argument
       "Sparse.mv_multi_into_range: outputs must be distinct")
    (fun () ->
      Sparse.mv_multi_into_range m [| x; x2 |] [| y; y |] ~lo:0 ~hi:3)

let test_mv_multi_empty_range () =
  (* An empty [lo, hi) (coincident by_nnz boundaries produce these)
     must leave the outputs untouched. *)
  let m = Sparse.of_triplets ~rows:3 ~cols:3 [ (0, 0, 2.); (2, 1, 1.) ] in
  let xs = [| [| 1.; 2.; 3. |] |] in
  let ys = [| [| 9.; 9.; 9. |] |] in
  Sparse.mv_multi_into_range m xs ys ~lo:2 ~hi:2;
  check_vec "untouched" [| 9.; 9.; 9. |] ys.(0);
  match Sparse.as_tridiagonal m with
  | None -> Alcotest.fail "expected tridiagonal"
  | Some td ->
      Sparse.tridiag_mv_multi_into_range td xs ys ~lo:0 ~hi:0;
      check_vec "tridiag untouched" [| 9.; 9.; 9. |] ys.(0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mrm_linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "arithmetic" `Quick test_vec_arithmetic;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "dimension mismatch" `Quick
            test_vec_dimension_mismatch;
          Alcotest.test_case "max_abs_diff" `Quick test_vec_max_abs_diff;
        ] );
      ( "dense",
        [
          Alcotest.test_case "construction" `Quick test_dense_construction;
          Alcotest.test_case "multiplication" `Quick test_dense_mul;
          Alcotest.test_case "identity neutral" `Quick
            test_dense_identity_neutral;
          Alcotest.test_case "mv and vm" `Quick test_dense_mv_vm;
          Alcotest.test_case "trace and norm" `Quick test_dense_trace_norm;
        ] );
      ( "lu",
        [
          Alcotest.test_case "known system" `Quick test_lu_solve_known;
          Alcotest.test_case "pivoting" `Quick test_lu_pivoting_required;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "random roundtrips" `Quick
            test_lu_random_roundtrip;
          Alcotest.test_case "solve matrix" `Quick test_lu_solve_matrix;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "triplets" `Quick test_sparse_of_triplets;
          Alcotest.test_case "duplicates" `Quick test_sparse_duplicates_summed;
          Alcotest.test_case "zero dropped" `Quick test_sparse_zero_dropped;
          Alcotest.test_case "out of range" `Quick test_sparse_out_of_range;
          Alcotest.test_case "dense roundtrip" `Quick
            test_sparse_dense_roundtrip;
          Alcotest.test_case "mv matches dense" `Quick
            test_sparse_mv_matches_dense;
          Alcotest.test_case "mv_into" `Quick test_sparse_mv_into;
          Alcotest.test_case "add/scale" `Quick test_sparse_add_scale;
          Alcotest.test_case "add scaled identity" `Quick
            test_sparse_add_scaled_identity;
          Alcotest.test_case "transpose/row sums" `Quick
            test_sparse_transpose_row_sums;
          Alcotest.test_case "identity/diagonal" `Quick
            test_sparse_identity_diagonal;
          Alcotest.test_case "map_values" `Quick test_sparse_map_values;
        ] );
      ( "cmatrix",
        [
          Alcotest.test_case "real system" `Quick
            test_cmatrix_solve_real_system;
          Alcotest.test_case "complex system" `Quick
            test_cmatrix_complex_system;
          Alcotest.test_case "mv" `Quick test_cmatrix_mv;
          Alcotest.test_case "singular" `Quick test_cmatrix_singular;
          Alcotest.test_case "add/sub/scale" `Quick
            test_cmatrix_add_sub_scale;
        ] );
      ( "tridiag",
        [
          Alcotest.test_case "known eigenvalues" `Quick
            test_tridiag_known_eigenvalues;
          Alcotest.test_case "diagonal matrix" `Quick
            test_tridiag_diagonal_matrix;
          Alcotest.test_case "first components" `Quick
            test_tridiag_first_components;
          Alcotest.test_case "weights sum" `Quick test_tridiag_weights_sum;
          Alcotest.test_case "size one" `Quick test_tridiag_size_one;
          Alcotest.test_case "invalid input" `Quick test_tridiag_invalid;
        ] );
      ( "fused kernels",
        [
          QCheck_alcotest.to_alcotest prop_mv_multi_bitwise;
          QCheck_alcotest.to_alcotest prop_tridiag_bitwise;
          Alcotest.test_case "as_tridiagonal detection" `Quick
            test_as_tridiagonal_rejects;
          Alcotest.test_case "aliasing rejected" `Quick
            test_mv_multi_rejects_aliasing;
          Alcotest.test_case "empty range" `Quick test_mv_multi_empty_range;
        ] );
    ]
