(* A sample realization of a second-order Markov reward model, in the
   spirit of Figure 1 of the paper: a 3-state chain where state 2 has a
   large drift AND a large variance, so the accumulated reward visibly
   fluctuates (and can even decrease) during sojourns there.

   Prints an ASCII rendering of the path plus the raw (t, state, B(t))
   series for external plotting.

   Run with: dune exec examples/sample_path.exe *)

let () =
  (* Figure-1-like model: r = (0, 1, 3), sigma^2 = (0.2, 0.5, 2). *)
  let generator =
    Mrm_ctmc.Generator.of_triplets ~states:3
      [ (0, 1, 2.0); (1, 0, 1.0); (1, 2, 1.5); (2, 1, 2.0); (2, 0, 0.5) ]
  in
  let model =
    Mrm_core.Model.make ~generator ~rates:[| 0.; 1.; 3. |]
      ~variances:[| 0.2; 0.5; 2.0 |] ~initial:[| 1.; 0.; 0. |]
  in
  let rng = Mrm_util.Rng.create ~seed:42L () in
  let path = Mrm_core.Simulate.joint_path model rng ~t_max:2.0 ~grid:100 in

  (* ASCII plot: reward on the vertical axis. *)
  let rewards = Array.map (fun p -> p.Mrm_core.Simulate.reward) path in
  let lo = Array.fold_left Float.min infinity rewards in
  let hi = Array.fold_left Float.max neg_infinity rewards in
  let rows = 20 in
  let span = Float.max (hi -. lo) 1e-9 in
  let row_of r =
    let normalized = (r -. lo) /. span in
    min (rows - 1) (int_of_float (normalized *. float_of_int rows))
  in
  let canvas = Array.make_matrix rows (Array.length path) ' ' in
  Array.iteri
    (fun k p ->
      let glyph =
        match p.Mrm_core.Simulate.state with
        | 0 -> '.'
        | 1 -> '+'
        | 2 -> '*'
        | _ -> '?'
      in
      canvas.(row_of p.reward).(k) <- glyph)
    path;
  Printf.printf
    "Accumulated reward B(t) over t in [0,2]; glyph = current state\n";
  Printf.printf "(. = state 0, + = state 1, * = state 2)\n\n";
  for row = rows - 1 downto 0 do
    Printf.printf "%8.3f |%s\n"
      (lo +. ((float_of_int row +. 0.5) /. float_of_int rows *. span))
      (String.init (Array.length path) (fun k -> canvas.(row).(k)))
  done;
  Printf.printf "         +%s\n" (String.make (Array.length path) '-');

  print_endline "\nt, state, B(t):";
  Array.iter
    (fun p ->
      Printf.printf "%.3f %d %.5f\n" p.Mrm_core.Simulate.time p.state p.reward)
    path
