(* Buffer dimensioning for a bursty link with a second-order fluid queue
   (the bounded sibling of the paper's reward models; its Section 4 and
   refs [7, 8]).

   An ON-OFF source feeds a link of capacity c: while ON the net buffer
   drift is (peak - c) with variance sigma2_on; while OFF it drains at -c.
   The fluid solver gives the stationary buffer distribution; we read off
   the buffer size needed for a target overflow probability and sweep the
   link capacity.

   Run with: dune exec examples/link_dimensioning.exe *)

module Fluid = Mrm_fluid.Fluid

let () =
  let alpha = 1.0 (* ON -> OFF *) and beta = 0.5 (* OFF -> ON *) in
  let peak = 10.0 and sigma2_on = 4.0 in
  let generator =
    Mrm_ctmc.Generator.of_triplets ~states:2
      [ (0, 1, beta); (1, 0, alpha) ] (* state 0 = OFF, 1 = ON *)
  in
  let on_fraction = beta /. (alpha +. beta) in
  let mean_input = on_fraction *. peak in
  Printf.printf
    "ON-OFF source: peak %.1f, ON fraction %.2f, mean rate %.2f\n\n" peak
    on_fraction mean_input;

  Printf.printf "%8s %12s %12s %12s %14s\n" "capacity" "utilization"
    "E[level]" "decay rate" "buf(P<1e-6)";
  List.iter
    (fun c ->
      let queue =
        Fluid.make ~generator
          ~rates:[| -.c; peak -. c |]
          ~variances:[| 0.5; sigma2_on |]
      in
      let s = Fluid.stationary queue in
      let eta = Fluid.decay_rate s in
      (* Buffer size for overflow probability 1e-6 by bisection on the
         exact ccdf (the decay rate alone would ignore the prefactor). *)
      let target = 1e-6 in
      let rec bisect lo hi iterations =
        if iterations = 0 then hi
        else begin
          let mid = 0.5 *. (lo +. hi) in
          if Fluid.ccdf s mid > target then bisect mid hi (iterations - 1)
          else bisect lo mid (iterations - 1)
        end
      in
      let buffer = bisect 0. (200. /. eta) 60 in
      Printf.printf "%8.1f %12.3f %12.4f %12.4f %14.2f\n" c
        (mean_input /. c) (Fluid.mean_level s) eta buffer)
    [ 4.5; 5.; 6.; 7.; 8. ];

  print_endline
    "\n(utilization -> 1 blows the buffer requirement up; extra capacity\n\
     buys exponentially smaller buffers -- the classic dimensioning\n\
     trade-off, now with within-state variance included)"
