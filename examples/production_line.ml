(* Performability of a production line, modeled as a machine-repair
   second-order MRM: total output over a shift, its uncertainty, and the
   probability of missing a production quota.

   Demonstrates a workload the paper's introduction motivates: a discrete
   state process (machines up/down) modulating a noisy continuous
   accumulation (production volume).

   Run with: dune exec examples/production_line.exe *)

module Repair = Mrm_models.Machine_repair
module Randomization = Mrm_core.Randomization

let () =
  let params =
    {
      Repair.machines = 12;
      repairmen = 2;
      failure = 0.15;
      repair = 1.2;
      throughput = 10.; (* units per hour per working machine *)
      throughput_variance = 8.; (* production jitter (second-order part) *)
    }
  in
  let model = Repair.model params in
  let shift = 8.0 (* hours *) in

  Printf.printf "Production line: %d machines, %d repairmen, %g h shift.\n\n"
    params.machines params.repairmen shift;

  let result = Randomization.moments model ~t:shift ~order:4 in
  let pi = (model : Mrm_core.Model.t).initial in
  let raw n = Mrm_linalg.Vec.dot pi result.moments.(n) in
  let mean = raw 1 in
  let variance = raw 2 -. (mean *. mean) in
  let std = sqrt variance in
  Printf.printf "expected output  : %.1f units\n" mean;
  Printf.printf "std deviation    : %.1f units\n" std;
  Printf.printf "skewness         : %+.4f\n"
    ((raw 3 -. (3. *. mean *. raw 2) +. (2. *. (mean ** 3.))) /. (std ** 3.));

  (* Compare against a deterministic-production (first-order) variant: the
     state-modulation contribution to the variance. *)
  let deterministic =
    Repair.model { params with throughput_variance = 0. }
  in
  let var_first_order = Randomization.variance deterministic ~t:shift in
  Printf.printf "variance split   : %.1f modulation + %.1f jitter = %.1f\n"
    var_first_order (variance -. var_first_order) variance;

  (* Quota risk from moment bounds. *)
  let result13 = Randomization.moments model ~t:shift ~order:12 in
  let moments =
    Array.init 13 (fun n -> Mrm_linalg.Vec.dot pi result13.moments.(n))
  in
  let bounds = Mrm_core.Moment_bounds.prepare moments in
  print_newline ();
  List.iter
    (fun quota ->
      let b = Mrm_core.Moment_bounds.cdf_bounds bounds quota in
      Printf.printf
        "P(output < %6.0f units) is between %.4f and %.4f (moment bounds)\n"
        quota b.lower b.upper)
    [ 700.; 800.; 850.; 900. ];

  (* Long shifts: the reward CLT constants. *)
  Printf.printf "\nlong-run output rate      : %.2f units/h\n"
    (Mrm_core.Steady.reward_rate model);
  Printf.printf "long-run variance rate    : %.2f units^2/h\n"
    (Mrm_core.Steady.variance_rate model)
