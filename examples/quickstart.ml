(* Quickstart: build a tiny second-order Markov reward model and compute
   moments of the accumulated reward with every solver in the library.

   The model: a service that alternates between a NORMAL state (reward
   accrues at rate 5 with variance 0.5) and a DEGRADED state (rate 1,
   variance 2.0). NORMAL -> DEGRADED at rate 0.4, back at rate 2.0.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let generator =
    Mrm_ctmc.Generator.of_triplets ~states:2 [ (0, 1, 0.4); (1, 0, 2.0) ]
  in
  let model =
    Mrm_core.Model.make ~generator
      ~rates:[| 5.0; 1.0 |] (* reward drift per state *)
      ~variances:[| 0.5; 2.0 |] (* second-order part; [| 0.; 0. |] would be
                                   an ordinary (first-order) MRM *)
      ~initial:[| 1.0; 0.0 |]
  in
  let t = 3.0 in

  (* The paper's randomization method (Section 6): fast, with a guaranteed
     truncation error bound. *)
  let result = Mrm_core.Randomization.moments model ~t ~order:3 in
  Printf.printf "randomization (G = %d iterations, eps = %g):\n"
    result.diagnostics.iterations result.diagnostics.eps;
  Array.iteri
    (fun n v ->
      Printf.printf "  E[B(%.1f)^%d | Z(0)=NORMAL] = %.8g\n" t n v.(0))
    result.moments;

  (* Mean and variance of the unconditional reward. *)
  Printf.printf "mean      = %.8g\n" (Mrm_core.Randomization.mean model ~t);
  Printf.printf "variance  = %.8g\n"
    (Mrm_core.Randomization.variance model ~t);

  (* Cross-check with the ODE solver on eq. (6) and with simulation. *)
  let ode = Mrm_core.Moments_ode.moment model ~t ~order:2 in
  Printf.printf "E[B^2] via ODE (Heun)      = %.8g\n" ode;
  let rng = Mrm_util.Rng.create () in
  let estimates =
    Mrm_core.Simulate.estimate_moments model rng ~t ~max_order:2
      ~replicas:50_000
  in
  let second = estimates.(1) in
  Printf.printf "E[B^2] via simulation      = %.6g  [%.6g, %.6g] (95%% CI)\n"
    second.value second.ci_low second.ci_high;

  (* Long-run behaviour. *)
  Printf.printf "steady-state reward rate   = %.8g\n"
    (Mrm_core.Steady.reward_rate model);
  Printf.printf "long-run variance rate     = %.8g\n"
    (Mrm_core.Steady.variance_rate model)
