(* Distribution of the accumulated reward, three ways (Section 7 of the
   paper, Figures 5-7 plus the PDE route of eq. (4)):

   1. moment-based CDF bounds (the only road that scales),
   2. the finite-difference PDE solver for the density,
   3. the empirical CDF from the Monte-Carlo simulator.

   Uses a small 3-state model so all three are fast; the example prints
   the three estimates side by side on a grid of points.

   Run with: dune exec examples/distribution_bounds.exe *)

module Bounds = Mrm_core.Moment_bounds
module Table = Mrm_util.Table

let () =
  let generator =
    Mrm_ctmc.Generator.of_triplets ~states:3
      [ (0, 1, 1.0); (1, 2, 2.0); (2, 0, 1.5); (1, 0, 0.5) ]
  in
  let model =
    Mrm_core.Model.make ~generator ~rates:[| 4.0; 2.0; 0.5 |]
      ~variances:[| 0.3; 1.0; 0.1 |]
      ~initial:[| 1.; 0.; 0. |]
  in
  let t = 1.5 in

  (* 1. Moment bounds (16 moments). *)
  let order = 16 in
  let result = Mrm_core.Randomization.moments model ~t ~order in
  let pi = (model : Mrm_core.Model.t).initial in
  let moments =
    Array.init (order + 1) (fun n -> Mrm_linalg.Vec.dot pi result.moments.(n))
  in
  let bounds = Bounds.prepare moments in
  Printf.printf
    "Moment bounds prepared from %d moments (%d Gauss nodes kept).\n"
    (Bounds.moments_used bounds)
    (Bounds.quadrature_size bounds);

  (* 2. PDE density (eq. 4). *)
  let pde = Mrm_core.Pde.solve model ~t ~cells:800 in
  Printf.printf "PDE solved on %d cells (%d time steps, dx = %.4f).\n"
    (Array.length pde.xs - 1) pde.steps_taken pde.dx;

  (* 3. Simulation. *)
  let rng = Mrm_util.Rng.create () in
  let samples = Mrm_core.Simulate.sample model rng ~t ~replicas:100_000 in
  print_newline ();

  let mean = moments.(1) in
  let std = sqrt (moments.(2) -. (mean *. mean)) in
  let points = Array.init 9 (fun k -> mean +. ((float_of_int k -. 4.) /. 2. *. std)) in
  let rows =
    Array.to_list
      (Array.map
         (fun x ->
           let b = Bounds.cdf_bounds bounds x in
           let pde_cdf = Mrm_core.Pde.cdf model pde x in
           let empirical = Mrm_util.Stats.empirical_cdf samples x in
           List.map Table.float_cell
             [ x; b.lower; b.upper; pde_cdf; empirical ])
         points)
  in
  print_string
    (Table.render
       ~header:[ "x"; "bound-low"; "bound-up"; "PDE"; "simulation" ]
       rows);
  Printf.printf "\nmean = %.4f, std = %.4f at t = %.2f\n" mean std t
