(* Maintenance-cost analysis with impulse rewards, plus
   mean-time-to-failure via absorption analysis.

   The fault-tolerant multiprocessor of the model zoo accrues OPERATING
   COST continuously (energy: proportional to working processors, with
   second-order fluctuation) and LUMP costs at events: each covered
   failure costs a hot-swap intervention, each uncovered failure a full
   reboot. Impulse rewards capture the lump costs exactly -- this is the
   generalization the paper points to in its introduction.

   Run with: dune exec examples/maintenance_costs.exe *)

module Mp = Mrm_models.Multiprocessor
module Impulse = Mrm_core.Impulse
module Model = Mrm_core.Model
module Absorption = Mrm_ctmc.Absorption

let () =
  let p = { Mp.default with Mp.processors = 6 } in
  (* Base model re-purposed: reward = operating cost (energy), 0.8 per
     processor-hour with jitter. *)
  let generator = Mp.generator p in
  let states = Mp.state_count p in
  let rates = Array.make states 0. and variances = Array.make states 0. in
  for i = 0 to p.Mp.processors do
    rates.(Mp.up_index p i) <- 0.8 *. float_of_int i;
    variances.(Mp.up_index p i) <- 0.1 *. float_of_int i
  done;
  let initial =
    Array.init states (fun s ->
        if s = Mp.up_index p p.Mp.processors then 1. else 0.)
  in
  let base = Model.make ~generator ~rates ~variances ~initial in

  (* Lump costs: 5 per hot swap (covered failure), 40 per crash-reboot
     cycle (uncovered failure), 2 per repair completion. *)
  let swap_cost = 5. and crash_cost = 40. and repair_cost = 2. in
  let impulses = ref [] in
  for i = 1 to p.Mp.processors do
    impulses := (Mp.up_index p i, Mp.up_index p (i - 1), swap_cost) :: !impulses;
    impulses := (Mp.up_index p i, Mp.down_index p i, crash_cost) :: !impulses
  done;
  for i = 0 to p.Mp.processors - 1 do
    impulses := (Mp.up_index p i, Mp.up_index p (i + 1), repair_cost) :: !impulses
  done;
  let model = Impulse.make base !impulses in

  Printf.printf
    "Multiprocessor (%d CPUs, coverage %.2f): total cost over a mission\n\n"
    p.Mp.processors p.Mp.coverage;
  print_endline "horizon  E[cost]   std[cost]  energy-only E[cost]";
  List.iter
    (fun t ->
      let mean = Impulse.mean model ~t in
      let std = sqrt (Impulse.variance model ~t) in
      let energy_only = Mrm_core.Randomization.mean base ~t in
      Printf.printf "%6.1f   %8.2f  %8.2f   %8.2f\n" t mean std energy_only)
    [ 1.; 4.; 16.; 64. ];

  (* Split the long-run cost rate into energy vs event costs. *)
  let t_long = 200. in
  let total_rate = Impulse.mean model ~t:t_long /. t_long in
  let energy_rate = Mrm_core.Randomization.mean base ~t:t_long /. t_long in
  Printf.printf
    "\nlong-run cost rate: %.3f/h = %.3f energy + %.3f events\n" total_rate
    energy_rate
    (total_rate -. energy_rate);

  (* Mean time until full outage (all processors failed), and how much
     coverage buys. *)
  print_endline "\nmean time to total failure (absorption analysis):";
  List.iter
    (fun coverage ->
      let p' = { p with Mp.coverage } in
      let m' = Mp.model p' in
      let mttf =
        Absorption.mean_time_to_absorption
          (m' : Model.t).Model.generator
          ~initial:(m' : Model.t).Model.initial
          ~targets:[ Mp.up_index p' 0 ]
      in
      Printf.printf "  coverage %.2f -> MTTF %10.1f h\n" coverage mttf)
    [ 0.8; 0.9; 0.95; 0.99 ]
