(* The paper's Section-7 scenario end to end: capacity available to
   low-priority traffic on a channel shared with N bursty ON-OFF sources.

   Reproduces the small example of Table 1 / Figures 3-7 in one program:
   - transient mean/second/third moment of the class-2 capacity,
   - the stationary-start (linear) mean for comparison,
   - moment-based bounds on P(B(0.5) <= x).

   Run with: dune exec examples/channel_capacity.exe *)

module Onoff = Mrm_models.Onoff
module Randomization = Mrm_core.Randomization
module Table = Mrm_util.Table

let time_grid = Array.init 9 (fun k -> 0.25 *. float_of_int k)

let () =
  print_endline
    "Channel with C = 32 shared by 32 ON-OFF sources (alpha=4, beta=3, r=1).";
  print_endline
    "B(t) = capacity left for class-2 traffic over (0,t); all sources OFF at 0.\n";

  (* Moments as a function of time for the three variances of Table 1. *)
  let sigmas = [ 0.; 1.; 10. ] in
  let models =
    List.map (fun sigma2 -> (sigma2, Onoff.model (Onoff.table1 ~sigma2))) sigmas
  in
  let header =
    "t" :: "stationary-mean"
    :: List.concat_map
         (fun s ->
           [ Printf.sprintf "m1(s2=%g)" s; Printf.sprintf "m2(s2=%g)" s ])
         sigmas
  in
  let stationary_rate = Mrm_core.Steady.reward_rate (snd (List.hd models)) in
  let rows =
    Array.to_list
      (Array.map
         (fun t ->
           let per_model =
             List.concat_map
               (fun (_, m) ->
                 let r = Randomization.moments m ~t ~order:2 in
                 [ r.moments.(1).(0); r.moments.(2).(0) ])
               models
           in
           List.map Table.float_cell
             ((t :: (stationary_rate *. t) :: per_model)))
         time_grid)
  in
  print_string (Table.render ~header rows);

  (* Distribution bounds at t = 0.5 from high-order moments (Figures 5-7).
     23 moments as in the paper; the evaluator reports how many survive
     binary64 conditioning. *)
  print_endline "\nBounds on P(B(0.5) <= x) from 23 moments:";
  List.iter
    (fun (sigma2, m) ->
      let t = 0.5 in
      let result = Randomization.moments m ~t ~order:23 in
      let pi = (m : Mrm_core.Model.t).initial in
      let moments =
        Array.init 24 (fun n -> Mrm_linalg.Vec.dot pi result.moments.(n))
      in
      let bounds = Mrm_core.Moment_bounds.prepare moments in
      Printf.printf "  sigma^2 = %g (using %d moments, %d nodes):\n" sigma2
        (Mrm_core.Moment_bounds.moments_used bounds)
        (Mrm_core.Moment_bounds.quadrature_size bounds);
      List.iter
        (fun x ->
          let b = Mrm_core.Moment_bounds.cdf_bounds bounds x in
          Printf.printf "    x = %5.1f   %.4f <= F(x) <= %.4f\n" x b.lower
            b.upper)
        [ 10.; 12.; 14.; 15.; 16. ])
    models
