(* Command-line front end for the second-order MRM solvers.

   Subcommands:
     moments   - raw moments of the accumulated reward at time t
     batch     - many moment jobs at once (JSONL in/out, deduplicated,
                 parallel across a domain pool)
     serve     - resident solver service (JSONL over a Unix/TCP socket,
                 LRU result cache, bounded queue, graceful drain)
     call      - client for a running serve (stream jobs, print results)
     stationary- invariant density of the regulated reward level (MMBM
                 cyclic reduction; --ctmc for the modulating chain only)
     bounds    - moment-based bounds on P(B(t) <= x)
     simulate  - Monte-Carlo estimates with confidence intervals
     path      - a discretized joint sample path (t, state, B(t))
     info      - model summary (states, rates, uniformization constants)
     lint      - static verification of a model file (MRM0xx diagnostics)

   Built-in models: onoff (the paper's Section-7 multiplexer),
   repair (machine repairman), multi (fault-tolerant multiprocessor). *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Model selection                                                     *)

type model_kind = Onoff | Repair | Multi

let model_kind_conv =
  let parse = function
    | "onoff" -> Ok Onoff
    | "repair" -> Ok Repair
    | "multi" -> Ok Multi
    | s -> Error (`Msg (Printf.sprintf "unknown model %S" s))
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with Onoff -> "onoff" | Repair -> "repair" | Multi -> "multi")
  in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    value
    & opt model_kind_conv Onoff
    & info [ "model" ] ~docv:"NAME"
        ~doc:"Built-in model: $(b,onoff), $(b,repair) or $(b,multi).")

let sigma2_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "sigma2" ] ~docv:"V"
        ~doc:"Per-source rate variance of the onoff model (paper uses 0, 1, 10).")

let size_arg =
  Arg.(
    value
    & opt int 32
    & info [ "size" ] ~docv:"N"
        ~doc:
          "Model size: sources (onoff), machines (repair) or processors \
           (multi).")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "file" ] ~docv:"PATH"
        ~doc:
          "Load the model from a file in the Model_io text format instead \
           of using a built-in (overrides --model/--sigma2/--size).")

let build_model ?file kind ~sigma2 ~size =
  match file with
  | Some path -> (Mrm_core.Model_io.load path).Mrm_core.Model_io.model
  | None -> begin
      match kind with
      | Onoff ->
          let p =
            { (Mrm_models.Onoff.table1 ~sigma2) with
              sources = size;
              capacity = float_of_int size;
            }
          in
          Mrm_models.Onoff.model p
      | Repair ->
          Mrm_models.Machine_repair.(model { default with machines = size })
      | Multi ->
          Mrm_models.Multiprocessor.(model { default with processors = size })
    end

let t_arg =
  Arg.(
    value & opt float 1.0
    & info [ "time"; "t" ] ~docv:"T" ~doc:"Accumulation horizon $(docv).")

let eps_arg =
  Arg.(
    value & opt float 1e-9
    & info [ "eps" ] ~docv:"EPS"
        ~doc:"Truncation-error bound of the randomization method.")

let seed_arg =
  Arg.(
    value & opt int64 1L
    & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for simulation commands.")

(* Solver parallelism. [mrm2 moments] stays sequential unless asked
   ([MRM2_JOBS] or --jobs); [mrm2 batch] defaults to every core. *)
let jobs_doc =
  "Worker domains for the parallel engine ($(b,1) = sequential). \
   Defaults to the $(b,MRM2_JOBS) environment variable when set."

let jobs_arg ~default =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"J" ~doc:jobs_doc ~env:(Cmd.Env.info "MRM2_JOBS"))
  |> Term.app (Term.const (fun jobs -> Option.value jobs ~default:(default ())))

let sequential_default () =
  Option.value (Mrm_engine.Pool.env_jobs ()) ~default:1

(* Run [f] with [Some pool] when more than one domain was requested —
   the solvers treat [None] and a 1-job pool identically, but [None]
   skips pool setup entirely. *)
let with_optional_pool ~jobs f =
  if jobs <= 1 then f None
  else Mrm_engine.Pool.with_pool ~jobs (fun pool -> f (Some pool))

(* ------------------------------------------------------------------ *)
(* Observability flags, shared by the solver subcommands. --trace picks
   the span sink for this run (overriding MRM2_TRACE); --metrics prints
   the Mrm_obs.Metrics report to stderr after the command body. *)

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some "stderr") (some string) None
    & info [ "trace" ] ~docv:"SINK"
        ~doc:
          "Emit solver spans: $(b,stderr) (the default when $(docv) is \
           omitted) for human-readable lines, any other value for a JSONL \
           trace file at that path. Overrides the $(b,MRM2_TRACE) \
           environment variable, which is honoured otherwise.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the solver metrics report (counters and gauges: \
           truncation point, Poisson terms, pool jobs, ...) to standard \
           error when the command finishes.")

(* Evaluates to [run_with_obs : (unit -> int) -> int]: applies the sink
   choice, runs the command body, then reports/flushes. *)
let obs_term =
  let setup trace metrics body =
    (match trace with
    | None -> ()
    | Some spec -> Mrm_obs.Trace.set_sink (Mrm_obs.Trace.sink_of_spec spec));
    let code = body () in
    if metrics then
      Format.eprintf "%a@?" Mrm_obs.Metrics.pp_report ();
    Mrm_obs.Trace.flush ();
    code
  in
  Term.(const setup $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* moments                                                             *)

type method_kind = Mrandom | Mode | Mgaver

let method_conv =
  let parse = function
    | "randomization" | "rand" -> Ok Mrandom
    | "ode" -> Ok Mode
    | "gaver" -> Ok Mgaver
    | s -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Mrandom -> "randomization" | Mode -> "ode" | Mgaver -> "gaver")
  in
  Arg.conv (parse, print)

let moments_cmd =
  let order =
    Arg.(
      value & opt int 3
      & info [ "order" ] ~docv:"N" ~doc:"Highest moment order.")
  in
  let method_ =
    Arg.(
      value
      & opt method_conv Mrandom
      & info [ "method" ] ~docv:"M"
          ~doc:
            "Solver: $(b,randomization) (paper Section 6), $(b,ode) (eq. 6, \
             Heun) or $(b,gaver) (transform domain).")
  in
  let run file kind sigma2 size t order eps method_ jobs obs =
    obs @@ fun () ->
    let model = build_model ?file kind ~sigma2 ~size in
    (* Model files may declare impulse rewards; route those through the
       impulse-extended solver (randomization method only). *)
    let impulses =
      match file with
      | Some path -> (Mrm_core.Model_io.load path).Mrm_core.Model_io.impulses
      | None -> []
    in
    let pi = (model : Mrm_core.Model.t).initial in
    let unconditional m = Mrm_linalg.Vec.dot pi m in
    (match method_ with
    | Mrandom when impulses <> [] ->
        let wrapped = Mrm_core.Impulse.make model impulses in
        let r = Mrm_core.Impulse.moments ~eps wrapped ~t ~order in
        Printf.printf
          "# randomization+impulses: q = %g, d = %g, G = %d\n"
          r.diagnostics.q r.diagnostics.d r.diagnostics.iterations;
        Array.iteri
          (fun n v -> Printf.printf "E[B^%d] = %.12g\n" n (unconditional v))
          r.moments
    | Mrandom ->
        let r =
          with_optional_pool ~jobs (fun pool ->
              Mrm_core.Randomization.moments ~eps ?pool model ~t ~order)
        in
        Printf.printf
          "# randomization: q = %g, d = %g, G = %d, log10 error bound = %.2f\n"
          r.diagnostics.q r.diagnostics.d r.diagnostics.iterations
          (r.diagnostics.log_error_bound /. log 10.);
        Array.iteri
          (fun n v -> Printf.printf "E[B^%d] = %.12g\n" n (unconditional v))
          r.moments
    | Mode ->
        let m = Mrm_core.Moments_ode.moments model ~t ~order in
        Array.iteri
          (fun n v -> Printf.printf "E[B^%d] = %.12g\n" n (unconditional v))
          m
    | Mgaver ->
        let m = Mrm_core.Transform_moments.moments model ~t ~order in
        Array.iteri
          (fun n v -> Printf.printf "E[B^%d] = %.12g\n" n (unconditional v))
          m);
    0
  in
  let term =
    Term.(
      const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg $ order
      $ eps_arg $ method_ $ jobs_arg ~default:sequential_default $ obs_term)
  in
  Cmd.v
    (Cmd.info "moments" ~doc:"Moments of the accumulated reward at time t")
    term

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)

let bounds_cmd =
  let points =
    Arg.(
      value
      & opt (list float) []
      & info [ "points" ] ~docv:"X1,X2,..."
          ~doc:"Evaluation points (default: mean + k/2 std, k = -4..4).")
  in
  let moment_count =
    Arg.(
      value & opt int 23
      & info [ "moments" ] ~docv:"K"
          ~doc:"Number of moments to compute (the paper's figures use 23).")
  in
  let run file kind sigma2 size t moment_count points obs =
    obs @@ fun () ->
    let model = build_model ?file kind ~sigma2 ~size in
    let pi = (model : Mrm_core.Model.t).initial in
    let r = Mrm_core.Randomization.moments model ~t ~order:moment_count in
    let moments =
      Array.init (moment_count + 1) (fun n ->
          Mrm_linalg.Vec.dot pi r.moments.(n))
    in
    let bounds = Mrm_core.Moment_bounds.prepare moments in
    Printf.printf "# using %d moments (%d Gauss nodes)\n"
      (Mrm_core.Moment_bounds.moments_used bounds)
      (Mrm_core.Moment_bounds.quadrature_size bounds);
    let points =
      if points <> [] then points
      else begin
        let mean = moments.(1) in
        let std = sqrt (Float.max 0. (moments.(2) -. (mean *. mean))) in
        List.init 9 (fun k -> mean +. (float_of_int (k - 4) /. 2. *. std))
      end
    in
    List.iter
      (fun x ->
        let b = Mrm_core.Moment_bounds.cdf_bounds bounds x in
        Printf.printf "x = %-12g %.6f <= F(x) <= %.6f\n" x b.lower b.upper)
      points;
    0
  in
  let term =
    Term.(
      const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg
      $ moment_count $ points $ obs_term)
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Moment-based bounds on the reward distribution")
    term

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_cmd =
  let replicas =
    Arg.(
      value & opt int 100_000
      & info [ "replicas" ] ~docv:"R" ~doc:"Number of i.i.d. samples.")
  in
  let order =
    Arg.(
      value & opt int 3
      & info [ "order" ] ~docv:"N" ~doc:"Highest moment order to estimate.")
  in
  let run file kind sigma2 size t replicas order seed =
    let model = build_model ?file kind ~sigma2 ~size in
    let rng = Mrm_util.Rng.create ~seed () in
    let estimates =
      Mrm_core.Simulate.estimate_moments model rng ~t ~max_order:order
        ~replicas
    in
    Array.iter
      (fun e ->
        Printf.printf "E[B^%d] ~ %.8g   95%% CI [%.8g, %.8g]\n"
          e.Mrm_core.Simulate.order e.value e.ci_low e.ci_high)
      estimates;
    0
  in
  let term =
    Term.(
      const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg
      $ replicas $ order $ seed_arg)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte-Carlo moment estimates with CIs")
    term

(* ------------------------------------------------------------------ *)
(* path                                                                *)

let path_cmd =
  let grid =
    Arg.(
      value & opt int 200
      & info [ "grid" ] ~docv:"K" ~doc:"Number of grid intervals.")
  in
  let run file kind sigma2 size t grid seed =
    let model = build_model ?file kind ~sigma2 ~size in
    let rng = Mrm_util.Rng.create ~seed () in
    let path = Mrm_core.Simulate.joint_path model rng ~t_max:t ~grid in
    print_endline "# t state B(t)";
    Array.iter
      (fun p ->
        Printf.printf "%.6f %d %.8g\n" p.Mrm_core.Simulate.time p.state
          p.reward)
      path;
    0
  in
  let term =
    Term.(
      const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg $ grid
      $ seed_arg)
  in
  Cmd.v (Cmd.info "path" ~doc:"Sample a joint (state, reward) path") term

(* ------------------------------------------------------------------ *)
(* distribution                                                        *)

let distribution_cmd =
  let points =
    Arg.(
      value
      & opt (list float) []
      & info [ "points" ] ~docv:"X1,X2,..."
          ~doc:"Evaluation points (default: mean + k/2 std, k = -4..4).")
  in
  let run file kind sigma2 size t points =
    let model = build_model ?file kind ~sigma2 ~size in
    let points =
      if points <> [] then Array.of_list points
      else begin
        let r = Mrm_core.Randomization.moments model ~t ~order:2 in
        let pi = (model : Mrm_core.Model.t).initial in
        let mean = Mrm_linalg.Vec.dot pi r.moments.(1) in
        let std =
          sqrt
            (Float.max 0.
               (Mrm_linalg.Vec.dot pi r.moments.(2) -. (mean *. mean)))
        in
        Array.init 9 (fun k -> mean +. (float_of_int (k - 4) /. 2. *. std))
      end
    in
    let values, grid =
      Mrm_core.Transform_distribution.cdf_grid model ~t points
    in
    Printf.printf "# Gil-Pelaez inversion: %d frequencies, step %g\n"
      grid.Mrm_core.Transform_distribution.count
      grid.Mrm_core.Transform_distribution.step;
    Array.iteri
      (fun k x -> Printf.printf "P(B <= %-12g) = %.6f\n" x values.(k))
      points;
    0
  in
  let term =
    Term.(const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg $ points)
  in
  Cmd.v
    (Cmd.info "distribution"
       ~doc:"CDF of the accumulated reward (transform-domain inversion)")
    term

(* ------------------------------------------------------------------ *)
(* mtta                                                                *)

let mtta_cmd =
  let targets =
    Arg.(
      required
      & opt (some (list int)) None
      & info [ "targets" ] ~docv:"S1,S2,..."
          ~doc:"Target state indices (e.g. the all-failed state).")
  in
  let run file kind sigma2 size targets =
    let model = build_model ?file kind ~sigma2 ~size in
    let mtta =
      Mrm_ctmc.Absorption.mean_time_to_absorption
        (model : Mrm_core.Model.t).generator
        ~initial:(model : Mrm_core.Model.t).initial ~targets
    in
    Printf.printf "mean time to reach {%s} = %g\n"
      (String.concat ", " (List.map string_of_int targets))
      mtta;
    0
  in
  let term =
    Term.(const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ targets)
  in
  Cmd.v
    (Cmd.info "mtta" ~doc:"Mean time to absorption into a target state set")
    term

(* ------------------------------------------------------------------ *)
(* fluid                                                               *)

let fluid_cmd =
  let capacity =
    Arg.(
      value & opt float 5.
      & info [ "capacity" ] ~docv:"C" ~doc:"Drain rate of the buffer.")
  in
  let peak =
    Arg.(
      value & opt float 10.
      & info [ "peak" ] ~docv:"P" ~doc:"Peak input rate while ON.")
  in
  let sigma2 =
    Arg.(
      value & opt float 2.
      & info [ "fluid-sigma2" ] ~docv:"V"
          ~doc:"Brownian variance of the input while ON.")
  in
  let run capacity peak sigma2 =
    let generator =
      Mrm_ctmc.Generator.of_triplets ~states:2 [ (0, 1, 0.5); (1, 0, 1.0) ]
    in
    let queue =
      Mrm_fluid.Fluid.make ~generator
        ~rates:[| -.capacity; peak -. capacity |]
        ~variances:[| Float.max 1e-6 (sigma2 /. 10.); sigma2 |]
    in
    let s = Mrm_fluid.Fluid.stationary queue in
    Printf.printf
      "ON-OFF fluid queue: drift %.4f, mean level %.6f, decay rate %.6f\n"
      (Mrm_fluid.Fluid.mean_drift s)
      (Mrm_fluid.Fluid.mean_level s)
      (Mrm_fluid.Fluid.decay_rate s);
    List.iter
      (fun x ->
        Printf.printf "P(level > %-8g) = %.8f\n" x (Mrm_fluid.Fluid.ccdf s x))
      [ 0.; 0.5; 1.; 2.; 4.; 8.; 16. ];
    0
  in
  let term = Term.(const run $ capacity $ peak $ sigma2) in
  Cmd.v
    (Cmd.info "fluid"
       ~doc:"Stationary second-order fluid queue for an ON-OFF source")
    term

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

type lint_format = Human | Sexp | Json | Github

let lint_format_conv =
  let parse = function
    | "human" -> Ok Human
    | "sexp" -> Ok Sexp
    | "json" -> Ok Json
    | "github" -> Ok Github
    | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with
      | Human -> "human"
      | Sexp -> "sexp"
      | Json -> "json"
      | Github -> "github")
  in
  Arg.conv (parse, print)

let lint_format_arg =
  Arg.(
    value
    & opt lint_format_conv Human
    & info [ "format" ] ~docv:"F"
        ~doc:
          "Report rendering: $(b,human), $(b,sexp), $(b,json) or \
           $(b,github) (GitHub Actions $(b,::error) annotations for CI).")

let lint_cmd =
  let module Check = Mrm_check.Check in
  let module Diagnostics = Mrm_check.Diagnostics in
  let module Model_io = Mrm_core.Model_io in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MODEL" ~doc:"Model file in the Model_io text format.")
  in
  let order =
    Arg.(
      value & opt int 3
      & info [ "order" ] ~docv:"N"
          ~doc:"Moment order the solve would use (conditioning checks).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit non-zero on warnings, not just errors.")
  in
  let stationary =
    Arg.(
      value & flag
      & info [ "stationary" ]
          ~doc:
            "Also check stationary (MMBM) applicability: zero-variance \
             states, nonnegative mean drift (MRM062-MRM064, warnings).")
  in
  let print_report ~file format report =
    match format with
    | Human -> Format.printf "%a" Diagnostics.pp_report report
    | Sexp -> print_endline (Diagnostics.report_to_sexp report)
    | Json -> print_endline (Diagnostics.report_to_json report)
    | Github ->
        if report <> [] then
          print_endline (Diagnostics.report_to_github ~file report)
  in
  let exit_code strict report =
    if Diagnostics.has_errors report then 1
    else if strict && Diagnostics.count Diagnostics.Warning report > 0 then 1
    else 0
  in
  let run path t order eps format strict stationary jobs =
    let text =
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Model_io.parse_raw text with
    | Error e ->
        let context =
          List.concat
            [
              [ ("file", path) ];
              (match e.Model_io.line with
              | Some l -> [ ("line", string_of_int l) ]
              | None -> []);
              (match e.Model_io.field with
              | Some f -> [ ("field", f) ]
              | None -> []);
            ]
        in
        let report =
          [
            Diagnostics.error ~code:"MRM090" ~context
              (Model_io.error_message e);
          ]
        in
        print_report ~file:path format report;
        1
    | Ok raw ->
        let n = raw.Model_io.declared_states in
        let rates = Array.make n 0. and variances = Array.make n 0. in
        List.iter
          (fun (state, drift, variance) ->
            rates.(state) <- drift;
            variances.(state) <- variance)
          raw.Model_io.raw_rewards;
        let initial = Array.make n 0. in
        List.iter
          (fun (state, p) -> initial.(state) <- p)
          raw.Model_io.raw_initial;
        let data =
          Check.of_triplets ~states:n
            ~transitions:raw.Model_io.raw_transitions ~rates ~variances
            ~initial
        in
        let config = { Check.t; order; eps; q = None; d = None; jobs } in
        let report = Check.check ~config data in
        let report =
          if stationary then report @ Check.check_stationary data else report
        in
        print_report ~file:path format report;
        exit_code strict report
  in
  let term =
    Term.(
      const run $ file $ t_arg $ order $ eps_arg $ lint_format_arg $ strict
      $ stationary $ jobs_arg ~default:sequential_default)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify a model file: generator validity, reward \
          sanity, reachability, uniformization invariants and \
          conditioning, without solving anything")
    term

(* ------------------------------------------------------------------ *)
(* stationary                                                          *)

type stationary_format = Shuman | Ssexp | Sjson

let stationary_cmd =
  let module Mmbm = Mrm_mmbm.Mmbm in
  let module Diagnostics = Mrm_check.Diagnostics in
  let module Json = Mrm_util.Json in
  let format_conv =
    let parse = function
      | "human" -> Ok Shuman
      | "sexp" -> Ok Ssexp
      | "json" -> Ok Sjson
      | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))
    in
    let print ppf f =
      Format.pp_print_string ppf
        (match f with Shuman -> "human" | Ssexp -> "sexp" | Sjson -> "json")
    in
    Arg.conv (parse, print)
  in
  let format_arg =
    Arg.(
      value
      & opt format_conv Shuman
      & info [ "format" ] ~docv:"F"
          ~doc:"Output rendering: $(b,human), $(b,sexp) or $(b,json).")
  in
  let drain =
    Arg.(
      value & opt float 0.
      & info [ "drain" ] ~docv:"C"
          ~doc:
            "Constant service rate subtracted from every reward rate; the \
             level is then the backlog of a queue drained at $(docv). The \
             drained mean drift must be negative (MRM063 names the \
             threshold otherwise).")
  in
  let regularize =
    Arg.(
      value
      & opt (some float) None
      & info [ "regularize" ] ~docv:"V"
          ~doc:
            "Floor every state variance at $(docv) (zero-variance states \
             make the level diffusion degenerate, MRM062). Applying the \
             floor is reported as an MRM067 warning. The phase marginal \
             and reward rate do not depend on the variances, so a \
             generous floor (1e-3) is safe for those outputs and keeps \
             the shift parameter tau well conditioned.")
  in
  let ctmc =
    Arg.(
      value & flag
      & info [ "ctmc" ]
          ~doc:
            "Only the modulating CTMC: GTH stationary distribution and \
             steady reward rate, subtraction-free end to end. No \
             variances needed — works for first-order models too.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Cross-check the phase marginal against the CTMC stationary \
             distribution (they must agree analytically). Disagreement \
             beyond 1e-8 adds an MRM068 warning and exits 1.")
  in
  let points =
    Arg.(
      value
      & opt (list float) []
      & info [ "points" ] ~docv:"X1,X2,..."
          ~doc:"Print the stationary density and cdf at these levels.")
  in
  let max_iter =
    Arg.(
      value & opt int 200
      & info [ "max-iter" ] ~docv:"K"
          ~doc:"Cyclic-reduction iteration cap (MRM065 when exhausted).")
  in
  let cr_eps =
    Arg.(
      value & opt float 1e-14
      & info [ "eps" ] ~docv:"EPS"
          ~doc:
            "CR stopping threshold on the relative down-coupling block \
             norm.")
  in
  let nums a = Json.List (Array.to_list (Array.map (fun v -> Json.Num v) a)) in
  let print_ctmc format (model : Mrm_core.Model.t) =
    let pi = Mrm_ctmc.Stationary.gth model.generator in
    let rate = Mrm_linalg.Vec.dot pi model.rates in
    (match format with
    | Shuman ->
        Array.iteri (fun i p -> Printf.printf "pi[%d] = %.12g\n" i p) pi;
        Printf.printf "reward rate = %.12g\n" rate
    | Ssexp ->
        let b = Buffer.create 256 in
        Buffer.add_string b "(ctmc-stationary (pi";
        Array.iter (fun p -> Buffer.add_string b (Printf.sprintf " %.17g" p)) pi;
        Buffer.add_string b (Printf.sprintf ") (reward_rate %.17g))" rate);
        print_endline (Buffer.contents b)
    | Sjson ->
        print_endline
          (Json.to_string
             (Json.Obj [ ("pi", nums pi); ("reward_rate", Json.Num rate) ])));
    0
  in
  let print_result format points (r : Mmbm.result) =
    (match format with
    | Shuman ->
        Printf.printf "# stationary: tau = %g, cr iterations = %d, residual = %.3g\n"
          r.tau r.iterations r.residual;
        Array.iteri
          (fun i p ->
            Printf.printf "p[%d] = %.12g (atom %.12g)\n" i p r.atoms.(i))
          r.marginal;
        Printf.printf "mean level = %.12g\n" r.mean_level;
        Printf.printf "reward rate = %.12g\n" r.reward_rate;
        List.iter
          (fun x ->
            let d = Mmbm.density r x and c = Mmbm.cdf r x in
            Printf.printf "x = %-12g density = %.12g cdf = %.12g\n" x
              (Mrm_linalg.Vec.sum d) (Mrm_linalg.Vec.sum c))
          points;
        List.iter
          (fun w -> Format.printf "%a@." Diagnostics.pp w)
          r.warnings
    | Ssexp ->
        let b = Buffer.create 512 in
        let vec name a =
          Buffer.add_string b (Printf.sprintf " (%s" name);
          Array.iter (fun v -> Buffer.add_string b (Printf.sprintf " %.17g" v)) a;
          Buffer.add_string b ")"
        in
        Buffer.add_string b
          (Printf.sprintf "(stationary (tau %.17g) (iterations %d) (residual %.3g)"
             r.tau r.iterations r.residual);
        vec "marginal" r.marginal;
        vec "atoms" r.atoms;
        Buffer.add_string b
          (Printf.sprintf " (mean_level %.17g) (reward_rate %.17g)"
             r.mean_level r.reward_rate);
        List.iter
          (fun x ->
            vec (Printf.sprintf "density %.17g" x) (Mmbm.density r x);
            vec (Printf.sprintf "cdf %.17g" x) (Mmbm.cdf r x))
          points;
        if r.warnings <> [] then begin
          Buffer.add_string b " (warnings";
          List.iter
            (fun w -> Buffer.add_string b (" " ^ Diagnostics.to_sexp w))
            r.warnings;
          Buffer.add_string b ")"
        end;
        Buffer.add_string b ")";
        print_endline (Buffer.contents b)
    | Sjson ->
        let point x =
          Json.Obj
            [
              ("x", Json.Num x);
              ("density", nums (Mmbm.density r x));
              ("cdf", nums (Mmbm.cdf r x));
            ]
        in
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("marginal", nums r.marginal);
                  ("atoms", nums r.atoms);
                  ("mean_level", Json.Num r.mean_level);
                  ("reward_rate", Json.Num r.reward_rate);
                  ("tau", Json.Num r.tau);
                  ("iterations", Json.Num (float_of_int r.iterations));
                  ("residual", Json.Num r.residual);
                  ("regularized", Json.Num (float_of_int r.regularized));
                  ("points", Json.List (List.map point points));
                  ( "warnings",
                    Json.parse_exn (Diagnostics.report_to_json r.warnings) );
                ])));
    if List.exists (fun (w : Diagnostics.t) -> w.code = "MRM068") r.warnings
    then 1
    else 0
  in
  let run file kind sigma2 size drain regularize cr_eps max_iter ctmc validate
      points format obs =
    obs @@ fun () ->
    let model = build_model ?file kind ~sigma2 ~size in
    if ctmc then print_ctmc format model
    else
      match
        Mmbm.solve ~drain ?regularize ~eps:cr_eps ~max_iterations:max_iter
          ~validate model
      with
      | exception Mmbm.Error d ->
          Format.eprintf "mrm2 stationary: %a@." Mrm_check.Diagnostics.pp d;
          1
      | r -> print_result format points r
  in
  let term =
    Term.(
      const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ drain
      $ regularize $ cr_eps $ max_iter $ ctmc $ validate $ points $ format_arg
      $ obs_term)
  in
  Cmd.v
    (Cmd.info "stationary"
       ~doc:
         "Stationary density of the accumulated-reward level (regulated \
          MMBM) by componentwise-accurate Cyclic Reduction: phase \
          marginal, mean level, steady reward rate and the \
          matrix-exponential density $(b,nu e^(Hx)). With $(b,--ctmc), \
          just the modulating chain's GTH stationary vector. Also \
          available as the $(b,stationary) job kind of $(b,mrm2 batch) / \
          $(b,mrm2 serve).")
    term

(* ------------------------------------------------------------------ *)
(* lint-src                                                            *)

let lint_src_cmd =
  let module Lint = Mrm_analysis.Lint in
  let module Baseline = Mrm_analysis.Baseline in
  let module Diagnostics = Mrm_check.Diagnostics in
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATHS"
          ~doc:
            "Files or directories to analyze (default: $(b,lib bin bench \
             test), relative to the current directory).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline file waiving pre-existing findings (format: CODE \
             FILE COUNT per line). Missing file = empty baseline.")
  in
  let update_arg =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:
            "Rewrite the $(b,--baseline) file to waive exactly the current \
             findings, then exit 0.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit non-zero on fresh warnings, not just fresh errors \
             (baselined findings never fail).")
  in
  let blocking_arg =
    Arg.(
      value & opt_all string []
      & info [ "blocking" ] ~docv:"NAME"
          ~doc:
            "Treat calls to $(docv) (module-qualified, e.g. \
             $(b,Db.query)) as blocking for SRC011, in addition to the \
             built-in frontier. Repeatable.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "absint-fuel" ] ~docv:"STEPS"
          ~doc:
            "Per-function step budget for the abstract-interpretation \
             pass (SRC020-SRC024; default 100000). Exhaustion aborts \
             the function without a finding and is counted in the \
             $(b,--strict) summary.")
  in
  let list_rules_arg =
    Arg.(
      value & flag
      & info [ "list-rules" ]
          ~doc:
            "Print the rule registry (code, severity, one-line \
             description) and exit.")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"CODE"
          ~doc:
            "Print one rule's full documentation — severity, \
             explanation, minimal firing example — and exit.")
  in
  let run paths baseline_path update strict format jobs blocking fuel
      list_rules explain =
    let module Absint = Mrm_analysis.Absint in
    if list_rules then begin
      List.iter
        (fun (code, sev, line) ->
          Printf.printf "%s  %-7s  %s\n" code
            (Diagnostics.severity_label sev)
            line)
        Lint.rule_table;
      0
    end
    else if explain <> None then begin
      let code = Option.get explain in
      match
        ( List.find_opt (fun (c, _, _) -> c = code) Lint.rule_table,
          List.find_opt (fun (c, _, _) -> c = code) Lint.rule_docs )
      with
      | Some (_, sev, line), Some (_, doc, example) ->
          Printf.printf "%s (%s) — %s\n\n%s\n\nexample (fires):\n  %s\n" code
            (Diagnostics.severity_label sev)
            line doc example;
          0
      | _ ->
          Printf.eprintf "mrm2 lint-src: unknown rule %s (try --list-rules)\n"
            code;
          2
    end
    else begin
    let paths =
      match paths with [] -> [ "lib"; "bin"; "bench"; "test" ] | ps -> ps
    in
    let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
    if missing <> [] then begin
      Printf.eprintf "mrm2 lint-src: no such path: %s\n"
        (String.concat ", " missing);
      2
    end
    else begin
      let t0 = Unix.gettimeofday () in
      let files = Lint.discover paths in
      (* The lexer's global state makes parsing sequential; the
         per-file rules are pure parsetree functions, so they fan out
         across the pool. The whole-program passes (lockcheck, abstract
         interpretation) stay on the caller. *)
      let parsed = Lint.parse_files files in
      let per_file =
        if jobs > 1 then
          Mrm_engine.Pool.with_pool ~jobs (fun pool ->
              Mrm_engine.Pool.map_array pool Lint.analyze_parsed
                (Array.of_list parsed))
          |> Array.to_list |> List.concat
        else List.concat_map Lint.analyze_parsed parsed
      in
      let t_syn = Unix.gettimeofday () in
      let inter = Lint.interprocedural ~extra_blocking:blocking parsed in
      let t_lock = Unix.gettimeofday () in
      let ai_findings, ai_stats = Lint.absint ?fuel parsed in
      let t_ai = Unix.gettimeofday () in
      let findings =
        List.sort Lint.compare_finding (per_file @ inter @ ai_findings)
      in
      let site_count status =
        List.length
          (List.filter
             (fun (s : Absint.kernel_site) -> s.Absint.ks_status = status)
             ai_stats.Absint.st_sites)
      in
      let proven = site_count Absint.Proven in
      if proven > 0 then
        Mrm_engine.Racecheck.note_statically_proven ~count:proven ();
      let elapsed = t_ai -. t0 in
      if update then begin
        match baseline_path with
        | None ->
            prerr_endline "mrm2 lint-src: --update-baseline needs --baseline";
            2
        | Some path ->
            let previous =
              if Sys.file_exists path then
                match Baseline.load path with Ok b -> b | Error _ -> []
              else []
            in
            let { Baseline.fresh; waived; stale } =
              Baseline.apply previous findings
            in
            Baseline.save path (Baseline.of_findings findings);
            Printf.printf "baseline: %d finding(s) across %d file(s) -> %s\n"
              (List.length findings)
              (List.length
                 (List.sort_uniq compare
                    (List.map (fun f -> f.Lint.file) findings)))
              path;
            Printf.printf
              "baseline delta: %d newly waived, %d carried over, %d stale \
               allowance(s) dropped\n"
              (List.length fresh) (List.length waived) (List.length stale);
            0
      end
      else begin
        let baseline =
          match baseline_path with
          | Some path when Sys.file_exists path -> begin
              match Baseline.load path with
              | Ok b -> b
              | Error msg ->
                  Printf.eprintf "mrm2 lint-src: bad baseline %s: %s\n" path
                    msg;
                  exit 2
            end
          | _ -> Baseline.empty
        in
        let { Baseline.fresh; waived; stale } =
          Baseline.apply baseline findings
        in
        let report = List.map Lint.to_diagnostic fresh in
        (match format with
        | Human ->
            Format.printf "%a" Diagnostics.pp_report report;
            if waived <> [] then
              Format.printf "%d baselined finding(s) waived@."
                (List.length waived);
            List.iter
              (fun (e : Baseline.entry) ->
                Format.printf
                  "note: stale baseline allowance %s %s %d (finding gone — \
                   regenerate with --update-baseline)@."
                  e.code e.file e.count)
              stale;
            if strict then begin
              Format.printf
                "lint-src: %d file(s) in %.2fs (%d job(s); syntactic %.2fs, \
                 lockcheck %.2fs, absint %.2fs)@."
                (List.length files) elapsed jobs (t_syn -. t0)
                (t_lock -. t_syn) (t_ai -. t_lock);
              Format.printf
                "lint-src: kernel sites: %d proven, %d flagged, %d unknown \
                 (%d function(s) analyzed, %d fuel-exhausted)@."
                proven
                (site_count Absint.Flagged)
                (site_count Absint.Unknown)
                ai_stats.Absint.st_functions ai_stats.Absint.st_fuel_exhausted;
              let by_rule =
                List.fold_left
                  (fun acc (f : Lint.finding) ->
                    match List.assoc_opt f.Lint.code acc with
                    | Some n ->
                        (f.Lint.code, n + 1)
                        :: List.remove_assoc f.Lint.code acc
                    | None -> (f.Lint.code, 1) :: acc)
                  [] findings
                |> List.sort compare
              in
              if by_rule <> [] then
                Format.printf "lint-src: findings by rule:%s@."
                  (String.concat ""
                     (List.map
                        (fun (c, n) -> Printf.sprintf " %s x%d" c n)
                        by_rule))
            end
        | Sexp -> print_endline (Diagnostics.report_to_sexp report)
        | Json -> print_endline (Diagnostics.report_to_json report)
        | Github ->
            if report <> [] then
              print_endline (Diagnostics.report_to_github report));
        if Diagnostics.has_errors report then 1
        else if strict && Diagnostics.count Diagnostics.Warning report > 0
        then 1
        else 0
      end
    end
    end
  in
  let term =
    Term.(
      const run $ paths $ baseline_arg $ update_arg $ strict $ lint_format_arg
      $ jobs_arg ~default:sequential_default
      $ blocking_arg $ fuel_arg $ list_rules_arg $ explain_arg)
  in
  Cmd.v
    (Cmd.info "lint-src"
       ~doc:
         "Statically analyze the project's own OCaml sources (SRC0xx \
          diagnostics): float equality, polymorphic comparison in hot \
          paths, unsafe escapes, exception swallowing, non-atomic shared \
          writes in parallel jobs, stray terminal output, and the \
          interprocedural concurrency rules (lock leaks, blocking under \
          a lock, lock-order cycles, unguarded shared state, condition \
          discipline), plus an abstract-interpretation pass that proves \
          kernel write ranges and flags numeric hazards (division by \
          possible zero, out-of-bounds indices, NaN comparisons, \
          escaping probabilities). Deliberate exceptions are waived \
          with (* mrm:ignore SRC001 -- reason *) comments or a \
          checked-in baseline.")
    term

(* ------------------------------------------------------------------ *)
(* batch                                                               *)

let batch_cmd =
  let module Batch = Mrm_batch.Batch in
  let module Json = Mrm_util.Json in
  let file_or_stdin =
    let parse s =
      if s = "-" || Sys.file_exists s then Ok s
      else Error (`Msg (Printf.sprintf "no '%s' file or directory" s))
    in
    Arg.conv ~docv:"JOBS" (parse, Format.pp_print_string)
  in
  let input =
    Arg.(
      value
      & pos 0 (some file_or_stdin) None
      & info [] ~docv:"JOBS"
          ~doc:
            "JSONL job file, one spec per line ($(b,-) or no argument: read \
             standard input). See $(b,mrm2 batch --help) for the spec \
             fields.")
  in
  let run input eps jobs obs =
    obs @@ fun () ->
    (* Stream the input: each line is parsed and validated as it is
       read, so a huge job file never sits in memory as raw text, and
       ids/diagnostics are numbered by the *original* input line (blank
       lines advance the counter without producing a job). *)
    let parse_lines ic =
      let jobs_rev = ref [] and bad_rev = ref [] and lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let trimmed = String.trim line in
           if trimmed <> "" then begin
             let default_id = Printf.sprintf "job-%d" !lineno in
             match Json.parse trimmed with
             | Error e ->
                 bad_rev :=
                   Printf.sprintf "line %d (%s): %s" !lineno default_id e
                   :: !bad_rev
             | Ok json -> (
                 match Batch.job_of_json ~default_id ~default_eps:eps json with
                 | Error e ->
                     bad_rev :=
                       Printf.sprintf "line %d (%s): %s" !lineno default_id e
                       :: !bad_rev
                 | Ok job -> jobs_rev := job :: !jobs_rev)
           end
         done
       with End_of_file -> ());
      (List.rev !jobs_rev, List.rev !bad_rev)
    in
    let good, bad =
      match input with
      | None | Some "-" -> parse_lines stdin
      | Some path ->
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> parse_lines ic)
    in
    match bad with
    | _ :: _ ->
        List.iter (Printf.eprintf "mrm2 batch: %s\n") bad;
        1
    | [] ->
        let jobs_array = Array.of_list good in
        let t0 = Unix.gettimeofday () in
        let outcomes =
          with_optional_pool ~jobs (fun pool ->
              Batch.run ?pool jobs_array)
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        Array.iter
          (fun o -> print_endline (Json.to_string (Batch.outcome_to_json o)))
          outcomes;
        let unique =
          Array.length
            (Array.of_seq
               (Seq.filter
                  (fun (o : Batch.outcome) -> o.duplicate_of = None)
                  (Array.to_seq outcomes)))
        in
        let failed =
          Array.fold_left
            (fun n (o : Batch.outcome) ->
              if Result.is_error o.result then n + 1 else n)
            0 outcomes
        in
        Printf.eprintf
          "# batch: %d jobs (%d unique, %d reused), jobs = %d, %.3fs \
           wall-clock%s\n"
          (Array.length outcomes) unique
          (Array.length outcomes - unique)
          jobs elapsed
          (if failed = 0 then ""
           else Printf.sprintf ", %d FAILED" failed);
        if failed = 0 then 0 else 1
  in
  let term =
    Term.(
      const run $ input $ eps_arg
      $ jobs_arg ~default:Mrm_engine.Pool.default_jobs $ obs_term)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Solve a batch of jobs (JSONL in, JSONL out). Each input line \
          is an object with a model source ($(b,file), or $(b,model) \
          with $(b,sigma2)/$(b,size)), $(b,times) or $(b,t), and optional \
          $(b,id), $(b,order), $(b,eps), $(b,method) and $(b,kind) \
          ($(b,moments), the default, or $(b,stationary) with optional \
          $(b,drain)/$(b,regularize) — no times needed). Structurally \
          identical jobs are solved once; duplicates reference the \
          representative in $(b,duplicate_of). Runs on every core by \
          default (override with $(b,--jobs) / $(b,MRM2_JOBS)).")
    term

(* ------------------------------------------------------------------ *)
(* serve / call                                                        *)

let parse_host_port spec =
  match String.rindex_opt spec ':' with
  | None -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" spec))
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 -> Ok (host, p)
      | _ -> Error (`Msg (Printf.sprintf "bad port in %S" spec)))

let host_port_conv =
  Arg.conv ~docv:"HOST:PORT"
    ( parse_host_port,
      fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p )

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the solver service.")

(* Resolve the service endpoint from --socket / the TCP flag; exactly
   one must be given. *)
let endpoint_of ~tcp_flag socket tcp =
  match (socket, tcp) with
  | Some _, Some _ ->
      Error
        (Printf.sprintf "give either --socket or --%s, not both" tcp_flag)
  | Some path, None -> Ok (`Unix path)
  | None, Some (host, port) -> Ok (`Tcp (host, port))
  | None, None ->
      Error
        (Printf.sprintf "missing service endpoint (--socket or --%s)"
           tcp_flag)

let serve_cmd =
  let module Server = Mrm_server.Server in
  let listen =
    Arg.(
      value
      & opt (some host_port_conv) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Listen on TCP instead of a Unix socket (port $(b,0) picks a \
             free port, printed on startup).")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Request-queue capacity; requests beyond it are rejected with \
             a structured $(b,SRV002) error (backpressure).")
  in
  let cache_entries =
    Arg.(
      value & opt int 256
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Result-cache entry cap (LRU eviction beyond it).")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:"Result-cache (approximate) size cap in MiB.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"W"
          ~doc:
            "Solver worker threads. One worker keeps per-request trace \
             spans nested; more overlap cache hits with running solves.")
  in
  let no_validate =
    Arg.(
      value & flag
      & info [ "no-validate" ]
          ~doc:
            "Skip the server-side $(b,mrm2 lint) pass (MRM0xx diagnostics \
             over the wire) before solving each request.")
  in
  let run socket listen queue cache_entries cache_mb workers no_validate eps
      jobs obs =
    obs @@ fun () ->
    match endpoint_of ~tcp_flag:"listen" socket listen with
    | Error msg ->
        Printf.eprintf "mrm2 serve: %s\n" msg;
        2
    | Ok endpoint ->
        let config =
          {
            (Server.default_config endpoint) with
            Server.queue_capacity = queue;
            cache_entries;
            cache_bytes = cache_mb * 1024 * 1024;
            workers;
            pool_jobs = jobs;
            default_eps = eps;
            validate = not no_validate;
          }
        in
        (* The "listening" line is printed only once the socket is bound
           and accepting — the serve-smoke driver polls for it. *)
        let on_ready = function
          | Unix.ADDR_UNIX path ->
              Printf.eprintf "mrm2 serve: listening on %s\n%!" path
          | Unix.ADDR_INET (addr, port) ->
              Printf.eprintf "mrm2 serve: listening on %s:%d\n%!"
                (Unix.string_of_inet_addr addr)
                port
        in
        match Server.run ~on_ready config with
        | code ->
            Printf.eprintf "mrm2 serve: drained, exiting\n%!";
            code
        | exception Unix.Unix_error (Unix.EADDRINUSE, _, what) ->
            Printf.eprintf
              "mrm2 serve: %s is in use by a live listener (or is not a \
               socket) — refusing to clobber it\n"
              (if what = "" then "the address" else what);
            1
  in
  let term =
    Term.(
      const run $ socket_arg $ listen $ queue $ cache_entries $ cache_mb
      $ workers $ no_validate $ eps_arg
      $ jobs_arg ~default:Mrm_engine.Pool.default_jobs
      $ obs_term)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident solver service: accept concurrent JSONL \
          connections on a Unix socket ($(b,--socket)) or TCP address \
          ($(b,--listen)), answer repeat jobs from an LRU result cache \
          keyed by the structural job digest, push back with structured \
          errors when the bounded request queue is full, honour \
          per-request $(b,deadline_s) budgets, and drain gracefully on \
          SIGTERM/SIGINT (in-flight solves finish, responses flush, exit \
          0).")
    term

let call_cmd =
  let module Client = Mrm_server.Client in
  let connect =
    Arg.(
      value
      & opt (some host_port_conv) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Connect to a TCP service instead of a Unix socket.")
  in
  let input =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"JOBS"
          ~doc:
            "JSONL job file, one spec per line ($(b,-) or no argument: \
             read standard input). Same fields as $(b,mrm2 batch), plus \
             optional $(b,deadline_s).")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Reconnect up to $(docv) consecutive times on a refused \
             connect or a connection cut mid-session, with capped \
             exponential backoff and jitter, resuming from the first \
             unanswered request.")
  in
  let timeout =
    Arg.(
      value & opt float 0.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-exchange send/receive budget; an expired wait counts \
             as a disconnect (and is retried under $(b,--retries)). \
             $(b,0) waits forever.")
  in
  let run socket connect retries timeout input =
    match endpoint_of ~tcp_flag:"connect" socket connect with
    | Error msg ->
        Printf.eprintf "mrm2 call: %s\n" msg;
        2
    | Ok endpoint -> (
        let on_retry ~attempt ~delay what =
          Printf.eprintf "mrm2 call: retry %d in %.2fs (%s)\n%!" attempt
            delay what
        in
        let session ic =
          Client.call ~retries ~timeout ~on_retry endpoint ~input:ic
            ~on_response:print_endline
        in
        let result =
          match input with
          | None | Some "-" -> begin
              match session stdin with
              | summary -> Ok summary
              | exception e -> Error e
            end
          | Some path -> begin
              match open_in path with
              | exception Sys_error msg -> Error (Sys_error msg)
              | ic ->
                  Fun.protect
                    ~finally:(fun () -> close_in ic)
                    (fun () ->
                      match session ic with
                      | summary -> Ok summary
                      | exception e -> Error e)
            end
        in
        match result with
        | Ok { Client.sent; errors; srv_errors; cache_hits; retries } ->
            Printf.eprintf
              "# call: %d request(s), %d cached, %d error(s), %d service \
               error(s), %d retry(ies)\n"
              sent cache_hits errors srv_errors retries;
            if srv_errors > 0 then 4 else if errors > 0 then 1 else 0
        | Error (Client.Disconnected what) ->
            Printf.eprintf "mrm2 call: server disconnected (%s)\n" what;
            3
        | Error (Unix.Unix_error (err, _, _)) ->
            Printf.eprintf "mrm2 call: cannot reach service: %s\n"
              (Unix.error_message err);
            3
        | Error (Sys_error msg) ->
            Printf.eprintf "mrm2 call: %s\n" msg;
            2
        | Error e -> raise e)
  in
  let term =
    Term.(const run $ socket_arg $ connect $ retries $ timeout $ input)
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send a JSONL job stream to a running $(b,mrm2 serve) (or \
          $(b,mrm2 route)) and print the responses, one JSON object per \
          line, in request order. Transient transport failures are \
          retried under $(b,--retries) with capped exponential backoff \
          and jitter. Exits 0 when every response is $(b,status: ok), 1 \
          on solver errors, 3 when the service is unreachable (after \
          retries), 4 when any response is a structured $(b,SRV00x) \
          service error.")
    term

(* ------------------------------------------------------------------ *)
(* route / loadgen — the distributed serving tier                      *)

(* A backend/target address is either HOST:PORT (TCP) or a Unix socket
   path; the raw spec string doubles as the stable ring identity. *)
let addr_conv =
  let parse spec =
    if spec = "" then Error (`Msg "empty address")
    else
      match parse_host_port spec with
      | Ok (host, port) -> Ok (spec, `Tcp (host, port))
      | Error _ -> Ok (spec, `Unix spec)
  in
  let print ppf (spec, _) = Format.pp_print_string ppf spec in
  Arg.conv ~docv:"ADDR" (parse, print)

let route_cmd =
  let module Router = Mrm_cluster.Router in
  let listen =
    Arg.(
      value
      & opt (some host_port_conv) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Listen on TCP instead of a Unix socket (port $(b,0) picks a \
             free port, printed on startup).")
  in
  let backends =
    Arg.(
      non_empty & opt_all addr_conv []
      & info [ "backend" ] ~docv:"ADDR"
          ~doc:
            "A replica $(b,mrm2 serve) to route to: $(b,HOST:PORT) or a \
             Unix socket path. Repeatable; the address string is the \
             replica's identity on the hash ring, so keep it stable \
             across restarts to keep cache placement stable.")
  in
  let vnodes =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"V"
          ~doc:"Virtual nodes per backend on the consistent-hash ring.")
  in
  let probe_interval =
    Arg.(
      value & opt float 1.0
      & info [ "probe-interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between health-probe rounds.")
  in
  let probe_timeout =
    Arg.(
      value & opt float 1.0
      & info [ "probe-timeout" ] ~docv:"SECONDS"
          ~doc:"Connect/read budget of a single health probe.")
  in
  let readmit_after =
    Arg.(
      value & opt int 2
      & info [ "readmit-after" ] ~docv:"N"
          ~doc:
            "Consecutive healthy probes before a downed replica rejoins \
             the ring.")
  in
  let max_inflight =
    Arg.(
      value & opt int 32
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Per-replica in-flight cap; requests beyond it are shed with \
             the structured $(b,SRV002) error instead of queueing.")
  in
  let max_attempts =
    Arg.(
      value & opt int 3
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:
            "Forward attempts per request (failover hops) before \
             answering $(b,SRV006).")
  in
  let io_timeout =
    Arg.(
      value & opt float 30.
      & info [ "io-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-forward send/receive budget against a backend.")
  in
  let run socket listen backends vnodes probe_interval probe_timeout
      readmit_after max_inflight max_attempts io_timeout eps obs =
    obs @@ fun () ->
    match endpoint_of ~tcp_flag:"listen" socket listen with
    | Error msg ->
        Printf.eprintf "mrm2 route: %s\n" msg;
        2
    | Ok listen_endpoint -> (
        let config =
          {
            (Router.default_config ~listen:listen_endpoint
               ~backends:(List.map (fun (spec, ep) -> (spec, ep)) backends))
            with
            Router.vnodes;
            probe_interval;
            probe_timeout;
            readmit_after;
            max_inflight;
            max_attempts;
            io_timeout;
            default_eps = eps;
          }
        in
        let on_ready = function
          | Unix.ADDR_UNIX path ->
              Printf.eprintf "mrm2 route: listening on %s (%d backends)\n%!"
                path (List.length backends)
          | Unix.ADDR_INET (addr, port) ->
              Printf.eprintf
                "mrm2 route: listening on %s:%d (%d backends)\n%!"
                (Unix.string_of_inet_addr addr)
                port (List.length backends)
        in
        match Router.run ~on_ready config with
        | code ->
            Printf.eprintf "mrm2 route: drained, exiting\n%!";
            code
        | exception Invalid_argument msg ->
            Printf.eprintf "mrm2 route: %s\n" msg;
            2
        | exception Unix.Unix_error (Unix.EADDRINUSE, _, what) ->
            Printf.eprintf
              "mrm2 route: %s is in use by a live listener (or is not a \
               socket) — refusing to clobber it\n"
              (if what = "" then "the address" else what);
            1)
  in
  let term =
    Term.(
      const run $ socket_arg $ listen $ backends $ vnodes $ probe_interval
      $ probe_timeout $ readmit_after $ max_inflight $ max_attempts
      $ io_timeout $ eps_arg $ obs_term)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the cluster routing front-end over replica $(b,mrm2 serve) \
          backends: requests are placed by consistent hashing on the \
          structural job digest (so the per-replica result caches \
          compose into one sharded cache), failed or draining replicas \
          are failed over to ring successors and re-admitted after \
          consecutive healthy probes, and per-replica overload is shed \
          with structured $(b,SRV002) errors. Clients connect exactly as \
          they would to a single server; $(b,'{\"cluster\":\"stats\"}') \
          answers with router-side counters.")
    term

let loadgen_cmd =
  let module Loadgen = Mrm_cluster.Loadgen in
  let connect =
    Arg.(
      value
      & opt (some host_port_conv) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Target a TCP service instead of a Unix socket.")
  in
  let requests =
    Arg.(
      value & opt int 1000
      & info [ "requests" ] ~docv:"N"
          ~doc:"Total requests across all workers.")
  in
  let workers =
    Arg.(
      value & opt int 8
      & info [ "workers" ] ~docv:"W"
          ~doc:"Concurrent closed-loop client sessions.")
  in
  let keys =
    Arg.(
      value & opt int 50
      & info [ "keys" ] ~docv:"K"
          ~doc:"Distinct job specs in the workload's key pool.")
  in
  let skew =
    Arg.(
      value & opt float 1.0
      & info [ "skew" ] ~docv:"S"
          ~doc:
            "Key-popularity skew: key $(b,k) is drawn with weight \
             $(b,1/(k+1)^S); $(b,0) is uniform, larger is hotter.")
  in
  let size =
    Arg.(
      value & opt int 6
      & info [ "size" ] ~docv:"N"
          ~doc:"Model size ($(b,onoff) built-in) of every job.")
  in
  let order =
    Arg.(
      value & opt int 3
      & info [ "order" ] ~docv:"R" ~doc:"Highest moment order per job.")
  in
  let timeout =
    Arg.(
      value & opt float 60.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-exchange send/receive budget of each worker.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Also write the benchmark record to $(docv) (e.g. \
             $(b,figures/BENCH_serve.json)); it is always printed to \
             standard output.")
  in
  let run socket connect requests workers keys skew size order seed timeout
      out obs =
    obs @@ fun () ->
    match endpoint_of ~tcp_flag:"connect" socket connect with
    | Error msg ->
        Printf.eprintf "mrm2 loadgen: %s\n" msg;
        2
    | Ok endpoint -> (
        let config =
          {
            (Loadgen.default_config endpoint) with
            Loadgen.requests;
            workers;
            keys;
            skew;
            size;
            order;
            seed;
            io_timeout = timeout;
          }
        in
        match Loadgen.run config with
        | exception Invalid_argument msg ->
            Printf.eprintf "mrm2 loadgen: %s\n" msg;
            2
        | report ->
            let rendered = Mrm_util.Json.to_string report in
            print_endline rendered;
            (match out with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () ->
                    output_string oc rendered;
                    output_char oc '\n'));
            let field name =
              match
                Option.bind
                  (Mrm_util.Json.member name report)
                  Mrm_util.Json.to_float
              with
              | Some v -> v
              | None -> 0.
            in
            if field "ok" > 0. && field "dropped" <= 0. then 0 else 1)
  in
  let term =
    Term.(
      const run $ socket_arg $ connect $ requests $ workers $ keys $ skew
      $ size $ order $ seed_arg $ timeout $ out $ obs_term)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay thousands of concurrent $(b,mrm2 call)-style closed-loop \
          sessions against a running $(b,mrm2 route) (or a single \
          $(b,mrm2 serve)) with configurable key skew, and print a \
          benchmark record: throughput, ok-latency percentiles \
          (p50/p95/p99), cache hit rate, shed rate — plus the router's \
          failover counters when the target is a router. Exits 0 when \
          every request was answered, 1 when any was dropped.")
    term

(* ------------------------------------------------------------------ *)
(* info                                                                *)

let info_cmd =
  let run file kind sigma2 size =
    let model = build_model ?file kind ~sigma2 ~size in
    Format.printf "%a@." Mrm_core.Model.pp model;
    let q =
      Mrm_ctmc.Generator.uniformization_rate
        (model : Mrm_core.Model.t).generator
    in
    Printf.printf "uniformization rate q = %g\n" q;
    Printf.printf "steady-state reward rate = %.8g\n"
      (Mrm_core.Steady.reward_rate model);
    0
  in
  let term = Term.(const run $ file_arg $ model_arg $ sigma2_arg $ size_arg) in
  Cmd.v (Cmd.info "info" ~doc:"Print a model summary") term

let () =
  let doc = "second-order Markov reward model analysis (DSN 2004 methods)" in
  let root = Cmd.group (Cmd.info "mrm2" ~doc)
      [ moments_cmd; batch_cmd; serve_cmd; call_cmd; route_cmd;
        loadgen_cmd; bounds_cmd; distribution_cmd; simulate_cmd; path_cmd;
        mtta_cmd; fluid_cmd; stationary_cmd; info_cmd; lint_cmd;
        lint_src_cmd ]
  in
  exit (Cmd.eval' root)
