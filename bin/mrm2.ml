(* Command-line front end for the second-order MRM solvers.

   Subcommands:
     moments   - raw moments of the accumulated reward at time t
     bounds    - moment-based bounds on P(B(t) <= x)
     simulate  - Monte-Carlo estimates with confidence intervals
     path      - a discretized joint sample path (t, state, B(t))
     info      - model summary (states, rates, uniformization constants)
     lint      - static verification of a model file (MRM0xx diagnostics)

   Built-in models: onoff (the paper's Section-7 multiplexer),
   repair (machine repairman), multi (fault-tolerant multiprocessor). *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Model selection                                                     *)

type model_kind = Onoff | Repair | Multi

let model_kind_conv =
  let parse = function
    | "onoff" -> Ok Onoff
    | "repair" -> Ok Repair
    | "multi" -> Ok Multi
    | s -> Error (`Msg (Printf.sprintf "unknown model %S" s))
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with Onoff -> "onoff" | Repair -> "repair" | Multi -> "multi")
  in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    value
    & opt model_kind_conv Onoff
    & info [ "model" ] ~docv:"NAME"
        ~doc:"Built-in model: $(b,onoff), $(b,repair) or $(b,multi).")

let sigma2_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "sigma2" ] ~docv:"V"
        ~doc:"Per-source rate variance of the onoff model (paper uses 0, 1, 10).")

let size_arg =
  Arg.(
    value
    & opt int 32
    & info [ "size" ] ~docv:"N"
        ~doc:
          "Model size: sources (onoff), machines (repair) or processors \
           (multi).")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "file" ] ~docv:"PATH"
        ~doc:
          "Load the model from a file in the Model_io text format instead \
           of using a built-in (overrides --model/--sigma2/--size).")

let build_model ?file kind ~sigma2 ~size =
  match file with
  | Some path -> (Mrm_core.Model_io.load path).Mrm_core.Model_io.model
  | None -> begin
      match kind with
      | Onoff ->
          let p =
            { (Mrm_models.Onoff.table1 ~sigma2) with
              sources = size;
              capacity = float_of_int size;
            }
          in
          Mrm_models.Onoff.model p
      | Repair ->
          Mrm_models.Machine_repair.(model { default with machines = size })
      | Multi ->
          Mrm_models.Multiprocessor.(model { default with processors = size })
    end

let t_arg =
  Arg.(
    value & opt float 1.0
    & info [ "time"; "t" ] ~docv:"T" ~doc:"Accumulation horizon $(docv).")

let eps_arg =
  Arg.(
    value & opt float 1e-9
    & info [ "eps" ] ~docv:"EPS"
        ~doc:"Truncation-error bound of the randomization method.")

let seed_arg =
  Arg.(
    value & opt int64 1L
    & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for simulation commands.")

(* ------------------------------------------------------------------ *)
(* moments                                                             *)

type method_kind = Mrandom | Mode | Mgaver

let method_conv =
  let parse = function
    | "randomization" | "rand" -> Ok Mrandom
    | "ode" -> Ok Mode
    | "gaver" -> Ok Mgaver
    | s -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Mrandom -> "randomization" | Mode -> "ode" | Mgaver -> "gaver")
  in
  Arg.conv (parse, print)

let moments_cmd =
  let order =
    Arg.(
      value & opt int 3
      & info [ "order" ] ~docv:"N" ~doc:"Highest moment order.")
  in
  let method_ =
    Arg.(
      value
      & opt method_conv Mrandom
      & info [ "method" ] ~docv:"M"
          ~doc:
            "Solver: $(b,randomization) (paper Section 6), $(b,ode) (eq. 6, \
             Heun) or $(b,gaver) (transform domain).")
  in
  let run file kind sigma2 size t order eps method_ =
    let model = build_model ?file kind ~sigma2 ~size in
    (* Model files may declare impulse rewards; route those through the
       impulse-extended solver (randomization method only). *)
    let impulses =
      match file with
      | Some path -> (Mrm_core.Model_io.load path).Mrm_core.Model_io.impulses
      | None -> []
    in
    let pi = (model : Mrm_core.Model.t).initial in
    let unconditional m = Mrm_linalg.Vec.dot pi m in
    (match method_ with
    | Mrandom when impulses <> [] ->
        let wrapped = Mrm_core.Impulse.make model impulses in
        let r = Mrm_core.Impulse.moments ~eps wrapped ~t ~order in
        Printf.printf
          "# randomization+impulses: q = %g, d = %g, G = %d\n"
          r.diagnostics.q r.diagnostics.d r.diagnostics.iterations;
        Array.iteri
          (fun n v -> Printf.printf "E[B^%d] = %.12g\n" n (unconditional v))
          r.moments
    | Mrandom ->
        let r = Mrm_core.Randomization.moments ~eps model ~t ~order in
        Printf.printf
          "# randomization: q = %g, d = %g, G = %d, log10 error bound = %.2f\n"
          r.diagnostics.q r.diagnostics.d r.diagnostics.iterations
          (r.diagnostics.log_error_bound /. log 10.);
        Array.iteri
          (fun n v -> Printf.printf "E[B^%d] = %.12g\n" n (unconditional v))
          r.moments
    | Mode ->
        let m = Mrm_core.Moments_ode.moments model ~t ~order in
        Array.iteri
          (fun n v -> Printf.printf "E[B^%d] = %.12g\n" n (unconditional v))
          m
    | Mgaver ->
        let m = Mrm_core.Transform_moments.moments model ~t ~order in
        Array.iteri
          (fun n v -> Printf.printf "E[B^%d] = %.12g\n" n (unconditional v))
          m);
    0
  in
  let term =
    Term.(
      const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg $ order
      $ eps_arg $ method_)
  in
  Cmd.v
    (Cmd.info "moments" ~doc:"Moments of the accumulated reward at time t")
    term

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)

let bounds_cmd =
  let points =
    Arg.(
      value
      & opt (list float) []
      & info [ "points" ] ~docv:"X1,X2,..."
          ~doc:"Evaluation points (default: mean + k/2 std, k = -4..4).")
  in
  let moment_count =
    Arg.(
      value & opt int 23
      & info [ "moments" ] ~docv:"K"
          ~doc:"Number of moments to compute (the paper's figures use 23).")
  in
  let run file kind sigma2 size t moment_count points =
    let model = build_model ?file kind ~sigma2 ~size in
    let pi = (model : Mrm_core.Model.t).initial in
    let r = Mrm_core.Randomization.moments model ~t ~order:moment_count in
    let moments =
      Array.init (moment_count + 1) (fun n ->
          Mrm_linalg.Vec.dot pi r.moments.(n))
    in
    let bounds = Mrm_core.Moment_bounds.prepare moments in
    Printf.printf "# using %d moments (%d Gauss nodes)\n"
      (Mrm_core.Moment_bounds.moments_used bounds)
      (Mrm_core.Moment_bounds.quadrature_size bounds);
    let points =
      if points <> [] then points
      else begin
        let mean = moments.(1) in
        let std = sqrt (Float.max 0. (moments.(2) -. (mean *. mean))) in
        List.init 9 (fun k -> mean +. (float_of_int (k - 4) /. 2. *. std))
      end
    in
    List.iter
      (fun x ->
        let b = Mrm_core.Moment_bounds.cdf_bounds bounds x in
        Printf.printf "x = %-12g %.6f <= F(x) <= %.6f\n" x b.lower b.upper)
      points;
    0
  in
  let term =
    Term.(
      const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg
      $ moment_count $ points)
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Moment-based bounds on the reward distribution")
    term

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_cmd =
  let replicas =
    Arg.(
      value & opt int 100_000
      & info [ "replicas" ] ~docv:"R" ~doc:"Number of i.i.d. samples.")
  in
  let order =
    Arg.(
      value & opt int 3
      & info [ "order" ] ~docv:"N" ~doc:"Highest moment order to estimate.")
  in
  let run file kind sigma2 size t replicas order seed =
    let model = build_model ?file kind ~sigma2 ~size in
    let rng = Mrm_util.Rng.create ~seed () in
    let estimates =
      Mrm_core.Simulate.estimate_moments model rng ~t ~max_order:order
        ~replicas
    in
    Array.iter
      (fun e ->
        Printf.printf "E[B^%d] ~ %.8g   95%% CI [%.8g, %.8g]\n"
          e.Mrm_core.Simulate.order e.value e.ci_low e.ci_high)
      estimates;
    0
  in
  let term =
    Term.(
      const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg
      $ replicas $ order $ seed_arg)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte-Carlo moment estimates with CIs")
    term

(* ------------------------------------------------------------------ *)
(* path                                                                *)

let path_cmd =
  let grid =
    Arg.(
      value & opt int 200
      & info [ "grid" ] ~docv:"K" ~doc:"Number of grid intervals.")
  in
  let run file kind sigma2 size t grid seed =
    let model = build_model ?file kind ~sigma2 ~size in
    let rng = Mrm_util.Rng.create ~seed () in
    let path = Mrm_core.Simulate.joint_path model rng ~t_max:t ~grid in
    print_endline "# t state B(t)";
    Array.iter
      (fun p ->
        Printf.printf "%.6f %d %.8g\n" p.Mrm_core.Simulate.time p.state
          p.reward)
      path;
    0
  in
  let term =
    Term.(
      const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg $ grid
      $ seed_arg)
  in
  Cmd.v (Cmd.info "path" ~doc:"Sample a joint (state, reward) path") term

(* ------------------------------------------------------------------ *)
(* distribution                                                        *)

let distribution_cmd =
  let points =
    Arg.(
      value
      & opt (list float) []
      & info [ "points" ] ~docv:"X1,X2,..."
          ~doc:"Evaluation points (default: mean + k/2 std, k = -4..4).")
  in
  let run file kind sigma2 size t points =
    let model = build_model ?file kind ~sigma2 ~size in
    let points =
      if points <> [] then Array.of_list points
      else begin
        let r = Mrm_core.Randomization.moments model ~t ~order:2 in
        let pi = (model : Mrm_core.Model.t).initial in
        let mean = Mrm_linalg.Vec.dot pi r.moments.(1) in
        let std =
          sqrt
            (Float.max 0.
               (Mrm_linalg.Vec.dot pi r.moments.(2) -. (mean *. mean)))
        in
        Array.init 9 (fun k -> mean +. (float_of_int (k - 4) /. 2. *. std))
      end
    in
    let values, grid =
      Mrm_core.Transform_distribution.cdf_grid model ~t points
    in
    Printf.printf "# Gil-Pelaez inversion: %d frequencies, step %g\n"
      grid.Mrm_core.Transform_distribution.count
      grid.Mrm_core.Transform_distribution.step;
    Array.iteri
      (fun k x -> Printf.printf "P(B <= %-12g) = %.6f\n" x values.(k))
      points;
    0
  in
  let term =
    Term.(const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ t_arg $ points)
  in
  Cmd.v
    (Cmd.info "distribution"
       ~doc:"CDF of the accumulated reward (transform-domain inversion)")
    term

(* ------------------------------------------------------------------ *)
(* mtta                                                                *)

let mtta_cmd =
  let targets =
    Arg.(
      required
      & opt (some (list int)) None
      & info [ "targets" ] ~docv:"S1,S2,..."
          ~doc:"Target state indices (e.g. the all-failed state).")
  in
  let run file kind sigma2 size targets =
    let model = build_model ?file kind ~sigma2 ~size in
    let mtta =
      Mrm_ctmc.Absorption.mean_time_to_absorption
        (model : Mrm_core.Model.t).generator
        ~initial:(model : Mrm_core.Model.t).initial ~targets
    in
    Printf.printf "mean time to reach {%s} = %g\n"
      (String.concat ", " (List.map string_of_int targets))
      mtta;
    0
  in
  let term =
    Term.(const run $ file_arg $ model_arg $ sigma2_arg $ size_arg $ targets)
  in
  Cmd.v
    (Cmd.info "mtta" ~doc:"Mean time to absorption into a target state set")
    term

(* ------------------------------------------------------------------ *)
(* fluid                                                               *)

let fluid_cmd =
  let capacity =
    Arg.(
      value & opt float 5.
      & info [ "capacity" ] ~docv:"C" ~doc:"Drain rate of the buffer.")
  in
  let peak =
    Arg.(
      value & opt float 10.
      & info [ "peak" ] ~docv:"P" ~doc:"Peak input rate while ON.")
  in
  let sigma2 =
    Arg.(
      value & opt float 2.
      & info [ "fluid-sigma2" ] ~docv:"V"
          ~doc:"Brownian variance of the input while ON.")
  in
  let run capacity peak sigma2 =
    let generator =
      Mrm_ctmc.Generator.of_triplets ~states:2 [ (0, 1, 0.5); (1, 0, 1.0) ]
    in
    let queue =
      Mrm_fluid.Fluid.make ~generator
        ~rates:[| -.capacity; peak -. capacity |]
        ~variances:[| Float.max 1e-6 (sigma2 /. 10.); sigma2 |]
    in
    let s = Mrm_fluid.Fluid.stationary queue in
    Printf.printf
      "ON-OFF fluid queue: drift %.4f, mean level %.6f, decay rate %.6f\n"
      (Mrm_fluid.Fluid.mean_drift s)
      (Mrm_fluid.Fluid.mean_level s)
      (Mrm_fluid.Fluid.decay_rate s);
    List.iter
      (fun x ->
        Printf.printf "P(level > %-8g) = %.8f\n" x (Mrm_fluid.Fluid.ccdf s x))
      [ 0.; 0.5; 1.; 2.; 4.; 8.; 16. ];
    0
  in
  let term = Term.(const run $ capacity $ peak $ sigma2) in
  Cmd.v
    (Cmd.info "fluid"
       ~doc:"Stationary second-order fluid queue for an ON-OFF source")
    term

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

type lint_format = Human | Sexp | Json

let lint_format_conv =
  let parse = function
    | "human" -> Ok Human
    | "sexp" -> Ok Sexp
    | "json" -> Ok Json
    | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with Human -> "human" | Sexp -> "sexp" | Json -> "json")
  in
  Arg.conv (parse, print)

let lint_cmd =
  let module Check = Mrm_check.Check in
  let module Diagnostics = Mrm_check.Diagnostics in
  let module Model_io = Mrm_core.Model_io in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MODEL" ~doc:"Model file in the Model_io text format.")
  in
  let order =
    Arg.(
      value & opt int 3
      & info [ "order" ] ~docv:"N"
          ~doc:"Moment order the solve would use (conditioning checks).")
  in
  let format =
    Arg.(
      value
      & opt lint_format_conv Human
      & info [ "format" ] ~docv:"F"
          ~doc:"Report rendering: $(b,human), $(b,sexp) or $(b,json).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit non-zero on warnings, not just errors.")
  in
  let print_report format report =
    match format with
    | Human -> Format.printf "%a" Diagnostics.pp_report report
    | Sexp -> print_endline (Diagnostics.report_to_sexp report)
    | Json -> print_endline (Diagnostics.report_to_json report)
  in
  let exit_code strict report =
    if Diagnostics.has_errors report then 1
    else if strict && Diagnostics.count Diagnostics.Warning report > 0 then 1
    else 0
  in
  let run path t order eps format strict =
    let text =
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Model_io.parse_raw text with
    | Error e ->
        let context =
          List.concat
            [
              [ ("file", path) ];
              (match e.Model_io.line with
              | Some l -> [ ("line", string_of_int l) ]
              | None -> []);
              (match e.Model_io.field with
              | Some f -> [ ("field", f) ]
              | None -> []);
            ]
        in
        let report =
          [
            Diagnostics.error ~code:"MRM090" ~context
              (Model_io.error_message e);
          ]
        in
        print_report format report;
        1
    | Ok raw ->
        let n = raw.Model_io.declared_states in
        let rates = Array.make n 0. and variances = Array.make n 0. in
        List.iter
          (fun (state, drift, variance) ->
            rates.(state) <- drift;
            variances.(state) <- variance)
          raw.Model_io.raw_rewards;
        let initial = Array.make n 0. in
        List.iter
          (fun (state, p) -> initial.(state) <- p)
          raw.Model_io.raw_initial;
        let data =
          Check.of_triplets ~states:n
            ~transitions:raw.Model_io.raw_transitions ~rates ~variances
            ~initial
        in
        let config = { Check.t; order; eps; q = None; d = None } in
        let report = Check.check ~config data in
        print_report format report;
        exit_code strict report
  in
  let term =
    Term.(const run $ file $ t_arg $ order $ eps_arg $ format $ strict)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify a model file: generator validity, reward \
          sanity, reachability, uniformization invariants and \
          conditioning, without solving anything")
    term

(* ------------------------------------------------------------------ *)
(* info                                                                *)

let info_cmd =
  let run file kind sigma2 size =
    let model = build_model ?file kind ~sigma2 ~size in
    Format.printf "%a@." Mrm_core.Model.pp model;
    let q =
      Mrm_ctmc.Generator.uniformization_rate
        (model : Mrm_core.Model.t).generator
    in
    Printf.printf "uniformization rate q = %g\n" q;
    Printf.printf "steady-state reward rate = %.8g\n"
      (Mrm_core.Steady.reward_rate model);
    0
  in
  let term = Term.(const run $ file_arg $ model_arg $ sigma2_arg $ size_arg) in
  Cmd.v (Cmd.info "info" ~doc:"Print a model summary") term

let () =
  let doc = "second-order Markov reward model analysis (DSN 2004 methods)" in
  let root = Cmd.group (Cmd.info "mrm2" ~doc)
      [ moments_cmd; bounds_cmd; distribution_cmd; simulate_cmd; path_cmd;
        mtta_cmd; fluid_cmd; info_cmd; lint_cmd ]
  in
  exit (Cmd.eval' root)
