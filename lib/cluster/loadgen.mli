(** Closed-loop load generator behind [mrm2 loadgen].

    [workers] threads each hold one persistent connection to the target
    — the {!Router} or a single [mrm2 serve] replica, both speak the
    same JSONL protocol — and replay [mrm2 call]-style lockstep
    sessions drawn from a skewed key distribution over [keys] distinct
    job specs. The workload (who sends which key when) is a pure
    function of [seed]; only timing varies between runs.

    {!run} returns the benchmark record written to
    [figures/BENCH_serve.json]: request counts by outcome
    (ok/cached/shed/error/disconnect), elapsed wall-clock, throughput,
    ok-latency percentiles (p50/p95/p99/mean/max, milliseconds), cache
    hit rate and shed rate — plus, when the target is a router, its
    [{"cluster":"stats"}] snapshot (failover and probe counters,
    per-replica health) under a ["router"] key. *)

type config = {
  endpoint : Mrm_server.Server.endpoint;
  requests : int;  (** total requests across all workers *)
  workers : int;  (** concurrent closed-loop sessions *)
  keys : int;  (** distinct job specs in the key pool *)
  skew : float;  (** 0 = uniform; larger = hotter head keys *)
  size : int;  (** model size of every job ([onoff] built-in) *)
  order : int;  (** highest moment order per job *)
  seed : int64;  (** workload RNG seed *)
  io_timeout : float;  (** per-exchange send/receive budget, seconds *)
}

val default_config : Mrm_server.Server.endpoint -> config
(** [requests = 1000], [workers = 8], [keys = 50], [skew = 1.0],
    [size = 6], [order = 3], [seed = 42L], [io_timeout = 60.]. *)

val key_weights : keys:int -> skew:float -> float array
(** Zipf-like weights [1/(k+1)^skew] for keys [0 .. keys-1].
    @raise Invalid_argument when [keys < 1] or [skew < 0]. *)

val key_sampler :
  keys:int -> skew:float -> Mrm_util.Rng.t -> unit -> int
(** A sampling closure over the {!key_weights} distribution;
    deterministic for a given generator state. *)

val percentile : float array -> float -> float
(** [percentile sorted q] is the nearest-rank [q]-th percentile of an
    ascending-sorted sample: the element at 1-based rank
    [ceil (q * n)], clamped to the array — an observed value, never an
    interpolation. [q] is clamped to [[0, 1]]; [q = 0] returns the
    minimum, the empty array gives [nan]. Exposed for the unit tests
    pinning the small-sample behaviour (p99 of fewer than 100 samples
    is the maximum, and never aliases p95 through fractional-index
    rounding). *)

val job_line : config -> int -> string
(** The JSONL job spec for key [k]: a deterministic point on a
    (reward-variance × horizon) parameter grid, so distinct keys have
    distinct {!Mrm_batch.Batch.digest}s. *)

val run : config -> Mrm_util.Json.t
(** Execute the workload and return the benchmark record. Workers that
    cannot reach the target count their requests as [dropped] rather
    than blocking forever.
    @raise Invalid_argument when [requests < 1] or [workers < 1]. *)
