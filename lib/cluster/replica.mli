(** One backend [mrm2 serve] as seen by the router: pooled persistent
    connections plus the health/failover state machine.

    A replica is [Up] until a forward or probe fails (it is then marked
    down, its pooled connections dropped, and the ring spills its keys
    to successors) and [Down] until [readmit_after] {e consecutive}
    healthy probes re-admit it. A backend answering the SRV004 drain
    error counts as failed — drain-aware failover.

    All socket I/O happens outside the internal mutex: a stuck backend
    cannot wedge other handler threads. *)

type t

val create :
  ?io_timeout:float -> ?max_idle:int -> name:string ->
  Mrm_server.Server.endpoint -> t
(** [io_timeout] (default 30s) bounds every send/receive on forwarded
    calls; [max_idle] (default 8) caps the persistent-connection pool.
    A fresh replica starts [Up] (optimistic: the first failure, not a
    startup race, marks it down). *)

val name : t -> string
val endpoint : t -> Mrm_server.Server.endpoint

val healthy : t -> bool

val mark_down : t -> bool
(** Passive failure detection (a forward failed). Returns [true] iff
    this call transitioned the replica [Up -> Down]; pooled connections
    are dropped on the transition. *)

val record_probe :
  t -> ok:bool -> readmit_after:int ->
  [ `Still_up | `Went_down | `Still_down | `Readmitted ]
(** Fold one probe outcome into the state machine. *)

val probe :
  t -> timeout:float -> readmit_after:int ->
  [ `Still_up | `Went_down | `Still_down | `Readmitted ]
(** Run one health probe (dedicated connection, deliberately malformed
    request: SRV001 = alive, SRV004/close/timeout/refused = failed) and
    {!record_probe} the outcome. *)

val call : t -> string -> (string, string) result
(** Forward one request line, lockstep, over a pooled (or fresh)
    connection. [Error reason] on any transport failure — the failed
    connection is closed, and the caller decides whether to
    {!mark_down}. *)

val shutdown : t -> unit
(** Close every pooled connection. *)
