(** Line-oriented socket I/O for replica connections and the load
    generator: raw descriptors with an explicit residue buffer, so a
    pooled connection can move between threads and SO_RCVTIMEO
    deadlines surface as {!Timeout} instead of a corrupted channel. *)

type conn

exception Timeout
(** The send/receive deadline passed (SO_RCVTIMEO / SO_SNDTIMEO). *)

exception Closed
(** The peer closed the connection. *)

val connect : ?timeout:float -> Mrm_server.Server.endpoint -> conn
(** Open a connection; [timeout] (seconds, when positive) bounds every
    subsequent send and receive.
    @raise Unix.Unix_error when the endpoint is unreachable. *)

val close : conn -> unit
(** Close the descriptor (errors ignored). *)

val write_line : conn -> string -> unit
(** Send [line ^ "\n"], handling partial writes.
    @raise Timeout / Closed / Unix.Unix_error on transport failure. *)

val read_line : conn -> string
(** Receive the next newline-terminated line (the newline is stripped).
    @raise Timeout / Closed / Unix.Unix_error on transport failure. *)

val exchange : conn -> string -> (string, string) result
(** [write_line] then [read_line], with every transport failure mapped
    to [Error reason]. *)
