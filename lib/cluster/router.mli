(** The sharding router behind [mrm2 route]: a JSONL front-end over N
    replica [mrm2 serve] backends.

    Clients speak to the router exactly as they would to a single
    server ({!Mrm_server.Protocol} wire format, lockstep one request
    line / one response line). Each request is placed on a consistent
    hash ring ({!Ring}) keyed by its {!Mrm_batch.Batch.digest}, so
    repeat jobs always land on the replica whose LRU cache already
    holds the answer — the per-replica caches compose into one sharded
    distributed cache.

    {2 Failover}

    A forward that fails in transport, or that the backend answers with
    the SRV004 drain error, marks the replica down ({!Replica}) and the
    request retries on the ring's next successor; solves are
    deterministic, so the retried answer is bit-for-bit identical. A
    prober thread health-checks every replica each [probe_interval];
    a downed replica rejoins after [readmit_after] consecutive healthy
    probes. When no healthy candidate remains (or [max_attempts]
    forwards all failed) the client receives SRV006.

    {2 Shedding}

    Admission is per-replica ({!Shed}): a request whose owner is at
    [max_inflight] in-flight forwards is rejected with the existing
    SRV002 backpressure error — overload does {e not} spill to other
    replicas.

    {2 Control requests}

    The router answers [{"cluster":"stats"}] itself with a snapshot of
    the [cluster.*] metrics and per-replica health, without touching a
    backend.

    {2 Metrics}

    Counters [cluster.connections], [cluster.requests],
    [cluster.parse_errors], [cluster.forwarded], [cluster.failovers],
    [cluster.shed], [cluster.unavailable], [cluster.probes],
    [cluster.probe_failures], [cluster.marked_down],
    [cluster.readmitted]; gauges [cluster.replicas_up] and
    [cluster.inflight_peak]. Each proxied request runs inside a
    [cluster.request] trace span carrying the job id, digest, the
    serving replica and the number of forward attempts. *)

type config = {
  listen : Mrm_server.Server.endpoint;
  backends : (string * Mrm_server.Server.endpoint) list;
      (** [(name, endpoint)]; names must be distinct — they are the
          ring member identities, so keep them stable across restarts
          to keep cache placement stable. *)
  vnodes : int;  (** virtual nodes per backend on the ring *)
  probe_interval : float;  (** seconds between health-probe rounds *)
  probe_timeout : float;  (** per-probe connect/read budget, seconds *)
  readmit_after : int;  (** consecutive healthy probes to rejoin *)
  max_inflight : int;  (** per-replica in-flight cap (shed above) *)
  max_attempts : int;  (** forwards per request before SRV006 *)
  io_timeout : float;  (** per-forward send/receive budget, seconds *)
  default_eps : float;  (** [eps] for jobs that do not set one *)
}

val default_config :
  listen:Mrm_server.Server.endpoint ->
  backends:(string * Mrm_server.Server.endpoint) list -> config
(** [vnodes = 64], [probe_interval = 1.0], [probe_timeout = 1.0],
    [readmit_after = 2], [max_inflight = 32], [max_attempts = 3],
    [io_timeout = 30.], [default_eps = 1e-9]. *)

type handle

val start : config -> handle
(** Bind the listen endpoint ({!Mrm_server.Server.bind_endpoint} rules)
    and spawn the acceptor and prober threads.
    @raise Invalid_argument on an empty or duplicate-named backend
    list, [max_attempts < 1] or [readmit_after < 1].
    @raise Unix.Unix_error when the endpoint cannot be bound. *)

val listen_address : handle -> Unix.sockaddr
(** The bound address — for [`Tcp (host, 0)] this carries the port. *)

val drain : handle -> unit
(** Begin graceful shutdown (idempotent, signal-safe): stop accepting,
    half-close idle client connections, let in-flight forwards finish. *)

val wait : handle -> unit
(** Block until drained: acceptor, prober and every connection handler
    joined, replica pools closed, sockets closed (and a Unix listen
    path unlinked). *)

val run : ?on_ready:(Unix.sockaddr -> unit) -> config -> int
(** [mrm2 route] main loop: install the SIGTERM/SIGINT watcher (mask
    first, as {!Mrm_server.Server.run} does), {!start}, call [on_ready]
    with the bound address, {!wait}. Returns 0 on graceful shutdown. *)
