(** Consistent-hash ring with virtual nodes.

    Placement is deterministic: a pure function of the member names and
    the vnode count, so independent routers over the same membership
    route identically. Each member owns [vnodes] points on a 64-bit
    circle; a key belongs to the first point clockwise from the key's
    hash. Removing a member remaps only the keys that pointed at its
    vnodes (each spills to the next member clockwise); all other keys
    keep their owner — the minimal-remapping property the router's
    per-replica LRU caches rely on. *)

type t

val create : ?vnodes:int -> string list -> t
(** [create ~vnodes members] builds the ring ([vnodes] defaults to 64;
    duplicate names collapse).
    @raise Invalid_argument on an empty member list or [vnodes < 1]. *)

val members : t -> string list
(** Sorted member names. *)

val vnodes : t -> int

val owner : t -> string -> string
(** The member owning this key. *)

val successors : t -> string -> string list
(** Every member in ring order starting at the key's owner: the
    failover preference list ([owner] first, each later entry the spill
    target of the previous one). *)

val route : t -> ?down:(string -> bool) -> string -> string option
(** First member of {!successors} not rejected by [down] (default:
    nothing is down); [None] when every member is down. *)
