(** Load-shedding admission control: per-replica in-flight depth with a
    hard cap.

    The router calls {!try_admit} against the target replica before
    forwarding and {!release} when the response (or failure) returns;
    a replica at its cap sheds new requests with the existing SRV002
    backpressure error instead of queueing unboundedly. Overload is
    {e not} spilled to other replicas — that would break the
    digest-keyed cache placement and cascade a partial outage. *)

type t

val create : limit:int -> t
(** @raise Invalid_argument when [limit < 1]. *)

val limit : t -> int

val try_admit : t -> string -> bool
(** Reserve one in-flight slot on the named replica; [false] = shed. *)

val release : t -> string -> unit
(** Return a slot. Unbalanced releases are ignored (the depth never
    goes negative). *)

val inflight : t -> string -> int
val peak : t -> int
(** Worst per-replica depth ever admitted (gauge material). *)
