(* Admission control: per-replica in-flight depth with a hard cap.

   The router admits a request against its target replica before
   forwarding and releases it when the response (or failure) comes
   back. A replica at its cap sheds new work with the existing SRV002
   backpressure error instead of queueing unboundedly — overload
   degrades into fast, explicit rejections the client can retry,
   and does NOT spill onto the other replicas (that would defeat the
   digest-keyed cache placement and melt the survivors in a partial
   outage). *)

type t = {
  limit : int;
  mutex : Mutex.t;
  counts : (string, int) Hashtbl.t;
  mutable peak : int;  (* worst per-replica depth ever admitted *)
}

let create ~limit =
  if limit < 1 then invalid_arg (Printf.sprintf "Shed.create: limit %d" limit);
  { limit; mutex = Mutex.create (); counts = Hashtbl.create 8; peak = 0 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let limit t = t.limit

let inflight t name =
  with_lock t @@ fun () ->
  Option.value (Hashtbl.find_opt t.counts name) ~default:0

let peak t = with_lock t @@ fun () -> t.peak

let try_admit t name =
  with_lock t @@ fun () ->
  let depth = Option.value (Hashtbl.find_opt t.counts name) ~default:0 in
  if depth >= t.limit then false
  else begin
    Hashtbl.replace t.counts name (depth + 1);
    if depth + 1 > t.peak then t.peak <- depth + 1;
    true
  end

let release t name =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.counts name with
  | None | Some 0 -> ()  (* unbalanced release: keep the invariant *)
  | Some depth -> Hashtbl.replace t.counts name (depth - 1)
