(* Line-oriented socket I/O for the router's replica connections and
   the load generator: one JSONL request out, one JSONL response back,
   over a raw file descriptor with an optional receive deadline.

   Channels (in_channel/out_channel) are deliberately avoided here:
   a pooled connection moves between handler threads, and the raw
   descriptor plus an explicit residue buffer keeps the state obvious
   and the timeout behaviour (EAGAIN from SO_RCVTIMEO) catchable. *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes read past the last returned line *)
}

exception Timeout
exception Closed

let connect ?timeout endpoint =
  let fd = Mrm_server.Client.connect endpoint in
  (match timeout with
  | Some s when s > 0. ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
  | Some _ | None -> ());
  { fd; rbuf = Buffer.create 512 }

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let write_line conn line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec push off =
    if off < len then begin
      match Unix.write conn.fd payload off (len - off) with
      | 0 -> raise Closed
      | n -> push (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          (* the systhreads tick signal interrupts blocking syscalls;
             an interrupted write is not a dead backend *)
          push off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          raise Timeout
    end
  in
  push 0

(* Extract the first complete line of [b], leaving the rest in place. *)
let take_line b =
  let s = Buffer.contents b in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      Buffer.clear b;
      Buffer.add_substring b s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)

let read_line conn =
  let chunk = Bytes.create 4096 in
  let rec fill () =
    match take_line conn.rbuf with
    | Some line -> line
    | None -> begin
        match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise Closed
        | n ->
            Buffer.add_subbytes conn.rbuf chunk 0 n;
            fill ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            raise Timeout
      end
  in
  fill ()

(* One lockstep exchange; any transport failure is an [Error]. *)
let exchange conn line =
  match
    write_line conn line;
    read_line conn
  with
  | response -> Ok response
  | exception Timeout -> Error "timed out waiting for the response"
  | exception Closed -> Error "connection closed"
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
