(* The cluster tier's line-oriented socket I/O is the solver service's
   shared helper ({!Mrm_server.Wire}) — one EINTR-retrying
   implementation on both sides of the wire — plus endpoint dialing
   with an optional send/receive deadline. *)

include Mrm_server.Wire

let connect ?timeout endpoint =
  let fd = Mrm_server.Client.connect endpoint in
  (match timeout with
  | Some s when s > 0. ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
  | Some _ | None -> ());
  of_fd fd
