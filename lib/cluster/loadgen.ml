(* Closed-loop load generator behind `mrm2 loadgen`.

   [workers] threads each hold one persistent connection to the target
   (router or a single replica — both speak the same JSONL protocol)
   and replay `mrm2 call`-style lockstep sessions: draw a key from a
   skewed distribution over [keys] distinct job specs, send the job
   line, block on the response, classify it, repeat. The total request
   count is a shared countdown, so workers that hit a slow replica
   naturally do fewer requests (closed-loop back-pressure, like real
   clients).

   Determinism: the workload (which worker sends which key in which
   order) is a pure function of [seed] — each worker owns an Rng.split
   stream. What varies run-to-run is only timing.

   Every worker accumulates into its own local record and the merge
   happens after Thread.join — no shared mutable aggregation state. *)

module Json = Mrm_util.Json
module Rng = Mrm_util.Rng

type config = {
  endpoint : Mrm_server.Server.endpoint;
  requests : int;  (** total requests across all workers *)
  workers : int;  (** concurrent closed-loop sessions *)
  keys : int;  (** distinct job specs in the key pool *)
  skew : float;  (** 0 = uniform; larger = hotter head keys *)
  size : int;  (** model size of every job ([onoff] built-in) *)
  order : int;  (** highest moment order per job *)
  seed : int64;  (** workload RNG seed *)
  io_timeout : float;  (** per-exchange send/receive budget, seconds *)
}

let default_config endpoint =
  {
    endpoint;
    requests = 1000;
    workers = 8;
    keys = 50;
    skew = 1.0;
    size = 6;
    order = 3;
    seed = 42L;
    io_timeout = 60.;
  }

(* ------------------------------------------------------------------ *)
(* Key distribution: zipf-like weights 1/(k+1)^skew over [0, keys).    *)

let key_weights ~keys ~skew =
  if keys < 1 then invalid_arg (Printf.sprintf "Loadgen: keys %d" keys);
  if skew < 0. then invalid_arg (Printf.sprintf "Loadgen: skew %g" skew);
  Array.init keys (fun k -> (1. /. float_of_int (k + 1)) ** skew)

let key_sampler ~keys ~skew rng =
  let cumulative = key_weights ~keys ~skew in
  let total = ref 0. in
  Array.iteri
    (fun i w ->
      total := !total +. w;
      cumulative.(i) <- !total)
    cumulative;
  let total = !total in
  fun () ->
    let u = Rng.uniform rng *. total in
    (* first index whose cumulative weight exceeds u *)
    let lo = ref 0 and hi = ref (keys - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cumulative.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

(* Key [k] maps to a deterministic spot on a parameter grid: three
   reward-variance levels crossed with a ladder of horizons. Distinct
   keys are distinct Batch.digests (distinct cache entries / ring
   positions); a repeated key is a cache hit on its owning replica. *)
let job_line cfg k =
  let sigma2 = [| 0.; 1.; 10. |].(k mod 3) in
  let t = 0.1 +. (0.01 *. float_of_int (k / 3)) in
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str (Printf.sprintf "k%d" k));
         ("model", Json.Str "onoff");
         ("sigma2", Json.Num sigma2);
         ("size", Json.Num (float_of_int cfg.size));
         ("t", Json.Num t);
         ("order", Json.Num (float_of_int cfg.order));
       ])

(* ------------------------------------------------------------------ *)
(* Per-worker tally (merged after join)                                 *)

type tally = {
  mutable sent : int;
  mutable ok : int;
  mutable cached : int;
  mutable shed : int;  (** SRV002 rejections *)
  mutable srv_errors : int;  (** other SRV00x error responses *)
  mutable disconnects : int;  (** transport failures (reconnected) *)
  mutable dropped : int;  (** requests abandoned unanswered *)
  mutable latencies_ms : float list;  (** ok responses only *)
}

let fresh_tally () =
  {
    sent = 0;
    ok = 0;
    cached = 0;
    shed = 0;
    srv_errors = 0;
    disconnects = 0;
    dropped = 0;
    latencies_ms = [];
  }

let classify tally response =
  match Json.parse response with
  | Error _ -> tally.srv_errors <- tally.srv_errors + 1
  | Ok json -> begin
      match Mrm_server.Protocol.response_status json with
      | Some "ok" ->
          tally.ok <- tally.ok + 1;
          if Mrm_server.Protocol.response_cached json then
            tally.cached <- tally.cached + 1
      | Some _ | None -> (
          match Option.bind (Json.member "code" json) Json.to_str with
          | Some "SRV002" -> tally.shed <- tally.shed + 1
          | Some _ | None -> tally.srv_errors <- tally.srv_errors + 1)
    end

(* One worker: countdown-driven closed loop over a persistent
   connection; a transport failure reconnects (bounded retries) and
   re-sends the same request — solves are idempotent. *)
let worker cfg ~remaining ~rng () =
  let tally = fresh_tally () in
  let sample = key_sampler ~keys:cfg.keys ~skew:cfg.skew rng in
  let conn = ref None in
  let close_conn () =
    match !conn with
    | Some c ->
        conn := None;
        Wire.close c
    | None -> ()
  in
  let get_conn () =
    match !conn with
    | Some c -> Some c
    | None -> (
        match Wire.connect ~timeout:cfg.io_timeout cfg.endpoint with
        | c ->
            conn := Some c;
            Some c
        | exception Unix.Unix_error _ -> None)
  in
  let exchange line =
    (* up to 5 transport retries per request; reconnect between them *)
    let rec go attempt =
      match get_conn () with
      | None ->
          if attempt >= 5 then None
          else begin
            tally.disconnects <- tally.disconnects + 1;
            Thread.delay 0.05;
            go (attempt + 1)
          end
      | Some c -> begin
          match Wire.exchange c line with
          | Ok response -> Some response
          | Error _ ->
              close_conn ();
              if attempt >= 5 then None
              else begin
                tally.disconnects <- tally.disconnects + 1;
                Thread.delay 0.05;
                go (attempt + 1)
              end
        end
    in
    go 0
  in
  let rec loop () =
    if Atomic.fetch_and_add remaining (-1) > 0 then begin
      let line = job_line cfg (sample ()) in
      tally.sent <- tally.sent + 1;
      let t0 = Unix.gettimeofday () in
      (match exchange line with
      | None -> tally.dropped <- tally.dropped + 1
      | Some response ->
          let elapsed_ms = 1000. *. (Unix.gettimeofday () -. t0) in
          let ok_before = tally.ok in
          classify tally response;
          if tally.ok > ok_before then
            tally.latencies_ms <- elapsed_ms :: tally.latencies_ms);
      loop ()
    end
  in
  loop ();
  close_conn ();
  tally

(* ------------------------------------------------------------------ *)
(* Report *)

(* Nearest-rank percentile: the q-th percentile of n sorted samples is
   the element at 1-based rank ceil(q * n). No interpolation — the
   reported p99 is an actually observed latency, and small samples
   behave sanely: with n < 100, p99 is the maximum (rank n), never an
   index past the end and never an alias of a lower percentile through
   fractional-index rounding. q is clamped to [0, 1]; q = 0 means the
   minimum by convention (rank 0 would underflow the array). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(* Ask the target for its router-side stats; a plain replica answers
   the probe-style request with SRV001, in which case the report simply
   omits the section. *)
let router_stats cfg =
  match Wire.connect ~timeout:cfg.io_timeout cfg.endpoint with
  | exception Unix.Unix_error _ -> None
  | conn ->
      Fun.protect
        ~finally:(fun () -> Wire.close conn)
        (fun () ->
          match Wire.exchange conn {|{"cluster":"stats"}|} with
          | Error _ -> None
          | Ok response -> (
              match Json.parse response with
              | Error _ -> None
              | Ok json -> (
                  match Mrm_server.Protocol.response_status json with
                  | Some "ok" ->
                      Some
                        (Json.Obj
                           (List.filter_map
                              (fun key ->
                                Option.map
                                  (fun v -> (key, v))
                                  (Json.member key json))
                              [ "cluster"; "replicas" ]))
                  | Some _ | None -> None)))

let run cfg =
  if cfg.requests < 1 then
    invalid_arg (Printf.sprintf "Loadgen: requests %d" cfg.requests);
  if cfg.workers < 1 then
    invalid_arg (Printf.sprintf "Loadgen: workers %d" cfg.workers);
  let remaining = Atomic.make cfg.requests in
  let root = Rng.create ~seed:cfg.seed () in
  let threads =
    Array.init cfg.workers (fun _ ->
        let rng = Rng.split root in
        let result = ref (fresh_tally ()) in
        let thread =
          Thread.create (fun () -> result := worker cfg ~remaining ~rng ()) ()
        in
        (thread, result))
  in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun (thread, _) -> Thread.join thread) threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = fresh_tally () in
  Array.iter
    (fun (_, result) ->
      let t = !result in
      total.sent <- total.sent + t.sent;
      total.ok <- total.ok + t.ok;
      total.cached <- total.cached + t.cached;
      total.shed <- total.shed + t.shed;
      total.srv_errors <- total.srv_errors + t.srv_errors;
      total.disconnects <- total.disconnects + t.disconnects;
      total.dropped <- total.dropped + t.dropped;
      total.latencies_ms <- List.rev_append t.latencies_ms total.latencies_ms)
    threads;
  let sorted = Array.of_list total.latencies_ms in
  Array.sort Float.compare sorted;
  let mean =
    if Array.length sorted = 0 then nan
    else Array.fold_left ( +. ) 0. sorted /. float_of_int (Array.length sorted)
  in
  let rate part = float_of_int part /. float_of_int (max 1 total.sent) in
  let latency =
    Json.Obj
      [
        ("p50_ms", Json.Num (percentile sorted 0.50));
        ("p95_ms", Json.Num (percentile sorted 0.95));
        ("p99_ms", Json.Num (percentile sorted 0.99));
        ("mean_ms", Json.Num mean);
        ("max_ms", Json.Num (percentile sorted 1.0));
      ]
  in
  let base =
    [
      ("experiment", Json.Str "serve");
      ("requests", Json.Num (float_of_int total.sent));
      ("workers", Json.Num (float_of_int cfg.workers));
      ("keys", Json.Num (float_of_int cfg.keys));
      ("skew", Json.Num cfg.skew);
      ("size", Json.Num (float_of_int cfg.size));
      ("order", Json.Num (float_of_int cfg.order));
      ("elapsed_s", Json.Num elapsed);
      ( "throughput_rps",
        Json.Num (float_of_int total.sent /. max 1e-9 elapsed) );
      ("ok", Json.Num (float_of_int total.ok));
      ("cached", Json.Num (float_of_int total.cached));
      ("shed", Json.Num (float_of_int total.shed));
      ("srv_errors", Json.Num (float_of_int total.srv_errors));
      ("disconnects", Json.Num (float_of_int total.disconnects));
      ("dropped", Json.Num (float_of_int total.dropped));
      ( "cache_hit_rate",
        Json.Num (float_of_int total.cached /. float_of_int (max 1 total.ok))
      );
      ("shed_rate", Json.Num (rate total.shed));
      ("latency_ms", latency);
    ]
  in
  let tail =
    match router_stats cfg with
    | Some stats -> [ ("router", stats) ]
    | None -> []
  in
  Json.Obj (base @ tail)
