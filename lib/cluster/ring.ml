(* Consistent-hash ring with virtual nodes.

   Each member contributes [vnodes] points on a 64-bit circle, placed by
   hashing "name#k"; a key is owned by the first point clockwise from
   the key's own hash. Placement is a pure function of the member names
   and [vnodes], so every router instance over the same membership
   agrees, and removing a member only remaps the keys that pointed at
   its vnodes (they spill to the next point clockwise — the successor
   member), leaving every other key where it was. *)

type t = {
  vnodes : int;
  members : string array;  (* sorted, distinct *)
  points : (int64 * int) array;  (* (position, member index), sorted *)
}

(* First 8 bytes of the MD5 of [s], as an unsigned 64-bit position. *)
let position_of s = String.get_int64_be (Digest.string s) 0

let compare_point (p1, m1) (p2, m2) =
  match Int64.unsigned_compare p1 p2 with
  | 0 -> Int.compare m1 m2  (* full-collision tiebreak: deterministic *)
  | c -> c

let create ?(vnodes = 64) members =
  if vnodes < 1 then
    invalid_arg (Printf.sprintf "Ring.create: vnodes %d" vnodes);
  if members = [] then invalid_arg "Ring.create: no members";
  let members = Array.of_list (List.sort_uniq String.compare members) in
  let points =
    Array.init
      (Array.length members * vnodes)
      (fun i ->
        let m = i / vnodes and k = i mod vnodes in
        (position_of (Printf.sprintf "%s#%d" members.(m) k), m))
  in
  Array.sort compare_point points;
  { vnodes; members; points }

let members t = Array.to_list t.members
let vnodes t = t.vnodes

(* Index of the first point at or clockwise-after [pos] (wrapping). *)
let successor_index t pos =
  let n = Array.length t.points in
  (* binary search: smallest i with points.(i).pos >= pos *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      let p, _ = t.points.(mid) in
      if Int64.unsigned_compare p pos < 0 then search (mid + 1) hi
      else search lo mid
    end
  in
  let i = search 0 n in
  if i = n then 0 else i

(* Every member, in ring order starting from [key]'s owner: the
   failover preference list. *)
let successors t key =
  let n = Array.length t.points in
  let wanted = Array.length t.members in
  let seen = Array.make wanted false in
  let start = successor_index t (position_of key) in
  let rec collect i found acc =
    if found = wanted then List.rev acc
    else begin
      let _, m = t.points.((start + i) mod n) in
      if seen.(m) then collect (i + 1) found acc
      else begin
        seen.(m) <- true;
        collect (i + 1) (found + 1) (t.members.(m) :: acc)
      end
    end
  in
  collect 0 0 []

let owner t key =
  let _, m = t.points.(successor_index t (position_of key)) in
  t.members.(m)

(* First member in preference order that is not [down]; [None] when the
   predicate rejects every member. *)
let route t ?(down = fun (_ : string) -> false) key =
  List.find_opt (fun name -> not (down name)) (successors t key)
