(* The sharding front-end: listens like `mrm2 serve`, speaks the same
   JSONL wire format, and forwards every request to the replica that
   owns its Batch.digest on the consistent-hash ring — so repeat jobs
   land on the replica whose LRU already holds the answer and the
   per-replica caches compose into one sharded distributed cache.

   Request path (per connection-handler thread):
     parse -> digest -> ring preference list -> skip down replicas ->
     shed check on the target -> forward (pooled connection) ->
     pass the replica's response line through.

   Failover: a forward that fails in transport, or answers the SRV004
   drain error, marks the replica down (passive detection), and the
   request is retried on the next successor — solves are deterministic
   and idempotent, so a retried request returns the bit-for-bit same
   answer. A prober thread probes every replica each interval; a downed
   replica is re-admitted after [readmit_after] consecutive healthy
   probes. Overload is shed per-replica with SRV002 (see {!Shed}). *)

module Json = Mrm_util.Json
module Metrics = Mrm_obs.Metrics
module Trace = Mrm_obs.Trace
module Protocol = Mrm_server.Protocol
module Server = Mrm_server.Server
module Batch = Mrm_batch.Batch

type config = {
  listen : Server.endpoint;
  backends : (string * Server.endpoint) list;
  vnodes : int;
  probe_interval : float;
  probe_timeout : float;
  readmit_after : int;
  max_inflight : int;
  max_attempts : int;
  io_timeout : float;
  default_eps : float;
}

let default_config ~listen ~backends =
  {
    listen;
    backends;
    vnodes = 64;
    probe_interval = 1.0;
    probe_timeout = 1.0;
    readmit_after = 2;
    max_inflight = 32;
    max_attempts = 3;
    io_timeout = 30.;
    default_eps = 1e-9;
  }

(* ------------------------------------------------------------------ *)
(* Metrics *)

let m_connections = Metrics.counter "cluster.connections"
let m_requests = Metrics.counter "cluster.requests"
let m_parse_errors = Metrics.counter "cluster.parse_errors"
let m_forwarded = Metrics.counter "cluster.forwarded"
let m_failovers = Metrics.counter "cluster.failovers"
let m_shed = Metrics.counter "cluster.shed"
let m_unavailable = Metrics.counter "cluster.unavailable"
let m_probes = Metrics.counter "cluster.probes"
let m_probe_failures = Metrics.counter "cluster.probe_failures"
let m_marked_down = Metrics.counter "cluster.marked_down"
let m_readmitted = Metrics.counter "cluster.readmitted"
let g_replicas_up = Metrics.gauge "cluster.replicas_up"
let g_inflight_peak = Metrics.gauge "cluster.inflight_peak"

(* ------------------------------------------------------------------ *)
(* Handle *)

type conn = { conn_id : int; fd : Unix.file_descr }

type handle = {
  cfg : config;
  listen_fd : Unix.file_descr;
  listen_addr : Unix.sockaddr;
  wake_r : Unix.file_descr;  (* self-pipe: drain wakes acceptor+prober *)
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  ring : Ring.t;
  replicas : Replica.t array;
  by_name : (string, Replica.t) Hashtbl.t;  (* immutable after start *)
  shed : Shed.t;
  registry : (int, conn) Hashtbl.t;  (* open connections, under reg_mutex *)
  reg_mutex : Mutex.t;
  handler_done : Condition.t;
  mutable active_handlers : int;  (* under reg_mutex *)
  mutable next_conn_id : int;  (* under reg_mutex *)
  mutable acceptor : Thread.t option;
  mutable prober : Thread.t option;
}

let listen_address h = h.listen_addr

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let up_count h =
  Array.fold_left
    (fun n r -> if Replica.healthy r then n + 1 else n)
    0 h.replicas

let note_replicas_up h =
  Metrics.set g_replicas_up (float_of_int (up_count h))

(* ------------------------------------------------------------------ *)
(* Request processing *)

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

(* A replica answering the drain error is as down as one that closed
   the connection. Error responses are small single-line objects, so
   the length bound keeps this check off the fat ok-responses. *)
let is_drain_response response =
  String.length response < 1024 && contains_sub ~sub:"\"SRV004\"" response

(* The router answers `{"cluster":"stats"}` itself: a snapshot of the
   cluster.* counters/gauges plus per-replica health — the loadgen and
   the smoke tests read failover/shed counts through the front door. *)
let is_stats_request json =
  match Option.bind (Json.member "cluster" json) Json.to_str with
  | Some "stats" -> true
  | Some _ | None -> false

let stats_response h ~id =
  let snap = Metrics.snapshot () in
  let starts_with ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let counters =
    List.filter_map
      (fun (name, v) ->
        if starts_with ~prefix:"cluster." name then
          Some (name, Json.Num (float_of_int v))
        else None)
      snap.Metrics.counters
  in
  let gauges =
    List.filter_map
      (fun (name, v) ->
        if starts_with ~prefix:"cluster." name then Some (name, Json.Num v)
        else None)
      snap.Metrics.gauges
  in
  let replicas =
    Array.to_list
      (Array.map
         (fun r ->
           Json.Obj
             [
               ("name", Json.Str (Replica.name r));
               ("healthy", Json.Bool (Replica.healthy r));
               ("inflight", Json.Num
                  (float_of_int (Shed.inflight h.shed (Replica.name r))));
             ])
         h.replicas)
  in
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str id);
         ("status", Json.Str "ok");
         ("cluster", Json.Obj (counters @ gauges));
         ("replicas", Json.List replicas);
       ])

(* Make sure the forwarded line carries an explicit id: the backend
   numbers anonymous requests by its own connection line counter, which
   need not match ours. *)
let line_with_id ~json ~id line =
  if Option.is_some (Json.member "id" json) then line
  else
    match json with
    | Json.Obj fields -> Json.to_string (Json.Obj (("id", Json.Str id) :: fields))
    | _ -> line

let forward h ~json ~request line =
  let id = request.Protocol.job.Batch.id in
  let digest = request.Protocol.digest in
  Trace.with_span "cluster.request"
    ~attrs:[ ("id", Trace.Str id); ("digest", Trace.Str digest) ]
  @@ fun () ->
  let line = line_with_id ~json ~id line in
  let finish outcome response =
    Trace.add_attr "outcome" (Trace.Str outcome);
    response
  in
  let unavailable () =
    Metrics.incr m_unavailable;
    finish "unavailable"
      (Protocol.error_response ~id ~code:"SRV006"
         (Printf.sprintf "no healthy replica for this request (%d configured)"
            (Array.length h.replicas)))
  in
  let rec attempt forwards prefs =
    match prefs with
    | [] -> unavailable ()
    | _ when forwards >= h.cfg.max_attempts -> unavailable ()
    | name :: rest ->
        let replica = Hashtbl.find h.by_name name in
        if not (Replica.healthy replica) then attempt forwards rest
        else if not (Shed.try_admit h.shed name) then begin
          (* Overload on the owning replica sheds; it must NOT spill to
             successors — that breaks cache placement and cascades. *)
          Metrics.incr m_shed;
          finish "shed"
            (Protocol.error_response ~id ~code:"SRV002"
               (Printf.sprintf
                  "replica %s at its in-flight cap (%d) — retry later" name
                  (Shed.limit h.shed)))
        end
        else begin
          let result =
            Fun.protect
              ~finally:(fun () ->
                Shed.release h.shed name;
                Metrics.observe_max g_inflight_peak
                  (float_of_int (Shed.peak h.shed)))
              (fun () -> Replica.call replica line)
          in
          match result with
          | Ok response when not (is_drain_response response) ->
              Metrics.incr m_forwarded;
              Trace.add_attr "replica" (Trace.Str name);
              Trace.add_attr "forwards" (Trace.Int (forwards + 1));
              finish "forwarded" response
          | Ok _ | Error _ ->
              (* Transport failure or SRV004: passive mark-down, spill
                 to the next successor. The solve is deterministic, so
                 the retried request returns the bit-for-bit same
                 answer. *)
              Metrics.incr m_failovers;
              if Replica.mark_down replica then begin
                Metrics.incr m_marked_down;
                note_replicas_up h
              end;
              attempt (forwards + 1) rest
        end
  in
  attempt 0 (Ring.successors h.ring digest)

let process h ~lineno line =
  Metrics.incr m_requests;
  let default_id = Printf.sprintf "req-%d" lineno in
  match Json.parse line with
  | Error msg ->
      Metrics.incr m_parse_errors;
      Protocol.error_response ~id:default_id ~code:"SRV001" msg
  | Ok json ->
      if is_stats_request json then begin
        let id =
          Option.value
            (Option.bind (Json.member "id" json) Json.to_str)
            ~default:default_id
        in
        stats_response h ~id
      end
      else begin
        match
          Protocol.parse_request ~default_eps:h.cfg.default_eps
            ~now:(Unix.gettimeofday ()) ~default_id line
        with
        | Error msg ->
            Metrics.incr m_parse_errors;
            Protocol.error_response ~id:default_id ~code:"SRV001" msg
        | Ok request -> forward h ~json ~request line
      end

(* ------------------------------------------------------------------ *)
(* Connections (same shape as Server: acceptor + handler threads) *)

let unregister h conn =
  (with_lock h.reg_mutex @@ fun () ->
   Hashtbl.remove h.registry conn.conn_id;
   h.active_handlers <- h.active_handlers - 1;
   Condition.broadcast h.handler_done);
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let handle_connection h conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let oc = Unix.out_channel_of_descr conn.fd in
  let lineno = ref 0 in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        incr lineno;
        if String.trim line = "" then loop ()
        else begin
          let response = process h ~lineno:!lineno (String.trim line) in
          match
            output_string oc response;
            output_char oc '\n';
            flush oc
          with
          | () -> if Atomic.get h.stop then () else loop ()
          | exception Sys_error _ -> ()
        end
  in
  Fun.protect ~finally:(fun () -> unregister h conn) loop

let spawn_connection h fd =
  Metrics.incr m_connections;
  let conn =
    with_lock h.reg_mutex @@ fun () ->
    let conn = { conn_id = h.next_conn_id; fd } in
    h.next_conn_id <- h.next_conn_id + 1;
    h.active_handlers <- h.active_handlers + 1;
    Hashtbl.replace h.registry conn.conn_id conn;
    conn
  in
  if Atomic.get h.stop then begin
    try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
    with Unix.Unix_error _ -> ()
  end;
  ignore (Thread.create (fun () -> handle_connection h conn) ())

let accept_loop h =
  let rec loop () =
    if Atomic.get h.stop then ()
    else begin
      match Unix.select [ h.listen_fd; h.wake_r ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
          if Atomic.get h.stop then ()
          else if List.memq h.listen_fd ready then begin
            (match Unix.accept h.listen_fd with
            | fd, _ -> spawn_connection h fd
            | exception Unix.Unix_error _ -> ());
            loop ()
          end
          else loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Prober *)

let probe_round h =
  Array.iter
    (fun replica ->
      Metrics.incr m_probes;
      match
        Replica.probe replica ~timeout:h.cfg.probe_timeout
          ~readmit_after:h.cfg.readmit_after
      with
      | `Still_up -> ()
      | `Went_down ->
          Metrics.incr m_probe_failures;
          Metrics.incr m_marked_down
      | `Still_down -> ()
      | `Readmitted -> Metrics.incr m_readmitted)
    h.replicas;
  note_replicas_up h

let prober_loop h =
  let rec loop () =
    if Atomic.get h.stop then ()
    else begin
      (* Sleep one interval, or until drain writes the wake byte (the
         byte is never consumed, so every later select returns at
         once — by then the stop flag is set). *)
      (match Unix.select [ h.wake_r ] [] [] h.cfg.probe_interval with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | _ -> ());
      if Atomic.get h.stop then ()
      else begin
        probe_round h;
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let validate_config cfg =
  if cfg.backends = [] then invalid_arg "Router: no backends";
  let names = List.map fst cfg.backends in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Router: duplicate backend names";
  if cfg.max_attempts < 1 then
    invalid_arg (Printf.sprintf "Router: max_attempts %d" cfg.max_attempts);
  if cfg.readmit_after < 1 then
    invalid_arg (Printf.sprintf "Router: readmit_after %d" cfg.readmit_after)

let start cfg =
  validate_config cfg;
  let listen_fd = Server.bind_endpoint cfg.listen in
  let wake_r, wake_w = Unix.pipe () in
  let replicas =
    Array.of_list
      (List.map
         (fun (name, endpoint) ->
           Replica.create ~io_timeout:cfg.io_timeout ~name endpoint)
         cfg.backends)
  in
  let by_name = Hashtbl.create (Array.length replicas) in
  Array.iter (fun r -> Hashtbl.replace by_name (Replica.name r) r) replicas;
  let h =
    {
      cfg;
      listen_fd;
      listen_addr = Unix.getsockname listen_fd;
      wake_r;
      wake_w;
      stop = Atomic.make false;
      ring = Ring.create ~vnodes:cfg.vnodes (List.map fst cfg.backends);
      replicas;
      by_name;
      shed = Shed.create ~limit:cfg.max_inflight;
      registry = Hashtbl.create 16;
      reg_mutex = Mutex.create ();
      handler_done = Condition.create ();
      active_handlers = 0;
      next_conn_id = 0;
      acceptor = None;
      prober = None;
    }
  in
  note_replicas_up h;
  h.acceptor <- Some (Thread.create (fun () -> accept_loop h) ());
  h.prober <- Some (Thread.create (fun () -> prober_loop h) ());
  h

let drain h =
  if not (Atomic.exchange h.stop true) then begin
    (try ignore (Unix.write h.wake_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    let conns =
      with_lock h.reg_mutex @@ fun () ->
      Hashtbl.fold (fun _ conn acc -> conn :: acc) h.registry []
    in
    List.iter
      (fun conn ->
        try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      conns
  end

let wait h =
  (match h.acceptor with Some t -> Thread.join t | None -> ());
  (match h.prober with Some t -> Thread.join t | None -> ());
  (with_lock h.reg_mutex @@ fun () ->
   while h.active_handlers > 0 do
     Condition.wait h.handler_done h.reg_mutex
   done);
  Array.iter Replica.shutdown h.replicas;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ h.listen_fd; h.wake_r; h.wake_w ];
  match h.cfg.listen with
  | `Unix path ->
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | `Tcp _ -> ()

let run ?(on_ready = ignore) cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let signals = [ Sys.sigterm; Sys.sigint ] in
  ignore (Thread.sigmask Unix.SIG_BLOCK signals);
  let h = start cfg in
  on_ready h.listen_addr;
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        let rec watch () =
          (match Thread.wait_signal signals with
          | _ -> drain h
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          watch ()
        in
        watch ())
      ()
  in
  wait h;
  0
