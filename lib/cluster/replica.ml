(* One backend `mrm2 serve` process as seen by the router: a pool of
   persistent connections plus a health state machine.

   Health transitions:
   - [Up -> Down]: a forward fails (passive detection) or a periodic
     probe fails / answers the SRV004 drain error;
   - [Down -> Up]: [readmit_after] consecutive healthy probes — a
     single lucky probe against a flapping backend is not enough.

   Locking: the mutex guards the idle-connection list and the health
   fields only. All socket I/O (connect, exchange, close) happens
   outside the lock, so a stuck backend never wedges the router's other
   handler threads. *)

type state = Up | Down

type t = {
  name : string;
  endpoint : Mrm_server.Server.endpoint;
  io_timeout : float;
  max_idle : int;
  mutex : Mutex.t;
  mutable idle : Wire.conn list;
  mutable state : state;
  mutable consecutive_ok : int;  (* healthy probes since going down *)
}

let create ?(io_timeout = 30.) ?(max_idle = 8) ~name endpoint =
  {
    name;
    endpoint;
    io_timeout;
    max_idle;
    mutex = Mutex.create ();
    idle = [];
    state = Up;
    consecutive_ok = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let name t = t.name
let endpoint t = t.endpoint

let healthy t =
  with_lock t @@ fun () -> match t.state with Up -> true | Down -> false

(* Drop every pooled connection; they are closed outside the lock. *)
let flush_idle t =
  let conns =
    with_lock t @@ fun () ->
    let conns = t.idle in
    t.idle <- [];
    conns
  in
  List.iter Wire.close conns

(* [true] when this call transitioned the replica Up -> Down. *)
let mark_down t =
  let transitioned =
    with_lock t @@ fun () ->
    match t.state with
    | Down -> false
    | Up ->
        t.state <- Down;
        t.consecutive_ok <- 0;
        true
  in
  if transitioned then flush_idle t;
  transitioned

(* Probe bookkeeping; the caller reports one probe outcome. *)
let record_probe t ~ok ~readmit_after =
  with_lock t @@ fun () ->
  match (t.state, ok) with
  | Up, true -> `Still_up
  | Up, false ->
      t.state <- Down;
      t.consecutive_ok <- 0;
      `Went_down
  | Down, false ->
      t.consecutive_ok <- 0;
      `Still_down
  | Down, true ->
      t.consecutive_ok <- t.consecutive_ok + 1;
      if t.consecutive_ok >= readmit_after then begin
        t.state <- Up;
        t.consecutive_ok <- 0;
        `Readmitted
      end
      else `Still_down

let checkout t =
  let pooled =
    with_lock t @@ fun () ->
    match t.idle with
    | conn :: rest ->
        t.idle <- rest;
        Some conn
    | [] -> None
  in
  match pooled with
  | Some conn -> conn
  | None -> Wire.connect ~timeout:t.io_timeout t.endpoint

let checkin t conn =
  let keep =
    with_lock t @@ fun () ->
    match t.state with
    | Up when List.length t.idle < t.max_idle ->
        t.idle <- conn :: t.idle;
        true
    | Up | Down -> false
  in
  if not keep then Wire.close conn

(* One request/response forward. A transport failure closes the
   connection and surfaces as [Error]; the caller decides whether that
   marks the replica down. *)
let call t line =
  match checkout t with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Unix.error_message err)
  | conn -> begin
      match Wire.exchange conn line with
      | Ok response ->
          checkin t conn;
          Ok response
      | Error reason ->
          Wire.close conn;
          Error reason
    end

(* The health probe is a deliberately malformed request: a live backend
   answers it SRV001 straight from the connection handler (no queue, no
   solver), a draining one answers SRV004 or closes, a dead one refuses
   the connect or times out. Probes use a dedicated short-lived
   connection so a poisoned pooled descriptor cannot fake a failure. *)
let probe_line = {|{"mrm2":"probe"}|}

let probe_once t ~timeout =
  match Wire.connect ~timeout t.endpoint with
  | exception Unix.Unix_error _ -> false
  | conn ->
      Fun.protect
        ~finally:(fun () -> Wire.close conn)
        (fun () ->
          match Wire.exchange conn probe_line with
          | Error _ -> false
          | Ok response -> begin
              match Mrm_util.Json.parse response with
              | Error _ -> false
              | Ok json -> (
                  match
                    Option.bind
                      (Mrm_util.Json.member "code" json)
                      Mrm_util.Json.to_str
                  with
                  | Some "SRV004" -> false  (* draining: stop routing *)
                  | Some _ | None -> true)
            end)

let probe t ~timeout ~readmit_after =
  record_probe t ~ok:(probe_once t ~timeout) ~readmit_after

let shutdown t = flush_idle t
