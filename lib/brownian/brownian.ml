type params = { drift : float; variance : float }

let validate { drift; variance } =
  if not (Float.is_finite drift) then
    invalid_arg "Brownian.validate: drift must be finite";
  if not (Float.is_finite variance) || variance < 0. then
    invalid_arg "Brownian.validate: variance must be finite and >= 0"

let density p ~t y =
  validate p;
  if t <= 0. then invalid_arg "Brownian.density: requires t > 0";
  if p.variance <= 0. then
    invalid_arg "Brownian.density: degenerate (variance = 0); use cdf";
  Mrm_util.Special.normal_pdf ~mu:(p.drift *. t)
    ~sigma:(sqrt (p.variance *. t))
    y

let cdf p ~t y =
  validate p;
  if t < 0. then invalid_arg "Brownian.cdf: requires t >= 0";
  let mu = p.drift *. t in
  let var = p.variance *. t in
  if var = 0. then (if y >= mu then 1. else 0.)
  else Mrm_util.Special.normal_cdf ~mu ~sigma:(sqrt var) y

let laplace_transform p ~t v =
  validate p;
  exp ((-.v *. p.drift *. t) +. (v *. v /. 2. *. p.variance *. t))

let raw_moment p ~t n =
  validate p;
  if n < 0 then invalid_arg "Brownian.raw_moment: requires n >= 0";
  let mu = p.drift *. t and var = p.variance *. t in
  (* m_0 = 1, m_1 = mu, m_n = mu m_{n-1} + (n-1) var m_{n-2}. *)
  let rec go k m_prev m_prev2 =
    if k > n then m_prev
    else go (k + 1) ((mu *. m_prev) +. (float_of_int (k - 1) *. var *. m_prev2))
        m_prev
  in
  if n = 0 then 1. else go 2 mu 1.

let sample_increment p rng ~dt =
  validate p;
  if dt < 0. then invalid_arg "Brownian.sample_increment: requires dt >= 0";
  Mrm_util.Rng.gaussian rng ~mu:(p.drift *. dt)
    ~sigma:(sqrt (p.variance *. dt))

let sample_path p rng ~t_max ~steps =
  validate p;
  if steps <= 0 then invalid_arg "Brownian.sample_path: requires steps > 0";
  if t_max <= 0. then invalid_arg "Brownian.sample_path: requires t_max > 0";
  let dt = t_max /. float_of_int steps in
  let rec go k x acc =
    if k > steps then List.rev acc
    else begin
      let x' = x +. sample_increment p rng ~dt in
      go (k + 1) x' ((float_of_int k *. dt, x') :: acc)
    end
  in
  go 1 0. [ (0., 0.) ]
