(** Brownian motion with drift — the per-state reward accumulation process
    of a second-order MRM (Definition 1 of the paper). *)

type params = { drift : float; variance : float }
(** Drift [r] and variance [sigma^2 >= 0]. [variance = 0] degenerates to
    the deterministic accumulation of a first-order MRM. *)

val validate : params -> unit
(** @raise Invalid_argument if [variance < 0] or either field is not
    finite. *)

val density : params -> t:float -> float -> float
(** [density p ~t y] is the density of [X(t)] given [X(0) = 0], i.e. the
    N(r t, sigma^2 t) density (eq. under Definition 1). Requires [t > 0]
    and [variance > 0]. *)

val cdf : params -> t:float -> float -> float
(** Distribution function of [X(t)]; handles [variance = 0] as a step. *)

val laplace_transform : params -> t:float -> float -> float
(** Double-sided Laplace transform [f*(t,v) = exp (-v r t + v^2/2 s^2 t)]. *)

val raw_moment : params -> t:float -> int -> float
(** [raw_moment p ~t n] is [E[X(t)^n]] in closed form, via the normal
    moment recursion [m_n = mu m_{n-1} + (n-1) v m_{n-2}] with [mu = r t],
    [v = sigma^2 t]. *)

val sample_increment : params -> Mrm_util.Rng.t -> dt:float -> float
(** Reward increment over an interval of length [dt >= 0]:
    N(r dt, sigma^2 dt). *)

val sample_path :
  params -> Mrm_util.Rng.t -> t_max:float -> steps:int -> (float * float) list
(** Discretized trajectory [(t_k, X(t_k))], [X(0) = 0], on a uniform grid
    of [steps] intervals. *)
