(* Forward abstract interpreter over parsetrees: SRC020-SRC024.

   A big-step abstract evaluator with a product domain (Numdom):
   integer intervals with symbolic linear bounds, and float intervals
   with nonzero / may-NaN / provenance bits. Top-level functions are
   analyzed once each with havoc parameters; calls resolve through the
   Callgraph naming conventions and inline to a small depth, which is
   how one-level summaries (the write ranges of Sparse.mv_into_range,
   say) flow into a kernel-body proof. Loop bodies run twice, the
   second pass widening. Range-kernel call sites re-run the body
   closure under fresh symbolic lo/hi (or party index) and check every
   shared-array write against the party's range.

   Known unsoundness is documented in DESIGN 9.2: aliasing through
   refs/records, first-class functions trusted at construction,
   fuel exhaustion -> Unknown (no finding). *)

open Parsetree
open Asttypes
module N = Numdom
module SMap = Map.Make (String)

type finding = {
  af_code : string;
  af_line : int;
  af_col : int;
  af_file : string;
  af_message : string;
  af_context : (string * string) list;
}

type kernel_status = Proven | Flagged | Unknown

type kernel_site = {
  ks_file : string;
  ks_line : int;
  ks_runner : string;
  ks_status : kernel_status;
  ks_writes : int;
}

type stats = {
  st_sites : kernel_site list;
  st_functions : int;
  st_fuel_exhausted : int;
}

let default_fuel = 100_000

exception Fuel

let max_inline_depth = 5

(* ---------- values ---------- *)

type value =
  | Vtop
  | Vint of N.iv
  | Vflt of N.fv
  | Vbool of bool option
  | Vtup of value list
  | Vcon of string * value option
  | Varr of arr
  | Vref of cell
  | Vfun of closure

and arr = { mutable a_elem : value; a_len : N.iv; a_local : bool }
and cell = { mutable c_val : value; c_local : bool }

and closure = {
  f_name : string;
  f_body : expression;  (** the whole [fun p1 ... -> body] chain *)
  f_env : value SMap.t;
  f_file : string;
  f_module : string;
  f_hot : bool;
}

(* ---------- global + per-evaluation state ---------- *)

type glob = {
  index : (string, value) Hashtbl.t;  (** "Module.name" -> value *)
  syms : (int, string) Hashtbl.t;
  mutable sym_count : int;
  seen : (string * string * int * int, unit) Hashtbl.t;
  mutable findings : finding list;  (** reversed *)
  mutable sites : kernel_site list;  (** reversed *)
  site_seen : (string * int * int, unit) Hashtbl.t;
  walked : (string * int * int, unit) Hashtbl.t;
  fuel_budget : int;
  mutable functions : int;
  mutable exhausted : int;
}

type kctx = {
  ob_lo : N.bound;
  ob_hi : N.bound;  (** inclusive upper write bound *)
  k_sym : int option;  (** party symbol, for chunked-disjointness *)
  mutable k_writes : int;
  mutable k_flagged : int;
  mutable k_escaped : bool;
  mutable k_pending : (string * Location.t * N.iv) list;
      (** party writes not at the party index: re-judged at site end
          by adjacent disjointness of the joined write interval *)
  mutable k_all : N.iv option;  (** join of every shared write index *)
}

type ctx = {
  g : glob;
  file : string;
  modname : string;
  hot : bool;
  fuel : int ref;
  depth : int;
  stack : string list;
  kernel : kctx option;
  assume : N.lin list;
  widen : bool;
}

let fresh_sym g name =
  let id = g.sym_count in
  g.sym_count <- id + 1;
  Hashtbl.replace g.syms id name;
  id

let sym_name g id =
  match Hashtbl.find_opt g.syms id with Some s -> s | None -> "s" ^ string_of_int id

let step ctx =
  decr ctx.fuel;
  if !(ctx.fuel) < 0 then raise Fuel

let emit_at g ~code ~file ~loc ~msg ~context =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let col =
    loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol
  in
  let key = (code, file, line, col) in
  if not (Hashtbl.mem g.seen key) then begin
    Hashtbl.replace g.seen key ();
    g.findings <-
      {
        af_code = code;
        af_line = line;
        af_col = col;
        af_file = file;
        af_message = msg;
        af_context = context;
      }
      :: g.findings
  end

let emit ctx ~code ~loc ~msg ~context =
  emit_at ctx.g ~code ~file:ctx.file ~loc ~msg ~context

(* ---------- value helpers ---------- *)

let iv_of = function Vint iv -> iv | _ -> N.iv_top
let fv_of = function Vflt fv -> fv | Vint iv -> N.fv_of_iv iv | _ -> N.fv_top

let rec join a b =
  match (a, b) with
  | Vint x, Vint y -> Vint (N.iv_join x y)
  | Vflt x, Vflt y -> Vflt (N.fv_join x y)
  | (Vint _ | Vflt _), (Vint _ | Vflt _) -> Vflt (N.fv_join (fv_of a) (fv_of b))
  | Vbool x, Vbool y -> Vbool (if x = y then x else None)
  | Vtup xs, Vtup ys when List.length xs = List.length ys ->
      Vtup (List.map2 join xs ys)
  | Vcon (c1, Some x), Vcon (c2, Some y) when c1 = c2 -> Vcon (c1, Some (join x y))
  | Vcon (c1, None), Vcon (c2, None) when c1 = c2 -> Vcon (c1, None)
  | Varr x, Varr y when x == y -> a
  | Vref x, Vref y when x == y -> a
  | Vfun _, Vfun _ -> a
  | _ -> Vtop

let widen_value ~old v =
  match (old, v) with
  | Vint x, Vint y -> Vint (N.iv_widen ~old:x y)
  | Vflt x, Vflt y -> Vflt (N.fv_widen ~old:x y)
  | _ -> join old v

(* Weak update honoring the widening pass. *)
let merge_cell ctx old v = if ctx.widen then widen_value ~old v else join old v

(* Does this value definitely contain a shared mutable object? Vtop
   does not count (it would mark nearly every call escaping); Vfun
   does not count either — closures passed to unknown callees are
   walked instead. *)
let rec contains_shared v =
  match v with
  | Varr a -> not a.a_local
  | Vref c -> not c.c_local
  | Vtup vs -> List.exists contains_shared vs
  | Vcon (_, Some x) -> contains_shared x
  | _ -> false

let rec collect_funs v =
  match v with
  | Vfun cl -> [ cl ]
  | Vtup vs -> List.concat_map collect_funs vs
  | Vcon (_, Some x) -> collect_funs x
  | _ -> []

(* ---------- syntactic helpers ---------- *)

let ident_name (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten txt))
  | _ -> None

let pat_var (p : pattern) =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | Ppat_alias (p, { txt; _ }) -> ( match go p with Some v -> Some v | None -> Some txt)
    | _ -> None
  in
  go p

let rec is_fun_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) | Pexp_open (_, e) -> is_fun_expr e
  | _ -> false

(* Does evaluating this expression definitely diverge (raise/exit)? *)
let diverges (e : expression) =
  match (Cfg.normalize_apply e).pexp_desc with
  | Pexp_apply (f, _) -> (
      match ident_name f with
      | Some
          ( "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit"
          | "Stdlib.raise" | "Stdlib.failwith" | "Stdlib.invalid_arg" ) ->
          true
      | _ -> false)
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
    ->
      true
  | _ -> false

let prob_name name =
  let lower = String.lowercase_ascii name in
  let has s =
    let ls = String.length s and ln = String.length lower in
    let rec at i = i + ls <= ln && (String.sub lower i ls = s || at (i + 1)) in
    ls <= ln && at 0
  in
  has "prob" || has "weight" || lower = "pi" || has "pi0" || has "mix"

(* Pure higher-order stdlib containers: closures passed to these are
   applied to elements, never stored where a later party could see
   them — exempt from the escape rule. *)
let pure_hof_qualifier = function
  | "Array" | "List" | "Seq" | "Option" | "Result" | "Hashtbl" | "Float" | "Fun"
  | "Printf" | "Format" ->
      true
  | _ -> false

let const_ident = function
  | "infinity" | "Float.infinity" -> Some (Vflt (N.fv_const infinity))
  | "neg_infinity" | "Float.neg_infinity" -> Some (Vflt (N.fv_const neg_infinity))
  | "nan" | "Float.nan" -> Some (Vflt N.fv_nan)
  | "max_float" | "Float.max_float" -> Some (Vflt (N.fv_const max_float))
  | "min_float" | "Float.min_float" -> Some (Vflt (N.fv_const min_float))
  | "epsilon_float" | "Float.epsilon" -> Some (Vflt (N.fv_const epsilon_float))
  | "Float.pi" -> Some (Vflt (N.fv_const (4.0 *. atan 1.0)))
  | "max_int" -> Some (Vint (N.iv_const max_int))
  | "min_int" -> Some (Vint (N.iv_const min_int))
  | _ -> None

(* ---------- runner recognition ---------- *)

type runner_kind = Range_runner | Party_runner

(* Which closure-argument convention a recognized runner uses:
   Range_runner bodies take a [lo, hi) range (possibly labelled),
   Party_runner bodies take one party/index int. *)
let runner_kind ctx name =
  let q, lc =
    match String.rindex_opt name '.' with
    | Some i ->
        (* the last qualifier component only, so the fully qualified
           [Mrm_engine.Kernel.for_ranges] is recognized too *)
        ( Callgraph.last_components 1 (String.sub name 0 i),
          String.sub name (i + 1) (String.length name - i - 1) )
    | None -> ("", name)
  in
  let in_module m = q = m || (q = "" && ctx.modname = m) in
  match lc with
  | "for_ranges" when q = "Kernel" || q = "" -> Some ("Kernel.for_ranges", Range_runner)
  | "sweep" when q = "Kernel" || q = "" -> Some ("Kernel.sweep", Range_runner)
  | "reduce" when in_module "Kernel" -> Some ("Kernel.reduce", Range_runner)
  | "run" when in_module "Pool" -> Some ("Pool.run", Party_runner)
  | "run_pinned" when in_module "Pool" -> Some ("Pool.run_pinned", Party_runner)
  | "parallel_for" when in_module "Pool" -> Some ("Pool.parallel_for", Party_runner)
  | _ -> None

let split_name name =
  let n2 = Callgraph.last_components 2 name in
  match String.index_opt n2 '.' with
  | Some i ->
      (String.sub n2 0 i, String.sub n2 (i + 1) (String.length n2 - i - 1))
  | None -> ("", n2)

let lin_coeff sym l = try List.assoc sym l.N.terms with Not_found -> 0

let iv_point (iv : N.iv) =
  match (iv.N.ilo, iv.N.ihi) with
  | N.Lin a, N.Lin b when N.lin_equal a b -> N.lin_is_const a
  | _ -> None

(* [iv] with the party symbol substituted [k := k + 1] on the lower
   bound, for the adjacent-disjointness check of chunked party writes:
   intervals [lo(k), hi(k)] linear in [k] are pairwise disjoint when
   [lo(k+1) >= hi(k) + 1]. *)
let party_disjoint ~assume ksym (iv : N.iv) =
  match (iv.N.ilo, iv.N.ihi) with
  | N.Lin lo, N.Lin hi ->
      let shifted = N.lin_add_const (lin_coeff ksym lo) lo in
      N.lin_nonneg ~assume (N.lin_add_const (-1) (N.lin_sub shifted hi))
  | _ -> false

let cmp_ops = [ "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!=" ]

let bare_name name =
  let q, lc = split_name name in
  if q = "" || q = "Stdlib" then Some lc else None

(* ------------------------------------------------------------------ *)
(* The evaluator *)

let rec eval ctx env (e : expression) : value =
  step ctx;
  let e = Cfg.normalize_apply e in
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> (
      match int_of_string_opt s with
      | Some i -> Vint (N.iv_const i)
      | None -> Vint N.iv_top)
  | Pexp_constant (Pconst_float (s, _)) -> (
      match float_of_string_opt s with
      | Some f when Float.is_nan f -> Vflt N.fv_nan
      | Some f -> Vflt (N.fv_const f)
      | None -> Vflt N.fv_top)
  | Pexp_constant _ -> Vtop
  | Pexp_ident { txt; _ } -> (
      let name = String.concat "." (Longident.flatten txt) in
      match SMap.find_opt name env with
      | Some v -> v
      | None -> (
          match const_ident name with
          | Some v -> v
          | None -> (
              match
                Callgraph.resolve_name
                  (Hashtbl.find_opt ctx.g.index)
                  ~current_module:ctx.modname name
              with
              | Some v -> v
              | None -> Vtop)))
  | Pexp_let (_, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc vb ->
            if is_fun_expr vb.pvb_expr then begin
              let name =
                match pat_var vb.pvb_pat with
                | Some n -> n
                | None -> anon_name ctx.file vb.pvb_expr.pexp_loc
              in
              let cl =
                {
                  f_name = name;
                  f_body = vb.pvb_expr;
                  f_env = env;
                  f_file = ctx.file;
                  f_module = ctx.modname;
                  f_hot = ctx.hot;
                }
              in
              if ctx.depth = 0 && ctx.kernel = None then
                walk_once ctx vb.pvb_expr.pexp_loc cl;
              match pat_var vb.pvb_pat with
              | Some n -> SMap.add n (Vfun cl) acc
              | None -> acc
            end
            else
              let v = eval ctx env vb.pvb_expr in
              bind_pat ctx acc vb.pvb_pat v)
          env vbs
      in
      eval ctx env' body
  | Pexp_fun _ | Pexp_function _ ->
      Vfun
        {
          f_name = anon_name ctx.file e.pexp_loc;
          f_body = e;
          f_env = env;
          f_file = ctx.file;
          f_module = ctx.modname;
          f_hot = ctx.hot;
        }
  | Pexp_apply (f, args) -> eval_apply ctx env e.pexp_loc f args
  | Pexp_sequence (e1, e2) ->
      ignore (eval ctx env e1);
      let env' = seq_refine ctx env e1 in
      eval ctx env' e2
  | Pexp_ifthenelse (cond, then_, else_) -> (
      let cv = eval ctx env cond in
      let eval_then () = eval ctx (refine ctx env cond true) then_ in
      let eval_else () =
        match else_ with
        | Some els -> eval ctx (refine ctx env cond false) els
        | None -> Vcon ("()", None)
      in
      match cv with
      | Vbool (Some true) -> eval_then ()
      | Vbool (Some false) -> eval_else ()
      | _ ->
          let tv = eval_then () in
          let ev = eval_else () in
          if diverges then_ then ev
          else if
            match else_ with Some els -> diverges els | None -> false
          then tv
          else join tv ev)
  | Pexp_match (scrut, cases) ->
      let sv = eval ctx env scrut in
      eval_cases ctx env sv cases
  | Pexp_try (body, handlers) ->
      let bv = try eval ctx env body with Fuel -> raise Fuel in
      let hv = eval_cases ctx env Vtop handlers in
      join bv hv
  | Pexp_tuple es -> Vtup (List.map (eval ctx env) es)
  | Pexp_construct ({ txt; _ }, arg) -> (
      let cname =
        match List.rev (Longident.flatten txt) with c :: _ -> c | [] -> "?"
      in
      match (cname, arg) with
      | "true", _ -> Vbool (Some true)
      | "false", _ -> Vbool (Some false)
      | "()", _ -> Vcon ("()", None)
      | _, Some a -> Vcon (cname, Some (eval ctx env a))
      | _, None -> Vcon (cname, None))
  | Pexp_variant (_, arg) ->
      Option.iter (fun a -> ignore (eval ctx env a)) arg;
      Vtop
  | Pexp_record (fields, base) ->
      Option.iter (fun b -> ignore (eval ctx env b)) base;
      List.iter (fun (_, fe) -> ignore (eval ctx env fe)) fields;
      Vtop
  | Pexp_field (r, _) ->
      ignore (eval ctx env r);
      Vtop
  | Pexp_setfield (r, _, v) ->
      ignore (eval ctx env r);
      ignore (eval ctx env v);
      (match ctx.kernel with
      | Some k -> k.k_escaped <- true
      | None -> ());
      Vcon ("()", None)
  | Pexp_array es ->
      let elems = List.map (eval ctx env) es in
      let elem = List.fold_left join (match elems with v :: _ -> v | [] -> Vtop) elems in
      Varr
        {
          a_elem = elem;
          a_len = N.iv_const (List.length es);
          a_local = ctx.kernel <> None;
        }
  | Pexp_while (cond, body) ->
      let run widen =
        let ctx' = { ctx with widen = ctx.widen || widen } in
        ignore (eval ctx' env cond);
        ignore (eval ctx' (refine ctx' env cond true) body)
      in
      run false;
      run true;
      Vcon ("()", None)
  | Pexp_for (pat, e1, e2, dir, body) ->
      let v1 = iv_of (eval ctx env e1) in
      let v2 = iv_of (eval ctx env e2) in
      let iv =
        match dir with
        | Upto ->
            { N.ilo = v1.N.ilo; ihi = v2.N.ihi; iknown = v1.N.iknown && v2.N.iknown }
        | Downto ->
            { N.ilo = v2.N.ilo; ihi = v1.N.ihi; iknown = v1.N.iknown && v2.N.iknown }
      in
      let run widen =
        let ctx' = { ctx with widen = ctx.widen || widen } in
        let env' = bind_pat ctx' env pat (Vint iv) in
        ignore (eval ctx' env' body)
      in
      run false;
      run true;
      Vcon ("()", None)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e)
  | Pexp_lazy e | Pexp_open (_, e) | Pexp_letexception (_, e) ->
      eval ctx env e
  | Pexp_letmodule (_, _, e) -> eval ctx env e
  | Pexp_assert cond -> (
      match cond.pexp_desc with
      | Pexp_construct ({ txt = Lident "false"; _ }, None) -> Vtop
      | _ ->
          ignore (eval ctx env cond);
          Vcon ("()", None))
  | Pexp_poly (e, _) -> eval ctx env e
  | _ -> Vtop

and anon_name file loc =
  Printf.sprintf "<fun:%s:%d>" file loc.Location.loc_start.Lexing.pos_lnum

(* Refinement carried past a statement: [assert c; ...] and
   [if c then raise ...; ...] narrow the rest of the sequence. *)
and seq_refine ctx env (e1 : expression) =
  match e1.pexp_desc with
  | Pexp_assert cond -> refine ctx env cond true
  | Pexp_ifthenelse (cond, then_, _) when diverges then_ ->
      refine ctx env cond false
  | Pexp_ifthenelse (cond, _, Some els) when diverges els ->
      refine ctx env cond true
  | _ -> env

and bind_pat ctx env (p : pattern) v =
  match p.ppat_desc with
  | Ppat_var { txt; _ } ->
      check_prob ctx p.ppat_loc txt v;
      SMap.add txt v env
  | Ppat_alias (p', { txt; _ }) -> bind_pat ctx (SMap.add txt v env) p' v
  | Ppat_constraint (p', _) -> bind_pat ctx env p' v
  | Ppat_tuple ps -> (
      match v with
      | Vtup vs when List.length vs = List.length ps ->
          List.fold_left2 (bind_pat ctx) env ps vs
      | _ -> List.fold_left (fun acc p' -> bind_pat ctx acc p' Vtop) env ps)
  | Ppat_construct ({ txt; _ }, arg) -> (
      let cname =
        match List.rev (Longident.flatten txt) with c :: _ -> c | [] -> "?"
      in
      match arg with
      | Some (_, p') -> (
          match v with
          | Vcon (c, Some v') when c = cname -> bind_pat ctx env p' v'
          | _ -> bind_pat ctx env p' Vtop)
      | None -> env)
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, fp) -> bind_pat ctx acc fp Vtop) env fields
  | Ppat_or (a, b) -> bind_pat ctx (bind_pat ctx env a v) b v
  | _ -> env

(* SRC024: probability-suggestive name bound to an evidenced float
   interval escaping [0, 1] with no clamp in sight. *)
and check_prob ctx loc name v =
  if ctx.depth = 0 && prob_name name then
    match v with
    | Vflt f when f.N.fknown && not f.N.fnan && (f.N.flo < 0. || f.N.fhi > 1.)
      ->
        emit ctx ~code:"SRC024" ~loc
          ~msg:
            (Printf.sprintf
               "probability-suggestive binding '%s' gets value in %s, outside \
                [0, 1] with no clamp"
               name (N.fv_to_string f))
          ~context:[ ("interval", N.fv_to_string f) ]
    | _ -> ()

and simple_ident (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident n; _ } -> Some n
  | Pexp_constraint (e, _) -> simple_ident e
  | _ -> None

(* Narrow [env] under the assumption that [cond] evaluated to
   [branch]. Interval endpoints describe the non-NaN case, so endpoint
   refinement is sound on both branches; the may-NaN bit is cleared
   only on the true branch of an ordered comparison (NaN comparisons
   are always false, so the negated branch keeps it). *)
and refine ctx env (cond : expression) branch =
  let cond = Cfg.normalize_apply cond in
  match cond.pexp_desc with
  | Pexp_constraint (c, _) | Pexp_open (_, c) -> refine ctx env c branch
  | Pexp_apply (f, args) -> (
      let fname = match ident_name f with Some n -> n | None -> "" in
      let last2 = Callgraph.last_components 2 fname in
      match (bare_name fname, args) with
      | Some "&&", [ (_, a); (_, b) ] when branch ->
          refine ctx (refine ctx env a true) b true
      | Some "||", [ (_, a); (_, b) ] when not branch ->
          refine ctx (refine ctx env a false) b false
      | Some "not", [ (_, a) ] -> refine ctx env a (not branch)
      | Some op, [ (_, a); (_, b) ] when List.mem op cmp_ops ->
          refine_cmp ctx env op a b branch
      | _, [ (_, a) ] when last2 = "Float.is_nan" ->
          upd_float env a (fun f ->
              if branch then N.fv_nan else { f with N.fnan = false })
      | _, [ (_, a) ] when last2 = "Float.is_finite" && branch ->
          upd_float env a (fun f ->
              {
                f with
                N.fnan = false;
                flo = (if f.N.flo < -.max_float then -.max_float else f.N.flo);
                fhi = (if f.N.fhi > max_float then max_float else f.N.fhi);
              })
      | _ -> env)
  | _ -> env

and upd_float env e f =
  match simple_ident e with
  | Some n -> (
      match SMap.find_opt n env with
      | Some (Vflt fv) -> SMap.add n (Vflt (f fv)) env
      | _ -> env)
  | None -> env

and refine_cmp ctx env op a b branch =
  (* effective relation on the taken branch *)
  let op =
    if branch then op
    else
      match op with
      | "=" -> "<>"
      | "<>" -> "="
      | "==" -> "!="
      | "!=" -> "=="
      | "<" -> ">="
      | ">=" -> "<"
      | ">" -> "<="
      | "<=" -> ">"
      | o -> o
  in
  let nan_clear = branch && List.mem op [ "<"; ">"; "<="; ">="; "=" ] in
  let va = eval ctx env a and vb = eval ctx env b in
  let fmin x y = if x < y then x else y in
  let fmax x y = if x > y then x else y in
  let upd env e other rel =
    (* [e REL other] *)
    match simple_ident e with
    | None -> env
    | Some n -> (
        match SMap.find_opt n env with
        | Some (Vint iv) ->
            let o = iv_of other in
            let iv' =
              match rel with
              | "<" -> N.iv_meet_upper iv (N.bound_add_const (-1) o.N.ihi)
              | "<=" -> N.iv_meet_upper iv o.N.ihi
              | ">" -> N.iv_meet_lower iv (N.bound_add_const 1 o.N.ilo)
              | ">=" -> N.iv_meet_lower iv o.N.ilo
              | "=" -> N.iv_meet_lower (N.iv_meet_upper iv o.N.ihi) o.N.ilo
              | _ -> iv
            in
            SMap.add n (Vint iv') env
        | Some (Vflt fv) ->
            let o = fv_of other in
            let fv =
              if nan_clear then { fv with N.fnan = false } else fv
            in
            let fv' =
              match rel with
              | "<" ->
                  {
                    fv with
                    N.fhi = fmin fv.N.fhi o.N.fhi;
                    nz = fv.N.nz || o.N.fhi <= 0.;
                  }
              | "<=" ->
                  {
                    fv with
                    N.fhi = fmin fv.N.fhi o.N.fhi;
                    nz = fv.N.nz || o.N.fhi < 0.;
                  }
              | ">" ->
                  {
                    fv with
                    N.flo = fmax fv.N.flo o.N.flo;
                    nz = fv.N.nz || o.N.flo >= 0.;
                  }
              | ">=" ->
                  {
                    fv with
                    N.flo = fmax fv.N.flo o.N.flo;
                    nz = fv.N.nz || o.N.flo > 0.;
                  }
              | "=" ->
                  {
                    fv with
                    N.flo = fmax fv.N.flo o.N.flo;
                    fhi = fmin fv.N.fhi o.N.fhi;
                    nz = fv.N.nz || o.N.nz;
                  }
              | "<>" | "!=" ->
                  (* mrm:ignore SRC001 — testing for the literal zero
                     interval, an exact lattice point *)
                  if o.N.flo = 0. && o.N.fhi = 0. then { fv with N.nz = true }
                  else fv
              | _ -> fv
            in
            SMap.add n (Vflt fv') env
        | _ -> env)
  in
  let flip = function
    | "<" -> ">"
    | "<=" -> ">="
    | ">" -> "<"
    | ">=" -> "<="
    | o -> o
  in
  let env = upd env a vb op in
  upd env b va (flip op)

and eval_args ctx env args = List.map (fun (l, a) -> (l, eval ctx env a)) args

and eval_apply ctx env loc f args =
  let fname = ident_name f in
  match (fname, args) with
  | Some n, [ (_, a); (_, b) ] when bare_name n = Some "&&" -> (
      let va = eval ctx env a in
      match va with
      | Vbool (Some false) -> Vbool (Some false)
      | _ -> (
          let vb = eval ctx (refine ctx env a true) b in
          match (va, vb) with
          | Vbool (Some true), Vbool bb -> Vbool bb
          | _, Vbool (Some false) -> Vbool (Some false)
          | _ -> Vbool None))
  | Some n, [ (_, a); (_, b) ] when bare_name n = Some "||" -> (
      let va = eval ctx env a in
      match va with
      | Vbool (Some true) -> Vbool (Some true)
      | _ -> (
          let vb = eval ctx (refine ctx env a false) b in
          match (va, vb) with
          | Vbool (Some false), Vbool bb -> Vbool bb
          | _, Vbool (Some true) -> Vbool (Some true)
          | _ -> Vbool None))
  | Some name, _ -> (
      match runner_kind ctx name with
      | Some (runner, kind) -> analyze_site ctx env loc runner kind args
      | None ->
          if (not (String.contains name '.')) && SMap.mem name env then
            let fv = SMap.find name env in
            apply_value ctx fv (eval_args ctx env args)
          else
            let vargs = eval_args ctx env args in
            (match prim ctx loc name vargs with
            | Some v -> v
            | None -> (
                match
                  Callgraph.resolve_name
                    (Hashtbl.find_opt ctx.g.index)
                    ~current_module:ctx.modname name
                with
                | Some (Vfun cl) -> call_closure ctx cl vargs
                | _ -> fallback_call ctx name vargs)))
  | None, _ ->
      let fv = eval ctx env f in
      apply_value ctx fv (eval_args ctx env args)

and apply_value ctx v vargs =
  match v with
  | Vfun cl -> call_closure ctx cl vargs
  | _ -> fallback ctx ~pure:false vargs

and call_closure ctx cl vargs =
  if
    List.mem cl.f_name ctx.stack
    || ctx.depth >= max_inline_depth
    || List.length ctx.stack > 2 * max_inline_depth
  then fallback ctx ~pure:false vargs
  else
    let ctx' =
      {
        ctx with
        depth = ctx.depth + 1;
        stack = cl.f_name :: ctx.stack;
        file = cl.f_file;
        modname = cl.f_module;
        hot = cl.f_hot;
      }
    in
    apply_fn ctx' ~havoc_opt:false cl.f_env cl.f_body vargs

(* Unknown callee: walk closure arguments — in kernel mode their
   writes must still satisfy the obligation, and everywhere their weak
   updates to captured refs must land (an [Array.iter] accumulator
   left un-walked would keep its initial value and fake a definite
   constant). Walks are bounded by the stack depth and the fuel
   budget; findings dedupe globally by location. In kernel mode a
   definitely-shared mutable argument additionally escapes the
   proof. *)
and fallback ctx ~pure vargs =
  let funs = List.concat_map (fun (_, v) -> collect_funs v) vargs in
  List.iter (walk_closure ctx) funs;
  (match ctx.kernel with
  | Some k ->
      if (not pure) && List.exists (fun (_, v) -> contains_shared v) vargs then
        k.k_escaped <- true
  | None -> ());
  Vtop

and fallback_call ctx name vargs =
  let q, _ = split_name name in
  fallback ctx ~pure:(pure_hof_qualifier q) vargs

and walk_closure ctx cl =
  if List.mem cl.f_name ctx.stack then ()
  else if List.length ctx.stack > 2 * max_inline_depth then
    match ctx.kernel with Some k -> k.k_escaped <- true | None -> ()
  else
    ignore
      (apply_fn
         {
           ctx with
           stack = cl.f_name :: ctx.stack;
           file = cl.f_file;
           modname = cl.f_module;
           hot = cl.f_hot;
         }
         ~havoc_opt:true cl.f_env cl.f_body [])

and walk_once ctx loc cl =
  let key =
    ( ctx.file,
      loc.Location.loc_start.Lexing.pos_lnum,
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol )
  in
  if not (Hashtbl.mem ctx.g.walked key) then begin
    Hashtbl.replace ctx.g.walked key ();
    if
      (not (List.mem cl.f_name ctx.stack))
      && List.length ctx.stack <= 2 * max_inline_depth
    then
      ignore
        (apply_fn
           { ctx with stack = cl.f_name :: ctx.stack }
           ~havoc_opt:true cl.f_env cl.f_body [])
  end

and param_labels (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (l, _, _, rest) -> l :: param_labels rest
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> param_labels e
  | _ -> []

(* Apply a [fun p1 ... -> body] chain to abstract arguments. Missing
   arguments bind havoc; [havoc_opt] additionally havocs optional
   defaults (direct analysis: the caller could pass anything). *)
and apply_fn ctx ~havoc_opt env (e : expression) args =
  step ctx;
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) | Pexp_open (_, e) ->
      apply_fn ctx ~havoc_opt env e args
  | Pexp_fun (lbl, default, pat, rest) ->
      let take_labelled l args =
        let rec go acc = function
          | [] -> None
          | (Labelled l', v) :: tl when l' = l -> Some (v, List.rev_append acc tl)
          | hd :: tl -> go (hd :: acc) tl
        in
        go [] args
      in
      let take_nolabel args =
        let rec go acc = function
          | [] -> None
          | (Nolabel, v) :: tl -> Some (v, List.rev_append acc tl)
          | hd :: tl -> go (hd :: acc) tl
        in
        go [] args
      in
      let v, args =
        match lbl with
        | Nolabel -> (
            match take_nolabel args with
            | Some (v, rest_args) -> (v, rest_args)
            | None -> (Vtop, args))
        | Labelled l -> (
            match take_labelled l args with
            | Some (v, rest_args) -> (v, rest_args)
            | None -> (Vtop, args))
        | Optional l -> (
            match take_labelled l args with
            | Some (v, rest_args) ->
                ( (match default with
                  | Some _ -> v
                  | None -> Vcon ("Some", Some v)),
                  rest_args )
            | None ->
                ( (if havoc_opt then Vtop
                   else
                     match default with
                     | Some d -> eval ctx env d
                     | None -> Vcon ("None", None)),
                  args ))
      in
      let env' = bind_pat ctx env pat v in
      apply_fn ctx ~havoc_opt env' rest args
  | Pexp_function cases -> (
      match args with
      | (Nolabel, v) :: rest_args ->
          let r = eval_cases ctx env v cases in
          if rest_args = [] then r else apply_value ctx r rest_args
      | _ -> eval_cases ctx env Vtop cases)
  | _ ->
      let v = eval ctx env e in
      if args = [] then v else apply_value ctx v args

and eval_cases ctx env scrut cases =
  let try_case c =
    if definitely_mismatch scrut c.pc_lhs then None
    else begin
      let env' = bind_pat ctx env c.pc_lhs scrut in
      let guard_false =
        match c.pc_guard with
        | Some g -> (
            match eval ctx env' g with Vbool (Some false) -> true | _ -> false)
        | None -> false
      in
      let rv = eval ctx env' c.pc_rhs in
      if guard_false || diverges c.pc_rhs then None else Some rv
    end
  in
  match List.filter_map try_case cases with
  | [] -> Vtop
  | v :: rest -> List.fold_left join v rest

and definitely_mismatch scrut (p : pattern) =
  let con_name txt =
    match List.rev (Longident.flatten txt) with c :: _ -> c | [] -> "?"
  in
  match (p.ppat_desc, scrut) with
  | Ppat_constraint (p', _), _ | Ppat_alias (p', _), _ ->
      definitely_mismatch scrut p'
  | Ppat_or (pa, pb), _ ->
      definitely_mismatch scrut pa && definitely_mismatch scrut pb
  | Ppat_construct ({ txt; _ }, _), Vcon (c, _) -> con_name txt <> c
  | Ppat_construct ({ txt; _ }, _), Vbool (Some b) ->
      let n = con_name txt in
      (n = "true" || n = "false") && n <> string_of_bool b
  | Ppat_constant (Pconst_integer (s, _)), Vint iv -> (
      match (iv_point iv, int_of_string_opt s) with
      | Some c, Some c' -> c <> c'
      | _ -> false)
  | _ -> false

(* ---------- array / numeric primitives ---------- *)

and prim ctx loc name vargs =
  let q, lc = split_name name in
  let k = if q = "" || q = "Stdlib" then lc else q ^ "." ^ lc in
  let nol = List.filter_map (fun (l, v) -> if l = Nolabel then Some v else None) vargs in
  let src021 msg fvs =
    if ctx.depth = 0 then
      emit ctx ~code:"SRC021" ~loc ~msg
        ~context:[ ("interval", N.fv_to_string fvs) ]
  in
  let names = sym_name ctx.g in
  match k with
  | "+" | "-" | "*" -> (
      match nol with
      | [ a; b ] ->
          let x = iv_of a and y = iv_of b in
          Some
            (Vint
               (match k with
               | "+" -> N.iv_add x y
               | "-" -> N.iv_sub x y
               | _ -> N.iv_mul x y))
      | _ -> Some (Vint N.iv_top))
  | "succ" -> Some (Vint (N.iv_add (iv_of (List.nth_opt nol 0 |> Option.value ~default:Vtop)) (N.iv_const 1)))
  | "pred" -> Some (Vint (N.iv_sub (iv_of (List.nth_opt nol 0 |> Option.value ~default:Vtop)) (N.iv_const 1)))
  | "~-" -> Some (Vint (N.iv_neg (iv_of (List.nth_opt nol 0 |> Option.value ~default:Vtop))))
  | "/" | "mod" | "Int.div" | "Int.rem" ->
      (match nol with
      | [ _; b ] ->
          let bi = iv_of b in
          if ctx.depth = 0 && bi.N.iknown && N.iv_contains_zero bi then
            emit ctx ~code:"SRC021" ~loc
              ~msg:
                (Printf.sprintf
                   "integer %s by a possibly-zero denominator (%s)"
                   (if k = "/" || k = "Int.div" then "division" else "mod")
                   (N.iv_to_string ~names bi))
              ~context:[ ("interval", N.iv_to_string ~names bi) ]
      | _ -> ());
      Some (Vint N.iv_top)
  | "land" -> (
      match nol with
      | [ a; b ] -> (
          match (iv_point (iv_of a), iv_point (iv_of b)) with
          | _, Some m when m >= 0 ->
              Some (Vint (N.iv_range (N.Lin (N.lin_const 0)) (N.Lin (N.lin_const m))))
          | Some m, _ when m >= 0 ->
              Some (Vint (N.iv_range (N.Lin (N.lin_const 0)) (N.Lin (N.lin_const m))))
          | _ -> Some (Vint N.iv_top))
      | _ -> Some (Vint N.iv_top))
  | "lor" | "lxor" | "lsl" | "lsr" | "asr" | "lnot" -> Some (Vint N.iv_top)
  | "abs" -> (
      match nol with
      | [ a ] ->
          let x = iv_of a in
          if N.bound_le ~assume:ctx.assume (N.Lin (N.lin_const 0)) x.N.ilo then
            Some (Vint x)
          else Some (Vint { N.ilo = N.Lin (N.lin_const 0); ihi = N.Pinf; iknown = x.N.iknown })
      | _ -> Some (Vint N.iv_top))
  | "+." | "-." | "*." -> (
      match nol with
      | [ a; b ] ->
          let x = fv_of a and y = fv_of b in
          Some
            (Vflt
               (match k with
               | "+." -> N.fv_add x y
               | "-." -> N.fv_sub x y
               | _ -> N.fv_mul x y))
      | _ -> Some (Vflt N.fv_top))
  | "~-." -> (
      match nol with
      | [ a ] -> Some (Vflt (N.fv_neg (fv_of a)))
      | _ -> Some (Vflt N.fv_top))
  | "/." | "Float.div" -> (
      match nol with
      | [ a; b ] ->
          let x = fv_of a and y = fv_of b in
          if y.N.fknown && N.fv_may_zero y then
            src021
              (Printf.sprintf "float division by a possibly-zero denominator (%s)"
                 (N.fv_to_string y))
              y;
          Some (Vflt (N.fv_div x y))
      | _ -> Some (Vflt N.fv_top))
  | "sqrt" | "Float.sqrt" -> (
      match nol with
      | [ a ] ->
          let x = fv_of a in
          if x.N.fknown && N.fv_may_neg x then
            src021
              (Printf.sprintf "sqrt of a possibly-negative argument (%s)"
                 (N.fv_to_string x))
              x;
          Some (Vflt (N.fv_sqrt x))
      | _ -> Some (Vflt N.fv_top))
  | "log" | "Float.log" | "log10" | "Float.log10" -> (
      match nol with
      | [ a ] ->
          let x = fv_of a in
          if x.N.fknown && N.fv_may_nonpos x then
            src021
              (Printf.sprintf "log of a possibly-nonpositive argument (%s)"
                 (N.fv_to_string x))
              x;
          let r = N.fv_log x in
          if k = "log" || k = "Float.log" then Some (Vflt r)
          else Some (Vflt { r with N.flo = neg_infinity; fhi = infinity; nz = false })
      | _ -> Some (Vflt N.fv_top))
  | "exp" | "Float.exp" -> (
      match nol with
      | [ a ] -> Some (Vflt (N.fv_exp (fv_of a)))
      | _ -> Some (Vflt N.fv_top))
  | "**" | "Float.pow" -> (
      match nol with
      | [ a; b ] ->
          let x = fv_of a in
          if x.N.fknown && N.fv_may_neg x then
            src021
              (Printf.sprintf "** with a possibly-negative base (%s)"
                 (N.fv_to_string x))
              x;
          Some (Vflt (N.fv_pow x (fv_of b)))
      | _ -> Some (Vflt N.fv_top))
  | "abs_float" | "Float.abs" -> (
      match nol with
      | [ a ] -> Some (Vflt (N.fv_abs (fv_of a)))
      | _ -> Some (Vflt N.fv_top))
  | "min" | "max" | "Float.min" | "Float.max" -> (
      match nol with
      | [ (Vint x); (Vint y) ] ->
          Some (Vint (if lc = "min" then N.iv_min x y else N.iv_max x y))
      | [ ((Vflt _ | Vint _) as a); ((Vflt _ | Vint _) as b) ] ->
          Some
            (Vflt
               (if lc = "min" then N.fv_min (fv_of a) (fv_of b)
                else N.fv_max (fv_of a) (fv_of b)))
      | _ -> Some Vtop)
  | "=" | "<>" | "<" | ">" | "<=" | ">=" | "==" | "!=" | "Float.equal"
  | "Int.equal" -> (
      match nol with
      | [ a; b ] ->
          if ctx.depth = 0 then
            List.iter
              (fun v ->
                match v with
                | Vflt f when f.N.fnan ->
                    emit ctx ~code:"SRC023" ~loc
                      ~msg:
                        (Printf.sprintf
                           "float comparison with a may-be-NaN operand (%s); \
                            NaN comparisons are always false"
                           (N.fv_to_string f))
                      ~context:[ ("interval", N.fv_to_string f) ]
                | _ -> ())
              [ a; b ];
          Some (Vbool (decide_cmp ctx k a b))
      | _ -> Some (Vbool None))
  | "compare" | "Float.compare" | "Int.compare" -> Some (Vint N.iv_top)
  | "not" -> (
      match nol with
      | [ Vbool (Some b) ] -> Some (Vbool (Some (not b)))
      | _ -> Some (Vbool None))
  | "ref" -> (
      match nol with
      | [ v ] -> Some (Vref { c_val = v; c_local = ctx.kernel <> None })
      | _ -> None)
  | "!" -> (
      match nol with
      | [ Vref c ] -> Some c.c_val
      | [ _ ] -> Some Vtop
      | _ -> None)
  | ":=" -> (
      match nol with
      | [ tgt; v ] ->
          (match tgt with
          | Vref c ->
              if c.c_local then c.c_val <- merge_cell ctx c.c_val v
              else begin
                (match ctx.kernel with
                | Some kc -> kc.k_escaped <- true
                | None -> ());
                c.c_val <- merge_cell ctx c.c_val v
              end
          | _ -> (
              match ctx.kernel with
              | Some kc -> kc.k_escaped <- true
              | None -> ()));
          Some (Vcon ("()", None))
      | _ -> None)
  | "incr" | "decr" -> (
      match nol with
      | [ Vref c ] ->
          let one = N.iv_const 1 in
          let nv =
            match c.c_val with
            | Vint iv ->
                Vint (if k = "incr" then N.iv_add iv one else N.iv_sub iv one)
            | _ -> Vtop
          in
          if not c.c_local then (
            match ctx.kernel with
            | Some kc -> kc.k_escaped <- true
            | None -> ());
          c.c_val <- merge_cell ctx c.c_val nv;
          Some (Vcon ("()", None))
      | [ _ ] ->
          (match ctx.kernel with
          | Some kc -> kc.k_escaped <- true
          | None -> ());
          Some (Vcon ("()", None))
      | _ -> None)
  | "fst" -> (
      match nol with
      | [ Vtup (a :: _) ] -> Some a
      | [ _ ] -> Some Vtop
      | _ -> None)
  | "snd" -> (
      match nol with
      | [ Vtup [ _; b ] ] -> Some b
      | [ _ ] -> Some Vtop
      | _ -> None)
  | "ignore" -> Some (Vcon ("()", None))
  | "float_of_int" | "Float.of_int" -> (
      match nol with
      | [ a ] -> Some (Vflt (N.fv_of_iv (iv_of a)))
      | _ -> Some (Vflt N.fv_top))
  | "int_of_float" | "truncate" | "Float.to_int" -> Some (Vint N.iv_top)
  | "float_of_string" | "Float.of_string" -> Some (Vflt N.fv_nan)
  | "Float.is_nan" | "Float.is_finite" | "Float.is_integer" ->
      Some (Vbool None)
  | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit" ->
      Some Vtop
  | "Array.length" | "Bytes.length" | "String.length" | "Array1.dim" -> (
      match nol with
      | [ Varr a ] -> Some (Vint a.a_len)
      | [ _ ] -> Some (Vint { N.iv_top with N.ilo = N.Lin (N.lin_const 0) })
      | _ -> None)
  | "Array.get" | "Array.unsafe_get" | "Array1.get" | "Array1.unsafe_get" -> (
      match nol with
      | [ tgt; idx ] ->
          let unsafe = lc = "unsafe_get" in
          check_access ctx ~loc ~write:false ~unsafe tgt (iv_of idx);
          Some (match tgt with Varr a -> a.a_elem | _ -> Vtop)
      | _ -> Some Vtop)
  | "Array.set" | "Array.unsafe_set" | "Array1.set" | "Array1.unsafe_set" -> (
      match nol with
      | [ tgt; idx; v ] ->
          let unsafe = lc = "unsafe_set" in
          check_access ctx ~loc ~write:true ~unsafe tgt (iv_of idx);
          (match tgt with
          | Varr a -> a.a_elem <- merge_cell ctx a.a_elem v
          | _ -> ());
          Some (Vcon ("()", None))
      | _ -> Some (Vcon ("()", None)))
  | "Array.make" | "Array.create" -> (
      match nol with
      | [ n; v ] ->
          Some
            (Varr { a_elem = v; a_len = iv_of n; a_local = ctx.kernel <> None })
      | _ -> None)
  | "Array.create_float" -> (
      match nol with
      | [ n ] ->
          Some
            (Varr
               {
                 a_elem = Vflt N.fv_top;
                 a_len = iv_of n;
                 a_local = ctx.kernel <> None;
               })
      | _ -> None)
  | "Array.init" -> (
      match nol with
      | [ n; f ] ->
          let ni = iv_of n in
          let idx =
            Vint
              {
                N.ilo = N.Lin (N.lin_const 0);
                ihi = N.bound_add_const (-1) ni.N.ihi;
                iknown = ni.N.iknown;
              }
          in
          let elem = apply_value ctx f [ (Nolabel, idx) ] in
          Some (Varr { a_elem = elem; a_len = ni; a_local = ctx.kernel <> None })
      | _ -> None)
  | "Array.copy" -> (
      match nol with
      | [ Varr a ] ->
          Some
            (Varr
               {
                 a_elem = a.a_elem;
                 a_len = a.a_len;
                 a_local = ctx.kernel <> None;
               })
      | [ _ ] -> Some Vtop
      | _ -> None)
  | "Array.sub" -> (
      match nol with
      | [ a; _; len ] ->
          Some
            (Varr
               {
                 a_elem = (match a with Varr a -> a.a_elem | _ -> Vtop);
                 a_len = iv_of len;
                 a_local = ctx.kernel <> None;
               })
      | _ -> None)
  | "Array.append" -> (
      match nol with
      | [ a; b ] ->
          let la = (match a with Varr x -> x.a_len | _ -> N.iv_top) in
          let lb = (match b with Varr x -> x.a_len | _ -> N.iv_top) in
          let el =
            join
              (match a with Varr x -> x.a_elem | _ -> Vtop)
              (match b with Varr x -> x.a_elem | _ -> Vtop)
          in
          Some
            (Varr
               { a_elem = el; a_len = N.iv_add la lb; a_local = ctx.kernel <> None })
      | _ -> None)
  | "Array.fill" -> (
      match nol with
      | [ tgt; pos; len; v ] ->
          check_range_write ctx ~loc tgt (iv_of pos) (iv_of len);
          (match tgt with
          | Varr a -> a.a_elem <- merge_cell ctx a.a_elem v
          | _ -> ());
          Some (Vcon ("()", None))
      | _ -> None)
  | "Array.blit" -> (
      match nol with
      | [ src; _; dst; dpos; len ] ->
          check_range_write ctx ~loc dst (iv_of dpos) (iv_of len);
          (match (dst, src) with
          | Varr d, Varr s -> d.a_elem <- merge_cell ctx d.a_elem s.a_elem
          | Varr d, _ -> d.a_elem <- merge_cell ctx d.a_elem Vtop
          | _ -> ());
          Some (Vcon ("()", None))
      | _ -> None)
  | "Array.of_list" ->
      Some (Varr { a_elem = Vtop; a_len = N.iv_top; a_local = ctx.kernel <> None })
  | _ -> None

and decide_cmp ctx op a b =
  match (a, b) with
  | Vbool (Some x), Vbool (Some y) when op = "=" || op = "==" -> Some (x = y)
  | Vbool (Some x), Vbool (Some y) when op = "<>" || op = "!=" -> Some (x <> y)
  | Vint x, Vint y -> (
      let le p q = N.bound_le ~assume:ctx.assume p q in
      let lt p q = le (N.bound_add_const 1 p) q in
      match op with
      | "<" ->
          if lt x.N.ihi y.N.ilo then Some true
          else if le y.N.ihi x.N.ilo then Some false
          else None
      | "<=" ->
          if le x.N.ihi y.N.ilo then Some true
          else if lt y.N.ihi x.N.ilo then Some false
          else None
      | ">" ->
          if lt y.N.ihi x.N.ilo then Some true
          else if le x.N.ihi y.N.ilo then Some false
          else None
      | ">=" ->
          if le y.N.ihi x.N.ilo then Some true
          else if lt x.N.ihi y.N.ilo then Some false
          else None
      | "=" | "==" | "Int.equal" ->
          if le x.N.ihi y.N.ilo && le y.N.ihi x.N.ilo then Some true
          else if lt x.N.ihi y.N.ilo || lt y.N.ihi x.N.ilo then Some false
          else None
      | "<>" | "!=" ->
          if lt x.N.ihi y.N.ilo || lt y.N.ihi x.N.ilo then Some true
          else if le x.N.ihi y.N.ilo && le y.N.ihi x.N.ilo then Some false
          else None
      | _ -> None)
  | _ -> None

(* ---------- access checks: SRC020 (kernel writes) and SRC022 ---------- *)

and check_access ctx ~loc ~write ~unsafe target idxi =
  match ctx.kernel with
  | Some kc when write ->
      let local = match target with Varr a -> a.a_local | _ -> false in
      if not local then begin
        kc.k_writes <- kc.k_writes + 1;
        kc.k_all <-
          Some
            (match kc.k_all with
            | None -> idxi
            | Some j -> N.iv_join j idxi);
        if not (N.iv_subset ~assume:ctx.assume idxi ~lo:kc.ob_lo ~hi:kc.ob_hi)
        then
          match kc.k_sym with
          | Some _ -> kc.k_pending <- (ctx.file, loc, idxi) :: kc.k_pending
          | None ->
              kc.k_flagged <- kc.k_flagged + 1;
              let names = sym_name ctx.g in
              emit ctx ~code:"SRC020" ~loc
                ~msg:
                  (Printf.sprintf
                     "kernel write index %s not provably within the party's \
                      range %s"
                     (N.iv_to_string ~names idxi)
                     (N.iv_to_string ~names
                        (N.iv_range kc.ob_lo kc.ob_hi)))
                ~context:
                  [
                    ("index", N.iv_to_string ~names idxi);
                    ( "obligation",
                      N.iv_to_string ~names (N.iv_range kc.ob_lo kc.ob_hi) );
                  ]
      end
  | Some _ -> ()
  | None ->
      if ctx.depth = 0 && ctx.hot then begin
        let names = sym_name ctx.g in
        let len = match target with Varr a -> Some a.a_len | _ -> None in
        let proven =
          match len with
          | Some l when l.N.iknown ->
              N.iv_subset ~assume:ctx.assume idxi
                ~lo:(N.Lin (N.lin_const 0))
                ~hi:(N.bound_add_const (-1) l.N.ilo)
          | _ -> false
        in
        if unsafe && not proven then
          emit ctx ~code:"SRC022" ~loc
            ~msg:
              (Printf.sprintf
                 "unsafe array access with no backing interval fact (index %s)"
                 (N.iv_to_string ~names idxi))
            ~context:[ ("index", N.iv_to_string ~names idxi) ]
        else if (not proven) && idxi.N.iknown then begin
          let neg =
            match idxi.N.ilo with
            | N.Lin _ ->
                N.bound_le ~assume:ctx.assume idxi.N.ilo
                  (N.Lin (N.lin_const (-1)))
            | _ -> false
          in
          let high =
            match (len, idxi.N.ihi) with
            | Some l, N.Lin _ -> (
                match l.N.ihi with
                | N.Lin _ -> N.bound_le ~assume:ctx.assume l.N.ihi idxi.N.ihi
                | _ -> false)
            | _ -> false
          in
          if neg || high then
            emit ctx ~code:"SRC022" ~loc
              ~msg:
                (Printf.sprintf
                   "array index %s not contained in the known length bound%s"
                   (N.iv_to_string ~names idxi)
                   (match len with
                   | Some l -> " [0, " ^ N.iv_to_string ~names l ^ ")"
                   | None -> ""))
              ~context:[ ("index", N.iv_to_string ~names idxi) ]
        end
      end

and check_range_write ctx ~loc target pos len =
  let hi = N.bound_add_const (-1) (N.iv_add pos len).N.ihi in
  let iv = { N.ilo = pos.N.ilo; ihi = hi; iknown = pos.N.iknown && len.N.iknown } in
  check_access ctx ~loc ~write:true ~unsafe:false target iv

(* ---------- kernel sites ---------- *)

and analyze_site ctx env loc runner kind args =
  let vargs = eval_args ctx env args in
  if ctx.depth > 0 then Vtop
  else begin
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col =
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol
    in
    let key = (ctx.file, line, col) in
    if Hashtbl.mem ctx.g.site_seen key then Vtop
    else begin
      Hashtbl.replace ctx.g.site_seen key ();
      let record status writes =
        ctx.g.sites <-
          {
            ks_file = ctx.file;
            ks_line = line;
            ks_runner = runner;
            ks_status = status;
            ks_writes = writes;
          }
          :: ctx.g.sites
      in
      let body =
        List.fold_left
          (fun acc (l, v) ->
            match (l, v) with Nolabel, Vfun cl -> Some cl | _ -> acc)
          None vargs
      in
      match body with
      | None ->
          record Unknown 0;
          Vtop
      | Some cl ->
          let labels = param_labels cl.f_body in
          let kc, site_args, assume =
            match kind with
            | Range_runner ->
                let slo = fresh_sym ctx.g "lo" and shi = fresh_sym ctx.g "hi" in
                let lo_l = N.lin_sym slo and hi_l = N.lin_sym shi in
                let kc =
                  {
                    ob_lo = N.Lin lo_l;
                    ob_hi = N.Lin (N.lin_add_const (-1) hi_l);
                    k_sym = None;
                    k_writes = 0;
                    k_flagged = 0;
                    k_escaped = false;
                    k_pending = [];
                    k_all = None;
                  }
                in
                let lo_v = Vint (N.iv_of_sym slo)
                and hi_v = Vint (N.iv_of_sym shi) in
                let site_args =
                  if
                    List.mem (Labelled "lo") labels
                    && List.mem (Labelled "hi") labels
                  then [ (Labelled "lo", lo_v); (Labelled "hi", hi_v) ]
                  else [ (Nolabel, lo_v); (Nolabel, hi_v) ]
                in
                (kc, site_args, [ N.lin_sub hi_l lo_l; lo_l ])
            | Party_runner ->
                let sk = fresh_sym ctx.g "party" in
                let kl = N.lin_sym sk in
                let kc =
                  {
                    ob_lo = N.Lin kl;
                    ob_hi = N.Lin kl;
                    k_sym = Some sk;
                    k_writes = 0;
                    k_flagged = 0;
                    k_escaped = false;
                    k_pending = [];
                    k_all = None;
                  }
                in
                (kc, [ (Nolabel, Vint (N.iv_of_sym sk)) ], [ kl ])
          in
          let ctx' =
            {
              ctx with
              file = cl.f_file;
              modname = cl.f_module;
              hot = cl.f_hot;
              stack = cl.f_name :: ctx.stack;
              kernel = Some kc;
              assume;
            }
          in
          let fuel_died = ref false in
          (try ignore (apply_fn ctx' ~havoc_opt:true cl.f_env cl.f_body site_args)
           with Fuel -> fuel_died := true);
          (match (kc.k_pending, kc.k_sym, kc.k_all) with
          | [], _, _ -> ()
          | _ :: _, Some sk, Some all when party_disjoint ~assume sk all -> ()
          | pend, _, _ ->
              let names = sym_name ctx.g in
              List.iter
                (fun (file, wl, iv) ->
                  kc.k_flagged <- kc.k_flagged + 1;
                  emit_at ctx.g ~code:"SRC020" ~file ~loc:wl
                    ~msg:
                      (Printf.sprintf
                         "party write index %s is neither the party index nor \
                          provably disjoint across parties"
                         (N.iv_to_string ~names iv))
                    ~context:[ ("index", N.iv_to_string ~names iv) ])
                pend);
          let status =
            if kc.k_flagged > 0 then Flagged
            else if kc.k_escaped || !fuel_died then Unknown
            else Proven
          in
          record status kc.k_writes;
          if !fuel_died then raise Fuel else Vtop
    end
  end

(* ---------- driver ---------- *)

let mk_ctx g file modname hot =
  {
    g;
    file;
    modname;
    hot;
    fuel = ref g.fuel_budget;
    depth = 0;
    stack = [];
    kernel = None;
    assume = [];
    widen = false;
  }

let rec module_items g queue file hot modname env items =
  List.fold_left (module_item g queue file hot modname) env items

and module_item g queue file hot modname env (st : structure_item) =
  match st.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.fold_left
        (fun env vb ->
          match pat_var vb.pvb_pat with
          | Some n when is_fun_expr vb.pvb_expr ->
              let cl =
                {
                  f_name = modname ^ "." ^ n;
                  f_body = vb.pvb_expr;
                  f_env = env;
                  f_file = file;
                  f_module = modname;
                  f_hot = hot;
                }
              in
              let v = Vfun cl in
              if not (Hashtbl.mem g.index cl.f_name) then
                Hashtbl.add g.index cl.f_name v;
              Queue.add cl queue;
              SMap.add n v env
          | _ ->
              let ctx = mk_ctx g file modname hot in
              let v =
                try eval ctx env vb.pvb_expr
                with Fuel ->
                  g.exhausted <- g.exhausted + 1;
                  Vtop
              in
              let env = bind_pat ctx env vb.pvb_pat v in
              (match pat_var vb.pvb_pat with
              | Some n ->
                  if not (Hashtbl.mem g.index (modname ^ "." ^ n)) then
                    Hashtbl.add g.index (modname ^ "." ^ n) v
              | None -> ());
              env)
        env vbs
  | Pstr_module
      {
        pmb_name = { txt = Some sub; _ };
        pmb_expr = { pmod_desc = Pmod_structure sts; _ };
        _;
      } ->
      ignore (module_items g queue file hot sub env sts);
      env
  | Pstr_eval (e, _) ->
      let ctx = mk_ctx g file modname hot in
      (try ignore (eval ctx env e)
       with Fuel -> g.exhausted <- g.exhausted + 1);
      env
  | _ -> env

let analyze_function g cl =
  g.functions <- g.functions + 1;
  let ctx =
    { (mk_ctx g cl.f_file cl.f_module cl.f_hot) with stack = [ cl.f_name ] }
  in
  try ignore (apply_fn ctx ~havoc_opt:true cl.f_env cl.f_body [])
  with Fuel -> g.exhausted <- g.exhausted + 1

let analyze ?(fuel = default_fuel) files =
  let g =
    {
      index = Hashtbl.create 256;
      syms = Hashtbl.create 64;
      sym_count = 0;
      seen = Hashtbl.create 64;
      findings = [];
      sites = [];
      site_seen = Hashtbl.create 64;
      walked = Hashtbl.create 64;
      fuel_budget = fuel;
      functions = 0;
      exhausted = 0;
    }
  in
  let queue = Queue.create () in
  List.iter
    (fun (path, hot, ast) ->
      ignore
        (module_items g queue path hot (Cfg.module_of_path path) SMap.empty ast))
    files;
  Queue.iter (fun cl -> analyze_function g cl) queue;
  ( List.rev g.findings,
    {
      st_sites = List.rev g.sites;
      st_functions = g.functions;
      st_fuel_exhausted = g.exhausted;
    } )
