(** Module-qualified call graph over the analyzed tree, with the
    configurable blocking frontier used by SRC011.

    Resolution is syntactic: a qualified callee matches by its last
    two dot-components (so [Mrm_engine.Pool.run] finds ["Pool.run"]);
    an unqualified callee resolves in its own module first, then
    program-wide when the bare name is unambiguous. *)

type t

val default_blocking : string list
(** Calls considered blocking: [Unix.read]/[write]/[select]/[accept]/
    [sleepf], [Thread.delay]/[join]/[wait_signal], [Condition.wait],
    [Rqueue.pop], the solver entry points ([Randomization.moments*],
    [Batch.run]) and the pool barriers. *)

val build : Cfg.t list -> t

val last_components : int -> string -> string
(** Last [k] dot-components of a qualified name:
    [last_components 2 "Mrm_engine.Pool.run" = "Pool.run"]. *)

val resolve_name :
  (string -> 'a option) -> current_module:string -> string -> 'a option
(** The resolution convention of {!resolve} over any lookup function:
    qualified names match by their last two components (then
    verbatim); unqualified names match ["current_module.name"] only.
    Reused by {!Absint} over its own value index. *)

val resolve : t -> current_module:string -> string -> Cfg.t option
(** Resolve a callee as written to a function graph of the program,
    or [None] for external / unresolvable calls. *)

val is_blocking : ?frontier:string list -> string -> bool
(** Whether a callee as written is on the blocking frontier
    ([frontier] defaults to {!default_blocking}; pass a larger list to
    extend it). *)

val callees : Cfg.t -> (string * Cfg.node) list
(** Every [Call] node of one graph, with the callee as written. *)

val all : t -> Cfg.t list
