(* Checked-in waivers for pre-existing findings.

   Entries are (code, file, count): up to [count] findings of [code] in
   [file] are waived, anything beyond is fresh and fails the build.
   Counting per (code, file) instead of per line keeps the baseline
   stable under unrelated edits (line drift) while still catching every
   newly introduced finding of a baselined code in a baselined file. *)

type entry = { code : string; file : string; count : int }
type t = entry list

let empty = []

let parse text =
  let entries, errors =
    String.split_on_char '\n' text
    |> List.mapi (fun k line -> (k + 1, String.trim line))
    |> List.filter (fun (_, line) ->
           line <> "" && not (String.length line > 0 && line.[0] = '#'))
    |> List.fold_left
         (fun (entries, errors) (lineno, line) ->
           match
             String.split_on_char ' ' line
             |> List.filter (fun tok -> tok <> "")
           with
           | [ code; file; count ] -> begin
               match int_of_string_opt count with
               | Some count when count >= 1 ->
                   ({ code; file; count } :: entries, errors)
               | _ ->
                   ( entries,
                     Printf.sprintf "line %d: bad count %S" lineno count
                     :: errors )
             end
           | _ ->
               ( entries,
                 Printf.sprintf
                   "line %d: expected \"CODE FILE COUNT\", got %S" lineno line
                 :: errors ))
         ([], [])
  in
  match errors with
  | [] -> Ok (List.rev entries)
  | _ -> Error (String.concat "; " (List.rev errors))

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text

let header =
  [
    "# mrm2 lint-src baseline: pre-existing findings waived per (code, file).";
    "# One entry per line: CODE FILE COUNT. New findings beyond COUNT fail.";
    "# Regenerate with: mrm2 lint-src --baseline <this file> --update-baseline";
  ]

let to_string t =
  let lines =
    List.map (fun e -> Printf.sprintf "%s %s %d" e.code e.file e.count) t
  in
  String.concat "\n" (header @ lines) ^ "\n"

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let of_findings findings =
  (* deterministic order: by file then code *)
  let tbl = Hashtbl.create 64 in
  let keys = ref [] in
  List.iter
    (fun (f : Lint.finding) ->
      let key = (f.Lint.code, f.Lint.file) in
      match Hashtbl.find_opt tbl key with
      | Some n -> Hashtbl.replace tbl key (n + 1)
      | None ->
          keys := key :: !keys;
          Hashtbl.replace tbl key 1)
    findings;
  List.sort
    (fun a b ->
      match compare a.file b.file with 0 -> compare a.code b.code | c -> c)
    (List.map
       (fun (code, file) -> { code; file; count = Hashtbl.find tbl (code, file) })
       !keys)

type applied = {
  fresh : Lint.finding list;
  waived : Lint.finding list;
  stale : entry list;  (** unused (or partially unused) allowance *)
}

let apply t findings =
  let remaining = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = (e.code, e.file) in
      Hashtbl.replace remaining key
        (e.count + Option.value ~default:0 (Hashtbl.find_opt remaining key)))
    t;
  let fresh, waived =
    List.partition
      (fun (f : Lint.finding) ->
        let key = (f.Lint.code, f.Lint.file) in
        match Hashtbl.find_opt remaining key with
        | Some n when n > 0 ->
            Hashtbl.replace remaining key (n - 1);
            false
        | _ -> true)
      findings
  in
  let stale =
    List.filter_map
      (fun ((code, file), n) ->
        if n > 0 then Some { code; file; count = n } else None)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) remaining [])
    |> List.sort (fun a b ->
           match compare a.file b.file with
           | 0 -> compare a.code b.code
           | c -> c)
  in
  { fresh; waived; stale }
