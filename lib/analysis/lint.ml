(* Source-level lint over the project's own OCaml code.

   Files are parsed with the stock compiler-libs front end
   (Parse.implementation / Parse.interface) and walked with
   Ast_iterator; no typing pass is run, so the float/int judgements are
   syntactic over-approximations — precise enough for the conventions
   they enforce, and the suppression/baseline layers absorb the
   deliberate exceptions. *)

module Diagnostics = Mrm_check.Diagnostics

type finding = {
  code : string;
  severity : Diagnostics.severity;
  file : string;
  line : int;
  col : int;
  message : string;
  context : (string * string) list;
}

let compare_finding a b =
  match compare a.file b.file with
  | 0 -> begin
      match compare a.line b.line with
      | 0 -> begin
          match compare a.col b.col with 0 -> compare a.code b.code | c -> c
        end
      | c -> c
    end
  | c -> c

let to_diagnostic f =
  Diagnostics.with_location ~file:f.file ~line:f.line ~col:f.col
    (Diagnostics.make f.severity ~code:f.code ~context:f.context f.message)

let rule_table =
  [
    ( "SRC001",
      Diagnostics.Warning,
      "float equality: =, <> or compare applied to a float-typed operand" );
    ( "SRC002",
      Diagnostics.Warning,
      "polymorphic comparison (=, <>, compare, min, max) in a hot-path \
       module (lib/linalg, lib/core, lib/engine)" );
    ("SRC003", Diagnostics.Error, "Obj.magic or *.unsafe_* access");
    ( "SRC004",
      Diagnostics.Warning,
      "exception-swallowing handler: try ... with _ ->" );
    ( "SRC005",
      Diagnostics.Error,
      "non-atomic write to shared mutable state inside a parallel job \
       (lib/engine, lib/obs)" );
    ( "SRC006",
      Diagnostics.Warning,
      "direct terminal output from library code (everything goes through \
       sinks)" );
    ( "SRC010",
      Diagnostics.Error,
      "lock acquired but not released on some path (exception paths \
       included); wrap the critical section in Mutex.protect" );
    ( "SRC011",
      Diagnostics.Warning,
      "blocking call (Unix I/O, Thread.join, Condition.wait, queue pop, \
       solver entry) reachable while a mutex is held" );
    ( "SRC012",
      Diagnostics.Error,
      "lock-order cycle across the program-wide acquisition graph \
       (deadlock potential)" );
    ( "SRC013",
      Diagnostics.Error,
      "module-level mutable state written from a thread closure without \
       an Atomic or a held lock" );
    ( "SRC014",
      Diagnostics.Warning,
      "Condition.wait without a re-check loop, or signal/broadcast \
       without the associated mutex held" );
    ( "SRC020",
      Diagnostics.Error,
      "write to a shared array inside a partitioned-kernel body not \
       provably within the job's [lo,hi) range (abstract interpretation)" );
    ( "SRC021",
      Diagnostics.Warning,
      "division by a possibly-zero value, or log/sqrt/** applied to an \
       argument that may leave the function's domain, outside a \
       recognized guard" );
    ( "SRC022",
      Diagnostics.Warning,
      "array index in a hot-path module not provably within the array's \
       known length, or unsafe access without a supporting interval fact" );
    ( "SRC023",
      Diagnostics.Warning,
      "ordered float comparison with an operand that may be NaN (0./0., \
       log of a possibly non-positive value, unvalidated wire float)" );
    ( "SRC024",
      Diagnostics.Warning,
      "probability-named value assigned an interval escaping [0,1] with \
       no clamp" );
    ("SRC090", Diagnostics.Error, "file does not parse");
  ]

(* One paragraph + a minimal firing example per rule, behind
   [mrm2 lint-src --list-rules] / [--explain]. The SRC02x examples are
   verbatim lines of their defective fixtures under test/fixtures/src/
   (asserted by test_absint), so the documentation cannot drift from
   the code that demonstrates it. *)
let rule_docs =
  [
    ( "SRC001",
      "Exact float comparison ([=], [<>], [compare]) is almost never \
       what numerical code means: two mathematically equal expressions \
       rarely share a bit pattern after rounding. Compare against a \
       tolerance, or suppress inline where the exact-bit check is the \
       point (sentinels, round-trip tests).",
      "if x = 0.1 +. 0.2 then ..." );
    ( "SRC002",
      "The polymorphic comparison walker boxes floats and defeats \
       unboxing, which matters in the hot-path modules (lib/linalg, \
       lib/core, lib/engine). Use the monomorphic Float/Int operations \
       there.",
      "if a > b then ...   (* a, b of unknown type in lib/core *)" );
    ( "SRC003",
      "Obj.magic defeats the type system entirely and *.unsafe_* \
       accesses skip bounds checks; both turn logic errors into memory \
       corruption. The engine's kernels earn their unchecked accesses \
       through the range-partition invariant — everything else pays \
       for the check.",
      "Obj.magic x" );
    ( "SRC004",
      "[try ... with _ ->] swallows Out_of_memory, Stack_overflow, \
       assertion failures and every future bug in the protected \
       expression. Match the exceptions the code can actually raise.",
      "try parse s with _ -> default" );
    ( "SRC005",
      "A closure handed to a parallel runner (Pool.run, parallel_for, \
       map_array, Kernel.for_ranges) must not write state shared with \
       other jobs unless the store index is provably job-private (the \
       range-disjoint convention). Non-atomic cross-job writes are \
       data races under OCaml 5's memory model.",
      "Pool.run pool (fun k -> total := !total + k)" );
    ( "SRC006",
      "Library code must not print to the terminal; output goes \
       through the sink abstraction so callers control formatting and \
       destination. print_*/Printf.printf belong in bin/.",
      "Printf.printf \"solved %d\\n\" n" );
    ( "SRC010",
      "A mutex acquired in a function is still held on some return or \
       exception path. The lock-set dataflow follows raises through \
       handlers and cleanup idioms (Fun.protect, Mutex.protect, local \
       wrappers); wrap the critical section in Mutex.protect.",
      "Mutex.lock t.mu; let r = work () in Mutex.unlock t.mu; r" );
    ( "SRC011",
      "A blocking call (Unix I/O, Thread.join, Condition.wait, queue \
       pop, solver entry points) is reachable while a mutex is held, \
       one level through the call graph: every contender stalls for \
       the duration. Move the blocking call outside the critical \
       section. Extend the frontier with --blocking Module.fn.",
      "Mutex.protect t.mu (fun () -> Unix.read fd buf 0 len)" );
    ( "SRC012",
      "Two threads acquire the same locks in opposite orders somewhere \
       in the program-wide acquisition graph — a deadlock waiting for \
       the right interleaving. Impose a global lock order.",
      "Mutex.lock a; Mutex.lock b  (* elsewhere: lock b; lock a *)" );
    ( "SRC013",
      "Module-level mutable state (ref, Hashtbl, Queue, Buffer) is \
       written from a thread-root closure (Thread.create, \
       Domain.spawn, pool runners) — directly or one call deep — \
       without an Atomic or a held lock. This is SRC005 generalized \
       across function boundaries.",
      "let hits = ref 0  ... Domain.spawn (fun () -> incr hits)" );
    ( "SRC014",
      "Condition.wait must sit in a re-check loop (spurious wakeups \
       are legal) and signal/broadcast must run with the associated \
       mutex held, or the wakeup can be lost between the test and the \
       wait.",
      "if not !ready then Condition.wait c m" );
    ( "SRC020",
      "Inside a partitioned-kernel body (Kernel.for_ranges/sweep/\
       reduce, Pool.run/run_pinned/parallel_for) every write to an \
       array that outlives the job must land in the job's own [lo,hi) \
       slice — that disjointness is the engine's whole memory-safety \
       argument. The abstract interpreter re-analyzes each body under \
       symbolic bounds and flags any store it cannot place inside the \
       range; proven bodies are counted in the --strict summary and \
       exempt the dynamic race checker.",
      "for i = lo to hi do acc.(i) <- 0. done" );
    ( "SRC021",
      "The divisor (or the argument of log/sqrt/**) carries an \
       abstract interval that includes zero (resp. leaves the \
       function's domain) and no recognized guard ([<> 0.], [> 0.], \
       epsilon max) dominates the use. Division by zero silently \
       yields inf/nan and poisons every downstream moment.",
      "let mean = total /. count in" );
    ( "SRC022",
      "In the hot-path modules an array subscript's interval is not \
       contained in the array's known length — or an unsafe_get/set \
       has no interval fact at all — so the access can trap (or, \
       unsafe, corrupt memory) on some input. Hoist a bounds check or \
       tighten the loop bound.",
      "let third = Array.unsafe_get xs 3 in" );
    ( "SRC023",
      "An ordered float comparison has an operand that may be NaN \
       (0./0., log of a possibly non-positive value, a wire float \
       never validated with Float.is_nan/is_finite). Every ordered \
       comparison on NaN is false, so both branches of the surrounding \
       if are reachable in ways the code does not expect.",
      "if ratio < threshold then" );
    ( "SRC024",
      "A value whose name says probability (p, prob, weight, pi0, \
       mix…) is assigned an interval escaping [0,1] with no clamp in \
       sight. Out-of-range probabilities break the conditioning \
       identities silently — results stay finite but wrong.",
      "let weight = 1.2 in" );
    ( "SRC090",
      "The file does not parse with the stock compiler-libs front \
       end, so no other rule ran. The finding points at the first \
       syntax error.",
      "let f x = (   (* unterminated *)" );
  ]

let severity_of code =
  match List.find_opt (fun (c, _, _) -> c = code) rule_table with
  | Some (_, s, _) -> s
  | None -> Diagnostics.Error

(* ------------------------------------------------------------------ *)
(* Path classification                                                  *)

let normalize path = String.map (fun c -> if c = '\\' then '/' else c) path

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

type file_class = {
  hot : bool;  (** lib/linalg, lib/core, lib/engine: SRC002 applies *)
  library : bool;  (** under lib/: SRC006 applies *)
  parallel_host : bool;
      (** lib/engine, lib/obs, lib/server, lib/cluster: SRC005 applies —
          code that hands closures to the domain pool (or runs them from
          handler threads) *)
}

let classify path =
  let p = normalize path in
  let has sub = contains_sub ~sub p in
  {
    hot = has "lib/linalg/" || has "lib/core/" || has "lib/engine/";
    library = has "lib/";
    parallel_host =
      has "lib/engine/" || has "lib/obs/" || has "lib/server/"
      || has "lib/cluster/";
  }

(* ------------------------------------------------------------------ *)
(* Syntactic type guesses                                               *)

open Parsetree

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_fns =
  [
    "sqrt"; "exp"; "log"; "log10"; "log1p"; "expm1"; "abs_float";
    "float_of_int"; "float_of_string"; "ceil"; "floor"; "mod_float";
    "ldexp"; "copysign"; "hypot"; "atan2"; "atan"; "asin"; "acos"; "sin";
    "cos"; "tan"; "sinh"; "cosh"; "tanh";
  ]

let float_consts =
  [ "nan"; "infinity"; "neg_infinity"; "epsilon_float"; "max_float";
    "min_float" ]

(* Float.* members that do NOT return float — everything else in the
   Float module is treated as float-valued. *)
let float_module_non_float =
  [
    "equal"; "compare"; "to_int"; "to_string"; "is_finite"; "is_nan";
    "is_integer"; "sign_bit"; "classify_float";
  ]

let int_ops =
  [ "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "~-"; "~+" ]

let int_fns = [ "succ"; "pred"; "abs"; "int_of_float"; "int_of_string";
                "int_of_char" ]

let length_fns = [ "Array"; "String"; "Bytes"; "List"; "Seq"; "Hashtbl";
                   "Queue"; "Stack" ]

let ident_path (e : expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

let rec known_float (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Lident n; _ } -> List.mem n float_consts
  | Pexp_ident { txt = Ldot (Lident "Float", n); _ } ->
      not (List.mem n float_module_non_float)
  | Pexp_apply (f, _) -> begin
      match ident_path f with
      | Some (Lident op) ->
          List.mem op float_ops || List.mem op float_fns
      | Some (Ldot (Lident "Float", n)) ->
          not (List.mem n float_module_non_float)
      | Some (Ldot (Lident "Stdlib", n)) ->
          List.mem n float_ops || List.mem n float_fns
      | _ -> false
    end
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
      true
  | Pexp_open (_, e) | Pexp_sequence (_, e) -> known_float e
  | Pexp_ifthenelse (_, a, Some b) -> known_float a || known_float b
  | _ -> false

(* "Immediate" in the unboxed sense: comparisons on these never hit the
   polymorphic walker once typed. Constants of any basic type are also
   excluded from SRC002 — [s = "x"] and [c = '\n'] are idiomatic. *)
let rec known_immediate (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _ | Pconst_string _) -> true
  | Pexp_construct ({ txt = Lident ("true" | "false" | "()" | "None"); _ }, None)
    ->
      true
  | Pexp_apply (f, _) -> begin
      match ident_path f with
      | Some (Lident op) ->
          List.mem op int_ops || List.mem op int_fns || op = "not"
          || op = "&&" || op = "||"
      | Some (Ldot (Lident m, "length")) -> List.mem m length_fns
      | Some (Ldot (Lident ("Int" | "Char" | "Bool"), _)) -> true
      | _ -> false
    end
  | Pexp_constraint
      ( _,
        {
          ptyp_desc =
            Ptyp_constr ({ txt = Lident ("int" | "char" | "bool"); _ }, []);
          _;
        } ) ->
      true
  | Pexp_open (_, e) | Pexp_sequence (_, e) -> known_immediate e
  | Pexp_ifthenelse (_, a, Some b) -> known_immediate a || known_immediate b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rule engine                                                          *)

type state = {
  path : string;
  cls : file_class;
  mutable findings : finding list;
  (* Some bound-names <=> inside a function literal passed to a
     parallel runner; the set over-approximates the names bound inside
     the closure (parameters, lets, for indices, match patterns). *)
  mutable job_locals : (string, unit) Hashtbl.t option;
}

let report st ~loc ~code ?(context = []) message =
  let pos = loc.Location.loc_start in
  st.findings <-
    {
      code;
      severity = severity_of code;
      file = st.path;
      line = pos.Lexing.pos_lnum;
      col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
      message;
      context;
    }
    :: st.findings

let expr_excerpt (e : expression) =
  (* short head description for diagnostics *)
  match ident_path e with
  | Some lid -> String.concat "." (Longident.flatten lid)
  | None -> (
      match e.pexp_desc with
      | Pexp_constant (Pconst_float (s, _)) -> s
      | Pexp_constant (Pconst_integer (s, _)) -> s
      | _ -> "<expr>")

let eq_like = [ "="; "<>" ]
let poly_cmp_fns = [ "compare"; "min"; "max" ]

let print_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_int"; "prerr_float";
    "prerr_char";
  ]

let format_print_fns =
  [ "printf"; "eprintf"; "print_string"; "print_newline"; "print_flush" ]

(* names bound by a pattern, added to [acc] *)
let rec pattern_names acc (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Hashtbl.replace acc txt ()
  | Ppat_alias (p, { txt; _ }) ->
      Hashtbl.replace acc txt ();
      pattern_names acc p
  | Ppat_tuple ps -> List.iter (pattern_names acc) ps
  | Ppat_construct (_, Some (_, p)) -> pattern_names acc p
  | Ppat_variant (_, Some p) -> pattern_names acc p
  | Ppat_record (fields, _) ->
      List.iter (fun (_, p) -> pattern_names acc p) fields
  | Ppat_array ps -> List.iter (pattern_names acc) ps
  | Ppat_or (a, b) ->
      pattern_names acc a;
      pattern_names acc b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p)
  | Ppat_exception p ->
      pattern_names acc p
  | _ -> ()

(* the head variable of an lvalue-ish expression: [x], [x.f], [!x] *)
let rec head_name (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident n; _ } -> Some n
  | Pexp_field (e, _) -> head_name e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "!"; _ }; _ }, [ (_, e) ])
    ->
      head_name e
  | _ -> None

(* variable-like free identifiers (operators like [-] are global and
   irrelevant to the range-disjointness argument) *)
let free_names (e : expression) =
  let acc = Hashtbl.create 8 in
  let variable_like n =
    n <> "" && (n.[0] = '_' || (Char.lowercase_ascii n.[0] >= 'a' && Char.lowercase_ascii n.[0] <= 'z'))
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Lident n; _ } when variable_like n ->
              Hashtbl.replace acc n ()
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  Hashtbl.fold (fun k () l -> k :: l) acc []

(* Calls that hand closures to the domain pool. Matched by name so the
   rule survives aliasing like [let run = Pool.run]: any application of
   [run] / [parallel_for] / [map_array] / [for_ranges] (bare or
   module-qualified) whose trailing argument is a function literal. *)
let parallel_runners = [ "run"; "parallel_for"; "map_array"; "for_ranges" ]

let is_parallel_runner (f : expression) =
  match ident_path f with
  | Some (Lident n) -> List.mem n parallel_runners
  | Some (Ldot (_, n)) -> List.mem n parallel_runners
  | _ -> false

let local st name =
  match st.job_locals with
  | None -> true (* not in a job: everything is "local" for SRC005 *)
  | Some tbl -> Hashtbl.mem tbl name

let mark_local st name =
  match st.job_locals with
  | None -> ()
  | Some tbl -> Hashtbl.replace tbl name ()

(* SRC005 body: flag writes inside a parallel job that can race. An
   array store is accepted when the index mentions only names bound
   inside the job (the range-disjoint convention: each job writes its
   own slice); everything funneled through Atomic.* is an application
   and never matches these shapes. *)
let check_job_write st (e : expression) =
  if st.job_locals <> None && st.cls.parallel_host then begin
    let flag ~what target =
      report st ~loc:e.pexp_loc ~code:"SRC005"
        ~context:[ ("write", what); ("target", target) ]
        (Printf.sprintf
           "%s to shared %s inside a parallel job: use Atomic or write a \
            job-private range" what target)
    in
    match e.pexp_desc with
    | Pexp_setfield (obj, field, _) -> begin
        match head_name obj with
        | Some n when local st n -> ()
        | _ ->
            flag ~what:"field mutation"
              (Printf.sprintf "%s.%s" (expr_excerpt obj)
                 (String.concat "." (Longident.flatten field.txt)))
      end
    | Pexp_apply (f, args) -> begin
        match (ident_path f, args) with
        | Some (Lident ":="), (_, lhs) :: _ -> begin
            match head_name lhs with
            | Some n when local st n -> ()
            | _ -> flag ~what:"ref assignment" (expr_excerpt lhs)
          end
        | Some (Lident ("incr" | "decr")), (_, lhs) :: _ -> begin
            match head_name lhs with
            | Some n when local st n -> ()
            | _ -> flag ~what:"ref increment" (expr_excerpt lhs)
          end
        | Some (Ldot (Lident ("Array" | "Bytes" | "Float"), set)),
          (_, arr) :: (_, idx) :: _
          when set = "set" || set = "unsafe_set" -> begin
            match head_name arr with
            | Some n when local st n -> ()
            | _ ->
                let idx_names = free_names idx in
                let disjoint =
                  idx_names <> [] && List.for_all (local st) idx_names
                in
                if not disjoint then
                  flag ~what:"array store" (expr_excerpt arr)
          end
        | _ -> ()
      end
    | _ -> ()
  end

(* Ident-position checks (SRC003, SRC006) that apply to a name whether
   it stands alone or heads an application — the traversal does not
   re-visit applied heads, so these are called explicitly for both. *)
let check_ident_uses st (e : expression) =
  let loc = e.pexp_loc in
  (* SRC003: unsafe escapes *)
  (match ident_path e with
  | Some (Ldot (Lident "Obj", ("magic" | "repr" | "obj"))) ->
      report st ~loc ~code:"SRC003"
        ~context:[ ("ident", expr_excerpt e) ]
        "Obj.magic-style cast defeats the type system"
  | Some (Ldot (_, n))
    when String.length n > 7 && String.sub n 0 7 = "unsafe_" ->
      report st ~loc ~code:"SRC003"
        ~context:[ ("ident", expr_excerpt e) ]
        (Printf.sprintf "unchecked access %s skips bounds checking"
           (expr_excerpt e))
  | _ -> ());
  (* SRC006: terminal output from library code *)
  if st.cls.library then
    match ident_path e with
    | Some (Lident n) when List.mem n print_idents ->
        report st ~loc ~code:"SRC006"
          ~context:[ ("ident", n) ]
          (Printf.sprintf
             "`%s` writes to the terminal from library code; emit through \
              a sink or formatter argument instead"
             n)
    | Some (Ldot (Lident (("Printf" | "Format") as m), fn))
      when List.mem fn format_print_fns ->
        report st ~loc ~code:"SRC006"
          ~context:[ ("ident", m ^ "." ^ fn) ]
          (Printf.sprintf
             "`%s.%s` writes to std channels from library code; emit \
              through a sink or take a formatter"
             m fn)
    | _ -> ()

let check_expr st (e : expression) =
  let loc = e.pexp_loc in
  check_ident_uses st e;
  (* SRC002 (hot modules): bare polymorphic compare passed as a value is
     caught here; applied forms are handled below with operand guesses. *)
  (match e.pexp_desc with
  | Pexp_apply (f, ((_, a) :: _ as args)) -> begin
      let b_opt =
        match args with _ :: (_, b) :: _ -> Some b | _ -> None
      in
      let op_name =
        match ident_path f with
        | Some (Lident n) -> Some n
        | Some (Ldot (Lident "Stdlib", n)) -> Some n
        | _ -> None
      in
      match op_name with
      | Some op when List.mem op eq_like || List.mem op poly_cmp_fns ->
          let operands =
            a :: (match b_opt with Some b -> [ b ] | None -> [])
          in
          let n_args = List.length args in
          if List.exists known_float operands && op <> "min" && op <> "max"
          then
            report st ~loc ~code:"SRC001"
              ~context:
                [
                  ("op", op);
                  ("lhs", expr_excerpt a);
                  (match b_opt with
                  | Some b -> ("rhs", expr_excerpt b)
                  | None -> ("rhs", "<partial>"));
                ]
              (Printf.sprintf
                 "float %s `%s` is exact-bit comparison; use a tolerance, \
                  or suppress if this is a sentinel check"
                 (if op = "compare" then "ordering" else "equality")
                 op)
          else if
            st.cls.hot && n_args >= 2
            && not (List.exists known_immediate operands)
            && not (List.exists known_float operands)
          then
            report st ~loc ~code:"SRC002"
              ~context:[ ("op", op); ("lhs", expr_excerpt a) ]
              (Printf.sprintf
                 "polymorphic `%s` in a hot-path module walks the structure \
                  and cannot be unboxed; use a monomorphic comparison"
                 op)
      | _ -> ()
    end
  | Pexp_ident { txt = Lident "compare"; _ } when st.cls.hot ->
      report st ~loc ~code:"SRC002"
        ~context:[ ("op", "compare") ]
        "polymorphic `compare` passed as a value in a hot-path module; \
         use a monomorphic comparison function"
  | _ -> ());
  (* SRC004: exception-swallowing handlers *)
  (match e.pexp_desc with
  | Pexp_try (_, cases) ->
      List.iter
        (fun case ->
          let rec has_wildcard (p : pattern) =
            match p.ppat_desc with
            | Ppat_any -> true
            | Ppat_alias (p, _) -> has_wildcard p
            | Ppat_or (a, b) -> has_wildcard a || has_wildcard b
            | _ -> false
          in
          if case.pc_guard = None && has_wildcard case.pc_lhs then
            report st ~loc:case.pc_lhs.ppat_loc ~code:"SRC004"
              "catch-all `with _ ->` swallows every exception (including \
               Out_of_memory and Stack_overflow); match specific exceptions")
        cases
  | _ -> ());
  (* SRC005: racy writes inside parallel jobs *)
  check_job_write st e

(* ------------------------------------------------------------------ *)
(* Traversal                                                            *)

let iterator st =
  let default = Ast_iterator.default_iterator in
  let enter_binding_names (e : expression) =
    (* record names bound inside a job closure as we descend *)
    match e.pexp_desc with
    | Pexp_fun (_, _, p, _) ->
        Option.iter (fun tbl -> pattern_names tbl p) st.job_locals
    | Pexp_let (_, vbs, _) ->
        Option.iter
          (fun tbl -> List.iter (fun vb -> pattern_names tbl vb.pvb_pat) vbs)
          st.job_locals
    | Pexp_for ({ ppat_desc = Ppat_var { txt; _ }; _ }, _, _, _, _) ->
        mark_local st txt
    | Pexp_match (_, cases) | Pexp_function cases ->
        Option.iter
          (fun tbl ->
            List.iter (fun case -> pattern_names tbl case.pc_lhs) cases)
          st.job_locals
    | _ -> ()
  in
  let rec expr it (e : expression) =
    check_expr st e;
    enter_binding_names e;
    match e.pexp_desc with
    | Pexp_apply (f, args) when is_parallel_runner f -> begin
        (* descend into non-closure arguments in the enclosing scope,
           then into the trailing function literal as a parallel job *)
        expr it f;
        let rec is_fun (a : expression) =
          match a.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> true
          | Pexp_open (_, e) | Pexp_constraint (e, _) -> is_fun e
          | _ -> false
        in
        List.iter
          (fun (_, (a : expression)) ->
            if is_fun a then begin
              let saved = st.job_locals in
              let tbl =
                match saved with
                | Some tbl -> Hashtbl.copy tbl
                | None -> Hashtbl.create 16
              in
              st.job_locals <- Some tbl;
              expr it a;
              st.job_locals <- saved
            end
            else expr it a)
          args
      end
    | Pexp_apply (({ pexp_desc = Pexp_ident _; _ } as f), args) ->
        (* the applied head's comparison judgement happened as part of
           this node; re-visiting it would double-report bare-`compare`.
           Its ident-position rules still apply. *)
        check_ident_uses st f;
        List.iter (fun (_, a) -> expr it a) args
    | _ -> default.expr it e
  in
  { default with expr }

(* ------------------------------------------------------------------ *)
(* Staged pipeline

   Parsing runs sequentially (the compiler-libs lexer keeps global
   state), but the per-file syntactic pass is a pure function of the
   parsetree, so callers may fan [analyze_parsed] out across a domain
   pool. The interprocedural pass (Cfg + Callgraph + Lockcheck) then
   runs once over every implementation in the program. *)

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

type parsed = {
  p_path : string;
  p_contents : string;
  p_ast : ast option;  (* None: did not parse; see p_parse_findings *)
  p_parse_findings : finding list;
}

let parse_source ~path contents =
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf path;
  let error loc context =
    let pos = loc.Location.loc_start in
    {
      p_path = path;
      p_contents = contents;
      p_ast = None;
      p_parse_findings =
        [
          {
            code = "SRC090";
            severity = severity_of "SRC090";
            file = path;
            line = pos.Lexing.pos_lnum;
            col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
            message = "file does not parse";
            context;
          };
        ];
    }
  in
  try
    let ast =
      if Filename.check_suffix path ".mli" then
        Intf (Parse.interface lexbuf)
      else Impl (Parse.implementation lexbuf)
    in
    { p_path = path; p_contents = contents; p_ast = Some ast;
      p_parse_findings = [] }
  with
  | Syntaxerr.Error err -> error (Syntaxerr.location_of_error err) []
  | exn -> error Location.none [ ("exn", Printexc.to_string exn) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_files paths =
  List.map (fun path -> parse_source ~path (read_file path)) paths

let apply_suppressions ~contents findings =
  let suppressions = Suppress.scan contents in
  List.filter
    (fun f ->
      not (Suppress.suppressed suppressions ~code:f.code ~line:f.line))
    findings

let analyze_parsed p =
  let st =
    { path = p.p_path; cls = classify p.p_path; findings = [];
      job_locals = None }
  in
  (match p.p_ast with
  | Some (Impl str) ->
      let it = iterator st in
      it.structure it str
  | Some (Intf sg) ->
      let it = iterator st in
      it.signature it sg
  | None -> ());
  apply_suppressions ~contents:p.p_contents
    (List.sort compare_finding (p.p_parse_findings @ st.findings))

let interprocedural ?(extra_blocking = []) parsed =
  let impls =
    List.filter_map
      (fun p ->
        match p.p_ast with
        | Some (Impl str) -> Some (p, str)
        | _ -> None)
      parsed
  in
  let all_wrappers =
    List.concat_map
      (fun (p, str) ->
        let module_name = Cfg.module_of_path p.p_path in
        (Cfg.scan_module ~module_name str).Cfg.wrappers)
      impls
  in
  let cfgs =
    List.concat_map
      (fun (p, str) ->
        snd (Cfg.build ~file:p.p_path ~all_wrappers str))
      impls
  in
  let contents_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun p -> Hashtbl.replace tbl p.p_path p.p_contents) parsed;
    fun path -> Hashtbl.find_opt tbl path
  in
  Lockcheck.check ~frontier:(Callgraph.default_blocking @ extra_blocking) cfgs
  |> List.map (fun (f : Lockcheck.finding) ->
         {
           code = f.Lockcheck.code;
           severity = severity_of f.Lockcheck.code;
           file = f.Lockcheck.file;
           line = f.Lockcheck.line;
           col = f.Lockcheck.col;
           message = f.Lockcheck.message;
           context = f.Lockcheck.context;
         })
  |> List.filter (fun f ->
         match contents_of f.file with
         | Some contents -> begin
             match apply_suppressions ~contents [ f ] with
             | [] -> false
             | _ -> true
           end
         | None -> true)
  |> List.sort compare_finding

let absint ?fuel parsed =
  let impls =
    List.filter_map
      (fun p ->
        match p.p_ast with
        | Some (Impl str) -> Some (p.p_path, (classify p.p_path).hot, str)
        | _ -> None)
      parsed
  in
  let raw, stats = Absint.analyze ?fuel impls in
  let contents_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun p -> Hashtbl.replace tbl p.p_path p.p_contents) parsed;
    fun path -> Hashtbl.find_opt tbl path
  in
  let findings =
    raw
    |> List.map (fun (f : Absint.finding) ->
           {
             code = f.Absint.af_code;
             severity = severity_of f.Absint.af_code;
             file = f.Absint.af_file;
             line = f.Absint.af_line;
             col = f.Absint.af_col;
             message = f.Absint.af_message;
             context = f.Absint.af_context;
           })
    |> List.filter (fun f ->
           match contents_of f.file with
           | Some contents -> begin
               match apply_suppressions ~contents [ f ] with
               | [] -> false
               | _ -> true
             end
           | None -> true)
    |> List.sort compare_finding
  in
  (findings, stats)

let lint_parsed ?extra_blocking parsed =
  List.sort compare_finding
    (List.concat_map analyze_parsed parsed
    @ interprocedural ?extra_blocking parsed
    @ fst (absint parsed))

let lint_source ~path contents =
  lint_parsed [ parse_source ~path contents ]

let lint_file path = lint_source ~path (read_file path)

(* ------------------------------------------------------------------ *)
(* Discovery                                                            *)

let skip_dirs = [ "_build"; "fixtures"; "figures"; "related"; "node_modules" ]

let discover paths =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then begin
      let base = Filename.basename path in
      if
        (not (List.mem base skip_dirs))
        && not (String.length base > 1 && base.[0] = '.')
      then
        Array.iter
          (fun entry -> walk (Filename.concat path entry))
          (let entries = Sys.readdir path in
           Array.sort compare entries;
           entries)
    end
    else if
      Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then acc := path :: !acc
  in
  List.iter
    (fun p -> if Sys.file_exists p then walk p)
    paths;
  List.rev !acc

let lint_paths ?extra_blocking paths =
  lint_parsed ?extra_blocking (parse_files (discover paths))
