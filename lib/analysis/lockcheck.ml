(* Forward lock-set dataflow on the per-function CFGs, propagated one
   level through the call graph.

   The analysis is a may-analysis with union merge: a lock in a node's
   in-set means some path reaches the node with the lock held. That is
   exactly the right polarity for every rule here — a lock held at
   [Exit]/[Exn_exit] on some path is a leak (SRC010), a blocking call
   possibly under a lock is a stall (SRC011), and so on. Locks are
   syntactic names, so the usual caveats apply (DESIGN.md §9): aliased
   mutexes, first-class functions and calls deeper than one level are
   outside the model. *)

module S = Set.Make (String)

type finding = {
  code : string;
  file : string;
  line : int;
  col : int;
  message : string;
  context : (string * string) list;
}

type analyzed = {
  cfg : Cfg.t;
  ins : S.t array;  (* in-set per node id *)
  reached : bool array;
}

let analyze (cfg : Cfg.t) =
  let n = Array.length cfg.Cfg.nodes in
  let ins = Array.make n S.empty in
  let reached = Array.make n false in
  let transfer i s =
    match cfg.Cfg.nodes.(i).Cfg.event with
    | Cfg.Lock l -> S.add l s
    | Cfg.Unlock l -> S.remove l s
    | _ -> s
  in
  let queue = Queue.create () in
  reached.(0) <- true;
  Queue.add 0 queue;
  while not (Queue.is_empty queue) do
    let i = Queue.take queue in
    let out = transfer i ins.(i) in
    List.iter
      (fun (succ, _) ->
        let updated = S.union ins.(succ) out in
        if (not reached.(succ)) || not (S.equal updated ins.(succ)) then begin
          ins.(succ) <- (if reached.(succ) then updated else out);
          reached.(succ) <- true;
          Queue.add succ queue
        end)
      cfg.Cfg.succs.(i)
  done;
  { cfg; ins; reached }

(* one-level summary of a function, computed from its own dataflow *)
type summary = {
  blocking : (string * Cfg.node) list;  (* blocking calls it contains *)
  acquires : Cfg.lock list;
  unguarded_writes : (string * Cfg.node) list;
}

let summarize ~frontier a =
  let blocking = ref [] and acquires = ref [] and writes = ref [] in
  Array.iteri
    (fun i (node : Cfg.node) ->
      if a.reached.(i) then
        match node.Cfg.event with
        | Cfg.Call callee when Callgraph.is_blocking ~frontier callee ->
            blocking := (callee, node) :: !blocking
        | Cfg.Cond_wait _ -> blocking := ("Condition.wait", node) :: !blocking
        | Cfg.Lock l -> acquires := l :: !acquires
        | Cfg.Write { target; _ } when S.is_empty a.ins.(i) ->
            writes := (target, node) :: !writes
        | _ -> ())
    a.cfg.Cfg.nodes;
  {
    blocking = List.rev !blocking;
    acquires = List.sort_uniq compare !acquires;
    unguarded_writes = List.rev !writes;
  }

let module_of_name name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let finding ~(cfg : Cfg.t) ~(node : Cfg.node) ~code ?(context = []) message =
  {
    code;
    file = cfg.Cfg.file;
    line = node.Cfg.line;
    col = node.Cfg.col;
    message;
    context = ("function", cfg.Cfg.name) :: context;
  }

(* ------------------------------------------------------------------ *)
(* Lock-order graph and cycle detection (SRC012) *)

type order_edge = {
  held : Cfg.lock;
  acquired : Cfg.lock;
  o_file : string;
  o_line : int;
  o_col : int;
  o_fn : string;
}

(* Tarjan SCC over the lock graph; every SCC with >1 lock (or a
   self-loop) is a deadlock-capable cycle. *)
let cycles edges =
  let succ = Hashtbl.create 16 in
  let locks = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace locks e.held ();
      Hashtbl.replace locks e.acquired ();
      Hashtbl.replace succ e.held
        (e.acquired
        :: Option.value ~default:[] (Hashtbl.find_opt succ e.held)))
    edges;
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Option.value ~default:[] (Hashtbl.find_opt succ v));
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  Hashtbl.iter (fun v () -> if not (Hashtbl.mem index v) then strongconnect v)
    locks;
  let self_loop v =
    List.mem v (Option.value ~default:[] (Hashtbl.find_opt succ v))
  in
  List.filter
    (fun scc -> List.length scc > 1 || List.exists self_loop scc)
    !sccs
  |> List.map (List.sort compare)

(* ------------------------------------------------------------------ *)
(* Check *)

let check ?(frontier = Callgraph.default_blocking) cfgs =
  let analyzed = List.map analyze cfgs in
  let cg = Callgraph.build cfgs in
  let summaries = Hashtbl.create 64 in
  List.iter
    (fun a ->
      Hashtbl.replace summaries a.cfg.Cfg.name (summarize ~frontier a))
    analyzed;
  let summary_of (cfg : Cfg.t) = Hashtbl.find_opt summaries cfg.Cfg.name in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let order_edges = ref [] in
  let add_order_edges (cfg : Cfg.t) (node : Cfg.node) held acquired_locks =
    S.iter
      (fun h ->
        List.iter
          (fun acq ->
            if h <> acq then
              order_edges :=
                {
                  held = h;
                  acquired = acq;
                  o_file = cfg.Cfg.file;
                  o_line = node.Cfg.line;
                  o_col = node.Cfg.col;
                  o_fn = cfg.Cfg.name;
                }
                :: !order_edges)
          acquired_locks)
      held
  in
  List.iter
    (fun a ->
      let cfg = a.cfg in
      let current_module = module_of_name cfg.Cfg.name in
      (* --- SRC010: lock held at Exit / Exn_exit on some path --- *)
      let leaked = Hashtbl.create 4 in
      Array.iteri
        (fun i (node : Cfg.node) ->
          if a.reached.(i) then
            match node.Cfg.event with
            | Cfg.Exit | Cfg.Exn_exit ->
                S.iter
                  (fun l ->
                    let via_exn = node.Cfg.event = Cfg.Exn_exit in
                    match Hashtbl.find_opt leaked l with
                    | Some prior_exn ->
                        Hashtbl.replace leaked l (prior_exn || via_exn)
                    | None -> Hashtbl.replace leaked l via_exn)
                  a.ins.(i)
            | _ -> ())
        cfg.Cfg.nodes;
      Hashtbl.iter
        (fun l via_exn ->
          (* report at the acquisition site *)
          let lock_node =
            Array.fold_left
              (fun acc (n : Cfg.node) ->
                match acc with
                | Some _ -> acc
                | None ->
                    if n.Cfg.event = Cfg.Lock l && a.reached.(n.Cfg.id) then
                      Some n
                    else None)
              None cfg.Cfg.nodes
          in
          match lock_node with
          | Some node ->
              emit
                (finding ~cfg ~node ~code:"SRC010"
                   ~context:[ ("lock", l) ]
                   (Printf.sprintf
                      "%s is not released on %s path out of %s; wrap the \
                       critical section in Mutex.protect (or Fun.protect \
                       ~finally)"
                      l
                      (if via_exn then "an exception" else "some")
                      cfg.Cfg.name))
          | None -> ())
        leaked;
      (* --- per-node rules --- *)
      Array.iteri
        (fun i (node : Cfg.node) ->
          if a.reached.(i) then
            let held = a.ins.(i) in
            match node.Cfg.event with
            | Cfg.Call callee ->
                let resolved =
                  Callgraph.resolve cg ~current_module callee
                in
                (* SRC011: blocking while a mutex is held *)
                if not (S.is_empty held) then begin
                  if Callgraph.is_blocking ~frontier callee then
                    emit
                      (finding ~cfg ~node ~code:"SRC011"
                         ~context:
                           [ ("callee", callee);
                             ("held", String.concat " " (S.elements held)) ]
                         (Printf.sprintf
                            "blocking call %s while holding %s; move it \
                             outside the critical section"
                            callee
                            (String.concat ", " (S.elements held))))
                  else
                    match Option.bind resolved summary_of with
                    | Some s when s.blocking <> [] ->
                        let via, _ = List.hd s.blocking in
                        emit
                          (finding ~cfg ~node ~code:"SRC011"
                             ~context:
                               [ ("callee", callee); ("via", via);
                                 ("held",
                                  String.concat " " (S.elements held)) ]
                             (Printf.sprintf
                                "call to %s may block (it reaches %s) while \
                                 holding %s; move it outside the critical \
                                 section"
                                callee via
                                (String.concat ", " (S.elements held))))
                    | _ -> ()
                end;
                (* SRC012 edges via one-level callee acquisitions *)
                if not (S.is_empty held) then begin
                  match Option.bind resolved summary_of with
                  | Some s when s.acquires <> [] ->
                      add_order_edges cfg node held s.acquires
                  | _ -> ()
                end;
                (* SRC013 one level into the callee from a thread root *)
                if
                  cfg.Cfg.is_thread_root && S.is_empty held
                then begin
                  match Option.bind resolved summary_of with
                  | Some s when s.unguarded_writes <> [] ->
                      let target, _ = List.hd s.unguarded_writes in
                      emit
                        (finding ~cfg ~node ~code:"SRC013"
                           ~context:
                             [ ("callee", callee); ("target", target) ]
                           (Printf.sprintf
                              "thread entry calls %s, which writes \
                               module-level mutable state (%s) without an \
                               Atomic or a held lock"
                              callee target))
                  | _ -> ()
                end
            | Cfg.Lock l -> add_order_edges cfg node held [ l ]
            | Cfg.Cond_wait { cond; mutex; looped } ->
                (* SRC011: waiting releases only its own mutex *)
                let other =
                  match mutex with
                  | Some m -> S.remove m held
                  | None -> held
                in
                if not (S.is_empty other) then
                  emit
                    (finding ~cfg ~node ~code:"SRC011"
                       ~context:
                         [ ("callee", "Condition.wait");
                           ("held", String.concat " " (S.elements other)) ]
                       (Printf.sprintf
                          "Condition.wait on %s releases only its own \
                           mutex; %s stays held while blocked"
                          cond
                          (String.concat ", " (S.elements other))));
                (* SRC014: wait must sit in a re-check loop *)
                if not looped then
                  emit
                    (finding ~cfg ~node ~code:"SRC014"
                       ~context:[ ("cond", cond) ]
                       (Printf.sprintf
                          "Condition.wait on %s is not wrapped in a \
                           re-check loop; spurious wakeups make the \
                           predicate unreliable — use `while not P do \
                           Condition.wait c m done`"
                          cond))
            | Cfg.Cond_notify { cond; kind } ->
                (* SRC014: notify without the associated mutex held *)
                if S.is_empty held then
                  emit
                    (finding ~cfg ~node ~code:"SRC014"
                       ~context:[ ("cond", cond) ]
                       (Printf.sprintf
                          "Condition.%s on %s without the associated mutex \
                           held; a waiter can miss the wakeup between its \
                           predicate check and its wait"
                          (match kind with
                          | Cfg.Signal -> "signal"
                          | Cfg.Broadcast -> "broadcast")
                          cond))
            | Cfg.Write { target; what } ->
                (* SRC013: unguarded shared write on a handler/pool thread *)
                if cfg.Cfg.is_thread_root && S.is_empty held then
                  emit
                    (finding ~cfg ~node ~code:"SRC013"
                       ~context:[ ("target", target); ("write", what) ]
                       (Printf.sprintf
                          "%s to module-level mutable state %s from a \
                           thread closure without an Atomic or a held \
                           lock"
                          what target))
            | _ -> ())
        cfg.Cfg.nodes)
    analyzed;
  (* --- SRC012: cycles in the program-wide acquisition order graph --- *)
  let edges = !order_edges in
  List.iter
    (fun cycle_locks ->
      let in_cycle l = List.mem l cycle_locks in
      let witness =
        List.filter (fun e -> in_cycle e.held && in_cycle e.acquired) edges
        |> List.sort (fun a b ->
               match compare a.o_file b.o_file with
               | 0 -> compare a.o_line b.o_line
               | c -> c)
      in
      match witness with
      | e :: _ ->
          emit
            {
              code = "SRC012";
              file = e.o_file;
              line = e.o_line;
              col = e.o_col;
              message =
                Printf.sprintf
                  "lock-order cycle between %s: these mutexes are acquired \
                   in conflicting orders across the program, so two \
                   threads can deadlock"
                  (String.concat ", " cycle_locks);
              context =
                [ ("function", e.o_fn);
                  ("cycle", String.concat " " cycle_locks) ];
            }
      | [] -> ())
    (cycles edges);
  !findings
