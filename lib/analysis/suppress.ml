(* Inline suppressions: [(* mrm:ignore SRC001 SRC004 — reason *)].

   The parsetree drops comments, so suppressions are recovered from the
   raw text with a line scan — robust against any parse state, and the
   marker is specific enough that false positives are not a concern.
   A suppression applies to findings on its own line; when the comment
   is the first thing on its line it also covers the next line (the
   standalone-comment-above-the-expression idiom). *)

type t = {
  line : int;  (** 1-based line the comment starts on *)
  end_line : int;  (** 1-based line the comment closes on *)
  target : int;
      (** 1-based line a standalone comment covers: the first
          non-blank line after it closes (equals [end_line + 1] when
          the code follows directly) *)
  codes : string list;  (** empty = suppress every code *)
  standalone : bool;  (** nothing but whitespace before the comment *)
  reason : string option;
}

let marker = "mrm:ignore"

let is_space c = c = ' ' || c = '\t'

(* The code list runs from the marker to the first dash (any of "-",
   en/em dash in UTF-8) or the end of the comment; the reason is what
   follows the dash. Codes are SRC/RACE-style tokens: uppercase letters
   followed by digits. *)
let parse_tail tail =
  let tail =
    match String.index_opt tail '*' with
    | Some i when i + 1 < String.length tail && tail.[i + 1] = ')' ->
        String.sub tail 0 i
    | _ -> tail
  in
  let dash_at i =
    let c = tail.[i] in
    if c = '-' then Some 1
    else if
      (* UTF-8 en dash e2 80 93 / em dash e2 80 94 *)
      Char.code c = 0xe2
      && i + 2 < String.length tail
      && Char.code tail.[i + 1] = 0x80
      && (Char.code tail.[i + 2] = 0x93 || Char.code tail.[i + 2] = 0x94)
    then Some 3
    else None
  in
  let n = String.length tail in
  let rec split i =
    if i >= n then (tail, None)
    else
      match dash_at i with
      | Some width ->
          let reason = String.trim (String.sub tail (i + width) (n - i - width)) in
          (String.sub tail 0 i, if reason = "" then None else Some reason)
      | None -> split (i + 1)
  in
  let code_part, reason = split 0 in
  let codes =
    String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) code_part)
    |> List.filter_map (fun tok ->
           let tok = String.trim tok in
           let is_code =
             tok <> ""
             && String.length tok >= 2
             && String.for_all
                  (fun c ->
                    (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
                  tok
             && tok.[0] >= 'A'
             && tok.[0] <= 'Z'
             && String.exists (fun c -> c >= '0' && c <= '9') tok
           in
           if is_code then Some tok else None)
  in
  (codes, reason)

let contains_close line from =
  let n = String.length line in
  let rec go i =
    if i + 1 >= n then false
    else if line.[i] = '*' && line.[i + 1] = ')' then true
    else go (i + 1)
  in
  go from

let scan text =
  let lines = String.split_on_char '\n' text in
  let line_arr = Array.of_list lines in
  (* the 0-based line on which a comment whose marker sits at
     [(k, from)] closes; unterminated comments close where they start *)
  let close_line k from =
    if contains_close line_arr.(k) from then k
    else begin
      let n = Array.length line_arr in
      let rec go j =
        if j >= n then k
        else if contains_close line_arr.(j) 0 then j
        else go (j + 1)
      in
      go (k + 1)
    end
  in
  List.concat
    (List.mapi
       (fun k line ->
         (* find every marker occurrence on the line *)
         let rec find acc from =
           if from + String.length marker > String.length line then acc
           else
             match String.index_from_opt line from 'm' with
             | None -> acc
             | Some i ->
                 if
                   i + String.length marker <= String.length line
                   && String.sub line i (String.length marker) = marker
                 then find (i :: acc) (i + String.length marker)
                 else find acc (i + 1)
         in
         match find [] 0 with
         | [] -> []
         | occurrences ->
             List.rev_map
               (fun i ->
                 let tail_start = i + String.length marker in
                 let tail =
                   String.sub line tail_start (String.length line - tail_start)
                 in
                 let codes, reason = parse_tail tail in
                 let before = String.sub line 0 i in
                 let standalone =
                   (* only whitespace and the comment opener precede *)
                   String.for_all
                     (fun c -> is_space c || c = '(' || c = '*')
                     before
                 in
                 let end_line = close_line k (i + String.length marker) + 1 in
                 (* a standalone comment covers the next line holding
                    anything at all — blank lines in between (a common
                    layout before a guarded definition) do not break
                    the association *)
                 let target =
                   let n = Array.length line_arr in
                   let rec first_code j =
                     if j >= n then n + 1
                     else if String.trim line_arr.(j) = "" then
                       first_code (j + 1)
                     else j + 1
                   in
                   first_code end_line
                 in
                 { line = k + 1; end_line; target; codes; standalone; reason })
               occurrences)
       lines)

let covers s ~code ~line =
  (line = s.line || (s.standalone && line = s.target))
  && (s.codes = [] || List.mem code s.codes)

let suppressed suppressions ~code ~line =
  List.exists (fun s -> covers s ~code ~line) suppressions
