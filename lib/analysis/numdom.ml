(* Numeric abstract domains for Absint. Integer interval bounds are
   symbolic linear expressions so that range-kernel proofs stay exact
   under arithmetic on the party's [lo]/[hi] symbols:
   [lo + (hi - lo) = hi] must cancel, or [Array.blit src lo dst lo
   (hi - lo)] could never be proven in-range. Floats are plain
   interval endpoints plus three bits (nonzero / may-NaN / evidenced)
   feeding SRC021-SRC024. *)

(* ------------------------------------------------------------------ *)
(* Linear expressions *)

type lin = { c : int; terms : (int * int) list }

let lin_const c = { c; terms = [] }
let lin_sym s = { c = 0; terms = [ (s, 1) ] }

(* merge two sorted term lists, dropping zero coefficients *)
let rec merge_terms a b =
  match (a, b) with
  | [], t | t, [] -> t
  | (sa, ca) :: ra, (sb, cb) :: rb ->
      if sa < sb then (sa, ca) :: merge_terms ra b
      else if sb < sa then (sb, cb) :: merge_terms a rb
      else
        let c = ca + cb in
        if c = 0 then merge_terms ra rb else (sa, c) :: merge_terms ra rb

let lin_add a b = { c = a.c + b.c; terms = merge_terms a.terms b.terms }

let lin_scale k l =
  if k = 0 then lin_const 0
  else { c = k * l.c; terms = List.map (fun (s, co) -> (s, k * co)) l.terms }

let lin_sub a b = lin_add a (lin_scale (-1) b)
let lin_add_const k l = { l with c = l.c + k }
let lin_is_const l = match l.terms with [] -> Some l.c | _ -> None
let lin_equal a b = a.c = b.c && a.terms = b.terms

let lin_to_string ~names l =
  let term (s, co) =
    if co = 1 then names s
    else if co = -1 then "-" ^ names s
    else Printf.sprintf "%d*%s" co (names s)
  in
  match l.terms with
  | [] -> string_of_int l.c
  | ts ->
      let body = String.concat "+" (List.map term ts) in
      if l.c = 0 then body
      else if l.c > 0 then Printf.sprintf "%s+%d" body l.c
      else Printf.sprintf "%s%d" body l.c

(* Entailment: [l >= 0] given a set of expressions each known [>= 0].
   Each assumption may be subtracted at most once; with the tiny
   assumption sets used at kernel sites this exact search is cheap. *)
let shares_sym a l =
  List.exists (fun (s, _) -> List.mem_assoc s l.terms) a.terms

let rec pick = function
  | [] -> []
  | a :: rest ->
      (a, rest) :: List.map (fun (b, r) -> (b, a :: r)) (pick rest)

let rec lin_nonneg ~assume l =
  (match l.terms with [] -> l.c >= 0 | _ -> false)
  || List.exists
       (fun (a, rest) ->
         shares_sym a l && lin_nonneg ~assume:rest (lin_sub l a))
       (pick assume)

(* ------------------------------------------------------------------ *)
(* Integer intervals *)

type bound = Ninf | Pinf | Lin of lin

type iv = { ilo : bound; ihi : bound; iknown : bool }

let iv_top = { ilo = Ninf; ihi = Pinf; iknown = false }

let iv_const c =
  { ilo = Lin (lin_const c); ihi = Lin (lin_const c); iknown = true }

let iv_of_sym s =
  { ilo = Lin (lin_sym s); ihi = Lin (lin_sym s); iknown = true }

let iv_range lo hi = { ilo = lo; ihi = hi; iknown = true }

let bound_add_const k = function
  | Ninf -> Ninf
  | Pinf -> Pinf
  | Lin l -> Lin (lin_add_const k l)

let bound_neg = function Ninf -> Pinf | Pinf -> Ninf | Lin l -> Lin (lin_scale (-1) l)

let bound_le ~assume a b =
  match (a, b) with
  | Ninf, _ | _, Pinf -> true
  | Pinf, x -> x = Pinf
  | x, Ninf -> x = Ninf
  | Lin x, Lin y -> lin_nonneg ~assume (lin_sub y x)

(* lower-bound addition: anything involving Ninf is Ninf *)
let add_lo a b =
  match (a, b) with
  | Ninf, _ | _, Ninf -> Ninf
  | Pinf, _ | _, Pinf -> Pinf
  | Lin x, Lin y -> Lin (lin_add x y)

let add_hi a b =
  match (a, b) with
  | Pinf, _ | _, Pinf -> Pinf
  | Ninf, _ | _, Ninf -> Ninf
  | Lin x, Lin y -> Lin (lin_add x y)

let iv_add a b =
  { ilo = add_lo a.ilo b.ilo;
    ihi = add_hi a.ihi b.ihi;
    iknown = a.iknown && b.iknown }

let iv_neg a = { ilo = bound_neg a.ihi; ihi = bound_neg a.ilo; iknown = a.iknown }
let iv_sub a b = iv_add a (iv_neg b)

let bound_scale k = function
  | Lin l -> Lin (lin_scale k l)
  | b -> if k >= 0 then b else bound_neg b

let iv_point a =
  match (a.ilo, a.ihi) with
  | Lin x, Lin y when lin_equal x y -> lin_is_const x
  | _ -> None

let iv_mul a b =
  let known = a.iknown && b.iknown in
  let scale k v =
    if k = 0 then { (iv_const 0) with iknown = known }
    else if k > 0 then
      { ilo = bound_scale k v.ilo; ihi = bound_scale k v.ihi; iknown = known }
    else
      { ilo = bound_scale k v.ihi; ihi = bound_scale k v.ilo; iknown = known }
  in
  match (iv_point a, iv_point b) with
  | Some k, _ -> scale k b
  | _, Some k -> scale k a
  | None, None ->
      let nonneg v = bound_le ~assume:[] (Lin (lin_const 0)) v.ilo in
      if nonneg a && nonneg b then
        { ilo = Lin (lin_const 0); ihi = Pinf; iknown = known }
      else { iv_top with iknown = known }

(* min: the result is <= each argument, so either hi bound is sound;
   the lo bound needs a provable smaller-of-the-two or drops to Ninf. *)
let iv_min a b =
  let ilo =
    if bound_le ~assume:[] a.ilo b.ilo then a.ilo
    else if bound_le ~assume:[] b.ilo a.ilo then b.ilo
    else Ninf
  in
  let ihi = if bound_le ~assume:[] a.ihi b.ihi then a.ihi else b.ihi in
  { ilo; ihi; iknown = a.iknown && b.iknown }

let iv_max a b =
  let ihi =
    if bound_le ~assume:[] a.ihi b.ihi then b.ihi
    else if bound_le ~assume:[] b.ihi a.ihi then a.ihi
    else Pinf
  in
  let ilo = if bound_le ~assume:[] a.ilo b.ilo then b.ilo else a.ilo in
  { ilo; ihi; iknown = a.iknown && b.iknown }

let iv_join a b =
  let ilo =
    if bound_le ~assume:[] a.ilo b.ilo then a.ilo
    else if bound_le ~assume:[] b.ilo a.ilo then b.ilo
    else Ninf
  in
  let ihi =
    if bound_le ~assume:[] b.ihi a.ihi then a.ihi
    else if bound_le ~assume:[] a.ihi b.ihi then b.ihi
    else Pinf
  in
  { ilo; ihi; iknown = a.iknown && b.iknown }

let iv_widen ~old cur =
  { ilo = (if bound_le ~assume:[] old.ilo cur.ilo then old.ilo else Ninf);
    ihi = (if bound_le ~assume:[] cur.ihi old.ihi then old.ihi else Pinf);
    iknown = old.iknown && cur.iknown }

let iv_meet_upper v b =
  if bound_le ~assume:[] b v.ihi then { v with ihi = b } else v

let iv_meet_lower v b =
  if bound_le ~assume:[] v.ilo b then { v with ilo = b } else v

let iv_subset ~assume v ~lo ~hi =
  bound_le ~assume lo v.ilo && bound_le ~assume v.ihi hi

let iv_contains_zero v =
  (not (bound_le ~assume:[] (Lin (lin_const 1)) v.ilo))
  && not (bound_le ~assume:[] v.ihi (Lin (lin_const (-1))))

let bound_to_string ~names = function
  | Ninf -> "-oo"
  | Pinf -> "+oo"
  | Lin l -> lin_to_string ~names l

let iv_to_string ~names v =
  Printf.sprintf "[%s, %s]%s"
    (bound_to_string ~names v.ilo)
    (bound_to_string ~names v.ihi)
    (if v.iknown then "" else "?")

(* ------------------------------------------------------------------ *)
(* Float values *)

type fv = { flo : float; fhi : float; nz : bool; fnan : bool; fknown : bool }

let fv_top =
  { flo = neg_infinity; fhi = infinity; nz = false; fnan = false;
    fknown = false }

let mk ?(nz = false) ~fnan ~fknown flo fhi =
  { flo; fhi; nz = nz || flo > 0. || fhi < 0.; fnan; fknown }

let fv_nan = mk ~fnan:true ~fknown:true neg_infinity infinity

let fv_const x =
  if Float.is_nan x then fv_nan else mk ~fnan:false ~fknown:true x x

let fv_range a b = mk ~fnan:false ~fknown:true a b

let fv_join a b =
  mk ~nz:(a.nz && b.nz) ~fnan:(a.fnan || b.fnan)
    ~fknown:(a.fknown && b.fknown) (Float.min a.flo b.flo)
    (Float.max a.fhi b.fhi)

let fv_widen ~old cur =
  mk ~nz:(old.nz && cur.nz) ~fnan:(old.fnan || cur.fnan)
    ~fknown:(old.fknown && cur.fknown)
    (if cur.flo >= old.flo then old.flo else neg_infinity)
    (if cur.fhi <= old.fhi then old.fhi else infinity)

(* endpoint arithmetic with NaN swallowed toward the conservative side *)
let ep_lo v = if Float.is_nan v then neg_infinity else v
let ep_hi v = if Float.is_nan v then infinity else v

(* Infinite endpoints are exact sentinel values of the lattice, never
   the result of rounding — bit-equality is the intended test. *)
(* mrm:ignore SRC001 — infinite-endpoint sentinel *)
let is_pinf v = v = infinity

(* mrm:ignore SRC001 — infinite-endpoint sentinel *)
let is_ninf v = v = neg_infinity

let may_inf v = is_ninf v.flo || is_pinf v.fhi
let fv_may_zero v = (not v.nz) && v.flo <= 0. && v.fhi >= 0.
let fv_may_nonpos v = v.flo < 0. || (v.flo <= 0. && not v.nz)
let fv_may_neg v = v.flo < 0.

let fv_add a b =
  let fnan =
    a.fnan || b.fnan
    || (a.fknown && b.fknown
        && ((is_pinf a.fhi && is_ninf b.flo)
            || (is_ninf a.flo && is_pinf b.fhi)))
  in
  mk ~fnan ~fknown:(a.fknown && b.fknown) (ep_lo (a.flo +. b.flo))
    (ep_hi (a.fhi +. b.fhi))

let fv_neg a = { a with flo = -.a.fhi; fhi = -.a.flo }
let fv_sub a b = fv_add a (fv_neg b)

let corners op a b =
  let c1 = op a.flo b.flo and c2 = op a.flo b.fhi in
  let c3 = op a.fhi b.flo and c4 = op a.fhi b.fhi in
  if
    Float.is_nan c1 || Float.is_nan c2 || Float.is_nan c3 || Float.is_nan c4
  then (neg_infinity, infinity)
  else
    ( Float.min (Float.min c1 c2) (Float.min c3 c4),
      Float.max (Float.max c1 c2) (Float.max c3 c4) )

let fv_mul a b =
  let fnan =
    a.fnan || b.fnan
    || (a.fknown && b.fknown
        && ((fv_may_zero a && may_inf b) || (may_inf a && fv_may_zero b)))
  in
  let lo, hi = corners ( *. ) a b in
  mk ~nz:(a.nz && b.nz) ~fnan ~fknown:(a.fknown && b.fknown) lo hi

let fv_div a b =
  let fnan =
    a.fnan || b.fnan
    || (a.fknown && b.fknown && fv_may_zero a && fv_may_zero b)
  in
  let fknown = a.fknown && b.fknown in
  if fv_may_zero b then mk ~fnan ~fknown neg_infinity infinity
  else
    let lo, hi = corners ( /. ) a b in
    mk ~fnan ~fknown lo hi

let fv_abs a =
  if a.flo >= 0. then a
  else if a.fhi <= 0. then fv_neg a
  else
    { a with flo = 0.; fhi = Float.max (-.a.flo) a.fhi }

let fv_min a b =
  mk ~fnan:(a.fnan || b.fnan) ~fknown:(a.fknown && b.fknown)
    (Float.min a.flo b.flo) (Float.min a.fhi b.fhi)

let fv_max a b =
  mk ~fnan:(a.fnan || b.fnan) ~fknown:(a.fknown && b.fknown)
    (Float.max a.flo b.flo) (Float.max a.fhi b.fhi)

let fv_sqrt a =
  mk
    ~fnan:(a.fnan || (a.fknown && a.flo < 0.))
    ~fknown:a.fknown
    (sqrt (Float.max a.flo 0.))
    (sqrt (Float.max a.fhi 0.))

let fv_log a =
  let lo = if a.flo <= 0. then neg_infinity else log a.flo in
  let hi = if a.fhi <= 0. then neg_infinity else log a.fhi in
  mk ~fnan:(a.fnan || (a.fknown && a.flo < 0.)) ~fknown:a.fknown lo hi

let fv_exp a =
  mk
    ~nz:(a.flo > neg_infinity)
    ~fnan:a.fnan ~fknown:a.fknown (ep_lo (exp a.flo)) (ep_hi (exp a.fhi))

let fv_pow a b =
  let fnan = a.fnan || b.fnan || (a.fknown && a.flo < 0.) in
  let fknown = a.fknown && b.fknown in
  if a.flo >= 0. then
    let lo, hi = corners ( ** ) a b in
    mk ~fnan ~fknown lo hi
  else mk ~fnan ~fknown neg_infinity infinity

let fv_of_iv v =
  let lo =
    match v.ilo with
    | Ninf | Pinf -> neg_infinity
    | Lin l -> (
        match lin_is_const l with
        | Some c -> float_of_int c
        | None -> neg_infinity)
  in
  let hi =
    match v.ihi with
    | Ninf | Pinf -> infinity
    | Lin l -> (
        match lin_is_const l with Some c -> float_of_int c | None -> infinity)
  in
  mk ~fnan:false ~fknown:(v.iknown && lo > neg_infinity && hi < infinity) lo hi

let fv_to_string v =
  Printf.sprintf "[%g, %g]%s%s%s" v.flo v.fhi
    (if v.nz then " nz" else "")
    (if v.fnan then " nan?" else "")
    (if v.fknown then "" else " ?")
