(** Per-function control-flow graphs over the parsetree, with
    exception edges.

    A graph's nodes are the concurrency-relevant events of one
    function body — [Lock]/[Unlock], calls, condition-variable
    operations, writes to module-level mutable state, raises — plus
    structural [Enter]/[Exit]/[Exn_exit]/[Join] nodes. Edges are [Seq]
    (normal control flow) or [Exn] (exceptional flow: every raise and
    every call that may raise gets an edge towards the innermost
    handler, or [Exn_exit]).

    The builder expands the cleanup idioms used throughout the
    codebase so protected regions release their lock on both paths:
    [Fun.protect ~finally], [Mutex.protect], and locally defined
    wrapper functions of the shape
    [let locked t f = Mutex.lock t.mutex; Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f]
    (detected by {!scan_module} and expanded at call sites whose
    critical section is a function literal). Closures handed to
    [Thread.create], [Domain.spawn] or a pool runner ([run],
    [parallel_for], [map_array], [for_ranges]) become separate graphs
    with [is_thread_root = true].

    Everything is syntactic — no typing pass. Locks are named
    ["Module.ident"] / ["Module.field"], so aliased mutexes are not
    tracked soundly; first-class functions stored in data structures
    escape the graph. See DESIGN.md §9 for the limits. *)

type lock = string
(** Qualified lock name, e.g. ["Rqueue.mutex"] or ["Server.reg_mutex"]. *)

type notify_kind = Signal | Broadcast

type event =
  | Enter
  | Exit  (** normal return *)
  | Exn_exit  (** exceptional return *)
  | Join  (** structural no-op: merge point, loop head, handler entry *)
  | Lock of lock
  | Unlock of lock
  | Call of string  (** callee as written, e.g. ["Rqueue.pop"] or ["pop"] *)
  | Cond_wait of { cond : string; mutex : lock option; looped : bool }
      (** [looped] is true when the wait sits inside a [while] loop or
          a [let rec]-bound re-check function *)
  | Cond_notify of { cond : string; kind : notify_kind }
  | Write of { target : string; what : string }
      (** write to module-level mutable state ([ref], [Hashtbl],
          [Queue], [Buffer]) of the current module *)
  | Raise

type edge_kind = Seq | Exn

type node = { id : int; event : event; line : int; col : int }

type t = {
  name : string;  (** qualified: ["Module.function"], thread roots are
                      ["Module.parent.<thread@LINE>"] *)
  file : string;
  is_thread_root : bool;
  nodes : node array;  (** [nodes.(i).id = i] *)
  succs : (int * edge_kind) list array;
}

(** {2 Module facts} *)

type lock_source =
  | From_param of int
  | From_param_field of int * string

type wrapper = {
  wrapper_name : string;
  wrapper_module : string;
  lock_source : lock_source;
  thunk_index : int;
}

type facts = {
  wrappers : wrapper list;
  mutables : (string, string) Hashtbl.t;
}

val module_of_path : string -> string
(** ["lib/server/rqueue.ml"] -> ["Rqueue"];
    ["pool_backend.domains.ml"] -> ["Pool_backend"]. *)

val normalize_apply : Parsetree.expression -> Parsetree.expression
(** Collapse [f @@ x], [x |> f] and curried chains into one flat
    application of the ultimate head (shared with {!Absint}). *)

val scan_module : module_name:string -> Parsetree.structure -> facts
(** Pre-scan for lock-wrapper definitions and module-level mutable
    bindings. *)

val build :
  file:string -> ?all_wrappers:wrapper list -> Parsetree.structure ->
  facts * t list
(** All per-function graphs of one compilation unit, including
    extracted thread roots. [all_wrappers] supplies wrapper summaries
    from the rest of the program so cross-module wrapper calls expand
    too. *)

val node_count : t -> int
val edge_count : t -> int

val counts : t list -> int * int
(** Total (nodes, edges) — the round-trip invariant checked by the
    QCheck property. *)
