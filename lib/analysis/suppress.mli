(** Inline suppression comments for the source analyzer.

    Syntax, anywhere in a comment:
    [(* mrm:ignore SRC001 SRC004 — reason *)]. The code list may be
    empty (suppress everything on the covered lines); the reason after
    the dash ([-], en or em dash) is free text kept for reporting. A
    suppression covers its own starting line, plus — when the comment
    stands alone on its line — the first non-blank line after the one
    the comment closes on (so a multi-line standalone comment covers
    the definition right after it, even across a blank line). The
    scanner works on raw text, so it applies equally to [.ml] and
    [.mli] files and does not require a trailing newline. *)

type t = {
  line : int;  (** 1-based line the comment starts on *)
  end_line : int;  (** 1-based line the comment closes on *)
  target : int;
      (** 1-based line a standalone comment covers: the first
          non-blank line after [end_line] *)
  codes : string list;  (** empty = suppress every code *)
  standalone : bool;  (** nothing but whitespace before the comment *)
  reason : string option;
}

val scan : string -> t list
(** All suppressions in a source text, in line order. *)

val covers : t -> code:string -> line:int -> bool

val suppressed : t list -> code:string -> line:int -> bool
(** True when some suppression {!covers} the finding. *)
