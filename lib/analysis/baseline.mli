(** Checked-in baseline: waivers for pre-existing findings.

    A baseline entry waives up to [count] findings of [code] in [file];
    anything beyond the allowance is fresh and fails the build.
    Counting per (code, file) — rather than per line — keeps the file
    stable under unrelated edits while still catching every newly
    introduced finding. The text format is line-based ([CODE FILE
    COUNT], [#] comments) so diffs review like code. *)

type entry = { code : string; file : string; count : int }
type t = entry list

val empty : t

val parse : string -> (t, string) result
(** Malformed lines are collected into the [Error] message. *)

val load : string -> (t, string) result

val to_string : t -> string
(** Renders with a self-describing header; [parse] round-trips it. *)

val save : string -> t -> unit

val of_findings : Lint.finding list -> t
(** The baseline that waives exactly the given findings, sorted by
    file then code. *)

type applied = {
  fresh : Lint.finding list;  (** beyond the baseline — these fail *)
  waived : Lint.finding list;
  stale : entry list;  (** allowance left unused: candidates to drop *)
}

val apply : t -> Lint.finding list -> applied
(** Findings are consumed in the order given (sort with
    {!Lint.compare_finding} for determinism). *)
