(** Numeric abstract domains for the forward abstract interpreter
    ({!Absint}): a product of

    - integer intervals whose bounds are symbolic linear expressions
      over interned symbols (so a kernel body analyzed under fresh
      symbols [lo]/[hi] can prove [lo + (hi - lo) = hi] exactly), and
    - float intervals extended with a "provably nonzero" bit, a
      may-be-NaN bit, and a provenance bit ([fknown]) telling the
      rules whether the value was actually computed from evidenced
      constants (havoc values never fire SRC021/023/024).

    Comparisons are decided under a small assumption set: a list of
    linear expressions asserted [>= 0] (e.g. [hi - lo] and [lo] at a
    kernel site). Entailment subtracts each assumption at most once —
    deliberately cheap, enough for range proofs of the form
    [lo <= i < lo + (hi - lo)]. *)

(** {1 Symbolic linear expressions} *)

type lin = { c : int; terms : (int * int) list }
(** [c + sum (coeff * sym)] with [terms] sorted by symbol id and all
    coefficients nonzero. Symbols are interned integers owned by the
    caller. *)

val lin_const : int -> lin
val lin_sym : int -> lin
val lin_add : lin -> lin -> lin
val lin_sub : lin -> lin -> lin
val lin_scale : int -> lin -> lin
val lin_add_const : int -> lin -> lin
val lin_is_const : lin -> int option
val lin_equal : lin -> lin -> bool
val lin_to_string : names:(int -> string) -> lin -> string

val lin_nonneg : assume:lin list -> lin -> bool
(** [lin_nonneg ~assume l] — is [l >= 0] provable? True when the
    constant remainder is nonnegative after subtracting a subset of
    [assume] (each used at most once, greedily). *)

(** {1 Integer intervals} *)

type bound = Ninf | Pinf | Lin of lin

type iv = { ilo : bound; ihi : bound; iknown : bool }
(** Closed interval [ [ilo, ihi] ]; [iknown] is provenance: the value
    was computed from program constants/symbols rather than havoc. *)

val iv_top : iv
val iv_const : int -> iv
val iv_of_sym : int -> iv
val iv_range : bound -> bound -> iv

val bound_add_const : int -> bound -> bound
val bound_le : assume:lin list -> bound -> bound -> bool
(** [bound_le ~assume a b] — is [a <= b] provable? [Ninf <= _] and
    [_ <= Pinf] always hold; [Lin] pairs reduce to {!lin_nonneg}. *)

val iv_add : iv -> iv -> iv
val iv_sub : iv -> iv -> iv
val iv_neg : iv -> iv
val iv_mul : iv -> iv -> iv
val iv_min : iv -> iv -> iv
val iv_max : iv -> iv -> iv
val iv_join : iv -> iv -> iv
val iv_widen : old:iv -> iv -> iv
val iv_meet_upper : iv -> bound -> iv
(** Refine: intersect with [(-inf, b]]. *)

val iv_meet_lower : iv -> bound -> iv
(** Refine: intersect with [[b, +inf)]. *)

val iv_subset : assume:lin list -> iv -> lo:bound -> hi:bound -> bool
(** Is the interval provably contained in [[lo, hi]] (inclusive)? *)

val iv_contains_zero : iv -> bool
(** May the interval contain 0? (No assumption set: syntactic.) *)

val iv_to_string : names:(int -> string) -> iv -> string

(** {1 Float values} *)

type fv = {
  flo : float;
  fhi : float;
  nz : bool;  (** provably nonzero *)
  fnan : bool;  (** may be NaN (evidence-backed, see {!Absint}) *)
  fknown : bool;  (** computed from evidenced constants *)
}

val fv_top : fv
val fv_const : float -> fv
val fv_range : float -> float -> fv
val fv_nan : fv
(** The NaN literal / an unvalidated wire float: full range, may-NaN. *)

val fv_join : fv -> fv -> fv
val fv_widen : old:fv -> fv -> fv
val fv_add : fv -> fv -> fv
val fv_sub : fv -> fv -> fv
val fv_neg : fv -> fv
val fv_mul : fv -> fv -> fv
val fv_div : fv -> fv -> fv
val fv_abs : fv -> fv
val fv_min : fv -> fv -> fv
val fv_max : fv -> fv -> fv
val fv_sqrt : fv -> fv
val fv_log : fv -> fv
val fv_exp : fv -> fv
val fv_pow : fv -> fv -> fv
val fv_of_iv : iv -> fv

val fv_may_zero : fv -> bool
(** 0 is in the interval and [nz] is unset. *)

val fv_may_nonpos : fv -> bool
(** The interval reaches [<= 0] (0 itself excluded when [nz]). *)

val fv_may_neg : fv -> bool

val fv_to_string : fv -> string
