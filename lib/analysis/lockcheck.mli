(** Forward lock-set dataflow on {!Cfg} graphs, propagated one level
    through the {!Callgraph}, emitting the SRC010–SRC014 findings.

    - [SRC010] — a mutex acquired in a function may still be held when
      the function returns or raises (exception paths included);
      reported at the acquisition site with a [Mutex.protect] hint.
    - [SRC011] — a call on the blocking frontier (or a one-level
      callee that reaches one) executes while a mutex is held;
      [Condition.wait] is exempt for its own mutex only.
    - [SRC012] — the program-wide lock acquisition graph (held ->
      acquired edges, including one-level callee acquisitions) has a
      cycle: deadlock potential.
    - [SRC013] — module-level mutable state ([ref]/[Hashtbl]/[Queue]/
      [Buffer]) written from a thread-root closure (or a function it
      calls directly) without an Atomic or a held lock — the
      interprocedural generalization of SRC005.
    - [SRC014] — [Condition.wait] not wrapped in a re-check loop, or
      [Condition.signal]/[broadcast] without the associated mutex
      held.

    The analysis is a union (may) dataflow: findings mean "on some
    path", not "on all paths". Known unsoundness limits — aliased
    mutexes, first-class functions, call depth beyond one level — are
    documented in DESIGN.md §9. *)

type finding = {
  code : string;
  file : string;
  line : int;
  col : int;
  message : string;
  context : (string * string) list;
}

val check : ?frontier:string list -> Cfg.t list -> finding list
(** Run the dataflow over every graph of the program and report.
    [frontier] overrides {!Callgraph.default_blocking}. Order is
    unspecified; the caller sorts. *)
