(** Source-level static analysis of the project's own OCaml code.

    Parses [.ml]/[.mli] files with the stock compiler-libs front end
    ([Parse] + [Ast_iterator] — no ppx, no typing) and enforces the
    floating-point and concurrency conventions the solvers rely on as
    [SRC0xx] findings. The judgements are syntactic: "float-typed"
    means a float literal, float arithmetic ([+.] …), a known
    float-returning function, or a [: float] constraint — deliberate
    exceptions are waived inline ({!Suppress}) or by the checked-in
    baseline ({!Baseline}).

    Rules (registry: {!rule_table}):
    - [SRC001] (warning) — [=], [<>] or [compare] on a float-typed
      operand: exact-bit comparison where a tolerance is almost always
      meant. Sentinel checks ([x = 0.]) get inline suppressions.
    - [SRC002] (warning) — polymorphic [=]/[<>]/[compare]/[min]/[max]
      on operands of unknown type in the hot-path modules
      ([lib/linalg], [lib/core], [lib/engine]); the polymorphic walker
      boxes floats and defeats unboxing.
    - [SRC003] (error) — [Obj.magic] / [*.unsafe_*].
    - [SRC004] (warning) — [try ... with _ ->]: swallows
      [Out_of_memory], [Stack_overflow], and every bug.
    - [SRC005] (error) — inside a closure passed to a parallel runner
      ([run], [parallel_for], [map_array], [for_ranges]) in
      [lib/engine]/[lib/obs]/[lib/server]: a write ([:=], [incr], field mutation,
      array store) to state not bound inside the job, unless the array
      index mentions only job-bound names (the range-disjoint
      convention). [Atomic.*] operations never match.
    - [SRC006] (warning) — [print_*]/[Printf.printf]/[Format.printf]
      and friends in library code; output must go through sinks.
    - [SRC090] (error) — the file does not parse. *)

type finding = {
  code : string;
  severity : Mrm_check.Diagnostics.severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
  context : (string * string) list;
}

val compare_finding : finding -> finding -> int
(** Orders by file, line, column, code. *)

val to_diagnostic : finding -> Mrm_check.Diagnostics.t
(** Rendered with {!Mrm_check.Diagnostics.with_location}, so every
    output format carries file/line/col. *)

val rule_table : (string * Mrm_check.Diagnostics.severity * string) list
(** (code, severity, one-line description) registry. *)

val lint_source : path:string -> string -> finding list
(** Analyze one source text. [path] determines the rule set ([.mli] vs
    [.ml]; hot-path / library / parallel-host classification by
    directory) and is reported as the finding location — tests pass
    synthetic paths to pin a classification. Inline suppressions are
    already applied; findings are sorted. *)

val lint_file : string -> finding list
(** [lint_source] over the file's contents. *)

val discover : string list -> string list
(** All [.ml]/[.mli] files under the given files/directories, walking
    recursively and skipping [_build], [fixtures], [figures],
    [related] and dot-directories. Sorted traversal, stable output. *)

val lint_paths : string list -> finding list
(** {!discover} then {!lint_file}, merged and sorted. *)
