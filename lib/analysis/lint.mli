(** Source-level static analysis of the project's own OCaml code.

    Parses [.ml]/[.mli] files with the stock compiler-libs front end
    ([Parse] + [Ast_iterator] — no ppx, no typing) and enforces the
    floating-point and concurrency conventions the solvers rely on as
    [SRC0xx] findings. The judgements are syntactic: "float-typed"
    means a float literal, float arithmetic ([+.] …), a known
    float-returning function, or a [: float] constraint — deliberate
    exceptions are waived inline ({!Suppress}) or by the checked-in
    baseline ({!Baseline}).

    Rules (registry: {!rule_table}):
    - [SRC001] (warning) — [=], [<>] or [compare] on a float-typed
      operand: exact-bit comparison where a tolerance is almost always
      meant. Sentinel checks ([x = 0.]) get inline suppressions.
    - [SRC002] (warning) — polymorphic [=]/[<>]/[compare]/[min]/[max]
      on operands of unknown type in the hot-path modules
      ([lib/linalg], [lib/core], [lib/engine]); the polymorphic walker
      boxes floats and defeats unboxing.
    - [SRC003] (error) — [Obj.magic] / [*.unsafe_*].
    - [SRC004] (warning) — [try ... with _ ->]: swallows
      [Out_of_memory], [Stack_overflow], and every bug.
    - [SRC005] (error) — inside a closure passed to a parallel runner
      ([run], [parallel_for], [map_array], [for_ranges]) in
      [lib/engine]/[lib/obs]/[lib/server]/[lib/cluster]: a write
      ([:=], [incr], field mutation, array store) to state not bound
      inside the job, unless the array index mentions only job-bound
      names (the range-disjoint convention). [Atomic.*] operations
      never match.
    - [SRC006] (warning) — [print_*]/[Printf.printf]/[Format.printf]
      and friends in library code; output must go through sinks.
    - [SRC010] (error) — a mutex acquired in a function may still be
      held when it returns or raises (exception paths included);
      interprocedural lock-set dataflow over {!Cfg}, fix hint:
      [Mutex.protect].
    - [SRC011] (warning) — a blocking call (Unix I/O, [Thread.join],
      [Condition.wait], [Rqueue.pop], solver entry points — see
      {!Callgraph.default_blocking}) reachable while a mutex is held,
      one level through the call graph.
    - [SRC012] (error) — lock-order cycle across the program-wide
      acquisition graph: deadlock potential.
    - [SRC013] (error) — module-level mutable state ([ref],
      [Hashtbl], [Queue], [Buffer]) written from a thread-root
      closure ([Thread.create], [Domain.spawn], pool runners) — or a
      function it calls directly — without an Atomic or a held lock;
      the interprocedural generalization of SRC005.
    - [SRC014] (warning) — [Condition.wait] not wrapped in a re-check
      loop ([while]/recursive), or [Condition.signal]/[broadcast]
      without the associated mutex held.
    - [SRC020] (error) — a write to a shared array inside a
      partitioned-kernel body ([Kernel.for_ranges]/[sweep]/[reduce],
      [Pool.run]/[run_pinned]/[parallel_for]) that is not provably
      within the job's [[lo, hi)] range; bodies proven safe are
      counted per site ({!Absint.stats}).
    - [SRC021] (warning) — division by a possibly-zero value, or
      [log]/[sqrt]/[**] applied to an argument that may leave the
      function's domain, outside a recognized guard.
    - [SRC022] (warning) — in the hot-path modules, an array index
      whose interval is not contained in the array's known length, or
      an [unsafe_get]/[unsafe_set] with no supporting interval fact.
    - [SRC023] (warning) — an ordered float comparison with an operand
      that may be NaN ([0./0.], [log] of a possibly non-positive
      value, an unvalidated wire float).
    - [SRC024] (warning) — a probability-named value assigned an
      interval escaping [[0, 1]] with no clamp.
    - [SRC090] (error) — the file does not parse.

    SRC010–SRC014 come from {!Lockcheck} and run over the whole
    analyzed program at once ({!interprocedural}); SRC020–SRC024 come
    from the abstract-interpretation pass ({!Absint}, staged by
    {!absint}); the per-file rules are pure parsetree functions
    ({!analyze_parsed}) that callers may fan out across domains after
    the sequential parse stage ({!parse_files} — the compiler-libs
    lexer keeps global state, so parsing itself must not run
    concurrently). *)

type finding = {
  code : string;
  severity : Mrm_check.Diagnostics.severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
  context : (string * string) list;
}

val compare_finding : finding -> finding -> int
(** Orders by file, line, column, code. *)

val to_diagnostic : finding -> Mrm_check.Diagnostics.t
(** Rendered with {!Mrm_check.Diagnostics.with_location}, so every
    output format carries file/line/col. *)

val rule_table : (string * Mrm_check.Diagnostics.severity * string) list
(** (code, severity, one-line description) registry. *)

val rule_docs : (string * string * string) list
(** (code, one-paragraph explanation, minimal firing example) for
    every code in {!rule_table} — behind [mrm2 lint-src --list-rules]
    and [--explain]. The SRC020–SRC024 examples are verbatim lines of
    their defective fixtures under [test/fixtures/src/] (tested), so
    the documentation cannot drift from the code it demonstrates. *)

(** {2 Staged pipeline} *)

type ast = Impl of Parsetree.structure | Intf of Parsetree.signature

type parsed = {
  p_path : string;
  p_contents : string;
  p_ast : ast option;  (** [None] when the file does not parse *)
  p_parse_findings : finding list;  (** SRC090, when [p_ast = None] *)
}

val parse_source : path:string -> string -> parsed
(** Parse one source text. Not thread-safe (compiler-libs lexer
    state); call sequentially. *)

val parse_files : string list -> parsed list
(** {!parse_source} over each file's contents, sequentially. *)

val analyze_parsed : parsed -> finding list
(** The per-file syntactic rules (SRC001–SRC006, SRC090) with inline
    suppressions applied, sorted. Pure function of the parsetree —
    safe to run concurrently across files. *)

val interprocedural : ?extra_blocking:string list -> parsed list -> finding list
(** The whole-program pass: builds {!Cfg} graphs for every
    implementation (sharing lock-wrapper summaries across modules),
    then runs {!Lockcheck} — SRC010–SRC014 — with inline suppressions
    applied, sorted. [extra_blocking] extends
    {!Callgraph.default_blocking}. *)

val absint : ?fuel:int -> parsed list -> finding list * Absint.stats
(** The abstract-interpretation pass (SRC020–SRC024) over every
    implementation file in the program, with inline suppressions
    applied, sorted. [fuel] bounds the per-top-level-function step
    budget (default {!Absint.default_fuel}); exhaustion aborts the
    function without a finding and is counted in
    {!Absint.stats.st_fuel_exhausted}. *)

val lint_parsed : ?extra_blocking:string list -> parsed list -> finding list
(** [analyze_parsed] on each file plus [interprocedural] and {!absint}
    over the program, merged and sorted. *)

val lint_source : path:string -> string -> finding list
(** Analyze one source text. [path] determines the rule set ([.mli] vs
    [.ml]; hot-path / library / parallel-host classification by
    directory) and is reported as the finding location — tests pass
    synthetic paths to pin a classification. Inline suppressions are
    already applied; findings are sorted. *)

val lint_file : string -> finding list
(** [lint_source] over the file's contents. *)

val discover : string list -> string list
(** All [.ml]/[.mli] files under the given files/directories, walking
    recursively and skipping [_build], [fixtures], [figures],
    [related] and dot-directories. Sorted traversal, stable output. *)

val lint_paths : ?extra_blocking:string list -> string list -> finding list
(** {!discover}, {!parse_files}, then {!lint_parsed}. *)
