(** Forward abstract interpretation over the analyzed tree's
    parsetrees, powering SRC020-SRC024.

    The engine is a big-step abstract evaluator: every top-level
    function is analyzed once with havoc parameters; loop bodies are
    evaluated twice with widening on the second pass; calls resolve
    through the same syntactic conventions as {!Callgraph}
    ({!Callgraph.resolve_name}) and are inlined to a small depth,
    which is how one-level summary information (e.g. the write ranges
    of [Sparse.mv_multi_into_range]) flows into a kernel-body proof.

    Range-kernel call sites ([Kernel.for_ranges]/[sweep]/[reduce] and
    [Pool.run]/[run_pinned]/[parallel_for] party closures) are
    re-analyzed under fresh symbolic [lo]/[hi] (or party index)
    bounds: every write to a shared array inside the body must be
    provably within the party's range or SRC020 fires; each site is
    reported as proven / flagged / unknown in {!stats}.

    Known unsoundness (see DESIGN 9.2): aliasing through refs and
    records is not tracked, first-class functions received as
    arguments are trusted at their construction site, and fuel
    exhaustion aborts the enclosing function without a finding. *)

type finding = {
  af_code : string;
  af_line : int;
  af_col : int;
  af_file : string;
  af_message : string;
  af_context : (string * string) list;
}

type kernel_status = Proven | Flagged | Unknown

type kernel_site = {
  ks_file : string;  (** file of the runner call site *)
  ks_line : int;
  ks_runner : string;  (** runner name as written, e.g. "Kernel.sweep" *)
  ks_status : kernel_status;
  ks_writes : int;  (** shared-array writes checked inside the body *)
}

type stats = {
  st_sites : kernel_site list;  (** in traversal order *)
  st_functions : int;  (** top-level functions analyzed *)
  st_fuel_exhausted : int;  (** functions aborted by the step budget *)
}

val default_fuel : int
(** Per-top-level-function step budget (100_000). *)

val analyze :
  ?fuel:int ->
  (string * bool * Parsetree.structure) list ->
  finding list * stats
(** [analyze files] over [(path, hot, ast)] implementation files in
    traversal order. [hot] enables SRC022 for that file. Findings are
    deduplicated by (code, file, line, col); suppression comments and
    baseline waivers are applied by the caller ({!Lint}). *)
