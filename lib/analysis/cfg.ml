(* Per-function control-flow graphs over the parsetree.

   Nodes are concurrency-relevant events (lock/unlock, blocking-style
   calls, condition-variable operations, writes to module-level mutable
   state, raises); edges are Seq (normal flow) or Exn (exceptional
   flow). The builder understands the cleanup idioms the codebase
   relies on — [Fun.protect ~finally], [Mutex.protect], and the local
   [let locked t f = Mutex.lock ...; Fun.protect ... f] wrapper shape —
   so a protected region's unlock appears on both the normal and the
   exceptional path. Closures handed to [Thread.create],
   [Domain.spawn] or a pool runner become separate thread-root graphs
   analyzed with an empty lock set.

   Everything is syntactic: no typing pass runs, locks are named by
   module + identifier/field (aliased mutexes collapse or split
   wrongly), and first-class functions stored in records escape the
   graph entirely. The known unsoundness limits are documented in
   DESIGN.md §9. *)

open Parsetree

type lock = string

type notify_kind = Signal | Broadcast

type event =
  | Enter
  | Exit  (** normal return *)
  | Exn_exit  (** exceptional return *)
  | Join  (** structural no-op: merge point, loop head, handler entry *)
  | Lock of lock
  | Unlock of lock
  | Call of string  (** callee as written, e.g. "Rqueue.pop" or "pop" *)
  | Cond_wait of { cond : string; mutex : lock option; looped : bool }
  | Cond_notify of { cond : string; kind : notify_kind }
  | Write of { target : string; what : string }
      (** write to module-level mutable state of the current module *)
  | Raise

type edge_kind = Seq | Exn

type node = { id : int; event : event; line : int; col : int }

type t = {
  name : string;  (** qualified: "Module.function" *)
  file : string;
  is_thread_root : bool;
  nodes : node array;
  succs : (int * edge_kind) list array;  (** indexed by node id *)
}

(* ------------------------------------------------------------------ *)
(* Module facts: lock-wrapper shapes and module-level mutable state,
   recovered by a cheap pre-scan so the builder can expand wrapper
   calls and tag shared-state writes. *)

type lock_source =
  | From_param of int  (** wrapper param [i] is the mutex itself *)
  | From_param_field of int * string  (** the mutex is [param_i.field] *)

type wrapper = {
  wrapper_name : string;  (** unqualified *)
  wrapper_module : string;
  lock_source : lock_source;
  thunk_index : int;  (** which param receives the critical section *)
}

type facts = {
  wrappers : wrapper list;
  mutables : (string, string) Hashtbl.t;
      (** module-level mutable bindings of this module: name -> kind
          ("ref", "Hashtbl", "Queue", "Buffer") *)
}

let module_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  let base =
    match String.index_opt base '.' with
    | Some i -> String.sub base 0 i
    | None -> base
  in
  String.capitalize_ascii base

let last_component lid = List.nth_opt (List.rev (Longident.flatten lid)) 0

let ident_path (e : expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

let path_string lid = String.concat "." (Longident.flatten lid)

(* Collapse [f @@ x], [x |> f] and curried chains into one flat
   application of the ultimate head. *)
let rec normalize_apply (e : expression) =
  match e.pexp_desc with
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Lident "@@"; _ }; _ }, [ (_, f); (_, x) ])
    ->
      normalize_apply
        { e with pexp_desc = Pexp_apply (f, [ (Asttypes.Nolabel, x) ]) }
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ }, [ (_, x); (_, f) ])
    ->
      normalize_apply
        { e with pexp_desc = Pexp_apply (f, [ (Asttypes.Nolabel, x) ]) }
  | Pexp_apply (f, args) -> begin
      match (normalize_apply f).pexp_desc with
      | Pexp_apply (g, args0) ->
          { e with pexp_desc = Pexp_apply (g, args0 @ args) }
      | _ -> e
    end
  | _ -> e

(* strip [fun p1 ... pn -> body] to (param names, body) *)
let rec strip_fun acc (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, p, body) ->
      let name =
        match p.ppat_desc with
        | Ppat_var { txt; _ } -> txt
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
        | _ -> "_"
      in
      strip_fun (name :: acc) body
  | Pexp_newtype (_, body) -> strip_fun acc body
  | _ -> (List.rev acc, e)

let rec is_fun_literal (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_open (_, e) | Pexp_constraint (e, _) | Pexp_newtype (_, e) ->
      is_fun_literal e
  | _ -> false

let rec fun_body (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> fun_body body
  | Pexp_open (_, e) | Pexp_constraint (e, _) | Pexp_newtype (_, e) ->
      fun_body e
  | _ -> e

(* Wrapper shapes:
     let w ... m ... f ... = Mutex.lock LK; Fun.protect ~finally:(fun () -> Mutex.unlock LK) f
     let w ... m ... f ... = Mutex.protect LK f
   where LK is a param or param.field and f is a param. *)
let wrapper_of_binding ~module_name name (rhs : expression) =
  let params, body = strip_fun [] rhs in
  if params = [] then None
  else
    let param_index n =
      let rec go i = function
        | [] -> None
        | p :: _ when p = n -> Some i
        | _ :: tl -> go (i + 1) tl
      in
      go 0 params
    in
    let lock_source_of (e : expression) =
      match e.pexp_desc with
      | Pexp_ident { txt = Lident n; _ } ->
          Option.map (fun i -> From_param i) (param_index n)
      | Pexp_field
          ({ pexp_desc = Pexp_ident { txt = Lident n; _ }; _ }, { txt; _ }) ->
          Option.bind (param_index n) (fun i ->
              Option.map
                (fun f -> From_param_field (i, f))
                (last_component txt))
      | _ -> None
    in
    let thunk_of (e : expression) =
      match e.pexp_desc with
      | Pexp_ident { txt = Lident n; _ } -> param_index n
      | _ -> None
    in
    let make lock_source thunk_index =
      { wrapper_name = name; wrapper_module = module_name; lock_source;
        thunk_index }
    in
    match (normalize_apply body).pexp_desc with
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Ldot (Lident "Mutex", "protect"); _ };
            _ },
          [ (_, m); (_, f) ] ) -> begin
        match (lock_source_of m, thunk_of f) with
        | Some ls, Some ti -> Some (make ls ti)
        | _ -> None
      end
    | Pexp_sequence (first, second) -> begin
        match
          ((normalize_apply first).pexp_desc, (normalize_apply second).pexp_desc)
        with
        | ( Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Ldot (Lident "Mutex", "lock"); _ };
                  _ },
                [ (_, m) ] ),
            Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Ldot (Lident "Fun", "protect"); _ };
                  _ },
                args ) ) -> begin
            let thunk_arg =
              List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args
            in
            match (lock_source_of m, thunk_arg) with
            | Some ls, Some (_, f) ->
                Option.map (make ls) (thunk_of f)
            | _ -> None
          end
        | _ -> None
      end
    | _ -> None

let mutable_kind_of (rhs : expression) =
  match (normalize_apply rhs).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "ref"; _ }; _ }, _) ->
      Some "ref"
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Ldot (Lident m, "create"); _ }; _ }, _)
    when m = "Hashtbl" || m = "Queue" || m = "Buffer" ->
      Some m
  | _ -> None

let scan_module ~module_name (str : structure) =
  let wrappers = ref [] in
  let mutables = Hashtbl.create 8 in
  let rec item (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = name; _ } -> begin
                if is_fun_literal vb.pvb_expr then
                  match wrapper_of_binding ~module_name name vb.pvb_expr with
                  | Some w -> wrappers := w :: !wrappers
                  | None -> ()
                else
                  match mutable_kind_of vb.pvb_expr with
                  | Some kind -> Hashtbl.replace mutables name kind
                  | None -> ()
              end
            | _ -> ())
          vbs
    | Pstr_module
        { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
        List.iter item sub
    | _ -> ()
  in
  List.iter item str;
  { wrappers = List.rev !wrappers; mutables }

(* ------------------------------------------------------------------ *)
(* Builder *)

(* Calls that cannot raise: no Exn edge is added for them, which is
   what keeps explicit lock/unlock brackets over plain state updates
   free of SRC010 noise. Everything unknown may raise. *)
let safe_calls =
  [
    "Mutex.lock"; "Mutex.unlock"; "Condition.signal"; "Condition.broadcast";
    "Condition.wait"; "Thread.self"; "Thread.id"; "Thread.yield";
    "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.mem";
    "Hashtbl.find_opt"; "Hashtbl.length"; "Hashtbl.reset"; "Hashtbl.clear";
    "Queue.add"; "Queue.push"; "Queue.take_opt"; "Queue.peek_opt";
    "Queue.length"; "Queue.is_empty"; "Queue.clear"; "Queue.create";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.contents";
    "Buffer.length"; "Buffer.clear";
    "Option.is_none"; "Option.is_some"; "Option.value"; "Option.map";
    "Option.iter"; "Option.bind"; "Option.fold";
    "List.length"; "List.rev"; "List.mem"; "List.memq"; "List.cons";
    "Array.length"; "String.length"; "Printf.sprintf"; "Unix.gettimeofday";
    "Int.equal"; "Int.compare"; "Int.max"; "Int.min"; "String.equal";
    "String.compare"; "Float.equal"; "Float.compare"; "Bool.equal";
    "Domain.cpu_relax"; "Domain.self"; "Printexc.get_raw_backtrace";
  ]

let safe_unqualified =
  [
    "ref"; "!"; ":="; "incr"; "decr"; "not"; "ignore"; "fst"; "snd";
    "min"; "max"; "abs"; "succ"; "pred"; "float_of_int"; "int_of_float";
    "+"; "-"; "*"; "/"; "+."; "-."; "*."; "/."; "="; "<>"; "<"; ">";
    "<="; ">="; "=="; "!="; "&&"; "||"; "@"; "^"; "mod"; "land"; "lor";
  ]

let atomic_safe lid =
  match lid with Longident.Ldot (Lident "Atomic", _) -> true | _ -> false

let is_safe_call lid =
  atomic_safe lid
  ||
  match lid with
  | Longident.Lident n -> List.mem n safe_unqualified
  | _ ->
      let s = path_string lid in
      List.mem s safe_calls
      || (match Longident.flatten lid with
         | _ :: _ :: _ as comps ->
             let rec last2 = function
               | [ a; b ] -> a ^ "." ^ b
               | _ :: tl -> last2 tl
               | [] -> ""
             in
             List.mem (last2 comps) safe_calls
         | _ -> false)

let raise_like = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let spawn_heads = [ "Thread.create"; "Domain.spawn" ]

(* matched by unqualified name, like SRC005 does *)
let pool_runners = [ "run"; "parallel_for"; "map_array"; "for_ranges" ]

type builder = {
  module_name : string;
  facts : facts;
  all_wrappers : wrapper list;  (** program-wide, for cross-module calls *)
  mutable nodes : node list;  (* reversed *)
  mutable n : int;
  mutable edge_list : (int * int * edge_kind) list;
  mutable pending_roots : (string * expression) list;
}

type env = { exn : int; looped : bool; fname : string }

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let add_node b env preds event loc =
  let line, col = pos_of loc in
  let id = b.n in
  b.n <- id + 1;
  b.nodes <- { id; event; line; col } :: b.nodes;
  List.iter (fun p -> b.edge_list <- (p, id, Seq) :: b.edge_list) preds;
  ignore env;
  id

let add_edge b src dst kind = b.edge_list <- (src, dst, kind) :: b.edge_list

let lock_name b (e : expression) =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) ->
      b.module_name ^ "."
      ^ Option.value ~default:"<lock>" (last_component txt)
  | Pexp_ident { txt = Longident.Lident n; _ } -> b.module_name ^ "." ^ n
  | Pexp_ident { txt; _ } -> path_string txt
  | _ -> b.module_name ^ ".<lock>"

let find_wrapper b name =
  let candidates =
    List.filter
      (fun w -> w.wrapper_name = name)
      (b.facts.wrappers @ b.all_wrappers)
  in
  match
    List.find_opt (fun w -> w.wrapper_module = b.module_name) candidates
  with
  | Some w -> Some w
  | None -> ( match candidates with [ w ] -> Some w | _ -> None)

let head_ident (e : expression) =
  let rec go (e : expression) =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> Some n
    | Pexp_field (e, _) -> go e
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Longident.Lident "!"; _ }; _ },
         [ (_, e) ]) ->
        go e
    | _ -> None
  in
  go e

let is_module_mutable b name = Hashtbl.mem b.facts.mutables name

(* ------------------------------------------------------------------ *)
(* Expression walk: [walk b env preds e] wires [e] into the graph and
   returns the node ids from which control continues normally. *)

let rec walk b env preds (e : expression) =
  let e = normalize_apply e in
  match e.pexp_desc with
  | Pexp_apply (f, args) -> walk_apply b env preds e f args
  | Pexp_sequence (a, rest) -> walk b env (walk b env preds a) rest
  | Pexp_let (rf, vbs, body) ->
      let env_vb =
        if rf = Asttypes.Recursive then { env with looped = true } else env
      in
      let preds =
        List.fold_left
          (fun preds vb ->
            if is_fun_literal vb.pvb_expr then begin
              (* local function: its body may run at any later call
                 site; model as an optional branch here *)
              let exits = walk b env_vb preds (fun_body vb.pvb_expr) in
              preds @ exits
            end
            else walk b env preds vb.pvb_expr)
          preds vbs
      in
      walk b env preds body
  | Pexp_ifthenelse (c, a, bo) ->
      let pc = walk b env preds c in
      let ea = walk b env pc a in
      let eb = match bo with Some x -> walk b env pc x | None -> pc in
      ea @ eb
  | Pexp_match (scrut, cases) ->
      let ps = walk b env preds scrut in
      List.concat_map (fun case -> walk_case b env ps case) cases
  | Pexp_function cases ->
      (* closure value: body may run wherever it is applied *)
      preds @ List.concat_map (fun case -> walk_case b env preds case) cases
  | Pexp_fun _ ->
      preds @ walk b env preds (fun_body e)
  | Pexp_try (body, cases) ->
      let handler = add_node b env [] Join e.pexp_loc in
      let body_exits = walk b { env with exn = handler } preds body in
      let catch_all =
        List.exists
          (fun case ->
            case.pc_guard = None
            &&
            let rec all (p : pattern) =
              match p.ppat_desc with
              | Ppat_any | Ppat_var _ -> true
              | Ppat_alias (p, _) -> all p
              | Ppat_or (a, b) -> all a || all b
              | _ -> false
            in
            all case.pc_lhs)
          cases
      in
      if not catch_all then add_edge b handler env.exn Exn;
      let case_exits =
        List.concat_map (fun case -> walk_case b env [ handler ] case) cases
      in
      body_exits @ case_exits
  | Pexp_while (c, body) ->
      let head = add_node b env preds Join e.pexp_loc in
      let ce = walk b env [ head ] c in
      let be = walk b { env with looped = true } ce body in
      List.iter (fun p -> add_edge b p head Seq) be;
      ce
  | Pexp_for (_, lo, hi, _, body) ->
      let p1 = walk b env preds lo in
      let p2 = walk b env p1 hi in
      let be = walk b env p2 body in
      p2 @ be
  | Pexp_setfield (obj, _, v) ->
      let preds = walk b env preds v in
      let preds = walk b env preds obj in
      begin
        match head_ident obj with
        | Some n when is_module_mutable b n ->
            let target = b.module_name ^ "." ^ n in
            [ add_node b env preds
                (Write { target; what = "field mutation" })
                e.pexp_loc ]
        | _ -> preds
      end
  | Pexp_assert
      { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
        _ } ->
      let r = add_node b env preds Raise e.pexp_loc in
      add_edge b r env.exn Exn;
      []
  | Pexp_assert cond ->
      let pc = walk b env preds cond in
      let r = add_node b env pc Join e.pexp_loc in
      add_edge b r env.exn Exn;
      [ r ]
  | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_lazy e
  | Pexp_newtype (_, e) | Pexp_letexception (_, e) ->
      walk b env preds e
  | Pexp_letmodule (_, _, e) -> walk b env preds e
  | Pexp_tuple es | Pexp_array es ->
      List.fold_left (fun preds x -> walk b env preds x) preds es
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) ->
      walk b env preds e
  | Pexp_record (fields, base) ->
      let preds =
        match base with Some e -> walk b env preds e | None -> preds
      in
      List.fold_left (fun preds (_, x) -> walk b env preds x) preds fields
  | Pexp_field (e, _) -> walk b env preds e
  | _ -> preds

and walk_case b env preds case =
  let preds =
    match case.pc_guard with
    | Some g -> walk b env preds g
    | None -> preds
  in
  walk b env preds case.pc_rhs

(* A closure argument to an ordinary call: its body may run during the
   call — walk it as a branch joining back. *)
and walk_closure_arg b env preds (a : expression) =
  preds @ walk b env preds (fun_body a)

and walk_args b env preds args =
  List.fold_left
    (fun preds (_, (a : expression)) ->
      if is_fun_literal a then walk_closure_arg b env preds a
      else walk b env preds a)
    preds args

and expand_protected b env preds ~lock ~loc thunk =
  let lk = add_node b env preds (Lock lock) loc in
  let exn_join = add_node b env [] Join loc in
  let body_exits =
    if is_fun_literal thunk then
      walk b { env with exn = exn_join } [ lk ] (fun_body thunk)
    else begin
      (* unknown critical section: a call that may raise *)
      let callee =
        match ident_path thunk with
        | Some lid -> path_string lid
        | None -> "<thunk>"
      in
      let c = add_node b env [ lk ] (Call callee) loc in
      add_edge b c exn_join Exn;
      [ c ]
    end
  in
  let unl_exn = add_node b env [ exn_join ] (Unlock lock) loc in
  add_edge b unl_exn env.exn Exn;
  [ add_node b env body_exits (Unlock lock) loc ]

and expand_finally b env preds ~loc fin thunk =
  let walk_fin preds =
    if is_fun_literal fin then walk b env preds (fun_body fin)
    else
      let callee =
        match ident_path fin with
        | Some lid -> path_string lid
        | None -> "<finally>"
      in
      [ add_node b env preds (Call callee) loc ]
  in
  let exn_join = add_node b env [] Join loc in
  let body_exits =
    if is_fun_literal thunk then
      walk b { env with exn = exn_join } preds (fun_body thunk)
    else begin
      let callee =
        match ident_path thunk with
        | Some lid -> path_string lid
        | None -> "<thunk>"
      in
      let c = add_node b env preds (Call callee) loc in
      add_edge b c exn_join Exn;
      [ c ]
    end
  in
  let fin_exn = walk_fin [ exn_join ] in
  List.iter (fun p -> add_edge b p env.exn Exn) fin_exn;
  walk_fin body_exits

and walk_apply b env preds e f args =
  let loc = e.pexp_loc in
  match ident_path f with
  | Some (Ldot (Lident "Mutex", "lock")) -> begin
      match args with
      | (_, m) :: _ ->
          [ add_node b env preds (Lock (lock_name b m)) loc ]
      | [] -> preds
    end
  | Some (Ldot (Lident "Mutex", "unlock")) -> begin
      match args with
      | (_, m) :: _ ->
          [ add_node b env preds (Unlock (lock_name b m)) loc ]
      | [] -> preds
    end
  | Some (Ldot (Lident "Mutex", "protect")) -> begin
      match args with
      | [ (_, m); (_, thunk) ] ->
          expand_protected b env preds ~lock:(lock_name b m) ~loc thunk
      | _ -> walk_args b env preds args
    end
  | Some (Ldot (Lident "Fun", "protect")) -> begin
      let fin =
        List.find_opt
          (fun (l, _) ->
            match l with
            | Asttypes.Labelled "finally" -> true
            | _ -> false)
          args
      in
      let thunk = List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args in
      match (fin, thunk) with
      | Some (_, fin), Some (_, thunk) ->
          expand_finally b env preds ~loc fin thunk
      | _ -> walk_args b env preds args
    end
  | Some (Ldot (Lident "Condition", "wait")) -> begin
      match args with
      | (_, c) :: rest ->
          let mutex =
            match rest with (_, m) :: _ -> Some (lock_name b m) | [] -> None
          in
          [ add_node b env preds
              (Cond_wait
                 { cond = lock_name b c; mutex; looped = env.looped })
              loc ]
      | [] -> preds
    end
  | Some (Ldot (Lident "Condition", (("signal" | "broadcast") as k))) -> begin
      match args with
      | (_, c) :: _ ->
          [ add_node b env preds
              (Cond_notify
                 { cond = lock_name b c;
                   kind = (if k = "signal" then Signal else Broadcast) })
              loc ]
      | [] -> preds
    end
  | Some (Lident n) when List.mem n raise_like ->
      let preds = walk_args b env preds args in
      let r = add_node b env preds Raise loc in
      add_edge b r env.exn Exn;
      []
  | Some (Lident ((":=" | "incr" | "decr") as op))
    when (match args with
         | (_, lhs) :: _ -> begin
             match head_ident lhs with
             | Some n -> is_module_mutable b n
             | None -> false
           end
         | [] -> false) ->
      let preds = walk_args b env preds args in
      let target =
        match args with
        | (_, lhs) :: _ ->
            b.module_name ^ "."
            ^ Option.value ~default:"?" (head_ident lhs)
        | [] -> "?"
      in
      let what = if op = ":=" then "ref assignment" else "ref increment" in
      [ add_node b env preds (Write { target; what }) loc ]
  | Some (Ldot (Lident (("Hashtbl" | "Queue" | "Buffer") as m), op))
    when List.mem op
           [ "replace"; "add"; "remove"; "reset"; "clear"; "push";
             "take"; "pop"; "add_string"; "add_char"; "transfer" ]
         && (match args with
            | (_, tgt) :: _ -> begin
                match head_ident tgt with
                | Some n -> is_module_mutable b n
                | None -> false
              end
            | [] -> false) ->
      let preds = walk_args b env preds args in
      let target =
        match args with
        | (_, tgt) :: _ ->
            b.module_name ^ "."
            ^ Option.value ~default:"?" (head_ident tgt)
        | [] -> "?"
      in
      [ add_node b env preds
          (Write { target; what = m ^ "." ^ op })
          loc ]
  | Some lid
    when List.mem (path_string lid) spawn_heads
         || (match last_component lid with
            | Some n -> List.mem n pool_runners
            | None -> false) ->
      (* closures become separate thread-root graphs *)
      let preds =
        List.fold_left
          (fun preds (_, (a : expression)) ->
            if is_fun_literal a then begin
              let line, _ = pos_of a.pexp_loc in
              b.pending_roots <-
                (Printf.sprintf "%s.<thread@%d>" env.fname line, a)
                :: b.pending_roots;
              preds
            end
            else walk b env preds a)
          preds args
      in
      let c = add_node b env preds (Call (path_string lid)) loc in
      if not (is_safe_call lid) then add_edge b c env.exn Exn;
      [ c ]
  | Some lid -> begin
      let wrapper =
        match lid with
        | Longident.Lident n -> find_wrapper b n
        | Ldot (_, n) -> find_wrapper b n
        | _ -> None
      in
      let expand_wrapper w =
        let nolabel =
          List.filter_map
            (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
            args
        in
        match
          (List.nth_opt nolabel w.thunk_index,
           match w.lock_source with
           | From_param i ->
               Option.map (lock_name b) (List.nth_opt nolabel i)
           | From_param_field (i, fld) ->
               Option.map
                 (fun _ -> b.module_name ^ "." ^ fld)
                 (List.nth_opt nolabel i))
        with
        | Some thunk, Some lock when is_fun_literal thunk ->
            let preds =
              List.fold_left
                (fun preds (a : expression) ->
                  if a == thunk then preds else walk b env preds a)
                preds nolabel
            in
            Some (expand_protected b env preds ~lock ~loc thunk)
        | _ -> None
      in
      match Option.bind wrapper expand_wrapper with
      | Some exits -> exits
      | None ->
          let preds = walk_args b env preds args in
          let c = add_node b env preds (Call (path_string lid)) loc in
          if not (is_safe_call lid) then add_edge b c env.exn Exn;
          [ c ]
    end
  | None -> begin
      (* application of a field or computed function, e.g. t.on_evict *)
      let preds = walk b env preds f in
      let preds = walk_args b env preds args in
      let callee =
        match f.pexp_desc with
        | Pexp_field (_, { txt; _ }) ->
            Option.value ~default:"<fn>" (last_component txt)
        | _ -> "<fn>"
      in
      let c = add_node b env preds (Call callee) loc in
      add_edge b c env.exn Exn;
      [ c ]
    end

(* ------------------------------------------------------------------ *)
(* Function extraction *)

let build_function ~module_name ~file ~facts ~all_wrappers ~is_thread_root
    name (body : expression) =
  let b =
    { module_name; facts; all_wrappers; nodes = []; n = 0;
      edge_list = []; pending_roots = [] }
  in
  let enter = add_node b () [] Enter body.pexp_loc in
  (* pre-allocate the two sinks so their ids are stable *)
  let exn_exit = add_node b () [] Exn_exit body.pexp_loc in
  let env = { exn = exn_exit; looped = false; fname = name } in
  let exits = walk b env [ enter ] body in
  let _exit = add_node b env exits Exit body.pexp_loc in
  let nodes = Array.of_list (List.rev b.nodes) in
  let succs = Array.make (Array.length nodes) [] in
  List.iter
    (fun (src, dst, k) -> succs.(src) <- (dst, k) :: succs.(src))
    b.edge_list;
  ( { name; file; is_thread_root; nodes; succs },
    List.rev b.pending_roots )

let build ~file ?(all_wrappers = []) (str : structure) =
  let module_name = module_of_path file in
  let facts = scan_module ~module_name str in
  let out = ref [] in
  let rec process_roots = function
    | [] -> ()
    | (name, closure) :: rest ->
        let cfg, more =
          build_function ~module_name ~file ~facts ~all_wrappers
            ~is_thread_root:true name (fun_body closure)
        in
        out := cfg :: !out;
        process_roots (more @ rest)
  in
  let add_fn name body =
    let cfg, roots =
      build_function ~module_name ~file ~facts ~all_wrappers
        ~is_thread_root:false name body
    in
    out := cfg :: !out;
    process_roots roots
  in
  let rec item (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = name; _ } when is_fun_literal vb.pvb_expr ->
                add_fn (module_name ^ "." ^ name) (fun_body vb.pvb_expr)
            | _ -> ())
          vbs
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
        List.iter item sub
    | _ -> ()
  in
  List.iter item str;
  (facts, List.rev !out)

let node_count (t : t) = Array.length t.nodes

let edge_count (t : t) =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs

let counts cfgs =
  List.fold_left
    (fun (n, e) cfg -> (n + node_count cfg, e + edge_count cfg))
    (0, 0) cfgs
