(* Module-qualified call graph over the whole analyzed tree, plus the
   configurable "blocking" frontier.

   Resolution is syntactic name matching: a callee written
   [Mrm_engine.Pool.run] resolves by its last two components
   ("Pool.run"); an unqualified callee resolves inside its own module
   first, then program-wide when the bare name is unambiguous. This is
   deliberately fuzzy — there is no typing pass — and errs towards
   resolving, which only ever adds one-level summary information. *)

type t = { by_name : (string, Cfg.t) Hashtbl.t (* "Module.fn" -> cfg *) }

let default_blocking =
  [
    "Unix.read"; "Unix.write"; "Unix.select"; "Unix.accept"; "Unix.sleepf";
    "Unix.sleep"; "Thread.delay"; "Thread.join"; "Thread.wait_signal";
    "Condition.wait"; "Rqueue.pop"; "Randomization.moments";
    "Randomization.moments_at_times"; "Randomization.moment_series";
    "Batch.run"; "Pool.run"; "Pool.parallel_for"; "Pool.map_array";
  ]

let build cfgs =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (cfg : Cfg.t) ->
      if not (Hashtbl.mem by_name cfg.Cfg.name) then
        Hashtbl.replace by_name cfg.Cfg.name cfg)
    cfgs;
  { by_name }

(* last [k] dot-components of a path string *)
let last_components k s =
  let parts = String.split_on_char '.' s in
  let n = List.length parts in
  if n <= k then s
  else String.concat "." (List.filteri (fun i _ -> i >= n - k) parts)

(* Unqualified callees resolve in their own module only: matching a
   bare name program-wide would confuse a local helper with an
   unrelated module's function of the same name (and local [let rec]
   helpers shadow everything anyway). *)
let resolve_name find ~current_module callee =
  if String.contains callee '.' then
    match find (last_components 2 callee) with
    | Some v -> Some v
    | None -> find callee
  else find (current_module ^ "." ^ callee)

let resolve t ~current_module callee =
  resolve_name (Hashtbl.find_opt t.by_name) ~current_module callee

let is_blocking ?(frontier = default_blocking) callee =
  List.mem (last_components 2 callee) frontier
  || List.mem callee frontier

let callees (cfg : Cfg.t) =
  Array.to_list cfg.Cfg.nodes
  |> List.filter_map (fun (n : Cfg.node) ->
         match n.Cfg.event with
         | Cfg.Call callee -> Some (callee, n)
         | _ -> None)

let all t = Hashtbl.fold (fun _ cfg acc -> cfg :: acc) t.by_name []
