(** Classic machine-repairman performability model, as a second-order MRM.

    [machines] identical machines fail independently at rate [failure];
    [repairmen] repair facilities each fix one machine at rate [repair].
    The background CTMC counts failed machines (birth–death). A working
    machine produces at rate [throughput] with per-machine production
    variance [throughput_variance] — so state [i] (i failed) has drift
    [(machines - i) * throughput] and variance
    [(machines - i) * throughput_variance].

    The accumulated reward over [(0, t)] is total production — a typical
    performability measure the paper's framework targets. *)

type params = {
  machines : int;
  repairmen : int;
  failure : float;
  repair : float;
  throughput : float;
  throughput_variance : float;
}

val default : params
(** 16 machines, 2 repairmen, failure 0.2, repair 1.5, throughput 1,
    variance 0.5. *)

val model : ?initial:float array -> params -> Mrm_core.Model.t
(** Default initial state: all machines working. *)

val generator : params -> Mrm_ctmc.Generator.t
val stationary : params -> float array
