module Generator = Mrm_ctmc.Generator

type params = {
  processors : int;
  failure : float;
  repair : float;
  reboot : float;
  coverage : float;
  service_rate : float;
  service_variance : float;
}

let default =
  {
    processors = 8;
    failure = 0.1;
    repair = 1.0;
    reboot = 4.0;
    coverage = 0.95;
    service_rate = 1.;
    service_variance = 2.;
  }

let validate p =
  if p.processors <= 0 then invalid_arg "Multiprocessor: processors > 0";
  if p.failure <= 0. || p.repair <= 0. || p.reboot <= 0. then
    invalid_arg "Multiprocessor: rates must be positive";
  if not (p.coverage >= 0. && p.coverage <= 1.) then
    invalid_arg "Multiprocessor: coverage must lie in [0, 1]";
  if p.service_rate < 0. || p.service_variance < 0. then
    invalid_arg "Multiprocessor: service parameters must be >= 0"

(* Layout: up states first (0..n), then down states (down i at
   n + 1 + (i - 1) for i = 1..n). *)
let state_count p = (2 * p.processors) + 1

let up_index p i =
  if i < 0 || i > p.processors then
    invalid_arg "Multiprocessor.up_index: out of range";
  i

let down_index p i =
  if i < 1 || i > p.processors then
    invalid_arg "Multiprocessor.down_index: out of range";
  p.processors + i

let generator p =
  validate p;
  let n = p.processors in
  let triplets = ref [] in
  let push i j v = if v > 0. then triplets := (i, j, v) :: !triplets in
  for i = 1 to n do
    let rate = float_of_int i *. p.failure in
    (* Covered failure: graceful degradation. *)
    push (up_index p i) (up_index p (i - 1)) (rate *. p.coverage);
    (* Uncovered failure: system-wide outage, then reboot with i-1. *)
    push (up_index p i) (down_index p i) (rate *. (1. -. p.coverage));
    push (down_index p i) (up_index p (i - 1)) p.reboot
  done;
  for i = 0 to n - 1 do
    (* Single repair facility. *)
    push (up_index p i) (up_index p (i + 1)) p.repair
  done;
  Generator.of_triplets ~states:(state_count p) !triplets

let model ?initial p =
  validate p;
  let states = state_count p in
  let initial =
    match initial with
    | Some pi -> pi
    | None ->
        Array.init states (fun s -> if s = up_index p p.processors then 1. else 0.)
  in
  let rates = Array.make states 0. in
  let variances = Array.make states 0. in
  for i = 0 to p.processors do
    rates.(up_index p i) <- float_of_int i *. p.service_rate;
    variances.(up_index p i) <- float_of_int i *. p.service_variance
  done;
  Mrm_core.Model.make ~generator:(generator p) ~rates ~variances ~initial
