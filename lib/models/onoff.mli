(** The paper's Section-7 example: a priority multiplexer.

    A channel of capacity [c] serves [n] exponential ON–OFF class-1
    sources (ON->OFF rate [alpha], OFF->ON rate [beta]); an ON source
    transmits at rate [r] with variance [sigma2]. The background CTMC is
    the birth–death chain counting active sources (Figure 2):
    state [i] has birth rate [(n - i) beta], death rate [i alpha]. The
    reward is the capacity left for class-2 traffic:
    [r_i = c - i r], [sigma_i^2 = i sigma2].

    Table 1 parameters: [c = 32, n = 32, alpha = 4, beta = 3, r = 1,
    sigma2 in {0, 1, 10}]; Table 2: [c = n = 200_000, sigma2 = 10]. *)

type params = {
  capacity : float;  (** C *)
  sources : int;  (** N *)
  on_to_off : float;  (** alpha *)
  off_to_on : float;  (** beta *)
  peak_rate : float;  (** r *)
  rate_variance : float;  (** sigma^2 *)
}

val table1 : sigma2:float -> params
(** The paper's small example with the chosen variance. *)

val table2 : params
(** The paper's large example (200,001 states). *)

val scaled_table2 : sources:int -> params
(** Table 2 shape at a reduced state count ([capacity = sources]), for
    quick benchmark runs. *)

val model : ?initial:float array -> params -> Mrm_core.Model.t
(** Build the second-order MRM. Default initial distribution: all sources
    OFF (state 0), as in the paper. *)

val generator : params -> Mrm_ctmc.Generator.t
val uniformization_rate : params -> float
(** [q = N * max(alpha, beta)] in closed form (checked against the
    generator in tests). *)

val stationary : params -> float array
(** Product-form stationary distribution of the birth–death background
    process (each source independently ON w.p. beta/(alpha+beta)). *)
