(** Fault-tolerant multiprocessor with imperfect coverage — a
    performability model whose background CTMC is {e not} birth–death
    (it exercises the general sparse-generator path of the solvers).

    [processors] processors fail at rate [failure] each. A failure is
    covered with probability [coverage]: the system degrades gracefully
    to one fewer processor. An uncovered failure takes the whole system
    down; a reboot at rate [reboot] brings it back with one fewer
    processor. A single repair facility restores processors at rate
    [repair]. State space: [up i] (i = 0..n working) and [down i]
    (entered by an uncovered failure while [i] were working).

    Reward: computing capacity [i * service_rate] with variance
    [i * service_variance] while up with [i] processors; 0 while down. *)

type params = {
  processors : int;
  failure : float;
  repair : float;
  reboot : float;
  coverage : float;  (** in [0, 1] *)
  service_rate : float;
  service_variance : float;
}

val default : params
(** 8 processors, failure 0.1, repair 1.0, reboot 4.0, coverage 0.95,
    service rate 1, service variance 2. *)

val state_count : params -> int
(** [2 * processors]: up states 0..n, down states for i = 1..n-1 ... see
    [state_of_index]. *)

val up_index : params -> int -> int
(** Index of [up i]; [0 <= i <= processors]. *)

val down_index : params -> int -> int
(** Index of [down i]; [1 <= i <= processors]. *)

val model : ?initial:float array -> params -> Mrm_core.Model.t
(** Default initial state: all processors up. *)

val generator : params -> Mrm_ctmc.Generator.t
