module Generator = Mrm_ctmc.Generator
module Stationary = Mrm_ctmc.Stationary

type params = {
  machines : int;
  repairmen : int;
  failure : float;
  repair : float;
  throughput : float;
  throughput_variance : float;
}

let default =
  {
    machines = 16;
    repairmen = 2;
    failure = 0.2;
    repair = 1.5;
    throughput = 1.;
    throughput_variance = 0.5;
  }

let validate p =
  if p.machines <= 0 then invalid_arg "Machine_repair: machines > 0";
  if p.repairmen <= 0 then invalid_arg "Machine_repair: repairmen > 0";
  if p.failure <= 0. || p.repair <= 0. then
    invalid_arg "Machine_repair: failure and repair rates must be positive";
  if p.throughput < 0. || p.throughput_variance < 0. then
    invalid_arg "Machine_repair: throughput parameters must be >= 0"

(* State i = number of failed machines. *)
let birth p i = float_of_int (p.machines - i) *. p.failure
let death p i = float_of_int (min i p.repairmen) *. p.repair

let generator p =
  validate p;
  Generator.birth_death ~states:(p.machines + 1) ~birth:(birth p)
    ~death:(death p)

let model ?initial p =
  validate p;
  let states = p.machines + 1 in
  let initial =
    match initial with
    | Some pi -> pi
    | None -> Array.init states (fun i -> if i = 0 then 1. else 0.)
  in
  let working i = float_of_int (p.machines - i) in
  let rates = Array.init states (fun i -> working i *. p.throughput) in
  let variances =
    Array.init states (fun i -> working i *. p.throughput_variance)
  in
  Mrm_core.Model.make ~generator:(generator p) ~rates ~variances ~initial

let stationary p =
  validate p;
  Stationary.birth_death ~states:(p.machines + 1) ~birth:(birth p)
    ~death:(death p)
