module Generator = Mrm_ctmc.Generator
module Stationary = Mrm_ctmc.Stationary

type params = {
  capacity : float;
  sources : int;
  on_to_off : float;
  off_to_on : float;
  peak_rate : float;
  rate_variance : float;
}

let table1 ~sigma2 =
  {
    capacity = 32.;
    sources = 32;
    on_to_off = 4.;
    off_to_on = 3.;
    peak_rate = 1.;
    rate_variance = sigma2;
  }

let table2 =
  {
    capacity = 200_000.;
    sources = 200_000;
    on_to_off = 4.;
    off_to_on = 3.;
    peak_rate = 1.;
    rate_variance = 10.;
  }

let scaled_table2 ~sources =
  if sources <= 0 then invalid_arg "Onoff.scaled_table2: sources > 0";
  { table2 with sources; capacity = float_of_int sources }

let validate p =
  if p.sources <= 0 then invalid_arg "Onoff: sources must be positive";
  if p.on_to_off <= 0. || p.off_to_on <= 0. then
    invalid_arg "Onoff: alpha and beta must be positive";
  if p.peak_rate < 0. then invalid_arg "Onoff: peak rate must be >= 0";
  if p.rate_variance < 0. then invalid_arg "Onoff: variance must be >= 0"

let generator p =
  validate p;
  let n = p.sources in
  Generator.birth_death ~states:(n + 1)
    ~birth:(fun i -> float_of_int (n - i) *. p.off_to_on)
    ~death:(fun i -> float_of_int i *. p.on_to_off)

let uniformization_rate p =
  validate p;
  float_of_int p.sources *. Float.max p.on_to_off p.off_to_on

let model ?initial p =
  validate p;
  let states = p.sources + 1 in
  let initial =
    match initial with
    | Some pi -> pi
    | None ->
        (* All sources OFF at time 0, as in the paper. *)
        Array.init states (fun i -> if i = 0 then 1. else 0.)
  in
  let rates =
    Array.init states (fun i -> p.capacity -. (float_of_int i *. p.peak_rate))
  in
  let variances =
    Array.init states (fun i -> float_of_int i *. p.rate_variance)
  in
  Mrm_core.Model.make ~generator:(generator p) ~rates ~variances ~initial

let stationary p =
  validate p;
  let n = p.sources in
  Stationary.birth_death ~states:(n + 1)
    ~birth:(fun i -> float_of_int (n - i) *. p.off_to_on)
    ~death:(fun i -> float_of_int i *. p.on_to_off)
