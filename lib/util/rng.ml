type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  (* Spare deviate for the polar method. *)
  mutable cached_normal : float;
  mutable has_cached_normal : bool;
}

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let default_seed = 0x5DEECE66DL

let create ?(seed = default_seed) () =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_normal = 0.; has_cached_normal = false }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ step. *)
let next rng =
  let open Int64 in
  let result = add (rotl (add rng.s0 rng.s3) 23) rng.s0 in
  let t = shift_left rng.s1 17 in
  rng.s2 <- logxor rng.s2 rng.s0;
  rng.s3 <- logxor rng.s3 rng.s1;
  rng.s1 <- logxor rng.s1 rng.s2;
  rng.s0 <- logxor rng.s0 rng.s3;
  rng.s2 <- logxor rng.s2 t;
  rng.s3 <- rotl rng.s3 45;
  result

let split rng =
  let state = ref (next rng) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_normal = 0.; has_cached_normal = false }

let uniform rng =
  (* Top 53 bits to a float in [0, 1). *)
  let bits = Int64.shift_right_logical (next rng) 11 in
  Int64.to_float bits *. 0x1.0p-53

let rec uniform_pos rng =
  let u = uniform rng in
  if u > 0. then u else uniform_pos rng

let rec normal rng =
  if rng.has_cached_normal then begin
    rng.has_cached_normal <- false;
    rng.cached_normal
  end
  else begin
    let u = (2. *. uniform rng) -. 1. in
    let v = (2. *. uniform rng) -. 1. in
    let s = (u *. u) +. (v *. v) in
    (* mrm:ignore SRC001 — Marsaglia polar rejection: only the exact
       origin (probability ~2^-128) must be resampled; log s is finite
       for every other point in the disc. *)
    if s >= 1. || s = 0. then normal rng
    else begin
      let scale = sqrt (-2. *. log s /. s) in
      rng.cached_normal <- v *. scale;
      rng.has_cached_normal <- true;
      u *. scale
    end
  end

let gaussian rng ~mu ~sigma =
  if sigma < 0. then invalid_arg "Rng.gaussian: requires sigma >= 0";
  mu +. (sigma *. normal rng)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: requires rate > 0";
  -.log (uniform_pos rng) /. rate

let int_below rng bound =
  if bound <= 0 then invalid_arg "Rng.int_below: requires bound > 0";
  int_of_float (uniform rng *. float_of_int bound)

let categorical rng weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then
    invalid_arg "Rng.categorical: weights must have a positive sum";
  let target = uniform rng *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else begin
      let w = weights.(i) in
      if w < 0. then invalid_arg "Rng.categorical: negative weight";
      let acc = acc +. w in
      if target < acc then i else scan (i + 1) acc
    end
  in
  scan 0 0.
