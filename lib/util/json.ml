type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the raw string.                     *)

exception Parse_error of int * string

let fail pos message = raise (Parse_error (pos, message))

let is_digit c = c >= '0' && c <= '9'

let parse_exn_internal text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  (* \uXXXX escapes, including surrogate pairs, re-encoded as UTF-8. *)
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = text.[!pos] in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail !pos "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buffer code =
    if code < 0x80 then Buffer.add_char buffer (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buffer (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buffer
      | '\\' -> begin
          if !pos >= n then fail !pos "unterminated escape";
          let e = text.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buffer '"'
          | '\\' -> Buffer.add_char buffer '\\'
          | '/' -> Buffer.add_char buffer '/'
          | 'b' -> Buffer.add_char buffer '\b'
          | 'f' -> Buffer.add_char buffer '\012'
          | 'n' -> Buffer.add_char buffer '\n'
          | 'r' -> Buffer.add_char buffer '\r'
          | 't' -> Buffer.add_char buffer '\t'
          | 'u' ->
              let code = hex4 () in
              if code >= 0xD800 && code <= 0xDBFF then begin
                (* High surrogate: a low surrogate must follow. *)
                if
                  !pos + 2 <= n
                  && text.[!pos] = '\\'
                  && text.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let low = hex4 () in
                  if low < 0xDC00 || low > 0xDFFF then
                    fail !pos "unpaired surrogate"
                  else
                    add_utf8 buffer
                      (0x10000
                      + ((code - 0xD800) * 0x400)
                      + (low - 0xDC00))
                end
                else fail !pos "unpaired surrogate"
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                fail !pos "unpaired surrogate"
              else add_utf8 buffer code
          | _ -> fail (!pos - 1) "bad escape character");
          go ()
        end
      | c -> begin
          Buffer.add_char buffer c;
          go ()
        end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && is_digit text.[!pos] do
      advance ()
    done;
    if peek () = Some '.' then begin
      advance ();
      while !pos < n && is_digit text.[!pos] do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') -> begin
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        while !pos < n && is_digit text.[!pos] do
          advance ()
        done
      end
    | _ -> ());
    let token = String.sub text start (!pos - start) in
    match float_of_string_opt token with
    | Some v -> Num v
    | None -> fail start (Printf.sprintf "bad number %S" token)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' -> begin
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> begin
                advance ();
                members ((key, value) :: acc)
              end
            | Some '}' -> begin
                advance ();
                List.rev ((key, value) :: acc)
              end
            | _ -> fail !pos "expected ',' or '}'"
          in
          Obj (members [])
        end
      end
    | Some '[' -> begin
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> begin
                advance ();
                elements (value :: acc)
              end
            | Some ']' -> begin
                advance ();
                List.rev (value :: acc)
              end
            | _ -> fail !pos "expected ',' or ']'"
          in
          List (elements [])
        end
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected character '%c'" c)
  in
  let value = parse_value () in
  skip_ws ();
  if !pos < n then fail !pos "trailing content after JSON value";
  value

let parse text =
  match parse_exn_internal text with
  | value -> Ok value
  | exception Parse_error (pos, message) ->
      Error (Printf.sprintf "offset %d: %s" pos message)

let parse_exn text =
  match parse text with
  | Ok value -> value
  | Error message -> failwith ("Json: " ^ message)

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | '\b' -> Buffer.add_string buffer "\\b"
      | '\012' -> Buffer.add_string buffer "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let number_to_string v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && abs_float v < 1e15 then
    Printf.sprintf "%.0f" v
  else begin
    (* Shortest representation that round-trips binary64. *)
    let short = Printf.sprintf "%.12g" v in
    (* mrm:ignore SRC001 SRC023 — exactness is the point: emit the
       short form only when it round-trips to the identical binary64
       (v is finite here, and a NaN parse would rightly fall through
       to the long form). *)
    if float_of_string short = v then short else Printf.sprintf "%.17g" v
  end

let to_string json =
  let buffer = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buffer "null"
    | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
    | Num v -> Buffer.add_string buffer (number_to_string v)
    | Str s -> escape_string buffer s
    | List items -> begin
        Buffer.add_char buffer '[';
        List.iteri
          (fun k item ->
            if k > 0 then Buffer.add_char buffer ',';
            emit item)
          items;
        Buffer.add_char buffer ']'
      end
    | Obj members -> begin
        Buffer.add_char buffer '{';
        List.iteri
          (fun k (key, value) ->
            if k > 0 then Buffer.add_char buffer ',';
            escape_string buffer key;
            Buffer.add_char buffer ':';
            emit value)
          members;
        Buffer.add_char buffer '}'
      end
  in
  emit json;
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v && abs_float v <= 2. ** 53. ->
      Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List items -> Some items | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
