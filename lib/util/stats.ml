type summary = {
  count : int;
  mean : float;
  variance : float;
  std_dev : float;
  min : float;
  max : float;
}

let check_nonempty name xs =
  if Array.length xs = 0 then
    invalid_arg (Printf.sprintf "Stats.%s: empty sample" name)

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

(* Two-pass algorithm: accurate enough and simple. *)
let variance xs =
  check_nonempty "variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

let summarize xs =
  check_nonempty "summarize" xs;
  let v = variance xs in
  {
    count = Array.length xs;
    mean = mean xs;
    variance = v;
    std_dev = sqrt v;
    min = Array.fold_left Float.min infinity xs;
    max = Array.fold_left Float.max neg_infinity xs;
  }

let powi x n =
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (acc *. base) (base *. base) (n asr 1)
    else go acc (base *. base) (n asr 1)
  in
  if n < 0 then invalid_arg "Stats.powi: negative exponent" else go 1. x n

let raw_moment n xs =
  check_nonempty "raw_moment" xs;
  let acc = ref 0. in
  Array.iter (fun x -> acc := !acc +. powi x n) xs;
  !acc /. float_of_int (Array.length xs)

let central_moment n xs =
  check_nonempty "central_moment" xs;
  let m = mean xs in
  let acc = ref 0. in
  Array.iter (fun x -> acc := !acc +. powi (x -. m) n) xs;
  !acc /. float_of_int (Array.length xs)

let mean_confidence_interval ~confidence xs =
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Stats.mean_confidence_interval: confidence in (0,1)";
  let n = Array.length xs in
  if n < 2 then
    invalid_arg "Stats.mean_confidence_interval: needs >= 2 samples";
  let m = mean xs in
  let se = sqrt (variance xs /. float_of_int n) in
  let z = Special.normal_quantile (1. -. ((1. -. confidence) /. 2.)) in
  (m -. (z *. se), m +. (z *. se))

let raw_moment_confidence_interval ~confidence order xs =
  let powered = Array.map (fun x -> powi x order) xs in
  mean_confidence_interval ~confidence powered

let quantile p xs =
  check_nonempty "quantile" xs;
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Stats.quantile: p must lie in [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let position = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor position) in
  let hi = int_of_float (ceil position) in
  if lo = hi then sorted.(lo)
  else begin
    let w = position -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let empirical_cdf xs x =
  check_nonempty "empirical_cdf" xs;
  let count = ref 0 in
  Array.iter (fun v -> if v <= x then incr count) xs;
  float_of_int !count /. float_of_int (Array.length xs)
