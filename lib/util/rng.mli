(** Deterministic pseudo-random number generation.

    xoshiro256++ seeded through splitmix64; explicit state so simulations
    are reproducible and independent streams are cheap. *)

type t
(** Mutable generator state. *)

val create : ?seed:int64 -> unit -> t
(** Fresh generator. The default seed is a fixed constant so every run of
    the test/bench suites is reproducible. *)

val split : t -> t
(** A statistically independent generator derived from (and advancing) the
    argument; used to give each simulation replica its own stream. *)

val uniform : t -> float
(** Uniform on [0, 1) with 53-bit resolution. *)

val uniform_pos : t -> float
(** Uniform on (0, 1): never returns exactly 0, safe under [log]. *)

val normal : t -> float
(** Standard normal deviate (Marsaglia polar method). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal with given mean and standard deviation ([sigma >= 0]). *)

val exponential : t -> rate:float -> float
(** Exponential with the given rate. @raise Invalid_argument if
    [rate <= 0]. *)

val int_below : t -> int -> int
(** Uniform integer in [0, bound); [bound > 0]. *)

val categorical : t -> float array -> int
(** [categorical rng weights] draws index [i] with probability proportional
    to [weights.(i)]; weights must be non-negative with a positive sum. *)
