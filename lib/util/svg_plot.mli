(** Self-contained SVG line/step plots, so the benchmark harness can emit
    actual figure files for each reproduced figure (no external plotting
    dependency exists in this environment).

    Produces standalone SVG 1.1 with axes, tick labels, a legend and one
    polyline per series. Good enough to eyeball against the paper's
    figures; the numeric series also go to CSV (see {!csv}). *)

type series = {
  label : string;
  points : (float * float) list;
  style : [ `Line | `Dashed | `Points ];
}

val render :
  ?width:int -> ?height:int -> title:string -> x_label:string ->
  y_label:string -> series list -> string
(** SVG document as a string. Ranges are computed from the data with 5%
    padding; degenerate (constant) ranges are widened symmetrically.
    @raise Invalid_argument if no series has at least one point. *)

val write_file : path:string -> string -> unit
(** Write a rendered document (creates/truncates the file). *)

val csv : header:string list -> float list list -> string
(** Comma-separated rendering of rows of floats with a header line. *)
