(** Plain-text rendering of tables and data series for the benchmark
    harness, mirroring the rows/series the paper's tables and figures
    report. *)

val render : header:string list -> string list list -> string
(** Aligned ASCII table with a header row and a separator line. *)

val render_series :
  title:string -> x_label:string -> columns:string list ->
  (float * float list) list -> string
(** A figure reproduced as text: one row per x-value, one column per curve.
    Floats are printed with 6 significant digits. *)

val float_cell : float -> string
(** Canonical float formatting used by both renderers. *)
