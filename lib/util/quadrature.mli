(** One-dimensional numerical integration used across the library
    (transient reward integrals, density-mass checks, inversion
    formulas). *)

val trapezoid : f:(float -> float) -> a:float -> b:float -> n:int -> float
(** Composite trapezoid with [n] panels. @raise Invalid_argument if
    [n <= 0] or [b < a]. *)

val simpson : f:(float -> float) -> a:float -> b:float -> n:int -> float
(** Composite Simpson; [n] is rounded up to even. *)

val midpoint : f:(float -> float) -> a:float -> b:float -> n:int -> float
(** Composite midpoint rule (never evaluates the endpoints — safe for
    integrands singular at the boundary). *)

val gauss_legendre : f:(float -> float) -> a:float -> b:float -> n:int -> float
(** Composite 5-point Gauss–Legendre over [n] panels: degree-9 exactness
    per panel. *)

val adaptive_simpson :
  ?max_depth:int -> f:(float -> float) -> a:float -> b:float -> tol:float ->
  unit -> float
(** Recursive adaptive Simpson with absolute tolerance [tol]
    (default [max_depth] 40; deeper subdivision stops with the current
    estimate). *)
