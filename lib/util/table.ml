let float_cell x =
  if Float.is_integer x && abs_float x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

let render ~header rows =
  let all = header :: rows in
  let columns =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let widths = Array.make columns 0 in
  let record row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter record all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  let total =
    Array.fold_left ( + ) 0 widths + (2 * (max 0 (columns - 1)))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let render_series ~title ~x_label ~columns data =
  let header = x_label :: columns in
  let rows =
    List.map
      (fun (x, ys) -> float_cell x :: List.map float_cell ys)
      data
  in
  Printf.sprintf "== %s ==\n%s" title (render ~header rows)
