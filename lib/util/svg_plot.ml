type series = {
  label : string;
  points : (float * float) list;
  style : [ `Line | `Dashed | `Points ];
}

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b";
     "#17becf"; "#7f7f7f" |]

(* Pick "nice" tick spacing: 1, 2 or 5 times a power of ten. *)
let nice_step range target_ticks =
  if range <= 0. then 1.
  else begin
    let raw = range /. float_of_int target_ticks in
    let magnitude = 10. ** floor (log10 raw) in
    let residual = raw /. magnitude in
    let factor =
      if residual < 1.5 then 1. else if residual < 3.5 then 2.
      else if residual < 7.5 then 5. else 10.
    in
    factor *. magnitude
  end

let data_range series =
  let x_min = ref infinity and x_max = ref neg_infinity in
  let y_min = ref infinity and y_max = ref neg_infinity in
  List.iter
    (fun s ->
      List.iter
        (fun (x, y) ->
          (* A stray inf/NaN point would poison the whole range
             (Float.min/max propagate NaN) and every coordinate below
             with it; plot the finite points only. *)
          if Float.is_finite x && Float.is_finite y then begin
            x_min := Float.min !x_min x;
            x_max := Float.max !x_max x;
            y_min := Float.min !y_min y;
            y_max := Float.max !y_max y
          end)
        s.points)
    series;
  if !x_min > !x_max then
    invalid_arg "Svg_plot.render: no finite data points";
  (* Widen degenerate ranges, pad by 5%. *)
  let widen lo hi =
    if hi -. lo < 1e-12 then (lo -. 0.5 -. abs_float lo, hi +. 0.5 +. abs_float hi)
    else begin
      let pad = 0.05 *. (hi -. lo) in
      (lo -. pad, hi +. pad)
    end
  in
  let x_lo, x_hi = widen !x_min !x_max in
  let y_lo, y_hi = widen !y_min !y_max in
  (x_lo, x_hi, y_lo, y_hi)

let format_tick v =
  if abs_float v < 1e-12 then "0"
  else if abs_float v >= 10000. || abs_float v < 0.01 then
    Printf.sprintf "%.1e" v
  else Printf.sprintf "%.4g" v

let render ?(width = 640) ?(height = 420) ~title ~x_label ~y_label series =
  let x_lo, x_hi, y_lo, y_hi = data_range series in
  (* [data_range] keeps these finite and widened apart, but make the
     projection self-contained: a degenerate or non-finite span would
     turn every coordinate below into NaN. *)
  let x_lo, x_hi, y_lo, y_hi =
    if
      Float.is_finite x_lo && Float.is_finite x_hi && Float.is_finite y_lo
      && Float.is_finite y_hi
    then (x_lo, x_hi, y_lo, y_hi)
    else (0., 1., 0., 1.)
  in
  let span lo hi =
    let s = hi -. lo in
    if Float.is_finite s && s > 0. then s else 1.
  in
  let x_span = span x_lo x_hi and y_span = span y_lo y_hi in
  let margin_left = 70 and margin_right = 20 in
  let margin_top = 40 and margin_bottom = 55 in
  let plot_w = float_of_int (width - margin_left - margin_right) in
  let plot_h = float_of_int (height - margin_top - margin_bottom) in
  let sx x =
    float_of_int margin_left +. ((x -. x_lo) /. x_span *. plot_w)
  in
  let sy y =
    float_of_int margin_top +. ((y_hi -. y) /. y_span *. plot_h)
  in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n"
    width height width height;
  out "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height;
  out
    "<text x=\"%d\" y=\"22\" font-size=\"15\" text-anchor=\"middle\">%s</text>\n"
    (width / 2) title;
  (* Axes box. *)
  out
    "<rect x=\"%d\" y=\"%d\" width=\"%.0f\" height=\"%.0f\" fill=\"none\" \
     stroke=\"black\" stroke-width=\"1\"/>\n"
    margin_left margin_top plot_w plot_h;
  (* Ticks and grid. *)
  let x_step = nice_step (x_hi -. x_lo) 6 in
  let x_start = Float.round (x_lo /. x_step) *. x_step in
  let tick = ref x_start in
  while !tick <= x_hi +. 1e-12 do
    if !tick >= x_lo -. 1e-12 then begin
      let px = sx !tick in
      out
        "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%.0f\" \
         stroke=\"#dddddd\"/>\n"
        px margin_top px
        (float_of_int margin_top +. plot_h);
      out
        "<text x=\"%.1f\" y=\"%.0f\" font-size=\"11\" \
         text-anchor=\"middle\">%s</text>\n"
        px
        (float_of_int margin_top +. plot_h +. 16.)
        (format_tick !tick)
    end;
    tick := !tick +. x_step
  done;
  let y_step = nice_step (y_hi -. y_lo) 6 in
  let y_start = Float.round (y_lo /. y_step) *. y_step in
  let tick = ref y_start in
  while !tick <= y_hi +. 1e-12 do
    if !tick >= y_lo -. 1e-12 then begin
      let py = sy !tick in
      out
        "<line x1=\"%d\" y1=\"%.1f\" x2=\"%.0f\" y2=\"%.1f\" \
         stroke=\"#dddddd\"/>\n"
        margin_left py
        (float_of_int margin_left +. plot_w)
        py;
      out
        "<text x=\"%d\" y=\"%.1f\" font-size=\"11\" \
         text-anchor=\"end\">%s</text>\n"
        (margin_left - 6) (py +. 4.) (format_tick !tick)
    end;
    tick := !tick +. y_step
  done;
  (* Axis labels. *)
  out
    "<text x=\"%d\" y=\"%d\" font-size=\"13\" text-anchor=\"middle\">%s</text>\n"
    (margin_left + int_of_float (plot_w /. 2.))
    (height - 12) x_label;
  out
    "<text x=\"16\" y=\"%d\" font-size=\"13\" text-anchor=\"middle\" \
     transform=\"rotate(-90 16 %d)\">%s</text>\n"
    (margin_top + int_of_float (plot_h /. 2.))
    (margin_top + int_of_float (plot_h /. 2.))
    y_label;
  (* Series. *)
  List.iteri
    (fun index s ->
      let color = palette.(index mod Array.length palette) in
      (match s.style with
      | `Points ->
          List.iter
            (fun (x, y) ->
              out
                "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"2.5\" fill=\"%s\"/>\n"
                (sx x) (sy y) color)
            s.points
      | (`Line | `Dashed) as style ->
          let dash =
            match style with `Dashed -> " stroke-dasharray=\"6 4\"" | _ -> ""
          in
          let coordinates =
            String.concat " "
              (List.map
                 (fun (x, y) -> Printf.sprintf "%.2f,%.2f" (sx x) (sy y))
                 s.points)
          in
          out
            "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
             stroke-width=\"1.8\"%s/>\n"
            coordinates color dash);
      (* Legend entry. *)
      let ly = margin_top + 8 + (index * 18) in
      out
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
         stroke-width=\"2\"/>\n"
        (width - margin_right - 120)
        ly
        (width - margin_right - 95)
        ly color;
      out
        "<text x=\"%d\" y=\"%d\" font-size=\"11\">%s</text>\n"
        (width - margin_right - 90)
        (ly + 4) s.label)
    series;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file ~path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let csv ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map (Printf.sprintf "%.10g") row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
