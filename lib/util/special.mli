(** Special mathematical functions used throughout the library.

    All functions operate on IEEE-754 binary64 and are accurate to roughly
    1e-13 relative error unless stated otherwise. *)

val log_gamma : float -> float
(** [log_gamma x] is [log (Gamma x)] for [x > 0] (Lanczos approximation).
    @raise Invalid_argument if [x <= 0]. *)

val log_factorial : int -> float
(** [log_factorial n] is [log n!]; exact table for small [n], [log_gamma]
    otherwise. @raise Invalid_argument if [n < 0]. *)

val factorial : int -> float
(** [factorial n] as a float; overflows to [infinity] for [n > 170]. *)

val binomial : int -> int -> float
(** [binomial n k] is the binomial coefficient as a float; [0.] outside the
    triangle. *)

val erf : float -> float
(** Error function, accurate to ~1e-15 (Abramowitz–Stegun 7.1.26 refined via
    erfc continued fraction for large arguments). *)

val erfc : float -> float
(** Complementary error function, non-underflowing for moderate arguments. *)

val normal_pdf : mu:float -> sigma:float -> float -> float
(** Density of N(mu, sigma^2) at a point. [sigma > 0]. *)

val normal_cdf : mu:float -> sigma:float -> float -> float
(** CDF of N(mu, sigma^2) at a point. [sigma > 0]. *)

val normal_quantile : float -> float
(** Inverse CDF of the standard normal (Acklam's algorithm refined by a
    Halley step, ~1e-9 absolute). Well defined over the whole open unit
    interval including denormal-range tails (e.g. [p = 1e-320] gives
    about [-38.26]): the Halley correction is assembled in log space and
    skipped where [1/phi(x)] is not representable, so extreme [p] never
    yields NaN.
    @raise Invalid_argument unless the argument lies in (0, 1). *)

val log_poisson_pmf : lambda:float -> int -> float
(** [log_poisson_pmf ~lambda k] is [log (e^-lambda lambda^k / k!)], computed
    in log space; valid for very large [lambda]. [lambda >= 0], [k >= 0]. *)
