(** Minimal JSON tree, parser and printer.

    The batch front-end ([mrm2 batch]) exchanges JSONL job specs and
    results, and the bench harness emits [BENCH_<experiment>.json]
    perf records; this module keeps both pure-OCaml (no external JSON
    dependency, matching the hand-rolled emitters in
    {!Mrm_check.Diagnostics}).

    Numbers are [float] throughout (JSON has a single number type);
    integers survive a round-trip exactly up to 2^53. The parser
    accepts UTF-8 input, the standard escapes and [\uXXXX] (surrogate
    pairs included); it rejects trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document. The error string carries a character
    offset, e.g. ["offset 12: expected ':'"]. *)

val parse_exn : string -> t
(** @raise Failure with the {!parse} error message. *)

val to_string : t -> string
(** Compact (single-line) rendering; object member order is
    preserved. Non-finite numbers render as [null] (JSON has no
    representation for them). *)

(* ------------------------------------------------------------------ *)
(* Accessors: total functions returning options, for digging through   *)
(* parsed job specs without pattern-matching boilerplate.              *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] when [json] is an
    object containing it. *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] values that are exact integers only. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
