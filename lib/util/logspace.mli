(** Arithmetic on numbers represented by their natural logarithm.

    Used wherever quantities underflow binary64 (Poisson weights for
    [qt ~ 10^4..10^7], factorial-scaled error bounds). Log-space zero is
    [neg_infinity]. *)

val log_add : float -> float -> float
(** [log_add la lb = log (exp la +. exp lb)] without overflow. *)

val log_sub : float -> float -> float
(** [log_sub la lb = log (exp la -. exp lb)]; requires [la >= lb].
    @raise Invalid_argument if [la < lb]. *)

val log_sum_exp : float array -> float
(** Stable [log (sum_i exp a.(i))]; [neg_infinity] on the empty array. *)

val log1p : float -> float
(** Accurate [log (1. +. x)] for small [x]. *)

val expm1 : float -> float
(** Accurate [exp x -. 1.] for small [x]. *)
