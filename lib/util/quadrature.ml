let check name ~a ~b ~n =
  if n <= 0 then invalid_arg (Printf.sprintf "Quadrature.%s: n > 0" name);
  if b < a then invalid_arg (Printf.sprintf "Quadrature.%s: b >= a" name)

let trapezoid ~f ~a ~b ~n =
  check "trapezoid" ~a ~b ~n;
  let h = (b -. a) /. float_of_int n in
  let acc = ref (0.5 *. (f a +. f b)) in
  for k = 1 to n - 1 do
    acc := !acc +. f (a +. (float_of_int k *. h))
  done;
  !acc *. h

let simpson ~f ~a ~b ~n =
  check "simpson" ~a ~b ~n;
  let n = if n mod 2 = 1 then n + 1 else n in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for k = 1 to n - 1 do
    let w = if k mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. f (a +. (float_of_int k *. h)))
  done;
  !acc *. h /. 3.

let midpoint ~f ~a ~b ~n =
  check "midpoint" ~a ~b ~n;
  let h = (b -. a) /. float_of_int n in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. f (a +. ((float_of_int k +. 0.5) *. h))
  done;
  !acc *. h

(* 5-point Gauss-Legendre nodes/weights on [-1, 1]. *)
let gl5_nodes =
  [| -0.9061798459386640; -0.5384693101056831; 0.;
     0.5384693101056831; 0.9061798459386640 |]

let gl5_weights =
  [| 0.2369268850561891; 0.4786286704993665; 0.5688888888888889;
     0.4786286704993665; 0.2369268850561891 |]

let gauss_legendre ~f ~a ~b ~n =
  check "gauss_legendre" ~a ~b ~n;
  let h = (b -. a) /. float_of_int n in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    let left = a +. (float_of_int k *. h) in
    let center = left +. (h /. 2.) and half = h /. 2. in
    for p = 0 to 4 do
      acc := !acc +. (gl5_weights.(p) *. f (center +. (half *. gl5_nodes.(p))))
    done
  done;
  !acc *. (b -. a) /. float_of_int n /. 2.

let adaptive_simpson ?(max_depth = 40) ~f ~a ~b ~tol () =
  if b < a then invalid_arg "Quadrature.adaptive_simpson: b >= a";
  if tol <= 0. then invalid_arg "Quadrature.adaptive_simpson: tol > 0";
  let simpson_panel fa fm fb a b = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
  let rec go a b fa fm fb whole tol depth =
    let m = 0.5 *. (a +. b) in
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson_panel fa flm fm a m in
    let right = simpson_panel fm frm fb m b in
    let refined = left +. right in
    if depth <= 0 || abs_float (refined -. whole) <= 15. *. tol then
      refined +. ((refined -. whole) /. 15.)
    else
      go a m fa flm fm left (tol /. 2.) (depth - 1)
      +. go m b fm frm fb right (tol /. 2.) (depth - 1)
  in
  if a = b then 0.
  else begin
    (* Pre-split into panels so narrow features away from the global
       midpoint cannot hide from the first refinement test. *)
    let panels = 16 in
    let h = (b -. a) /. float_of_int panels in
    let acc = ref 0. in
    for k = 0 to panels - 1 do
      let left = a +. (float_of_int k *. h) in
      let right = left +. h in
      let fa = f left and fb = f right and fm = f (0.5 *. (left +. right)) in
      let whole = simpson_panel fa fm fb left right in
      acc :=
        !acc
        +. go left right fa fm fb whole (tol /. float_of_int panels) max_depth
    done;
    !acc
  end
