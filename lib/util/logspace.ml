let log1p = Float.log1p
let expm1 = Float.expm1

(* In log space, neg_infinity is the exact encoding of zero mass — the
   sentinel comparisons below are representation checks, not numeric
   tolerances. *)

let log_add la lb =
  (* mrm:ignore SRC001 — log-space zero sentinel *)
  if la = neg_infinity then lb
  else if lb = neg_infinity then la (* mrm:ignore SRC001 — zero sentinel *)
  else begin
    let hi = Float.max la lb and lo = Float.min la lb in
    hi +. log1p (exp (lo -. hi))
  end

let log_sub la lb =
  (* mrm:ignore SRC001 — log-space zero sentinel *)
  if lb = neg_infinity then la
  else if la < lb then invalid_arg "Logspace.log_sub: requires la >= lb"
  else if la = lb then neg_infinity
  else la +. log1p (-.exp (lb -. la))

let log_sum_exp a =
  let n = Array.length a in
  if n = 0 then neg_infinity
  else begin
    let hi = Array.fold_left Float.max neg_infinity a in
    (* mrm:ignore SRC001 — all-zero-mass sentinel: hi is -inf only when
       every input is exactly -inf *)
    if hi = neg_infinity then neg_infinity
    else begin
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. exp (a.(i) -. hi)
      done;
      hi +. log !acc
    end
  end
