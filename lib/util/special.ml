(* Hand-rolled special functions: no numeric ecosystem is available in this
   environment, so the classical approximations are implemented directly. *)

let lanczos_g = 7.0

(* Lanczos coefficients for g = 7, n = 9 (Godfrey/Pugh). *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: requires x > 0";
  if x < 0.5 then
    (* Reflection formula keeps accuracy near 0. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2. *. Float.pi))
    +. ((x +. 0.5) *. log t)
    -. t
    +. log !acc
  end

let log_factorial_table =
  let table = Array.make 171 0. in
  let acc = ref 0. in
  for n = 1 to 170 do
    acc := !acc +. log (float_of_int n);
    table.(n) <- !acc
  done;
  table

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: requires n >= 0";
  if n <= 170 then log_factorial_table.(n)
  else log_gamma (float_of_int n +. 1.)

let factorial n =
  if n < 0 then invalid_arg "Special.factorial: requires n >= 0";
  if n > 170 then infinity
  else begin
    let acc = ref 1. in
    for i = 2 to n do
      acc := !acc *. float_of_int i
    done;
    !acc
  end

let binomial n k =
  if k < 0 || k > n || n < 0 then 0.
  else if n <= 170 then factorial n /. (factorial k *. factorial (n - k))
  else exp (log_factorial n -. log_factorial k -. log_factorial (n - k))

(* erfc via the continued-fraction-free rational approximation of
   W. J. Cody's algorithm as popularized in Numerical Recipes (erfccheb has
   ~1.2e-7; we instead use the higher-accuracy series/CF split below). *)

(* Series expansion of erf, accurate for |x| <= 2. *)
let erf_series x =
  let x2 = x *. x in
  let term = ref x and sum = ref x and n = ref 0 in
  let continue = ref true in
  while !continue do
    incr n;
    let nf = float_of_int !n in
    (* mrm:ignore SRC021 — nf = float_of_int !n >= 1.: incr precedes
       the read; the analyzer's ref join cannot see the ordering. *)
    term := !term *. (-.x2) /. nf;
    let contribution = !term /. ((2. *. nf) +. 1.) in
    sum := !sum +. contribution;
    if abs_float contribution <= 1e-17 *. abs_float !sum || !n > 200 then
      continue := false
  done;
  2. /. sqrt Float.pi *. !sum

(* Continued fraction for erfc, accurate for x >= 2 (Lentz's algorithm). *)
let erfc_continued_fraction x =
  let tiny = 1e-300 in
  let b0 = x in
  (* mrm:ignore SRC001 — Lentz sentinel: only an exact zero divides; any
     nonzero b0, however small, is a valid pivot. *)
  let f = ref (if b0 = 0. then tiny else b0) in
  let c = ref !f and d = ref 0. in
  (* erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...))))*)
  let iter = ref 0 and continue = ref true in
  while !continue do
    incr iter;
    let a = float_of_int !iter /. 2. in
    let b = x in
    d := b +. (a *. !d);
    if !d = 0. then d := tiny (* mrm:ignore SRC001 — Lentz zero-pivot guard *);
    c := b +. (a /. !c);
    if !c = 0. then c := tiny (* mrm:ignore SRC001 — Lentz zero-pivot guard *);
    d := 1. /. !d;
    let delta = !c *. !d in
    f := !f *. delta;
    if abs_float (delta -. 1.) < 1e-16 || !iter > 300 then continue := false
  done;
  exp (-.(x *. x)) /. sqrt Float.pi /. !f

let rec erfc x =
  if x < 0. then 2. -. erfc_of_nonneg (-.x)
  else erfc_of_nonneg x

and erfc_of_nonneg x =
  if x < 2. then 1. -. erf_series x else erfc_continued_fraction x

let erf x = if abs_float x < 2. then erf_series x else 1. -. erfc x

let sqrt2 = sqrt 2.

let normal_pdf ~mu ~sigma x =
  if sigma <= 0. then invalid_arg "Special.normal_pdf: requires sigma > 0";
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt (2. *. Float.pi))

let normal_cdf ~mu ~sigma x =
  if sigma <= 0. then invalid_arg "Special.normal_cdf: requires sigma > 0";
  let z = (x -. mu) /. (sigma *. sqrt2) in
  0.5 *. erfc (-.z)

(* Acklam's rational approximation for the standard normal quantile,
   refined with one Halley step against our high-accuracy CDF. *)
let normal_quantile p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Special.normal_quantile: requires 0 < p < 1";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2. *. log p) in
      (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q
      +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
    end
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r
           +. b.(4))
          *. r
         +. 1.)
    end
    else begin
      let q = sqrt (-2. *. log (1. -. p)) in
      -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q
          +. c.(4))
          *. q
         +. c.(5))
         /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.))
    end
  in
  (* One Halley refinement step using the accurate cdf/pdf. The step is
     u / (1 + x u / 2) with u = e / phi(x); the naive factor
     1/phi(x) = sqrt(2 pi) exp(x^2/2) overflows once |x| >~ 37.6
     (p within ~1e-310 of 0 or 1), turning the correction into
     inf/inf = NaN. Assemble |u| in log space instead and skip the
     refinement when it cannot be represented — there the residual e has
     already underflowed to the point where Acklam's ~1e-9 relative
     accuracy is all binary64 can hold anyway. *)
  let e = normal_cdf ~mu:0. ~sigma:1. x -. p in
  (* mrm:ignore SRC001 — an exactly-zero residual means the quantile is
     already converged; any nonzero e still benefits from the step. *)
  if e = 0. then x
  else begin
    let log_abs_u =
      log (abs_float e) +. (0.5 *. log (2. *. Float.pi)) +. (x *. x /. 2.)
    in
    if log_abs_u >= log Float.max_float then x
    else begin
      let u = (if e > 0. then 1. else -1.) *. exp log_abs_u in
      x -. (u /. (1. +. (x *. u /. 2.)))
    end
  end

let log_poisson_pmf ~lambda k =
  if lambda < 0. then invalid_arg "Special.log_poisson_pmf: lambda >= 0";
  if k < 0 then invalid_arg "Special.log_poisson_pmf: k >= 0";
  (* mrm:ignore SRC001 — sentinel: the lambda = 0 degenerate distribution
     (all mass at k = 0) applies only at exactly zero; log lambda is
     finite for every other representable lambda. *)
  if lambda = 0. then (if k = 0 then 0. else neg_infinity)
  else (float_of_int k *. log lambda) -. lambda -. log_factorial k
