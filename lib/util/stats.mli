(** Descriptive statistics over float samples, including the confidence
    intervals the simulation baseline reports. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** unbiased sample variance *)
  std_dev : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on the empty array. *)

val mean : float array -> float
val variance : float array -> float

val raw_moment : int -> float array -> float
(** [raw_moment n xs] is the sample estimate of [E[X^n]]. *)

val central_moment : int -> float array -> float

val mean_confidence_interval : confidence:float -> float array -> float * float
(** Normal-approximation CI for the mean: [(lo, hi)].
    [confidence] in (0, 1), e.g. [0.95]. Requires at least two samples. *)

val raw_moment_confidence_interval :
  confidence:float -> int -> float array -> float * float
(** CI for [E[X^n]] treating [X^n] samples as i.i.d. observations. *)

val quantile : float -> float array -> float
(** Empirical quantile (linear interpolation); argument in [0, 1].
    Does not modify its input. *)

val empirical_cdf : float array -> float -> float
(** [empirical_cdf xs x] is the fraction of samples [<= x]. *)
