(** Second-order (Markov-modulated Brownian) fluid queues — the bounded
    sibling the paper contrasts with second-order reward models (Section 4
    and refs [7, 8], Karandikar–Kulkarni 1995).

    The buffer level [X(t) >= 0] evolves as a Brownian motion with drift
    [r_i] and variance [sigma_i^2 > 0] while the background CTMC sits in
    state [i], reflected at 0 (infinite buffer). The same PDE as the
    reward density (eq. 4) governs the interior, but the boundary
    condition at 0 changes the solution completely — which is exactly the
    paper's point about why its unbounded-reward analysis is simpler.

    Stationary solution (spectral method): the joint distribution
    [F_i(x) = P(X <= x, Z = i)] is

    [F(x) = pi + sum_j a_j e^(z_j x) phi_j]

    over the solutions of the quadratic eigenproblem
    [(z^2/2 S - z R + Q^T) phi = 0] with [Re z < 0]; for a stable queue
    (mean drift < 0) with all [sigma_i^2 > 0] there are exactly [N] of
    them, and the coefficients [a_j] are pinned by the reflecting-boundary
    condition [F(0) = 0]. *)

type t
(** A validated second-order fluid queue (no initial distribution — only
    stationary analysis is provided). *)

val make :
  generator:Mrm_ctmc.Generator.t ->
  rates:float array ->
  variances:float array ->
  t
(** @raise Invalid_argument if dimensions mismatch, any [sigma_i^2 <= 0]
    (the spectral method needs a nonsingular [S]), the chain is reducible,
    or the mean drift [sum_i pi_i r_i] is not negative (the queue would be
    unstable). *)

type stationary
(** The computed spectral representation. *)

val stationary : t -> stationary
(** Solve the quadratic eigenproblem and boundary conditions.
    @raise Failure if the spectrum does not split as expected (numerical
    breakdown — not observed on meaningful inputs). *)

val background_distribution : stationary -> float array
(** The stationary distribution [pi] of the background CTMC ( = [F(inf)]). *)

val mean_drift : stationary -> float

val joint_cdf : stationary -> state:int -> float -> float
(** [F_i(x) = P(X <= x, Z = i)]; 0 for [x < 0]. *)

val cdf : stationary -> float -> float
(** Marginal buffer CDF [P(X <= x)]. *)

val ccdf : stationary -> float -> float
(** [P(X > x)] — the overflow probability the fluid literature reports. *)

val mean_level : stationary -> float
(** Stationary mean buffer content [E X]. *)

val decay_rate : stationary -> float
(** Asymptotic decay rate [eta > 0] with
    [P(X > x) ~ C e^(-eta x)]: the negative of the largest (closest to 0)
    eigenvalue real part among [Re z < 0]. *)

val simulate_level :
  t -> Mrm_util.Rng.t -> horizon:float -> dt:float -> burn_in:float ->
  float array
(** Euler–Maruyama simulation of the reflected process (state jumps
    approximated per step); returns the post-burn-in trajectory samples.
    Test/validation oracle, not a production solver. *)
