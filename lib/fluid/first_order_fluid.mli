(** Classic first-order Markov-modulated fluid queue (Anick–Mitra–Sondhi
    1982 / Mitra 1988): buffer drift [r_i] with {e no} Brownian term.

    Stationary solution by the spectral method on the generalized
    eigenproblem [z R phi = Q^T phi]. States with [r_i = 0] are eliminated
    from the differential part (censoring is not implemented — require
    [r_i <> 0] instead, which every classical example satisfies).

    Boundary conditions: [F_i(0) = 0] exactly for the up states
    ([r_i > 0]); with mean drift < 0 there are as many strictly negative
    eigenvalues as up states, closing the system. Down states keep an atom
    at level 0 — unlike the second-order queue, where any [sigma_i > 0]
    washes the atom out; comparing the two is the point of this module
    (see the sigma->0 convergence test). *)

type t

val make :
  generator:Mrm_ctmc.Generator.t ->
  rates:float array ->
  t
(** @raise Invalid_argument on dimension mismatch, any [r_i = 0], a
    reducible chain, or non-negative mean drift. *)

type stationary

val stationary : t -> stationary
(** @raise Failure on spectral breakdown (wrong stable-eigenvalue count —
    not expected on valid inputs). *)

val joint_cdf : stationary -> state:int -> float -> float
(** [F_i(x) = P(X <= x, Z = i)]. *)

val cdf : stationary -> float -> float
val ccdf : stationary -> float -> float

val atom_at_zero : stationary -> float
(** [P(X = 0)] — the buffer-empty probability (positive for a stable
    first-order queue; zero in the second-order one). *)

val mean_drift : stationary -> float
(** [sum_i pi_i r_i] (negative for a stable queue); mirrors
    {!Fluid.mean_drift}. *)

val mean_level : stationary -> float
val decay_rate : stationary -> float
