module Generator = Mrm_ctmc.Generator
module Stationary_ctmc = Mrm_ctmc.Stationary
module Dense = Mrm_linalg.Dense
module Sparse = Mrm_linalg.Sparse
module Cmatrix = Mrm_linalg.Cmatrix
module Eigen = Mrm_linalg.Eigen
module Vec = Mrm_linalg.Vec
module Rng = Mrm_util.Rng

type t = {
  generator : Generator.t;
  rates : float array;
  variances : float array;
  pi : float array;
  drift : float;
}

let make ~generator ~rates ~variances =
  let n = Generator.dim generator in
  if Array.length rates <> n || Array.length variances <> n then
    invalid_arg "Fluid.make: dimension mismatch";
  Array.iteri
    (fun i v ->
      if v <= 0. || not (Float.is_finite v) then
        invalid_arg
          (Printf.sprintf
             "Fluid.make: variance %g at state %d (must be > 0 for the \
              spectral method)"
             v i))
    variances;
  Array.iter
    (fun r ->
      if not (Float.is_finite r) then invalid_arg "Fluid.make: bad rate")
    rates;
  let pi = Stationary_ctmc.gth generator in
  let drift = Vec.dot pi rates in
  if drift >= 0. then
    invalid_arg
      (Printf.sprintf
         "Fluid.make: mean drift %g >= 0 — the queue is unstable" drift);
  { generator; rates; variances; pi; drift }

type stationary = {
  states : int;
  pi : float array;
  drift : float;
  (* Modes with Re z < 0: (z_j, a_j phi_j) pre-multiplied so
     F(x) = pi + sum_j e^(z_j x) mode_j. *)
  modes : (Complex.t * Complex.t array) array;
}

(* The quadratic pencil M(z) = z^2/2 S - z R + Q^T as a complex matrix. *)
let pencil model z =
  let n = Generator.dim model.generator in
  let qt = Sparse.to_dense (Sparse.transpose (Generator.matrix model.generator)) in
  let open Complex in
  let z2_half = div (mul z z) { re = 2.; im = 0. } in
  Cmatrix.init ~rows:n ~cols:n (fun i j ->
      let base = { re = Dense.get qt i j; im = 0. } in
      if i = j then
        add base
          (sub
             (mul z2_half { re = model.variances.(i); im = 0. })
             (mul z { re = model.rates.(i); im = 0. }))
      else base)

(* Null vector of the (nearly singular) pencil at an approximate
   eigenvalue: two steps of inverse iteration from a fixed start. *)
let null_vector model z =
  let n = Generator.dim model.generator in
  let normalize v =
    let scale =
      Array.fold_left (fun acc c -> Float.max acc (Complex.norm c)) 0. v
    in
    if scale = 0. then v
    else Array.map (fun c -> Complex.div c { re = scale; im = 0. }) v
  in
  let start =
    Array.init n (fun i ->
        { Complex.re = 1. +. (0.37 *. float_of_int i); im = 0. })
  in
  (* If z is exact enough that the LU hits a hard zero pivot (common for
     n = 1 where the pencil is scalar), nudge it off the eigenvalue — the
     inverse iteration only needs "nearly singular". *)
  let rec solve_with_jitter z attempt =
    let m = pencil model z in
    match Cmatrix.solve m start with
    | v -> (m, v)
    | exception Failure _ when attempt < 3 ->
        let bump = 1e-9 *. (1. +. Complex.norm z) *. (10. ** float_of_int attempt) in
        solve_with_jitter (Complex.add z { re = bump; im = bump /. 7. })
          (attempt + 1)
  in
  let m, first = solve_with_jitter z 0 in
  let first = normalize first in
  match Cmatrix.solve m first with
  | second -> normalize second
  | exception Failure _ -> first

let linearized_matrix model =
  (* Companion form for f'' = 2 S^{-1} (R f' - Q^T f):
     d/dx (f, f') = [[0, I], [-2 S^{-1} Q^T, 2 S^{-1} R]] (f, f'). *)
  let n = Generator.dim model.generator in
  let qt =
    Sparse.to_dense (Sparse.transpose (Generator.matrix model.generator))
  in
  Dense.init ~rows:(2 * n) ~cols:(2 * n) (fun i j ->
      if i < n then (if j = i + n then 1. else 0.)
      else begin
        let row = i - n in
        if j < n then -2. /. model.variances.(row) *. Dense.get qt row j
        else if j - n = row then 2. *. model.rates.(row) /. model.variances.(row)
        else 0.
      end)

let stationary model =
  let n = Generator.dim model.generator in
  let eigenvalues = Eigen.eigenvalues (linearized_matrix model) in
  (* Keep the stable modes. The spectrum contains one (numerically tiny)
     zero eigenvalue; exclude it with a scale-aware threshold. *)
  let magnitude_scale =
    Array.fold_left
      (fun acc z -> Float.max acc (Complex.norm z))
      1. eigenvalues
  in
  let threshold = -1e-9 *. magnitude_scale in
  let stable =
    Array.of_list
      (List.filter
         (fun z -> z.Complex.re < threshold)
         (Array.to_list eigenvalues))
  in
  if Array.length stable <> n then
    failwith
      (Printf.sprintf
         "Fluid.stationary: expected %d stable modes, found %d" n
         (Array.length stable));
  let vectors = Array.map (fun z -> null_vector model z) stable in
  (* Boundary condition F(0) = 0: sum_j a_j phi_j = -pi. *)
  let system =
    Cmatrix.init ~rows:n ~cols:n (fun i j -> vectors.(j).(i))
  in
  let rhs =
    Array.init n (fun i -> { Complex.re = -.model.pi.(i); im = 0. })
  in
  let coefficients = Cmatrix.solve system rhs in
  let modes =
    Array.mapi
      (fun j z ->
        (z, Array.map (fun c -> Complex.mul coefficients.(j) c) vectors.(j)))
      stable
  in
  { states = n; pi = Array.copy model.pi; drift = model.drift; modes }

let background_distribution s = Array.copy s.pi
let mean_drift s = s.drift

let joint_cdf s ~state x =
  if state < 0 || state >= s.states then
    invalid_arg "Fluid.joint_cdf: state out of range";
  if x < 0. then 0.
  else begin
    let acc = ref s.pi.(state) in
    Array.iter
      (fun (z, mode) ->
        (* Re(e^{z x} mode_i) — the conjugate pairs cancel imaginaries. *)
        let exponent = Complex.exp (Complex.mul z { re = x; im = 0. }) in
        acc := !acc +. (Complex.mul exponent mode.(state)).Complex.re)
      s.modes;
    Float.max 0. (Float.min 1. !acc)
  end

let cdf s x =
  if x < 0. then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to s.states - 1 do
      acc := !acc +. joint_cdf s ~state:i x
    done;
    Float.max 0. (Float.min 1. !acc)
  end

let ccdf s x = 1. -. cdf s x

let mean_level s =
  (* E X = int_0^inf P(X > x) dx = -sum_j (sum_i mode_j,i) / z_j
     (each mode integrates to [e^{zx}/z] and P(X>x) = -sum modes). *)
  let acc = ref Complex.zero in
  Array.iter
    (fun (z, mode) ->
      let total = Array.fold_left Complex.add Complex.zero mode in
      acc := Complex.add !acc (Complex.div total z))
    s.modes;
  (* P(X > x) = - sum_j e^{z_j x} total_j, so E X = sum_j total_j / z_j. *)
  !acc.Complex.re

let decay_rate s =
  let slowest =
    Array.fold_left
      (fun acc (z, _) -> Float.max acc z.Complex.re)
      neg_infinity s.modes
  in
  -.slowest

let simulate_level model rng ~horizon ~dt ~burn_in =
  if dt <= 0. || horizon <= burn_in then
    invalid_arg "Fluid.simulate_level: bad horizon/dt";
  let exit_rates = Generator.exit_rates model.generator in
  let n = Generator.dim model.generator in
  let targets = Array.make n [||] and probabilities = Array.make n [||] in
  for i = 0 to n - 1 do
    let jumps = Generator.embedded_jump_distribution model.generator i in
    targets.(i) <- Array.map fst jumps;
    probabilities.(i) <- Array.map snd jumps
  done;
  let steps = int_of_float (horizon /. dt) in
  let burn_steps = int_of_float (burn_in /. dt) in
  let samples = Array.make (max 1 (steps - burn_steps)) 0. in
  let state = ref (Rng.categorical rng model.pi) in
  let level = ref 0. in
  for k = 0 to steps - 1 do
    let i = !state in
    level :=
      Float.max 0.
        (!level +. (model.rates.(i) *. dt)
        +. Rng.gaussian rng ~mu:0. ~sigma:(sqrt (model.variances.(i) *. dt)));
    (* First-order jump approximation: at most one transition per step. *)
    if exit_rates.(i) > 0. && Rng.uniform rng < exit_rates.(i) *. dt then
      state := targets.(i).(Rng.categorical rng probabilities.(i));
    if k >= burn_steps then samples.(k - burn_steps) <- !level
  done;
  samples
