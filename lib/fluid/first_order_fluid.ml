module Generator = Mrm_ctmc.Generator
module Stationary_ctmc = Mrm_ctmc.Stationary
module Dense = Mrm_linalg.Dense
module Sparse = Mrm_linalg.Sparse
module Cmatrix = Mrm_linalg.Cmatrix
module Eigen = Mrm_linalg.Eigen
module Vec = Mrm_linalg.Vec

type t = {
  generator : Generator.t;
  rates : float array;
  pi : float array;
  drift : float;
  up_states : int list;
}

let make ~generator ~rates =
  let n = Generator.dim generator in
  if Array.length rates <> n then
    invalid_arg "First_order_fluid.make: dimension mismatch";
  Array.iteri
    (fun i r ->
      if r = 0. || not (Float.is_finite r) then
        invalid_arg
          (Printf.sprintf
             "First_order_fluid.make: rate at state %d must be non-zero" i))
    rates;
  let pi = Stationary_ctmc.gth generator in
  let drift = Vec.dot pi rates in
  if drift >= 0. then
    invalid_arg
      (Printf.sprintf "First_order_fluid.make: mean drift %g >= 0" drift);
  let up_states = ref [] in
  for i = n - 1 downto 0 do
    if rates.(i) > 0. then up_states := i :: !up_states
  done;
  { generator; rates; pi; drift; up_states = !up_states }

type stationary = {
  states : int;
  pi : float array;
  drift : float;
  modes : (Complex.t * Complex.t array) array;
  atom : float;
}

(* Pencil M(z) = z R - Q^T (singular at the eigenvalues). *)
let pencil model z =
  let n = Generator.dim model.generator in
  let qt =
    Sparse.to_dense (Sparse.transpose (Generator.matrix model.generator))
  in
  Cmatrix.init ~rows:n ~cols:n (fun i j ->
      let base = { Complex.re = -.Dense.get qt i j; im = 0. } in
      if i = j then
        Complex.add base (Complex.mul z { re = model.rates.(i); im = 0. })
      else base)

let null_vector model z =
  let n = Generator.dim model.generator in
  let normalize v =
    let scale =
      Array.fold_left (fun acc c -> Float.max acc (Complex.norm c)) 0. v
    in
    if scale = 0. then v
    else Array.map (fun c -> Complex.div c { Complex.re = scale; im = 0. }) v
  in
  let start =
    Array.init n (fun i ->
        { Complex.re = 1. +. (0.43 *. float_of_int i); im = 0. })
  in
  let rec solve z attempt =
    match Cmatrix.solve (pencil model z) start with
    | v -> (z, v)
    | exception Failure _ when attempt < 3 ->
        let bump =
          1e-9 *. (1. +. Complex.norm z) *. (10. ** float_of_int attempt)
        in
        solve (Complex.add z { re = bump; im = bump /. 7. }) (attempt + 1)
  in
  let z', first = solve z 0 in
  let first = normalize first in
  match Cmatrix.solve (pencil model z') first with
  | second -> normalize second
  | exception Failure _ -> first

let stationary model =
  let n = Generator.dim model.generator in
  let qt =
    Sparse.to_dense (Sparse.transpose (Generator.matrix model.generator))
  in
  (* Eigenvalues of R^{-1} Q^T. *)
  let a =
    Dense.init ~rows:n ~cols:n (fun i j ->
        Dense.get qt i j /. model.rates.(i))
  in
  let eigenvalues = Eigen.eigenvalues a in
  let scale =
    Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 1.
      eigenvalues
  in
  let stable =
    Array.of_list
      (List.filter
         (fun z -> z.Complex.re < -1e-9 *. scale)
         (Array.to_list eigenvalues))
  in
  let up = model.up_states in
  let n_up = List.length up in
  if Array.length stable <> n_up then
    failwith
      (Printf.sprintf
         "First_order_fluid.stationary: %d stable modes for %d up states"
         (Array.length stable) n_up);
  let vectors = Array.map (fun z -> null_vector model z) stable in
  (* Boundary conditions F_i(0) = 0 on the up states only. *)
  let up_array = Array.of_list up in
  let system =
    Cmatrix.init ~rows:n_up ~cols:n_up (fun row j ->
        vectors.(j).(up_array.(row)))
  in
  let rhs =
    Array.init n_up (fun row ->
        { Complex.re = -.model.pi.(up_array.(row)); im = 0. })
  in
  let coefficients =
    if n_up = 0 then [||] else Cmatrix.solve system rhs
  in
  let modes =
    Array.mapi
      (fun j z ->
        (z, Array.map (fun c -> Complex.mul coefficients.(j) c) vectors.(j)))
      stable
  in
  (* Atom at zero: sum of F_i(0) over the down states. *)
  let atom = ref 0. in
  for i = 0 to n - 1 do
    if model.rates.(i) < 0. then begin
      let value = ref model.pi.(i) in
      Array.iter
        (fun (_, mode) -> value := !value +. mode.(i).Complex.re)
        modes;
      atom := !atom +. Float.max 0. !value
    end
  done;
  {
    states = n;
    pi = Array.copy model.pi;
    drift = model.drift;
    modes;
    atom = !atom;
  }

let joint_cdf s ~state x =
  if state < 0 || state >= s.states then
    invalid_arg "First_order_fluid.joint_cdf: state out of range";
  if x < 0. then 0.
  else begin
    let acc = ref s.pi.(state) in
    Array.iter
      (fun (z, mode) ->
        let exponent = Complex.exp (Complex.mul z { re = x; im = 0. }) in
        acc := !acc +. (Complex.mul exponent mode.(state)).Complex.re)
      s.modes;
    Float.max 0. (Float.min 1. !acc)
  end

let cdf s x =
  if x < 0. then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to s.states - 1 do
      acc := !acc +. joint_cdf s ~state:i x
    done;
    Float.max 0. (Float.min 1. !acc)
  end

let ccdf s x = 1. -. cdf s x
let atom_at_zero s = s.atom
let mean_drift s = s.drift

let mean_level s =
  let acc = ref Complex.zero in
  Array.iter
    (fun (z, mode) ->
      let total = Array.fold_left Complex.add Complex.zero mode in
      acc := Complex.add !acc (Complex.div total z))
    s.modes;
  !acc.Complex.re

let decay_rate s =
  let slowest =
    Array.fold_left
      (fun acc (z, _) -> Float.max acc z.Complex.re)
      neg_infinity s.modes
  in
  -.slowest
