(** Transient state probabilities of a CTMC by uniformization
    (Jensen's method): [p(t) = sum_k Pois(qt; k) pi P'^k]. *)

val probabilities :
  ?eps:float -> Generator.t -> initial:float array -> t:float -> float array
(** Row vector [p(t)] with truncation error below [eps] (default 1e-12) in
    l1 norm.
    @raise Invalid_argument if [initial] is not a probability vector of the
    right dimension or [t < 0]. *)

val expected_reward_rate :
  ?eps:float -> Generator.t -> initial:float array -> rates:float array ->
  t:float -> float
(** [E[r_{Z(t)}]], the instantaneous expected reward rate at [t]. *)

val validate_initial : dim:int -> float array -> unit
(** Shared initial-probability-vector validation: non-negative entries
    summing to 1 within 1e-9. *)
