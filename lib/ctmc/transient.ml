module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec

let validate_initial ~dim p =
  if Array.length p <> dim then
    invalid_arg
      (Printf.sprintf "initial vector has dimension %d, expected %d"
         (Array.length p) dim);
  Array.iteri
    (fun i x ->
      if x < 0. || not (Float.is_finite x) then
        invalid_arg
          (Printf.sprintf "initial probability %g at state %d invalid" x i))
    p;
  let total = Vec.sum p in
  if abs_float (total -. 1.) > 1e-9 then
    invalid_arg (Printf.sprintf "initial probabilities sum to %g, not 1" total)

let probabilities ?(eps = 1e-12) g ~initial ~t =
  validate_initial ~dim:(Generator.dim g) initial;
  if t < 0. then invalid_arg "Transient.probabilities: requires t >= 0";
  let q = Generator.uniformization_rate g in
  let lambda = q *. t in
  if lambda = 0. then Array.copy initial
  else begin
    let p' = Generator.uniformized g ~rate:q in
    let window = Poisson.weights_window ~lambda ~eps in
    let current = ref (Array.copy initial) in
    let result = Array.make (Generator.dim g) 0. in
    for k = 0 to window.right do
      if k >= window.left then begin
        let w = window.weights.(k - window.left) in
        Vec.axpy ~alpha:w ~x:!current ~y:result
      end;
      if k < window.right then current := Sparse.vm !current p'
    done;
    result
  end

let expected_reward_rate ?eps g ~initial ~rates ~t =
  if Array.length rates <> Generator.dim g then
    invalid_arg "Transient.expected_reward_rate: rates dimension mismatch";
  let p = probabilities ?eps g ~initial ~t in
  Vec.dot p rates
