(** Validated CTMC generators (infinitesimal generator matrices [Q]). *)

type t
(** A square matrix with non-negative off-diagonal entries and (numerically)
    zero row sums. *)

val of_sparse : Mrm_linalg.Sparse.t -> t
(** @raise Invalid_argument if the matrix is not square, has a negative
    off-diagonal or positive diagonal entry, or a row sum exceeding
    [1e-9 * max |q_ii|] in magnitude. *)

val of_dense : Mrm_linalg.Dense.t -> t

val of_triplets : states:int -> (int * int * float) list -> t
(** Build from off-diagonal rate triplets; the diagonal is filled in as
    the negated row sums (any diagonal entries supplied are ignored). *)

val birth_death :
  states:int -> birth:(int -> float) -> death:(int -> float) -> t
(** Birth–death chain on [0 .. states-1]: [birth i] is the rate i -> i+1
    (i < states-1) and [death i] the rate i -> i-1 (i > 0). The paper's
    ON–OFF multiplexer background process has this shape. *)

val matrix : t -> Mrm_linalg.Sparse.t
val dim : t -> int

val uniformization_rate : t -> float
(** [q = max_i |q_ii|] (paper, Section 6). *)

val uniformized : t -> rate:float -> Mrm_linalg.Sparse.t
(** [Q' = Q/rate + I]; requires [rate >= uniformization_rate t] so the
    result is (sub)stochastic. Tiny negative diagonal round-off is clamped
    to 0. *)

val exit_rates : t -> float array
(** [-q_ii] per state. *)

val embedded_jump_distribution : t -> int -> (int * float) array
(** For state [i], the (target, probability) rows of the embedded jump
    chain; the empty array for absorbing states. *)
