module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec
module Logspace = Mrm_util.Logspace

(* GTH elimination: censor states n-1, n-2, ... and back-substitute.
   Uses only additions/multiplications/divisions of non-negative numbers,
   which is why it is the reference method for small chains. *)
let gth g =
  let n = Generator.dim g in
  let a = Mrm_linalg.Dense.to_arrays (Sparse.to_dense (Generator.matrix g)) in
  (* Work with rates: zero the diagonal, keep off-diagonal rates. *)
  for i = 0 to n - 1 do
    a.(i).(i) <- 0.
  done;
  for k = n - 1 downto 1 do
    let s = ref 0. in
    for j = 0 to k - 1 do
      s := !s +. a.(k).(j)
    done;
    if !s <= 0. then
      invalid_arg "Stationary.gth: chain is reducible (zero departure mass)";
    for i = 0 to k - 1 do
      let factor = a.(i).(k) /. !s in
      if factor > 0. then
        for j = 0 to k - 1 do
          if j <> i then a.(i).(j) <- a.(i).(j) +. (factor *. a.(k).(j))
        done
    done
  done;
  let pi = Array.make n 0. in
  pi.(0) <- 1.;
  for k = 1 to n - 1 do
    let s = ref 0. in
    for j = 0 to k - 1 do
      s := !s +. a.(k).(j)
    done;
    let acc = ref 0. in
    for i = 0 to k - 1 do
      acc := !acc +. (pi.(i) *. a.(i).(k))
    done;
    pi.(k) <- !acc /. !s
  done;
  let total = Vec.sum pi in
  Array.map (fun x -> x /. total) pi

(* Naive LU baseline: solve Q^T pi = 0 with the last balance equation
   replaced by sum pi = 1. Deliberately subtraction-heavy — the
   two-timescale unit test demonstrates the digits it loses vs GTH. *)
let lu g =
  let n = Generator.dim g in
  let q = Sparse.to_dense (Generator.matrix g) in
  let system =
    Mrm_linalg.Dense.init ~rows:n ~cols:n (fun i j ->
        if i = n - 1 then 1. else Mrm_linalg.Dense.get q j i)
  in
  let rhs = Array.init n (fun i -> if i = n - 1 then 1. else 0.) in
  match Mrm_linalg.Lu.solve_system system rhs with
  | exception Mrm_linalg.Lu.Singular _ ->
      invalid_arg "Stationary.lu: chain is reducible (singular system)"
  | pi -> pi

let power_iteration ?(eps = 1e-12) ?(max_iterations = 1_000_000) g =
  let n = Generator.dim g in
  let q = Generator.uniformization_rate g in
  if q = 0. then Array.make n (1. /. float_of_int n)
  else begin
    let p' = Generator.uniformized g ~rate:q in
    let pi = ref (Array.make n (1. /. float_of_int n)) in
    let rec go iteration =
      if iteration > max_iterations then
        failwith "Stationary.power_iteration: did not converge";
      let next = Sparse.vm !pi p' in
      let delta = Vec.norm1 (Vec.sub next !pi) in
      pi := next;
      if delta > eps then go (iteration + 1)
    in
    go 0;
    !pi
  end

let birth_death ~states ~birth ~death =
  if states <= 0 then invalid_arg "Stationary.birth_death: states > 0";
  let log_pi = Array.make states 0. in
  for i = 1 to states - 1 do
    let b = birth (i - 1) and d = death i in
    if b <= 0. || d <= 0. then
      invalid_arg "Stationary.birth_death: chain must be irreducible";
    log_pi.(i) <- log_pi.(i - 1) +. log b -. log d
  done;
  let log_total = Logspace.log_sum_exp log_pi in
  Array.map (fun lp -> exp (lp -. log_total)) log_pi
