(** Stationary distributions of irreducible CTMCs.

    Used for the stationary-start mean line of Figure 3 and the
    steady-state reward rate. *)

val gth : Generator.t -> float array
(** Grassmann–Taksar–Heyman elimination on a dense copy — numerically
    stable (no subtractions), O(n^3); intended for models up to a few
    thousand states.
    @raise Invalid_argument if the chain is reducible (a pivot vanishes). *)

val lu : Generator.t -> float array
(** Naive reference solve of [pi Q = 0, sum pi = 1] by LU with partial
    pivoting (one balance equation replaced by the normalization row).
    Unlike {!gth} it subtracts, so on stiff multi-timescale chains it
    loses digits componentwise — kept as the accuracy baseline the GTH
    tests compare against, not for production use.
    @raise Invalid_argument if the system is exactly singular (reducible
    chain). *)

val power_iteration :
  ?eps:float -> ?max_iterations:int -> Generator.t -> float array
(** Iterate [pi := pi P'] on the uniformized chain until the l1 change
    falls below [eps] (default 1e-12). Suitable for large sparse models.
    @raise Failure if [max_iterations] (default 1_000_000) is exceeded. *)

val birth_death :
  states:int -> birth:(int -> float) -> death:(int -> float) -> float array
(** Closed-form product solution [pi_i ∝ prod_{j<i} birth j / death (j+1)],
    computed in log space to avoid overflow for long chains. *)
