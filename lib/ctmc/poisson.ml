module Special = Mrm_util.Special
module Logspace = Mrm_util.Logspace

let log_pmf ~lambda k = Special.log_poisson_pmf ~lambda k
let pmf ~lambda k = exp (log_pmf ~lambda k)

(* Direct tail summation: terms of a Poisson pmf are decreasing for
   k >= lambda, so summing from [m] upward converges geometrically once k
   is a few standard deviations past the mode. We stop when a term falls
   45 nats below the running sum. *)
let log_tail_above_mode ~lambda m =
  let cutoff = 45. in
  let acc = ref (log_pmf ~lambda m) in
  let k = ref (m + 1) in
  let continue = ref true in
  while !continue do
    let term = log_pmf ~lambda !k in
    if term < !acc -. cutoff then continue := false
    else begin
      acc := Logspace.log_add !acc term;
      incr k
    end
  done;
  !acc

let log_tail ~lambda m =
  if lambda < 0. then invalid_arg "Poisson.log_tail: lambda >= 0";
  if m <= 0 then 0.
  else if lambda = 0. then neg_infinity
  else if float_of_int m > lambda then log_tail_above_mode ~lambda m
  else begin
    (* Below the mode the tail is >= ~1/2; head summation is accurate
       enough there because no catastrophic cancellation occurs. *)
    let head = ref neg_infinity in
    for k = 0 to m - 1 do
      head := Logspace.log_add !head (log_pmf ~lambda k)
    done;
    if !head >= 0. then
      (* Rounding pushed the head to ~1; fall back to direct summation. *)
      log_tail_above_mode ~lambda m
    else Logspace.log1p (-.exp !head)
  end

let tail_quantile ~lambda ~log_eps =
  if lambda < 0. then invalid_arg "Poisson.tail_quantile: lambda >= 0";
  if log_tail ~lambda 1 < log_eps then 1
  else begin
    (* Bracket then bisect: log_tail is decreasing in m. *)
    let hi = ref 2 in
    while log_tail ~lambda !hi >= log_eps do
      hi := !hi * 2;
      if !hi > 1 lsl 40 then
        invalid_arg "Poisson.tail_quantile: eps unreachable"
    done;
    let lo = ref (!hi / 2) and hi = ref !hi in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if log_tail ~lambda mid < log_eps then hi := mid else lo := mid
    done;
    !hi
  end

type window = { left : int; right : int; weights : float array; mass : float }

let weights_window ~lambda ~eps =
  if lambda < 0. then invalid_arg "Poisson.weights_window: lambda >= 0";
  if not (eps > 0. && eps < 1.) then
    invalid_arg "Poisson.weights_window: eps in (0,1)";
  if lambda = 0. then { left = 0; right = 0; weights = [| 1. |]; mass = 1. }
  else begin
    let log_eps_half = log (eps /. 2.) in
    let right = tail_quantile ~lambda ~log_eps:log_eps_half in
    (* Left cut: largest l with P(X < l) <= eps/2; scan up from 0 in log
       space (cheap: the left tail is short for the lambdas we meet). *)
    let left =
      if lambda < 50. then 0
      else begin
        let acc = ref neg_infinity and l = ref 0 in
        let continue = ref true in
        while !continue do
          let next = Logspace.log_add !acc (log_pmf ~lambda !l) in
          if next > log_eps_half then continue := false
          else begin
            acc := next;
            incr l
          end
        done;
        !l
      end
    in
    let weights =
      Array.init (right - left + 1) (fun k -> pmf ~lambda (left + k))
    in
    let mass = Array.fold_left ( +. ) 0. weights in
    { left; right; weights; mass }
  end
