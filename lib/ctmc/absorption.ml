module Dense = Mrm_linalg.Dense
module Lu = Mrm_linalg.Lu
module Sparse = Mrm_linalg.Sparse

type analysis = { hit_probability : float array; expected_time : float array }

let analyze g ~targets =
  let n = Generator.dim g in
  if targets = [] then invalid_arg "Absorption.analyze: empty target set";
  List.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Absorption.analyze: target out of range")
    targets;
  let is_target = Array.make n false in
  List.iter (fun s -> is_target.(s) <- true) targets;
  (* Reverse reachability from the target set: a state that cannot reach
     it has hit probability 0 and infinite hitting time; keeping such
     states in the linear system would make it singular. *)
  let predecessors = Array.make n [] in
  Sparse.iter (Generator.matrix g) (fun i j v ->
      if i <> j && v > 0. then predecessors.(j) <- i :: predecessors.(j));
  let can_reach = Array.copy is_target in
  let frontier = Queue.create () in
  List.iter (fun s -> Queue.add s frontier) targets;
  while not (Queue.is_empty frontier) do
    let s = Queue.pop frontier in
    List.iter
      (fun p ->
        if not can_reach.(p) then begin
          can_reach.(p) <- true;
          Queue.add p frontier
        end)
      predecessors.(s)
  done;
  (* Index the states entering the linear system: non-target states that
     can reach the target. *)
  let solving = ref [] in
  for i = n - 1 downto 0 do
    if (not is_target.(i)) && can_reach.(i) then solving := i :: !solving
  done;
  let solving = Array.of_list !solving in
  let m = Array.length solving in
  let position = Array.make n (-1) in
  Array.iteri (fun k i -> position.(i) <- k) solving;
  let hit_probability =
    Array.init n (fun i -> if is_target.(i) then 1. else 0.)
  in
  let expected_time =
    Array.init n (fun i -> if is_target.(i) then 0. else infinity)
  in
  if m > 0 then begin
    (* Restricted generator block over the solving states, and the rate
       into the target set per solving state. Flows into non-reaching
       states carry hit probability 0 and drop out of the system. *)
    let t_block = Dense.zeros ~rows:m ~cols:m in
    let into_target = Array.make m 0. in
    Sparse.iter (Generator.matrix g) (fun i j v ->
        if position.(i) >= 0 then begin
          let row = position.(i) in
          if is_target.(j) then begin
            if i <> j then into_target.(row) <- into_target.(row) +. v
          end
          else if position.(j) >= 0 then Dense.set t_block row position.(j) v
          (* Flows to non-reaching states carry hit probability 0: they
             drop out of the system but still count in the exit rate on
             the diagonal (the i = j entry lands in the branch above). *)
        end);
    let neg_t =
      Dense.init ~rows:m ~cols:m (fun i j -> -.Dense.get t_block i j)
    in
    (* After restriction every solving state drains into the target (or a
       0-probability sink), so -T is a nonsingular M-matrix. *)
    let factorization = Lu.factorize neg_t in
    let probabilities = Lu.solve factorization into_target in
    let times = Lu.solve factorization (Array.make m 1.) in
    Array.iteri
      (fun row state ->
        let p = Float.max 0. (Float.min 1. probabilities.(row)) in
        hit_probability.(state) <- p;
        expected_time.(state) <-
          (if p < 1. -. 1e-9 then infinity else times.(row)))
      solving
  end;
  { hit_probability; expected_time }

let mean_time_to_absorption g ~initial ~targets =
  Transient.validate_initial ~dim:(Generator.dim g) initial;
  let { expected_time; _ } = analyze g ~targets in
  let acc = ref 0. in
  Array.iteri
    (fun i p -> if p > 0. then acc := !acc +. (p *. expected_time.(i)))
    initial;
  !acc
