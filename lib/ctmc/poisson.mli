(** Stable computation of Poisson probabilities and tails for
    randomization/uniformization, valid for rates up to ~10^7 where the
    naive [e^-qt (qt)^k / k!] underflows long before the mass does. *)

val log_pmf : lambda:float -> int -> float
(** [log P(X = k)] for X ~ Poisson(lambda). *)

val pmf : lambda:float -> int -> float

val log_tail : lambda:float -> int -> float
(** [log_tail ~lambda m] is [log P(X >= m)], computed by direct tail
    summation (never through 1 - head, so it stays accurate down to
    ~1e-300). *)

val tail_quantile : lambda:float -> log_eps:float -> int
(** Smallest [m] with [log P(X >= m) < log_eps]; the truncation-point
    primitive behind Theorem 4's [G]. *)

type window = {
  left : int;
  right : int;
  weights : float array;  (** [weights.(k - left) = P(X = left + k)] *)
  mass : float;  (** total captured probability *)
}

val weights_window : lambda:float -> eps:float -> window
(** A (left, right) truncation window capturing at least [1 - eps] of the
    mass, with the individual weights in linear space (they are
    representable once the negligible tails are cut). *)
