(** Continuous phase-type distributions PH(alpha, T): absorption times of
    a CTMC with transient generator block [T].

    Completion/repair/outage durations in performability models are
    phase-type; this module gives their distribution, moments and
    sampling, complementing the accumulated-reward analyses. *)

type t

val make : alpha:float array -> t_matrix:Mrm_linalg.Dense.t -> t
(** [alpha] is the initial distribution over the transient phases (its
    deficit [1 - sum alpha] is an atom at 0); [t_matrix] is the transient
    generator block: strictly negative diagonal, non-negative
    off-diagonal, row sums <= 0 with at least one strict (so absorption
    happens).
    @raise Invalid_argument if the matrix is not a valid transient block
    or absorption is not certain from some phase reachable under
    [alpha]. *)

val of_absorbing_chain :
  Generator.t -> initial:float array -> targets:int list -> t
(** The hitting time of [targets] as a phase-type distribution (restricts
    the generator to the complement).
    @raise Invalid_argument if some non-target state cannot reach the
    target set. *)

val phases : t -> int
val exit_rates : t -> float array
(** Absorption rate per phase: [-T 1]. *)

val mean : t -> float
val raw_moment : t -> int -> float
(** [E X^n = n! alpha (-T)^{-n} 1]. *)

val variance : t -> float

val cdf : t -> float -> float
(** [1 - alpha e^(T x) 1] (dense matrix exponential; phases up to a few
    hundred). *)

val pdf : t -> float -> float
(** [alpha e^(T x) (-T 1)]. *)

val sample : t -> Mrm_util.Rng.t -> float
(** Simulate the absorbing chain. *)
