module Sparse = Mrm_linalg.Sparse

type t = { matrix : Sparse.t; dim : int; q : float }

let validate m =
  let n = Sparse.rows m in
  if Sparse.cols m <> n then
    invalid_arg "Generator.of_sparse: generator must be square";
  let q = ref 0. in
  Sparse.iter m (fun i j v ->
      if i = j then begin
        if v > 0. then
          invalid_arg
            (Printf.sprintf
               "Generator.of_sparse: positive diagonal %g at state %d" v i);
        q := Float.max !q (-.v)
      end
      else if v < 0. then
        invalid_arg
          (Printf.sprintf
             "Generator.of_sparse: negative off-diagonal %g at (%d,%d)" v i j));
  let sums = Sparse.row_sums m in
  let tolerance = 1e-9 *. Float.max 1. !q in
  Array.iteri
    (fun i s ->
      if abs_float s > tolerance then
        invalid_arg
          (Printf.sprintf "Generator.of_sparse: row %d sums to %g (not 0)" i s))
    sums;
  { matrix = m; dim = n; q = !q }

let of_sparse = validate
let of_dense d = validate (Sparse.of_dense d)

let of_triplets ~states triplets =
  let exits = Array.make states 0. in
  let off_diagonal =
    List.filter
      (fun (i, j, v) ->
        if i < 0 || i >= states || j < 0 || j >= states then
          invalid_arg
            (Printf.sprintf
               "Generator.of_triplets: transition (%d, %d) out of [0, %d)" i j
               states);
        if i <> j && v < 0. then
          invalid_arg
            (Printf.sprintf
               "Generator.of_triplets: negative rate %g at (%d, %d)" v i j);
        i <> j && v <> 0.)
      triplets
  in
  List.iter (fun (i, _, v) -> exits.(i) <- exits.(i) +. v) off_diagonal;
  let diagonal =
    List.filteri
      (fun _ (_, _, v) -> v <> 0.)
      (List.init states (fun i -> (i, i, -.exits.(i))))
  in
  validate
    (Sparse.of_triplets ~rows:states ~cols:states (diagonal @ off_diagonal))

let birth_death ~states ~birth ~death =
  if states <= 0 then invalid_arg "Generator.birth_death: states > 0";
  let triplets = ref [] in
  for i = states - 1 downto 0 do
    if i < states - 1 then begin
      let b = birth i in
      if b < 0. then
        invalid_arg
          (Printf.sprintf
             "Generator.birth_death: negative birth rate %g at state %d" b i);
      if b > 0. then triplets := (i, i + 1, b) :: !triplets
    end;
    if i > 0 then begin
      let d = death i in
      if d < 0. then
        invalid_arg
          (Printf.sprintf
             "Generator.birth_death: negative death rate %g at state %d" d i);
      if d > 0. then triplets := (i, i - 1, d) :: !triplets
    end
  done;
  of_triplets ~states !triplets

let matrix g = g.matrix
let dim g = g.dim
let uniformization_rate g = g.q

let uniformized g ~rate =
  if rate < g.q then
    invalid_arg
      (Printf.sprintf
         "Generator.uniformized: rate %g below uniformization rate %g" rate
         g.q);
  if rate = 0. then Sparse.identity g.dim
  else begin
    let scaled = Sparse.scale (1. /. rate) g.matrix in
    let shifted = Sparse.add_scaled_identity 1. scaled in
    (* Clamp diagonal round-off like (-q/q + 1) = -1e-17. *)
    Sparse.map_values (fun v -> if v < 0. then 0. else v) shifted
  end

let exit_rates g =
  let exits = Array.make g.dim 0. in
  Sparse.iter g.matrix (fun i j v -> if i = j then exits.(i) <- -.v);
  exits

let embedded_jump_distribution g i =
  if i < 0 || i >= g.dim then
    invalid_arg "Generator.embedded_jump_distribution: state out of range";
  let exit = (exit_rates g).(i) in
  if exit <= 0. then [||]
  else begin
    let acc = ref [] in
    Sparse.iter g.matrix (fun row j v ->
        if row = i && j <> i && v > 0. then acc := (j, v /. exit) :: !acc);
    Array.of_list (List.rev !acc)
  end
