module Dense = Mrm_linalg.Dense
module Lu = Mrm_linalg.Lu
module Expm = Mrm_linalg.Expm
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec
module Rng = Mrm_util.Rng

type t = {
  alpha : float array;
  t_matrix : Dense.t;
  exit : float array;  (** -T 1 *)
  neg_t_factorization : Lu.t;
}

let make ~alpha ~t_matrix =
  let n = Dense.rows t_matrix in
  if Dense.cols t_matrix <> n then
    invalid_arg "Phase_type.make: T must be square";
  if Array.length alpha <> n then
    invalid_arg "Phase_type.make: alpha dimension mismatch";
  let mass = ref 0. in
  Array.iteri
    (fun i a ->
      if a < 0. || not (Float.is_finite a) then
        invalid_arg (Printf.sprintf "Phase_type.make: alpha_%d = %g" i a);
      mass := !mass +. a)
    alpha;
  if !mass > 1. +. 1e-9 then
    invalid_arg "Phase_type.make: alpha mass exceeds 1";
  let exit = Array.make n 0. in
  for i = 0 to n - 1 do
    let row_sum = ref 0. in
    for j = 0 to n - 1 do
      let v = Dense.get t_matrix i j in
      if i = j then begin
        if v >= 0. then
          invalid_arg "Phase_type.make: diagonal of T must be negative"
      end
      else if v < 0. then
        invalid_arg "Phase_type.make: negative off-diagonal in T";
      row_sum := !row_sum +. v
    done;
    if !row_sum > 1e-9 then
      invalid_arg "Phase_type.make: row sums of T must be <= 0";
    exit.(i) <- Float.max 0. (-. !row_sum)
  done;
  let neg_t =
    Dense.init ~rows:n ~cols:n (fun i j -> -.Dense.get t_matrix i j)
  in
  let neg_t_factorization =
    match Lu.factorize neg_t with
    | f -> f
    | exception Lu.Singular _ ->
        invalid_arg
          "Phase_type.make: T is singular — absorption is not certain"
  in
  { alpha = Array.copy alpha; t_matrix; exit; neg_t_factorization }

let of_absorbing_chain g ~initial ~targets =
  Transient.validate_initial ~dim:(Generator.dim g) initial;
  if targets = [] then invalid_arg "Phase_type.of_absorbing_chain: no targets";
  let n = Generator.dim g in
  let is_target = Array.make n false in
  List.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Phase_type.of_absorbing_chain: target out of range";
      is_target.(s) <- true)
    targets;
  let phases = ref [] in
  for i = n - 1 downto 0 do
    if not is_target.(i) then phases := i :: !phases
  done;
  let phases = Array.of_list !phases in
  let m = Array.length phases in
  let position = Array.make n (-1) in
  Array.iteri (fun k i -> position.(i) <- k) phases;
  let t_matrix = Dense.zeros ~rows:m ~cols:m in
  Sparse.iter (Generator.matrix g) (fun i j v ->
      if (not is_target.(i)) && not is_target.(j) then
        Dense.set t_matrix position.(i) position.(j) v);
  let alpha = Array.make m 0. in
  Array.iteri
    (fun i p -> if (not is_target.(i)) && p > 0. then alpha.(position.(i)) <- p)
    initial;
  make ~alpha ~t_matrix

let phases d = Array.length d.alpha
let exit_rates d = Array.copy d.exit

let raw_moment d n =
  if n < 0 then invalid_arg "Phase_type.raw_moment: n >= 0";
  if n = 0 then 1.
  else begin
    (* n! alpha (-T)^{-n} 1 : repeated solves against the ones vector. *)
    let v = ref (Vec.ones (phases d)) in
    for _ = 1 to n do
      v := Lu.solve d.neg_t_factorization !v
    done;
    Mrm_util.Special.factorial n *. Vec.dot d.alpha !v
  end

let mean d = raw_moment d 1

let variance d =
  let m1 = raw_moment d 1 in
  raw_moment d 2 -. (m1 *. m1)

let cdf d x =
  if x < 0. then 0.
  else begin
    let e = Expm.expm (Dense.scale x d.t_matrix) in
    let survival = Vec.dot (Dense.vm d.alpha e) (Vec.ones (phases d)) in
    Float.max 0. (Float.min 1. (1. -. survival))
  end

let pdf d x =
  if x < 0. then 0.
  else begin
    let e = Expm.expm (Dense.scale x d.t_matrix) in
    Float.max 0. (Vec.dot (Dense.vm d.alpha e) d.exit)
  end

let sample d rng =
  let n = phases d in
  (* Atom at zero from the alpha deficit. *)
  let mass = Vec.sum d.alpha in
  if mass < 1. && Rng.uniform rng >= mass then 0.
  else begin
    let state = ref (Rng.categorical rng d.alpha) in
    let clock = ref 0. in
    let absorbed = ref false in
    while not !absorbed do
      let i = !state in
      let total_rate = -.Dense.get d.t_matrix i i in
      clock := !clock +. Rng.exponential rng ~rate:total_rate;
      (* Choose absorption vs each transient target. *)
      let weights = Array.make (n + 1) 0. in
      for j = 0 to n - 1 do
        if j <> i then weights.(j) <- Dense.get d.t_matrix i j
      done;
      weights.(n) <- d.exit.(i);
      let choice = Rng.categorical rng weights in
      if choice = n then absorbed := true else state := choice
    done;
    !clock
  end
