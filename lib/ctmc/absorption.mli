(** First-passage / absorption analysis of CTMCs.

    Given a set of target (absorbing) states, computes hitting
    probabilities and expected hitting times by dense linear solves on the
    non-target states. Used e.g. for mean-time-to-failure measures in the
    performability examples. *)

type analysis = {
  hit_probability : float array;
      (** probability of ever reaching the target set, per start state *)
  expected_time : float array;
      (** expected hitting time per start state; [infinity] where the
          target is reached with probability < 1, [0.] on target states *)
}

val analyze : Generator.t -> targets:int list -> analysis
(** States that cannot reach the target set (found by reverse
    reachability) get probability 0 and time [infinity]; the linear system
    is solved over the remaining states, where it is nonsingular.
    @raise Invalid_argument if [targets] is empty or out of range.
    Dense O(n^3); intended for models up to a few thousand states. *)

val mean_time_to_absorption :
  Generator.t -> initial:float array -> targets:int list -> float
(** Initial-distribution average of [expected_time]. *)
