(** Explicit ODE steppers over [float array] states.

    The paper cross-checks the randomization solver against "a numerical
    ODE solver (working based on eq. 6 using trapezoid rule)"; {!heun} is
    that comparator (the explicit trapezoidal predictor–corrector), with
    Euler, RK4 and adaptive RKF45 alongside for convergence studies. *)

type rhs = t:float -> y:float array -> float array
(** Vector field [dy/dt = f(t, y)]. Must not mutate [y]. *)

type method_ = Euler | Heun | Rk4

val step : method_ -> rhs -> t:float -> dt:float -> float array -> float array
(** One explicit step of size [dt]. *)

val integrate :
  method_ -> rhs -> t0:float -> t1:float -> steps:int -> float array ->
  float array
(** Fixed-step integration from [t0] to [t1] in [steps] equal steps.
    @raise Invalid_argument if [steps <= 0] or [t1 < t0]. *)

val trajectory :
  method_ -> rhs -> t0:float -> t1:float -> steps:int -> float array ->
  (float * float array) array
(** Like {!integrate} but retaining every grid point (including [t0]). *)

val rkf45 :
  rhs -> t0:float -> t1:float -> tol:float -> ?dt0:float ->
  ?max_steps:int -> float array -> float array
(** Adaptive Runge–Kutta–Fehlberg 4(5) with a per-step error target [tol]
    (mixed absolute/relative).
    @raise Failure if the step count exceeds [max_steps] (default
    1_000_000). *)
