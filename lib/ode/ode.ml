module Vec = Mrm_linalg.Vec

type rhs = t:float -> y:float array -> float array
type method_ = Euler | Heun | Rk4

let euler_step f ~t ~dt y =
  let k1 = f ~t ~y in
  Array.mapi (fun i yi -> yi +. (dt *. k1.(i))) y

let heun_step f ~t ~dt y =
  let k1 = f ~t ~y in
  let predictor = Array.mapi (fun i yi -> yi +. (dt *. k1.(i))) y in
  let k2 = f ~t:(t +. dt) ~y:predictor in
  Array.mapi (fun i yi -> yi +. (dt /. 2. *. (k1.(i) +. k2.(i)))) y

let rk4_step f ~t ~dt y =
  let k1 = f ~t ~y in
  let mid1 = Array.mapi (fun i yi -> yi +. (dt /. 2. *. k1.(i))) y in
  let k2 = f ~t:(t +. (dt /. 2.)) ~y:mid1 in
  let mid2 = Array.mapi (fun i yi -> yi +. (dt /. 2. *. k2.(i))) y in
  let k3 = f ~t:(t +. (dt /. 2.)) ~y:mid2 in
  let last = Array.mapi (fun i yi -> yi +. (dt *. k3.(i))) y in
  let k4 = f ~t:(t +. dt) ~y:last in
  Array.mapi
    (fun i yi ->
      yi +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))
    y

let step method_ f ~t ~dt y =
  match method_ with
  | Euler -> euler_step f ~t ~dt y
  | Heun -> heun_step f ~t ~dt y
  | Rk4 -> rk4_step f ~t ~dt y

let check_interval ~t0 ~t1 ~steps =
  if steps <= 0 then invalid_arg "Ode: requires steps > 0";
  if t1 < t0 then invalid_arg "Ode: requires t1 >= t0"

let integrate method_ f ~t0 ~t1 ~steps y0 =
  check_interval ~t0 ~t1 ~steps;
  let dt = (t1 -. t0) /. float_of_int steps in
  let y = ref (Array.copy y0) in
  for k = 0 to steps - 1 do
    let t = t0 +. (float_of_int k *. dt) in
    y := step method_ f ~t ~dt !y
  done;
  !y

let trajectory method_ f ~t0 ~t1 ~steps y0 =
  check_interval ~t0 ~t1 ~steps;
  let dt = (t1 -. t0) /. float_of_int steps in
  let out = Array.make (steps + 1) (t0, Array.copy y0) in
  let y = ref (Array.copy y0) in
  for k = 1 to steps do
    let t = t0 +. (float_of_int (k - 1) *. dt) in
    y := step method_ f ~t ~dt !y;
    out.(k) <- (t +. dt, Array.copy !y)
  done;
  out

(* Fehlberg 4(5) Butcher tableau. *)
let rkf45 f ~t0 ~t1 ~tol ?dt0 ?(max_steps = 1_000_000) y0 =
  if t1 < t0 then invalid_arg "Ode.rkf45: requires t1 >= t0";
  if tol <= 0. then invalid_arg "Ode.rkf45: requires tol > 0";
  if t1 = t0 then Array.copy y0
  else begin
    let dt = ref (Option.value dt0 ~default:((t1 -. t0) /. 100.)) in
    let t = ref t0 in
    let y = ref (Array.copy y0) in
    let steps = ref 0 in
    let combine coefficients =
      Array.mapi
        (fun i yi ->
          let acc = ref yi in
          List.iter (fun (c, (k : float array)) -> acc := !acc +. (!dt *. c *. k.(i)))
            coefficients;
          !acc)
        !y
    in
    while !t < t1 do
      incr steps;
      if !steps > max_steps then failwith "Ode.rkf45: max step count exceeded";
      if !t +. !dt > t1 then dt := t1 -. !t;
      let k1 = f ~t:!t ~y:!y in
      let k2 = f ~t:(!t +. (0.25 *. !dt)) ~y:(combine [ (0.25, k1) ]) in
      let k3 =
        f
          ~t:(!t +. (3. /. 8. *. !dt))
          ~y:(combine [ (3. /. 32., k1); (9. /. 32., k2) ])
      in
      let k4 =
        f
          ~t:(!t +. (12. /. 13. *. !dt))
          ~y:
            (combine
               [ (1932. /. 2197., k1); (-7200. /. 2197., k2);
                 (7296. /. 2197., k3) ])
      in
      let k5 =
        f ~t:(!t +. !dt)
          ~y:
            (combine
               [ (439. /. 216., k1); (-8., k2); (3680. /. 513., k3);
                 (-845. /. 4104., k4) ])
      in
      let k6 =
        f
          ~t:(!t +. (0.5 *. !dt))
          ~y:
            (combine
               [ (-8. /. 27., k1); (2., k2); (-3544. /. 2565., k3);
                 (1859. /. 4104., k4); (-11. /. 40., k5) ])
      in
      let y4 =
        combine
          [ (25. /. 216., k1); (1408. /. 2565., k3); (2197. /. 4104., k4);
            (-1. /. 5., k5) ]
      in
      let y5 =
        combine
          [ (16. /. 135., k1); (6656. /. 12825., k3); (28561. /. 56430., k4);
            (-9. /. 50., k5); (2. /. 55., k6) ]
      in
      let scale = 1. +. Vec.norm_inf !y in
      let error = Vec.max_abs_diff y4 y5 /. scale in
      if error <= tol || !dt <= 1e-14 *. (t1 -. t0) then begin
        t := !t +. !dt;
        y := y5
      end;
      (* Standard step-size controller with safety factor. *)
      let factor =
        if error = 0. then 2.
        else Float.min 2. (Float.max 0.2 (0.9 *. ((tol /. error) ** 0.25)))
      in
      dt := !dt *. factor
    done;
    !y
  end
