module Stationary = Mrm_ctmc.Stationary
module Generator = Mrm_ctmc.Generator
module Dense = Mrm_linalg.Dense
module Lu = Mrm_linalg.Lu
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec

let stationary_distribution model =
  let g = model.Model.generator in
  if Generator.dim g <= 2000 then Stationary.gth g
  else Stationary.power_iteration g

let reward_rate model =
  Vec.dot (stationary_distribution model) model.Model.rates

let mean_line model ~times =
  let rho = reward_rate model in
  Array.map (fun t -> (t, rho *. t)) times

(* Poisson equation Q g = -(r - rho 1). Q is singular (rank n-1 for an
   irreducible chain); pin the solution with the normalization pi g = 0 by
   replacing the last column equationwise: solve the augmented system
   (Q + h pi) g = -(r - rho 1), whose unique solution satisfies pi g = 0
   automatically (h = column of ones). *)
let variance_rate model =
  let n = Model.dim model in
  let pi = stationary_distribution model in
  let rho = Vec.dot pi model.Model.rates in
  let centered = Array.map (fun r -> rho -. r) model.Model.rates in
  let q_dense = Sparse.to_dense (Generator.matrix model.Model.generator) in
  let augmented =
    Dense.init ~rows:n ~cols:n (fun i j -> Dense.get q_dense i j +. pi.(j))
  in
  let g = Lu.solve_system augmented centered in
  let brownian_part = Vec.dot pi model.Model.variances in
  let modulation_part = ref 0. in
  for i = 0 to n - 1 do
    modulation_part :=
      !modulation_part
      +. (2. *. pi.(i) *. (model.Model.rates.(i) -. rho) *. g.(i))
  done;
  brownian_part +. !modulation_part
