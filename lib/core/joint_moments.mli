(** Joint moments of the accumulated reward and the final state, and the
    covariance structure of the reward process they unlock.

    [M^(n)(t)] is the matrix with entries
    [M^(n)_ij = E[B(t)^n 1(Z(t) = j) | Z(0) = i]]. It satisfies the same
    backward ODE as eq. (6) with matrix initial conditions
    ([M^(0)(0) = I], [M^(n)(0) = 0]), so the randomization recursion of
    Theorem 3 applies column-wise verbatim — the only difference is that
    order 0 now evolves ([U^(0)(k) = Q'^k]) instead of staying [h].

    With these, two-time quantities follow from the Markov property, e.g.
    [E[B(t1) B(t2)] = E[B(t1)^2] + (pi M^(1)(t1)) . V^(1)(t2 - t1)]
    for [t1 <= t2].

    Dense matrices throughout: cost and memory are [O(G N^2)], intended
    for models up to a few thousand states. *)

val matrices :
  ?eps:float -> Model.t -> t:float -> order:int -> Mrm_linalg.Dense.t array
(** [matrices m ~t ~order] returns [M^(0) .. M^(order)]. Row sums of
    [M^(n)] recover [V^(n)] (asserted in the tests); [M^(0)] is the
    transient probability matrix. Requires non-negative drifts or applies
    the usual shift internally. *)

val reward_with_final_state :
  ?eps:float -> Model.t -> t:float -> order:int -> float array
(** [pi M^(order)(t)] — per-final-state decomposition
    [E[B(t)^order 1(Z(t) = j)]] of the unconditional moment. *)

val covariance : ?eps:float -> Model.t -> t1:float -> t2:float -> float
(** [Cov(B(t1), B(t2))]; arguments in either order. *)

val correlation : ?eps:float -> Model.t -> t1:float -> t2:float -> float
(** Pearson correlation of [B(t1)] and [B(t2)]; requires both variances
    positive. *)
