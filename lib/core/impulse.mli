(** Second-order Markov reward models with impulse rewards — the extension
    the paper flags as compatible with its solution method ("the introduced
    solution method allows to relax these restrictions", Section 1).

    An impulse reward [rho_ij >= 0] is earned instantaneously at each
    transition [i -> j] of the structure-state process, on top of the
    Brownian rate accumulation of the base model.

    Derivation implemented here (following the paper's proof pattern):
    conditioning eq. (3) on the first transition and keeping the impulse
    factor [e^(-v rho_ik)] in the Laplace domain turns eq. (2) into

    [d b*/dt = (Q o E(v)) b* - v R b* + v^2/2 S b*],
    [(Q o E(v))_ij = q_ij e^(-v rho_ij)]  (i <> j),

    so the moment ODE (6) gains the terms
    [sum_{m=1..n} C(n,m) Q^(m) V^(n-m)] with [Q^(m)_ij = q_ij rho_ij^m],
    and the randomization recursion (10) gains
    [sum_{m=1..n} (1/m!) P^(m) U^(n-m)(k)] with [P^(m) = Q^(m)/(q d^m)],
    which stays substochastic provided [d >= max_ij rho_ij].

    The truncation bound generalizes with the coefficient-wise domination
    [phi(x) <= e^(2x)]: [U^(n)(k) <= (2k)^n/n!], giving
    [xi(G) <= (4d)^n (qt)^n P(Pois(qt) >= G+1-n)] (more conservative than
    Theorem 4's pure-rate bound; documented in DESIGN.md). *)

type t = private {
  base : Model.t;
  impulses : Mrm_linalg.Sparse.t;
      (** [rho_ij] aligned with the off-diagonal support of [Q] *)
}

val make : Model.t -> (int * int * float) list -> t
(** [make model impulses] attaches impulse rewards given as
    [(i, j, rho_ij)] triplets.
    @raise Invalid_argument if any [rho < 0], duplicates appear, or an
    impulse sits on a pair with [q_ij = 0] (it could never fire — almost
    always a model bug). *)

val max_impulse : t -> float

val moments :
  ?eps:float -> t -> t:float -> order:int -> Randomization.result
(** Randomization solver extended with the impulse terms; same result
    layout and diagnostics semantics as {!Randomization.moments}. Negative
    *rates* are allowed (handled by the usual shift); impulses must be
    non-negative. *)

val moment : ?eps:float -> t -> t:float -> order:int -> float
val mean : ?eps:float -> t -> t:float -> float
val variance : ?eps:float -> t -> t:float -> float

val moments_ode :
  ?method_:Mrm_ode.Ode.method_ -> ?steps:int -> t -> t:float -> order:int ->
  float array array
(** Independent comparator: the impulse-extended moment ODE integrated
    with an explicit stepper (defaults mirror {!Moments_ode}). *)

val sample : t -> Mrm_util.Rng.t -> t:float -> replicas:int -> float array
(** Exact-increment simulation including the impulses (third independent
    road, used by the tests). *)
