module Generator = Mrm_ctmc.Generator
module Poisson = Mrm_ctmc.Poisson
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec
module Special = Mrm_util.Special
module Rng = Mrm_util.Rng

type t = { base : Model.t; impulses : Sparse.t }

let make base impulse_list =
  let n = Model.dim base in
  let q = Generator.matrix base.Model.generator in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (i, j, rho) ->
      if Int.equal i j then
        invalid_arg "Impulse.make: impulses live on transitions (i <> j)";
      if rho < 0. || not (Float.is_finite rho) then
        invalid_arg
          (Printf.sprintf "Impulse.make: invalid impulse %g on (%d,%d)" rho i
             j);
      if Hashtbl.mem seen (i, j) then
        invalid_arg
          (Printf.sprintf "Impulse.make: duplicate impulse on (%d,%d)" i j);
      Hashtbl.add seen (i, j) ();
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Impulse.make: state out of range";
      if Sparse.get q i j <= 0. then
        invalid_arg
          (Printf.sprintf
             "Impulse.make: impulse on (%d,%d) but q_ij = 0 (cannot fire)" i
             j))
    impulse_list;
  let impulses =
    Sparse.of_triplets ~rows:n ~cols:n
      (List.filter (fun (_, _, rho) -> rho > 0.) impulse_list)
  in
  { base; impulses }

let max_impulse t =
  let worst = ref 0. in
  Sparse.iter t.impulses (fun _ _ rho -> worst := Float.max !worst rho);
  !worst

(* Q^(m): entries q_ij rho_ij^m on the impulse support. *)
let q_power_matrix t m =
  let q = Generator.matrix t.base.Model.generator in
  let triplets = ref [] in
  Sparse.iter t.impulses (fun i j rho ->
      let rate = Sparse.get q i j in
      triplets := (i, j, rate *. (rho ** float_of_int m)) :: !triplets);
  Sparse.of_triplets ~rows:(Model.dim t.base) ~cols:(Model.dim t.base)
    !triplets

let unshift_moments = Randomization.unshift_moments

let moments ?(eps = 1e-9) t ~t:horizon ~order =
  if horizon < 0. then invalid_arg "Impulse.moments: requires t >= 0";
  if order < 0 then invalid_arg "Impulse.moments: requires order >= 0";
  if not (eps > 0.) then invalid_arg "Impulse.moments: requires eps > 0";
  let base = t.base in
  let n_states = Model.dim base in
  let q = Generator.uniformization_rate base.Model.generator in
  if horizon = 0. || q = 0. || Sparse.nnz t.impulses = 0 then
    (* No transitions can fire (or no impulses): defer to the pure-rate
       solver, which also covers the q = 0 closed form. *)
    Randomization.moments ~eps base ~t:horizon ~order
  else begin
    let min_rate = Model.min_rate base in
    let shift = if min_rate < 0. then min_rate else 0. in
    let shifted_rates = Array.map (fun r -> r -. shift) base.Model.rates in
    let max_shifted_rate = Array.fold_left Float.max 0. shifted_rates in
    let max_std_dev = Model.max_std_dev base in
    (* d must also dominate the impulses for P^(m) substochasticity. *)
    let d =
      Float.max (max_impulse t)
        (Float.max (max_shifted_rate /. q) (max_std_dev /. sqrt q))
    in
    let lambda = q *. horizon in
    (* Truncation from the generalized bound
       (4d)^n (qt)^n tail(G+1-n) < eps, with G >= 2 * order. *)
    let g =
      if order = 0 then Poisson.tail_quantile ~lambda ~log_eps:(log eps)
      else begin
        let log_prefactor =
          float_of_int order *. (log 4. +. log d +. log lambda)
        in
        let m =
          Poisson.tail_quantile ~lambda ~log_eps:(log eps -. log_prefactor)
        in
        max (2 * order) (m + order - 1)
      end
    in
    let q' = Generator.uniformized base.Model.generator ~rate:q in
    let r' = Array.map (fun r -> r /. (q *. d)) shifted_rates in
    let s' = Array.map (fun v -> v /. (q *. d *. d)) base.Model.variances in
    (* P^(m) = Q^(m) / (q d^m), for m = 1..order. *)
    let p_matrices =
      Array.init order (fun k ->
          let m = k + 1 in
          Sparse.scale (1. /. (q *. (d ** float_of_int m))) (q_power_matrix t m))
    in
    let u = Array.init (order + 1) (fun _ -> Vec.zeros n_states) in
    u.(0) <- Vec.ones n_states;
    let acc = Array.init (order + 1) (fun _ -> Vec.zeros n_states) in
    let scratch = Vec.zeros n_states in
    let scratch2 = Vec.zeros n_states in
    for k = 0 to g do
      let w = Poisson.pmf ~lambda k in
      if w > 0. then
        for j = 1 to order do
          Vec.axpy ~alpha:w ~x:u.(j) ~y:acc.(j)
        done;
      if k < g then
        for j = order downto 1 do
          Sparse.mv_into q' u.(j) scratch;
          for i = 0 to n_states - 1 do
            scratch.(i) <- scratch.(i) +. (r'.(i) *. u.(j - 1).(i))
          done;
          if j >= 2 then
            for i = 0 to n_states - 1 do
              scratch.(i) <- scratch.(i) +. (0.5 *. s'.(i) *. u.(j - 2).(i))
            done;
          (* Impulse terms: sum_m (1/m!) P^(m) U^(j-m). *)
          for m = 1 to j do
            if Sparse.nnz p_matrices.(m - 1) > 0 then begin
              Sparse.mv_into p_matrices.(m - 1) u.(j - m) scratch2;
              Vec.axpy
                ~alpha:(1. /. Special.factorial m)
                ~x:scratch2 ~y:scratch
            end
          done;
          Array.blit scratch 0 u.(j) 0 n_states
        done
    done;
    let shifted_moments =
      Array.init (order + 1) (fun n ->
          if n = 0 then Vec.ones n_states
          else Vec.scale (Special.factorial n *. (d ** float_of_int n)) acc.(n))
    in
    let log_error_bound =
      if order = 0 then neg_infinity
      else
        (float_of_int order *. (log 4. +. log d +. log lambda))
        +. Poisson.log_tail ~lambda (max 0 (g + 1 - order))
    in
    {
      Randomization.moments = unshift_moments ~shift ~t:horizon shifted_moments;
      diagnostics = { q; d; shift; iterations = g; eps; log_error_bound };
    }
  end

let moment ?eps t ~t:horizon ~order =
  let { Randomization.moments = m; _ } = moments ?eps t ~t:horizon ~order in
  Vec.dot t.base.Model.initial m.(order)

let mean ?eps t ~t:horizon = moment ?eps t ~t:horizon ~order:1

let variance ?eps t ~t:horizon =
  let { Randomization.moments = m; _ } = moments ?eps t ~t:horizon ~order:2 in
  let pi = t.base.Model.initial in
  let m1 = Vec.dot pi m.(1) and m2 = Vec.dot pi m.(2) in
  m2 -. (m1 *. m1)

(* Impulse-extended moment ODE (independent comparator). *)
let moments_ode ?(method_ = Mrm_ode.Ode.Heun) ?steps t ~t:horizon ~order =
  if horizon < 0. then invalid_arg "Impulse.moments_ode: requires t >= 0";
  if order < 0 then invalid_arg "Impulse.moments_ode: requires order >= 0";
  let base = t.base in
  let n = Model.dim base in
  let qm = Generator.matrix base.Model.generator in
  let q_powers = Array.init order (fun k -> q_power_matrix t (k + 1)) in
  let rates = base.Model.rates and variances = base.Model.variances in
  let rhs ~t:_ ~y =
    let dy = Array.make (n * (order + 1)) 0. in
    let block j = Array.sub y (j * n) n in
    for j = 0 to order do
      let qv = Sparse.mv qm (block j) in
      let jf = float_of_int j in
      for i = 0 to n - 1 do
        let drift =
          if j >= 1 then jf *. rates.(i) *. y.(((j - 1) * n) + i) else 0.
        in
        let diffusion =
          if j >= 2 then
            0.5 *. jf *. (jf -. 1.) *. variances.(i) *. y.(((j - 2) * n) + i)
          else 0.
        in
        dy.((j * n) + i) <- qv.(i) +. drift +. diffusion
      done;
      (* Impulse coupling: + sum_m C(j,m) Q^(m) V^(j-m). *)
      for m = 1 to j do
        if Sparse.nnz q_powers.(m - 1) > 0 then begin
          let coupled = Sparse.mv q_powers.(m - 1) (block (j - m)) in
          let coefficient = Special.binomial j m in
          for i = 0 to n - 1 do
            dy.((j * n) + i) <- dy.((j * n) + i) +. (coefficient *. coupled.(i))
          done
        end
      done
    done;
    dy
  in
  let y0 = Array.make (n * (order + 1)) 0. in
  for i = 0 to n - 1 do
    y0.(i) <- 1.
  done;
  if horizon = 0. then Array.init (order + 1) (fun j -> Array.sub y0 (j * n) n)
  else begin
    let steps =
      Option.value steps
        ~default:(Moments_ode.default_steps base ~t:horizon)
    in
    let y =
      Mrm_ode.Ode.integrate method_ rhs ~t0:0. ~t1:horizon ~steps y0
    in
    Array.init (order + 1) (fun j -> Array.sub y (j * n) n)
  end

let sample t rng ~t:horizon ~replicas =
  if horizon < 0. then invalid_arg "Impulse.sample: requires t >= 0";
  if replicas <= 0 then invalid_arg "Impulse.sample: requires replicas > 0";
  let base = t.base in
  let g = base.Model.generator in
  let n = Model.dim base in
  let exit_rates = Generator.exit_rates g in
  let targets = Array.make n [||] and probabilities = Array.make n [||] in
  for i = 0 to n - 1 do
    let jumps = Generator.embedded_jump_distribution g i in
    targets.(i) <- Array.map fst jumps;
    probabilities.(i) <- Array.map snd jumps
  done;
  let impulse i j = Sparse.get t.impulses i j in
  let one_sample () =
    let rec go state now reward =
      if now >= horizon then reward
      else begin
        let exit = exit_rates.(state) in
        if exit <= 0. then
          reward
          +. Mrm_brownian.Brownian.sample_increment
               (Model.brownian_of_state base state)
               rng ~dt:(horizon -. now)
        else begin
          let sojourn = Rng.exponential rng ~rate:exit in
          let dt = Float.min sojourn (horizon -. now) in
          let reward =
            reward
            +. Mrm_brownian.Brownian.sample_increment
                 (Model.brownian_of_state base state)
                 rng ~dt
          in
          if now +. sojourn >= horizon then reward
          else begin
            let next =
              targets.(state).(Rng.categorical rng probabilities.(state))
            in
            go next (now +. sojourn) (reward +. impulse state next)
          end
        end
      end
    in
    go (Rng.categorical rng base.Model.initial) 0. 0.
  in
  Array.init replicas (fun _ -> one_sample ())
