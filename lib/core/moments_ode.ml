module Generator = Mrm_ctmc.Generator
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec
module Ode = Mrm_ode.Ode
module Trace = Mrm_obs.Trace
module Metrics = Mrm_obs.Metrics

let m_solves = Metrics.counter "ode.solves"
let m_steps = Metrics.counter "ode.steps"

let default_steps model ~t =
  let q = Generator.uniformization_rate model.Model.generator in
  max 100 (int_of_float (ceil (2. *. q *. t)))

(* The stacked state vector is [V^(0); V^(1); ...; V^(order)]. *)
let rhs model ~order =
  let n = Model.dim model in
  let qm = Generator.matrix model.Model.generator in
  let rates = model.Model.rates and variances = model.Model.variances in
  fun ~t:_ ~y ->
    let dy = Array.make (n * (order + 1)) 0. in
    let block j = Array.sub y (j * n) n in
    for j = 0 to order do
      let qv = Sparse.mv qm (block j) in
      let jf = float_of_int j in
      for i = 0 to n - 1 do
        let drift_term =
          if j >= 1 then jf *. rates.(i) *. y.(((j - 1) * n) + i) else 0.
        in
        let diffusion_term =
          if j >= 2 then
            0.5 *. jf *. (jf -. 1.) *. variances.(i) *. y.(((j - 2) * n) + i)
          else 0.
        in
        dy.((j * n) + i) <- qv.(i) +. drift_term +. diffusion_term
      done
    done;
    dy

let initial_state model ~order =
  let n = Model.dim model in
  let y0 = Array.make (n * (order + 1)) 0. in
  for i = 0 to n - 1 do
    y0.(i) <- 1.
  done;
  y0

let unstack model ~order y =
  let n = Model.dim model in
  Array.init (order + 1) (fun j -> Array.sub y (j * n) n)

let check_args ~t ~order =
  (* Reject NaN/infinite horizons outright: [t < 0.] alone lets them
     through (NaN comparisons are all false) and the stepper would grind
     on a poisoned state vector. *)
  if not (Float.is_finite t) || t < 0. then
    invalid_arg "Moments_ode: requires finite t >= 0";
  if order < 0 then invalid_arg "Moments_ode: requires order >= 0"

(* Pre-solve static verification (the ?validate flag); eps is not
   meaningful for the ODE comparators, so the checker runs with its
   default truncation precision. *)
let validate_model model ~t ~order =
  Mrm_check.Check.validate_exn
    ~config:
      { Mrm_check.Check.default_config with Mrm_check.Check.t; order }
    (Model.check_data model)

let moments ?(validate = false) ?(method_ = Ode.Heun) ?steps model ~t ~order =
  if validate then validate_model model ~t ~order;
  check_args ~t ~order;
  let steps = Option.value steps ~default:(default_steps model ~t) in
  Trace.with_span "ode.moments"
    ~attrs:
      [ ("t", Trace.Float t); ("order", Trace.Int order);
        ("steps", Trace.Int steps) ]
  @@ fun () ->
  Metrics.incr m_solves;
  let y0 = initial_state model ~order in
  if t = 0. then unstack model ~order y0
  else begin
    Metrics.incr ~by:steps m_steps;
    let y =
      Ode.integrate method_ (rhs model ~order) ~t0:0. ~t1:t ~steps y0
    in
    unstack model ~order y
  end

let moment ?method_ ?steps model ~t ~order =
  let m = moments ?method_ ?steps model ~t ~order in
  Vec.dot model.Model.initial m.(order)

let moments_adaptive ?(validate = false) ?(tol = 1e-10) model ~t ~order =
  if validate then validate_model model ~t ~order;
  check_args ~t ~order;
  Trace.with_span "ode.moments_adaptive"
    ~attrs:
      [ ("t", Trace.Float t); ("order", Trace.Int order);
        ("tol", Trace.Float tol) ]
  @@ fun () ->
  Metrics.incr m_solves;
  let y0 = initial_state model ~order in
  if t = 0. then unstack model ~order y0
  else begin
    let q = Generator.uniformization_rate model.Model.generator in
    (* Start inside the stability region so the controller does not have to
       recover from a wildly unstable first step. *)
    let dt0 = if q > 0. then Float.min (t /. 10.) (0.5 /. q) else t /. 10. in
    let y = Ode.rkf45 (rhs model ~order) ~t0:0. ~t1:t ~tol ~dt0 y0 in
    unstack model ~order y
  end
