(** Distribution of the accumulated reward via the transform-domain
    characterization (eq. 2 / Corollary 2) and Gil-Pelaez inversion.

    Setting [v = -i omega] in eq. (2) turns it into an ODE for the
    conditional characteristic functions
    [psi_i(omega) = E[e^(i omega B(t)) | Z(0) = i]]:

    [d psi / dt = (Q + i omega R - omega^2/2 S) psi],  [psi(0) = 1]

    which is integrated (complex RK4) per frequency, and the CDF recovered
    by the Gil-Pelaez formula
    [F(x) = 1/2 - (1/pi) int_0^inf Im(e^(-i omega x) phi(omega))/omega
    d omega].

    Unlike the finite-difference PDE route (eq. 4) this has no spatial
    grid, so it scales to larger models; unlike the moment bounds it gives
    a point estimate rather than an envelope. For models with all
    [sigma_i^2 > 0] the integrand decays like a Gaussian and a few hundred
    frequencies give ~1e-6 accuracy; purely first-order models may carry
    atoms, where the estimate converges to the CDF midpoint (documented
    limitation). *)

val characteristic_function :
  Model.t -> t:float -> omega:float -> Complex.t
(** Unconditional [E e^(i omega B(t))] (initial-distribution mix of the
    conditional solutions). *)

val conditional_characteristic_function :
  Model.t -> t:float -> omega:float -> Complex.t array
(** Per-initial-state characteristic functions [psi_i]. *)

type grid = {
  step : float;  (** frequency spacing *)
  count : int;  (** number of midpoint frequencies used *)
}

val cdf_grid :
  ?max_frequencies:int -> ?phi_cutoff:float -> Model.t -> t:float ->
  float array -> float array * grid
(** [cdf_grid model ~t points] evaluates [P(B(t) <= x)] at each point.
    The frequency grid is sized from the first two moments (computed
    internally by randomization) and extends until [|phi| < phi_cutoff]
    (default 1e-9) or [max_frequencies] midpoints (default 4000). Returned
    values are clamped to [0, 1].
    @raise Invalid_argument if [t <= 0]. *)

val cdf :
  ?max_frequencies:int -> ?phi_cutoff:float -> Model.t -> t:float -> float ->
  float
(** Single-point convenience wrapper over {!cdf_grid}. *)
