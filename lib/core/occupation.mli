(** Occupation-time and interval-availability measures as reward models.

    The accumulated reward with [r_i = 1(i in S)], [sigma_i = 0] is the
    occupation time of [S] over [(0, t)]; divided by [t] it is the
    interval availability — the classical performability measure this
    paper's framework generalizes. These are thin constructors over
    {!Model} plus convenience evaluators. *)

val occupation_model :
  Mrm_ctmc.Generator.t -> initial:float array -> states:int list ->
  Model.t
(** First-order MRM whose accumulated reward is the time spent in
    [states]. @raise Invalid_argument on duplicate/out-of-range states. *)

val expected_time_in :
  ?eps:float -> Mrm_ctmc.Generator.t -> initial:float array ->
  states:int list -> t:float -> float
(** [E] time spent in [states] during [(0, t)]. *)

val interval_availability_moments :
  ?eps:float -> Mrm_ctmc.Generator.t -> initial:float array ->
  states:int list -> t:float -> order:int -> float array
(** Raw moments of the interval availability [A(t) = occupation/t],
    orders [0..order]. *)

val availability_bounds :
  ?moment_count:int -> Mrm_ctmc.Generator.t -> initial:float array ->
  states:int list -> t:float -> float array ->
  Moment_bounds.bound array
(** CDF bounds on the interval availability at the given points (moment
    count default 16). *)
