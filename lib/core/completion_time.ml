module Generator = Mrm_ctmc.Generator
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec

let dual_model model =
  if not (Model.is_first_order model) then
    invalid_arg "Completion_time: model must be first-order";
  let n = Model.dim model in
  let rates = model.Model.rates in
  Array.iteri
    (fun i r ->
      if r <= 0. then
        invalid_arg
          (Printf.sprintf
             "Completion_time: rate %g at state %d (need all > 0)" r i))
    rates;
  (* Reward-clock generator R^{-1} Q: row i scaled by 1/r_i. *)
  let triplets = ref [] in
  Sparse.iter (Generator.matrix model.Model.generator) (fun i j v ->
      if (not (Int.equal i j)) && v > 0. then
        triplets := (i, j, v /. rates.(i)) :: !triplets);
  let dual_generator = Generator.of_triplets ~states:n !triplets in
  Model.first_order ~generator:dual_generator
    ~rates:(Array.map (fun r -> 1. /. r) rates)
    ~initial:model.Model.initial

let moments ?eps model ~x ~order =
  if x < 0. then invalid_arg "Completion_time.moments: requires x >= 0";
  let dual = dual_model model in
  let result = Randomization.moments ?eps dual ~t:x ~order in
  Array.init (order + 1) (fun n ->
      Vec.dot model.Model.initial result.Randomization.moments.(n))

let mean ?eps model ~x =
  let m = moments ?eps model ~x ~order:1 in
  m.(1)

let cdf ?eps model ~x ~t =
  ignore eps;
  if t < 0. then 0.
  else if x = 0. then 1.
  else begin
    (* P(T_x <= t) = P(dual reward over (0, x) <= t). *)
    let dual = dual_model model in
    Transform_distribution.cdf dual ~t:x t
  end
