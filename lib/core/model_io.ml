module Generator = Mrm_ctmc.Generator
module Sparse = Mrm_linalg.Sparse

type parsed = { model : Model.t; impulses : (int * int * float) list }

let fail_line line_number message =
  failwith (Printf.sprintf "Model_io: line %d: %s" line_number message)

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let states = ref None in
  let transitions = ref [] in
  let rewards = Hashtbl.create 16 in
  let initial_entries = ref [] in
  let impulses = ref [] in
  let parse_int line_number s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail_line line_number (Printf.sprintf "bad integer %S" s)
  in
  let parse_float line_number s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> fail_line line_number (Printf.sprintf "bad number %S" s)
  in
  List.iteri
    (fun index raw ->
      let line_number = index + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some cut -> String.sub raw 0 cut
        | None -> raw
      in
      let tokens =
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      match tokens with
      | [] -> ()
      | [ "states"; n ] -> begin
          match !states with
          | Some _ -> fail_line line_number "duplicate 'states' declaration"
          | None -> states := Some (parse_int line_number n)
        end
      | [ "transition"; i; j; rate ] ->
          transitions :=
            ( parse_int line_number i,
              parse_int line_number j,
              parse_float line_number rate )
            :: !transitions
      | [ "reward"; i; drift; variance ] -> begin
          let state = parse_int line_number i in
          if Hashtbl.mem rewards state then
            fail_line line_number
              (Printf.sprintf "duplicate reward for state %d" state);
          Hashtbl.add rewards state
            (parse_float line_number drift, parse_float line_number variance)
        end
      | [ "initial"; i; p ] ->
          initial_entries :=
            (parse_int line_number i, parse_float line_number p)
            :: !initial_entries
      | [ "impulse"; i; j; rho ] ->
          impulses :=
            ( parse_int line_number i,
              parse_int line_number j,
              parse_float line_number rho )
            :: !impulses
      | keyword :: _ ->
          fail_line line_number (Printf.sprintf "unknown directive %S" keyword))
    lines;
  let n =
    match !states with
    | Some n when n > 0 -> n
    | Some n -> failwith (Printf.sprintf "Model_io: states %d must be > 0" n)
    | None -> failwith "Model_io: missing 'states' declaration"
  in
  let check_state label s =
    if s < 0 || s >= n then
      failwith (Printf.sprintf "Model_io: %s state %d out of [0, %d)" label s n)
  in
  List.iter
    (fun (i, j, _) ->
      check_state "transition" i;
      check_state "transition" j)
    !transitions;
  let generator =
    try Generator.of_triplets ~states:n !transitions
    with Invalid_argument message -> failwith ("Model_io: " ^ message)
  in
  let rates = Array.make n 0. and variances = Array.make n 0. in
  Hashtbl.iter
    (fun state (drift, variance) ->
      check_state "reward" state;
      rates.(state) <- drift;
      variances.(state) <- variance)
    rewards;
  let initial = Array.make n 0. in
  List.iter
    (fun (state, p) ->
      check_state "initial" state;
      initial.(state) <- p)
    !initial_entries;
  let model =
    try Model.make ~generator ~rates ~variances ~initial
    with Invalid_argument message -> failwith ("Model_io: " ^ message)
  in
  { model; impulses = List.rev !impulses }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      parse_string (really_input_string ic size))

let to_string ?(impulses = []) model =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = Model.dim model in
  out "states %d\n" n;
  Sparse.iter (Generator.matrix model.Model.generator) (fun i j v ->
      if i <> j && v <> 0. then out "transition %d %d %.17g\n" i j v);
  for i = 0 to n - 1 do
    if model.Model.rates.(i) <> 0. || model.Model.variances.(i) <> 0. then
      out "reward %d %.17g %.17g\n" i model.Model.rates.(i)
        model.Model.variances.(i)
  done;
  for i = 0 to n - 1 do
    if model.Model.initial.(i) <> 0. then
      out "initial %d %.17g\n" i model.Model.initial.(i)
  done;
  List.iter (fun (i, j, rho) -> out "impulse %d %d %.17g\n" i j rho) impulses;
  Buffer.contents buf

let save ~path ?impulses model =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?impulses model))
