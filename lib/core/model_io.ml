module Generator = Mrm_ctmc.Generator
module Sparse = Mrm_linalg.Sparse

type parsed = { model : Model.t; impulses : (int * int * float) list }

type error = { line : int option; field : string option; message : string }

let error_message e =
  match (e.line, e.field) with
  | Some l, Some f -> Printf.sprintf "line %d, %s: %s" l f e.message
  | Some l, None -> Printf.sprintf "line %d: %s" l e.message
  | None, Some f -> Printf.sprintf "%s: %s" f e.message
  | None, None -> e.message

exception Err of error

let err ?line ?field format =
  Printf.ksprintf (fun message -> raise (Err { line; field; message })) format

type raw = {
  declared_states : int;
  raw_transitions : (int * int * float) list;
  raw_rewards : (int * float * float) list;
  raw_initial : (int * float) list;
  raw_impulses : (int * int * float) list;
}

let parse_raw_exn text =
  let lines = String.split_on_char '\n' text in
  let states = ref None in
  (* Entries keep their source line so range errors (checked once the
     state count is known — 'states' may appear anywhere) still point at
     the offending line. *)
  let transitions = ref [] in
  let rewards = Hashtbl.create 16 in
  let reward_order = ref [] in
  let initial_entries = ref [] in
  let impulses = ref [] in
  let parse_int line field s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> err ~line ~field "bad integer %S" s
  in
  let parse_float line field s =
    match float_of_string_opt s with
    | Some v -> v
    | None -> err ~line ~field "bad number %S" s
  in
  List.iteri
    (fun index raw_line ->
      let line = index + 1 in
      let content =
        match String.index_opt raw_line '#' with
        | Some cut -> String.sub raw_line 0 cut
        | None -> raw_line
      in
      let tokens =
        String.split_on_char ' ' (String.trim content)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      match tokens with
      | [] -> ()
      | [ "states"; n ] -> begin
          match !states with
          | Some _ -> err ~line ~field:"states" "duplicate 'states' declaration"
          | None -> states := Some (line, parse_int line "states" n)
        end
      | "states" :: _ -> err ~line ~field:"states" "expected: states N"
      | [ "transition"; i; j; rate ] ->
          transitions :=
            ( line,
              ( parse_int line "transition" i,
                parse_int line "transition" j,
                parse_float line "transition" rate ) )
            :: !transitions
      | "transition" :: _ ->
          err ~line ~field:"transition" "expected: transition FROM TO RATE"
      | [ "reward"; i; drift; variance ] -> begin
          let state = parse_int line "reward" i in
          if Hashtbl.mem rewards state then
            err ~line ~field:"reward" "duplicate reward for state %d" state;
          Hashtbl.add rewards state ();
          reward_order :=
            ( line,
              ( state,
                parse_float line "reward" drift,
                parse_float line "reward" variance ) )
            :: !reward_order
        end
      | "reward" :: _ ->
          err ~line ~field:"reward" "expected: reward STATE DRIFT VARIANCE"
      | [ "initial"; i; p ] ->
          initial_entries :=
            (line, (parse_int line "initial" i, parse_float line "initial" p))
            :: !initial_entries
      | "initial" :: _ ->
          err ~line ~field:"initial" "expected: initial STATE PROBABILITY"
      | [ "impulse"; i; j; rho ] ->
          impulses :=
            ( line,
              ( parse_int line "impulse" i,
                parse_int line "impulse" j,
                parse_float line "impulse" rho ) )
            :: !impulses
      | "impulse" :: _ ->
          err ~line ~field:"impulse" "expected: impulse FROM TO REWARD"
      | keyword :: _ -> err ~line "unknown directive %S" keyword)
    lines;
  let n =
    match !states with
    | Some (_, n) when n > 0 -> n
    | Some (line, n) -> err ~line ~field:"states" "states %d must be > 0" n
    | None -> err ~field:"states" "missing 'states' declaration"
  in
  let check_state line field s =
    if s < 0 || s >= n then
      err ~line ~field "state %d out of [0, %d)" s n
  in
  List.iter
    (fun (line, (i, j, _)) ->
      check_state line "transition" i;
      check_state line "transition" j)
    !transitions;
  List.iter
    (fun (line, (s, _, _)) -> check_state line "reward" s)
    !reward_order;
  List.iter
    (fun (line, (s, _)) -> check_state line "initial" s)
    !initial_entries;
  List.iter
    (fun (line, (i, j, _)) ->
      check_state line "impulse" i;
      check_state line "impulse" j)
    !impulses;
  let strip entries = List.rev_map snd entries in
  {
    declared_states = n;
    raw_transitions = strip !transitions;
    raw_rewards = strip !reward_order;
    raw_initial = strip !initial_entries;
    raw_impulses = strip !impulses;
  }

let parse_raw text =
  match parse_raw_exn text with
  | raw -> Ok raw
  | exception Err e -> Error e

let model_of_raw raw =
  let n = raw.declared_states in
  let generator =
    try Generator.of_triplets ~states:n raw.raw_transitions
    with Invalid_argument message ->
      raise (Err { line = None; field = Some "transition"; message })
  in
  let rates = Array.make n 0. and variances = Array.make n 0. in
  List.iter
    (fun (state, drift, variance) ->
      rates.(state) <- drift;
      variances.(state) <- variance)
    raw.raw_rewards;
  let initial = Array.make n 0. in
  List.iter (fun (state, p) -> initial.(state) <- p) raw.raw_initial;
  let model =
    try Model.make ~generator ~rates ~variances ~initial
    with Invalid_argument message ->
      raise (Err { line = None; field = Some "model"; message })
  in
  { model; impulses = raw.raw_impulses }

let parse_string_result text =
  match model_of_raw (parse_raw_exn text) with
  | parsed -> Ok parsed
  | exception Err e -> Error e

let parse_string text =
  match parse_string_result text with
  | Ok parsed -> parsed
  | Error e -> failwith ("Model_io: " ^ error_message e)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      really_input_string ic size)

let load_result path = parse_string_result (read_file path)
let load path = parse_string (read_file path)

let to_string ?(impulses = []) model =
  let buf = Buffer.create 512 in
  let out format = Printf.ksprintf (Buffer.add_string buf) format in
  let n = Model.dim model in
  out "states %d\n" n;
  Sparse.iter (Generator.matrix model.Model.generator) (fun i j v ->
      if (not (Int.equal i j)) && v <> 0. then
        out "transition %d %d %.17g\n" i j v);
  for i = 0 to n - 1 do
    if model.Model.rates.(i) <> 0. || model.Model.variances.(i) <> 0. then
      out "reward %d %.17g %.17g\n" i model.Model.rates.(i)
        model.Model.variances.(i)
  done;
  for i = 0 to n - 1 do
    if model.Model.initial.(i) <> 0. then
      out "initial %d %.17g\n" i model.Model.initial.(i)
  done;
  List.iter (fun (i, j, rho) -> out "impulse %d %d %.17g\n" i j rho) impulses;
  Buffer.contents buf

let save ~path ?impulses model =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?impulses model))
