(** Finite-difference solution of the density PDE (Corollary 1, eq. 4):

    [db/dt + R db/dx - 1/2 S d2b/dx2 = Q b],   [b(0, x) = delta(x)]

    First-order upwind transport + central diffusion, explicit Euler in
    time under a CFL-limited step. The paper notes this route "might be
    slow and inaccurate" beyond small models — it exists as the
    distribution-level comparator for the moment methods (its moments are
    checked against randomization in the tests). *)

type solution = {
  xs : float array;  (** grid points *)
  density : float array array;
      (** [density.(i).(j)] = conditional density [b_i(t, xs.(j))] *)
  dx : float;
  steps_taken : int;
}

val solve :
  ?x_margin:float -> ?cells:int -> Model.t -> t:float -> solution
(** Evolve the density to time [t]. The spatial domain is chosen
    automatically from the reward range ([min/max drift * t] widened by
    [x_margin] standard deviations of the largest-variance state, default
    8; [cells] grid cells, default 400).
    @raise Invalid_argument if [t <= 0]. *)

val unconditional_density : Model.t -> solution -> float array
(** [sum_i pi_i b_i(t, x)] on the grid. *)

val cdf : Model.t -> solution -> float -> float
(** CDF of the unconditional density at a point (trapezoidal integration
    over the grid). *)

val raw_moment : Model.t -> solution -> int -> float
(** Grid moment [int x^n sum_i pi_i b_i(t,x) dx]. *)
