(** Moments of accumulated reward by direct numerical integration of the
    coupled ODE system of Theorem 2 (eq. 6):

    [dV^(n)/dt = Q V^(n) + n R V^(n-1) + n(n-1)/2 S V^(n-2)]

    This is the comparator the paper validates randomization against
    ("a numerical ODE solver working based on eq. 6 using trapezoid
    rule" = {!Mrm_ode.Ode.Heun}). Explicit steppers require
    [dt <~ 1/q] for stability; {!default_steps} encodes that. *)

val default_steps : Model.t -> t:float -> int
(** [max 100 (ceil (2 q t))] — a stable step count for the explicit
    steppers on a model with uniformization rate [q]. *)

val moments :
  ?validate:bool -> ?method_:Mrm_ode.Ode.method_ -> ?steps:int -> Model.t ->
  t:float -> order:int -> float array array
(** [moments m ~t ~order] with the same layout as
    {!Randomization.moments}: result [.(n).(i) = V_i^(n)(t)].
    Default method is [Heun] (the paper's trapezoid comparator) with
    {!default_steps}.

    [validate] (default [false]) runs {!Mrm_check.Check} on the model
    and configuration first and raises {!Mrm_check.Check.Failed} on any
    error-severity finding (see {!Randomization.moments}).

    [t = 0.] returns the exact initial condition without stepping.
    @raise Invalid_argument if [t] is NaN, infinite or negative (the
    non-finite cases are rejected explicitly; a plain sign check would
    let them through), or if [order < 0]. *)

val moment :
  ?method_:Mrm_ode.Ode.method_ -> ?steps:int -> Model.t -> t:float ->
  order:int -> float
(** Unconditional moment [pi . V^(order)(t)]. *)

val moments_adaptive :
  ?validate:bool -> ?tol:float -> Model.t -> t:float -> order:int ->
  float array array
(** Same system integrated with adaptive RKF45 (default [tol = 1e-10]).
    [validate] as in {!moments}. *)
