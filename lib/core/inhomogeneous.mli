(** Inhomogeneous second-order Markov reward models: generator, drifts and
    variances may depend on (global) time.

    The paper's introduction points to inhomogeneous MRMs (its ref. [6],
    Telek–Horváth–Horváth 2003) as a generalization whose analysis often
    costs no more than the homogeneous case. The moment system becomes a
    {e backward} equation in the start time [s] of the accumulation
    window [(s, T)]:

    [-dV^(n)/ds = Q(s) V^(n) + n R(s) V^(n-1) + n(n-1)/2 S(s) V^(n-2)]

    solved here in the reversed clock [u = T - s] (coefficients evaluated
    at [T - u]) — for a homogeneous model the direction is invisible, for
    switching coefficients it is essential (see the two-segment
    composition test). Randomization does not apply directly (no single
    uniformization rate), so the system is integrated with the adaptive
    RKF45 stepper. The homogeneous solvers remain the fast path; this is
    the generality escape hatch. *)

type t
(** An inhomogeneous model over a fixed state count. *)

val make :
  states:int ->
  generator:(float -> Mrm_ctmc.Generator.t) ->
  rates:(float -> float array) ->
  variances:(float -> float array) ->
  initial:float array ->
  t
(** The callbacks receive absolute time and must return consistent
    dimensions; the generator callback is re-validated at every
    evaluation point of the stepper (its cost, typically small, is paid
    per RHS evaluation).
    @raise Invalid_argument on a bad initial vector. *)

val of_homogeneous : Model.t -> t
(** Wrap a homogeneous model (constant callbacks); handy for testing. *)

val moments :
  ?tol:float -> ?breakpoints:float array -> t -> t:float -> order:int ->
  float array array
(** Per-state raw moments at time [t] (layout as
    {!Randomization.moments}); adaptive integration to local tolerance
    [tol] (default 1e-10). If the coefficient callbacks jump (switching
    generators, stepped rates), pass the jump instants as [breakpoints]:
    the integration restarts at each, which an adaptive stepper cannot do
    reliably on its own. *)

val moment :
  ?tol:float -> ?breakpoints:float array -> t -> t:float -> order:int -> float
(** Initial-distribution unconditional moment. *)

val mean : ?tol:float -> ?breakpoints:float array -> t -> t:float -> float
