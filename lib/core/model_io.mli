(** Plain-text serialization of second-order MRMs, so the CLI (and user
    scripts) can analyze models that are not built into the model zoo.

    Format (line-oriented; [#] starts a comment; blank lines ignored):

    {v
    states 3
    # from to rate        (off-diagonal entries of Q; diagonal is implied)
    transition 0 1 2.5
    transition 1 0 1.0
    transition 1 2 0.5
    transition 2 0 3.0
    # state drift variance
    reward 0 4.0 0.3
    reward 1 2.0 1.0
    reward 2 0.5 0.1
    # initial probabilities (states default to 0)
    initial 0 1.0
    # optional impulse rewards on transitions
    impulse 0 1 0.4
    v}

    Unlisted rewards default to drift 0, variance 0. *)

type parsed = {
  model : Model.t;
  impulses : (int * int * float) list;  (** empty if none declared *)
}

type error = {
  line : int option;  (** 1-based source line, when attributable *)
  field : string option;
      (** the directive or construction phase that failed, e.g.
          ["transition"], ["states"], ["model"] *)
  message : string;
}
(** Structured parse/build failure, so front ends (notably [mrm2 lint])
    can render findings with positions instead of scraping exception
    text. *)

val error_message : error -> string
(** ["line 3, transition: bad number \"abc\""]. *)

type raw = {
  declared_states : int;
  raw_transitions : (int * int * float) list;  (** in file order *)
  raw_rewards : (int * float * float) list;  (** (state, drift, variance) *)
  raw_initial : (int * float) list;
  raw_impulses : (int * int * float) list;
}
(** Syntactic content of a model file, before any semantic validation:
    negative rates, negative variances and non-normalized initial
    distributions are all representable. [mrm2 lint] analyzes this form
    so it can report {e all} violations with state indices, rather than
    stopping at the first exception from the validating constructors. *)

val parse_raw : string -> (raw, error) result
(** Syntax and state-index-range checking only. *)

val parse_string_result : string -> (parsed, error) result
(** Full pipeline: {!parse_raw}, then generator and model construction
    (validation failures are reported with [field = "transition"] or
    ["model"] and no line). *)

val load_result : string -> (parsed, error) result
(** @raise Sys_error on I/O failure. *)

val parse_string : string -> parsed
(** @raise Failure with ["Model_io: " ^ error_message e] on malformed
    input. *)

val load : string -> parsed
(** Read and parse a file. @raise Sys_error on I/O failure, [Failure] on
    parse errors. *)

val to_string : ?impulses:(int * int * float) list -> Model.t -> string
(** Render a model in the same format ([parse_string] round-trips it). *)

val save : path:string -> ?impulses:(int * int * float) list -> Model.t -> unit
