(** Plain-text serialization of second-order MRMs, so the CLI (and user
    scripts) can analyze models that are not built into the model zoo.

    Format (line-oriented; [#] starts a comment; blank lines ignored):

    {v
    states 3
    # from to rate        (off-diagonal entries of Q; diagonal is implied)
    transition 0 1 2.5
    transition 1 0 1.0
    transition 1 2 0.5
    transition 2 0 3.0
    # state drift variance
    reward 0 4.0 0.3
    reward 1 2.0 1.0
    reward 2 0.5 0.1
    # initial probabilities (states default to 0)
    initial 0 1.0
    # optional impulse rewards on transitions
    impulse 0 1 0.4
    v}

    Unlisted rewards default to drift 0, variance 0. *)

type parsed = {
  model : Model.t;
  impulses : (int * int * float) list;  (** empty if none declared *)
}

val parse_string : string -> parsed
(** @raise Failure with a line-numbered message on malformed input. *)

val load : string -> parsed
(** Read and parse a file. @raise Sys_error on I/O failure, [Failure] on
    parse errors. *)

val to_string : ?impulses:(int * int * float) list -> Model.t -> string
(** Render a model in the same format ([parse_string] round-trips it). *)

val save : path:string -> ?impulses:(int * int * float) list -> Model.t -> unit
