module Generator = Mrm_ctmc.Generator
module Poisson = Mrm_ctmc.Poisson
module Sparse = Mrm_linalg.Sparse
module Dense = Mrm_linalg.Dense
module Vec = Mrm_linalg.Vec
module Special = Mrm_util.Special

(* Left-multiply a dense matrix by the sparse Q' (per column). *)
let sparse_times_dense sparse dense =
  let rows = Sparse.rows sparse and cols = Dense.cols dense in
  let out = Dense.zeros ~rows ~cols in
  let column = Array.make (Dense.rows dense) 0. in
  let result = Array.make rows 0. in
  for j = 0 to cols - 1 do
    for i = 0 to Dense.rows dense - 1 do
      column.(i) <- Dense.get dense i j
    done;
    Sparse.mv_into sparse column result;
    for i = 0 to rows - 1 do
      Dense.set out i j result.(i)
    done
  done;
  out

let diag_times_dense diag dense =
  Dense.init ~rows:(Dense.rows dense) ~cols:(Dense.cols dense) (fun i j ->
      diag.(i) *. Dense.get dense i j)

let add_scaled_into ~alpha source target =
  (* target := target + alpha * source *)
  for i = 0 to Dense.rows target - 1 do
    for j = 0 to Dense.cols target - 1 do
      Dense.set target i j (Dense.get target i j +. (alpha *. Dense.get source i j))
    done
  done

(* Map matrix moments of the shifted process back: columns carry the final
   state, so the binomial unshift applies entry-wise exactly as for the
   vector case (B = B~ + shift t regardless of the final state). *)
let unshift ~shift ~t matrices =
  if shift = 0. then matrices
  else begin
    let c = shift *. t in
    let order = Array.length matrices - 1 in
    Array.init (order + 1) (fun n ->
        Dense.init
          ~rows:(Dense.rows matrices.(0))
          ~cols:(Dense.cols matrices.(0))
          (fun i j ->
            let acc = ref 0. in
            for k = 0 to n do
              acc :=
                !acc
                +. Special.binomial n k
                   *. (c ** float_of_int k)
                   *. Dense.get matrices.(n - k) i j
            done;
            !acc))
  end

let matrices ?(eps = 1e-9) model ~t ~order =
  if t < 0. then invalid_arg "Joint_moments.matrices: requires t >= 0";
  if order < 0 then invalid_arg "Joint_moments.matrices: requires order >= 0";
  let n = Model.dim model in
  let q = Generator.uniformization_rate model.Model.generator in
  let identity = Dense.identity n in
  if t = 0. then
    Array.init (order + 1) (fun k ->
        if k = 0 then identity else Dense.zeros ~rows:n ~cols:n)
  else if q = 0. then begin
    (* No transitions: Z(t) = Z(0) and B is per-state Brownian. *)
    Array.init (order + 1) (fun k ->
        Dense.init ~rows:n ~cols:n (fun i j ->
            if not (Int.equal i j) then 0.
            else
              Mrm_brownian.Brownian.raw_moment
                (Model.brownian_of_state model i)
                ~t k))
  end
  else begin
    let min_rate = Model.min_rate model in
    let shift = if min_rate < 0. then min_rate else 0. in
    let shifted_rates = Array.map (fun r -> r -. shift) model.Model.rates in
    let max_shifted_rate = Array.fold_left Float.max 0. shifted_rates in
    let max_std_dev = Model.max_std_dev model in
    let d = Float.max (max_shifted_rate /. q) (max_std_dev /. sqrt q) in
    let lambda = q *. t in
    let g =
      if d = 0. || order = 0 then
        Poisson.tail_quantile ~lambda ~log_eps:(log eps)
      else begin
        let log_prefactor =
          log 2.
          +. (float_of_int order *. log d)
          +. Special.log_factorial order
          +. (float_of_int order *. log lambda)
        in
        let m =
          Poisson.tail_quantile ~lambda ~log_eps:(log eps -. log_prefactor)
        in
        max 1 (m + order - 1)
      end
    in
    let q' = Generator.uniformized model.Model.generator ~rate:q in
    let r' =
      if d = 0. then Array.make n 0.
      else Array.map (fun r -> r /. (q *. d)) shifted_rates
    in
    let s' =
      if d = 0. then Array.make n 0.
      else Array.map (fun v -> v /. (q *. d *. d)) model.Model.variances
    in
    let u = Array.init (order + 1) (fun _ -> Dense.zeros ~rows:n ~cols:n) in
    u.(0) <- Dense.copy identity;
    let acc = Array.init (order + 1) (fun _ -> Dense.zeros ~rows:n ~cols:n) in
    for k = 0 to g do
      let w = Poisson.pmf ~lambda k in
      if w > 0. then
        for j = 0 to order do
          add_scaled_into ~alpha:w u.(j) acc.(j)
        done;
      if k < g then begin
        for j = order downto 1 do
          let next = sparse_times_dense q' u.(j) in
          add_scaled_into ~alpha:1. (diag_times_dense r' u.(j - 1)) next;
          if j >= 2 then
            add_scaled_into ~alpha:0.5 (diag_times_dense s' u.(j - 2)) next;
          u.(j) <- next
        done;
        u.(0) <- sparse_times_dense q' u.(0)
      end
    done;
    let shifted =
      Array.init (order + 1) (fun k ->
          if k = 0 then acc.(0)
          else Dense.scale (Special.factorial k *. (d ** float_of_int k)) acc.(k))
    in
    unshift ~shift ~t shifted
  end

let reward_with_final_state ?eps model ~t ~order =
  let m = matrices ?eps model ~t ~order in
  Dense.vm model.Model.initial m.(order)

let covariance ?eps model ~t1 ~t2 =
  let t1, t2 = if t1 <= t2 then (t1, t2) else (t2, t1) in
  if t1 < 0. then invalid_arg "Joint_moments.covariance: requires t >= 0";
  let pi = model.Model.initial in
  let first = Randomization.moments ?eps model ~t:t1 ~order:2 in
  let m1_t1 = Vec.dot pi first.Randomization.moments.(1) in
  let m2_t1 = Vec.dot pi first.Randomization.moments.(2) in
  if Float.equal t2 t1 then m2_t1 -. (m1_t1 *. m1_t1)
  else begin
    (* E[B(t1) B(t2)] = E[B(t1)^2]
       + sum_j E[B(t1) 1(Z(t1)=j)] E[B(t2)-B(t1) | Z(t1)=j]. *)
    let weighted = reward_with_final_state ?eps model ~t:t1 ~order:1 in
    let increment =
      Randomization.moments ?eps model ~t:(t2 -. t1) ~order:1
    in
    let cross =
      m2_t1 +. Vec.dot weighted increment.Randomization.moments.(1)
    in
    let m1_t2 = Randomization.mean ?eps model ~t:t2 in
    cross -. (m1_t1 *. m1_t2)
  end

let correlation ?eps model ~t1 ~t2 =
  let v1 = Randomization.variance ?eps model ~t:t1 in
  let v2 = Randomization.variance ?eps model ~t:t2 in
  if v1 <= 0. || v2 <= 0. then
    invalid_arg "Joint_moments.correlation: variances must be positive";
  covariance ?eps model ~t1 ~t2 /. sqrt (v1 *. v2)
