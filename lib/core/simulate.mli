(** Monte-Carlo simulation of second-order MRMs — the paper's third
    comparator ("a second-order reward model simulation tool").

    A trajectory of the structure-state CTMC is sampled jump by jump; the
    reward increment over a sojourn of length [tau] in state [i] is drawn
    as N(r_i tau, sigma_i^2 tau), which is exact (no discretization error
    in the reward dimension). *)

type estimate = {
  order : int;
  value : float;  (** point estimate of [E B(t)^order] *)
  ci_low : float;
  ci_high : float;  (** normal-approximation confidence interval *)
}

val accumulated_reward : Model.t -> Mrm_util.Rng.t -> t:float -> float
(** One exact sample of [B(t)] with [Z(0) ~ pi]. *)

val sample : Model.t -> Mrm_util.Rng.t -> t:float -> replicas:int -> float array
(** [replicas] i.i.d. samples of [B(t)]. *)

val estimate_moments :
  ?confidence:float -> Model.t -> Mrm_util.Rng.t -> t:float ->
  max_order:int -> replicas:int -> estimate array
(** Raw-moment estimates for orders 1..[max_order] from a single batch of
    samples (default [confidence] 0.95). Index 0 of the result is order 1. *)

type path_point = { time : float; state : int; reward : float }

val joint_path :
  Model.t -> Mrm_util.Rng.t -> t_max:float -> grid:int -> path_point array
(** A discretized joint realization (Figure 1 of the paper): the state and
    accumulated reward on a uniform grid of [grid] intervals, with the
    Brownian increments refined inside sojourns so the reward path shows
    the within-state fluctuation. State changes between grid points are
    handled exactly (the increment over a straddling interval sums the
    per-state normal contributions). *)

val empirical_cdf :
  Model.t -> Mrm_util.Rng.t -> t:float -> replicas:int -> float -> float
(** [P(B(t) <= x)] estimated from fresh samples; used to sandwich-test the
    moment-based CDF bounds. *)
