(** Steady-state reward analysis.

    Figure 3 of the paper overlays the transient mean with the
    stationary-start mean, which is exactly linear:
    [E_pi-stat B(t) = t * sum_i pi_i r_i]. The long-run variance rate (an
    extension beyond the paper; standard Markov-reward CLT constant,
    including the Brownian contribution [sum_i pi_i sigma_i^2]) is also
    provided. *)

val stationary_distribution : Model.t -> float array
(** GTH for models up to 2000 states, power iteration beyond. *)

val reward_rate : Model.t -> float
(** [rho = sum_i pi-stat_i r_i]. *)

val mean_line : Model.t -> times:float array -> (float * float) array
(** [(t, rho * t)] — the straight line of Figure 3. *)

val variance_rate : Model.t -> float
(** Asymptotic variance growth rate [lim Var B(t) / t]: the Brownian part
    [sum_i pi_i sigma_i^2] plus the rate-modulation part
    [2 sum_i pi_i (r_i - rho) g_i], where [g] solves the Poisson equation
    [Q g = -(r - rho 1)] with [pi g = 0]. Dense solve; intended for small
    and mid-size models. *)
