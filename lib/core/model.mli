(** Second-order Markov reward models (paper, Definition 2).

    A model is a CTMC (generator [Q], initial distribution [pi]) together
    with per-state Brownian reward parameters: drift [r_i] (matrix [R])
    and variance [sigma_i^2 >= 0] (matrix [S]). A first-order (ordinary)
    MRM is the special case [S = 0]. *)

type t = private {
  generator : Mrm_ctmc.Generator.t;
  rates : float array;  (** drift [r_i] per state; any sign *)
  variances : float array;  (** [sigma_i^2 >= 0] per state *)
  initial : float array;  (** initial probability vector [pi] *)
}

val make :
  generator:Mrm_ctmc.Generator.t ->
  rates:float array ->
  variances:float array ->
  initial:float array ->
  t
(** @raise Invalid_argument on dimension mismatches, non-finite rates,
    negative variances, or an invalid probability vector. *)

val dim : t -> int

val is_first_order : t -> bool
(** True iff every variance is 0. *)

val first_order :
  generator:Mrm_ctmc.Generator.t ->
  rates:float array ->
  initial:float array ->
  t
(** Convenience constructor with [S = 0]. *)

val with_variances : t -> float array -> t
(** Same structure-state process and rates, different [S]; used to sweep
    [sigma^2] as in the paper's example (Table 1). *)

val min_rate : t -> float
val max_rate : t -> float
val max_std_dev : t -> float
(** [max_i sigma_i]. *)

val brownian_of_state : t -> int -> Mrm_brownian.Brownian.params

val check_data : t -> Mrm_check.Check.data
(** The model's raw components in the static checker's input form, for
    {!Mrm_check.Check.check} / the solvers' [?validate] flag. *)

val pp : Format.formatter -> t -> unit
(** Short human-readable summary (dimensions, rate ranges). *)
