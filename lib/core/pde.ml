module Generator = Mrm_ctmc.Generator
module Sparse = Mrm_linalg.Sparse

type solution = {
  xs : float array;
  density : float array array;
  dx : float;
  steps_taken : int;
}

let solve ?(x_margin = 8.) ?(cells = 400) model ~t =
  if t <= 0. then invalid_arg "Pde.solve: requires t > 0";
  if cells < 10 then invalid_arg "Pde.solve: requires cells >= 10";
  let n = Model.dim model in
  let rates = model.Model.rates and variances = model.Model.variances in
  let r_min = Model.min_rate model and r_max = Model.max_rate model in
  let sigma_max = Model.max_std_dev model in
  (* Domain wide enough for every conditional density plus diffusion. *)
  let spread = (x_margin *. sigma_max *. sqrt t) +. 1e-6 in
  let x_min = (Float.min 0. (r_min *. t)) -. spread -. 1. in
  let x_max = (Float.max 0. (r_max *. t)) +. spread +. 1. in
  let dx = (x_max -. x_min) /. float_of_int cells in
  let xs = Array.init (cells + 1) (fun j -> x_min +. (float_of_int j *. dx)) in
  (* b.(i).(j): conditional density of state i at grid node j. Initial
     condition: a delta at x = 0, i.e. mass 1/dx in the nearest node. *)
  let zero_index =
    let j = int_of_float (Float.round ((0. -. x_min) /. dx)) in
    Int.max 0 (Int.min cells j)
  in
  let b = Array.init n (fun _ -> Array.make (cells + 1) 0.) in
  for i = 0 to n - 1 do
    b.(i).(zero_index) <- 1. /. dx
  done;
  let q_matrix = Generator.matrix model.Model.generator in
  let q = Generator.uniformization_rate model.Model.generator in
  (* CFL-limited explicit step: transport |r|/dx, diffusion sigma^2/dx^2,
     exchange q. *)
  let rate_bound =
    let worst = ref q in
    for i = 0 to n - 1 do
      worst :=
        Float.max !worst
          ((abs_float rates.(i) /. dx) +. (variances.(i) /. (dx *. dx)))
    done;
    !worst
  in
  let dt_stable = 0.4 /. Float.max rate_bound 1e-12 in
  let steps = max 1 (int_of_float (ceil (t /. dt_stable))) in
  let dt = t /. float_of_int steps in
  let next = Array.init n (fun _ -> Array.make (cells + 1) 0.) in
  (* Coupling term: eq. (4) conditions on the initial state, so the vector
     b(t, x) over initial states evolves with Q applied directly
     ((Q b)_i = sum_k q_ik b_k). *)
  let node_values = Array.make n 0. in
  for _step = 1 to steps do
    for j = 0 to cells do
      for i = 0 to n - 1 do
        node_values.(i) <- b.(i).(j)
      done;
      let coupled = Sparse.mv q_matrix node_values in
      for i = 0 to n - 1 do
        next.(i).(j) <- b.(i).(j) +. (dt *. coupled.(i))
      done
    done;
    (* Transport (upwind) and diffusion (central), zero-inflow boundary. *)
    for i = 0 to n - 1 do
      let r = rates.(i) and s2 = variances.(i) in
      let bi = b.(i) in
      for j = 0 to cells do
        let left = if j > 0 then bi.(j - 1) else 0. in
        let right = if j < cells then bi.(j + 1) else 0. in
        let advection =
          if r >= 0. then r *. (bi.(j) -. left) /. dx
          else r *. (right -. bi.(j)) /. dx
        in
        let diffusion =
          0.5 *. s2 *. (right -. (2. *. bi.(j)) +. left) /. (dx *. dx)
        in
        next.(i).(j) <- next.(i).(j) +. (dt *. (diffusion -. advection))
      done
    done;
    for i = 0 to n - 1 do
      Array.blit next.(i) 0 b.(i) 0 (cells + 1)
    done
  done;
  { xs; density = b; dx; steps_taken = steps }

let unconditional_density model solution =
  let pi = model.Model.initial in
  let cells = Array.length solution.xs in
  Array.init cells (fun j ->
      let acc = ref 0. in
      Array.iteri (fun i p -> acc := !acc +. (p *. solution.density.(i).(j))) pi;
      !acc)

let trapezoid xs dx f =
  let n = Array.length xs in
  let acc = ref 0. in
  for j = 0 to n - 1 do
    let w = if j = 0 || j = n - 1 then 0.5 else 1. in
    acc := !acc +. (w *. f j)
  done;
  !acc *. dx

let cdf model solution x =
  let density = unconditional_density model solution in
  trapezoid solution.xs solution.dx (fun j ->
      if solution.xs.(j) <= x then density.(j) else 0.)

let raw_moment model solution n =
  let density = unconditional_density model solution in
  trapezoid solution.xs solution.dx (fun j ->
      (solution.xs.(j) ** float_of_int n) *. density.(j))
