module Rng = Mrm_util.Rng
module Stats = Mrm_util.Stats
module Generator = Mrm_ctmc.Generator

type estimate = { order : int; value : float; ci_low : float; ci_high : float }
type path_point = { time : float; state : int; reward : float }

(* Per-state jump tables, precomputed once per simulation batch. *)
type jump_tables = {
  exit_rates : float array;
  targets : int array array;
  probabilities : float array array;
}

let build_jump_tables model =
  let g = model.Model.generator in
  let n = Model.dim model in
  let exit_rates = Generator.exit_rates g in
  let targets = Array.make n [||] and probabilities = Array.make n [||] in
  for i = 0 to n - 1 do
    let jumps = Generator.embedded_jump_distribution g i in
    targets.(i) <- Array.map fst jumps;
    probabilities.(i) <- Array.map snd jumps
  done;
  { exit_rates; targets; probabilities }

let sample_initial_state model rng = Rng.categorical rng model.Model.initial

let next_state tables rng i =
  let p = tables.probabilities.(i) in
  tables.targets.(i).(Rng.categorical rng p)

let reward_increment model rng i ~dt =
  Mrm_brownian.Brownian.sample_increment (Model.brownian_of_state model i) rng
    ~dt

let accumulated_reward_with model tables rng ~t =
  let rec go state now reward =
    if now >= t then reward
    else begin
      let exit = tables.exit_rates.(state) in
      if exit <= 0. then
        (* Absorbing state: accumulate for the remaining horizon. *)
        reward +. reward_increment model rng state ~dt:(t -. now)
      else begin
        let sojourn = Rng.exponential rng ~rate:exit in
        let dt = Float.min sojourn (t -. now) in
        let reward = reward +. reward_increment model rng state ~dt in
        if now +. sojourn >= t then reward
        else go (next_state tables rng state) (now +. sojourn) reward
      end
    end
  in
  go (sample_initial_state model rng) 0. 0.

let accumulated_reward model rng ~t =
  if t < 0. then invalid_arg "Simulate.accumulated_reward: requires t >= 0";
  accumulated_reward_with model (build_jump_tables model) rng ~t

let sample model rng ~t ~replicas =
  if t < 0. then invalid_arg "Simulate.sample: requires t >= 0";
  if replicas <= 0 then invalid_arg "Simulate.sample: requires replicas > 0";
  let tables = build_jump_tables model in
  Array.init replicas (fun _ -> accumulated_reward_with model tables rng ~t)

let estimate_moments ?(confidence = 0.95) model rng ~t ~max_order ~replicas =
  if max_order < 1 then invalid_arg "Simulate.estimate_moments: max_order >= 1";
  let xs = sample model rng ~t ~replicas in
  Array.init max_order (fun k ->
      let order = k + 1 in
      let value = Stats.raw_moment order xs in
      let ci_low, ci_high =
        Stats.raw_moment_confidence_interval ~confidence order xs
      in
      { order; value; ci_low; ci_high })

let joint_path model rng ~t_max ~grid =
  if t_max <= 0. then invalid_arg "Simulate.joint_path: requires t_max > 0";
  if grid <= 0 then invalid_arg "Simulate.joint_path: requires grid > 0";
  let tables = build_jump_tables model in
  let dt = t_max /. float_of_int grid in
  let out = Array.make (grid + 1) { time = 0.; state = 0; reward = 0. } in
  let state = ref (sample_initial_state model rng) in
  let reward = ref 0. in
  (* Time remaining in the current sojourn. *)
  let sojourn_left = ref 0. in
  let draw_sojourn () =
    let exit = tables.exit_rates.(!state) in
    if exit <= 0. then infinity else Rng.exponential rng ~rate:exit
  in
  sojourn_left := draw_sojourn ();
  out.(0) <- { time = 0.; state = !state; reward = 0. };
  for k = 1 to grid do
    (* Advance exactly dt of wall-clock time, possibly across jumps. *)
    let remaining = ref dt in
    while !remaining > 0. do
      if !sojourn_left > !remaining then begin
        reward := !reward +. reward_increment model rng !state ~dt:!remaining;
        sojourn_left := !sojourn_left -. !remaining;
        remaining := 0.
      end
      else begin
        reward :=
          !reward +. reward_increment model rng !state ~dt:!sojourn_left;
        remaining := !remaining -. !sojourn_left;
        state := next_state tables rng !state;
        sojourn_left := draw_sojourn ()
      end
    done;
    out.(k) <-
      { time = float_of_int k *. dt; state = !state; reward = !reward }
  done;
  out

let empirical_cdf model rng ~t ~replicas x =
  let xs = sample model rng ~t ~replicas in
  Stats.empirical_cdf xs x
