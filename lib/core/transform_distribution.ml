module Generator = Mrm_ctmc.Generator
module Sparse = Mrm_linalg.Sparse
module Vec = Mrm_linalg.Vec

(* Complex vectors as separate re/im float arrays: the RK4 inner loop then
   runs on unboxed floats. *)
type cvec = { re : float array; im : float array }

let cvec_zero n = { re = Array.make n 0.; im = Array.make n 0. }

(* y := (Q + i omega R - omega^2/2 S) x, writing into pre-allocated out. *)
let apply_system ~q_matrix ~rates ~variances ~omega x out =
  let n = Array.length x.re in
  Sparse.mv_into q_matrix x.re out.re;
  Sparse.mv_into q_matrix x.im out.im;
  let half_omega2 = 0.5 *. omega *. omega in
  for i = 0 to n - 1 do
    let diffusion = half_omega2 *. variances.(i) in
    let drift = omega *. rates.(i) in
    (* (a + ib)(xr + i xi) with a = -diffusion, b = drift. *)
    out.re.(i) <-
      out.re.(i) -. (diffusion *. x.re.(i)) -. (drift *. x.im.(i));
    out.im.(i) <-
      out.im.(i) -. (diffusion *. x.im.(i)) +. (drift *. x.re.(i))
  done

let conditional_characteristic_function model ~t ~omega =
  if t < 0. then
    invalid_arg "Transform_distribution: requires t >= 0";
  let n = Model.dim model in
  if t = 0. || omega = 0. then
    Array.init n (fun _ -> Complex.one)
  else begin
    let q_matrix = Generator.matrix model.Model.generator in
    let q = Generator.uniformization_rate model.Model.generator in
    let rates = model.Model.rates and variances = model.Model.variances in
    let r_abs_max =
      Array.fold_left (fun acc r -> Float.max acc (abs_float r)) 0. rates
    in
    let s_max = Array.fold_left Float.max 0. variances in
    (* Spectral-radius estimate of the system matrix sets RK4's step. *)
    let magnitude =
      (2. *. q)
      +. (abs_float omega *. r_abs_max)
      +. (0.5 *. omega *. omega *. s_max)
    in
    let steps = max 16 (int_of_float (ceil (t *. magnitude))) in
    let dt = t /. float_of_int steps in
    let y = { re = Array.make n 1.; im = Array.make n 0. } in
    let k1 = cvec_zero n and k2 = cvec_zero n in
    let k3 = cvec_zero n and k4 = cvec_zero n in
    let tmp = cvec_zero n in
    let apply = apply_system ~q_matrix ~rates ~variances ~omega in
    let stage k source coefficient =
      (* tmp := y + coefficient * source, then k := A tmp *)
      for i = 0 to n - 1 do
        tmp.re.(i) <- y.re.(i) +. (coefficient *. source.re.(i));
        tmp.im.(i) <- y.im.(i) +. (coefficient *. source.im.(i))
      done;
      apply tmp k
    in
    for _ = 1 to steps do
      apply y k1;
      stage k2 k1 (dt /. 2.);
      stage k3 k2 (dt /. 2.);
      stage k4 k3 dt;
      for i = 0 to n - 1 do
        y.re.(i) <-
          y.re.(i)
          +. (dt /. 6.
             *. (k1.re.(i) +. (2. *. k2.re.(i)) +. (2. *. k3.re.(i))
                +. k4.re.(i)));
        y.im.(i) <-
          y.im.(i)
          +. (dt /. 6.
             *. (k1.im.(i) +. (2. *. k2.im.(i)) +. (2. *. k3.im.(i))
                +. k4.im.(i)))
      done
    done;
    Array.init n (fun i -> { Complex.re = y.re.(i); im = y.im.(i) })
  end

let characteristic_function model ~t ~omega =
  let psi = conditional_characteristic_function model ~t ~omega in
  let pi = model.Model.initial in
  let acc = ref Complex.zero in
  Array.iteri
    (fun i p ->
      acc :=
        Complex.add !acc
          { Complex.re = p *. psi.(i).Complex.re;
            im = p *. psi.(i).Complex.im })
    pi;
  !acc

type grid = { step : float; count : int }

let cdf_grid ?(max_frequencies = 4000) ?(phi_cutoff = 1e-9) model ~t points =
  if t <= 0. then invalid_arg "Transform_distribution.cdf_grid: t > 0";
  if max_frequencies < 8 then
    invalid_arg "Transform_distribution.cdf_grid: max_frequencies >= 8";
  (* Scale the frequency grid from the first two moments. *)
  let r = Randomization.moments model ~t ~order:2 in
  let pi = model.Model.initial in
  let mean = Vec.dot pi r.Randomization.moments.(1) in
  let std =
    sqrt
      (Float.max 1e-12
         (Vec.dot pi r.Randomization.moments.(2) -. (mean *. mean)))
  in
  let spread =
    Array.fold_left
      (fun acc x -> Float.max acc (abs_float (x -. mean)))
      0. points
  in
  (* Midpoint spacing: fine enough to resolve the oscillation e^{-i w x}
     over the farthest evaluation point plus the bulk of the density. *)
  let step = Float.pi /. (2. *. (spread +. (8. *. std) +. 1.)) in
  (* Walk the grid until |phi| decays (or the cap). *)
  let phis = ref [] and count = ref 0 in
  let continue = ref true in
  while !continue && !count < max_frequencies do
    let omega = (float_of_int !count +. 0.5) *. step in
    let phi = characteristic_function model ~t ~omega in
    phis := (omega, phi) :: !phis;
    incr count;
    (* Stop once the tail is negligible, but never before resolving the
       density bulk (omega ~ 4 / std). *)
    if Complex.norm phi < phi_cutoff && omega > 4. /. std then
      continue := false
  done;
  let samples = Array.of_list (List.rev !phis) in
  let values =
    Array.map
      (fun x ->
        let acc = ref 0. in
        Array.iter
          (fun (omega, phi) ->
            (* Im(e^{-i omega x} phi) / omega *)
            let c = cos (omega *. x) and s = sin (omega *. x) in
            let im_part =
              (phi.Complex.im *. c) -. (phi.Complex.re *. s)
            in
            acc := !acc +. (im_part /. omega))
          samples;
        let value = 0.5 -. (step /. Float.pi *. !acc) in
        Float.max 0. (Float.min 1. value))
      points
  in
  (values, { step; count = !count })

let cdf ?max_frequencies ?phi_cutoff model ~t x =
  let values, _ = cdf_grid ?max_frequencies ?phi_cutoff model ~t [| x |] in
  values.(0)
